package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"r3d/internal/core"
	"r3d/internal/fault"
	"r3d/internal/tech"
)

// testGrid is the acceptance-style grid: 8 regular trials (2 benches ×
// 2 seeds × 2 lead rates) over small windows.
func testGrid() Grid {
	return Grid{
		Benches:      []string{"gzip", "mesa"},
		Seeds:        []int64{1, 2},
		LeadRates:    []float64{40, 120},
		RFRates:      []float64{50},
		Instructions: 25_000,
		Node:         tech.Node65,
	}
}

// testSpecs returns the grid trials plus one deliberately-wedged
// (checker-die livelock) self-test trial — 9 total.
func testSpecs(t *testing.T) []TrialSpec {
	t.Helper()
	g := testGrid()
	specs, err := g.Trials()
	if err != nil {
		t.Fatal(err)
	}
	wedged, err := g.SelfTestTrial(2000)
	if err != nil {
		t.Fatal(err)
	}
	return append(specs, wedged)
}

// fastWatchdog keeps hung-trial detection cheap in tests.
var fastWatchdog = Watchdog{NoProgressCycles: 8_000, CheckEveryCycles: 256}

func findTrial(t *testing.T, rep *Report, id string) TrialOutcome {
	t.Helper()
	for _, tr := range rep.Trials {
		if tr.ID == id {
			return tr
		}
	}
	t.Fatalf("trial %q missing from report", id)
	return TrialOutcome{}
}

func TestGridExpansion(t *testing.T) {
	specs, err := testGrid().Trials()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("2×2×2×1 grid expanded to %d trials, want 8", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if seen[sp.ID] {
			t.Errorf("duplicate trial ID %q", sp.ID)
		}
		seen[sp.ID] = true
		if err := sp.Config.Validate(); err != nil {
			t.Errorf("trial %s: invalid config: %v", sp.ID, err)
		}
		if sp.Config.CycleBudget == 0 {
			t.Errorf("trial %s: no cycle budget defaulted", sp.ID)
		}
	}
	if !seen["gzip/s1/l40/r50"] {
		t.Errorf("expected coordinate-derived ID missing; have %v", specs[0].ID)
	}
	if _, err := (Grid{}).Trials(); err == nil {
		t.Error("empty grid accepted")
	}
}

// TestCampaignAcceptance is the headline scenario: a parallel campaign
// over ≥8 trials including an injected livelock completes, reports the
// wedged trial hung (not a harness crash or spin), and aggregates
// deterministically — workers=1 and workers=4 produce byte-identical
// JSON.
func TestCampaignAcceptance(t *testing.T) {
	specs := testSpecs(t)
	run := func(workers int) (*Report, []byte) {
		rep, err := Run(Config{Workers: workers, Watchdog: fastWatchdog}, specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		enc, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return rep, enc
	}
	_, serial := run(1)
	rep, parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Error("parallel aggregation differs from serial")
	}

	if rep.Summary.Trials != 9 || rep.Summary.OK != 8 || rep.Summary.Hung != 1 || rep.Summary.Crashed != 0 {
		t.Fatalf("unexpected summary: %+v", rep.Summary)
	}
	wedged := findTrial(t, rep, "selftest/livelock")
	if wedged.Status != StatusHung || wedged.Reason != ReasonNoProgress {
		t.Errorf("wedged trial reported %s/%s, want hung/no-progress", wedged.Status, wedged.Reason)
	}
	if wedged.HungAtCycle == 0 || wedged.Result == nil {
		t.Fatalf("hung outcome missing watchdog cycle or partial stats: %+v", wedged)
	}
	if wedged.Result.Instructions >= specs[8].Config.Instructions {
		t.Errorf("wedged trial claims completion: %d instructions", wedged.Result.Instructions)
	}
	if !strings.Contains(rep.Table(), "selftest/livelock") {
		t.Error("table rendering lost the self-test trial")
	}
}

// TestResumeFromPartialJournalByteIdentical interrupts a campaign by
// truncating its journal mid-line — the footprint of a killed process —
// then resumes and requires the aggregate JSON to match an
// uninterrupted run exactly, without re-running journaled trials.
func TestResumeFromPartialJournalByteIdentical(t *testing.T) {
	specs := testSpecs(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")

	full, err := Run(Config{Workers: 2, Watchdog: fastWatchdog}, specs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Run(Config{Workers: 1, Watchdog: fastWatchdog, JournalPath: journal}, specs); err != nil {
		t.Fatal(err)
	}
	chopJournal(t, journal, 4)

	resumed, err := Run(Config{Workers: 3, Watchdog: fastWatchdog, JournalPath: journal, Resume: true}, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("resumed aggregate differs from uninterrupted run:\n%s\n--- vs ---\n%s", got, want)
	}

	// A second resume over the now-complete journal must run 0 trials.
	var builds atomic.Int64
	counting := func(spec TrialSpec) (*core.System, error) {
		builds.Add(1)
		return BuildSystem(spec)
	}
	again, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal, Resume: true, Builder: counting}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 {
		t.Errorf("complete journal still rebuilt %d systems", builds.Load())
	}
	enc, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, enc) {
		t.Error("journal-only aggregate differs from live run")
	}
}

// chopJournal truncates the journal to its header plus the first n
// outcome lines, then appends a torn partial line.
func chopJournal(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < n+2 {
		t.Fatalf("journal too short to chop: %d lines", len(lines))
	}
	kept := strings.Join(lines[:n+1], "")
	kept += `{"id":"torn-` // interrupted mid-marshal
	if err := os.WriteFile(path, []byte(kept), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	specs := testSpecs(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	if _, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal}, specs[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Watchdog: fastWatchdog, JournalPath: journal, Resume: true}, specs); err == nil {
		t.Error("resume accepted a journal written for a different grid")
	}
	if err := os.WriteFile(journal, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Watchdog: fastWatchdog, JournalPath: journal, Resume: true}, specs); err == nil {
		t.Error("resume accepted a non-journal file")
	}
}

func TestPanicIsolation(t *testing.T) {
	specs := testSpecs(t)[:4]
	specs = append(specs, TrialSpec{ID: "selftest/panic", Bench: "gzip", Config: specs[0].Config})
	builder := func(spec TrialSpec) (*core.System, error) {
		if spec.ID == "selftest/panic" {
			panic("injected harness fault")
		}
		return BuildSystem(spec)
	}
	rep, err := Run(Config{Workers: 3, Watchdog: fastWatchdog, Builder: builder}, specs)
	if err != nil {
		t.Fatalf("a crashing trial must not fail the campaign: %v", err)
	}
	if rep.Summary.Crashed != 1 || rep.Summary.OK != 4 {
		t.Fatalf("unexpected summary: %+v", rep.Summary)
	}
	crashed := findTrial(t, rep, "selftest/panic")
	if crashed.Status != StatusCrashed || !strings.Contains(crashed.Reason, "injected harness fault") {
		t.Errorf("crashed outcome: %+v", crashed)
	}
	if crashed.Result != nil {
		t.Error("crashed trial carries statistics")
	}
}

func TestBuilderErrorIsCrashedOutcome(t *testing.T) {
	specs, err := testGrid().Trials()
	if err != nil {
		t.Fatal(err)
	}
	specs[0].Bench = "no-such-workload"
	rep, err := Run(Config{Workers: 2, Watchdog: fastWatchdog}, specs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Crashed != 1 || rep.Summary.OK != 1 {
		t.Fatalf("unexpected summary: %+v", rep.Summary)
	}
}

func TestHungTrialRetriesAreBoundedAndSeedPerturbed(t *testing.T) {
	wedged, err := testGrid().SelfTestTrial(1500)
	if err != nil {
		t.Fatal(err)
	}
	var seeds []int64
	builder := func(spec TrialSpec) (*core.System, error) {
		seeds = append(seeds, spec.Config.Seed)
		return BuildSystem(spec)
	}
	rep, err := Run(Config{Workers: 1, MaxRetries: 2, Watchdog: fastWatchdog, Builder: builder}, []TrialSpec{wedged})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Trials[0]
	if out.Status != StatusHung {
		t.Fatalf("livelocked trial ended %s", out.Status)
	}
	if out.Attempts != 3 {
		t.Errorf("attempts %d, want 1 + 2 retries", out.Attempts)
	}
	if len(seeds) != 3 || seeds[0] == seeds[1] || seeds[1] == seeds[2] {
		t.Errorf("retries must perturb the seed deterministically, got %v", seeds)
	}
	if rep.Summary.Retried != 1 {
		t.Errorf("summary retried %d, want 1", rep.Summary.Retried)
	}
}

func TestDuplicateTrialIDsRejected(t *testing.T) {
	specs := testSpecs(t)[:2]
	specs[1].ID = specs[0].ID
	if _, err := Run(Config{}, specs); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Run(Config{}, []TrialSpec{{Bench: "gzip"}}); err == nil {
		t.Error("empty ID accepted")
	}
}

// TestWallClockStallGuard exercises the opt-in host-clock watchdog with
// a builder that blocks well past the timeout: the campaign abandons
// the trial and reports it hung with the wall-clock reason.
func TestWallClockStallGuard(t *testing.T) {
	specs := testSpecs(t)[:3]
	stalledID := specs[0].ID
	release := make(chan struct{})
	builder := func(spec TrialSpec) (*core.System, error) {
		if spec.ID == stalledID {
			<-release // simulates a harness bug the cycle watchdog cannot see
		}
		return BuildSystem(spec)
	}
	rep, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, StallTimeout: 500 * time.Millisecond, Builder: builder}, specs)
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Hung != 1 || rep.Summary.OK != 2 {
		t.Fatalf("unexpected summary: %+v", rep.Summary)
	}
	stalled := findTrial(t, rep, stalledID)
	if stalled.Status != StatusHung || stalled.Reason != ReasonWallClock {
		t.Errorf("stalled trial outcome: %+v", stalled)
	}
}

func TestRunSupervisedReportsCompletedCampaign(t *testing.T) {
	spec := testSpecs(t)[0]
	sys, err := BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := RunSupervised(sys, spec.Config, fastWatchdog)
	if out.Status != StatusOK || out.Result == nil {
		t.Fatalf("supervised clean trial: %+v", out)
	}
	if out.Result.Instructions != spec.Config.Instructions {
		t.Errorf("ran %d instructions, want %d", out.Result.Instructions, spec.Config.Instructions)
	}
	// Same spec through the serial fault path must agree exactly.
	sys2, err := BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := fault.RunCampaign(sys2, spec.Config)
	if err != nil {
		t.Fatal(err)
	}
	if *out.Result != serial {
		t.Errorf("supervised result diverges from serial path:\n%+v\n%+v", *out.Result, serial)
	}
}

// TestOnOutcomeObservesEveryFreshTrial: the progress callback fires once
// per executed trial with the committed outcome, and journal-restored
// trials are not replayed through it on resume.
func TestOnOutcomeObservesEveryFreshTrial(t *testing.T) {
	specs := testSpecs(t)
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	var calls atomic.Int64
	seen := make(chan string, len(specs))
	rep, err := Run(Config{
		Workers:     2,
		MaxRetries:  1,
		JournalPath: journal,
		Watchdog:    fastWatchdog,
		OnOutcome: func(out TrialOutcome) {
			calls.Add(1)
			seen <- out.ID
		},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(specs)) {
		t.Fatalf("OnOutcome fired %d times, want %d", got, len(specs))
	}
	close(seen)
	ids := map[string]bool{}
	for id := range seen {
		if ids[id] {
			t.Errorf("OnOutcome saw trial %q twice", id)
		}
		ids[id] = true
	}
	for _, tr := range rep.Trials {
		if !ids[tr.ID] {
			t.Errorf("OnOutcome never saw trial %q", tr.ID)
		}
	}

	// Resume: everything comes from the journal, nothing re-executes.
	rep2, err := Run(Config{
		Workers:     2,
		MaxRetries:  1,
		JournalPath: journal,
		Resume:      true,
		Watchdog:    fastWatchdog,
		OnOutcome:   func(TrialOutcome) { calls.Add(1) },
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(specs)) {
		t.Errorf("OnOutcome fired %d more times on a full resume, want 0", got-int64(len(specs)))
	}
	a, _ := rep.JSON()
	b, _ := rep2.JSON()
	if !bytes.Equal(a, b) {
		t.Error("resumed report not byte-identical to fresh run")
	}
}
