package lint

import "go/token"

// Analyzers returns the full determinism/hygiene suite in a fixed
// order: the five local checks of v1, the v2 whole-program and
// concurrency analyzers, the v3 annotation-driven lock-discipline
// suite, then the v4 goroutine-lifecycle suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder, GlobalRand, WallClock, FloatCmp, ErrDrop, GoCapture,
		DetTaint, Units,
		MutexGuard, LockOrder, BlockHold,
		GoLeak, ChanOwn, StopFlow,
	}
}

// An AnalyzerStat is one analyzer's cost and yield for a run: how long
// it took and how many findings survived suppression.
type AnalyzerStat struct {
	Name     string
	Findings int
	WallNS   int64
}

// Run applies the analyzers to the packages, filters out findings
// covered by a reasoned //lint:ignore directive, and returns the
// remainder sorted by position. Malformed directives, and directives
// that suppressed nothing a ran check could have produced (stale
// suppressions), are included as findings. dir is the module root used
// to locate the units manifest; it is empty for in-memory fixture runs.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunDir("", pkgs, analyzers)
}

// RunDir is Run with an explicit module root directory.
func RunDir(dir string, pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunDirStats(dir, pkgs, analyzers, nil)
	return findings
}

// RunDirStats is RunDir, additionally returning per-analyzer statistics
// in the order the analyzers were given. Wall time is measured with the
// injected monotonic clock (nanoseconds); a nil clock records zero
// durations, so the findings path pays nothing for the plumbing.
func RunDirStats(dir string, pkgs []*Package, analyzers []*Analyzer, clock func() int64) ([]Finding, []AnalyzerStat) {
	ignores, findings := collectIgnores(fsetOf(pkgs), pkgs)
	report := func(f Finding) {
		if !ignores.suppressed(f) {
			findings = append(findings, f)
		}
	}
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	wall := map[string]int64{}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		start := clock()
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, report: report}
			a.Run(pass)
		}
		wall[a.Name] += clock() - start
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fsetOf(pkgs),
			Dir:      dir,
			Pkgs:     pkgs,
			ignores:  ignores,
			report:   report,
		}
		start := clock()
		a.RunModule(mp)
		wall[a.Name] += clock() - start
	}

	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	registered := map[string]bool{"lintdirective": true}
	for _, a := range Analyzers() {
		registered[a.Name] = true
	}
	findings = append(findings, ignores.stale(ran, registered)...)
	sortFindings(findings)

	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Check]++
	}
	stats := make([]AnalyzerStat, 0, len(analyzers))
	for _, a := range analyzers {
		stats = append(stats, AnalyzerStat{Name: a.Name, Findings: counts[a.Name], WallNS: wall[a.Name]})
	}
	return findings, stats
}

// fsetOf returns the packages' shared FileSet (every loader and fixture
// helper uses a single set).
func fsetOf(pkgs []*Package) *token.FileSet {
	if len(pkgs) == 0 {
		return token.NewFileSet()
	}
	return pkgs[0].Fset
}

// RunModule is the driver entry point: load the module containing dir
// and run the full suite over it.
func RunModule(dir string) (*Module, []Finding, error) {
	m, err := LoadModule(dir)
	if err != nil {
		return nil, nil, err
	}
	return m, RunDir(m.Dir, m.Pkgs, Analyzers()), nil
}
