package lint

import (
	"fmt"
	"go/token"
	"strings"

	"r3d/internal/detmap"
)

// LockOrder builds the module's lock-acquisition graph — an edge A→B
// whenever mutex B is acquired (directly or through any chain of calls)
// while A is held — and reports every cycle as a potential deadlock
// inversion, plus re-acquisition of a mutex already held as a
// guaranteed self-deadlock. Acquisitions inside `go` statements and
// function literals start from an empty held-set (a new goroutine does
// not hold its spawner's locks), so only orderings that can actually
// nest on one goroutine produce edges.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "cyclic lock-acquisition order (potential deadlock inversion)",
	RunModule: runLockOrder,
}

// lockEdge is one A→B acquisition ordering with the earliest site that
// witnesses it.
type lockEdge struct {
	from, to lockID
	pos      token.Pos
	chain    string // call chain from the witness site to the acquire, "" if direct
}

func runLockOrder(mp *ModulePass) {
	prog := buildLockProgram(mp.Pkgs)
	la := newLockAnalysis(prog)

	// Transitive acquisitions per function: every lock a call to f may
	// take, excluding `go` sites (new goroutine) — a union fixpoint,
	// with the shortest witness chain kept for messages.
	type acq struct{ chain string } // "" = acquired directly in the function
	trans := map[*fnFacts]map[lockID]acq{}
	for _, n := range prog.nodes {
		m := map[lockID]acq{}
		for _, a := range n.acquires {
			if _, ok := m[a.id]; !ok {
				m[a.id] = acq{}
			}
		}
		trans[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			for _, c := range n.calls {
				if c.kind == callGo {
					continue
				}
				for _, callee := range la.calleeFacts(c) {
					for _, id := range detmap.SortedKeys(trans[callee]) {
						if _, ok := trans[n][id]; ok {
							continue
						}
						chain := callee.name
						if sub := trans[callee][id].chain; sub != "" {
							chain = callee.name + " → " + sub
						}
						trans[n][id] = acq{chain: chain}
						changed = true
					}
				}
			}
		}
	}

	// Edges: direct acquisitions under a held lock, and call sites under
	// a held lock whose callee transitively acquires.
	edges := map[lockID]map[lockID]lockEdge{}
	addEdge := func(e lockEdge) {
		if mp.SuppressedAt(e.pos, "lockorder") {
			return
		}
		if edges[e.from] == nil {
			edges[e.from] = map[lockID]lockEdge{}
		}
		if old, ok := edges[e.from][e.to]; !ok || e.pos < old.pos {
			edges[e.from][e.to] = e
		}
	}
	for _, n := range prog.nodes {
		for _, a := range n.acquires {
			eff := la.effectiveHeld(n, a.held)
			if eff[a.id] != lockNone {
				mp.Reportf(a.pos, "%s acquired while already held by %s (self-deadlock)",
					a.id.display(), n.name)
				continue
			}
			for _, from := range sortedHeld(eff) {
				addEdge(lockEdge{from: from, to: a.id, pos: a.pos})
			}
		}
		for _, c := range n.calls {
			if c.kind == callGo {
				continue
			}
			eff := la.effectiveHeld(n, c.held)
			if len(eff) == 0 {
				continue
			}
			for _, callee := range la.calleeFacts(c) {
				for _, id := range detmap.SortedKeys(trans[callee]) {
					chain := callee.name
					if sub := trans[callee][id].chain; sub != "" {
						chain = callee.name + " → " + sub
					}
					for _, from := range sortedHeld(eff) {
						if from == id {
							continue // re-entry through calls is mutexguard/self-deadlock territory
						}
						addEdge(lockEdge{from: from, to: id, pos: c.pos, chain: chain})
					}
				}
			}
		}
	}

	reportLockCycles(mp, edges)
}

// reportLockCycles finds every elementary cycle reachable in the
// acquisition graph and reports each once, anchored at its first edge's
// witness position, with every hop's file:line spelled out. Cycles are
// canonicalized to start at their smallest lock ID so reruns report
// identically.
func reportLockCycles(mp *ModulePass, edges map[lockID]map[lockID]lockEdge) {
	ids := detmap.SortedKeys(edges)
	reported := map[string]bool{}
	for _, start := range ids {
		// DFS for paths start → ... → start; neighbor order sorted.
		var path []lockEdge
		onPath := map[lockID]bool{start: true}
		var dfs func(cur lockID)
		dfs = func(cur lockID) {
			for _, next := range detmap.SortedKeys(edges[cur]) {
				e := edges[cur][next]
				if next == start {
					cycle := append(append([]lockEdge{}, path...), e)
					// Canonical form: smallest ID first.
					min := 0
					for i, ce := range cycle {
						if ce.from < cycle[min].from {
							min = i
						}
					}
					rot := append(append([]lockEdge{}, cycle[min:]...), cycle[:min]...)
					var key strings.Builder
					for _, ce := range rot {
						key.WriteString(string(ce.from))
						key.WriteByte('>')
					}
					if !reported[key.String()] {
						reported[key.String()] = true
						reportCycle(mp, rot)
					}
					continue
				}
				if onPath[next] {
					continue // inner cycle; found from its own smallest start
				}
				onPath[next] = true
				path = append(path, e)
				dfs(next)
				path = path[:len(path)-1]
				delete(onPath, next)
			}
		}
		dfs(start)
	}
}

func reportCycle(mp *ModulePass, cycle []lockEdge) {
	var parts []string
	for _, e := range cycle {
		hop := fmt.Sprintf("%s → %s", e.from.display(), e.to.display())
		if e.chain != "" {
			hop += " (via " + e.chain + ")"
		}
		p := mp.Fset.Position(e.pos)
		hop += fmt.Sprintf(" at %s:%d", shortFile(p.Filename), p.Line)
		parts = append(parts, hop)
	}
	mp.Reportf(cycle[0].pos, "lock-order inversion: %s — concurrent goroutines taking these in opposite order deadlock",
		strings.Join(parts, "; "))
}

// shortFile trims a filename to its last two path segments for compact
// cycle messages.
func shortFile(name string) string {
	name = strings.ReplaceAll(name, "\\", "/")
	parts := strings.Split(name, "/")
	if len(parts) <= 2 {
		return name
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
