// Package isa defines the synthetic instruction-set abstraction the
// simulator executes. The paper used the Alpha AXP ISA under
// SimpleScalar; this reproduction keeps the microarchitecturally relevant
// properties of an instruction — operation class, register dependences,
// memory address, branch behaviour, result value — without encoding a
// full ISA, which is sufficient for the timing, power, thermal and
// reliability studies the paper performs.
package isa

import "fmt"

// OpClass classifies an instruction by the functional unit it needs.
type OpClass uint8

// Operation classes. Functional-unit counts come from Table 1:
// 4 integer ALUs, 2 integer multipliers, 1 FP ALU, 1 FP multiplier.
const (
	IntALU OpClass = iota
	IntMult
	FPALU
	FPMult
	Load
	Store
	BranchCond
	BranchUncond
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	"IntALU", "IntMult", "FPALU", "FPMult", "Load", "Store", "BranchCond", "BranchUncond",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// IsBranch reports whether the class is a control transfer.
func (c OpClass) IsBranch() bool { return c == BranchCond || c == BranchUncond }

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class uses the floating-point cluster.
func (c OpClass) IsFP() bool { return c == FPALU || c == FPMult }

// Latency returns the execution latency of the class in cycles,
// exclusive of memory-hierarchy time for loads.
func (c OpClass) Latency() int {
	switch c {
	case IntALU, BranchCond, BranchUncond, Store:
		return 1
	case IntMult:
		return 3
	case FPALU:
		return 4
	case FPMult:
		return 4
	case Load:
		return 1 // address generation; cache adds the rest
	default:
		return 1
	}
}

// Register file shape: 32 integer + 32 floating-point architectural
// registers, Alpha-style. Register 31 (and f31) reads as zero.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
	ZeroReg    = 31
)

// Reg names an architectural register: 0..31 integer, 32..63 FP.
type Reg uint8

// IsZero reports whether the register is a hardwired zero register.
func (r Reg) IsZero() bool { return r == ZeroReg || r == NumIntRegs+ZeroReg }

// Inst is one dynamic instruction as produced by the workload generator
// and consumed by both cores.
type Inst struct {
	// Seq is the dynamic sequence number (commit order).
	Seq uint64
	// PC is the instruction address.
	PC uint64
	// Op is the operation class.
	Op OpClass
	// Dest is the destination register (ZeroReg for none, e.g. stores
	// and branches).
	Dest Reg
	// Src1, Src2 are source registers (ZeroReg when unused).
	Src1, Src2 Reg
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Taken is the branch outcome for branches.
	Taken bool
	// Target is the branch target for taken branches.
	Target uint64
	// Value is the architectural result (used by the checking process:
	// the leading core passes committed results through the RVQ and the
	// checker verifies them).
	Value uint64
	// Src1Val, Src2Val are the architectural source-operand values. The
	// leading core passes them to the trailing core alongside the result
	// (the paper's register value prediction: 192 bits per instruction,
	// Table 4), where they are verified against the trailer's register
	// file before the result is accepted.
	Src1Val, Src2Val uint64
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool {
	return !in.Dest.IsZero() && in.Op != Store && !in.Op.IsBranch()
}
