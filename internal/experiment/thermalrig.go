package experiment

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"r3d/internal/floorplan"
	"r3d/internal/noc"
	"r3d/internal/power"
	"r3d/internal/thermal"
)

// ChipModel names the four physical organizations of §3.2/§3.3.
type ChipModel int

// Chip models.
const (
	M2DA ChipModel = iota
	M2D2A
	M3D2A
	M3DChecker
)

func (m ChipModel) String() string {
	switch m {
	case M2D2A:
		return "2d-2a"
	case M3D2A:
		return "3d-2a"
	case M3DChecker:
		return "3d-checker"
	default:
		return "2d-a"
	}
}

// ThermalCase is one thermal evaluation point.
type ThermalCase struct {
	Model ChipModel
	Opt   floorplan.Options
	// Act is the leading-core activity; L2Rate the per-bank access rate.
	Act    power.Activity
	L2Rate float64
	// CheckerW is the checker-core block power (the swept parameter of
	// Figures 4/5); ignored for M2DA.
	CheckerW float64
	// Scale multiplies every block power (the §3.3 DVFS study).
	Scale float64
	// TopLeakScale scales the static share of top-die banks (Table 8
	// leakage factor for a 90 nm top die).
	TopLeakScale float64
}

// ThermalResult reports the solved temperatures.
type ThermalResult struct {
	PeakC     thermal.Celsius // hottest active-layer cell anywhere
	PeakDie1C thermal.Celsius
	PeakDie2C thermal.Celsius // NaN-free: equals PeakDie1C for 2D models
	// Iters is the fine-grid SOR iteration count; CoarseIters the
	// coarse-grid preconditioner's (0 when the stack is too small to
	// reduce).
	Iters       int
	CoarseIters int
	// Converged is false when the fine solve hit ThermalMaxIters before
	// reaching ThermalTolC: the temperatures are estimates, not a settled
	// field. Each such solve also increments the session's thermal
	// warning counter (Session.ThermalWarnings).
	Converged bool
}

// ThermalStats counts the session's thermal snapshot-store traffic.
type ThermalStats struct {
	// Solves is the number of fine-grid solves actually run; Hits the
	// requests answered from a published snapshot; Joins the requests
	// that waited on another goroutine's in-flight solve of the same
	// case.
	Solves int64 `json:"solves"`
	Hits   int64 `json:"snapshot_hits"`
	Joins  int64 `json:"joins"`
	// FineIters / CoarseIters accumulate SOR iterations across all
	// solves (coarse = the preconditioner passes).
	FineIters   int64 `json:"fine_iters"`
	CoarseIters int64 `json:"coarse_iters"`
}

func (c ThermalCase) norm() ThermalCase {
	//lint:ignore floatcmp zero-value sentinel for an unset field, never a computed value
	if c.Scale == 0 {
		c.Scale = 1
	}
	//lint:ignore floatcmp zero-value sentinel for an unset field, never a computed value
	if c.TopLeakScale == 0 {
		c.TopLeakScale = 1
	}
	//lint:ignore floatcmp zero-value sentinel for an unset field, never a computed value
	if c.Opt.CheckerAreaScale == 0 {
		c.Opt = floorplan.DefaultOptions()
	}
	return c
}

func buildPlan(m ChipModel, opt floorplan.Options) *floorplan.Floorplan {
	switch m {
	case M2D2A:
		return floorplan.Build2D2A(opt)
	case M3D2A:
		return floorplan.Build3D2A(opt)
	case M3DChecker:
		return floorplan.Build3DChecker(opt)
	default:
		return floorplan.Build2DA()
	}
}

// thermalKey identifies one thermal solve: the stack geometry plus a
// fingerprint of the exact power grids. A solve is a pure function of
// this key, so its result can be memoized and published once.
type thermalKey struct {
	geom string
	fp   uint64
}

// thermalSnapshot is one published solve: the converged state (for
// heatmaps and probing via SolveThermalDetailed) plus its result row.
type thermalSnapshot struct {
	state *thermal.State
	res   ThermalResult
}

// thermalCall marks an in-flight solve; done is closed after the
// snapshot is published (or, on error, after the call is withdrawn).
type thermalCall struct {
	done chan struct{}
}

// fingerprintGrids hashes the power grids (with the geometry string) to
// the snapshot key. Row-major over float bits, so any two cases that
// would install identical power maps on an identical stack share a key.
func fingerprintGrids(geom string, grids [][][]float64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(geom))
	var buf [8]byte
	for _, grid := range grids {
		for _, row := range grid {
			for _, v := range row {
				binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
				_, _ = h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

// SolveThermal evaluates one thermal case. Each distinct case (geometry
// + power maps) is solved exactly once per session and memoized as an
// immutable snapshot; concurrent requests for the same case join the
// in-flight solve. No session lock is held across a solve, so
// independent cases solve concurrently.
func (s *Session) SolveThermal(c ThermalCase) (ThermalResult, error) {
	_, res, err := s.solveThermal(c, false)
	return res, err
}

// SolveThermalDetailed is SolveThermal but also returns a solver over a
// private clone of the converged field (for heatmaps and further
// probing; mutating it cannot disturb the published snapshot).
func (s *Session) SolveThermalDetailed(c ThermalCase) (*thermal.Solver, ThermalResult, error) {
	st, res, err := s.solveThermal(c, true)
	if err != nil {
		return nil, res, err
	}
	return st.Solver(), res, nil
}

// solveThermal resolves a case against the snapshot store: hit, join,
// or compute-and-publish. withState asks for a private clone of the
// solved field.
func (s *Session) solveThermal(c ThermalCase, withState bool) (*thermal.State, ThermalResult, error) {
	c = c.norm()
	fp := buildPlan(c.Model, c.Opt)
	if err := fp.Validate(); err != nil {
		return nil, ThermalResult{}, err
	}
	grids, err := thermalPowerGrids(c, fp)
	if err != nil {
		return nil, ThermalResult{}, err
	}
	geom := thermalGeomKey(fp, thermal.GridResolution)
	key := thermalKey{geom: geom, fp: fingerprintGrids(geom, grids)}

	for {
		s.thermalMu.Lock()
		if snap, ok := s.thermalSnaps[key]; ok {
			s.thermalStats.Hits++
			s.thermalMu.Unlock()
			return snapState(snap, withState), snap.res, nil
		}
		if call, ok := s.thermalInflight[key]; ok {
			s.thermalStats.Joins++
			s.thermalMu.Unlock()
			<-call.done
			// The computer either published the snapshot before closing
			// done, or withdrew on error — in which case loop around and
			// compute it ourselves.
			s.thermalMu.Lock()
			snap, ok := s.thermalSnaps[key]
			s.thermalMu.Unlock()
			if ok {
				return snapState(snap, withState), snap.res, nil
			}
			continue
		}
		call := &thermalCall{done: make(chan struct{})}
		s.thermalInflight[key] = call
		m := s.modelForLocked(geom, func() thermal.Config { return stackFor(fp, thermal.GridResolution) })
		s.thermalMu.Unlock()

		snap, err := s.computeThermal(m, fp, grids)
		s.thermalMu.Lock()
		if err == nil {
			s.thermalSnaps[key] = snap
			s.thermalStats.Solves++
			s.thermalStats.FineIters += int64(snap.res.Iters)
			s.thermalStats.CoarseIters += int64(snap.res.CoarseIters)
		}
		delete(s.thermalInflight, key)
		s.thermalMu.Unlock()
		close(call.done)
		if err != nil {
			return nil, ThermalResult{}, err
		}
		return snapState(snap, withState), snap.res, nil
	}
}

// snapState clones the published field when the caller asked for one;
// the snapshot itself stays immutable.
func snapState(snap *thermalSnapshot, withState bool) *thermal.State {
	if !withState {
		return nil
	}
	return snap.state.Clone()
}

// computeThermal runs one cold solve — coarse-grid preconditioner, then
// the parallel fine-grid SOR — with no session lock held.
func (s *Session) computeThermal(m *thermal.Model, fp *floorplan.Floorplan, grids [][][]float64) (*thermalSnapshot, error) {
	st := m.NewState()
	for die, grid := range grids {
		if err := st.SetPower(die, grid); err != nil {
			return nil, err
		}
	}
	coarseIters, _ := st.Precondition(s.Q.ThermalTolC, s.Q.ThermalMaxIters)
	iters, converged := st.Solve(s.Q.ThermalTolC, s.Q.ThermalMaxIters)
	if !converged {
		s.thermalWarn.Add(1)
	}
	res := ThermalResult{
		PeakC:       st.PeakAllC(),
		PeakDie1C:   st.PeakC(0),
		PeakDie2C:   st.PeakC(0),
		Iters:       iters,
		CoarseIters: coarseIters,
		Converged:   converged,
	}
	if fp.Layers == 2 {
		res.PeakDie2C = st.PeakC(1)
	}
	return &thermalSnapshot{state: st, res: res}, nil
}

// thermalPowerGrids renders a case's per-die power grids (die 1 always;
// die 2 for stacked models) — a pure function of the case.
func thermalPowerGrids(c ThermalCase, fp *floorplan.Floorplan) ([][][]float64, error) {
	die1 := power.LeadingCorePower(c.Act, 1, 1)
	//lint:ignore maporder per-key scaling touches each entry exactly once; order-independent
	for k := range die1 {
		die1[k] *= c.Scale
	}
	bank := (power.L2BankPower(c.L2Rate, 1) + noc.RouterPowerW) * c.Scale
	die2 := power.BlockPowers{}
	switch c.Model {
	case M2DA:
		for i := 0; i < 6; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
	case M2D2A:
		for i := 0; i < 15; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
		die1["Checker"] = c.CheckerW * c.Scale
	case M3D2A:
		for i := 0; i < 6; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
		topBank := (power.L2BankPower(c.L2Rate, c.TopLeakScale) + noc.RouterPowerW) * c.Scale
		for i := 0; i < c.Opt.TopDieBanks; i++ {
			die2[fmt.Sprintf("TopBank%d", i)] = topBank
		}
		die2["Checker"] = c.CheckerW * c.Scale
	case M3DChecker:
		for i := 0; i < 6; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
		die2["Checker"] = c.CheckerW * c.Scale
	}

	grids := [][][]float64{fp.PowerGrid(floorplan.LayerDie1, die1, thermal.GridResolution, thermal.GridResolution)}
	if fp.Layers == 2 {
		grids = append(grids, fp.PowerGrid(floorplan.LayerDie2, die2, thermal.GridResolution, thermal.GridResolution))
	}
	return grids, nil
}

// thermalGeomKey names a stack geometry at a given grid resolution.
func thermalGeomKey(fp *floorplan.Floorplan, res int) string {
	return fmt.Sprintf("%s/%d/%.2fx%.2f/%dx%d", fp.Name, fp.Layers, fp.DieW, fp.DieH, res, res)
}

// stackFor builds the thermal configuration for a floorplan at the
// given grid resolution.
func stackFor(fp *floorplan.Floorplan, res int) thermal.Config {
	var cfg thermal.Config
	if fp.Layers == 2 {
		cfg = thermal.Stack3D(fp.DieW, fp.DieH)
	} else {
		cfg = thermal.Stack2D(fp.DieW, fp.DieH)
	}
	cfg.Nx, cfg.Ny = res, res
	return cfg
}

// modelForLocked returns the cached immutable model for a geometry,
// building it on first use. The map is initialized in NewSessionWith
// (never lazily — a lazy init here raced once Session went concurrent)
// and the caller must hold s.thermalMu; the returned model is immutable
// and safe to use after the lock is released.
func (s *Session) modelForLocked(key string, build func() thermal.Config) *thermal.Model {
	if m, ok := s.models[key]; ok {
		return m
	}
	m := thermal.NewModel(build())
	s.models[key] = m
	return m
}

// thermalModel returns the cached model for a floorplan geometry at the
// given resolution (the DTM study reuses steady-state stacks at a
// coarser transient grid).
func (s *Session) thermalModel(fp *floorplan.Floorplan, res int) *thermal.Model {
	key := thermalGeomKey(fp, res)
	s.thermalMu.Lock()
	defer s.thermalMu.Unlock()
	return s.modelForLocked(key, func() thermal.Config { return stackFor(fp, res) })
}

// ThermalStats returns the snapshot-store counters.
func (s *Session) ThermalStats() ThermalStats {
	s.thermalMu.Lock()
	defer s.thermalMu.Unlock()
	return s.thermalStats
}

// PrefetchThermal solves the given cases across a bounded worker pool.
// Duplicate cases collapse onto one solve through the snapshot store's
// singleflight; results are published deterministically (any solver of
// a case produces identical bytes), so the store's content does not
// depend on worker count or completion order. The first error (in case
// order) is returned.
func (s *Session) PrefetchThermal(cases []ThermalCase, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	if len(cases) == 0 {
		return nil
	}
	errs := make([]error, len(cases))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				_, errs[i] = s.SolveThermal(cases[i])
			}
		}()
	}
	for i := range cases {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
