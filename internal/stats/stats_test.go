package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean with no positives = %v, want 0", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if math.Abs(got-1.9) > 1e-12 {
		t.Errorf("WeightedMean = %v, want 1.9", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Errorf("empty WeightedMean = %v, want 0", got)
	}
}

func TestWeightedMeanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Max(xs) != 9 || Min(xs) != 1 {
		t.Errorf("Max/Min wrong")
	}
	if got := Median(xs); got != 4 {
		t.Errorf("Median = %v, want 4", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Errorf("Median single = %v, want 7", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) should be 0")
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant stddev = %v", got)
	}
	if got := Stddev([]float64{1}); got != 0 {
		t.Errorf("single-sample stddev = %v", got)
	}
	got := Stddev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.05, 1)
	h.Add(0.65, 2)
	h.Add(0.65, 1)
	if h.Total() != 4 {
		t.Errorf("Total = %v, want 4", h.Total())
	}
	if h.ModeBin() != 6 {
		t.Errorf("ModeBin = %v, want 6", h.ModeBin())
	}
	fr := h.Fractions()
	if math.Abs(fr[6]-0.75) > 1e-12 {
		t.Errorf("fraction = %v, want 0.75", fr[6])
	}
	if math.Abs(h.BinCenter(6)-0.65) > 1e-12 {
		t.Errorf("BinCenter = %v, want 0.65", h.BinCenter(6))
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5, 1)
	h.Add(99, 1)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("out-of-range samples must clamp: %v", h.Counts)
	}
}

func TestHistogramWeightedMeanValue(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5, 1)
	h.Add(9.5, 1)
	if got := h.WeightedMeanValue(); math.Abs(got-5) > 1e-12 {
		t.Errorf("WeightedMeanValue = %v, want 5", got)
	}
	empty := NewHistogram(0, 1, 2)
	if empty.WeightedMeanValue() != 0 {
		t.Error("empty histogram mean should be 0")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1, 1)
	s := h.String()
	if !strings.Contains(s, "%") {
		t.Errorf("String missing percent: %q", s)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestHistogramMassConservation(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram(-1, 1, 8)
		var want float64
		for _, s := range samples {
			h.Add(s, 1)
			want++
		}
		var got float64
		for _, c := range h.Counts {
			got += c
		}
		return got == want && h.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram(0, 1, 5)
		for _, s := range samples {
			h.Add(s, 1)
		}
		var sum float64
		for _, fr := range h.Fractions() {
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("loads", 3)
	c.Inc("loads", 2)
	c.Inc("stores", 1)
	if c.Get("loads") != 5 || c.Get("stores") != 1 || c.Get("missing") != 0 {
		t.Errorf("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "loads" || names[1] != "stores" {
		t.Errorf("Names = %v", names)
	}
}
