// Package nuca implements the non-uniform L2 cache of the paper's §3.1:
// a large L2 partitioned into 1 MB banks reached over a grid network
// where each hop costs four cycles. Two placement policies are modeled:
//
//   - distributed sets: the set index selects a unique bank (simple, but
//     all banks are accessed uniformly);
//   - distributed ways: each way of a set lives in a different bank, a
//     centralized tag array near the controller is consulted first, and
//     hit promotion gradually migrates hot blocks to closer banks.
//
// The paper's configurations: the 2d-a baseline is a 6-way 6 MB L2
// (6 banks); the 2d-2a and 3d-2a models are 15-way 15 MB (15 banks).
package nuca

import (
	"fmt"

	"r3d/internal/noc"
)

// Policy selects the NUCA data-placement policy.
type Policy uint8

const (
	// DistributedSets spreads sets across banks (paper default).
	DistributedSets Policy = iota
	// DistributedWays spreads ways across banks with a central tag array.
	DistributedWays
)

func (p Policy) String() string {
	if p == DistributedSets {
		return "distributed-sets"
	}
	return "distributed-ways"
}

// Constants of the paper's L2 organization.
const (
	BankBytes = 1 << 20 // 1 MB banks
	LineBytes = 64
	// BankAccessCycles is the bank tag+data access time; with the
	// paper's mean hop distances it yields the reported average hit
	// latencies (18 cycles for 2d-a, 22 for 2d-2a).
	BankAccessCycles = 6
	// CentralTagCycles is the centralized tag array lookup time for the
	// distributed-ways policy.
	CentralTagCycles = 2
	// MemoryLatency is the latency to memory for the first chunk
	// (Table 1: 300 cycles at 2 GHz).
	MemoryLatency = 300
)

// Config describes one NUCA instance.
type Config struct {
	Name   string
	Policy Policy
	// HopsPerBank gives the one-way hop distance from the controller to
	// each bank; its length fixes both capacity (1 MB per bank) and
	// associativity (ways = banks for distributed sets as well, keeping
	// total capacity and associativity tied the way the paper's 6-way
	// 6 MB / 15-way 15 MB organizations are).
	HopsPerBank []int
}

// Banks returns the bank count.
func (c Config) Banks() int { return len(c.HopsPerBank) }

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.Banks() * BankBytes }

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if len(c.HopsPerBank) == 0 {
		return fmt.Errorf("nuca %q: no banks", c.Name)
	}
	for i, h := range c.HopsPerBank {
		if h < 0 {
			return fmt.Errorf("nuca %q: bank %d negative hops", c.Name, i)
		}
	}
	return nil
}

// Stats accumulates NUCA access statistics.
type Stats struct {
	Accesses      uint64
	Misses        uint64
	Writebacks    uint64
	HitLatencySum uint64
	BankAccesses  []uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MeanHitLatency returns the average hit latency in cycles.
func (s Stats) MeanHitLatency() float64 {
	hits := s.Accesses - s.Misses
	if hits == 0 {
		return 0
	}
	return float64(s.HitLatencySum) / float64(hits)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint32
}

// Cache is one NUCA L2 instance.
type Cache struct {
	cfg   Config
	net   *noc.Network
	ways  int
	nsets int
	sets  [][]line
	// bankOfWay maps way index → bank for the distributed-ways policy
	// (ways sorted by distance, way 0 closest). For distributed sets it
	// is nil and the bank is derived from the set index.
	bankOfWay []int
	clock     uint32
	stats     Stats
}

// New builds a NUCA cache; it panics on invalid configuration (geometry
// is static in this simulator).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	banks := cfg.Banks()
	totalLines := cfg.SizeBytes() / LineBytes
	ways := banks
	nsets := totalLines / ways
	c := &Cache{
		cfg:   cfg,
		net:   noc.New(cfg.HopsPerBank),
		ways:  ways,
		nsets: nsets,
		sets:  make([][]line, nsets),
		stats: Stats{BankAccesses: make([]uint64, banks)},
	}
	backing := make([]line, nsets*ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	if cfg.Policy == DistributedWays {
		c.bankOfWay = banksByDistance(cfg.HopsPerBank)
	}
	return c
}

// banksByDistance returns bank indices sorted ascending by hop count
// (stable on index for determinism).
func banksByDistance(hops []int) []int {
	idx := make([]int, len(hops))
	for i := range idx {
		idx[i] = i
	}
	// insertion sort: tiny n, stable
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && hops[idx[j]] < hops[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the statistics (the BankAccesses slice is
// copied).
func (c *Cache) Stats() Stats {
	s := c.stats
	s.BankAccesses = append([]uint64(nil), c.stats.BankAccesses...)
	return s
}

// Network exposes the underlying network model (for power accounting).
func (c *Cache) Network() *noc.Network { return c.net }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr / LineBytes
	return int(blk % uint64(c.nsets)), blk / uint64(c.nsets)
}

// bankOf returns the bank holding (set, way) under the active policy.
func (c *Cache) bankOf(set, way int) int {
	if c.cfg.Policy == DistributedSets {
		return set % c.cfg.Banks()
	}
	return c.bankOfWay[way]
}

// Access looks up addr, returning the access latency in cycles and
// whether it missed (the latency of a miss includes the probe that
// discovered the miss but not the 300-cycle memory trip, which the core
// model accounts separately so it can overlap it).
func (c *Cache) Access(addr uint64, write bool) (latency int, miss bool) {
	c.stats.Accesses++
	c.clock++
	set, tag := c.index(addr)
	ways := c.sets[set]

	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			bank := c.bankOf(set, w)
			lat := c.hitLatency(bank)
			ways[w].lru = c.clock
			if write {
				ways[w].dirty = true
			}
			c.stats.BankAccesses[bank]++
			c.net.Record(bank)
			c.stats.HitLatencySum += uint64(lat)
			if c.cfg.Policy == DistributedWays {
				c.promote(set, w)
			}
			return lat, false
		}
	}

	// Miss: fill LRU (or invalid) way.
	c.stats.Misses++
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.stats.Writebacks++
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	bank := c.bankOf(set, victim)
	c.stats.BankAccesses[bank]++
	c.net.Record(bank)
	return c.hitLatency(bank), true
}

// hitLatency is the controller-to-bank round trip plus bank access time,
// plus the central tag lookup for the ways policy.
func (c *Cache) hitLatency(bank int) int {
	lat := BankAccessCycles + c.net.RoundTripCycles(bank)
	if c.cfg.Policy == DistributedWays {
		lat += CentralTagCycles
	}
	return lat
}

// promote swaps a hit block one step toward the closest bank (way
// ordering is by distance under the distributed-ways policy), modeling
// gradual data migration.
func (c *Cache) promote(set, way int) {
	if way == 0 {
		return
	}
	ways := c.sets[set]
	ways[way], ways[way-1] = ways[way-1], ways[way]
}

// Probe reports presence without side effects.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// --- Paper configurations --------------------------------------------------

// Hop layouts calibrated to the paper's reported mean L2 hit latencies:
// 18 cycles for the 6-bank 2d-a organization and 22 cycles for the
// 15-bank 2d-2a organization; the 3d-2a top-die banks sit directly above
// the lower die so the inter-die via adds no hops and the mean horizontal
// distance stays at the 2d-a level (§3.3: "the move to 3D does not help
// reduce the average L2 hit time compared to 2d-a").
var (
	hops2DA  = []int{1, 1, 1, 2, 2, 2}
	hops2D2A = []int{1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3}
	hops3D2A = []int{1, 1, 1, 2, 2, 2, 1, 1, 1, 1, 2, 2, 2, 2, 2}
)

// Config2DA returns the 6 MB 6-bank baseline L2 (model 2d-a and the
// lower die of 3d-checker).
func Config2DA(p Policy) Config {
	return Config{Name: "2d-a", Policy: p, HopsPerBank: append([]int(nil), hops2DA...)}
}

// Config2D2A returns the 15 MB 15-bank single-die L2 (model 2d-2a).
func Config2D2A(p Policy) Config {
	return Config{Name: "2d-2a", Policy: p, HopsPerBank: append([]int(nil), hops2D2A...)}
}

// Config3D2A returns the 15 MB L2 with 6 lower-die banks and 9 banks on
// the stacked die (model 3d-2a).
func Config3D2A(p Policy) Config {
	return Config{Name: "3d-2a", Policy: p, HopsPerBank: append([]int(nil), hops3D2A...)}
}
