// Package wire models the paper's §3.4 interconnect evaluation: the
// horizontal pipelined global wires that carry inter-core and L2 traffic
// (length, metalization area, power) and the die-to-die via pillars of
// the 3D stack (count, capacitance, power, area), plus the Table 4
// bandwidth budget that fixes how many vias the stack needs.
package wire

import (
	"fmt"

	"r3d/internal/floorplan"
	"r3d/internal/ooo"
)

// Constants from §3.4 (65 nm, 2 GHz, 1 V).
const (
	// GlobalWirePitchNm is the pitch of top-level metal.
	GlobalWirePitchNm = 210.0
	// D2DViaLengthUm is the assumed die-to-die via length.
	D2DViaLengthUm = 10.0
	// D2DViaCapPerUm is the worst-case capacitance of a d2d via
	// surrounded by 8 neighbours, farads per micron.
	D2DViaCapPerUm = 0.594e-15
	// D2DViaWidthUm and D2DViaSpacingUm give the via footprint.
	D2DViaWidthUm   = 5.0
	D2DViaSpacingUm = 5.0
	// SupplyV and FreqGHz are the nominal operating point.
	SupplyV = 1.0
	FreqGHz = 2.0
	// GlobalWireCapPerMM is the effective capacitance of a
	// power-optimized repeated global wire including its repeaters,
	// F/mm (after [6]; calibrated against the paper's ≈0.45 mW/mm bus
	// power at 2 GHz).
	GlobalWireCapPerMM = 0.45e-12
	// WireActivity is the average toggle activity of the inter-core and
	// L2 buses.
	WireActivity = 0.5
	// L2BusBits is the width of the L2 data network links (matches the
	// Table 4 L2 transfer pillar: 64 addr + 256 data + 64 control).
	L2BusBits = 384
)

// SignalGroup is one Table 4 row: a bundle of values that crosses
// between the cores each cycle.
type SignalGroup struct {
	Name string
	// Bits is the bundle width (width × 64-bit values, etc.).
	Bits int
	// Via is where the d2d via pillar lands (Table 4 "Placement").
	Via string
}

// Table4 returns the inter-core bandwidth budget for a core
// configuration (Table 4 of the paper): loads and stores carry 64-bit
// values at their issue widths, branch outcomes one bit, register
// values 192 bits (two operands + result, the RVP bundle) at issue
// width, and the L2 transfer pillar carries 384 bits.
func Table4(cfg ooo.Config) []SignalGroup {
	return []SignalGroup{
		{Name: "Loads", Bits: cfg.LoadPorts * 64, Via: "LSQ"},
		{Name: "Branch outcome", Bits: 1, Via: "Bpred"},
		{Name: "Stores", Bits: cfg.StorePorts * 64, Via: "LSQ"},
		{Name: "Register values", Bits: cfg.IssueWidth * 192, Via: "Register File"},
		{Name: "L2 cache transfer", Bits: L2BusBits, Via: "L2 Cache Controller"},
	}
}

// InterCoreVias returns the via count between the cores (everything
// except the L2 pillar) and the total including it. For the paper's
// 4-wide core: 1025 and 1409.
func InterCoreVias(cfg ooo.Config) (interCore, total int) {
	for _, g := range Table4(cfg) {
		total += g.Bits
		if g.Name != "L2 cache transfer" {
			interCore += g.Bits
		}
	}
	return total - L2BusBits, total
}

// D2DViaPower returns the total dynamic power of n die-to-die vias in
// watts at full toggle rate: P = C·V²·f per via (the paper's 0.011 mW
// per via, 15.49 mW for all 1409).
func D2DViaPower(n int) float64 {
	c := D2DViaCapPerUm * D2DViaLengthUm
	per := c * SupplyV * SupplyV * FreqGHz * 1e9
	return per * float64(n)
}

// D2DViaAreaMM2 returns the silicon area of n vias: width × (width +
// spacing) each (0.07 mm² for 1409 vias).
func D2DViaAreaMM2(n int) float64 {
	per := D2DViaWidthUm * (D2DViaWidthUm + D2DViaSpacingUm) * 1e-6 // mm²
	return per * float64(n)
}

// Route is one routed bundle: a wire count and a length.
type Route struct {
	Name     string
	Bits     int
	LengthMM float64
}

// TotalWireMM returns Σ bits×length — the §3.4 "total length of
// horizontal wires" metric.
func TotalWireMM(routes []Route) float64 {
	var t float64
	for _, r := range routes {
		t += float64(r.Bits) * r.LengthMM
	}
	return t
}

// MetalAreaMM2 returns the metalization area at the global-wire pitch.
func MetalAreaMM2(routes []Route) float64 {
	return TotalWireMM(routes) * GlobalWirePitchNm * 1e-6 // nm → mm
}

// PowerW returns the switching power of the routed bundles for
// power-optimized repeated global wires at the nominal operating point.
func PowerW(routes []Route, activity float64) float64 {
	mm := TotalWireMM(routes)
	return GlobalWireCapPerMM * mm * SupplyV * SupplyV * FreqGHz * 1e9 * activity
}

// InterCoreRoutes derives the inter-core bundle routes from a floorplan:
// each Table 4 group runs from its source block to the checker (2D) or
// to the checker's via pillar (3D, horizontal distance only — the
// vertical hop is microns). An error is returned if the floorplan lacks
// the blocks.
func InterCoreRoutes(f *floorplan.Floorplan, cfg ooo.Config) ([]Route, error) {
	srcOf := map[string]string{
		"Loads":           "DCache",
		"Branch outcome":  "Bpred",
		"Stores":          "LSQ",
		"Register values": "IntRF",
	}
	var out []Route
	for _, g := range Table4(cfg) {
		if g.Name == "L2 cache transfer" {
			continue
		}
		src := srcOf[g.Name]
		d, err := f.WireLengthMM(src, "Checker")
		if err != nil {
			return nil, err
		}
		out = append(out, Route{Name: g.Name, Bits: g.Bits, LengthMM: d})
	}
	return out, nil
}

// L2Routes derives the L2 network link routes from a floorplan: one
// 384-bit link from the L2 controller block to each bank (the grid
// network's aggregate wiring).
func L2Routes(f *floorplan.Floorplan, bankPrefixes []string) ([]Route, error) {
	var out []Route
	for _, prefix := range bankPrefixes {
		for i := 0; ; i++ {
			name := fmt.Sprintf("%s%d", prefix, i)
			if _, ok := f.BlockNamed(name); !ok {
				break
			}
			d, err := f.WireLengthMM("L2Ctl", name)
			if err != nil {
				return nil, err
			}
			out = append(out, Route{Name: name, Bits: L2BusBits, LengthMM: d})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wire: no banks found on %s", f.Name)
	}
	return out, nil
}
