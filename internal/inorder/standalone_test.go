package inorder

import (
	"testing"

	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/trace"
)

func runStandalone(t *testing.T, bench string, n uint64) StandaloneStats {
	t.Helper()
	b, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.MustGenerator(b.Profile, 21)
	c, err := NewStandalone(Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)), 300)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run(n)
}

func TestStandaloneExecutes(t *testing.T) {
	s := runStandalone(t, "gzip", 60000)
	if s.Instructions != 60000 {
		t.Fatalf("ran %d instructions, want 60000", s.Instructions)
	}
	ipc := s.IPC()
	if ipc <= 0 || ipc > 4 {
		t.Fatalf("implausible in-order IPC %.2f", ipc)
	}
	if s.Mispredicts == 0 {
		t.Error("real branch predictor must mispredict sometimes")
	}
}

func TestDegradedModeSlowerThanOoO(t *testing.T) {
	// Footnote 1: running the workload on the in-order checker (after a
	// hard error in the leading core) costs performance — real data
	// stalls replace RVP's perfect operands.
	for _, bench := range []string{"gzip", "mesa"} {
		b, _ := trace.ByName(bench)
		g := trace.MustGenerator(b.Profile, 22)
		lead, _ := ooo.New(ooo.Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)))
		oooIPC := lead.Run(60000).IPC()

		st := runStandalone(t, bench, 60000)
		if st.IPC() >= oooIPC {
			t.Errorf("%s: degraded mode IPC %.2f should be below out-of-order %.2f",
				bench, st.IPC(), oooIPC)
		}
	}
}

func TestStandaloneDependenceSensitivity(t *testing.T) {
	// Without RVP, a serial-chain workload (mcf) should sit much further
	// below a parallel one (galgel) than width alone explains.
	chain := runStandalone(t, "mcf", 40000)
	wide := runStandalone(t, "galgel", 40000)
	if chain.IPC() >= wide.IPC() {
		t.Errorf("mcf %.2f should be slower than galgel %.2f in order", chain.IPC(), wide.IPC())
	}
}

func TestStandaloneRejectsInvalidConfig(t *testing.T) {
	bad := Default()
	bad.Width = 0
	b, _ := trace.ByName("gzip")
	g := trace.MustGenerator(b.Profile, 1)
	if _, err := NewStandalone(bad, g, nuca.New(nuca.Config2DA(nuca.DistributedSets)), 300); err == nil {
		t.Fatal("invalid config accepted")
	}
}
