// Command r3dheat solves the steady-state thermal field of one chip
// model and renders each die's active-layer temperature map as ASCII —
// the quickest way to see where a floorplan puts its heat.
//
//	r3dheat -model 3d-2a -checker 15
//	r3dheat -model 3d-2a -checker 15 -corner
package main

import (
	"flag"
	"fmt"
	"log"

	"r3d/internal/experiment"
	"r3d/internal/floorplan"
	"r3d/internal/power"
)

func main() {
	model := flag.String("model", "3d-2a", "chip model: 2d-a, 2d-2a, 3d-2a, 3d-checker")
	checkerW := flag.Float64("checker", power.CheckerPessimisticW, "checker power (W)")
	corner := flag.Bool("corner", false, "place the checker at the top-die corner")
	cols := flag.Int("cols", 50, "heatmap width in characters")
	flag.Parse()

	var m experiment.ChipModel
	switch *model {
	case "2d-a":
		m = experiment.M2DA
	case "2d-2a":
		m = experiment.M2D2A
	case "3d-2a":
		m = experiment.M3D2A
	case "3d-checker":
		m = experiment.M3DChecker
	default:
		log.Fatalf("unknown model %q", *model)
	}

	q := experiment.Fast()
	q.Benchmarks = []string{"gzip", "mesa", "swim"}
	s := experiment.NewSession(q)
	act, rate, err := s.SuiteActivity(experiment.L2DA)
	if err != nil {
		log.Fatal(err)
	}
	opt := floorplan.DefaultOptions()
	opt.CheckerAtCorner = *corner

	solver, res, err := s.SolveThermalDetailed(experiment.ThermalCase{
		Model: m, Opt: opt, Act: act, L2Rate: rate, CheckerW: *checkerW,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, checker %.0f W: peak %.1f °C (die1 %.1f)\n\n", *model, *checkerW, res.PeakC, res.PeakDie1C)
	layers := solver.HeatLayers()
	names := []string{"die 1 (leading core)", "die 2 (checker + L2)"}
	for i, l := range layers {
		fmt.Printf("%s\n%s\n", names[i], solver.HeatmapASCII(l, *cols))
	}
}
