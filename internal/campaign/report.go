package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary aggregates a campaign's outcomes.
type Summary struct {
	Trials  int `json:"trials"`
	OK      int `json:"ok"`
	Hung    int `json:"hung"`
	Crashed int `json:"crashed"`
	// Retried counts trials that needed more than one attempt.
	Retried int `json:"retried"`
	// Injection totals over every trial that produced statistics (ok
	// and hung; crashed trials have none).
	Instructions uint64 `json:"instructions"`
	LeadInjected uint64 `json:"lead_injected"`
	RFInjected   uint64 `json:"rf_injected"`
	MBUs         uint64 `json:"mbus"`
	Detected     uint64 `json:"detected"`
	Unrecovered  uint64 `json:"unrecovered"`
	// MeanCoverage averages per-trial coverage over ok trials with at
	// least one leading-side injection.
	MeanCoverage float64 `json:"mean_coverage"`
}

// ShadowDivergence is one failed shadow re-verification: a restored
// outcome whose from-scratch recomputation no longer matches it
// byte-for-byte. It is the campaign-level mirror of the paper's RMT
// checker flagging a leading-thread result it cannot reproduce.
type ShadowDivergence struct {
	ID         string `json:"id"`
	Stored     string `json:"stored"`
	Recomputed string `json:"recomputed"`
}

// Report is the deterministic aggregate of a campaign: trials sorted by
// ID — never by completion order — so a parallel, interrupted-and-
// resumed run encodes byte-identically to a serial fresh one. The
// shadow and interrupt fields encode as absent when clean, so a clean
// run's JSON is unchanged from builds that predate them.
type Report struct {
	Trials  []TrialOutcome `json:"trials"`
	Summary Summary        `json:"summary"`
	// Interrupted marks a gracefully drained run: the report covers only
	// the trials that finished, and the journal/checkpoint can resume it.
	Interrupted bool `json:"interrupted,omitempty"`
	// ShadowDivergences lists restored outcomes (ID-sorted) that failed
	// re-verification.
	ShadowDivergences []ShadowDivergence `json:"shadow_divergences,omitempty"`
	// ShadowChecked counts shadow re-verifications actually executed.
	// Diagnostic only — excluded from the canonical encoding.
	ShadowChecked int `json:"-"`
	// Notes carries restore/checkpoint diagnostics for the caller to
	// surface on stderr; like ShadowChecked it never reaches the JSON.
	Notes []string `json:"-"`
}

// buildReport orders outcomes by trial ID and computes the summary in
// that order, keeping float accumulation order-stable.
func buildReport(outcomes []TrialOutcome) *Report {
	trials := make([]TrialOutcome, len(outcomes))
	copy(trials, outcomes)
	sort.Slice(trials, func(i, j int) bool { return trials[i].ID < trials[j].ID })

	var sum Summary
	sum.Trials = len(trials)
	covered := 0
	for _, t := range trials {
		switch t.Status {
		case StatusOK:
			sum.OK++
		case StatusHung:
			sum.Hung++
		case StatusCrashed:
			sum.Crashed++
		}
		if t.Attempts > 1 {
			sum.Retried++
		}
		if t.Result == nil {
			continue
		}
		sum.Instructions += t.Result.Instructions
		sum.LeadInjected += t.Result.LeadInjected
		sum.RFInjected += t.Result.RFInjected
		sum.MBUs += t.Result.MBUs
		sum.Detected += t.Result.Detected
		sum.Unrecovered += t.Result.Unrecovered
		if t.Status == StatusOK && t.Result.LeadInjected > 0 {
			sum.MeanCoverage += t.Result.Coverage()
			covered++
		}
	}
	if covered > 0 {
		sum.MeanCoverage /= float64(covered)
	}
	return &Report{Trials: trials, Summary: sum}
}

// JSON encodes the report with stable indentation; two runs over the
// same grid produce byte-identical output.
func (r *Report) JSON() ([]byte, error) {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// Table renders a human-readable per-trial table plus the summary.
func (r *Report) Table() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 0, 4, 2, ' ', 0)
	// Writes through the tabwriter land in the strings.Builder and
	// cannot fail; discard the vacuous errors explicitly.
	row := func(format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }
	row("trial\tstatus\tattempts\tinstr\tcycles\tinjected\tdetected\tcoverage\tnote\n")
	for _, t := range r.Trials {
		instr, cycles, injected, detected := "-", "-", "-", "-"
		coverage := "-"
		if t.Result != nil {
			instr = fmt.Sprintf("%d", t.Result.Instructions)
			cycles = fmt.Sprintf("%d", t.Result.Cycles)
			injected = fmt.Sprintf("%d", t.Result.LeadInjected+t.Result.RFInjected)
			detected = fmt.Sprintf("%d", t.Result.Detected)
			if t.Result.LeadInjected > 0 {
				coverage = fmt.Sprintf("%.2f", t.Result.Coverage())
			}
		}
		note := t.Reason
		if t.Status == StatusHung && t.HungAtCycle > 0 {
			note = fmt.Sprintf("%s @cycle %d", t.Reason, t.HungAtCycle)
		}
		row("%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			t.ID, t.Status, t.Attempts, instr, cycles, injected, detected, coverage, note)
	}
	//lint:ignore errdrop tabwriter flush into a strings.Builder cannot fail
	w.Flush()
	s := r.Summary
	fmt.Fprintf(&b, "\n%d trials: %d ok, %d hung, %d crashed (%d retried)\n",
		s.Trials, s.OK, s.Hung, s.Crashed, s.Retried)
	fmt.Fprintf(&b, "injected %d lead + %d RF (%d MBUs), detected %d, unrecovered %d, mean coverage %.2f\n",
		s.LeadInjected, s.RFInjected, s.MBUs, s.Detected, s.Unrecovered, s.MeanCoverage)
	if r.Interrupted {
		fmt.Fprintf(&b, "interrupted: drained gracefully; resume with -restore to finish the grid\n")
	}
	if r.ShadowChecked > 0 {
		fmt.Fprintf(&b, "shadow-verified %d restored outcome(s), %d divergence(s)\n",
			r.ShadowChecked, len(r.ShadowDivergences))
	}
	for _, d := range r.ShadowDivergences {
		fmt.Fprintf(&b, "  SHADOW DIVERGENCE %s:\n    stored:     %s\n    recomputed: %s\n", d.ID, d.Stored, d.Recomputed)
	}
	return b.String()
}
