package core

import (
	"testing"

	"r3d/internal/inorder"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/trace"
)

func newSystem(t *testing.T, bench string, seed int64) *System {
	t.Helper()
	b, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.MustGenerator(b.Profile, seed)
	lead, err := ooo.New(ooo.Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Default(ooo.Default()), lead)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Default(ooo.Default())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.RVQSize = 0 },
		func(c *Config) { c.LeadFreqGHz = 0 },
		func(c *Config) { c.RVQLo, c.RVQHi = 100, 50 },
		func(c *Config) { c.RVQHi = c.RVQSize + 1 },
		func(c *Config) { c.DFSIntervalCycles = 0 },
		func(c *Config) { c.Lead.ROBSize = 0 },
		func(c *Config) { c.Checker.Width = 0 },
	}
	for i, mutate := range cases {
		c := Default(ooo.Default())
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCleanRunNoErrors(t *testing.T) {
	s := newSystem(t, "gzip", 1)
	st := s.Run(50000)
	if st.ErrorsDetected != 0 {
		t.Fatalf("clean run detected %d errors", st.ErrorsDetected)
	}
	if s.Lead().Stats().Instructions != 50000 {
		t.Fatalf("leading committed %d, want 50000", s.Lead().Stats().Instructions)
	}
	cs := s.Checker().Stats()
	if cs.Checked == 0 {
		t.Fatal("checker checked nothing")
	}
}

func TestCheckerLagsWithinSlack(t *testing.T) {
	s := newSystem(t, "vpr", 2)
	s.Run(60000)
	// The checker can lag by at most the RVQ capacity; everything else
	// must already be checked.
	lead := s.Lead().Stats().Instructions
	checked := s.Checker().Stats().Checked
	if checked > lead {
		t.Fatalf("checker checked %d > committed %d", checked, lead)
	}
	if lead-checked > DefaultRVQSize {
		t.Fatalf("slack %d exceeds RVQ size", lead-checked)
	}
}

func TestNegligibleLeadingSlowdown(t *testing.T) {
	// §2.1/§3.3: the checker rarely stalls the leading thread. Compare
	// the leading core's IPC with and without the RMT coupling.
	b, _ := trace.ByName("gzip")
	g1 := trace.MustGenerator(b.Profile, 3)
	alone, _ := ooo.New(ooo.Default(), g1, nuca.New(nuca.Config2DA(nuca.DistributedSets)))
	ipcAlone := alone.Run(80000).IPC()

	s := newSystem(t, "gzip", 3)
	s.Run(80000)
	ipcRMT := s.Lead().Stats().IPC()

	if ipcRMT < ipcAlone*0.98 {
		t.Errorf("RMT slows leading core: %.3f vs %.3f alone", ipcRMT, ipcAlone)
	}
}

func TestDFSSettlesBelowPeak(t *testing.T) {
	// The checker's high ILP lets it track the leading core at a
	// fraction of the peak frequency (§3.5: mean well below f).
	s := newSystem(t, "gzip", 4)
	s.Run(120000)
	mean := s.MeanCheckerFreqGHz()
	if mean >= 1.6 {
		t.Errorf("mean checker frequency %.2f GHz, want well below 2 GHz", mean)
	}
	if mean <= 0.2 {
		t.Errorf("mean checker frequency %.2f GHz suspiciously low", mean)
	}
	// Residency histogram total equals wall time.
	if got, want := s.FreqResidency().Total(), s.Stats().WallTimePs; got != want {
		t.Errorf("histogram mass %.0f != wall time %.0f", got, want)
	}
}

func TestHighIPCWorkloadNeedsHigherCheckerFreq(t *testing.T) {
	sLow := newSystem(t, "mcf", 5) // leading IPC ≈ 0.4
	sLow.Run(60000)
	sHigh := newSystem(t, "mesa", 5) // leading IPC ≈ 2.7
	sHigh.Run(60000)
	if sHigh.MeanCheckerFreqGHz() <= sLow.MeanCheckerFreqGHz() {
		t.Errorf("mesa checker freq %.2f should exceed mcf %.2f",
			sHigh.MeanCheckerFreqGHz(), sLow.MeanCheckerFreqGHz())
	}
}

func TestLeadResultCorruptionDetectedAndRecovered(t *testing.T) {
	s := newSystem(t, "gzip", 6)
	s.Run(5000)
	s.CorruptNextLeadResult(1 << 17)
	st := s.Run(30000)
	if st.ErrorsDetected == 0 {
		t.Fatal("injected leading-core error never detected")
	}
	if st.ErrorsRecovered == 0 {
		t.Fatal("error should have been recovered (clean trailer RF)")
	}
	if st.ErrorsUnrecovered != 0 {
		t.Fatalf("unexpected unrecoverable errors: %d", st.ErrorsUnrecovered)
	}
	if st.RecoveryStalls == 0 {
		t.Fatal("recovery must stall the leading core")
	}
}

func TestCheckerRFMultiBitUnrecoverable(t *testing.T) {
	s := newSystem(t, "vortex", 7)
	s.Run(5000)
	// Corrupt a trailer register beyond ECC, then trigger a detection on
	// that register when it is next read.
	s.CorruptCheckerRF(3, 3)
	s.Run(40000)
	st := s.Stats()
	if st.ErrorsDetected == 0 {
		t.Skip("register 3 never read in window (acceptable)")
	}
	if st.ErrorsUnrecovered == 0 {
		t.Fatal("multi-bit trailer RF corruption must count as unrecoverable")
	}
}

func TestDetectionLatencyBoundedBySlack(t *testing.T) {
	s := newSystem(t, "gzip", 8)
	s.Run(5000)
	s.CorruptNextLeadResult(0xf0)
	st := s.Run(20000)
	if st.ErrorsDetected == 0 {
		t.Fatal("no detection")
	}
	mean := float64(st.DetectionSlackSum) / float64(st.ErrorsDetected)
	if mean > float64(DefaultRVQSize) {
		t.Errorf("detection slack %.0f exceeds RVQ capacity", mean)
	}
}

func TestTrafficCounts(t *testing.T) {
	s := newSystem(t, "swim", 9)
	st := s.Run(40000)
	tr := st.Traffic
	if tr.RegisterValues == 0 || tr.LoadValues == 0 || tr.StoreValues == 0 || tr.BranchOutcomes == 0 {
		t.Fatalf("traffic missing components: %+v", tr)
	}
	// Register values cover every committed instruction that reached
	// the RVQ (possibly still in flight at the end).
	lead := s.Lead().Stats().Instructions
	if tr.RegisterValues != lead {
		t.Errorf("register values %d != committed %d", tr.RegisterValues, lead)
	}
	if tr.LoadValues >= tr.RegisterValues {
		t.Error("loads must be a strict subset of instructions")
	}
}

func TestCheckerCycleHookSeesPeriod(t *testing.T) {
	s := newSystem(t, "gzip", 10)
	var calls int
	var minP, maxP = 1e18, 0.0
	s.SetCheckerCycleHook(func(periodPs float64, c *inorder.Checker) {
		calls++
		if periodPs < minP {
			minP = periodPs
		}
		if periodPs > maxP {
			maxP = periodPs
		}
	})
	s.Run(40000)
	if calls == 0 {
		t.Fatal("hook never called")
	}
	if minP < 500-1e-9 {
		t.Errorf("checker period %.0f ps below the 2 GHz bound", minP)
	}
	if maxP <= minP {
		t.Errorf("DFS never changed the period: min %.0f max %.0f", minP, maxP)
	}
}

func TestHeterogeneousCapClampsFrequency(t *testing.T) {
	// §4: a 90 nm checker die is capped at 1.4 GHz.
	b, _ := trace.ByName("mesa") // demanding workload pushes the cap
	g := trace.MustGenerator(b.Profile, 11)
	lead, _ := ooo.New(ooo.Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)))
	cfg := Default(ooo.Default())
	cfg.CheckerMaxFreqGHz = 1.4
	s, err := New(cfg, lead)
	if err != nil {
		t.Fatal(err)
	}
	var over int
	s.SetCheckerCycleHook(func(periodPs float64, c *inorder.Checker) {
		if periodPs < 1000.0/1.4-1e-9 {
			over++
		}
	})
	s.Run(60000)
	if over > 0 {
		t.Fatalf("checker exceeded the 1.4 GHz cap %d times", over)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := newSystem(t, "twolf", 12)
	b := newSystem(t, "twolf", 12)
	sa, sb := a.Run(40000), b.Run(40000)
	if sa != sb {
		t.Fatalf("RMT run not deterministic:\n%+v\n%+v", sa, sb)
	}
}

func TestMeanRVQOccupancyWithinBounds(t *testing.T) {
	s := newSystem(t, "gap", 13)
	st := s.Run(60000)
	occ := st.MeanRVQOccupancy()
	if occ <= 0 || occ > float64(DefaultRVQSize) {
		t.Errorf("mean RVQ occupancy %.1f out of range", occ)
	}
}

func TestProgressAdvancesOnCleanRun(t *testing.T) {
	s := newSystem(t, "gzip", 9)
	if s.Progress() != 0 {
		t.Fatalf("fresh system reports progress %d", s.Progress())
	}
	last := uint64(0)
	for i := 0; i < 5; i++ {
		s.Run(uint64(10_000 * (i + 1)))
		p := s.Progress()
		if p <= last {
			t.Fatalf("progress did not advance: %d after %d", p, last)
		}
		last = p
	}
	want := s.Lead().Stats().Instructions + s.Checker().Stats().Checked
	if last != want {
		t.Errorf("progress %d != commits+checked %d", last, want)
	}
}

func TestWedgeCheckerLivelocksLeadingThread(t *testing.T) {
	s := newSystem(t, "gzip", 10)
	s.Run(20_000)
	s.WedgeChecker()
	if !s.Wedged() {
		t.Fatal("Wedged() false after WedgeChecker")
	}
	// The leading thread runs on until the RVQ barrier fills, then all
	// forward progress must stop: the checker earns no cycles, nothing
	// drains, and the commit budget collapses to zero.
	s.lead.SetFetchBudget(^uint64(0))
	for i := 0; i < 2*DefaultRVQSize; i++ {
		s.Step()
	}
	wedgedAt := s.Progress()
	checked := s.Checker().Stats().Checked
	for i := 0; i < 50_000; i++ {
		s.Step()
	}
	if p := s.Progress(); p != wedgedAt {
		t.Errorf("wedged system still made progress: %d -> %d", wedgedAt, p)
	}
	if c := s.Checker().Stats().Checked; c != checked {
		t.Errorf("wedged checker still checked instructions: %d -> %d", checked, c)
	}
	if s.RVQOccupancy() != DefaultRVQSize {
		t.Errorf("RVQ not saturated under wedge: %d/%d", s.RVQOccupancy(), DefaultRVQSize)
	}
	// Drain must refuse to spin on a wedged system.
	if n := s.Drain(); n != 0 {
		t.Errorf("Drain on a wedged system should return immediately, spent %d cycles", n)
	}
}
