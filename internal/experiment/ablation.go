package experiment

import (
	"fmt"
	"strings"

	"r3d/internal/core"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/power"
)

// DFSVariant is one throttling-heuristic configuration for the ablation
// of the paper's Discussion paragraph (§4): an aggressive heuristic
// slows the checker further — lowering its power and temperature — but
// can stall the main core; the paper deliberately chose the less
// aggressive one.
type DFSVariant struct {
	Name string
	// Lo/Hi are the RVQ occupancy thresholds; Interval the evaluation
	// period in leading cycles.
	Lo, Hi   int
	Interval int
	// Emergency keeps the queue-full single-cycle ramp; the aggressive
	// variant disables it and accepts main-core stalls.
	Emergency bool
}

// DFSVariants returns the ablation points: the paper's default, a more
// aggressive heuristic (slow the checker until the queue is nearly
// full), and a conservative one (keep the queue nearly empty).
func DFSVariants() []DFSVariant {
	return []DFSVariant{
		{Name: "conservative", Lo: 20, Hi: 60, Interval: 100, Emergency: true},
		{Name: "default", Lo: 60, Hi: 120, Interval: 100, Emergency: true},
		{Name: "aggressive", Lo: 150, Hi: 195, Interval: 400, Emergency: false},
	}
}

// DFSAblationRow is one variant's outcome.
type DFSAblationRow struct {
	Variant       string
	MeanFreqGHz   float64
	CheckerPowerW float64 // 15 W-class checker at the measured DFS point
	LeadIPC       float64
	SlowdownPct   float64 // vs the standalone leading core
	LeadStallFrac float64 // fraction of cycles commit-stalled on queues
	MeanOccupancy float64
}

// DFSAblationResult is the heuristic ablation.
type DFSAblationResult struct {
	Rows []DFSAblationRow
}

// DFSAblation evaluates the DFS heuristic variants over the session's
// suite.
func DFSAblation(s *Session) (DFSAblationResult, error) {
	suite := s.Q.Suite()
	n := float64(len(suite))
	model := power.NewCheckerModel(power.CheckerPessimisticW)

	var res DFSAblationResult
	for _, v := range DFSVariants() {
		row := DFSAblationRow{Variant: v.Name}
		var ipcBase float64
		for _, b := range suite {
			base, err := s.Leading(b.Profile.Name, L2DA, nuca.DistributedSets, 0)
			if err != nil {
				return res, err
			}
			ipcBase += base.IPC() / n

			r, err := s.rmtVariant(b.Profile.Name, v)
			if err != nil {
				return res, err
			}
			row.MeanFreqGHz += r.MeanFreqGHz / n
			row.LeadIPC += r.Lead.IPC() / n
			row.CheckerPowerW += model.Power(r.MeanFreqGHz/2.0, r.CheckerUtil) / n
			if r.Lead.Activity.Cycles > 0 {
				row.LeadStallFrac += float64(r.Sys.LeadStallCycles) / float64(r.Lead.Activity.Cycles) / n
			}
			row.MeanOccupancy += r.Sys.MeanRVQOccupancy() / n
		}
		row.SlowdownPct = (1 - row.LeadIPC/ipcBase) * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// DFSAblationManifest declares the ablation's windows: the per-bench
// baselines plus one variant window per (variant, bench).
func DFSAblationManifest(q Quality) []RunKey {
	keys := suiteLeadKeys(q, L2DA, nuca.DistributedSets, 0)
	for _, v := range DFSVariants() {
		for _, b := range q.Suite() {
			keys = append(keys, DFSVariantKey(q, b.Profile.Name, v.Name))
		}
	}
	return keys
}

// rmtVariant returns the memoized RMT window for a DFS variant.
func (s *Session) rmtVariant(bench string, v DFSVariant) (RMTRun, error) {
	r, err := s.eng.Get(DFSVariantKey(s.Q, bench, v.Name))
	return r.rmt, err
}

// computeDFSVariant is the KindDFSVariant window body: an RMT window
// with the named variant's thresholds substituted into the DFS
// controller.
func (s *Session) computeDFSVariant(k RunKey) (RMTRun, error) {
	var v DFSVariant
	found := false
	for _, cand := range DFSVariants() {
		if cand.Name == k.DFSVariant {
			v, found = cand, true
			break
		}
	}
	if !found {
		return RMTRun{}, fmt.Errorf("experiment: unknown DFS variant %q", k.DFSVariant)
	}
	cfg := core.Default(ooo.Default())
	cfg.RVQLo, cfg.RVQHi, cfg.DFSIntervalCycles = v.Lo, v.Hi, v.Interval
	cfg.EmergencyRamp = v.Emergency
	return s.runRMTWindow(k, cfg)
}

// String renders the ablation table.
func (r DFSAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFS heuristic ablation (§4 Discussion)\n")
	fmt.Fprintf(&b, "  %-13s %9s %10s %9s %10s %9s\n", "variant", "mean GHz", "checker W", "lead IPC", "slowdown", "mean RVQ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-13s %9.2f %10.1f %9.2f %9.2f%% %9.0f\n",
			row.Variant, row.MeanFreqGHz, row.CheckerPowerW, row.LeadIPC, row.SlowdownPct, row.MeanOccupancy)
	}
	b.WriteString("  (aggressive throttling cuts checker power but risks stalling the\n")
	b.WriteString("   main core — the paper picks the heuristic that never does)\n")
	return b.String()
}
