package lint

import (
	"go/ast"
	"go/types"
)

// DetTaint propagates nondeterminism taint through the whole-program
// call graph. The v1 wallclock/globalrand/maporder checks are purely
// local: they flag a time.Now, a global math/rand draw or a map
// iteration at the line it appears on, so a source laundered through
// one wrapper function — `func stamp() int64 { return clock() }` with
// `clock` calling time.Now — sails straight into model code unseen.
// DetTaint closes that hole: a function is tainted if it (or anything
// it can reach through calls, method values, or conservative interface
// dispatch) observes a nondeterminism source, and any reference from
// model code (internal/ packages) to a tainted module function is a
// finding, with the taint chain spelled out.
//
// A reasoned //lint:ignore wallclock / globalrand / maporder / dettaint
// directive at the source stops propagation there: a justified boundary
// (e.g. the campaign harness's opt-in host-clock stall guard) must not
// taint every caller above it.
var DetTaint = &Analyzer{
	Name:      "dettaint",
	Doc:       "model code reaches a nondeterminism source through the call graph",
	RunModule: runDetTaint,
}

// sourceDesc classifies a function object as a nondeterminism source,
// returning a human-readable description or "".
func sourceDesc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "time." + fn.Name() + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions draw from the process-global
		// generator; methods on *rand.Rand are seeded per component.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
			return pkg.Path() + "." + fn.Name() + " (process-global RNG)"
		}
	}
	return ""
}

// sourceCheck is the local analyzer that would flag a direct use of the
// source; its //lint:ignore directives stop taint seeding too.
func sourceCheck(fn *types.Func) string {
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
		return WallClock.Name
	}
	return GlobalRand.Name
}

// taint is the reason one function is nondeterministic: the chain of
// calls from it to a source.
type taint struct {
	chain string // e.g. "stamp → clock → time.Now (wall clock)"
}

func runDetTaint(mp *ModulePass) {
	cg := BuildCallGraph(mp.Pkgs)
	nodes := cg.SortedNodes()

	// Seed: functions that directly observe a source (unless a reasoned
	// directive covers the source line — for the dettaint check itself
	// or for the local check that owns the source).
	tainted := map[*types.Func]taint{}
	for _, n := range nodes {
		for _, ref := range n.Refs {
			desc := sourceDesc(ref.Obj)
			if desc == "" {
				continue
			}
			if mp.SuppressedAt(ref.Pos, "dettaint") || mp.SuppressedAt(ref.Pos, sourceCheck(ref.Obj)) {
				continue
			}
			if _, ok := tainted[n.Fn]; !ok {
				tainted[n.Fn] = taint{chain: n.Fn.Name() + " → " + desc}
			}
		}
		if _, ok := tainted[n.Fn]; ok {
			continue
		}
		if _, ok := unsanctionedMapRange(mp, n.Pkg, n.Decl.Body); ok {
			tainted[n.Fn] = taint{chain: n.Fn.Name() + " → map iteration (order randomized per run)"}
		}
	}

	// Propagate to callers until the fixpoint; node order is positional,
	// so the chains picked on ties are deterministic. Cycles converge
	// because a function already tainted is never revisited.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if _, ok := tainted[n.Fn]; ok {
				continue
			}
			for _, ref := range n.Refs {
				if t, ok := taintOf(tainted, ref); ok {
					tainted[n.Fn] = taint{chain: n.Fn.Name() + " → " + t.chain}
					changed = true
					break
				}
			}
		}
	}

	// Report every reference from model code to a tainted module
	// function, and any source captured as a bare function value (a
	// direct source *call* in model code is the local checks' finding,
	// not repeated here).
	for _, n := range nodes {
		if !inModelCode(n.Pkg) {
			continue
		}
		reportTaintedRefs(mp, n.Refs, tainted)
	}
	for _, pkg := range mp.Pkgs {
		if inModelCode(pkg) {
			reportTaintedRefs(mp, cg.InitRefs[pkg], tainted)
		}
	}
}

// taintOf resolves a reference against the taint map, following the
// conservative interface-dispatch candidates.
func taintOf(tainted map[*types.Func]taint, ref FuncRef) (taint, bool) {
	if t, ok := tainted[ref.Obj]; ok {
		return t, true
	}
	if ref.Iface {
		for _, c := range ref.Candidates {
			if t, ok := tainted[c]; ok {
				return t, true
			}
		}
	}
	return taint{}, false
}

// reportTaintedRefs emits the dettaint findings for one node or init
// block's references.
func reportTaintedRefs(mp *ModulePass, refs []FuncRef, tainted map[*types.Func]taint) {
	for _, ref := range refs {
		if desc := sourceDesc(ref.Obj); desc != "" {
			if !ref.Call {
				mp.Reportf(ref.Pos, "%s captured as a function value in model code; calls through it are untraceable — inject a deterministic substitute", desc)
			}
			continue
		}
		t, ok := taintOf(tainted, ref)
		if !ok {
			continue
		}
		if ref.Iface {
			mp.Reportf(ref.Pos, "dynamic call to %s may reach a nondeterminism source (%s)", ref.Obj.Name(), t.chain)
			continue
		}
		verb := "reference to"
		if ref.Call {
			verb = "call to"
		}
		mp.Reportf(ref.Pos, "%s %s reaches a nondeterminism source (%s)", verb, ref.Obj.Name(), t.chain)
	}
}

// unsanctionedMapRange finds a map iteration in body that is neither
// the sanctioned key-collection loop nor covered by a reasoned
// maporder/dettaint directive; such an iteration makes the enclosing
// function's behaviour order-dependent and therefore a taint seed.
func unsanctionedMapRange(mp *ModulePass, pkg *Package, body *ast.BlockStmt) (ast.Node, bool) {
	var hit ast.Node
	ast.Inspect(body, func(node ast.Node) bool {
		if hit != nil {
			return false
		}
		rs, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap || isKeyCollectionLoop(rs) {
			return true
		}
		if mp.SuppressedAt(rs.Pos(), MapOrder.Name) || mp.SuppressedAt(rs.Pos(), "dettaint") {
			return true
		}
		hit = rs
		return false
	})
	return hit, hit != nil
}
