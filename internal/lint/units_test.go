package lint

import (
	"strings"
	"testing"
)

func TestParseUnitsConf(t *testing.T) {
	table, bad := parseUnitsConf([]byte(`
# comment
type a/b.Celsius degC   # trailing comment
field a/b.Probe.TempC degC
param a/b.Set.target degC
return a/b.Ambient K
var a/b.Zero K

type a/b.Celsius degC
type a/b.Celsius K
bogus-kind a/b.X W
type too-few
`), "units.conf")
	if table.types["a/b.Celsius"] != "degC" {
		t.Errorf("type dim = %q, want degC", table.types["a/b.Celsius"])
	}
	if table.fields["a/b.Probe.TempC"] != "degC" || table.params["a/b.Set.target"] != "degC" ||
		table.results["a/b.Ambient"] != "K" || table.vars["a/b.Zero"] != "K" {
		t.Error("manifest kinds not routed to their tables")
	}
	// Exact redeclaration is fine; conflicting redeclaration, unknown
	// kind, and short lines are findings.
	if len(bad) != 3 {
		t.Fatalf("%d malformed-line findings, want 3: %v", len(bad), bad)
	}
	for _, f := range bad {
		if f.Check != "units" {
			t.Errorf("malformed line reported as %q, want units", f.Check)
		}
	}
	if !strings.Contains(bad[0].Message, "redeclared") {
		t.Errorf("conflict finding %q should say redeclared", bad[0].Message)
	}
}

// unitsFindings runs the dimension checks over one fixture package with
// an in-memory manifest.
func unitsFindings(t *testing.T, conf, src string) []Finding {
	t.Helper()
	pkgs := []*Package{checkFixture(t, modelPath, src)}
	table, bad := parseUnitsConf([]byte(conf), "units.conf")
	if len(bad) != 0 {
		t.Fatalf("fixture manifest is malformed: %v", bad)
	}
	ignores, _ := collectIgnores(fixFset, pkgs)
	var got []Finding
	mp := &ModulePass{
		Analyzer: Units,
		Fset:     fixFset,
		Pkgs:     pkgs,
		ignores:  ignores,
		report: func(f Finding) {
			if !ignores.suppressed(f) {
				got = append(got, f)
			}
		},
	}
	runUnitsTable(mp, table)
	sortFindings(got)
	return got
}

const unitsConfFixture = `
type ` + modelPath + `.Celsius degC
type ` + modelPath + `.Kelvin K
field ` + modelPath + `.Probe.TempC degC
param ` + modelPath + `.SetPoint.target degC
return ` + modelPath + `.Reading degC
var ` + modelPath + `.ZeroK K
`

func TestUnitsCrossDimensionUses(t *testing.T) {
	fs := unitsFindings(t, unitsConfFixture, `
package fixture

type Celsius float64

type Kelvin float64

type Probe struct{ TempC float64 }

const ZeroK = 273.15

func SetPoint(target float64) {}

// Reading launders a Kelvin out of a function declared (by manifest) to
// return Celsius.
func Reading(k Kelvin) float64 { return float64(k) }

func Mixed(c Celsius, k Kelvin, p *Probe) {
	_ = float64(c) + float64(k) // additive mix: float64() keeps the dimension
	p.TempC = float64(k)        // K value into a degC field
	SetPoint(float64(k))        // K argument for a degC parameter
	_ = Kelvin(c)               // direct cross-scale conversion
}
`)
	if len(fs) != 5 {
		t.Fatalf("%d findings, want 5:\n%v", len(fs), fs)
	}
	for i, want := range []string{
		"returning K value from function declared to return degC",
		"+ mixes dimensions degC and K",
		"assignment of K value to degC target",
		"argument target of SetPoint wants degC, got K",
		"conversion of degC value to K type",
	} {
		if !strings.Contains(fs[i].Message, want) {
			t.Errorf("finding %d = %q, want substring %q", i, fs[i].Message, want)
		}
	}
}

func TestUnitsRatiosAndScalesAreClean(t *testing.T) {
	wantChecks(t, unitsFindings(t, unitsConfFixture, `
package fixture

type Celsius float64

type Kelvin float64

type Probe struct{ TempC float64 }

const ZeroK = 273.15

func SetPoint(target float64) {}

func Reading(k Kelvin) float64 { return float64(k) / 1.0 }

func Sound(a, b Celsius, k Kelvin) {
	_ = a + b                        // same dimension
	_ = float64(a) / float64(k)      // ratio clears the dimension
	_ = float64(k) * 1e3             // scaling clears the dimension
	SetPoint(float64(a))             // degC argument, degC parameter
	_ = Celsius(float64(b))          // round-trip through float64 is same-dim
	_ = ZeroK + Kelvin(2)            // manifest var matches typed operand
}
`))
}

func TestUnitsCompositeLiteralFields(t *testing.T) {
	fs := unitsFindings(t, unitsConfFixture, `
package fixture

type Celsius float64

type Kelvin float64

type Probe struct{ TempC float64 }

func Build(k Kelvin) (Probe, Probe) {
	return Probe{TempC: float64(k)}, Probe{float64(k)}
}
`)
	if len(fs) != 2 {
		t.Fatalf("%d findings, want keyed and positional literal fields flagged:\n%v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Message, "field TempC wants degC, got K") {
			t.Errorf("finding %q, want field mismatch", f.Message)
		}
	}
}

func TestUnitsIgnoreDirective(t *testing.T) {
	wantChecks(t, unitsFindings(t, unitsConfFixture, `
package fixture

type Celsius float64

type Kelvin float64

func Convert(c Celsius) Kelvin {
	//lint:ignore units sanctioned affine conversion fixture
	return Kelvin(c)
}
`))
}
