// Package detmap provides deterministic iteration over Go maps.
//
// Go randomizes map iteration order on every run, so any map iteration
// that feeds simulator results, statistics or output ordering breaks
// bit-reproducibility. The r3dlint maporder check rejects raw map
// ranges in model code; this package is the sanctioned replacement:
//
//	for _, k := range detmap.SortedKeys(m) {
//		v := m[k]
//		...
//	}
package detmap

import (
	"cmp"
	"slices"
)

// SortedKeys returns the keys of m in ascending order.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedKeysFunc returns the keys of m ordered by the comparison
// function, for key types that are not cmp.Ordered.
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, less)
	return keys
}
