package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
)

// The journal is an append-only JSONL file: a header line identifying
// the grid, then one TrialOutcome per completed trial in completion
// order. Because every line is written atomically under a mutex, a
// campaign killed at any point leaves at worst one torn final line;
// resume truncates the file back to its last valid line, re-runs only
// the trials without an outcome, and the aggregate (ordered by trial
// ID, not journal order) is byte-identical to an uninterrupted run.

const (
	journalMagic   = "r3d-campaign-journal"
	journalVersion = 1
)

type journalHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Fingerprint hashes the canonical encoding of the full trial grid:
	// resuming under a different grid is an error, not a silent partial
	// re-run.
	Fingerprint string `json:"fingerprint"`
}

// gridFingerprint hashes the canonical JSON encoding of the specs.
func gridFingerprint(specs []TrialSpec) (string, error) {
	enc, err := json.Marshal(specs)
	if err != nil {
		return "", fmt.Errorf("campaign: fingerprint grid: %w", err)
	}
	h := fnv.New64a()
	if _, err := h.Write(enc); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

type journal struct {
	mu  sync.Mutex
	f   *os.File
	err error // first append error, surfaced at close
}

// openJournal prepares the journal at path. Without resume the file is
// truncated and a fresh header written. With resume an existing file is
// validated against the grid fingerprint, truncated past any torn final
// line, and its outcomes returned; a missing or empty file degrades to
// a fresh start so `-resume` is safe on the first run too.
func openJournal(path string, specs []TrialSpec, resume bool) (*journal, map[string]TrialOutcome, error) {
	fp, err := gridFingerprint(specs)
	if err != nil {
		return nil, nil, err
	}
	completed := map[string]TrialOutcome{}
	if resume {
		done, validLen, err := readJournal(path, fp)
		if err != nil {
			return nil, nil, err
		}
		if done != nil {
			f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return nil, nil, fmt.Errorf("campaign: reopen journal: %w", err)
			}
			// Drop the torn final line of an interrupted writer so new
			// outcomes never glue onto its fragment.
			if err := f.Truncate(validLen); err != nil {
				return nil, nil, fmt.Errorf("campaign: trim journal: %w", err)
			}
			if _, err := f.Seek(validLen, io.SeekStart); err != nil {
				return nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
			}
			return &journal{f: f}, done, nil
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: create journal: %w", err)
	}
	hdr, err := json.Marshal(journalHeader{Magic: journalMagic, Version: journalVersion, Fingerprint: fp})
	if err != nil {
		return nil, nil, err
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		return nil, nil, fmt.Errorf("campaign: write journal header: %w", err)
	}
	return &journal{f: f}, completed, nil
}

// readJournal parses an existing journal, returning the outcomes it
// holds and the byte length of its valid prefix (header plus intact
// outcome lines). A nil map (no error) means "start fresh": the file is
// missing or empty. A present file with a foreign header or fingerprint
// is an error.
func readJournal(path string, fingerprint string) (map[string]TrialOutcome, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: read journal: %w", err)
	}
	if len(data) == 0 {
		return nil, 0, nil // empty file: fresh start
	}
	line, rest, ok := cutLine(data)
	var hdr journalHeader
	if !ok || json.Unmarshal(line, &hdr) != nil || hdr.Magic != journalMagic {
		return nil, 0, fmt.Errorf("campaign: %s is not a campaign journal", path)
	}
	if hdr.Version != journalVersion {
		return nil, 0, fmt.Errorf("campaign: journal version %d unsupported (want %d)", hdr.Version, journalVersion)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, 0, fmt.Errorf("campaign: journal %s was written for a different trial grid (fingerprint %s, want %s); pass a fresh -journal path or drop -resume", path, hdr.Fingerprint, fingerprint)
	}
	done := map[string]TrialOutcome{}
	validLen := int64(len(line) + 1)
	for len(rest) > 0 {
		line, next, ok := cutLine(rest)
		if !ok {
			break // torn final line: the trial simply re-runs
		}
		var out TrialOutcome
		if json.Unmarshal(line, &out) != nil || out.ID == "" {
			break // corrupt tail: everything from here re-runs
		}
		done[out.ID] = out
		validLen += int64(len(line) + 1)
		rest = next
	}
	return done, validLen, nil
}

// cutLine splits b at its first newline. ok is false when no newline
// remains — an unterminated fragment is never a committed record, since
// the writer emits each record and its newline in a single write.
func cutLine(b []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return b[:i], b[i+1:], true
}

// append journals one outcome. Errors are sticky and surfaced at close
// so workers never have to unwind mid-trial for an I/O failure.
func (j *journal) append(out TrialOutcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	enc, err := json.Marshal(out)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.f.Write(append(enc, '\n')); err != nil {
		j.err = fmt.Errorf("campaign: journal append: %w", err)
	}
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Close(); j.err == nil && err != nil {
		j.err = fmt.Errorf("campaign: close journal: %w", err)
	}
	return j.err
}
