// Thermal sweep: regenerate the paper's Figure 4 experiment — peak chip
// temperature as a function of checker-core power for the 2d-2a and
// 3d-2a organizations against the 2d-a baseline — using the internal
// experiment harness on a reduced benchmark subset, and render the two
// series as ASCII curves.
package main

import (
	"fmt"
	"log"
	"strings"

	"r3d/internal/experiment"
	"r3d/internal/thermal"
)

func main() {
	q := experiment.Fast()
	q.Benchmarks = []string{"gzip", "mesa", "swim"}
	s := experiment.NewSession(q)

	fig4, err := experiment.Figure4(s, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2d-a baseline: %.1f °C\n\n", fig4.Baseline2DA)
	fmt.Printf("%-10s %-8s %-8s %s\n", "checker W", "2d-2a", "3d-2a", "")
	lo := fig4.Baseline2DA - 10
	for _, row := range fig4.Rows {
		bar := func(t thermal.Celsius) string {
			n := int((t - lo) / 2)
			if n < 0 {
				n = 0
			}
			return strings.Repeat("▪", n)
		}
		fmt.Printf("%-10.0f %-8.1f %-8.1f |%s\n", row.CheckerW, row.T2D2A, row.T3D2A, bar(row.T3D2A))
	}

	fmt.Println("\nNote the §3.2 crossover: below ≈10 W the 2d-2a chip (bigger heat")
	fmt.Println("sink, more lateral spreading) is cooler than the 2d-a baseline;")
	fmt.Println("the stacked 3d-2a chip is always hotter — that is the price of 3D.")
}
