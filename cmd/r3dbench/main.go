// Command r3dbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers).
//
// Experiments come from the experiment registry: r3dbench prefetches
// the union of the selected experiments' run manifests across -workers
// goroutines, then renders serially in registry order. Output on stdout
// is byte-identical for every worker count; the -stats/-json engine
// report goes to stderr.
//
// Usage:
//
//	r3dbench                 # full windows, all 19 benchmarks (minutes)
//	r3dbench -fast           # small windows, 6-benchmark subset (seconds)
//	r3dbench -only fig4      # one experiment (see -only with a bad name
//	                         # for the full list)
//	r3dbench -workers 8      # prefetch pool width (default GOMAXPROCS)
//	r3dbench -stats          # human engine report on stderr
//	r3dbench -json           # JSON engine report on stderr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"r3d/internal/experiment"
)

func main() {
	fast := flag.Bool("fast", false, "small simulation windows and a benchmark subset")
	only := flag.String("only", "", "run a single experiment")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "prefetch worker pool width")
	stats := flag.Bool("stats", false, "print the engine report to stderr")
	jsonOut := flag.Bool("json", false, "print the engine report as JSON to stderr")
	flag.Parse()

	q := experiment.Full()
	if *fast {
		q = experiment.Fast()
	}

	selected := experiment.Registry()
	if *only != "" {
		e, ok := experiment.Find(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid experiments:\n  %s\n",
				*only, strings.Join(experiment.Names(), " "))
			os.Exit(2)
		}
		selected = []experiment.Experiment{e}
	}

	// The host clock is injected here: model code never reads it (the
	// wallclock analyzer forbids time.* under internal/), and timings
	// only feed the stderr report, never stdout bytes.
	s := experiment.NewParallelSession(q, *workers, func() int64 { return time.Now().UnixNano() })

	if err := s.Prefetch(experiment.ManifestUnion(q, selected)); err != nil {
		log.Fatalf("prefetch: %v", err)
	}

	for _, e := range selected {
		r, err := e.Run(s, *workers)
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Println(r)
	}

	if *jsonOut {
		b, err := s.EngineReport().JSON()
		if err != nil {
			log.Fatalf("engine report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "%s\n", b)
	} else if *stats {
		fmt.Fprint(os.Stderr, s.EngineReport())
	}
}
