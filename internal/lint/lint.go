// Package lint is a stdlib-only static-analysis framework for the r3d
// module. It loads and type-checks every package in the module with
// go/parser and go/types (no external dependencies), runs a set of
// determinism- and hygiene-oriented analyzers over the typed ASTs, and
// reports findings with file:line positions.
//
// The analyzers exist because the paper reproduction is only meaningful
// if every rerun of the simulator is bit-reproducible: the thermal grid,
// DFS throttling and fault-injection results must regenerate
// identically. Map-iteration order, global RNG state and wall-clock
// reads inside model code are exactly the constructs that silently break
// that property, so they are rejected at lint time rather than debugged
// after the fact.
//
// Findings may be suppressed with a reasoned directive on the offending
// line or the line directly above it:
//
//	//lint:ignore <check> <reason>
//
// A directive without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is a single diagnostic produced by an analyzer.
type Finding struct {
	Check   string         // analyzer name, e.g. "maporder"
	Pos     token.Position // resolved file:line:column
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// An Analyzer inspects type-checked code and reports findings. Local
// analyzers set Run and see one package at a time; whole-program
// analyzers set RunModule and see every package of the module at once
// (the call-graph and units checks need the cross-package view).
// Exactly one of the two must be set.
type Analyzer struct {
	Name      string // short lowercase identifier used in reports and ignore directives
	Doc       string // one-line description shown by `r3dlint -list`
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// A Pass carries one analyzer's view of one package: the parsed files,
// the type information, and the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A ModulePass carries a whole-program analyzer's view of the module:
// every loaded package, the module root (empty for in-memory fixture
// runs), the run's suppression directives and the report sink.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Dir      string // module root directory; "" when unknown (fixture runs)
	Pkgs     []*Package
	ignores  *ignoreSet
	report   func(Finding)
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.report(Finding{
		Check:   mp.Analyzer.Name,
		Pos:     mp.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether a reasoned //lint:ignore directive for
// check covers pos. Whole-program analyzers use it to honor
// suppressions at a construct they would otherwise propagate from
// (e.g. a justified wall-clock read must not taint its callers).
func (mp *ModulePass) SuppressedAt(pos token.Pos, check string) bool {
	p := mp.Fset.Position(pos)
	return mp.ignores.coversLine(p.Filename, p.Line, check)
}

// inModelCode reports whether pkg is simulator model code (see
// Pass.InModelCode).
func inModelCode(pkg *Package) bool {
	return strings.Contains(pkg.Path, "/internal/")
}

// InModelCode reports whether the package under analysis is simulator
// model code — anything below internal/. Model code must be
// deterministic: time may only advance through cycle counters and
// randomness only through seeded per-component *rand.Rand values.
// Drivers (cmd/), examples and the facade package are not model code.
func (p *Pass) InModelCode() bool {
	return inModelCode(p.Pkg)
}

// calleePkgFunc resolves a call of a package-level function through a
// package selector (e.g. rand.Intn, time.Now) to its package import
// path and function name. It follows import aliases via the type
// checker's uses map, so `import mr "math/rand"` is still resolved to
// "math/rand". ok is false for method calls, locally defined functions,
// conversions and builtins.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// inspectAll walks every file of the pass's package.
func (p *Pass) inspectAll(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// sortFindings orders findings by position then check name so output is
// itself deterministic.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
