// Package model is deliberately unhygienic: every construct below is a
// fixture finding for the r3dlint CLI golden test.
package model

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"fixturemod/clockwrap"
)

// Celsius and Kelvin anchor the fixture units manifest.
type Celsius float64

// Kelvin is an absolute temperature.
type Kelvin float64

// Report prints per-node scores in map-iteration order.
func Report(scores map[string]float64) {
	for name, s := range scores {
		fmt.Println(name, s)
	}
}

// Jitter draws from the process-global generator.
func Jitter() float64 { return rand.Float64() }

// Converged compares floats exactly.
func Converged(a, b float64) bool { return a == b }

// Tick reads the wall clock directly.
func Tick() time.Time { return time.Now() }

// Stamp reaches the wall clock through the clockwrap laundering
// helpers.
func Stamp() int64 { return clockwrap.Stamp().UnixNano() }

// Mix confuses the two temperature scales.
func Mix(c Celsius) Kelvin { return Kelvin(c) }

// Flush ignores the close error.
func Flush(w io.Closer) { w.Close() }

// Count increments a captured counter from goroutines.
func Count(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		go func() {
			total++
		}()
	}
	return total
}
