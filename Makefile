# Developer entry points. `make lint` is the same gate that
# `go test ./...` enforces through the repo-wide lint_test.go; running
# it directly gives faster, file:line-only feedback.

GO ?= go

.PHONY: all build test lint lint-strict lint-json lint-stats race race-engine fmt campaign-smoke bench-fast bench-thermal crash-test serve-smoke chaos-test

all: build lint test

build:
	$(GO) build ./...

test: crash-test serve-smoke chaos-test
	$(GO) test ./...

# gofmt -l prints offending files but always exits 0; fail if it
# printed anything.
lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/r3dlint ./...

# Zero-tolerance gate for CI: every unsuppressed finding across the
# module fails the build (exit 1; exit 2 is a usage/load error). The
# plain `lint` target above is the same run plus gofmt/vet.
lint-strict:
	$(GO) run ./cmd/r3dlint ./...

# Machine-readable findings on stdout — the byte-stable JSON array that
# `-baseline` consumes. Exit code matches lint-strict, so CI can both
# gate and archive the report in one step:
#   make -s lint-json > findings.json || true
#   go run ./cmd/r3dlint -baseline findings.json ./...
lint-json:
	$(GO) run ./cmd/r3dlint -json ./...

# Per-analyzer cost report on stderr (wall time + finding counts) —
# where the suite's budget goes when a run feels slow. Exit code
# matches lint-strict.
lint-stats:
	$(GO) run ./cmd/r3dlint -stats ./...

# Race instrumentation slows the thermal suite well past the default
# 10-minute per-package limit; give the run the time it needs. (The
# full-suite byte-identity test skips itself under -race; the targeted
# concurrency tests below cover the parallel paths instead.)
race:
	$(GO) test -race -timeout 45m ./...

# Quick race pass over just the concurrent machinery: the experiment
# session's concurrency tests (engine-backed memoization, the thermal
# snapshot store's singleflight), the parallel thermal solver's banded
# sweeps, the run engine, the campaign worker pool (journal writes under
# commitState.mu) and the checkpoint crash/restore tests that race a
# snapshotter against live commits. The rest of the experiment suite is
# serial render code — `make race` covers it.
race-engine:
	$(GO) test -race -count=1 -run 'Concurrent|WorkerCount|Race' ./internal/experiment/
	$(GO) test -race -count=1 -run 'Solve|Precondition|SetPower|Clone' ./internal/thermal/
	$(GO) test -race -count=1 ./internal/runsched/ ./internal/campaign/ ./internal/ckpt/ ./internal/serve/
	$(GO) test -race -count=1 ./internal/iofault/ ./internal/backoff/ ./internal/chaos/

# Thermal solver microbenchmarks: one cold fine-grid solve, a warm
# re-solve from an already-converged field, and the production path
# (cold + coarse-grid preconditioner). Compare ns/op to see what the
# preconditioner buys per solve.
bench-thermal:
	$(GO) test -run - -bench 'BenchmarkSolve(Cold|Warm|Preconditioned)' -benchtime 3x ./internal/thermal/

fmt:
	gofmt -w .

# End-to-end harness smoke: a small grid (8 trials plus a deliberate
# livelock) journaled to disk, then resumed from the same journal. The
# resumed report must be byte-identical to the fresh one and the wedged
# self-test trial must be reported hung.
campaign-smoke: GRID = -bench gzip,mesa -seeds 2 -leadrates 40,80 -n 40000 \
	-workers 2 -livelock-trial -livelock-after 3000 -json
campaign-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/r3dfault $(GRID) -journal "$$tmp/run.jsonl" > "$$tmp/fresh.json" && \
	$(GO) run ./cmd/r3dfault $(GRID) -journal "$$tmp/run.jsonl" -resume > "$$tmp/resumed.json" && \
	cmp "$$tmp/fresh.json" "$$tmp/resumed.json" || { echo "campaign-smoke: resume not byte-identical"; exit 1; }; \
	grep -q '"status": "hung"' "$$tmp/resumed.json" || { echo "campaign-smoke: livelock trial not hung"; exit 1; }; \
	echo "campaign-smoke: OK"

# Crash-safety gate (runs as part of `make test`): SIGKILL a journaled,
# checkpointed campaign mid-run — no drain, no final flush — then
# restore and require the final aggregate to be byte-identical to an
# uninterrupted run of the same grid. Exercises the torn-tail journal
# recovery, the snapshot/journal offset handshake and the restore
# merge, end to end through the real binary.
crash-test: GRID = -bench gzip,mesa -seeds 2 -leadrates 40,80 -n 60000 -workers 2 -json
crash-test:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/r3dfault" ./cmd/r3dfault || exit 1; \
	"$$tmp/r3dfault" $(GRID) > "$$tmp/baseline.json" || exit 1; \
	"$$tmp/r3dfault" $(GRID) -journal "$$tmp/run.jsonl" -checkpoint "$$tmp/run.ckpt" -checkpoint-every 2 >/dev/null 2>&1 & pid=$$!; \
	for i in $$(seq 1 400); do \
		n=$$(wc -l < "$$tmp/run.jsonl" 2>/dev/null || echo 0); \
		[ "$$n" -ge 3 ] && break; \
		sleep 0.05; \
	done; \
	kill -9 $$pid 2>/dev/null || true; wait $$pid 2>/dev/null || true; \
	lines=$$(wc -l < "$$tmp/run.jsonl"); \
	[ "$$lines" -lt 9 ] || { echo "crash-test: campaign finished before SIGKILL landed; enlarge the grid"; exit 1; }; \
	"$$tmp/r3dfault" $(GRID) -journal "$$tmp/run.jsonl" -checkpoint "$$tmp/run.ckpt" -restore > "$$tmp/restored.json" 2> "$$tmp/restore.err" || { echo "crash-test: restore failed"; cat "$$tmp/restore.err"; exit 1; }; \
	cmp "$$tmp/baseline.json" "$$tmp/restored.json" || { echo "crash-test: restored aggregate not byte-identical to uninterrupted run"; exit 1; }; \
	echo "crash-test: OK (SIGKILLed at $$lines journal lines, restore byte-identical)"

# Daemon robustness gate (runs as part of `make test`): drive a real
# r3dserve binary over HTTP through its full contract — submit a
# campaign grid, long-poll to completion, SIGTERM (must exit 0 after a
# clean drain); restart with -restore and verify the job joins as
# restored with byte-identical results; compute a second grid, SIGKILL
# once it reaches the on-disk job store, restore again, and require
# both grids byte-identical. The driver owns the temp state dir and
# process lifecycle; see cmd/r3dservesmoke.
serve-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/r3dserve" ./cmd/r3dserve || exit 1; \
	$(GO) run ./cmd/r3dservesmoke -daemon "$$tmp/r3dserve"

# Storage-fault chaos sweep (part of `make test`): 20 seeded fault
# schedules through every scenario — campaign run→kill→resume, serve
# submit→kill→restore, dead-device degraded serving, and a same-seed
# determinism cross-check. Any torn state, diverging aggregate,
# poisoned cache or unreproducible fault sequence fails the target with
# the fault log needed to replay it.
chaos-test:
	$(GO) run ./cmd/r3dchaos -seeds 20

# Engine smoke: the fast suite rendered serially and across $(nproc)
# workers must be byte-identical on stdout; the parallel run prints its
# engine counters (stderr) so cache hits and dedup are visible.
bench-fast:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/r3dbench" ./cmd/r3dbench && \
	"$$tmp/r3dbench" -fast -workers 1 > "$$tmp/w1.txt" && \
	"$$tmp/r3dbench" -fast -workers "$$(nproc)" -stats > "$$tmp/wN.txt" && \
	cmp "$$tmp/w1.txt" "$$tmp/wN.txt" || { echo "bench-fast: output differs across worker counts"; exit 1; }; \
	echo "bench-fast: OK (byte-identical at 1 and $$(nproc) workers)"
