package dtm

import (
	"testing"

	"r3d/internal/thermal"
)

func coarse3D() thermal.Config {
	cfg := thermal.Stack3D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 10, 10
	return cfg
}

func grid(cfg thermal.Config, totalW float64) [][]float64 {
	g := make([][]float64, cfg.Ny)
	per := totalW / float64(cfg.Nx*cfg.Ny)
	for y := range g {
		g[y] = make([]float64, cfg.Nx)
		for x := range g[y] {
			g[y][x] = per
		}
	}
	return g
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{TriggerC: 80, ReleaseC: 85, StepGHz: 0.1, MinGHz: 1, MaxGHz: 2, IntervalMs: 1},
		{TriggerC: 85, ReleaseC: 82, StepGHz: 0, MinGHz: 1, MaxGHz: 2, IntervalMs: 1},
		{TriggerC: 85, ReleaseC: 82, StepGHz: 0.1, MinGHz: 2, MaxGHz: 1, IntervalMs: 1},
		{TriggerC: 85, ReleaseC: 82, StepGHz: 0.1, MinGHz: 1, MaxGHz: 2, IntervalMs: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
		if _, err := New(coarse3D(), p); err == nil {
			t.Errorf("case %d: New accepted invalid policy", i)
		}
	}
}

func TestCoolChipNeverThrottles(t *testing.T) {
	cfg := coarse3D()
	c, err := New(cfg, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// 20 W total stays far below the 85 °C trigger.
	if err := c.RunPhase(Phase{DurationMs: 15, Grids: [][][]float64{grid(cfg, 20), nil}}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.ThrottledMs != 0 || s.Interventions != 0 {
		t.Errorf("cool chip throttled: %+v", s)
	}
	if s.MeanFreqGHz != DefaultPolicy().MaxGHz {
		t.Errorf("mean frequency %.2f, want the 2 GHz maximum", s.MeanFreqGHz)
	}
	if s.PerfLossPct(2.0) != 0 {
		t.Error("no throttling must mean no performance loss")
	}
}

func TestHotChipThrottlesAndCaps(t *testing.T) {
	cfg := coarse3D()
	// The trigger sits within reach of a 140 W burst inside a 120 ms
	// window (the sink's ≈0.2 s time constant gates how fast the chip
	// heats; a production 85 °C trigger needs seconds of simulated time).
	pol := Policy{TriggerC: 70, ReleaseC: 67, StepGHz: 0.1, MinGHz: 1.0, MaxGHz: 2.0, IntervalMs: 1}
	c, err := New(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	phase := Phase{DurationMs: 120, Grids: [][][]float64{grid(cfg, 90), grid(cfg, 50)}}
	if err := c.RunPhase(phase); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Interventions == 0 || s.ThrottledMs == 0 {
		t.Fatalf("hot chip never throttled: %+v", s)
	}
	if s.MeanFreqGHz >= 2.0 {
		t.Error("throttling must reduce the mean frequency")
	}
	if s.PerfLossPct(2.0) <= 0 {
		t.Error("throttling must cost performance")
	}
	// The controller must regulate near the trigger band once settled.
	if s.FinalC > pol.TriggerC+6 {
		t.Errorf("regulation failed: settled at %.1f °C with a %.0f °C trigger", s.FinalC, pol.TriggerC)
	}
}

func TestThrottleRecoversAfterHotPhase(t *testing.T) {
	cfg := coarse3D()
	// A low trigger keeps the test inside short transient windows (the
	// sink's thermal mass takes ~0.2 s to approach steady state).
	pol := Policy{TriggerC: 58, ReleaseC: 55, StepGHz: 0.1, MinGHz: 1.0, MaxGHz: 2.0, IntervalMs: 1}
	c, err := New(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunPhase(Phase{DurationMs: 80, Grids: [][][]float64{grid(cfg, 80), grid(cfg, 40)}}); err != nil {
		t.Fatal(err)
	}
	hot := c.Stats()
	if err := c.RunPhase(Phase{DurationMs: 120, Grids: [][][]float64{grid(cfg, 10), nil}}); err != nil {
		t.Fatal(err)
	}
	all := c.Stats()
	// Mean frequency during the recovery window must exceed the hot
	// phase's mean, and the chip must end the run unthrottled.
	coolMean := (all.MeanFreqGHz*all.TimeMs - hot.MeanFreqGHz*hot.TimeMs) / (all.TimeMs - hot.TimeMs)
	if coolMean <= hot.MeanFreqGHz {
		t.Errorf("recovery mean %.2f GHz should exceed hot-phase mean %.2f", coolMean, hot.MeanFreqGHz)
	}
	if c.FreqGHz() != pol.MaxGHz {
		t.Errorf("chip should end unthrottled, at %.2f GHz", c.FreqGHz())
	}
}

func TestRunPhaseValidation(t *testing.T) {
	c, _ := New(coarse3D(), DefaultPolicy())
	if err := c.RunPhase(Phase{DurationMs: 0}); err == nil {
		t.Error("zero duration must error")
	}
	if err := c.RunPhase(Phase{DurationMs: 1}); err == nil {
		t.Error("missing grids must error")
	}
}

func TestResidencyMassMatchesTime(t *testing.T) {
	cfg := coarse3D()
	c, _ := New(cfg, DefaultPolicy())
	c.RunPhase(Phase{DurationMs: 12, Grids: [][][]float64{grid(cfg, 30), nil}})
	s := c.Stats()
	if got := s.Residency.Total(); got != s.TimeMs {
		t.Errorf("residency mass %.2f != time %.2f", got, s.TimeMs)
	}
}
