package experiment

import "fmt"

// An Experiment pairs one table/figure/section renderer with the
// manifest of simulation windows it needs. The registry is the single
// source of truth for experiment names: r3dbench selects from it,
// prefetches the union of the selected manifests through the run
// engine, then renders in registry order.
type Experiment struct {
	Name string
	// Manifest declares the statically known RunKeys (nil = the
	// experiment needs no engine windows). Windows that depend on
	// mid-experiment results — e.g. the thermally derived DVFS memory
	// latencies of §3.3/§4 — are computed on demand through the same
	// memoized engine and documented on each manifest.
	Manifest func(q Quality) []RunKey
	// Run renders the experiment. workers is the pool width for
	// experiments that drive their own harness: the injection study's
	// campaign and the thermal sweeps (fig4/fig5/sec32 prefetch their
	// case lists through Session.PrefetchThermal). Everything else
	// reaches parallelism via the session engine and ignores it.
	Run func(s *Session, workers int) (fmt.Stringer, error)
}

// Registry returns every experiment in render order (the order
// r3dbench prints them).
func Registry() []Experiment {
	return []Experiment{
		{Name: "table2", Manifest: Table2Manifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return Table2(s) }},
		{Name: "table4",
			Run: func(*Session, int) (fmt.Stringer, error) { return Table4(), nil }},
		{Name: "table5",
			Run: func(*Session, int) (fmt.Stringer, error) { return Table5() }},
		{Name: "table6",
			Run: func(*Session, int) (fmt.Stringer, error) { return Table6(), nil }},
		{Name: "table7",
			Run: func(*Session, int) (fmt.Stringer, error) { return Table7(), nil }},
		{Name: "table8",
			Run: func(*Session, int) (fmt.Stringer, error) { return Table8() }},
		{Name: "fig4", Manifest: Figure4Manifest,
			Run: func(s *Session, workers int) (fmt.Stringer, error) { return Figure4(s, workers) }},
		{Name: "fig5", Manifest: Figure5Manifest,
			Run: func(s *Session, workers int) (fmt.Stringer, error) { return Figure5(s, workers) }},
		{Name: "fig6", Manifest: Figure6Manifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return Figure6(s) }},
		{Name: "fig7", Manifest: Figure7Manifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return Figure7(s) }},
		{Name: "fig8",
			Run: func(*Session, int) (fmt.Stringer, error) { return Figure8() }},
		{Name: "fig9",
			Run: func(*Session, int) (fmt.Stringer, error) { return Figure9() }},
		{Name: "sec32", Manifest: Section32Manifest,
			Run: func(s *Session, workers int) (fmt.Stringer, error) { return Section32Variants(s, workers) }},
		{Name: "sec33", Manifest: Section33Manifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return Section33(s) }},
		{Name: "sec34",
			Run: func(*Session, int) (fmt.Stringer, error) { return Section34() }},
		{Name: "sec35", Manifest: Section35Manifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return Section35(s) }},
		{Name: "sec4", Manifest: Section4Manifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return Section4(s) }},
		{Name: "dfs", Manifest: DFSAblationManifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return DFSAblation(s) }},
		{Name: "degraded", Manifest: DegradedModeManifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return DegradedMode(s) }},
		{Name: "rvqsize", Manifest: QueueSizingManifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return QueueSizing(s) }},
		{Name: "dtm", Manifest: DTMStudyManifest,
			Run: func(s *Session, _ int) (fmt.Stringer, error) { return DTMStudy(s, 300) }},
		{Name: "inject",
			Run: func(s *Session, workers int) (fmt.Stringer, error) { return InjectionStudy(s, workers) }},
	}
}

// Names returns every registered experiment name in render order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}

// Find looks an experiment up by name.
func Find(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// ManifestUnion concatenates the selected experiments' manifests. The
// engine deduplicates across experiments, so overlapping manifests (the
// suite-activity windows appear in most of them) cost nothing extra —
// this is what turns a whole-suite run into one batch with zero
// duplicated windows.
func ManifestUnion(q Quality, exps []Experiment) []RunKey {
	var keys []RunKey
	for _, e := range exps {
		if e.Manifest != nil {
			keys = append(keys, e.Manifest(q)...)
		}
	}
	return keys
}
