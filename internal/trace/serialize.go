package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"r3d/internal/isa"
)

// Trace files let a generated instruction window be captured once and
// replayed byte-identically — useful for archiving the exact inputs
// behind a published figure, or for diffing simulator versions against a
// frozen workload. The format is a little-endian binary stream:
//
//	magic "R3DT" | version u16 | name len u16 | name | count u64 | records
//
// with one fixed-width 62-byte record per instruction.
const (
	traceMagic   = "R3DT"
	traceVersion = 1
)

// WriteTrace captures n instructions from the generator to w.
func WriteTrace(w io.Writer, g *Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	name := g.Profile().Name
	if err := binary.Write(bw, binary.LittleEndian, uint16(traceVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		in := g.Next()
		if err := writeInst(bw, &in); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeInst(w io.Writer, in *isa.Inst) error {
	var rec [62]byte
	binary.LittleEndian.PutUint64(rec[0:], in.Seq)
	binary.LittleEndian.PutUint64(rec[8:], in.PC)
	rec[16] = byte(in.Op)
	rec[17] = byte(in.Dest)
	rec[18] = byte(in.Src1)
	rec[19] = byte(in.Src2)
	if in.Taken {
		rec[20] = 1
	}
	binary.LittleEndian.PutUint64(rec[21:], in.Addr)
	binary.LittleEndian.PutUint64(rec[29:], in.Target)
	binary.LittleEndian.PutUint64(rec[37:], in.Value)
	binary.LittleEndian.PutUint64(rec[45:], in.Src1Val)
	binary.LittleEndian.PutUint64(rec[53:], in.Src2Val)
	// rec[61] reserved.
	_, err := w.Write(rec[:])
	return err
}

// Reader replays a captured trace as an ooo.InstSource; when the capture
// is exhausted Next panics (callers size their fetch budgets to the
// captured count, available via Count).
type Reader struct {
	r     *bufio.Reader
	name  string
	count uint64
	read  uint64
}

// NewReader validates the header and prepares to replay.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version, nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	return &Reader{r: br, name: string(name), count: count}, nil
}

// Name returns the captured workload's name.
func (t *Reader) Name() string { return t.name }

// Count returns the number of captured instructions.
func (t *Reader) Count() uint64 { return t.count }

// Next returns the next captured instruction. It panics past the end of
// the capture or on a truncated stream (trace files are trusted local
// artifacts; size fetch budgets with Count).
func (t *Reader) Next() isa.Inst {
	if t.read >= t.count {
		panic("trace: replay past end of capture")
	}
	var rec [62]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		panic(fmt.Sprintf("trace: truncated capture: %v", err))
	}
	t.read++
	return isa.Inst{
		Seq:     binary.LittleEndian.Uint64(rec[0:]),
		PC:      binary.LittleEndian.Uint64(rec[8:]),
		Op:      isa.OpClass(rec[16]),
		Dest:    isa.Reg(rec[17]),
		Src1:    isa.Reg(rec[18]),
		Src2:    isa.Reg(rec[19]),
		Taken:   rec[20] == 1,
		Addr:    binary.LittleEndian.Uint64(rec[21:]),
		Target:  binary.LittleEndian.Uint64(rec[29:]),
		Value:   binary.LittleEndian.Uint64(rec[37:]),
		Src1Val: binary.LittleEndian.Uint64(rec[45:]),
		Src2Val: binary.LittleEndian.Uint64(rec[53:]),
	}
}
