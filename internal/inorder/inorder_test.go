package inorder

import (
	"testing"

	"r3d/internal/isa"
	"r3d/internal/trace"
)

func entriesFrom(name string, seed int64, n int) []Entry {
	b, err := trace.ByName(name)
	if err != nil {
		panic(err)
	}
	g := trace.MustGenerator(b.Profile, seed)
	out := make([]Entry, n)
	for i := range out {
		out[i] = MakeEntry(g.Next())
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero width accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid config")
		}
	}()
	New(bad)
}

func TestCleanStreamChecksOK(t *testing.T) {
	c := New(Default())
	entries := entriesFrom("gzip", 1, 40000)
	outcomes := make([]CheckOutcome, 4)
	for len(entries) > 0 {
		n := c.Step(entries, outcomes)
		for i := 0; i < n; i++ {
			if outcomes[i] != CheckOK {
				t.Fatalf("clean stream produced outcome %v", outcomes[i])
			}
		}
		entries = entries[n:]
	}
	s := c.Stats()
	if s.ResultMismatches != 0 || s.OperandMismatches != 0 {
		t.Fatalf("clean stream flagged errors: %+v", s)
	}
	if s.Checked != 40000 {
		t.Fatalf("Checked = %d, want 40000", s.Checked)
	}
}

func TestRVPGivesHighILP(t *testing.T) {
	// §2.1: with RVP the in-order checker sustains high ILP — far above
	// the leading core's IPC for the same stream, despite serial
	// dependences in the program.
	c := New(Default())
	entries := entriesFrom("mcf", 2, 40000) // mcf: leading IPC ≈ 0.3
	outcomes := make([]CheckOutcome, 4)
	for len(entries) > 0 {
		n := c.Step(entries, outcomes)
		entries = entries[n:]
	}
	if ipc := c.Stats().IPC(); ipc < 2.5 {
		t.Errorf("checker IPC on mcf = %.2f, want ≥2.5 (RVP removes data stalls)", ipc)
	}
}

func TestFUConstraintLimitsFPThroughput(t *testing.T) {
	// A pure FP-multiply stream is bounded by the single FP multiplier.
	ent := make([]Entry, 10000)
	for i := range ent {
		ent[i] = MakeEntry(isa.Inst{Op: isa.FPMult, Dest: isa.NumIntRegs + 1, Src1: isa.ZeroReg, Src2: isa.ZeroReg})
	}
	c := New(Default())
	outcomes := make([]CheckOutcome, 4)
	rest := ent
	for len(rest) > 0 {
		n := c.Step(rest, outcomes)
		rest = rest[n:]
	}
	if ipc := c.Stats().IPC(); ipc > 1.01 {
		t.Errorf("FPMult-only IPC = %.2f, want ≤1 with one FP multiplier", ipc)
	}
	if c.Stats().FUStalls == 0 {
		t.Error("expected structural stalls")
	}
}

func TestEmptyCycleCounted(t *testing.T) {
	c := New(Default())
	if n := c.Step(nil, make([]CheckOutcome, 4)); n != 0 {
		t.Fatal("empty step must issue nothing")
	}
	if c.Stats().EmptyCycles != 1 {
		t.Error("empty cycle not counted")
	}
}

func TestLeadingResultCorruptionDetected(t *testing.T) {
	c := New(Default())
	outcomes := make([]CheckOutcome, 4)
	ent := entriesFrom("gzip", 3, 100)
	// Corrupt the transmitted result of the first register-writing inst.
	for i := range ent {
		if ent[i].Inst.HasDest() {
			ent[i].LeadValue ^= 1 << 13
			want := i
			rest := ent
			checked := 0
			for len(rest) > 0 {
				n := c.Step(rest, outcomes)
				for j := 0; j < n; j++ {
					if checked+j == want {
						if outcomes[j] != CheckMismatch {
							t.Fatalf("corrupted result not detected: %v", outcomes[j])
						}
						return
					}
					if outcomes[j] != CheckOK {
						t.Fatalf("false positive at %d", checked+j)
					}
				}
				checked += n
				rest = rest[n:]
			}
		}
	}
	t.Fatal("no register-writing instruction found")
}

func TestOperandCorruptionDetected(t *testing.T) {
	// Corrupting a transmitted operand (RVQ copy) must be flagged as an
	// operand mismatch against the trailer RF.
	c := New(Default())
	outcomes := make([]CheckOutcome, 4)
	ent := entriesFrom("vortex", 4, 2000)
	// Find an instruction whose Src1 was written earlier in the window
	// (so the trailer RF holds it), then corrupt the operand copy.
	written := map[isa.Reg]bool{}
	target := -1
	for i := range ent {
		in := ent[i].Inst
		if !in.Src1.IsZero() && written[in.Src1] && i > 10 {
			target = i
			ent[i].LeadSrc1 ^= 0xff
			break
		}
		if in.HasDest() {
			written[in.Dest] = true
		}
	}
	if target < 0 {
		t.Fatal("no suitable instruction found")
	}
	checked := 0
	rest := ent
	for len(rest) > 0 && checked <= target {
		n := c.Step(rest, outcomes)
		for j := 0; j < n; j++ {
			if checked+j == target {
				if outcomes[j] != CheckOperandMismatch {
					t.Fatalf("corrupted operand not detected: %v", outcomes[j])
				}
				return
			}
		}
		checked += n
		rest = rest[n:]
	}
	t.Fatal("target never checked")
}

func TestTrailerRFSingleBitECCCorrected(t *testing.T) {
	c := New(Default())
	outcomes := make([]CheckOutcome, 4)
	ent := entriesFrom("gzip", 5, 5000)
	// Warm the RF.
	warm, rest := ent[:1000], ent[1000:]
	for len(warm) > 0 {
		n := c.Step(warm, outcomes)
		warm = warm[n:]
	}
	// Find the next instruction reading a non-zero reg and corrupt that
	// register in the trailer RF by one bit.
	var reg isa.Reg = isa.ZeroReg
	for i := range rest {
		if !rest[i].Inst.Src1.IsZero() {
			reg = rest[i].Inst.Src1
			break
		}
	}
	if reg.IsZero() {
		t.Fatal("no readable register found")
	}
	c.CorruptRF(reg, 1)
	for len(rest) > 0 {
		n := c.Step(rest, outcomes)
		for j := 0; j < n; j++ {
			if outcomes[j] == CheckOperandMismatch {
				t.Fatal("single-bit RF upset should be corrected by ECC, not flagged")
			}
		}
		rest = rest[n:]
		if c.Stats().ECCCorrected > 0 {
			return // corrected, done
		}
	}
	t.Fatal("ECC correction never triggered")
}

func TestTrailerRFMultiBitUnrecoverable(t *testing.T) {
	c := New(Default())
	if c.UnrecoverableRF() {
		t.Fatal("fresh checker must be recoverable")
	}
	c.CorruptRF(5, 3)
	if !c.UnrecoverableRF() {
		t.Fatal("triple-bit upset must be unrecoverable")
	}
	// A fresh architectural write to the register clears the damage.
	out := make([]CheckOutcome, 4)
	in := isa.Inst{Op: isa.IntALU, Dest: 5, Src1: isa.ZeroReg, Src2: isa.ZeroReg, Value: 42}
	c.Step([]Entry{MakeEntry(in)}, out)
	if c.UnrecoverableRF() {
		t.Fatal("overwrite must clear the corrupted register")
	}
	if c.RegisterFile(5) != 42 {
		t.Fatal("RF write lost")
	}
}

func TestNoECCConfigMissesNothingButCannotCorrect(t *testing.T) {
	cfg := Default()
	cfg.ECCProtectedRF = false
	c := New(cfg)
	out := make([]CheckOutcome, 4)
	// Write then corrupt one bit, then read: without ECC the mismatch is
	// flagged (detected) rather than silently corrected.
	c.Step([]Entry{MakeEntry(isa.Inst{Op: isa.IntALU, Dest: 7, Src1: isa.ZeroReg, Src2: isa.ZeroReg, Value: 5})}, out)
	c.CorruptRF(7, 1)
	reader := MakeEntry(isa.Inst{Op: isa.IntALU, Dest: 8, Src1: 7, Src2: isa.ZeroReg, Src1Val: 5, Value: 9})
	c.Step([]Entry{reader}, out)
	if out[0] != CheckUnrecoverable {
		t.Fatalf("unprotected RF corruption is detected but unrecoverable, got %v", out[0])
	}
	if c.Stats().ECCCorrected != 0 {
		t.Fatal("no ECC correction possible without ECC")
	}
}

func TestStatsIPCZero(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("zero-value IPC must be 0")
	}
}
