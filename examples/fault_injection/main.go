// Fault injection: bombard the reliable processor with accelerated soft
// errors — leading-core datapath upsets and trailer register-file upsets
// — at 65 nm and 45 nm critical charges, and show the paper's §2 fault
// model in action: every leading-core error is detected and recovered
// from the trailer's ECC-protected register file, while multi-bit upsets
// in the trailer itself (more frequent at smaller critical charge,
// Figure 9) are the residual unrecoverable case.
package main

import (
	"fmt"
	"log"

	"r3d"
)

func main() {
	const n = 400_000

	fmt.Println("Leading-core upsets only (detect + recover):")
	r, err := r3d.RunInjection("vortex", n, 65, 80, 0, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  injected %d, detected %d, recovered %d, unrecovered %d, coverage %.2f\n\n",
		r.LeadInjected, r.ErrorsDetected, r.ErrorsRecovered, r.ErrorsUnrecovered, r.Coverage)

	for _, node := range []int{65, 45} {
		r, err := r3d.RunInjection("vortex", n, node, 40, 800, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d nm (trailer RF also under fire):\n", node)
		fmt.Printf("  trailer upsets %d of which %d multi-bit\n", r.RFInjected, r.MultiBitUpsets)
		fmt.Printf("  detected %d, recovered %d, unrecoverable %d\n\n",
			r.ErrorsDetected, r.ErrorsRecovered, r.ErrorsUnrecovered)
	}
	fmt.Println("Smaller critical charge → more multi-bit upsets → more")
	fmt.Println("unrecoverable errors: the §4 argument for an older-process checker die.")
}
