package lint

// GoLeak requires every `go` statement to have a provable termination
// path: the spawned body provably returns (no endless loop reachable
// through its calls), selects on a stop/done/ctx-like channel and exits
// the loop on it, or is joined via a WaitGroup that is Wait-ed in the
// spawner's top-level declaration. Intentional process-lifetime daemons
// opt in with `// r3dlint:daemon <reason>` on the spawned function's
// declaration or on the `go` statement itself; a reasoned
// `//lint:ignore goleak <reason>` on an endless loop stops it from
// tainting callers, dettaint-style.
//
// The termination proof is conservative: a `for` without a condition
// and a `for range` over a channel count as never-terminating even if a
// conditional return hides inside — restructure the loop (bounded
// retries with an explicit cap pass; see campaign.runTrial) or annotate
// the daemon.
var GoLeak = &Analyzer{
	Name:      "goleak",
	Doc:       "spawned goroutine has no provable termination path",
	RunModule: runGoLeak,
}

func runGoLeak(mp *ModulePass) {
	prog := buildGoProgram(mp.Pkgs)
	for _, e := range prog.annErrs {
		if e.check == "goleak" {
			mp.Reportf(e.pos, "%s", e.msg)
		}
	}

	// forever[f] explains why f may never return: the positional-first
	// chain from f to an uncovered endless loop. Seeds whose loop
	// carries a reasoned goleak directive are skipped and do not
	// propagate.
	forever := map[*goFacts]string{}
	for _, n := range prog.nodes {
		for _, l := range n.loops {
			if !l.unbounded || l.covered() {
				continue
			}
			if mp.SuppressedAt(l.pos, "goleak") {
				continue
			}
			forever[n] = n.name + " → " + l.desc
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if _, ok := forever[n]; ok {
				continue
			}
			for _, c := range n.calls {
				if c.kind == callGo {
					continue // a spawned callee blocks on its own goroutine
				}
				if mp.SuppressedAt(c.pos, "goleak") {
					continue
				}
				for _, callee := range prog.calleeFacts(c) {
					if chain, ok := forever[callee]; ok {
						forever[n] = n.name + " → " + chain
						changed = true
						break
					}
				}
				if _, ok := forever[n]; ok {
					break
				}
			}
		}
	}

	// Findings at spawn sites: the body may run forever and no excuse
	// applies — not joined, not daemon-annotated.
	for _, n := range prog.nodes {
		for _, sp := range n.spawns {
			if sp.joined || prog.daemonAt(sp.pos, sp.target) {
				continue
			}
			body := sp.lit
			if body == nil && sp.target != nil {
				body = prog.byFn[sp.target]
			}
			if body == nil {
				continue // stdlib or func-value spawn: no module body to prove against
			}
			chain, ok := forever[body]
			if !ok {
				continue // body provably returns
			}
			mp.Reportf(sp.pos,
				"goroutine may never terminate (%s); join it with a WaitGroup, select on a stop channel in the loop, or annotate the daemon: // r3dlint:daemon <reason>",
				chain)
		}
	}
}
