package runsched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func intEngine(workers int, compute func(int) (string, error)) *Engine[int, string] {
	return New(compute, Options[int, string]{
		Workers: workers,
		Compare: func(a, b int) int { return a - b },
	})
}

func TestGetMemoizes(t *testing.T) {
	var computed atomic.Int64
	e := intEngine(1, func(k int) (string, error) {
		computed.Add(1)
		return fmt.Sprintf("v%d", k), nil
	})
	for i := 0; i < 3; i++ {
		v, err := e.Get(7)
		if err != nil || v != "v7" {
			t.Fatalf("Get(7) = %q, %v", v, err)
		}
	}
	if computed.Load() != 1 {
		t.Errorf("computed %d times, want 1", computed.Load())
	}
	st := e.Stats()
	if st.Computed != 1 || st.Hits != 2 || st.Joins != 0 {
		t.Errorf("stats %+v, want 1 computed / 2 hits", st)
	}
}

func TestSingleflightJoins(t *testing.T) {
	const joiners = 8
	release := make(chan struct{})
	entered := make(chan struct{})
	var computed atomic.Int64
	var enterOnce sync.Once
	e := intEngine(4, func(k int) (string, error) {
		enterOnce.Do(func() { close(entered) })
		<-release
		computed.Add(1)
		return "slow", nil
	})

	var wg sync.WaitGroup
	leaderDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := e.Get(1)
		leaderDone <- err
	}()
	<-entered // leader is inside compute; everyone else must join

	results := make(chan string, joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Get(1)
			if err != nil {
				t.Errorf("joiner: %v", err)
			}
			results <- v
		}()
	}
	// Wait until every joiner has registered against the in-flight call
	// (they increment Joins before blocking), so the join path — not the
	// memo-hit path — is what this test exercises.
	for e.Stats().Joins < joiners {
		runtime.Gosched()
	}
	// Joiners cannot produce results until the leader finishes.
	select {
	case v := <-results:
		t.Fatalf("joiner returned %q before leader finished", v)
	default:
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	for i := 0; i < joiners; i++ {
		if v := <-results; v != "slow" {
			t.Errorf("joiner got %q", v)
		}
	}
	if computed.Load() != 1 {
		t.Errorf("computed %d times, want 1", computed.Load())
	}
	st := e.Stats()
	if st.Computed != 1 || st.Joins != joiners {
		t.Errorf("stats %+v, want 1 computed / %d joins", st, joiners)
	}
}

func TestPrefetchDedupAndOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	e := intEngine(4, func(k int) (string, error) {
		mu.Lock()
		order = append(order, k)
		mu.Unlock()
		return fmt.Sprintf("v%d", k), nil
	})
	keys := []int{5, 3, 5, 1, 3, 3, 9}
	if err := e.Prefetch(keys); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Computed != 4 {
		t.Errorf("computed %d, want 4 unique", st.Computed)
	}
	if st.BatchRequested != 7 || st.BatchDeduped != 3 {
		t.Errorf("batch counters %+v, want 7 requested / 3 deduped", st)
	}
	recs := e.Records()
	if len(recs) != 4 {
		t.Fatalf("records %d, want 4", len(recs))
	}
	for i, want := range []int{1, 3, 5, 9} {
		if recs[i].Key != want {
			t.Errorf("records[%d].Key = %d, want %d (canonical order)", i, recs[i].Key, want)
		}
	}
	// A second prefetch of the same keys is all hits.
	if err := e.Prefetch(keys); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Computed != 4 || st.Hits != 4 {
		t.Errorf("after re-prefetch: %+v, want 4 computed / 4 hits", st)
	}
}

func TestErrorsAreMemoized(t *testing.T) {
	boom := errors.New("boom")
	var computed atomic.Int64
	e := intEngine(2, func(k int) (string, error) {
		computed.Add(1)
		if k%2 == 1 {
			return "", fmt.Errorf("key %d: %w", k, boom)
		}
		return "ok", nil
	})
	if err := e.Prefetch([]int{2, 1, 3}); err == nil {
		t.Fatal("Prefetch must surface a compute error")
	} else if !errors.Is(err, boom) || !strings.Contains(err.Error(), "key 1") {
		t.Errorf("Prefetch error %v, want first error in key order (key 1)", err)
	}
	// Errors are cached: re-Get does not recompute.
	if _, err := e.Get(1); !errors.Is(err, boom) {
		t.Errorf("Get(1) err = %v, want cached boom", err)
	}
	if computed.Load() != 3 {
		t.Errorf("computed %d, want 3", computed.Load())
	}
	st := e.Stats()
	if st.Errors != 2 {
		t.Errorf("errors %d, want 2", st.Errors)
	}
	if v, err := e.Get(2); v != "ok" || err != nil {
		t.Errorf("Get(2) = %q, %v", v, err)
	}
}

func TestInjectedClockTiming(t *testing.T) {
	var tick atomic.Int64
	e := New(func(k int) (string, error) { return "v", nil }, Options[int, string]{
		Workers: 1,
		Compare: func(a, b int) int { return a - b },
		// Each clock read advances 5 ns, so every compute measures
		// exactly 5 ns — deterministic timing for the assertion.
		Clock: func() int64 { return tick.Add(5) },
	})
	if err := e.Prefetch([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ComputeNanos != 15 {
		t.Errorf("ComputeNanos = %d, want 15", st.ComputeNanos)
	}
	for _, r := range e.Records() {
		if r.Nanos != 5 {
			t.Errorf("record %v Nanos = %d, want 5", r.Key, r.Nanos)
		}
	}
}

func TestNoClockMeansZeroTiming(t *testing.T) {
	e := intEngine(1, func(k int) (string, error) { return "v", nil })
	if _, err := e.Get(1); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ComputeNanos != 0 {
		t.Errorf("ComputeNanos = %d without a clock, want 0", st.ComputeNanos)
	}
}

// TestConcurrentGetAndPrefetch hammers the engine from many goroutines
// (run under -race): overlapping prefetches and point Gets over a
// shared key space must produce exactly one computation per key.
func TestConcurrentGetAndPrefetch(t *testing.T) {
	const keys = 40
	var computed [keys]atomic.Int64
	e := intEngine(8, func(k int) (string, error) {
		computed[k].Add(1)
		return fmt.Sprintf("v%d", k), nil
	})
	all := make([]int, keys)
	for i := range all {
		all[i] = i
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Prefetch(all); err != nil {
				t.Errorf("Prefetch: %v", err)
			}
		}()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := (i*7 + g) % keys
				v, err := e.Get(k)
				if err != nil || v != fmt.Sprintf("v%d", k) {
					t.Errorf("Get(%d) = %q, %v", k, v, err)
				}
			}
		}(g)
	}
	wg.Wait()
	for k := range computed {
		if n := computed[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times", k, n)
		}
	}
	if st := e.Stats(); st.Computed != keys {
		t.Errorf("Computed = %d, want %d", st.Computed, keys)
	}
	if recs := e.Records(); len(recs) != keys {
		t.Errorf("records %d, want %d", len(recs), keys)
	}
}

// TestWorkerCountInvariance checks the full observable engine state
// (stats + records) is identical across worker counts.
func TestWorkerCountInvariance(t *testing.T) {
	build := func(workers int) (Stats, []Record[int]) {
		e := intEngine(workers, func(k int) (string, error) {
			if k == 13 {
				return "", errors.New("unlucky")
			}
			return fmt.Sprintf("v%d", k), nil
		})
		var keys []int
		for i := 0; i < 30; i++ {
			keys = append(keys, i, i) // duplicates on purpose
		}
		_ = e.Prefetch(keys) // error expected (key 13)
		return e.Stats(), e.Records()
	}
	s1, r1 := build(1)
	s8, r8 := build(8)
	if s1 != s8 {
		t.Errorf("stats differ across worker counts:\n  w1: %+v\n  w8: %+v", s1, s8)
	}
	if fmt.Sprintf("%v", r1) != fmt.Sprintf("%v", r8) {
		t.Errorf("records differ across worker counts:\n  w1: %v\n  w8: %v", r1, r8)
	}
}

func TestPreloadAndEntriesRoundTrip(t *testing.T) {
	var computed atomic.Int64
	mk := func() *Engine[int, string] {
		return intEngine(2, func(k int) (string, error) {
			computed.Add(1)
			return fmt.Sprintf("v%d", k), nil
		})
	}
	e1 := mk()
	if err := e1.Prefetch([]int{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	ents := e1.Entries()
	if len(ents) != 3 {
		t.Fatalf("entries %d, want 3", len(ents))
	}
	for i, want := range []int{1, 2, 3} {
		if ents[i].Key != want || ents[i].Val != fmt.Sprintf("v%d", want) {
			t.Errorf("entries[%d] = %+v", i, ents[i])
		}
	}

	// A second engine preloaded from the first computes nothing.
	computed.Store(0)
	e2 := mk()
	e2.Preload(ents)
	if st := e2.Stats(); st.Preloaded != 3 {
		t.Errorf("Preloaded = %d, want 3", st.Preloaded)
	}
	if err := e2.Prefetch([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 0 {
		t.Errorf("preloaded engine recomputed %d keys", computed.Load())
	}
	if v, err := e2.Get(2); v != "v2" || err != nil {
		t.Errorf("Get(2) = %q, %v", v, err)
	}
	// Errored keys never persist.
	e3 := intEngine(1, func(k int) (string, error) { return "", errors.New("boom") })
	_, _ = e3.Get(9)
	if got := e3.Entries(); len(got) != 0 {
		t.Errorf("errored key persisted: %+v", got)
	}
}

func TestPreloadDoesNotOverrideFreshResults(t *testing.T) {
	e := intEngine(1, func(k int) (string, error) { return "fresh", nil })
	if _, err := e.Get(1); err != nil {
		t.Fatal(err)
	}
	e.Preload([]Entry[int, string]{{Key: 1, Val: "stale"}, {Key: 2, Val: "loaded"}})
	if st := e.Stats(); st.Preloaded != 1 {
		t.Errorf("Preloaded = %d, want 1 (key 1 already computed)", st.Preloaded)
	}
	if v, _ := e.Get(1); v != "fresh" {
		t.Errorf("Get(1) = %q, preload must not override a computed result", v)
	}
	if v, _ := e.Get(2); v != "loaded" {
		t.Errorf("Get(2) = %q", v)
	}
}

func TestShadowCheckOnHitsDetectsDivergence(t *testing.T) {
	var calls atomic.Int64
	e := New(func(k int) (string, error) {
		// Not a pure function on purpose: recomputations of key 1 differ,
		// which is exactly what a shadow check exists to catch.
		if k == 1 && calls.Add(1) > 1 {
			return "mutated", nil
		}
		if k == 1 {
			return "original", nil
		}
		return fmt.Sprintf("v%d", k), nil
	}, Options[int, string]{
		Workers:        2,
		Compare:        func(a, b int) int { return a - b },
		ShadowFraction: 1,
		Hash:           func(k int) uint32 { return uint32(k) },
		Encode:         func(v string) ([]byte, error) { return []byte(v), nil },
	})
	if err := e.Prefetch([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	// First hits trigger one shadow check per key.
	if _, err := e.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(2); err != nil {
		t.Fatal(err)
	}
	// Second hit of key 1 must not re-check (at most one check per key).
	if _, err := e.Get(1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ShadowChecked != 2 {
		t.Errorf("ShadowChecked = %d, want 2", st.ShadowChecked)
	}
	if st.ShadowDiverged != 1 {
		t.Errorf("ShadowDiverged = %d, want 1", st.ShadowDiverged)
	}
	divs := e.Divergences()
	if len(divs) != 1 || divs[0].Key != 1 || divs[0].Stored != "original" || divs[0].Recomputed != "mutated" {
		t.Errorf("divergences = %+v", divs)
	}
	// Detection, not repair: the cached value is untouched.
	if v, _ := e.Get(1); v != "original" {
		t.Errorf("cached value after divergence = %q, want untouched original", v)
	}
}

func TestShadowFractionZeroChecksNothing(t *testing.T) {
	e := intEngine(1, func(k int) (string, error) { return "v", nil })
	if _, err := e.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(1); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ShadowChecked != 0 {
		t.Errorf("ShadowChecked = %d with no shadow config, want 0", st.ShadowChecked)
	}
}

func TestInterruptDrainsPrefetch(t *testing.T) {
	const keys = 12
	started := make(chan int, keys)
	release := make(chan struct{})
	e := intEngine(1, func(k int) (string, error) {
		started <- k
		<-release
		return fmt.Sprintf("v%d", k), nil
	})
	all := make([]int, keys)
	for i := range all {
		all[i] = i
	}
	done := make(chan error, 1)
	go func() { done <- e.Prefetch(all) }()
	<-started // one worker is inside compute; the rest of the batch is queued
	e.Interrupt()
	close(release)
	if err := <-done; !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted Prefetch returned %v, want ErrInterrupted", err)
	}
	st := e.Stats()
	if st.Computed == 0 || st.Computed >= keys {
		t.Errorf("Computed = %d, want the in-flight prefix only (0 < n < %d)", st.Computed, keys)
	}
	// In-flight work committed and persists…
	if len(e.Entries()) != st.Computed {
		t.Errorf("entries %d != computed %d", len(e.Entries()), st.Computed)
	}
	// …and skipped keys were released, not poisoned: Get computes them.
	if v, err := e.Get(keys - 1); err != nil || v == "" {
		t.Errorf("Get of a skipped key after interrupt = %q, %v", v, err)
	}
}

// TestPrefetchUntilCancelsOneBatchOnly: a per-batch stop channel drains
// that batch alone — in-flight work commits, skipped keys stay
// uncomputed and unpoisoned — while the engine keeps serving other
// batches normally afterwards.
func TestPrefetchUntilCancelsOneBatchOnly(t *testing.T) {
	const keys = 12
	started := make(chan int, keys)
	release := make(chan struct{})
	e := intEngine(1, func(k int) (string, error) {
		started <- k
		<-release
		return fmt.Sprintf("v%d", k), nil
	})
	all := make([]int, keys)
	for i := range all {
		all[i] = i
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- e.PrefetchUntil(all, stop) }()
	<-started // one worker is inside compute; the rest is queued
	close(stop)
	close(release)
	if err := <-done; !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled PrefetchUntil returned %v, want ErrInterrupted", err)
	}
	st := e.Stats()
	if st.Computed == 0 || st.Computed >= keys {
		t.Fatalf("Computed = %d, want the in-flight prefix only (0 < n < %d)", st.Computed, keys)
	}
	if len(e.Entries()) != st.Computed {
		t.Errorf("entries %d != computed %d", len(e.Entries()), st.Computed)
	}
	// The engine itself was not interrupted: a fresh batch over the same
	// keys completes every remaining key.
	if err := e.Prefetch(all); err != nil {
		t.Fatalf("Prefetch after a cancelled batch: %v", err)
	}
	if got := len(e.Entries()); got != keys {
		t.Errorf("entries after follow-up batch = %d, want %d", got, keys)
	}
}

// TestPrefetchUntilStopUnblocksJoinWait: a batch joining a key another
// caller is computing must not wait out that computation once its stop
// fires — the join drain observes the same stop signals as dispatch.
func TestPrefetchUntilStopUnblocksJoinWait(t *testing.T) {
	started := make(chan int, 1)
	release := make(chan struct{})
	e := intEngine(1, func(k int) (string, error) {
		started <- k
		<-release
		return fmt.Sprintf("v%d", k), nil
	})
	getDone := make(chan struct{})
	go func() { defer close(getDone); _, _ = e.Get(7) }()
	<-started // the Get owns key 7's inflight call

	// The batch has no work of its own — key 7 is inflight, so it joins
	// and parks in the drain. Fire stop instead of releasing the owner.
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- e.PrefetchUntil([]int{7}, stop) }()
	close(stop)
	if err := <-done; !errors.Is(err, ErrInterrupted) {
		t.Fatalf("stopped join wait returned %v, want ErrInterrupted", err)
	}

	// The abandoned join did not disturb the owner: the Get completes
	// and commits normally.
	close(release)
	<-getDone
	if v, err := e.Get(7); err != nil || v != "v7" {
		t.Errorf("Get(7) after the stopped join = %q, %v", v, err)
	}
}
