// Package cache implements the set-associative cache and TLB structures
// of the simulated memory hierarchy: 32 KB 2-way L1 instruction and data
// caches (2-cycle data cache) and 256-entry TLBs with 8 KB pages
// (Table 1). The L2 NUCA organization built from 1 MB banks lives in
// package nuca and uses this package's Cache for each bank.
package cache

import "fmt"

// Config describes one cache structure.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	// LatencyCycles is the access latency for a hit.
	LatencyCycles int
	// WriteBack selects write-back (true) or write-through behaviour.
	WriteBack bool
	// ECC marks the structure as ECC-protected. The paper's fault model
	// (§2) requires ECC on the data cache, the LVQ, and the trailing
	// core's register file; package fault consults this flag.
	ECC bool
}

// Validate reports a descriptive error for malformed geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by assoc %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats holds access counters for one cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint32
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	clock    uint32
	stats    Stats
}

// New builds a cache from cfg; it panics if cfg is invalid (geometry is
// always statically known in this simulator).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setShift: shift, setMask: uint64(nsets - 1)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.setShift
	return int(blk & c.setMask), blk >> uint64(len64(c.setMask))
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Access performs a read (write=false) or write (write=true) to addr.
// It returns whether the access hit, and whether a dirty victim was
// written back (only meaningful on misses in write-back caches).
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.stats.Accesses++
	c.clock++
	set, tag := c.index(addr)
	ways := c.sets[set]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].lru = c.clock
			if write && c.cfg.WriteBack {
				ways[w].dirty = true
			}
			return true, false
		}
	}
	c.stats.Misses++
	// Fill: choose invalid way or true-LRU victim.
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			goto fill
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].dirty {
		writeback = true
		c.stats.Writebacks++
	}
fill:
	ways[victim] = line{tag: tag, valid: true, dirty: write && c.cfg.WriteBack, lru: c.clock}
	return false, writeback
}

// Probe reports whether addr is present without updating LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines, returning the number of dirty lines that
// would be written back.
func (c *Cache) Flush() int {
	dirty := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				dirty++
			}
			c.sets[s][w] = line{}
		}
	}
	return dirty
}

// Default configurations from Table 1.
var (
	// L1I is the 32 KB 2-way instruction cache.
	L1I = Config{Name: "L1I", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, LatencyCycles: 1}
	// L1D is the 32 KB 2-way, 2-cycle data cache. It must be
	// ECC-protected because the trailing core consumes its load values
	// through the LVQ (§2).
	L1D = Config{Name: "L1D", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, LatencyCycles: 2, WriteBack: true, ECC: true}
)

// TLB is a simple fully-counted TLB model: 256 entries, 8 KB pages
// (Table 1), LRU replacement, modeled as set-associative with 64 sets ×
// 4 ways.
type TLB struct {
	c *Cache
}

// NewTLB returns a 256-entry TLB with 8 KB pages.
func NewTLB(name string) *TLB {
	return &TLB{c: New(Config{
		Name:      name,
		SizeBytes: 256 * 8192,
		Assoc:     4,
		LineBytes: 8192,
	})}
}

// Access touches the page containing addr and reports a TLB hit.
func (t *TLB) Access(addr uint64) bool {
	hit, _ := t.c.Access(addr, false)
	return hit
}

// Stats returns the TLB's counters.
func (t *TLB) Stats() Stats { return t.c.Stats() }
