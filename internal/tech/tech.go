// Package tech models process-technology parameters and their scaling
// behaviour: ITRS device characteristics (Table 7 of the paper),
// parameter-variation projections (Table 6), cross-node power scaling
// (Table 8), SRAM soft-error-rate scaling (Figure 8), and multi-bit-upset
// probability (Figure 9).
//
// The paper uses these models to argue that an *older* process makes the
// checker die more error-resilient: larger critical charge (fewer soft
// errors), smaller variability (fewer dynamic timing errors), lower
// leakage — at the price of higher dynamic power and slower circuits.
package tech

import (
	"fmt"
	"math"
)

// Node identifies a process technology generation by its nominal feature
// size in nanometres.
type Node int

// Technology generations referenced by the paper.
const (
	Node180 Node = 180
	Node130 Node = 130
	Node90  Node = 90
	Node80  Node = 80
	Node65  Node = 65
	Node45  Node = 45
	Node32  Node = 32
)

func (n Node) String() string { return fmt.Sprintf("%dnm", int(n)) }

// Device holds the ITRS device-model parameters the paper reproduces in
// its Table 7, plus derived circuit-speed and soft-error parameters used
// elsewhere in the evaluation.
type Device struct {
	Node Node

	// VoltageV is the nominal supply voltage in volts (Table 7).
	VoltageV float64
	// GateLengthNm is the printed gate length in nanometres (Table 7).
	GateLengthNm float64
	// CapPerUm is gate capacitance per micron of transistor width in
	// farads (Table 7, "Capacitance per um").
	CapPerUm float64
	// LeakPerUm is sub-threshold leakage current per micron of width in
	// arbitrary ITRS-normalized units (Table 7).
	LeakPerUm float64

	// FO4ps is the fanout-of-4 inverter delay in picoseconds. The paper's
	// 18 FO4 pipeline at 2 GHz implies FO4(65nm) ≈ 27.8 ps; a stage that
	// takes 500 ps at 65 nm takes 714 ps at 90 nm (§4), fixing the
	// 90 nm / 65 nm FO4 ratio at 1.428.
	FO4ps float64

	// QcritFC is the critical charge of an SRAM cell in femtocoulombs;
	// larger Qcrit means a particle strike is less likely to flip the
	// cell. Decreases with scaling (drives Figures 8 and 9).
	QcritFC float64
	// QsFC is the charge-collection efficiency parameter in the
	// Hazucha–Svensson SER model, in femtocoulombs.
	QsFC float64
	// BitAreaUm2 is the SRAM cell area in square microns (drives the
	// per-chip total SER trend: per-bit SER falls but density rises).
	BitAreaUm2 float64
}

// Variability holds the ITRS parameter-variation projections the paper
// reproduces in Table 6, expressed as +/- percentage change from nominal.
type Variability struct {
	Node            Node
	VthPct          float64 // threshold-voltage variability
	CircuitPerfPct  float64 // circuit performance variability
	CircuitPowerPct float64 // circuit power variability
}

var devices = map[Node]Device{
	// 180/130 nm rows carry only the SER-related parameters (Figure 8).
	Node180: {Node: Node180, VoltageV: 1.8, GateLengthNm: 100, CapPerUm: 17.0e-16, LeakPerUm: 0.006, FO4ps: 77.0, QcritFC: 16.0, QsFC: 10.0, BitAreaUm2: 4.84},
	Node130: {Node: Node130, VoltageV: 1.5, GateLengthNm: 65, CapPerUm: 12.5e-16, LeakPerUm: 0.015, FO4ps: 55.6, QcritFC: 10.5, QsFC: 7.7, BitAreaUm2: 2.43},
	Node90:  {Node: Node90, VoltageV: 1.2, GateLengthNm: 37, CapPerUm: 8.79e-16, LeakPerUm: 0.05, FO4ps: 39.7, QcritFC: 6.4, QsFC: 5.6, BitAreaUm2: 1.15},
	Node65:  {Node: Node65, VoltageV: 1.1, GateLengthNm: 25, CapPerUm: 6.99e-16, LeakPerUm: 0.2, FO4ps: 27.8, QcritFC: 4.1, QsFC: 4.3, BitAreaUm2: 0.60},
	Node45:  {Node: Node45, VoltageV: 1.0, GateLengthNm: 18, CapPerUm: 8.28e-16, LeakPerUm: 0.28, FO4ps: 19.4, QcritFC: 2.6, QsFC: 3.3, BitAreaUm2: 0.30},
}

var variability = []Variability{
	{Node: Node80, VthPct: 26, CircuitPerfPct: 41, CircuitPowerPct: 55},
	{Node: Node65, VthPct: 33, CircuitPerfPct: 45, CircuitPowerPct: 56},
	{Node: Node45, VthPct: 42, CircuitPerfPct: 50, CircuitPowerPct: 58},
	{Node: Node32, VthPct: 58, CircuitPerfPct: 57, CircuitPowerPct: 59},
}

// DeviceFor returns the device parameters for a node. It reports an error
// for nodes outside the modeled set.
func DeviceFor(n Node) (Device, error) {
	d, ok := devices[n]
	if !ok {
		return Device{}, fmt.Errorf("tech: no device model for node %s", n)
	}
	return d, nil
}

// MustDevice is DeviceFor for nodes known statically; it panics on error.
func MustDevice(n Node) Device {
	d, err := DeviceFor(n)
	if err != nil {
		panic(err)
	}
	return d
}

// VariabilityTable returns the ITRS variability projections (Table 6) in
// ascending order of scaling (descending feature size).
func VariabilityTable() []Variability {
	out := make([]Variability, len(variability))
	copy(out, variability)
	return out
}

// VariabilityFor returns the variability row for a node, if modeled.
func VariabilityFor(n Node) (Variability, bool) {
	for _, v := range variability {
		if v.Node == n {
			return v, true
		}
	}
	return Variability{}, false
}

// PowerScaling holds the relative power of a fixed design implemented in
// an older process, normalized to the newer process (Table 8). Values
// above 1 mean the older process consumes more.
type PowerScaling struct {
	Old, New Node
	Dynamic  float64
	Leakage  float64
}

// ScalePower computes the Table 8 power-scaling factors from the Table 7
// device parameters. Dynamic power scales as C·W·V² with total transistor
// width W proportional to gate length (a fixed layout grows linearly with
// the feature size); leakage scales as I_leak·W·V.
func ScalePower(old, new Node) (PowerScaling, error) {
	do, err := DeviceFor(old)
	if err != nil {
		return PowerScaling{}, err
	}
	dn, err := DeviceFor(new)
	if err != nil {
		return PowerScaling{}, err
	}
	wRatio := do.GateLengthNm / dn.GateLengthNm
	vRatio := do.VoltageV / dn.VoltageV
	dyn := (do.CapPerUm / dn.CapPerUm) * wRatio * vRatio * vRatio
	lkg := (do.LeakPerUm / dn.LeakPerUm) * wRatio * vRatio
	return PowerScaling{Old: old, New: new, Dynamic: dyn, Leakage: lkg}, nil
}

// DelayScale returns the circuit-delay ratio of implementing the same
// logic in `old` vs `new` (>1 means the older process is slower). The
// paper's §4 example: a 500 ps stage at 65 nm takes 714 ps at 90 nm.
func DelayScale(old, new Node) (float64, error) {
	do, err := DeviceFor(old)
	if err != nil {
		return 0, err
	}
	dn, err := DeviceFor(new)
	if err != nil {
		return 0, err
	}
	return do.FO4ps / dn.FO4ps, nil
}

// AreaScale returns the silicon-area ratio of implementing the same
// design in `old` vs `new` (>1 for older). Linear dimensions scale with
// the node's feature size, so area scales with its square. The paper's §4
// uses this to shrink the top-die L2 from 9 MB to 5 MB when moving the
// checker die from 65 nm to 90 nm at constant die area.
func AreaScale(old, new Node) float64 {
	return float64(old) * float64(old) / (float64(new) * float64(new))
}

// --- Soft errors (Figure 8) ----------------------------------------------

// SERComponents carries the neutron- and alpha-induced per-bit soft error
// rates for a node, normalized so that the 180 nm total is 1.0 — the
// normalization used in the paper's Figure 8.
type SERComponents struct {
	Node    Node
	Neutron float64
	Alpha   float64
}

// Total returns the combined per-bit SER.
func (s SERComponents) Total() float64 { return s.Neutron + s.Alpha }

// serFluxNeutron and serFluxAlpha are Hazucha–Svensson prefactors chosen
// so that the normalized 180 nm total equals 1.0 and the split between
// neutron and alpha matches the experimental shape of Seifert et al.
// (neutron-dominated at large geometries; alpha share growing as Qcrit
// approaches the alpha-deposited charge).
const (
	serFluxNeutron = 18.5
	serFluxAlpha   = 2.4
	// alphaQsFactor reflects the shallower collection depth for alpha
	// particles relative to neutrons.
	alphaQsFactor = 0.62
)

// PerBitSER evaluates the Hazucha–Svensson-style per-bit soft error rate
// model for a node:
//
//	SER = Flux × BitArea × exp(−Qcrit/Qs)
//
// for the neutron and alpha components separately, normalized to the
// 180 nm total.
func PerBitSER(n Node) (SERComponents, error) {
	d, err := DeviceFor(n)
	if err != nil {
		return SERComponents{}, err
	}
	base := rawSER(MustDevice(Node180))
	cur := rawSER(d)
	norm := base.Neutron + base.Alpha
	return SERComponents{
		Node:    n,
		Neutron: cur.Neutron / norm,
		Alpha:   cur.Alpha / norm,
	}, nil
}

func rawSER(d Device) SERComponents {
	return SERComponents{
		Node:    d.Node,
		Neutron: serFluxNeutron * d.BitAreaUm2 * math.Exp(-d.QcritFC/d.QsFC),
		Alpha:   serFluxAlpha * d.BitAreaUm2 * math.Exp(-d.QcritFC/(d.QsFC*alphaQsFactor)),
	}
}

// ChipSER returns the *relative per-chip* SER for a fixed-area die at
// node n, normalized to 180 nm: per-bit SER times bit density
// (1/BitArea). The paper notes that although per-bit SER falls with
// scaling, total chip SER rises because density grows faster.
func ChipSER(n Node) (float64, error) {
	s, err := PerBitSER(n)
	if err != nil {
		return 0, err
	}
	d := MustDevice(n)
	d0 := MustDevice(Node180)
	return s.Total() * (d0.BitAreaUm2 / d.BitAreaUm2), nil
}

// --- Multi-bit upsets (Figure 9) ------------------------------------------

// MBUModel evaluates the probability that a single particle strike upsets
// multiple adjacent bits, as a function of the cell critical charge in
// femtocoulombs. Charge sharing between neighbouring cells grows
// exponentially as Qcrit shrinks (Figure 9, after Seifert et al.).
type MBUModel struct {
	// P0 is the MBU probability asymptote as Qcrit → 0.
	P0 float64
	// QScaleFC sets how quickly MBU probability decays with Qcrit.
	QScaleFC float64
}

// DefaultMBUModel is calibrated so that MBU probability is negligible
// (<1e-4) at 180 nm-class critical charges (~16 fC) and rises towards a
// few percent at 45 nm-class charges (~2.6 fC).
var DefaultMBUModel = MBUModel{P0: 0.12, QScaleFC: 2.2}

// Probability returns the per-upset probability that the upset is
// multi-bit, for a cell with critical charge qcritFC.
func (m MBUModel) Probability(qcritFC float64) float64 {
	if qcritFC < 0 {
		qcritFC = 0
	}
	return m.P0 * math.Exp(-qcritFC/m.QScaleFC)
}

// NodeMBU returns the MBU probability for a node's nominal critical
// charge under the default model.
func NodeMBU(n Node) (float64, error) {
	d, err := DeviceFor(n)
	if err != nil {
		return 0, err
	}
	return DefaultMBUModel.Probability(d.QcritFC), nil
}

// --- Timing slack and dynamic timing errors --------------------------------

// TimingModel captures how dynamic timing-error probability depends on
// the slack left in a pipeline stage. A stage designed for cycle time T0
// operated with actual period T has slack (T − T_crit)/T_crit where
// T_crit = T0·delayScale is the critical-path delay (possibly stretched
// by an older process). Variation is modeled as a Gaussian perturbation
// of the critical path with sigma proportional to the node's circuit
// performance variability.
type TimingModel struct {
	// SigmaFrac is the standard deviation of the *cycle-to-cycle*
	// critical-path delay as a fraction of nominal. The Table 6 ±
	// percentages are dominated by static die-to-die variation (binned
	// out at test); only the dynamic share — temperature, supply noise,
	// cross-coupling — produces dynamic timing errors, so SigmaFrac =
	// variability × DynamicVariationShare / 3 (± treated as 3σ).
	SigmaFrac float64
}

// DynamicVariationShare is the fraction of the ITRS variability budget
// attributed to dynamic (per-cycle) effects.
const DynamicVariationShare = 0.15

// TimingModelFor derives a TimingModel from the node's Table 6 circuit
// performance variability; nodes without a Table 6 row fall back to the
// nearest modeled node.
func TimingModelFor(n Node) TimingModel {
	v, ok := VariabilityFor(n)
	if !ok {
		// Nearest available: 90 nm behaves like the 80 nm ITRS row.
		switch {
		case n >= Node90:
			v, _ = VariabilityFor(Node80)
		default:
			v, _ = VariabilityFor(Node45)
		}
	}
	return TimingModel{SigmaFrac: v.CircuitPerfPct / 100.0 * DynamicVariationShare / 3.0}
}

// ErrorProbability returns the per-stage, per-cycle probability that the
// critical path misses the latching edge when the stage is operated with
// period `periodPs` against a nominal critical-path delay `critPs`.
func (t TimingModel) ErrorProbability(periodPs, critPs float64) float64 {
	if critPs <= 0 {
		return 0
	}
	sigma := t.SigmaFrac * critPs
	if sigma <= 0 {
		if periodPs >= critPs {
			return 0
		}
		return 1
	}
	// P(delay > period) for delay ~ N(crit, sigma).
	z := (periodPs - critPs) / sigma
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
