// Package campaign is the hardened Monte Carlo harness over the fault
// package's injection machinery: it fans a grid of trial configurations
// across a worker pool and keeps the harness itself alive through every
// pathology a trial can exhibit.
//
// The paper's reliability claims (§3.5, §4, Figure 9) rest on
// statistical fault-injection campaigns — thousands of config×seed
// trials — and a harness that studies failures must survive them:
//
//   - a trial that panics is caught and reported as a structured
//     outcome with Status "crashed" instead of killing the process;
//   - a trial whose simulated system stops retiring instructions (a
//     wedged RVQ barrier, a recovery livelock) is detected by a
//     forward-progress watchdog — cycle budget plus no-retire deadline,
//     both measured in simulated cycles so detection is deterministic —
//     and reported as "hung", giving the study a wedge statistic;
//   - trials that hit the watchdog under heavy rate acceleration may be
//     retried a bounded number of times with a deterministically
//     perturbed seed;
//   - every completed trial is journaled as one CRC-guarded JSONL line,
//     so an interrupted campaign resumes from the partial journal and
//     the final aggregate is byte-identical to an uninterrupted run;
//   - the aggregate state is periodically snapshotted through the
//     internal/ckpt layer (atomic commits, automatic rollback to the
//     previous snapshot), so restore replays only the journal suffix
//     written after the last snapshot;
//   - closing Config.Stop drains gracefully: in-flight trials finish,
//     the journal is flushed, and a final snapshot commits before Run
//     returns a partial (resumable) report;
//   - restored outcomes can be shadow-verified RMT-style: a
//     deterministic fraction is re-executed from scratch in the worker
//     pool and byte-compared against the stored result, with mismatches
//     surfaced as structured divergence findings instead of silently
//     trusted;
//   - aggregation orders trials by ID, never by completion order, so
//     the repo's determinism guarantee extends to parallel runs.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"r3d/internal/backoff"
	"r3d/internal/core"
	"r3d/internal/detmap"
	"r3d/internal/fault"
	"r3d/internal/iofault"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/trace"
)

// Status classifies how a trial ended.
type Status string

// The outcome taxonomy: a trial either reaches its instruction target
// (ok), is stopped by the watchdog (hung), or dies by panic or setup
// failure (crashed). The harness process survives all three.
const (
	StatusOK      Status = "ok"
	StatusHung    Status = "hung"
	StatusCrashed Status = "crashed"
)

// Reasons attached to non-ok outcomes.
const (
	ReasonNoProgress  = "no-progress"  // Progress() flat for the no-retire deadline
	ReasonCycleBudget = "cycle-budget" // hard CycleBudget reached
	ReasonWallClock   = "wall-clock"   // host-clock stall timeout (harness last resort)
)

// TrialSpec is one grid point: a workload/system selection plus the
// injection configuration to run on it. IDs must be unique within a
// campaign; they key journal resume and aggregate ordering.
type TrialSpec struct {
	ID    string `json:"id"`
	Bench string `json:"bench"`
	// L2 selects the cache organization: "2d-a" (default), "2d-2a" or
	// "3d-2a".
	L2 string `json:"l2,omitempty"`
	// CheckerMaxGHz caps the checker DFS range (0 = the 2.0 GHz
	// homogeneous stack).
	CheckerMaxGHz float64              `json:"checker_max_ghz,omitempty"`
	Config        fault.CampaignConfig `json:"config"`
}

// TrialOutcome is the structured result of one trial, whatever happened
// to it. It is what the journal stores and the report aggregates, so it
// deliberately contains no wall-clock timestamps or host-dependent
// fields: two runs of the same spec produce identical outcomes.
type TrialOutcome struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	// Reason qualifies non-ok outcomes: a watchdog reason for hung
	// trials, the panic or setup error message for crashed ones.
	Reason string `json:"reason,omitempty"`
	// Attempts counts runs of this trial including retries (≥ 1).
	Attempts int `json:"attempts"`
	// HungAtCycle is the leading cycle at which the watchdog fired.
	HungAtCycle uint64 `json:"hung_at_cycle,omitempty"`
	// Result holds the (possibly partial, for hung trials) campaign
	// statistics; nil for crashed trials.
	Result *fault.CampaignResult `json:"result,omitempty"`
}

// Watchdog bounds a trial's forward progress in simulated time. Both
// limits are deterministic functions of the simulation, so whether a
// trial hangs — and at which cycle — is identical on every run.
type Watchdog struct {
	// NoProgressCycles is the no-retire deadline: the trial is hung if
	// the system's Progress counter does not advance for this many
	// leading cycles. Must comfortably exceed recovery penalties and
	// DFS ramp transients; 0 selects DefaultNoProgressCycles.
	NoProgressCycles uint64
	// CheckEveryCycles is the probe granularity (0 selects
	// DefaultCheckEveryCycles). Probing every cycle would double the
	// cost of the hot loop for no detection benefit.
	CheckEveryCycles uint64
}

// Watchdog defaults: the recovery penalty is 80 cycles and DFS
// transients span a few thousand, so 50k no-retire cycles only ever
// trips on a genuinely wedged system.
const (
	DefaultNoProgressCycles = 50_000
	DefaultCheckEveryCycles = 1024
)

func (w Watchdog) withDefaults() Watchdog {
	if w.NoProgressCycles == 0 {
		w.NoProgressCycles = DefaultNoProgressCycles
	}
	if w.CheckEveryCycles == 0 {
		w.CheckEveryCycles = DefaultCheckEveryCycles
	}
	return w
}

// SystemBuilder constructs the RMT system for one trial. The builder is
// called once per attempt, with the attempt's (possibly retry-perturbed)
// seed already substituted into spec.Config.Seed.
type SystemBuilder func(spec TrialSpec) (*core.System, error)

// BuildSystem is the default builder: synthetic workload by name,
// selected L2 organization, default leading core, checker capped at
// spec.CheckerMaxGHz.
func BuildSystem(spec TrialSpec) (*core.System, error) {
	b, err := trace.ByName(spec.Bench)
	if err != nil {
		return nil, err
	}
	var l2cfg nuca.Config
	switch spec.L2 {
	case "", "2d-a":
		l2cfg = nuca.Config2DA(nuca.DistributedSets)
	case "2d-2a":
		l2cfg = nuca.Config2D2A(nuca.DistributedSets)
	case "3d-2a":
		l2cfg = nuca.Config3D2A(nuca.DistributedSets)
	default:
		return nil, fmt.Errorf("campaign: unknown L2 organization %q", spec.L2)
	}
	g := trace.MustGenerator(b.Profile, spec.Config.Seed)
	lead, err := ooo.New(ooo.Default(), g, nuca.New(l2cfg))
	if err != nil {
		return nil, err
	}
	cfg := core.Default(ooo.Default())
	if spec.CheckerMaxGHz > 0 {
		cfg.CheckerMaxFreqGHz = spec.CheckerMaxGHz
	}
	return core.New(cfg, lead)
}

// Config drives Run.
type Config struct {
	// Workers is the goroutine-pool width (≤ 0 selects 1; trials are
	// deterministic per spec, so any width yields the same report).
	Workers int
	// MaxRetries is the bounded per-trial retry budget for trials the
	// watchdog reports hung: each retry perturbs the seed by a fixed
	// stride, giving acceleration-induced wedges another draw. Crashed
	// trials are not retried — a deterministic panic would only repeat.
	MaxRetries int
	// JournalPath appends one JSONL line per completed trial ("",
	// disables journaling). With Resume, previously journaled outcomes
	// are reused instead of re-running their trials.
	JournalPath string
	Resume      bool
	// CheckpointPath enables periodic snapshots of the aggregate state
	// ("" disables): every CheckpointEvery completed trials, and once
	// more at the end of the run, the full outcome set plus the journal
	// offset it covers commits atomically through internal/ckpt.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in completed trials (0
	// selects DefaultCheckpointEvery). Smaller values shorten the
	// journal suffix a restore must replay at the cost of more snapshot
	// I/O.
	CheckpointEvery int
	// Restore loads CheckpointPath before running — rolling back to the
	// previous snapshot if the current one is torn or corrupt — and then
	// replays only the journal suffix written after it. A snapshot for a
	// different grid or build fails loudly. Restore implies journal
	// resume.
	Restore bool
	// ShadowFraction in (0,1] enables RMT-style self-verification of
	// restored state: that fraction of restored outcomes — selected
	// deterministically by trial-ID hash — is re-executed from scratch
	// in the worker pool and byte-compared against the stored result.
	// Divergences land in Report.ShadowDivergences; the stored value
	// still feeds the aggregate (the shadow checker detects, it does not
	// silently repair).
	ShadowFraction float64
	// Stop, when closed, drains the campaign gracefully: no new trials
	// are dispatched, in-flight trials finish, the journal is flushed
	// and a final snapshot commits. The returned report carries
	// Interrupted=true and only the completed trials.
	Stop     <-chan struct{}
	Watchdog Watchdog
	// OnOutcome, when non-nil, observes every freshly executed trial as
	// it commits (journal-restored outcomes are not replayed through it).
	// It is called from worker goroutines, possibly concurrently, with no
	// harness locks held; it must be cheap and concurrency-safe. Progress
	// reporting is its intended use — it cannot alter outcomes.
	OnOutcome func(TrialOutcome)
	// FS is the filesystem every durable artifact (journal, checkpoints)
	// goes through. nil selects the real filesystem; the chaos harness
	// injects a seeded fault lattice here.
	FS iofault.FS
	// StallTimeout is a host-clock last resort against harness bugs: a
	// trial goroutine that produces no outcome within this wall time is
	// abandoned and reported hung with ReasonWallClock. It is off (0)
	// by default because the simulated-cycle watchdog already bounds
	// every well-formed trial deterministically; enabling it trades
	// bit-reproducibility of pathological runs for liveness.
	StallTimeout time.Duration
	// Builder overrides system construction (nil = BuildSystem).
	Builder SystemBuilder
}

// retrySeedStride separates retry seeds from every seed a sane grid
// would enumerate, while staying a deterministic function of the
// attempt number.
const retrySeedStride = 1_000_003

// DefaultCheckpointEvery is the snapshot cadence when Config leaves
// CheckpointEvery zero: frequent enough that a kill loses little replay
// work, rare enough that snapshot I/O stays invisible next to trials.
const DefaultCheckpointEvery = 4

type runner struct {
	cfg     Config
	wd      Watchdog
	builder SystemBuilder
}

// Run executes the campaign and aggregates a Report ordered by trial
// ID. The returned error reports harness failures only (duplicate IDs,
// journal I/O or mismatch, a foreign checkpoint); trial failures —
// panics, wedges — are data, carried in the report, and the caller
// should exit 0 on them. A graceful drain (Config.Stop) is not an
// error either: the report simply carries Interrupted plus the trials
// that completed.
func Run(cfg Config, specs []TrialSpec) (*Report, error) {
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if sp.ID == "" {
			return nil, fmt.Errorf("campaign: trial with empty ID")
		}
		if seen[sp.ID] {
			return nil, fmt.Errorf("campaign: duplicate trial ID %q", sp.ID)
		}
		seen[sp.ID] = true
	}
	r := &runner{cfg: cfg, wd: cfg.Watchdog.withDefaults(), builder: cfg.Builder}
	if r.builder == nil {
		r.builder = BuildSystem
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	fp, err := gridFingerprint(specs)
	if err != nil {
		return nil, err
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = iofault.OS()
	}

	// Restore order matters: the snapshot supplies the bulk of the
	// state plus the journal offset it covers; the journal then replays
	// only the suffix written after the snapshot. Outcomes journaled
	// after the snapshot overwrite (identical, by determinism) snapshot
	// entries harmlessly.
	var notes []string
	completed := map[string]TrialOutcome{}
	var snapOffset int64
	if cfg.Restore && cfg.CheckpointPath != "" {
		snap, snapNotes, err := readCheckpoint(fsys, cfg.CheckpointPath, fp)
		notes = append(notes, snapNotes...)
		if err != nil {
			return nil, err
		}
		if snap != nil {
			for _, out := range snap.outcomes {
				completed[out.ID] = out
			}
			snapOffset = snap.journalBytes
			notes = append(notes, fmt.Sprintf("campaign: restored %d trial outcome(s) from checkpoint %s", len(snap.outcomes), cfg.CheckpointPath))
		}
	}
	var jr *journal
	if cfg.JournalPath != "" {
		var fromJournal []TrialOutcome
		var jnotes []string
		jr, fromJournal, jnotes, err = openJournal(fsys, cfg.JournalPath, fp, cfg.Resume || cfg.Restore, snapOffset)
		notes = append(notes, jnotes...)
		if err != nil {
			return nil, err
		}
		for _, out := range fromJournal {
			completed[out.ID] = out
		}
	}

	outcomes := make([]TrialOutcome, len(specs))
	var pending, shadows []int
	for i, sp := range specs {
		out, ok := completed[sp.ID]
		if !ok {
			pending = append(pending, i)
			continue
		}
		outcomes[i] = out
		if shadowEligible(cfg.ShadowFraction, out) {
			shadows = append(shadows, i)
		}
	}

	st := &commitState{
		fsys:     fsys,
		jr:       jr,
		path:     cfg.CheckpointPath,
		fp:       fp,
		every:    cfg.CheckpointEvery,
		outcomes: completed,
	}
	if st.every <= 0 {
		st.every = DefaultCheckpointEvery
	}

	// Real trials first, shadow re-verifications after: on a drained
	// run, unfinished work beats unfinished double-checking.
	type job struct {
		idx    int
		shadow bool
	}
	jobList := make([]job, 0, len(pending)+len(shadows))
	for _, i := range pending {
		jobList = append(jobList, job{idx: i})
	}
	for _, i := range shadows {
		jobList = append(jobList, job{idx: i, shadow: true})
	}

	// Per-trial-index slots: every job owns its index exclusively, so
	// workers write without locks (the same discipline outcomes uses).
	divSlots := make([]ShadowDivergence, len(specs))
	divHit := make([]bool, len(specs))
	var shadowChecked atomic.Int64

	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if j.shadow {
					shadowChecked.Add(1)
					if d, ok := r.shadowCheck(specs[j.idx], outcomes[j.idx]); !ok {
						divSlots[j.idx] = d
						divHit[j.idx] = true
					}
					continue
				}
				out := r.trialWithTimeout(specs[j.idx])
				outcomes[j.idx] = out
				st.commit(out)
				if cfg.OnOutcome != nil {
					cfg.OnOutcome(out)
				}
			}
		}()
	}
	interrupted := false
dispatch:
	for _, jb := range jobList {
		select {
		case jobs <- jb:
		case <-cfg.Stop:
			interrupted = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// Commit the final state: journal durable first, then the snapshot
	// that references it — the ordering a restore depends on.
	if jr != nil {
		jr.sync()
	}
	st.mu.Lock()
	if st.path != "" {
		//lint:ignore blockhold the final checkpoint must pair the journal offset with the aggregate atomically; workers have already drained, so nothing contends
		st.snapshotLocked()
	}
	notes = append(notes, st.notes...)
	st.mu.Unlock()
	if jr != nil {
		if err := jr.close(); err != nil {
			return nil, err
		}
	}

	// A drained run reports only what completed; the zero-valued slots
	// of never-dispatched trials are excluded, so the partial aggregate
	// is itself well-formed (and resumable into the full one).
	present := outcomes
	if interrupted {
		present = present[:0:0]
		for _, out := range outcomes {
			if out.ID != "" {
				present = append(present, out)
			}
		}
	}
	rep := buildReport(present)
	rep.Interrupted = interrupted
	var divs []ShadowDivergence
	for i := range divHit {
		if divHit[i] {
			divs = append(divs, divSlots[i])
		}
	}
	sort.Slice(divs, func(i, j int) bool { return divs[i].ID < divs[j].ID })
	rep.ShadowDivergences = divs
	rep.ShadowChecked = int(shadowChecked.Load())
	rep.Notes = notes
	return rep, nil
}

// shadowEligible reports whether a restored outcome is a shadow-check
// candidate: selection is a deterministic function of the trial ID, so
// which trials get re-verified is reproducible. Wall-clock-hung
// outcomes are excluded — they are the one outcome class that is not a
// pure function of the spec.
func shadowEligible(fraction float64, out TrialOutcome) bool {
	if fraction <= 0 || out.Reason == ReasonWallClock {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(out.ID)) // fnv.Write cannot fail
	return float64(h.Sum32())/float64(1<<32) < fraction
}

// shadowCheck is the RMT mirror for restored state: re-execute the
// trial from scratch and byte-compare the canonical encodings. ok=false
// carries a structured divergence finding.
func (r *runner) shadowCheck(spec TrialSpec, stored TrialOutcome) (ShadowDivergence, bool) {
	recomputed := r.runTrial(spec)
	a, aerr := json.Marshal(stored)
	b, berr := json.Marshal(recomputed)
	if aerr == nil && berr == nil && bytes.Equal(a, b) {
		return ShadowDivergence{}, true
	}
	return ShadowDivergence{ID: spec.ID, Stored: string(a), Recomputed: string(b)}, false
}

// commitState serializes the post-trial commit path: journal append,
// aggregate-state update, and the periodic snapshot that must see the
// two in lockstep (every outcome inside the snapshot is also inside the
// journal prefix its offset names).
type commitState struct {
	mu    sync.Mutex
	fsys  iofault.FS // immutable after Run wires it
	jr    *journal
	path  string // checkpoint path ("" disables snapshots)
	fp    string
	every int
	// r3dlint:guardedby mu
	sinceN int
	// r3dlint:guardedby mu
	outcomes map[string]TrialOutcome
	// r3dlint:guardedby mu
	notes []string
}

func (st *commitState) commit(out TrialOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.jr != nil {
		st.jr.append(out)
	}
	st.outcomes[out.ID] = out
	st.sinceN++
	if st.path != "" && st.sinceN >= st.every {
		st.sinceN = 0
		//lint:ignore blockhold a snapshot must see journal offset and aggregate in lockstep — the invariant restore depends on; cadence is bounded by CheckpointEvery
		st.snapshotLocked()
	}
}

// checkpointRetry bounds the in-line retry of one snapshot commit
// against transient storage faults. No sleeping: the commit path is
// already off the trial hot path, and a fault that outlasts the budget
// degrades to a note (the journal still restores the campaign).
var checkpointRetry = backoff.Policy{Attempts: 3}

// snapshotLocked commits one checkpoint of the current aggregate state,
// retrying transient storage faults. Snapshot failures degrade to notes
// — the journal alone still restores the campaign, just with a longer
// replay.
func (st *commitState) snapshotLocked() {
	var off int64
	if st.jr != nil {
		off = st.jr.bytes()
	}
	outs := make([]TrialOutcome, 0, len(st.outcomes))
	for _, id := range detmap.SortedKeys(st.outcomes) {
		outs = append(outs, st.outcomes[id])
	}
	err := backoff.Retry(checkpointRetry, nil, func() error {
		return writeCheckpoint(st.fsys, st.path, st.fp, outs, off)
	})
	if err != nil {
		st.notes = append(st.notes, "campaign: checkpoint: "+err.Error())
	}
}

// trialWithTimeout wraps runTrial in the optional host-clock stall
// guard. A trial abandoned here leaks its goroutine by design: there is
// no way to preempt it, and keeping the campaign alive is the point.
func (r *runner) trialWithTimeout(spec TrialSpec) TrialOutcome {
	if r.cfg.StallTimeout <= 0 {
		return r.runTrial(spec)
	}
	ch := make(chan TrialOutcome, 1)
	go func() { ch <- r.runTrial(spec) }()
	//lint:ignore wallclock watchdog driver: the host-clock stall guard is the harness's last resort against a trial the simulated-cycle watchdog cannot bound (e.g. a bug in Step itself); it is opt-in and never fires on well-formed trials
	timer := time.NewTimer(r.cfg.StallTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		return TrialOutcome{ID: spec.ID, Status: StatusHung, Reason: ReasonWallClock, Attempts: 1}
	}
}

// runTrial runs one trial with the bounded retry policy for hung
// outcomes. The attempt budget is explicit in the loop condition so
// termination is provable: the abandoned trialWithTimeout goroutine
// holding this loop runs at most MaxRetries+1 attempts.
func (r *runner) runTrial(spec TrialSpec) TrialOutcome {
	attempts := r.cfg.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	var out TrialOutcome
	for attempt := 1; attempt <= attempts; attempt++ {
		s := spec
		s.Config.Seed = spec.Config.Seed + int64(attempt-1)*retrySeedStride
		out = r.runAttempt(s)
		out.ID = spec.ID
		out.Attempts = attempt
		if out.Status != StatusHung {
			return out
		}
	}
	return out
}

// runAttempt builds the system and drives the campaign under the
// watchdog, converting panics into crashed outcomes.
func (r *runner) runAttempt(spec TrialSpec) (out TrialOutcome) {
	defer func() {
		if p := recover(); p != nil {
			out = TrialOutcome{Status: StatusCrashed, Reason: fmt.Sprintf("panic: %v", p)}
		}
	}()
	sys, err := r.builder(spec)
	if err != nil {
		return TrialOutcome{Status: StatusCrashed, Reason: "build: " + err.Error()}
	}
	return RunSupervised(sys, spec.Config, r.wd)
}

// RunSupervised drives one injection campaign over an existing system
// under the forward-progress watchdog, with panic isolation. It is the
// single-trial core of the harness, exported so the r3d facade's
// RunInjection gains the same protections.
func RunSupervised(sys *core.System, cfg fault.CampaignConfig, wd Watchdog) (out TrialOutcome) {
	defer func() {
		if p := recover(); p != nil {
			out = TrialOutcome{Status: StatusCrashed, Reason: fmt.Sprintf("panic: %v", p)}
		}
	}()
	wd = wd.withDefaults()
	camp, err := fault.NewCampaign(sys, cfg)
	if err != nil {
		return TrialOutcome{Status: StatusCrashed, Reason: "config: " + err.Error()}
	}
	hung := func(reason string) TrialOutcome {
		res := camp.Result()
		return TrialOutcome{Status: StatusHung, Reason: reason, HungAtCycle: camp.Cycles(), Result: &res}
	}
	lastProgress := sys.Progress()
	lastAdvance := uint64(0)
	for !camp.Done() {
		if camp.BudgetExhausted() {
			return hung(ReasonCycleBudget)
		}
		camp.Step()
		if camp.Cycles()%wd.CheckEveryCycles != 0 {
			continue
		}
		if p := sys.Progress(); p > lastProgress {
			lastProgress, lastAdvance = p, camp.Cycles()
		} else if camp.Cycles()-lastAdvance >= wd.NoProgressCycles {
			return hung(ReasonNoProgress)
		}
	}
	res := camp.Result()
	return TrialOutcome{Status: StatusOK, Result: &res}
}
