package lint

import "testing"

func TestGlobalRandFlagsTopLevelCalls(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	rand.Seed(1)
	return rand.Intn(6) + int(rand.Float64())
}
`)
	wantChecks(t, fs, "globalrand", "globalrand", "globalrand")
}

// The check applies outside internal/ too: driver code drawing from the
// global generator is just as non-reproducible.
func TestGlobalRandFlagsDriverCode(t *testing.T) {
	fs := findings(t, GlobalRand, driverPath, `
package fixture

import "math/rand"

func Roll() int { return rand.Intn(6) }
`)
	wantChecks(t, fs, "globalrand")
}

// Import aliasing must not hide the global generator.
func TestGlobalRandSeesThroughAlias(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import mr "math/rand"

func Roll() int { return mr.Intn(6) }
`)
	wantChecks(t, fs, "globalrand")
}

func TestGlobalRandAcceptsSeededRand(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
`)
	wantChecks(t, fs)
}

func TestGlobalRandSuppressed(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	//lint:ignore globalrand demonstration fixture only
	return rand.Intn(6)
}
`)
	wantChecks(t, fs)
}
