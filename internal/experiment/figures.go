package experiment

import (
	"fmt"
	"strings"

	"r3d/internal/nuca"
	"r3d/internal/power"
	"r3d/internal/stats"
	"r3d/internal/tech"
	"r3d/internal/thermal"
)

// CheckerPowerSweep is the Figure 4 x-axis.
var CheckerPowerSweep = []float64{2, 5, 7, 10, 15, 20, 25}

// Figure4Row is one checker-power point. T3D2A is the hottest cell on
// either die; T3D2ADie1 is the processor die alone (the checker on the
// stacked die runs hotter by the F2F interface drop — see
// EXPERIMENTS.md on which the paper most plausibly reports).
type Figure4Row struct {
	CheckerW  float64
	T2D2A     thermal.Celsius
	T3D2A     thermal.Celsius
	T3D2ADie1 thermal.Celsius
}

// Figure4Result is the Figure 4 dataset: peak temperature versus checker
// power for the 2d-2a and 3d-2a organizations against the 2d-a baseline
// line.
type Figure4Result struct {
	Baseline2DA thermal.Celsius
	Rows        []Figure4Row
}

// Figure4Manifest declares the suite-activity windows behind the power
// maps (the thermal sweep itself is prefetched through the session's
// thermal snapshot store at render time).
func Figure4Manifest(q Quality) []RunKey {
	return activityKeys(q, L2DA)
}

// Figure4 regenerates Figure 4 using suite-average activity. The
// 15-case thermal sweep is prefetched across workers; rendering then
// reads the published snapshots.
func Figure4(s *Session, workers int) (Figure4Result, error) {
	act, rate6, err := s.SuiteActivity(L2DA)
	if err != nil {
		return Figure4Result{}, err
	}
	rate15 := rate6 * 6 / 15 // same traffic spread over more banks

	cases := []ThermalCase{{Model: M2DA, Act: act, L2Rate: rate6}}
	for _, w := range CheckerPowerSweep {
		cases = append(cases,
			ThermalCase{Model: M2D2A, Act: act, L2Rate: rate15, CheckerW: w},
			ThermalCase{Model: M3D2A, Act: act, L2Rate: rate15, CheckerW: w})
	}
	if err := s.PrefetchThermal(cases, workers); err != nil {
		return Figure4Result{}, err
	}

	base, err := s.SolveThermal(ThermalCase{Model: M2DA, Act: act, L2Rate: rate6})
	if err != nil {
		return Figure4Result{}, err
	}
	res := Figure4Result{Baseline2DA: base.PeakC}
	for _, w := range CheckerPowerSweep {
		t2, err := s.SolveThermal(ThermalCase{Model: M2D2A, Act: act, L2Rate: rate15, CheckerW: w})
		if err != nil {
			return Figure4Result{}, err
		}
		t3, err := s.SolveThermal(ThermalCase{Model: M3D2A, Act: act, L2Rate: rate15, CheckerW: w})
		if err != nil {
			return Figure4Result{}, err
		}
		res.Rows = append(res.Rows, Figure4Row{CheckerW: w, T2D2A: t2.PeakC, T3D2A: t3.PeakC, T3D2ADie1: t3.PeakDie1C})
	}
	return res, nil
}

// String renders the Figure 4 series.
func (r Figure4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Thermal overhead of the 3D checker (peak °C)\n")
	fmt.Fprintf(&b, "  2d-a baseline: %.1f °C\n", r.Baseline2DA)
	fmt.Fprintf(&b, "  %-12s %8s %8s %10s %12s\n", "checker (W)", "2d-2a", "3d-2a", "3d-2a die1", "Δdie1 vs 2d-a")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12.0f %8.1f %8.1f %10.1f %+12.1f\n",
			row.CheckerW, row.T2D2A, row.T3D2A, row.T3D2ADie1, row.T3D2ADie1-r.Baseline2DA)
	}
	return b.String()
}

// Figure5Row is one benchmark's peak temperatures across the five
// configurations of the paper's Figure 5.
type Figure5Row struct {
	Bench    string
	T2DA     thermal.Celsius
	T2D2A7W  thermal.Celsius
	T3D2A7W  thermal.Celsius
	T2D2A15W thermal.Celsius
	T3D2A15W thermal.Celsius
}

// Figure5Result is the per-benchmark thermal dataset.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5Manifest declares the per-benchmark activity windows.
func Figure5Manifest(q Quality) []RunKey {
	return activityKeys(q, L2DA)
}

// Figure5 regenerates Figure 5. The per-benchmark 5-case sweeps are
// prefetched across workers as one batch (5·N cases), then rendered
// from the published snapshots.
func Figure5(s *Session, workers int) (Figure5Result, error) {
	var res Figure5Result
	var batch []ThermalCase
	for _, b := range s.Q.Suite() {
		act, rate6, err := s.BenchActivity(b.Profile.Name, L2DA)
		if err != nil {
			return Figure5Result{}, err
		}
		rate15 := rate6 * 6 / 15
		batch = append(batch,
			ThermalCase{Model: M2DA, Act: act, L2Rate: rate6},
			ThermalCase{Model: M2D2A, Act: act, L2Rate: rate15, CheckerW: power.CheckerOptimisticW},
			ThermalCase{Model: M3D2A, Act: act, L2Rate: rate15, CheckerW: power.CheckerOptimisticW},
			ThermalCase{Model: M2D2A, Act: act, L2Rate: rate15, CheckerW: power.CheckerPessimisticW},
			ThermalCase{Model: M3D2A, Act: act, L2Rate: rate15, CheckerW: power.CheckerPessimisticW})
	}
	if err := s.PrefetchThermal(batch, workers); err != nil {
		return Figure5Result{}, err
	}
	for _, b := range s.Q.Suite() {
		name := b.Profile.Name
		act, rate6, err := s.BenchActivity(name, L2DA)
		if err != nil {
			return Figure5Result{}, err
		}
		rate15 := rate6 * 6 / 15
		row := Figure5Row{Bench: name}
		cases := []struct {
			dst   *thermal.Celsius
			model ChipModel
			rate  float64
			w     float64
		}{
			{&row.T2DA, M2DA, rate6, 0},
			{&row.T2D2A7W, M2D2A, rate15, power.CheckerOptimisticW},
			{&row.T3D2A7W, M3D2A, rate15, power.CheckerOptimisticW},
			{&row.T2D2A15W, M2D2A, rate15, power.CheckerPessimisticW},
			{&row.T3D2A15W, M3D2A, rate15, power.CheckerPessimisticW},
		}
		for _, c := range cases {
			t, err := s.SolveThermal(ThermalCase{Model: c.model, Act: act, L2Rate: c.rate, CheckerW: c.w})
			if err != nil {
				return Figure5Result{}, err
			}
			*c.dst = t.PeakC
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the Figure 5 table.
func (r Figure5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Per-benchmark peak temperature (°C)\n")
	fmt.Fprintf(&b, "  %-9s %7s %9s %9s %9s %9s\n", "bench", "2d_a", "2d2a_7W", "3d2a_7W", "2d2a_15W", "3d2a_15W")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %7.1f %9.1f %9.1f %9.1f %9.1f\n",
			row.Bench, row.T2DA, row.T2D2A7W, row.T3D2A7W, row.T2D2A15W, row.T3D2A15W)
	}
	return b.String()
}

// Figure6Row is one benchmark's IPC across the four chip models.
type Figure6Row struct {
	Bench    string
	IPC2DA   float64
	IPC2D2A  float64
	IPC3D2A  float64
	IPC3DChk float64 // 3d-checker: RMT system over the 2d-a cache
}

// Figure6Result is the per-benchmark performance dataset.
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6Manifest declares one leading window per L2 organization plus
// the RMT windows of the 3d-checker column.
func Figure6Manifest(q Quality) []RunKey {
	var keys []RunKey
	for _, l2c := range []L2Config{L2DA, L2D2A, L3D2A} {
		keys = append(keys, suiteLeadKeys(q, l2c, nuca.DistributedSets, 0)...)
	}
	return append(keys, suiteRMTKeys(q, L2DA, 2.0)...)
}

// Figure6 regenerates Figure 6 with the distributed-sets NUCA policy.
func Figure6(s *Session) (Figure6Result, error) {
	var res Figure6Result
	for _, b := range s.Q.Suite() {
		name := b.Profile.Name
		row := Figure6Row{Bench: name}
		for _, c := range []struct {
			dst *float64
			cfg L2Config
		}{
			{&row.IPC2DA, L2DA},
			{&row.IPC2D2A, L2D2A},
			{&row.IPC3D2A, L3D2A},
		} {
			r, err := s.Leading(name, c.cfg, 0, 0)
			if err != nil {
				return Figure6Result{}, err
			}
			*c.dst = r.IPC()
		}
		rmt, err := s.RMT(name, L2DA, 2.0)
		if err != nil {
			return Figure6Result{}, err
		}
		row.IPC3DChk = rmt.Lead.IPC()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Means returns the suite-mean IPC per model (2d-a, 2d-2a, 3d-2a,
// 3d-checker).
func (r Figure6Result) Means() (m2da, m2d2a, m3d2a, m3dchk float64) {
	if len(r.Rows) == 0 {
		return
	}
	n := float64(len(r.Rows))
	for _, row := range r.Rows {
		m2da += row.IPC2DA / n
		m2d2a += row.IPC2D2A / n
		m3d2a += row.IPC3D2A / n
		m3dchk += row.IPC3DChk / n
	}
	return
}

// String renders the Figure 6 table.
func (r Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Per-benchmark IPC (distributed-sets NUCA)\n")
	fmt.Fprintf(&b, "  %-9s %7s %7s %7s %10s\n", "bench", "2d-a", "2d-2a", "3d-2a", "3d-checker")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %7.2f %7.2f %7.2f %10.2f\n", row.Bench, row.IPC2DA, row.IPC2D2A, row.IPC3D2A, row.IPC3DChk)
	}
	a, c, d, e := r.Means()
	fmt.Fprintf(&b, "  %-9s %7.2f %7.2f %7.2f %10.2f\n", "MEAN", a, c, d, e)
	return b.String()
}

// Figure7Result is the checker-frequency residency histogram aggregated
// over the suite (time-weighted), normalized to the 2 GHz peak.
type Figure7Result struct {
	Fractions []float64 // 10 bins of 0.1·f
	MeanNorm  float64   // mean f_checker / f_lead
	ModeNorm  float64
}

// Figure7Manifest declares the homogeneous-stack RMT windows.
func Figure7Manifest(q Quality) []RunKey {
	return suiteRMTKeys(q, L2DA, 2.0)
}

// Figure7 regenerates the §3.5 frequency histogram.
func Figure7(s *Session) (Figure7Result, error) {
	agg := stats.NewHistogram(0, 1.0001, 10)
	for _, b := range s.Q.Suite() {
		r, err := s.RMT(b.Profile.Name, L2DA, 2.0)
		if err != nil {
			return Figure7Result{}, err
		}
		for i, f := range r.FreqFractions {
			// Weight each benchmark equally (the paper aggregates
			// interval counts across its suite).
			agg.Add(agg.BinCenter(i), f)
		}
	}
	return Figure7Result{
		Fractions: agg.Fractions(),
		MeanNorm:  agg.WeightedMeanValue(),
		ModeNorm:  agg.BinCenter(agg.ModeBin()),
	}, nil
}

// String renders the histogram with ASCII bars.
func (r Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Checker frequency residency (fraction of time)\n")
	for i, f := range r.Fractions {
		lo := float64(i) / float64(len(r.Fractions))
		hi := float64(i+1) / float64(len(r.Fractions))
		fmt.Fprintf(&b, "  %.1f-%.1ff | %-50s %5.1f%%\n", lo, hi, strings.Repeat("#", int(f*100+0.5)), f*100)
	}
	fmt.Fprintf(&b, "  mean %.2ff, mode %.2ff (paper: trailing core ≈0.45f average, histogram peak 0.6f)\n", r.MeanNorm, r.ModeNorm)
	return b.String()
}

// Figure8Row is one process node's normalized per-bit SER.
type Figure8Row struct {
	Node    tech.Node
	Neutron float64
	Alpha   float64
	Total   float64
	ChipSER float64
}

// Figure8Result is the SER scaling dataset.
type Figure8Result struct{ Rows []Figure8Row }

// Figure8 regenerates the SRAM SER scaling figure.
func Figure8() (Figure8Result, error) {
	var res Figure8Result
	for _, n := range []tech.Node{tech.Node180, tech.Node130, tech.Node90, tech.Node65} {
		s, err := tech.PerBitSER(n)
		if err != nil {
			return Figure8Result{}, err
		}
		chip, err := tech.ChipSER(n)
		if err != nil {
			return Figure8Result{}, err
		}
		res.Rows = append(res.Rows, Figure8Row{Node: n, Neutron: s.Neutron, Alpha: s.Alpha, Total: s.Total(), ChipSER: chip})
	}
	return res, nil
}

// String renders the SER table.
func (r Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: SRAM per-bit soft error rate (normalized to 180 nm total)\n")
	fmt.Fprintf(&b, "  %-7s %8s %8s %8s %10s\n", "node", "neutron", "alpha", "total", "chip SER")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-7s %8.3f %8.3f %8.3f %10.2f\n", row.Node, row.Neutron, row.Alpha, row.Total, row.ChipSER)
	}
	return b.String()
}

// Figure9Row is one (Qcrit, MBU probability) sample.
type Figure9Row struct {
	QcritFC float64
	Prob    float64
}

// Figure9Result is the MBU probability curve plus the per-node points.
type Figure9Result struct {
	Curve []Figure9Row
	Nodes map[tech.Node]float64
}

// Figure9 regenerates the MBU probability figure.
func Figure9() (Figure9Result, error) {
	res := Figure9Result{Nodes: map[tech.Node]float64{}}
	for q := 16.0; q >= 1.0; q -= 1.0 {
		res.Curve = append(res.Curve, Figure9Row{QcritFC: q, Prob: tech.DefaultMBUModel.Probability(q)})
	}
	for _, n := range []tech.Node{tech.Node90, tech.Node65, tech.Node45} {
		p, err := tech.NodeMBU(n)
		if err != nil {
			return Figure9Result{}, err
		}
		res.Nodes[n] = p
	}
	return res, nil
}

// String renders the MBU curve.
func (r Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Multi-bit upset probability vs critical charge\n")
	for _, row := range r.Curve {
		fmt.Fprintf(&b, "  %5.1f fC | %-50s %.4f\n", row.QcritFC,
			strings.Repeat("#", int(row.Prob*500+0.5)), row.Prob)
	}
	for _, n := range []tech.Node{tech.Node90, tech.Node65, tech.Node45} {
		fmt.Fprintf(&b, "  at %s Qcrit: P(MBU) = %.4f\n", n, r.Nodes[n])
	}
	return b.String()
}
