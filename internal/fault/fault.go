// Package fault implements the paper's fault models and a Monte Carlo
// injection campaign over the RMT system of package core:
//
//   - soft errors: particle strikes flipping register bits, at a rate
//     scaled by the process node's per-bit SER (Figure 8) and chip
//     density, with a multi-bit-upset fraction from the Figure 9 model;
//   - dynamic timing errors: per-cycle, per-stage failures whose
//     probability depends on the slack between the operating period and
//     the (process-dependent) critical path, using the Table 6
//     variability model; correlated bursts model the paper's observation
//     that timing errors often arrive together (§3.5).
//
// Error rates are accelerated by a configurable factor so that windows
// of a few hundred thousand instructions observe statistically useful
// counts — real per-cycle rates are ~1e-15; the relative comparisons
// (checker at 0.6·f vs 1.0·f, 65 nm vs 90 nm die) are rate-independent.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"r3d/internal/core"
	"r3d/internal/inorder"
	"r3d/internal/isa"
	"r3d/internal/tech"
)

// TimingInjector injects dynamic timing errors into the checker as a
// core.CheckerCycleHook: each checker cycle, each pipeline stage fails
// with the probability given by the node's timing model for the current
// period, and a failure corrupts the trailer register file (single-bit,
// or multi-bit for a burst).
type TimingInjector struct {
	Model tech.TimingModel
	// CritPathPs is the stage critical path at the checker's design
	// point (500 ps at 65 nm for a 2 GHz pipeline; 714 ps on the §4
	// 90 nm die).
	CritPathPs float64
	// Stages is the number of pipeline stages sampled per cycle.
	Stages int
	// BurstProb is the probability that an error is part of a
	// correlated burst and flips multiple bits (beyond ECC).
	BurstProb float64
	// Accel multiplies the error probability to make rare events
	// observable in short windows.
	Accel float64

	rng      *rand.Rand
	Injected uint64
	Bursts   uint64
}

// NewTimingInjector builds an injector with a deterministic seed.
func NewTimingInjector(node tech.Node, critPathPs float64, accel float64, seed int64) *TimingInjector {
	return &TimingInjector{
		Model:      tech.TimingModelFor(node),
		CritPathPs: critPathPs,
		Stages:     8,
		BurstProb:  0.3,
		Accel:      accel,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Hook implements core.CheckerCycleHook.
func (t *TimingInjector) Hook(periodPs float64, c *inorder.Checker) {
	p := t.Model.ErrorProbability(periodPs, t.CritPathPs) * t.Accel
	if p <= 0 {
		return
	}
	if p > 1 {
		p = 1
	}
	for s := 0; s < t.Stages; s++ {
		if t.rng.Float64() >= p {
			continue
		}
		t.Injected++
		reg := isa.Reg(t.rng.Intn(isa.NumRegs))
		bits := 1
		if t.rng.Float64() < t.BurstProb {
			bits = 2 + t.rng.Intn(2)
			t.Bursts++
		}
		c.CorruptRF(reg, bits)
	}
}

// ExpectedStageErrorProb returns the per-stage, per-cycle probability at
// the given operating period without acceleration — used to report the
// §3.5/§4 error-rate comparisons analytically.
func (t *TimingInjector) ExpectedStageErrorProb(periodPs float64) float64 {
	return t.Model.ErrorProbability(periodPs, t.CritPathPs)
}

// SoftErrorInjector injects particle-strike upsets into the leading
// core's results and the trailer register file at Poisson arrivals.
type SoftErrorInjector struct {
	// LeadPerMCycle and CheckerPerMCycle are arrival rates per million
	// leading-core cycles (already accelerated).
	LeadPerMCycle    float64
	CheckerPerMCycle float64
	// MBUProb is the probability that an upset flips multiple bits
	// (Figure 9 at the node's critical charge).
	MBUProb float64

	rng          *rand.Rand
	nextLead     uint64
	nextChecker  uint64
	LeadInjected uint64
	RFInjected   uint64
	MBUs         uint64
}

// NewSoftErrorInjector builds an injector for a node: the MBU share
// comes from the Figure 9 model at that node's critical charge.
func NewSoftErrorInjector(node tech.Node, leadPerM, checkerPerM float64, seed int64) (*SoftErrorInjector, error) {
	mbu, err := tech.NodeMBU(node)
	if err != nil {
		return nil, err
	}
	s := &SoftErrorInjector{
		LeadPerMCycle:    leadPerM,
		CheckerPerMCycle: checkerPerM,
		MBUProb:          mbu,
		rng:              rand.New(rand.NewSource(seed)),
	}
	s.nextLead = s.exp(leadPerM)
	s.nextChecker = s.exp(checkerPerM)
	return s, nil
}

func (s *SoftErrorInjector) exp(ratePerM float64) uint64 {
	if ratePerM <= 0 {
		return ^uint64(0)
	}
	return uint64(s.rng.ExpFloat64() * 1e6 / ratePerM)
}

// Tick advances one leading cycle, injecting due faults into sys.
func (s *SoftErrorInjector) Tick(sys *core.System) {
	if s.nextLead != ^uint64(0) {
		if s.nextLead == 0 {
			mask := uint64(1) << uint(s.rng.Intn(64))
			s.LeadInjected++
			sys.CorruptNextLeadResult(mask)
			s.nextLead = s.exp(s.LeadPerMCycle)
		} else {
			s.nextLead--
		}
	}
	if s.nextChecker != ^uint64(0) {
		if s.nextChecker == 0 {
			bits := 1
			if s.rng.Float64() < s.MBUProb {
				bits = 2 + s.rng.Intn(2)
				s.MBUs++
			}
			s.RFInjected++
			sys.CorruptCheckerRF(isa.Reg(s.rng.Intn(isa.NumRegs)), bits)
			s.nextChecker = s.exp(s.CheckerPerMCycle)
		} else {
			s.nextChecker--
		}
	}
}

// ErrCycleBudget is wrapped by RunCampaign when the hard cycle budget
// runs out before the instruction target: the simulated system stopped
// making forward progress (a wedge, a recovery storm, or simply a budget
// set too tight), and the caller can distinguish it from a config error
// with errors.Is.
var ErrCycleBudget = errors.New("fault: cycle budget exhausted before instruction target")

// DefaultCycleBudget returns a generous hard cycle cap for a campaign
// over n instructions: worst-case observed CPIs in the suite are below
// 10 even under heavy recovery storms, so 400 cycles per instruction
// plus a fixed floor only ever triggers on a genuinely wedged system.
func DefaultCycleBudget(n uint64) uint64 {
	const perInst, floor = 400, 1 << 20
	if n > (^uint64(0)-floor)/perInst {
		return ^uint64(0)
	}
	return n*perInst + floor
}

// CampaignConfig drives RunCampaign.
type CampaignConfig struct {
	Instructions uint64
	// CycleBudget is the hard cap on leading-core cycles. The run loop
	// terminates with ErrCycleBudget when it is reached, so a campaign
	// over a wedged system always returns. Required; see
	// DefaultCycleBudget for a safe default.
	CycleBudget uint64
	// Soft-error rates per million leading cycles (accelerated).
	LeadSoftPerMCycle    float64
	CheckerSoftPerMCycle float64
	// Timing-error injection (nil model disables): node, critical path
	// and acceleration.
	TimingNode   tech.Node
	CritPathPs   float64
	TimingAccel  float64
	EnableTiming bool

	// LivelockAfterCycles, when non-zero, wedges the checker die at the
	// given leading cycle (core.System.WedgeChecker) — a deliberate
	// harness self-test fault whose expected outcome is a watchdog trip,
	// not campaign completion.
	LivelockAfterCycles uint64

	Seed int64
}

// Validate reports malformed configurations.
func (c CampaignConfig) Validate() error {
	if c.Instructions == 0 {
		return fmt.Errorf("fault: zero-instruction campaign")
	}
	if c.CycleBudget == 0 {
		return fmt.Errorf("fault: zero cycle budget (see DefaultCycleBudget)")
	}
	if c.LeadSoftPerMCycle < 0 || c.CheckerSoftPerMCycle < 0 {
		return fmt.Errorf("fault: negative rate")
	}
	if math.IsNaN(c.LeadSoftPerMCycle) || math.IsNaN(c.CheckerSoftPerMCycle) {
		return fmt.Errorf("fault: NaN rate")
	}
	if c.EnableTiming {
		if c.CritPathPs <= 0 || math.IsNaN(c.CritPathPs) {
			return fmt.Errorf("fault: timing injection needs a critical path")
		}
		if c.TimingAccel < 0 || math.IsNaN(c.TimingAccel) {
			return fmt.Errorf("fault: negative or NaN timing acceleration")
		}
	}
	return nil
}

// CampaignResult summarizes an injection run.
type CampaignResult struct {
	Instructions    uint64
	Cycles          uint64
	LeadInjected    uint64
	RFInjected      uint64
	MBUs            uint64
	TimingInjected  uint64
	TimingBursts    uint64
	Detected        uint64
	Recovered       uint64
	Unrecovered     uint64
	MeanDetectSlack float64
}

// Coverage returns detected errors per injected leading-core error
// (checker-side upsets surface only when the corrupted register is
// read, so coverage is defined against leading-side injections).
func (r CampaignResult) Coverage() float64 {
	if r.LeadInjected == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.LeadInjected)
}

// Campaign is a stepwise injection run over one RMT system: the
// injectors are wired at construction and each Step advances one leading
// cycle. RunCampaign drives it to completion serially; the worker-pool
// harness in internal/campaign drives it under a forward-progress
// watchdog instead, interleaving progress checks between steps.
type Campaign struct {
	sys    *core.System
	cfg    CampaignConfig
	soft   *SoftErrorInjector
	timing *TimingInjector
	cycles uint64
}

// NewCampaign validates the config and wires the injectors onto sys.
func NewCampaign(sys *core.System, cfg CampaignConfig) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	soft, err := NewSoftErrorInjector(nodeOr65(cfg.TimingNode), cfg.LeadSoftPerMCycle, cfg.CheckerSoftPerMCycle, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Campaign{sys: sys, cfg: cfg, soft: soft}
	if cfg.EnableTiming {
		c.timing = NewTimingInjector(nodeOr65(cfg.TimingNode), cfg.CritPathPs, cfg.TimingAccel, cfg.Seed+1)
		sys.SetCheckerCycleHook(c.timing.Hook)
	}
	sys.Lead().SetFetchBudget(cfg.Instructions)
	return c, nil
}

// Step advances one leading cycle: due faults are injected, the system
// steps, and a configured livelock wedge is armed at its cycle.
func (c *Campaign) Step() {
	c.cycles++
	if c.cfg.LivelockAfterCycles > 0 && c.cycles == c.cfg.LivelockAfterCycles {
		c.sys.WedgeChecker()
	}
	c.soft.Tick(c.sys)
	c.sys.Step()
}

// Done reports whether the instruction target is reached (or the
// workload drained). A wedged system is never Done — terminating anyway
// is the watchdog's job.
func (c *Campaign) Done() bool {
	return c.sys.Lead().Stats().Instructions >= c.cfg.Instructions || c.sys.Lead().Drained()
}

// Cycles returns the leading cycles stepped so far.
func (c *Campaign) Cycles() uint64 { return c.cycles }

// BudgetExhausted reports whether the hard cycle budget is spent.
func (c *Campaign) BudgetExhausted() bool { return c.cycles >= c.cfg.CycleBudget }

// System returns the system under injection (for progress probes).
func (c *Campaign) System() *core.System { return c.sys }

// Result summarizes the run so far.
func (c *Campaign) Result() CampaignResult {
	st := c.sys.Stats()
	res := CampaignResult{
		Instructions: c.sys.Lead().Stats().Instructions,
		Cycles:       c.cycles,
		LeadInjected: c.soft.LeadInjected,
		RFInjected:   c.soft.RFInjected,
		MBUs:         c.soft.MBUs,
		Detected:     st.ErrorsDetected,
		Recovered:    st.ErrorsRecovered,
		Unrecovered:  st.ErrorsUnrecovered,
	}
	if c.timing != nil {
		res.TimingInjected = c.timing.Injected
		res.TimingBursts = c.timing.Bursts
	}
	if st.ErrorsDetected > 0 {
		res.MeanDetectSlack = float64(st.DetectionSlackSum) / float64(st.ErrorsDetected)
	}
	return res
}

// RunCampaign executes an injection campaign over a freshly-built RMT
// system. The caller supplies the system (workload, L2 organization and
// checker frequency cap are its business); the campaign wires injectors,
// runs, and reports. The run always terminates: when cfg.CycleBudget is
// reached first, the partial result is returned along with an error
// wrapping ErrCycleBudget.
func RunCampaign(sys *core.System, cfg CampaignConfig) (CampaignResult, error) {
	c, err := NewCampaign(sys, cfg)
	if err != nil {
		return CampaignResult{}, err
	}
	for !c.Done() {
		if c.BudgetExhausted() {
			return c.Result(), fmt.Errorf("%w: %d cycles spent, %d/%d instructions",
				ErrCycleBudget, c.cycles, sys.Lead().Stats().Instructions, cfg.Instructions)
		}
		c.Step()
	}
	return c.Result(), nil
}

func nodeOr65(n tech.Node) tech.Node {
	if n == 0 {
		return tech.Node65
	}
	return n
}
