package experiment

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"r3d/internal/nuca"
)

// renderAll prefetches the full registry manifest and renders every
// experiment, mirroring what r3dbench does.
func renderAll(tb testing.TB, s *Session, workers int) string {
	tb.Helper()
	reg := Registry()
	if err := s.Prefetch(ManifestUnion(s.Q, reg)); err != nil {
		tb.Fatalf("prefetch: %v", err)
	}
	var b strings.Builder
	for _, e := range reg {
		r, err := e.Run(s, workers)
		if err != nil {
			tb.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Fprintln(&b, r)
	}
	return b.String()
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestWorkerCountByteIdentity is the engine's hard invariant: the full
// fast-quality suite renders byte-identically on a -workers 1 session
// and a second, fresh -workers 8 session. (A warm re-render on one
// session is NOT byte-stable — thermal solvers intentionally warm-start
// from the previous converged field — so only fresh sessions compare.)
func TestWorkerCountByteIdentity(t *testing.T) {
	if raceEnabled {
		t.Skip("full fast render is too slow under the race detector; TestConcurrentSessionRace covers concurrency")
	}
	if testing.Short() {
		t.Skip("full fast render in -short mode")
	}
	q := Fast()
	s1 := NewParallelSession(q, 1, nil)
	serial := renderAll(t, s1, 1)
	s8 := NewParallelSession(q, 8, nil)
	par := renderAll(t, s8, 8)
	if serial != par {
		t.Fatalf("workers=1 and workers=8 output differ; first %s", firstDiffLine(serial, par))
	}
	// The schedule must also be identical work — same windows computed,
	// memoized and deduplicated — regardless of pool width. (Timings are
	// zero here: no clock is injected.)
	st1, st8 := s1.EngineStats(), s8.EngineStats()
	if st1 != st8 {
		t.Errorf("engine stats differ across worker counts: %+v vs %+v", st1, st8)
	}
	if st8.Errors != 0 || st8.Computed == 0 || st8.Hits == 0 {
		t.Errorf("implausible engine stats: %+v", st8)
	}
}

// TestConcurrentSessionRace hammers one session from many goroutines —
// overlapping prefetch batches, on-demand windows and thermal solves —
// with windows small enough to stay cheap under -race. It exists to run
// under the race detector (make race); without -race it is a fast
// smoke test of the same paths.
func TestConcurrentSessionRace(t *testing.T) {
	q := Fast()
	q.Benchmarks = []string{"gzip", "mesa"}
	q.WarmupInsts = 2_000
	q.MeasureInsts = 4_000
	q.ThermalTolC = 0.5
	q.ThermalMaxIters = 200
	s := NewParallelSession(q, 4, nil)

	keys := suiteLeadKeys(q, L2DA, nuca.DistributedSets, 0)
	keys = append(keys, suiteLeadKeys(q, L2D2A, nuca.DistributedSets, 0)...)
	keys = append(keys, suiteRMTKeys(q, L2DA, 2.0)...)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Prefetch(keys); err != nil {
				errc <- err
			}
		}()
	}
	for _, b := range q.Suite() {
		name := b.Profile.Name
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := s.Leading(name, L2DA, nuca.DistributedSets, 0); err != nil {
				errc <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.RMT(name, L2DA, 2.0); err != nil {
				errc <- err
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			act, rate, err := s.SuiteActivity(L2DA)
			if err != nil {
				errc <- err
				return
			}
			if _, err := s.SolveThermal(ThermalCase{Model: M3DChecker, Act: act, L2Rate: rate, CheckerW: 7}); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := s.EngineStats()
	if want := len(keys); st.Computed != want {
		t.Errorf("computed %d windows, want exactly %d (singleflight must dedup)", st.Computed, want)
	}
	if st.Hits+st.Joins == 0 {
		t.Error("concurrent requests produced no hits or joins")
	}
}
