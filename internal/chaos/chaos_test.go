package chaos

import (
	"fmt"
	"testing"
	"time"
)

// sleeper is the wallclock hook tests wire in (test files are exempt
// from the model-code no-wallclock rule).
func sleeper(ns int64) { time.Sleep(time.Duration(ns)) }

// TestCampaignCrashResume sweeps a few seeds through the full
// run→kill→resume cycle and requires at least one genuine kill per
// seed: a chaos harness whose crashes never fire tests nothing.
func TestCampaignCrashResume(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := CampaignCrashResume(Options{Seed: seed, Sleep: sleeper})
			if err != nil {
				t.Fatalf("seed %d: %v\nfaults:\n  %v\nnotes:\n  %v", seed, err, res.FaultLog, res.Notes)
			}
			if res.Cycles < 2 {
				t.Fatalf("seed %d completed in %d cycle(s): the crash cliff never fired", seed, res.Cycles)
			}
			if len(res.Aggregate) == 0 {
				t.Fatalf("seed %d returned no aggregate", seed)
			}
		})
	}
}

func TestServeKillRestore(t *testing.T) {
	t.Parallel()
	res, err := ServeKillRestore(Options{Seed: 7, Sleep: sleeper})
	if err != nil {
		t.Fatalf("%v\nfaults:\n  %v", err, res.FaultLog)
	}
	if len(res.Aggregate) == 0 {
		t.Fatal("no job results collected")
	}
}

func TestDegradedServing(t *testing.T) {
	t.Parallel()
	res, err := DegradedServing(Options{Seed: 11, Sleep: sleeper})
	if err != nil {
		t.Fatalf("%v\nfaults:\n  %v", err, res.FaultLog)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("dead-device scenario injected no faults")
	}
}

// TestSameSeedByteIdentical is the determinism regression: the same
// chaos seed must reproduce the same fault log and the same final
// aggregate byte-for-byte. A diff here means an injection draw or an
// operation-order dependence crept into the harness — exactly the
// regression that turns chaos findings into unreproducible flakes.
func TestSameSeedByteIdentical(t *testing.T) {
	t.Parallel()
	res, err := CampaignDeterminism(Options{Seed: 5, Sleep: sleeper})
	if err != nil {
		t.Fatalf("%v\nfaults:\n  %v", err, res.FaultLog)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("determinism check ran with no injected faults; the schedule is too tame to prove anything")
	}
}
