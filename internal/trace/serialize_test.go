package trace

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	b, _ := ByName("gzip")
	var buf bytes.Buffer
	const n = 20000
	if err := WriteTrace(&buf, MustGenerator(b.Profile, 7), n); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Name() != "gzip" || rd.Count() != n {
		t.Fatalf("header mismatch: %q %d", rd.Name(), rd.Count())
	}
	fresh := MustGenerator(b.Profile, 7)
	for i := 0; i < n; i++ {
		got := rd.Next()
		want := fresh.Next()
		if got != want {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestTraceHeaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01\x00\x00\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupt the version of a valid capture.
	b, _ := ByName("gzip")
	var buf bytes.Buffer
	WriteTrace(&buf, MustGenerator(b.Profile, 1), 1)
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestTraceReplayPastEndPanics(t *testing.T) {
	b, _ := ByName("gzip")
	var buf bytes.Buffer
	WriteTrace(&buf, MustGenerator(b.Profile, 2), 3)
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rd.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past end of capture")
		}
	}()
	rd.Next()
}

func TestTraceTruncatedStreamPanics(t *testing.T) {
	b, _ := ByName("gzip")
	var buf bytes.Buffer
	WriteTrace(&buf, MustGenerator(b.Profile, 3), 5)
	raw := buf.Bytes()[:buf.Len()-10]
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncated capture")
		}
	}()
	for i := 0; i < 5; i++ {
		rd.Next()
	}
}

func TestTraceDrivesSimulator(t *testing.T) {
	// A replayed capture must drive the core to the identical result as
	// the live generator (the archival use case).
	b, _ := ByName("twolf")
	var buf bytes.Buffer
	const n = 30000
	if err := WriteTrace(&buf, MustGenerator(b.Profile, 11), n); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_ = rd // driving the core lives in ooo tests; here we check stream identity
	live := MustGenerator(b.Profile, 11)
	for i := 0; i < n; i++ {
		if rd.Next() != live.Next() {
			t.Fatalf("divergence at %d", i)
		}
	}
}
