// Command r3dsim runs a single simulation configuration and prints
// detailed statistics — the workhorse for exploring the design space
// outside the canned experiments of r3dbench.
//
// Examples:
//
//	r3dsim -bench mcf -l2 2d-2a -n 500000
//	r3dsim -bench gzip -rmt -maxghz 1.4 -n 300000
//	r3dsim -bench swim -rmt -inject -leadrate 50 -n 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"r3d"
)

func main() {
	bench := flag.String("bench", "gzip", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	l2 := flag.String("l2", "2d-a", "L2 organization: 2d-a, 2d-2a, 3d-2a")
	n := flag.Uint64("n", 300_000, "instructions to simulate")
	seed := flag.Int64("seed", 42, "workload generation seed")
	rmt := flag.Bool("rmt", false, "attach the in-order checker (reliable processor)")
	maxGHz := flag.Float64("maxghz", 2.0, "checker frequency cap (1.4 for the 90nm die)")
	inject := flag.Bool("inject", false, "run a soft-error injection campaign (implies -rmt)")
	leadRate := flag.Float64("leadrate", 50, "leading-core upsets per M cycles (with -inject)")
	rfRate := flag.Float64("rfrate", 50, "trailer-RF upsets per M cycles (with -inject)")
	node := flag.Int("node", 65, "technology node for injection MBU rates")
	flag.Parse()

	if *list {
		for _, name := range r3d.Benchmarks() {
			fmt.Println(name)
		}
		return
	}

	rep := &report{w: tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)}

	switch {
	case *inject:
		r, err := r3d.RunInjection(*bench, *n, *node, *leadRate, *rfRate, *seed)
		if err != nil {
			log.Fatal(err)
		}
		printReliable(rep, r.ReliableResult)
		rep.row("lead upsets injected\t%d\n", r.LeadInjected)
		rep.row("trailer RF upsets\t%d (MBUs %d)\n", r.RFInjected, r.MultiBitUpsets)
		rep.row("coverage\t%.2f\n", r.Coverage)
		if r.Status == "hung" {
			rep.row("campaign status\t%s (watchdog: %s; statistics are the partial window)\n", r.Status, r.WatchdogReason)
		} else {
			rep.row("campaign status\t%s\n", r.Status)
		}
	case *rmt:
		r, err := r3d.RunReliable(*bench, r3d.L2Org(*l2), *n, *maxGHz, *seed)
		if err != nil {
			log.Fatal(err)
		}
		printReliable(rep, r)
	default:
		r, err := r3d.RunBenchmark(*bench, r3d.L2Org(*l2), *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		printLead(rep, r)
	}
	if err := rep.flush(); err != nil {
		log.Fatal(err)
	}
}

// report accumulates tabulated rows; the first write error sticks and
// is surfaced once at flush.
type report struct {
	w   *tabwriter.Writer
	err error
}

func (r *report) row(format string, args ...any) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

func (r *report) flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

func printLead(rep *report, r r3d.Result) {
	rep.row("benchmark\t%s\n", r.Benchmark)
	rep.row("instructions\t%d\n", r.Instructions)
	rep.row("cycles\t%d\n", r.Cycles)
	rep.row("IPC\t%.3f\n", r.IPC)
	rep.row("L2 misses / 10k instr\t%.2f\n", r.L2MissesPer10k)
	rep.row("mean L2 hit latency\t%.1f cycles\n", r.L2HitLatency)
	rep.row("branch mispredict rate\t%.2f%%\n", r.MispredictRate*100)
}

func printReliable(rep *report, r r3d.ReliableResult) {
	printLead(rep, r.Result)
	rep.row("checker IPC\t%.2f\n", r.CheckerIPC)
	rep.row("mean checker frequency\t%.2f GHz\n", r.MeanCheckerFreqGHz)
	rep.row("instructions checked\t%d\n", r.Checked)
	rep.row("leading stall cycles\t%d\n", r.LeadStallCycles)
	rep.row("errors detected/recovered/unrecovered\t%d/%d/%d\n",
		r.ErrorsDetected, r.ErrorsRecovered, r.ErrorsUnrecovered)
}
