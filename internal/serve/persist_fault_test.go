package serve

import (
	"testing"
	"time"

	"r3d/internal/backoff"
	"r3d/internal/iofault"
)

// degradedOptions builds a persisting server over fsys with a fail-fast
// retry policy (tests never sleep).
func degradedOptions(fsys iofault.FS, logf func(string, ...any)) Options {
	return Options{
		Tiers:        []Tier{{Name: "fast", Quality: tinyQuality()}},
		StatePath:    "/state",
		FS:           fsys,
		PersistRetry: backoff.Policy{Attempts: 2},
		Logf:         logf,
	}
}

func submitTinyCampaign(t *testing.T, s *Server, seed int64) *Job {
	t.Helper()
	res, serr := s.Submit(Submission{Kind: KindCampaign, Grid: tinyGrid(seed)}, "client")
	if serr != nil {
		t.Fatalf("submit: %v", serr)
	}
	j, ok := s.JobByID(res.Job.ID)
	if !ok {
		t.Fatalf("job %s missing", res.Job.ID)
	}
	return j
}

func waitJobDone(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never finished", j.ID)
	}
	return j.Status()
}

// waitPersistDegraded polls until the persister (an async goroutine)
// reports the given degraded state.
func waitPersist(t *testing.T, s *Server, degraded bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s.PersistenceDegraded() == degraded {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("persistence degraded state never became %v", degraded)
}

// TestPersistenceDegradesAndReArms is the failure-degraded serving
// contract: a dead device exhausts the persister's retries, health
// flips to degraded while compute keeps working, and healing the device
// re-arms persistence on the next successful checkpoint.
func TestPersistenceDegradesAndReArms(t *testing.T) {
	mem := iofault.NewMemFS()
	ffs := iofault.NewFaultFS(mem, iofault.Schedule{Seed: 1, FailWritesFrom: 1}, nil)
	s, err := New(degradedOptions(ffs, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Job 1 completes; its persist exhausts retries against the dead
	// device and degrades.
	j1 := waitJobDone(t, submitTinyCampaign(t, s, 1))
	if j1.State != StateDone {
		t.Fatalf("job 1 state %s, want done", j1.State)
	}
	waitPersist(t, s, true)
	h := s.HealthSnapshot()
	if h.Status != "degraded" || h.Persistence != "degraded" {
		t.Fatalf("health = %s/%s, want degraded/degraded", h.Status, h.Persistence)
	}

	// Compute continues while degraded: a second job still runs to done.
	j2 := waitJobDone(t, submitTinyCampaign(t, s, 2))
	if j2.State != StateDone {
		t.Fatalf("job 2 state %s while degraded, want done", j2.State)
	}

	// Heal the device; the next poke's probe lands a checkpoint and
	// re-arms persistence.
	ffs.Heal()
	j3 := waitJobDone(t, submitTinyCampaign(t, s, 3))
	if j3.State != StateDone {
		t.Fatalf("job 3 state %s, want done", j3.State)
	}
	waitPersist(t, s, false)
	h = s.HealthSnapshot()
	if h.Status != "ok" || h.Persistence != "ok" {
		t.Fatalf("health after heal = %s/%s, want ok/ok", h.Status, h.Persistence)
	}

	s.Drain()

	// The healed state restores: job results survive byte-identically.
	if _, ok := mem.Durable("/state/jobs.ckpt"); !ok {
		t.Fatal("job store never became durable after heal")
	}
	s2, err := New(Options{
		Tiers:     []Tier{{Name: "fast", Quality: tinyQuality()}},
		StatePath: "/state",
		FS:        mem,
		Restore:   true,
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer s2.Drain()
	for _, want := range []JobStatus{j1, j2, j3} {
		j, ok := s2.JobByID(want.ID)
		if !ok {
			t.Fatalf("restored server lost job %s", want.ID)
		}
		st := j.Status()
		if st.State != StateDone || !st.Restored {
			t.Fatalf("restored job %s: state %s restored=%v", want.ID, st.State, st.Restored)
		}
	}
}

// TestTransientPersistFaultsAbsorbedByRetry: a flaky (but not dead)
// device never degrades health — the retry budget absorbs it.
func TestTransientPersistFaultsAbsorbedByRetry(t *testing.T) {
	mem := iofault.NewMemFS()
	// 20% write faults, absorbed by 8 attempts (the whole persistAll
	// re-runs per attempt, so per-attempt success odds are decent for
	// the handful of writes a tiny store makes).
	ffs := iofault.NewFaultFS(mem, iofault.Schedule{Seed: 7, WriteErr: 0.1}, nil)
	opts := degradedOptions(ffs, nil)
	opts.PersistRetry = backoff.Policy{Attempts: 12}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	j := waitJobDone(t, submitTinyCampaign(t, s, 9))
	if j.State != StateDone {
		t.Fatalf("job state %s, want done", j.State)
	}
	waitPersist(t, s, false)
	if h := s.HealthSnapshot(); h.Persistence != "ok" {
		t.Fatalf("persistence = %s under transient faults, want ok", h.Persistence)
	}
	s.Drain()
}
