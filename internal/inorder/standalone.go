package inorder

import (
	"r3d/internal/bpred"
	"r3d/internal/cache"
	"r3d/internal/isa"
	"r3d/internal/nuca"
)

// Standalone runs the checker core as a *leading* core — the degraded
// mode of the paper's footnote 1: "a hard error in the leading core can
// also be tolerated, although at a performance penalty", because the
// checker is a full-fledged core. Without the leading core there is no
// RVQ/LVQ/BOQ: the in-order pipeline must use its own branch predictor
// and data cache and stall on real data dependences — which is exactly
// where the performance penalty comes from.
type Standalone struct {
	cfg  Config
	src  interface{ Next() isa.Inst }
	pred *bpred.Predictor
	btb  *bpred.BTB
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *nuca.Cache

	cycle uint64
	insts uint64
	// regReady holds the cycle at which each register's value is
	// available.
	regReady [isa.NumRegs]uint64
	// stallUntil blocks issue (mispredict redirect, I-miss).
	stallUntil uint64

	memLatency int

	buf    isa.Inst
	peeked bool

	stats StandaloneStats
}

// StandaloneStats summarizes a degraded-mode run.
type StandaloneStats struct {
	Cycles       uint64
	Instructions uint64
	L1DMisses    uint64
	L2Misses     uint64
	Mispredicts  uint64
}

// IPC returns instructions per cycle.
func (s StandaloneStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// NewStandalone builds a degraded-mode core over an instruction source
// and an L2; memLatency is the memory trip in cycles at the operating
// frequency.
func NewStandalone(cfg Config, src interface{ Next() isa.Inst }, l2 *nuca.Cache, memLatency int) (*Standalone, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Standalone{
		cfg:        cfg,
		src:        src,
		pred:       bpred.New(),
		btb:        bpred.NewBTB(),
		l1i:        cache.New(cache.L1I),
		l1d:        cache.New(cache.L1D),
		l2:         l2,
		memLatency: memLatency,
	}, nil
}

// Stats returns the counters so far.
func (s *Standalone) Stats() StandaloneStats { return s.stats }

// Run executes n instructions and returns the statistics. The model is
// an in-order issue pipeline: each cycle issues consecutive instructions
// until the width is exhausted, an operand is not yet ready (RAW stall —
// no RVP here), a functional unit is busy, or a taken branch ends the
// fetch group; mispredicted branches stall the front end for the
// redirect latency.
func (s *Standalone) Run(n uint64) StandaloneStats {
	var pendingStall uint64
	var lastBlock uint64 = ^uint64(0)
	for s.insts < n {
		s.cycle++
		s.stats.Cycles++
		if s.cycle < s.stallUntil {
			continue
		}
		if pendingStall > 0 {
			s.stallUntil = s.cycle + pendingStall
			pendingStall = 0
			continue
		}
		alu, mul, fpa, fpm := s.cfg.IntALU, s.cfg.IntMult, s.cfg.FPALU, s.cfg.FPMult
		for issued := 0; issued < s.cfg.Width && s.insts < n; issued++ {
			in := s.peek()
			// RAW hazard: in-order issue waits for operands.
			ready := s.regReady[in.Src1]
			if r2 := s.regReady[in.Src2]; r2 > ready {
				ready = r2
			}
			if ready > s.cycle {
				// Stall until the operand arrives (next cycles).
				break
			}
			// Structural hazards.
			switch in.Op {
			case isa.IntALU, isa.BranchCond, isa.BranchUncond:
				if alu == 0 {
					issued = s.cfg.Width
					continue
				}
				alu--
			case isa.IntMult:
				if mul == 0 {
					issued = s.cfg.Width
					continue
				}
				mul--
			case isa.FPALU:
				if fpa == 0 {
					issued = s.cfg.Width
					continue
				}
				fpa--
			case isa.FPMult:
				if fpm == 0 {
					issued = s.cfg.Width
					continue
				}
				fpm--
			case isa.Load, isa.Store:
				if alu == 0 { // AGU shares the ALU pool
					issued = s.cfg.Width
					continue
				}
				alu--
			}
			s.consume()

			// Instruction cache, per fetch block.
			block := in.PC &^ 63
			if block != lastBlock {
				lastBlock = block
				if hit, _ := s.l1i.Access(in.PC, false); !hit {
					lat, miss := s.l2.Access(block, false)
					extra := uint64(lat)
					if miss {
						extra += uint64(s.memLatency)
					}
					pendingStall += extra
				}
			}

			lat := uint64(in.Op.Latency())
			if in.Op == isa.Load {
				hit, _ := s.l1d.Access(in.Addr, false)
				if hit {
					lat += uint64(cache.L1D.LatencyCycles)
				} else {
					s.stats.L1DMisses++
					l2lat, miss := s.l2.Access(in.Addr, false)
					lat += uint64(cache.L1D.LatencyCycles + l2lat)
					if miss {
						s.stats.L2Misses++
						lat += uint64(s.memLatency)
					}
				}
			}
			if in.Op == isa.Store {
				if hit, _ := s.l1d.Access(in.Addr, true); !hit {
					s.stats.L1DMisses++
					if _, miss := s.l2.Access(in.Addr, true); miss {
						s.stats.L2Misses++
					}
				}
			}
			if in.Op == isa.BranchCond {
				predTaken := s.pred.Lookup(in.PC)
				tgt, btbHit := s.btb.Lookup(in.PC)
				effTaken := predTaken && btbHit
				mispred := effTaken != in.Taken || (effTaken && tgt != in.Target)
				s.pred.Update(in.PC, predTaken, in.Taken)
				if in.Taken {
					s.btb.Update(in.PC, in.Target)
				}
				if mispred {
					s.stats.Mispredicts++
					pendingStall += uint64(bpred.MispredictLatency)
					issued = s.cfg.Width // end the group
				} else if in.Taken {
					issued = s.cfg.Width // one taken branch per cycle
				}
			}
			if in.HasDest() {
				s.regReady[in.Dest] = s.cycle + lat
			}
			s.insts++
			s.stats.Instructions++
		}
	}
	return s.stats
}

// peek/consume implement one-instruction lookahead over the source.
func (s *Standalone) peek() isa.Inst {
	if !s.peeked {
		s.buf = s.src.Next()
		s.peeked = true
	}
	return s.buf
}

func (s *Standalone) consume() { s.peeked = false }
