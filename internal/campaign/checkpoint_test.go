package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"r3d/internal/ckpt"
	"r3d/internal/core"
)

// runBaseline computes the uninterrupted aggregate the recovery tests
// compare against.
func runBaseline(t *testing.T, specs []TrialSpec) []byte {
	t.Helper()
	rep, err := Run(Config{Workers: 2, Watchdog: fastWatchdog}, specs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	enc, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestCheckpointRestoreSkipsJournalPrefix(t *testing.T) {
	specs := testSpecs(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	snap := filepath.Join(dir, "campaign.ckpt")
	want := runBaseline(t, specs)

	cfg := Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal, CheckpointPath: snap, CheckpointEvery: 3}
	if _, err := Run(cfg, specs); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Restore over the complete journal+checkpoint: zero trials re-run,
	// byte-identical aggregate.
	var builds atomic.Int64
	counting := func(spec TrialSpec) (*core.System, error) {
		builds.Add(1)
		return BuildSystem(spec)
	}
	cfg.Restore = true
	cfg.Builder = counting
	rep, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 {
		t.Errorf("restore from a complete state still rebuilt %d systems", builds.Load())
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Errorf("restored aggregate differs from uninterrupted run:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestChecksumMismatchMidJournalReRunsSuffix(t *testing.T) {
	specs := testSpecs(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	want := runBaseline(t, specs)

	if _, err := Run(Config{Workers: 1, Watchdog: fastWatchdog, JournalPath: journal}, specs); err != nil {
		t.Fatal(err)
	}

	// Flip payload bytes inside a mid-journal record without updating
	// its CRC: the checksum must catch it, discard it and the records
	// after it, and re-run those trials.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 6 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	if !strings.Contains(lines[3], `"LeadInjected"`) {
		t.Fatalf("journal record has unexpected shape: %s", lines[3])
	}
	lines[3] = strings.Replace(lines[3], `"LeadInjected"`, `"LeadImjected"`, 1)
	if err := os.WriteFile(journal, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal, Resume: true}, specs)
	if err != nil {
		t.Fatalf("a checksum-failing record must be recovered from, not fatal: %v", err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Errorf("aggregate after mid-journal corruption differs:\n%s\n--- vs ---\n%s", got, want)
	}
	found := false
	for _, note := range rep.Notes {
		if strings.Contains(note, "checksum-failing record") {
			found = true
		}
	}
	if !found {
		t.Errorf("corruption recovery must be reported in notes: %q", rep.Notes)
	}
}

func TestTruncatedCheckpointHeaderRecovers(t *testing.T) {
	specs := testSpecs(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	snap := filepath.Join(dir, "campaign.ckpt")
	want := runBaseline(t, specs)

	cfg := Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal, CheckpointPath: snap, CheckpointEvery: 2}
	if _, err := Run(cfg, specs); err != nil {
		t.Fatal(err)
	}

	// Truncate the checkpoint mid-header (a torn final commit). Restore
	// must detect it, fall back (previous generation or journal), and
	// still converge to the uninterrupted aggregate.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, data[:20], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Restore = true
	rep, err := Run(cfg, specs)
	if err != nil {
		t.Fatalf("truncated checkpoint must be recovered from, not fatal: %v", err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Errorf("aggregate after checkpoint truncation differs:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestCheckpointFingerprintMismatchIsLoud(t *testing.T) {
	specs := testSpecs(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "campaign.ckpt")

	if _, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, CheckpointPath: snap}, specs[:4]); err != nil {
		t.Fatal(err)
	}
	// Same checkpoint path, different grid: the fingerprint must reject
	// it loudly instead of silently merging foreign outcomes.
	_, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, CheckpointPath: snap, Restore: true}, specs)
	if err == nil {
		t.Fatal("restore accepted a checkpoint written for a different grid")
	}
	var mm *ckpt.MismatchError
	if !errors.As(err, &mm) {
		t.Errorf("grid mismatch surfaced as %v, want *ckpt.MismatchError", err)
	}
}

func TestJournalShorterThanCheckpointFallsBackToFullReplay(t *testing.T) {
	// The kill window between a snapshot commit and the journal flush it
	// recorded: on restore the journal is shorter than the snapshot's
	// offset. The snapshot still vouches for its own outcomes; the
	// journal replays from the top (overwriting identically); nothing is
	// lost and nothing fatal happens.
	specs := testSpecs(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	snap := filepath.Join(dir, "campaign.ckpt")
	want := runBaseline(t, specs)

	cfg := Config{Workers: 1, Watchdog: fastWatchdog, JournalPath: journal, CheckpointPath: snap, CheckpointEvery: len(specs)}
	if _, err := Run(cfg, specs); err != nil {
		t.Fatal(err)
	}
	// The final snapshot covers the whole journal; chop the journal back
	// so its length is far below the snapshot's recorded offset.
	chopJournal(t, journal, 2)

	cfg.Restore = true
	rep, err := Run(cfg, specs)
	if err != nil {
		t.Fatalf("journal-shorter-than-snapshot must be recovered from: %v", err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Errorf("aggregate differs after lost-flush recovery:\n%s\n--- vs ---\n%s", got, want)
	}
	found := false
	for _, note := range rep.Notes {
		if strings.Contains(note, "shorter than the checkpoint recorded") {
			found = true
		}
	}
	if !found {
		t.Errorf("lost-flush fallback must be reported in notes: %q", rep.Notes)
	}
}

func TestGracefulDrainThenRestoreIsByteIdentical(t *testing.T) {
	specs := testSpecs(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	snap := filepath.Join(dir, "campaign.ckpt")
	want := runBaseline(t, specs)

	stop := make(chan struct{})
	close(stop) // drain immediately: at most the in-flight trials finish
	cfg := Config{Workers: 1, Watchdog: fastWatchdog, JournalPath: journal, CheckpointPath: snap, Stop: stop}
	partial, err := Run(cfg, specs)
	if err != nil {
		t.Fatalf("graceful drain is not an error: %v", err)
	}
	if !partial.Interrupted {
		t.Error("drained run must report Interrupted")
	}
	if len(partial.Trials) >= len(specs) {
		t.Fatalf("drain finished all %d trials; nothing left to test restore with", len(specs))
	}

	cfg.Stop = nil
	cfg.Restore = true
	resumed, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Error("completed restore must not report Interrupted")
	}
	if got := reportJSON(t, resumed); !bytes.Equal(want, got) {
		t.Errorf("drain+restore aggregate differs from uninterrupted run:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestShadowVerificationDetectsTamperedOutcome(t *testing.T) {
	specs := testSpecs(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")

	if _, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal}, specs); err != nil {
		t.Fatal(err)
	}

	// Tamper with one journaled outcome and re-seal its CRC: the
	// checksum passes (the file is self-consistent), so only a shadow
	// re-execution can expose that the stored result is wrong.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	var tamperedID string
	for i := 1; i < len(lines) && tamperedID == ""; i++ {
		var rec journalRecord
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatal(err)
		}
		var out TrialOutcome
		if err := json.Unmarshal(rec.Outcome, &out); err != nil {
			t.Fatal(err)
		}
		if out.Status != StatusOK || out.Result == nil {
			continue
		}
		out.Result.Detected += 7 // a silently-wrong stored statistic
		payload, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := json.Marshal(journalRecord{CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)), Outcome: payload})
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(enc) + "\n"
		tamperedID = out.ID
	}
	if tamperedID == "" {
		t.Fatal("no ok trial found to tamper with")
	}
	if err := os.WriteFile(journal, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal, Resume: true, ShadowFraction: 1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShadowChecked == 0 {
		t.Fatal("ShadowFraction=1 ran no shadow checks")
	}
	if len(rep.ShadowDivergences) != 1 {
		t.Fatalf("divergences = %d, want exactly the tampered trial: %+v", len(rep.ShadowDivergences), rep.ShadowDivergences)
	}
	d := rep.ShadowDivergences[0]
	if d.ID != tamperedID {
		t.Errorf("divergence on %q, want %q", d.ID, tamperedID)
	}
	if !strings.Contains(d.Stored, `"Detected"`) || d.Stored == d.Recomputed {
		t.Errorf("divergence must carry differing canonical encodings:\nstored:     %s\nrecomputed: %s", d.Stored, d.Recomputed)
	}
	// Detection, not repair: the stored value still feeds the aggregate.
	if findTrial(t, rep, tamperedID).Result.Detected == 0 {
		t.Error("tampered outcome vanished from the aggregate")
	}
}

func TestShadowVerificationCleanRestoreHasNoDivergences(t *testing.T) {
	specs := testSpecs(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	if _, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal}, specs); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Workers: 2, Watchdog: fastWatchdog, JournalPath: journal, Resume: true, ShadowFraction: 1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-wall-clock trial is checked; a deterministic simulator
	// reproduces each outcome exactly.
	if rep.ShadowChecked == 0 {
		t.Error("ShadowFraction=1 ran no shadow checks")
	}
	if len(rep.ShadowDivergences) != 0 {
		t.Errorf("clean restore diverged: %+v", rep.ShadowDivergences)
	}
	// A clean report's JSON must not mention shadow state at all (field
	// compatibility with pre-checkpoint builds).
	enc := reportJSON(t, rep)
	if bytes.Contains(enc, []byte("shadow")) || bytes.Contains(enc, []byte("interrupted")) {
		t.Errorf("clean report JSON leaks shadow/interrupt fields:\n%s", enc)
	}
}
