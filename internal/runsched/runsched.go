// Package runsched is a deterministic, concurrency-safe run engine:
// a memo cache over a pure compute function, with per-key singleflight
// (duplicate requests join the in-flight computation instead of
// recomputing) and batch execution across a bounded worker pool.
//
// It exists so the experiment layer can regenerate the paper's whole
// evaluation in parallel without giving up a byte of reproducibility.
// The contract that makes that possible:
//
//   - compute must be a pure function of the key: same key, same value,
//     on every run, at any worker count (the simulator's per-seed
//     determinism, protected by the r3dlint suite, provides this);
//   - results and errors are memoized forever — a key is computed at
//     most once per engine, no matter how many callers race on it;
//   - batch results are committed in canonical key order, never in
//     completion order, mirroring internal/campaign's ID-ordered
//     aggregation, so everything observable from the engine is
//     independent of scheduling;
//   - the engine itself never reads the wall clock (model code must
//     not); drivers inject a clock for the observability counters, and
//     with no clock injected all timings are zero.
//
// compute must not call back into its own engine: a recursive Get from
// inside compute can join the very call that issued it and deadlock.
package runsched

import (
	"fmt"
	"slices"
	"sync"
)

// Stats are the engine's observability counters. All fields are sums or
// counts, so they are identical for any worker count; only the injected
// clock's readings vary between hosts.
type Stats struct {
	// Computed counts keys evaluated by the compute function.
	Computed int `json:"computed"`
	// Hits counts requests served from the memo cache.
	Hits int `json:"cache_hits"`
	// Joins counts requests that joined an in-flight computation
	// instead of starting their own (the singleflight saves).
	Joins int `json:"singleflight_joins"`
	// Errors counts computed keys whose compute returned an error
	// (errors are memoized like values).
	Errors int `json:"errors"`
	// BatchRequested / BatchDeduped count keys handed to Prefetch and
	// the duplicates it removed before dispatch.
	BatchRequested int `json:"batch_requested"`
	BatchDeduped   int `json:"batch_deduped"`
	// ComputeNanos is the summed wall-clock time inside compute, as
	// measured by the injected clock (0 without one). With parallel
	// workers it exceeds elapsed time — it is total work, not latency.
	ComputeNanos int64 `json:"compute_nanos"`
}

// Record is the per-run observability entry for one computed key.
type Record[K comparable] struct {
	Key   K
	Nanos int64 // compute wall time by the injected clock (0 without one)
	Err   bool  // compute returned an error
}

// Options configures an Engine.
type Options[K comparable] struct {
	// Workers bounds the batch worker pool (≤0 selects 1). Get always
	// computes on the calling goroutine.
	Workers int
	// Compare orders keys canonically; it is required and must be a
	// total order. Batches are dispatched and committed in this order,
	// and Records reports in it.
	Compare func(a, b K) int
	// Clock returns a monotonic nanosecond reading for the timing
	// counters. nil disables timing (all durations zero): the engine is
	// model code and must not read the host clock itself.
	Clock func() int64
}

// result is a committed memo entry.
type result[V any] struct {
	val V
	err error
}

// call is one in-flight computation; joiners wait on done.
type call[V any] struct {
	done  chan struct{}
	val   V
	err   error
	nanos int64
}

// Engine memoizes a pure compute function with singleflight and batch
// scheduling. The zero value is not usable; construct with New.
type Engine[K comparable, V any] struct {
	compute func(K) (V, error)
	opts    Options[K]

	mu       sync.Mutex
	results  map[K]result[V]
	inflight map[K]*call[V]
	stats    Stats
	records  []Record[K]
}

// New creates an engine over the given pure compute function.
// Options.Compare must be non-nil.
func New[K comparable, V any](compute func(K) (V, error), opts Options[K]) *Engine[K, V] {
	if compute == nil {
		panic("runsched: nil compute function")
	}
	if opts.Compare == nil {
		panic("runsched: Options.Compare is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	return &Engine[K, V]{
		compute:  compute,
		opts:     opts,
		results:  map[K]result[V]{},
		inflight: map[K]*call[V]{},
	}
}

// Workers returns the configured batch pool width.
func (e *Engine[K, V]) Workers() int { return e.opts.Workers }

// now reads the injected clock (0 without one).
func (e *Engine[K, V]) now() int64 {
	if e.opts.Clock == nil {
		return 0
	}
	return e.opts.Clock()
}

// Get returns the memoized value for k, computing it on the calling
// goroutine if no other caller already is. Concurrent Gets of the same
// key perform exactly one computation; the rest join it.
func (e *Engine[K, V]) Get(k K) (V, error) {
	e.mu.Lock()
	if r, ok := e.results[k]; ok {
		e.stats.Hits++
		e.mu.Unlock()
		return r.val, r.err
	}
	if c, ok := e.inflight[k]; ok {
		e.stats.Joins++
		e.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	e.inflight[k] = c
	e.mu.Unlock()

	e.run(k, c)

	e.mu.Lock()
	e.commit(k, c)
	e.mu.Unlock()
	return c.val, c.err
}

// run evaluates compute for k into c and releases joiners. The memo
// commit happens separately so batches can commit in key order.
func (e *Engine[K, V]) run(k K, c *call[V]) {
	start := e.now()
	c.val, c.err = e.compute(k)
	c.nanos = e.now() - start
	close(c.done)
}

// commit moves a finished call into the memo under e.mu. Joiners that
// arrive between close(done) and commit still find the inflight entry
// and return immediately from the closed channel.
func (e *Engine[K, V]) commit(k K, c *call[V]) {
	delete(e.inflight, k)
	e.results[k] = result[V]{val: c.val, err: c.err}
	e.stats.Computed++
	e.stats.ComputeNanos += c.nanos
	if c.err != nil {
		e.stats.Errors++
	}
	e.records = append(e.records, Record[K]{Key: k, Nanos: c.nanos, Err: c.err != nil})
}

// Prefetch computes every key in keys across the worker pool. Keys are
// deduplicated and sorted canonically before dispatch, and results are
// committed in that same order regardless of completion order, so the
// engine's observable state after a batch is independent of scheduling.
// Keys already computed count as hits; keys being computed by another
// caller are joined. It returns the first error in canonical key order
// (the same error a later Get of that key will return).
func (e *Engine[K, V]) Prefetch(keys []K) error {
	e.mu.Lock()
	e.stats.BatchRequested += len(keys)
	uniq := make([]K, len(keys))
	copy(uniq, keys)
	slices.SortFunc(uniq, e.opts.Compare)
	uniq = slices.CompactFunc(uniq, func(a, b K) bool { return e.opts.Compare(a, b) == 0 })
	e.stats.BatchDeduped += len(keys) - len(uniq)

	// Partition: already-memoized keys are hits; keys some other caller
	// is computing are joined after the pool drains; the rest are ours.
	var joins []*call[V]
	var work []K
	calls := make(map[K]*call[V], len(uniq))
	errs := make(map[K]error, len(uniq))
	for _, k := range uniq {
		if r, ok := e.results[k]; ok {
			e.stats.Hits++
			errs[k] = r.err
			continue
		}
		if c, ok := e.inflight[k]; ok {
			e.stats.Joins++
			joins = append(joins, c)
			calls[k] = c
			continue
		}
		c := &call[V]{done: make(chan struct{})}
		e.inflight[k] = c
		calls[k] = c
		work = append(work, k)
	}
	e.mu.Unlock()

	// Bounded fan-out; dispatch in canonical order. Completion order is
	// scheduling-dependent, which is why the commit below re-walks work
	// in its canonical order instead.
	jobs := make(chan K)
	var wg sync.WaitGroup
	workers := min(e.opts.Workers, len(work))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				e.run(k, calls[k])
			}
		}()
	}
	for _, k := range work {
		jobs <- k
	}
	close(jobs)
	wg.Wait()

	e.mu.Lock()
	for _, k := range work {
		e.commit(k, calls[k])
	}
	e.mu.Unlock()

	for _, c := range joins {
		<-c.done
	}

	// First error in canonical key order, from whichever path produced
	// the key's result (memo hit, joined call, or our own pool).
	for _, k := range uniq {
		err := errs[k]
		if c, ok := calls[k]; ok {
			err = c.err
		}
		if err != nil {
			return fmt.Errorf("runsched: %w", err)
		}
	}
	return nil
}

// Cached returns the memoized value for k without computing anything.
// The bool reports whether k has been committed.
func (e *Engine[K, V]) Cached(k K) (V, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.results[k]
	return r.val, r.err
}

// Has reports whether k has been committed.
func (e *Engine[K, V]) Has(k K) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.results[k]
	return ok
}

// Stats returns a snapshot of the counters.
func (e *Engine[K, V]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Records returns the per-run entries in canonical key order. The set
// of records — and, with a deterministic clock, their contents — is
// identical for any worker count.
func (e *Engine[K, V]) Records() []Record[K] {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Record[K], len(e.records))
	copy(out, e.records)
	slices.SortFunc(out, func(a, b Record[K]) int { return e.opts.Compare(a.Key, b.Key) })
	return out
}
