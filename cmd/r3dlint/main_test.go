package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "testdata/src"

// runCLI invokes the command body and returns its exit code and output
// streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func golden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestFixtureTextOutput(t *testing.T) {
	code, out, stderr := runCLI(t, fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if want := golden(t, "golden.txt"); out != want {
		t.Errorf("text output mismatch\n--- got ---\n%s--- want ---\n%s", out, want)
	}
	if !strings.Contains(stderr, "21 finding(s)") {
		t.Errorf("stderr %q does not report the finding count", stderr)
	}
}

func TestFixtureJSONOutputIsByteStable(t *testing.T) {
	code, first, _ := runCLI(t, "-json", fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if want := golden(t, "golden.json"); first != want {
		t.Errorf("json output mismatch\n--- got ---\n%s--- want ---\n%s", first, want)
	}
	_, second, _ := runCLI(t, "-json", fixture)
	if first != second {
		t.Error("-json output differs between identical runs")
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(first), &parsed); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(parsed) != 21 {
		t.Errorf("parsed %d findings, want 21", len(parsed))
	}
}

func TestBaselineSuppressesKnownFindings(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI(t, "-baseline", base, fixture)
	if code != 0 {
		t.Fatalf("exit %d with full baseline, want 0; stdout:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("unexpected output with full baseline:\n%s", out)
	}
	if strings.Contains(stderr, "stale") {
		t.Errorf("unexpected stale entries: %s", stderr)
	}
}

func TestBaselineFailsOnRegression(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	var entries []map[string]any
	if err := json.Unmarshal([]byte(js), &entries); err != nil {
		t.Fatal(err)
	}
	trimmed, err := json.Marshal(entries[1:]) // drop the first entry
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, trimmed, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-baseline", base, fixture)
	if code != 1 {
		t.Fatalf("exit %d with truncated baseline, want 1", code)
	}
	if got := strings.Count(strings.TrimSpace(out), "\n") + 1; got != 1 {
		t.Errorf("%d regression lines, want exactly the dropped finding:\n%s", got, out)
	}
}

func TestBaselineReportsStaleEntries(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	var entries []map[string]any
	if err := json.Unmarshal([]byte(js), &entries); err != nil {
		t.Fatal(err)
	}
	entries = append(entries, map[string]any{
		"file": "internal/model/gone.go", "line": 1, "col": 1,
		"check": "maporder", "message": "a finding that no longer exists",
	})
	padded, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, padded, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-baseline", base, fixture)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stale entries are non-fatal)", code)
	}
	if !strings.Contains(stderr, "stale baseline entry") || !strings.Contains(stderr, "gone.go") {
		t.Errorf("stderr does not note the stale entry: %s", stderr)
	}
}

func TestUsageAndLoadErrorsExit2(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-baseline", "testdata/does-not-exist.json", fixture); code != 2 {
		t.Errorf("missing baseline file: exit %d, want 2", code)
	}
}

func TestFixBaselineDropsStaleEntries(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	var entries []map[string]any
	if err := json.Unmarshal([]byte(js), &entries); err != nil {
		t.Fatal(err)
	}
	entries = append(entries, map[string]any{
		"file": "internal/model/gone.go", "line": 1, "col": 1,
		"check": "maporder", "message": "a finding that no longer exists",
	})
	padded, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, padded, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runCLI(t, "-baseline", base, "-fix-baseline", fixture)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "kept 21 entries, dropped 1 stale") {
		t.Errorf("stderr does not report the prune: %s", stderr)
	}
	// The rewritten file must now match the live findings exactly: a
	// second plain -baseline run sees no stale entries and no findings.
	rewritten, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rewritten), "gone.go") {
		t.Error("stale entry survived -fix-baseline")
	}
	code, out, stderr := runCLI(t, "-baseline", base, fixture)
	if code != 0 || out != "" || strings.Contains(stderr, "stale") {
		t.Errorf("pruned baseline not clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}

func TestFixBaselineRequiresBaseline(t *testing.T) {
	if code, _, _ := runCLI(t, "-fix-baseline", fixture); code != 2 {
		t.Errorf("-fix-baseline without -baseline: exit %d, want 2", code)
	}
}

// TestRealModuleJSONByteIdentical runs the CLI twice over the real
// module — two fully independent parse/typecheck/analyze passes — and
// requires byte-identical -json output (and a clean module).
func TestRealModuleJSONByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module twice")
	}
	code, first, stderr := runCLI(t, "-json", "../..")
	if code != 0 {
		t.Fatalf("real module not clean: exit %d\n%s\n%s", code, first, stderr)
	}
	code, second, _ := runCLI(t, "-json", "../..")
	if code != 0 {
		t.Fatalf("second run: exit %d", code)
	}
	if first != second {
		t.Errorf("-json output differs between two full-module runs\n--- first ---\n%s--- second ---\n%s", first, second)
	}

	// The v4 goroutine-lifecycle suite alone must also be clean and
	// byte-identical across independent passes.
	code, v4First, stderr := runCLI(t, "-json", "-only", "goleak,chanown,stopflow", "../..")
	if code != 0 {
		t.Fatalf("real module not clean under -only goleak,chanown,stopflow: exit %d\n%s\n%s", code, v4First, stderr)
	}
	code, v4Second, _ := runCLI(t, "-json", "-only", "goleak,chanown,stopflow", "../..")
	if code != 0 {
		t.Fatalf("second -only run: exit %d", code)
	}
	if v4First != v4Second {
		t.Errorf("-only -json output differs between two full-module runs\n--- first ---\n%s--- second ---\n%s", v4First, v4Second)
	}
}

func TestOnlyAndSkipFilterFindings(t *testing.T) {
	code, out, stderr := runCLI(t, "-only", "goleak", fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("-only goleak: %d findings, want 3:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.Contains(l, " goleak: ") {
			t.Errorf("-only goleak emitted a foreign finding: %s", l)
		}
	}

	code, out, stderr = runCLI(t, "-skip", "goleak", fixture)
	if code != 1 {
		t.Fatalf("-skip goleak: exit %d, want 1", code)
	}
	if strings.Contains(out, " goleak: ") {
		t.Errorf("-skip goleak still emitted goleak findings:\n%s", out)
	}
	if !strings.Contains(stderr, "18 finding(s)") {
		t.Errorf("-skip goleak stderr %q, want 18 finding(s)", stderr)
	}
}

func TestUnknownAnalyzerNameExits2(t *testing.T) {
	for _, flagName := range []string{"-only", "-skip"} {
		code, _, stderr := runCLI(t, flagName, "goleak,nosuch", fixture)
		if code != 2 {
			t.Errorf("%s nosuch: exit %d, want 2", flagName, code)
		}
		if !strings.Contains(stderr, `unknown analyzer "nosuch"`) || !strings.Contains(stderr, "maporder") {
			t.Errorf("%s stderr does not list the valid analyzers: %s", flagName, stderr)
		}
	}
}

func TestStatsAreByteStable(t *testing.T) {
	orig := statsClock
	defer func() { statsClock = orig }()
	reset := func() {
		var tick int64
		statsClock = func() int64 {
			tick += 1_000_000
			return tick
		}
	}

	reset()
	code, _, first := runCLI(t, "-stats", "-only", "goleak,chanown,stopflow", fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, first)
	}
	reset()
	_, _, second := runCLI(t, "-stats", "-only", "goleak,chanown,stopflow", fixture)
	if first != second {
		t.Errorf("-stats output differs under an identical injected clock\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// One injected tick between the start and end reads: each analyzer
	// reports exactly 1.000 ms and its golden finding count.
	for _, want := range []string{
		"r3dlint: analyzer stats (findings, wall ms):",
		"goleak           3      1.000",
		"chanown          3      1.000",
		"stopflow         3      1.000",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("stats block missing %q:\n%s", want, first)
		}
	}
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"maporder", "globalrand", "wallclock", "floatcmp", "errdrop", "gocapture", "dettaint", "units", "mutexguard", "lockorder", "blockhold", "goleak", "chanown", "stopflow"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}
