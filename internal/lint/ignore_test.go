package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A directive without a reason must not silence anything — it is
// reported itself, alongside the finding it failed to suppress.
func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	//lint:ignore globalrand
	return rand.Intn(6)
}
`)
	wantChecks(t, fs, "lintdirective", "globalrand")
	if !strings.Contains(fs[0].Message, "lint:ignore <check> <reason>") {
		t.Errorf("malformed-directive message should show the expected syntax, got %q", fs[0].Message)
	}
}

// A directive only suppresses the check it names.
func TestIgnoreDirectiveIsCheckSpecific(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	//lint:ignore wallclock wrong check name on purpose
	return rand.Intn(6)
}
`)
	wantChecks(t, fs, "globalrand")
}

// End-of-line directives cover their own line.
func TestIgnoreDirectiveSameLine(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	return rand.Intn(6) //lint:ignore globalrand demonstration fixture only
}
`)
	wantChecks(t, fs)
}

func TestFindModule(t *testing.T) {
	root, modPath, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	if modPath != "r3d" {
		t.Errorf("module path = %q, want %q", modPath, "r3d")
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("module root %q has no go.mod: %v", root, err)
	}
}
