package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore <check> <reason>
//
// The directive silences findings of the named check on the directive's
// own line (end-of-line form) or on the line directly below it
// (preceding-comment form). The reason is mandatory; a directive
// without one is reported as a "lintdirective" finding so suppressions
// can never silently lose their justification.
const ignorePrefix = "lint:ignore"

// ignoreSet records, per file and line, which checks are suppressed.
type ignoreSet map[string]map[int][]string

// collectIgnores scans a package's comments for directives. Malformed
// directives are returned as findings.
func collectIgnores(fset *token.FileSet, pkgs []*Package) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Check:   "lintdirective",
							Pos:     pos,
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					check := fields[0]
					lines := set[pos.Filename]
					if lines == nil {
						lines = map[int][]string{}
						set[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], check)
				}
			}
		}
	}
	return set, bad
}

// suppressed reports whether a finding is covered by a directive on its
// own line or the line above.
func (s ignoreSet) suppressed(f Finding) bool {
	lines, ok := s[f.Pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, check := range lines[line] {
			if check == f.Check {
				return true
			}
		}
	}
	return false
}
