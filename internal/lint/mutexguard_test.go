package lint

import (
	"strings"
	"testing"
)

func TestMutexGuardDirectViolations(t *testing.T) {
	src := `package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	n int
}

func (c *counter) bad() {
	c.n++ // write, no lock
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
`
	got := findings(t, MutexGuard, modelPath, src)
	wantChecks(t, got, "mutexguard")
	if !strings.Contains(got[0].Message, "counter.n") || !strings.Contains(got[0].Message, "fixture.counter.mu") {
		t.Errorf("message should name the field and guard: %s", got[0].Message)
	}
}

func TestMutexGuardRWMutexModes(t *testing.T) {
	src := `package fixture

import "sync"

type table struct {
	mu sync.RWMutex
	// r3dlint:guardedby mu
	m map[string]int
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k] // read under RLock: fine
}

func (t *table) badPut(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // write under RLock only
}

func (t *table) badGet(k string) int {
	return t.m[k] // read, no lock at all
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}
`
	got := findings(t, MutexGuard, modelPath, src)
	wantChecks(t, got, "mutexguard", "mutexguard")
	if !strings.Contains(got[0].Message, "exclusive Lock") {
		t.Errorf("RLock-write message should demand the exclusive Lock: %s", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "read of table.m") {
		t.Errorf("unlocked read message: %s", got[1].Message)
	}
}

// TestMutexGuardLockedHelperIdiom is the interprocedural heart of the
// analyzer: a helper that never locks is still in the clear when every
// observed call site enters it with the mutex held — and a single
// unlocked call path breaks the guarantee, with the chain named.
func TestMutexGuardLockedHelperIdiom(t *testing.T) {
	clean := `package fixture

import "sync"

type store struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	items []string
}

func (s *store) addLocked(it string) {
	s.items = append(s.items, it)
}

func (s *store) Add(it string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(it)
}

func (s *store) AddTwo(a, b string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(a)
	s.addLocked(b)
}
`
	wantChecks(t, findings(t, MutexGuard, modelPath, clean))

	leaky := clean + `
func (s *store) Sneak(it string) {
	s.addLocked(it) // no lock: every access inside addLocked is now suspect
}
`
	got := findings(t, MutexGuard, modelPath, leaky)
	wantChecks(t, got, "mutexguard")
	if !strings.Contains(got[0].Message, "unlocked path: Sneak → addLocked") {
		t.Errorf("finding should carry the unlocked call chain: %s", got[0].Message)
	}
}

func TestMutexGuardFlowSensitivity(t *testing.T) {
	src := `package fixture

import "sync"

type box struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	v int
}

func (b *box) early() int {
	b.mu.Lock()
	v := b.v // locked: fine
	b.mu.Unlock()
	return v + b.v // unlocked re-read
}

func (b *box) branchy(c bool) {
	if c {
		b.mu.Lock()
	}
	b.v = 1 // only one branch locked: not guaranteed held
	if c {
		b.mu.Unlock()
	}
}
`
	got := findings(t, MutexGuard, modelPath, src)
	wantChecks(t, got, "mutexguard", "mutexguard")
}

// TestMutexGuardGoroutineLiteral: a function literal does not inherit
// its spawner's critical section.
func TestMutexGuardGoroutineLiteral(t *testing.T) {
	src := `package fixture

import "sync"

type g struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	n int
}

func (x *g) spawn() {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func() {
		x.n++ // runs outside the critical section
	}()
}
`
	wantChecks(t, findings(t, MutexGuard, modelPath, src), "mutexguard")
}

func TestMutexGuardPackageVarAndDelete(t *testing.T) {
	src := `package fixture

import "sync"

var regMu sync.Mutex

// r3dlint:guardedby regMu
var registry = map[string]int{}

func drop(k string) {
	delete(registry, k) // builtin map mutation without the lock
}

func put(k string, v int) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[k] = v
}
`
	got := findings(t, MutexGuard, modelPath, src)
	wantChecks(t, got, "mutexguard")
	if !strings.Contains(got[0].Message, "write to fixture.registry") {
		t.Errorf("delete() should count as a write: %s", got[0].Message)
	}
}

func TestMutexGuardBadAnnotation(t *testing.T) {
	src := `package fixture

type broken struct {
	// r3dlint:guardedby nosuch
	n int
}
`
	got := findings(t, MutexGuard, modelPath, src)
	wantChecks(t, got, "mutexguard")
	if !strings.Contains(got[0].Message, "nosuch") {
		t.Errorf("annotation error should name the missing mutex: %s", got[0].Message)
	}
}

func TestMutexGuardSuppression(t *testing.T) {
	src := `package fixture

import "sync"

type snap struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	n int
}

func (s *snap) peek() int {
	//lint:ignore mutexguard racy read is an approximate stats counter, staleness is fine
	return s.n
}
`
	wantChecks(t, findings(t, MutexGuard, modelPath, src))
}
