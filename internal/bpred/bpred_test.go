package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	c = c.update(false)
	if c != 0 {
		t.Errorf("counter must saturate at 0, got %d", c)
	}
	c = counter(3)
	c = c.update(true)
	if c != 3 {
		t.Errorf("counter must saturate at 3, got %d", c)
	}
	if counter(1).taken() || !counter(2).taken() {
		t.Error("taken threshold wrong")
	}
}

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New()
	pc := uint64(0x1000)
	for i := 0; i < 8; i++ {
		pred := p.Lookup(pc)
		p.Update(pc, pred, true)
	}
	if !p.Lookup(pc) {
		t.Error("always-taken branch should be predicted taken after warmup")
	}
	s := p.Stats()
	if s.Lookups == 0 {
		t.Error("lookups not counted")
	}
}

func TestAlternatingBranchLearnedByHistory(t *testing.T) {
	// A strictly alternating branch defeats bimodal but is perfectly
	// predictable with 12 bits of local history; the tournament should
	// converge to near-zero mispredictions.
	p := New()
	pc := uint64(0x2000)
	taken := false
	warm := 4000
	for i := 0; i < warm; i++ {
		pred := p.Lookup(pc)
		p.Update(pc, pred, taken)
		taken = !taken
	}
	miss := 0
	for i := 0; i < 1000; i++ {
		pred := p.Lookup(pc)
		if pred != taken {
			miss++
		}
		p.Update(pc, pred, taken)
		taken = !taken
	}
	if miss > 10 {
		t.Errorf("alternating branch mispredicted %d/1000 after warmup", miss)
	}
}

func TestRandomBranchMispredictsHalf(t *testing.T) {
	p := New()
	r := rand.New(rand.NewSource(7))
	pc := uint64(0x3000)
	for i := 0; i < 20000; i++ {
		taken := r.Intn(2) == 0
		pred := p.Lookup(pc)
		p.Update(pc, pred, taken)
	}
	rate := p.Stats().MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random branch mispredict rate = %.3f, want ≈0.5", rate)
	}
}

func TestBiasedBranchMispredictRate(t *testing.T) {
	// A branch taken 90% of the time (random) should mispredict at
	// roughly the bias complement once the bimodal side captures it.
	p := New()
	r := rand.New(rand.NewSource(11))
	pc := uint64(0x4000)
	for i := 0; i < 30000; i++ {
		taken := r.Float64() < 0.9
		pred := p.Lookup(pc)
		p.Update(pc, pred, taken)
	}
	rate := p.Stats().MispredictRate()
	if rate > 0.2 {
		t.Errorf("90%%-biased branch mispredict rate = %.3f, want ≤0.2", rate)
	}
}

func TestMispredictRateEmpty(t *testing.T) {
	var s PredStats
	if s.MispredictRate() != 0 {
		t.Error("empty stats should have rate 0")
	}
}

func TestBTBHitAfterUpdate(t *testing.T) {
	b := NewBTB()
	if _, hit := b.Lookup(0x100); hit {
		t.Error("cold BTB should miss")
	}
	b.Update(0x100, 0x2000)
	tgt, hit := b.Lookup(0x100)
	if !hit || tgt != 0x2000 {
		t.Errorf("BTB lookup = (%#x,%v), want (0x2000,true)", tgt, hit)
	}
	// Refresh target.
	b.Update(0x100, 0x3000)
	tgt, hit = b.Lookup(0x100)
	if !hit || tgt != 0x3000 {
		t.Errorf("BTB refresh failed: (%#x,%v)", tgt, hit)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB()
	// Three PCs mapping to the same set (stride = BTBSets*4) exceed the
	// 2 ways; the LRU entry must be evicted.
	pcs := []uint64{0x100, 0x100 + BTBSets*4, 0x100 + 2*BTBSets*4}
	b.Update(pcs[0], 1)
	b.Update(pcs[1], 2)
	// Touch pcs[0] so pcs[1] becomes LRU.
	if _, hit := b.Lookup(pcs[0]); !hit {
		t.Fatal("expected hit")
	}
	b.Update(pcs[2], 3)
	if _, hit := b.Lookup(pcs[1]); hit {
		t.Error("LRU entry should have been evicted")
	}
	if tgt, hit := b.Lookup(pcs[0]); !hit || tgt != 1 {
		t.Error("MRU entry should have survived")
	}
	if tgt, hit := b.Lookup(pcs[2]); !hit || tgt != 3 {
		t.Error("new entry should be present")
	}
}

func TestBTBMissCounting(t *testing.T) {
	b := NewBTB()
	b.Lookup(0x1)
	b.Lookup(0x2)
	if b.Stats().BTBMisses != 2 {
		t.Errorf("BTBMisses = %d, want 2", b.Stats().BTBMisses)
	}
}
