package lint

import "go/token"

// Analyzers returns the full determinism/hygiene suite in a fixed
// order: the five local checks of v1, the v2 whole-program and
// concurrency analyzers, then the v3 annotation-driven lock-discipline
// suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder, GlobalRand, WallClock, FloatCmp, ErrDrop, GoCapture,
		DetTaint, Units,
		MutexGuard, LockOrder, BlockHold,
	}
}

// Run applies the analyzers to the packages, filters out findings
// covered by a reasoned //lint:ignore directive, and returns the
// remainder sorted by position. Malformed directives, and directives
// that suppressed nothing a ran check could have produced (stale
// suppressions), are included as findings. dir is the module root used
// to locate the units manifest; it is empty for in-memory fixture runs.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunDir("", pkgs, analyzers)
}

// RunDir is Run with an explicit module root directory.
func RunDir(dir string, pkgs []*Package, analyzers []*Analyzer) []Finding {
	ignores, findings := collectIgnores(fsetOf(pkgs), pkgs)
	report := func(f Finding) {
		if !ignores.suppressed(f) {
			findings = append(findings, f)
		}
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, report: report}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fsetOf(pkgs),
			Dir:      dir,
			Pkgs:     pkgs,
			ignores:  ignores,
			report:   report,
		}
		a.RunModule(mp)
	}

	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	registered := map[string]bool{"lintdirective": true}
	for _, a := range Analyzers() {
		registered[a.Name] = true
	}
	findings = append(findings, ignores.stale(ran, registered)...)
	sortFindings(findings)
	return findings
}

// fsetOf returns the packages' shared FileSet (every loader and fixture
// helper uses a single set).
func fsetOf(pkgs []*Package) *token.FileSet {
	if len(pkgs) == 0 {
		return token.NewFileSet()
	}
	return pkgs[0].Fset
}

// RunModule is the driver entry point: load the module containing dir
// and run the full suite over it.
func RunModule(dir string) (*Module, []Finding, error) {
	m, err := LoadModule(dir)
	if err != nil {
		return nil, nil, err
	}
	return m, RunDir(m.Dir, m.Pkgs, Analyzers()), nil
}
