package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/jobs             submit (idempotent; join by fingerprint)
//	GET  /api/v1/jobs/{id}        status; ?wait_ms= + ?version= long-polls
//	GET  /api/v1/jobs/{id}/result completed result bytes
//	GET  /healthz                 liveness + degradation status
//	GET  /statsz                  admission counters + engine stats
//
// All handlers are safe for concurrent use; none of them block on
// simulation work (submission is asynchronous, status waits are
// bounded by wait_ms, the request context, and server drain).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// maxSubmissionBytes bounds a request body: grids are small; anything
// megabytes long is a client bug or abuse.
const maxSubmissionBytes = 1 << 20

// clientKey identifies a client for rate limiting: the remote IP.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body) // client went away; nothing to do
	_, _ = w.Write([]byte("\n"))
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error         string `json:"error"`
	RetryAfterSec int64  `json:"retry_after_sec,omitempty"`
}

// writeStatusError maps a StatusError onto the wire, including the
// Retry-After header backpressure contract.
func writeStatusError(w http.ResponseWriter, e *StatusError) {
	if e.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(e.RetryAfterSec, 10))
	}
	writeJSON(w, e.Code, errorBody{Error: e.Msg, RetryAfterSec: e.RetryAfterSec})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmissionBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		s.countInvalid()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode submission: %v", err)})
		return
	}
	res, serr := s.Submit(sub, clientKey(r))
	if serr != nil {
		writeStatusError(w, serr)
		return
	}
	code := http.StatusAccepted
	if res.Joined {
		code = http.StatusOK
	}
	writeJSON(w, code, res)
}

// handleStatus reports one job. With ?wait_ms=N (and optionally
// ?version=V, the last version the client saw) it long-polls: the
// response returns as soon as the job changes past V, the wait times
// out, the request context ends, or the server drains.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	waitMS, _ := strconv.ParseInt(r.URL.Query().Get("wait_ms"), 10, 64)
	sinceVersion, _ := strconv.ParseInt(r.URL.Query().Get("version"), 10, 64)
	if waitMS > 0 {
		s.waitForChange(r, j, sinceVersion, waitMS)
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// maxWaitMS caps a single long-poll leg; clients re-arm with the
// returned version.
const maxWaitMS = 60_000

// waitForChange blocks until the job's version passes sinceVersion or
// any wait bound fires.
func (s *Server) waitForChange(r *http.Request, j *Job, sinceVersion, waitMS int64) {
	if waitMS > maxWaitMS {
		waitMS = maxWaitMS
	}
	timeout := s.clock.After(waitMS * 1e6)
	for {
		version, changed := j.versionAndChanged()
		if version > sinceVersion {
			return
		}
		select {
		case <-changed:
		case <-timeout:
			return
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	body, contentType, done := j.resultBody()
	if !done {
		st := j.snapshot()
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job is %s; no result to serve", st.State)})
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(body) // client went away; nothing to do
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.HealthSnapshot())
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
