package noc

import (
	"math"
	"testing"
)

func TestHopCost(t *testing.T) {
	if CyclesPerHop != 4 {
		t.Fatalf("paper: each hop costs 4 cycles (1 link + 3 router), got %d", CyclesPerHop)
	}
}

func TestRoundTrip(t *testing.T) {
	n := New([]int{1, 2})
	if got := n.RoundTripCycles(0); got != 8 {
		t.Errorf("1-hop round trip = %d, want 8", got)
	}
	if got := n.RoundTripCycles(1); got != 16 {
		t.Errorf("2-hop round trip = %d, want 16", got)
	}
}

func TestRecordAndTraversals(t *testing.T) {
	n := New([]int{1, 3})
	n.Record(0)
	n.Record(1)
	n.Record(1)
	if n.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", n.Accesses())
	}
	if n.Traversals() != 2+6+6 {
		t.Errorf("Traversals = %d, want 14", n.Traversals())
	}
}

func TestMeanHops(t *testing.T) {
	n := New([]int{1, 1, 2, 2})
	if got := n.MeanHops(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MeanHops = %v, want 1.5", got)
	}
	if New(nil).MeanHops() != 0 {
		t.Error("empty network mean hops should be 0")
	}
}

func TestPowerAndArea(t *testing.T) {
	n := New([]int{1, 2, 3})
	if n.Routers() != 4 {
		t.Errorf("Routers = %d, want banks+1 = 4", n.Routers())
	}
	wantP := 4 * RouterPowerW
	if math.Abs(n.StaticPowerW()-wantP) > 1e-12 {
		t.Errorf("StaticPowerW = %v, want %v", n.StaticPowerW(), wantP)
	}
	wantA := 4 * RouterAreaMM2
	if math.Abs(n.TotalAreaMM2()-wantA) > 1e-12 {
		t.Errorf("TotalAreaMM2 = %v, want %v", n.TotalAreaMM2(), wantA)
	}
}

func TestNewCopiesInput(t *testing.T) {
	hops := []int{1, 2}
	n := New(hops)
	hops[0] = 99
	if n.Hops(0) != 1 {
		t.Error("New must copy the hops slice")
	}
}
