package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements whose error result is silently
// discarded, anywhere in the module. A dropped error in the simulator
// usually means a truncated trace file or a half-written results table
// that still exits zero. An explicit `_ = f()` is accepted as a
// deliberate discard; better is a reasoned //lint:ignore errdrop or
// actually handling the error.
//
// Two classes of writes are exempt because their error results are
// vacuous: the fmt.Print family (driver output to stdout, where no
// recovery is possible), and fmt.Fprint* / Write* calls whose
// destination is a *strings.Builder or *bytes.Buffer (both documented
// to never return a non-nil error).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "call result of type error silently discarded",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	info := p.Pkg.Info
	p.inspectAll(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = s.Call
		case *ast.GoStmt:
			call = s.Call
		}
		if call == nil {
			return true
		}
		if !returnsError(info, call) || errDropExempt(info, call) {
			return true
		}
		p.Reportf(call.Pos(), "result of type error is discarded; handle it, assign to _, or justify with //lint:ignore errdrop")
		return true
	})
}

// returnsError reports whether any result of the call is an error (or a
// concrete type implementing error).
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// errDropExempt reports calls whose error result is vacuous by
// construction.
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	// fmt.Print / Printf / Println: driver output to stdout.
	if pkgPath, name, ok := calleePkgFunc(info, call); ok && pkgPath == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			// Exempt when the destination writer cannot fail, or is a
			// standard stream (CLI diagnostics — nothing to handle).
			return len(call.Args) > 0 &&
				(isInfallibleWriter(info, call.Args[0]) || isStdStream(info, call.Args[0]))
		}
		return false
	}
	// Methods on *strings.Builder / *bytes.Buffer (WriteString,
	// WriteByte, ...): documented to never return a non-nil error.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return isInfallibleWriterType(s.Recv())
		}
	}
	return false
}

// isStdStream reports whether e is exactly os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}

func isInfallibleWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isInfallibleWriterType(tv.Type)
}

func isInfallibleWriterType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
