// Package runsched is a deterministic, concurrency-safe run engine:
// a memo cache over a pure compute function, with per-key singleflight
// (duplicate requests join the in-flight computation instead of
// recomputing) and batch execution across a bounded worker pool.
//
// It exists so the experiment layer can regenerate the paper's whole
// evaluation in parallel without giving up a byte of reproducibility.
// The contract that makes that possible:
//
//   - compute must be a pure function of the key: same key, same value,
//     on every run, at any worker count (the simulator's per-seed
//     determinism, protected by the r3dlint suite, provides this);
//   - results and errors are memoized forever — a key is computed at
//     most once per engine, no matter how many callers race on it;
//   - batch results are committed in canonical key order, never in
//     completion order, mirroring internal/campaign's ID-ordered
//     aggregation, so everything observable from the engine is
//     independent of scheduling;
//   - the engine itself never reads the wall clock (model code must
//     not); drivers inject a clock for the observability counters, and
//     with no clock injected all timings are zero.
//
// compute must not call back into its own engine: a recursive Get from
// inside compute can join the very call that issued it and deadlock.
package runsched

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sync"
)

// ErrInterrupted is the memo-free error a Prefetch reports for keys it
// never dispatched because Interrupt was called. It is not committed to
// the cache: the keys stay uncomputed and a later run (e.g. a warm
// start from a persisted cache) computes them normally.
var ErrInterrupted = errors.New("runsched: interrupted")

// Stats are the engine's observability counters. All fields are sums or
// counts, so they are identical for any worker count; only the injected
// clock's readings vary between hosts.
type Stats struct {
	// Computed counts keys evaluated by the compute function.
	Computed int `json:"computed"`
	// Hits counts requests served from the memo cache.
	Hits int `json:"cache_hits"`
	// Joins counts requests that joined an in-flight computation
	// instead of starting their own (the singleflight saves).
	Joins int `json:"singleflight_joins"`
	// Errors counts computed keys whose compute returned an error
	// (errors are memoized like values).
	Errors int `json:"errors"`
	// BatchRequested / BatchDeduped count keys handed to Prefetch and
	// the duplicates it removed before dispatch.
	BatchRequested int `json:"batch_requested"`
	BatchDeduped   int `json:"batch_deduped"`
	// ComputeNanos is the summed wall-clock time inside compute, as
	// measured by the injected clock (0 without one). With parallel
	// workers it exceeds elapsed time — it is total work, not latency.
	ComputeNanos int64 `json:"compute_nanos"`
	// Preloaded counts entries seeded from a persisted cache (Preload).
	Preloaded int `json:"preloaded"`
	// ShadowChecked / ShadowDiverged count cache hits re-verified by a
	// from-scratch recomputation and the re-verifications that failed
	// the byte comparison.
	ShadowChecked  int `json:"shadow_checked"`
	ShadowDiverged int `json:"shadow_diverged"`
}

// Record is the per-run observability entry for one computed key.
type Record[K comparable] struct {
	Key   K
	Nanos int64 // compute wall time by the injected clock (0 without one)
	Err   bool  // compute returned an error
}

// Entry is one successful memo entry, the unit of cache persistence:
// Entries dumps them, Preload seeds them.
type Entry[K comparable, V any] struct {
	Key K `json:"key"`
	Val V `json:"val"`
}

// Divergence is one failed shadow re-verification: a cached value whose
// recomputation no longer matches it byte-for-byte under Options.Encode.
type Divergence[K comparable] struct {
	Key        K
	Stored     string
	Recomputed string
}

// Options configures an Engine.
type Options[K comparable, V any] struct {
	// Workers bounds the batch worker pool (≤0 selects 1). Get always
	// computes on the calling goroutine.
	Workers int
	// Compare orders keys canonically; it is required and must be a
	// total order. Batches are dispatched and committed in this order,
	// and Records reports in it.
	Compare func(a, b K) int
	// Clock returns a monotonic nanosecond reading for the timing
	// counters. nil disables timing (all durations zero): the engine is
	// model code and must not read the host clock itself.
	Clock func() int64
	// ShadowFraction enables RMT-style self-verification: each key's
	// first cache hit has this probability of triggering a from-scratch
	// recomputation whose Encode bytes are compared against the cached
	// value. Selection is a pure function of Hash(key), so which keys
	// get re-verified is reproducible. Requires Hash and Encode; 0
	// disables, ≥1 checks every hit key once.
	ShadowFraction float64
	// Hash maps a key to the 32-bit value driving shadow selection.
	Hash func(K) uint32
	// Encode produces the canonical bytes compared during a shadow
	// check. It must be a pure function of the value.
	Encode func(V) ([]byte, error)
}

// result is a committed memo entry.
type result[V any] struct {
	val V
	err error
}

// call is one in-flight computation; joiners wait on done.
type call[V any] struct {
	done  chan struct{}
	val   V
	err   error
	nanos int64
}

// Engine memoizes a pure compute function with singleflight and batch
// scheduling. The zero value is not usable; construct with New.
type Engine[K comparable, V any] struct {
	compute func(K) (V, error)
	opts    Options[K, V]
	stop    chan struct{}

	mu sync.Mutex
	// r3dlint:guardedby mu
	results map[K]result[V]
	// r3dlint:guardedby mu
	inflight map[K]*call[V]
	// r3dlint:guardedby mu
	stats Stats
	// r3dlint:guardedby mu
	records []Record[K]
	// r3dlint:guardedby mu
	shadowDone map[K]bool // keys already shadow-checked (at most once each)
	// r3dlint:guardedby mu
	divergences []Divergence[K]
	// r3dlint:guardedby mu
	stopped bool
}

// New creates an engine over the given pure compute function.
// Options.Compare must be non-nil.
func New[K comparable, V any](compute func(K) (V, error), opts Options[K, V]) *Engine[K, V] {
	if compute == nil {
		panic("runsched: nil compute function")
	}
	if opts.Compare == nil {
		panic("runsched: Options.Compare is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.ShadowFraction > 0 && (opts.Hash == nil || opts.Encode == nil) {
		panic("runsched: ShadowFraction requires Options.Hash and Options.Encode")
	}
	return &Engine[K, V]{
		compute:    compute,
		opts:       opts,
		stop:       make(chan struct{}),
		results:    map[K]result[V]{},
		inflight:   map[K]*call[V]{},
		shadowDone: map[K]bool{},
	}
}

// Interrupt asks the engine to drain: in-flight computations finish and
// commit, but Prefetch dispatches no further keys and reports
// ErrInterrupted for the ones it skipped. Idempotent and safe from a
// signal handler's goroutine.
func (e *Engine[K, V]) Interrupt() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.stopped {
		e.stopped = true
		close(e.stop)
	}
}

// Workers returns the configured batch pool width.
func (e *Engine[K, V]) Workers() int { return e.opts.Workers }

// now reads the injected clock (0 without one).
func (e *Engine[K, V]) now() int64 {
	if e.opts.Clock == nil {
		return 0
	}
	return e.opts.Clock()
}

// Get returns the memoized value for k, computing it on the calling
// goroutine if no other caller already is. Concurrent Gets of the same
// key perform exactly one computation; the rest join it.
func (e *Engine[K, V]) Get(k K) (V, error) {
	e.mu.Lock()
	if r, ok := e.results[k]; ok {
		e.stats.Hits++
		check := e.shadowWantedLocked(k, r.err)
		e.mu.Unlock()
		if check {
			e.shadowCheck(k, r.val)
		}
		return r.val, r.err
	}
	if c, ok := e.inflight[k]; ok {
		e.stats.Joins++
		e.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	e.inflight[k] = c
	e.mu.Unlock()

	e.run(k, c)

	e.mu.Lock()
	e.commit(k, c)
	e.mu.Unlock()
	return c.val, c.err
}

// run evaluates compute for k into c and releases joiners. The memo
// commit happens separately so batches can commit in key order.
//
// r3dlint:closer the inflight table hands each call here for its single completion close
func (e *Engine[K, V]) run(k K, c *call[V]) {
	start := e.now()
	c.val, c.err = e.compute(k)
	c.nanos = e.now() - start
	close(c.done)
}

// commit moves a finished call into the memo under e.mu. Joiners that
// arrive between close(done) and commit still find the inflight entry
// and return immediately from the closed channel.
func (e *Engine[K, V]) commit(k K, c *call[V]) {
	delete(e.inflight, k)
	e.results[k] = result[V]{val: c.val, err: c.err}
	e.stats.Computed++
	e.stats.ComputeNanos += c.nanos
	if c.err != nil {
		e.stats.Errors++
	}
	e.records = append(e.records, Record[K]{Key: k, Nanos: c.nanos, Err: c.err != nil})
}

// shadowWantedLocked decides (under e.mu) whether this hit triggers a
// shadow re-verification, and claims the key so each is checked at most
// once. Selection is a pure function of Hash(key) and the fraction.
func (e *Engine[K, V]) shadowWantedLocked(k K, err error) bool {
	f := e.opts.ShadowFraction
	if f <= 0 || err != nil || e.shadowDone[k] {
		return false
	}
	if f < 1 && float64(e.opts.Hash(k))/float64(1<<32) >= f {
		return false
	}
	e.shadowDone[k] = true
	return true
}

// shadowCheck recomputes k from scratch and byte-compares the canonical
// encodings, recording a Divergence on mismatch. The cached value is
// never replaced: the engine detects divergence, it does not adjudicate
// which side is right.
func (e *Engine[K, V]) shadowCheck(k K, stored V) {
	recomputed, err := e.compute(k)
	a, aerr := e.opts.Encode(stored)
	var b []byte
	var berr error
	if err == nil {
		b, berr = e.opts.Encode(recomputed)
	}
	match := err == nil && aerr == nil && berr == nil && bytes.Equal(a, b)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.ShadowChecked++
	if match {
		return
	}
	e.stats.ShadowDiverged++
	d := Divergence[K]{Key: k, Stored: string(a)}
	switch {
	case err != nil:
		d.Recomputed = "recompute error: " + err.Error()
	case berr != nil:
		d.Recomputed = "encode error: " + berr.Error()
	default:
		d.Recomputed = string(b)
	}
	e.divergences = append(e.divergences, d)
}

// Preload seeds the memo from persisted entries (a prior run's
// Entries). Keys already computed this run keep their fresh result;
// preloaded entries join the cache as ordinary hits-to-be and are
// eligible for shadow re-verification like any other cached value.
func (e *Engine[K, V]) Preload(entries []Entry[K, V]) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range entries {
		if _, ok := e.results[ent.Key]; ok {
			continue
		}
		if _, ok := e.inflight[ent.Key]; ok {
			continue
		}
		e.results[ent.Key] = result[V]{val: ent.Val}
		e.stats.Preloaded++
	}
}

// Entries returns every successful memo entry in canonical key order —
// the persistable image of the cache. Errored keys are excluded: they
// are retried, not replayed, on the next run.
func (e *Engine[K, V]) Entries() []Entry[K, V] {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Entry[K, V], 0, len(e.results))
	//lint:ignore maporder entries are collected in any order and then sorted canonically below; generic keys cannot use detmap
	for k, r := range e.results {
		if r.err == nil {
			out = append(out, Entry[K, V]{Key: k, Val: r.val})
		}
	}
	slices.SortFunc(out, func(a, b Entry[K, V]) int { return e.opts.Compare(a.Key, b.Key) })
	return out
}

// Divergences returns the failed shadow re-verifications in canonical
// key order.
func (e *Engine[K, V]) Divergences() []Divergence[K] {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Divergence[K], len(e.divergences))
	copy(out, e.divergences)
	slices.SortFunc(out, func(a, b Divergence[K]) int { return e.opts.Compare(a.Key, b.Key) })
	return out
}

// prefetchJob is one unit of Prefetch pool work: either a computation
// or a shadow re-verification of a cache hit.
type prefetchJob[K comparable, V any] struct {
	k      K
	shadow bool
	stored V
}

// Prefetch computes every key in keys across the worker pool. Keys are
// deduplicated and sorted canonically before dispatch, and results are
// committed in that same order regardless of completion order, so the
// engine's observable state after a batch is independent of scheduling.
// Keys already computed count as hits (and may be shadow re-verified in
// the same pool); keys being computed by another caller are joined. It
// returns the first error in canonical key order (the same error a
// later Get of that key will return).
//
// If Interrupt fires mid-batch, in-flight computations finish and
// commit, remaining keys are skipped, and Prefetch reports
// ErrInterrupted; the skipped keys stay uncomputed and un-memoized.
func (e *Engine[K, V]) Prefetch(keys []K) error {
	return e.PrefetchUntil(keys, nil)
}

// PrefetchUntil is Prefetch with a per-batch stop channel: closing stop
// drains this batch the same way Interrupt drains the whole engine —
// in-flight computations finish and commit, undispatched keys are
// skipped and stay uncomputed, and the call reports ErrInterrupted. The
// memo cache is never poisoned by a cancelled batch: everything
// committed is a complete, correct window, and everything skipped is
// absent (not an error entry), so a later batch computes it normally.
// Other callers' batches keep running; this is the building block for
// per-request deadlines layered over a shared engine. A nil stop never
// fires.
func (e *Engine[K, V]) PrefetchUntil(keys []K, stop <-chan struct{}) error {
	e.mu.Lock()
	e.stats.BatchRequested += len(keys)
	uniq := make([]K, len(keys))
	copy(uniq, keys)
	slices.SortFunc(uniq, e.opts.Compare)
	uniq = slices.CompactFunc(uniq, func(a, b K) bool { return e.opts.Compare(a, b) == 0 })
	e.stats.BatchDeduped += len(keys) - len(uniq)

	// Partition: already-memoized keys are hits; keys some other caller
	// is computing are joined after the pool drains; the rest are ours.
	var joins []*call[V]
	var work []prefetchJob[K, V]
	calls := make(map[K]*call[V], len(uniq))
	errs := make(map[K]error, len(uniq))
	for _, k := range uniq {
		if r, ok := e.results[k]; ok {
			e.stats.Hits++
			errs[k] = r.err
			if e.shadowWantedLocked(k, r.err) {
				work = append(work, prefetchJob[K, V]{k: k, shadow: true, stored: r.val})
			}
			continue
		}
		if c, ok := e.inflight[k]; ok {
			e.stats.Joins++
			joins = append(joins, c)
			calls[k] = c
			continue
		}
		c := &call[V]{done: make(chan struct{})}
		e.inflight[k] = c
		calls[k] = c
		work = append(work, prefetchJob[K, V]{k: k})
	}
	e.mu.Unlock()

	// Bounded fan-out; dispatch in canonical order (compute jobs and
	// shadow checks interleaved as the key order fell). Completion order
	// is scheduling-dependent, which is why the commit below re-walks
	// work in its canonical order instead.
	jobs := make(chan prefetchJob[K, V])
	var wg sync.WaitGroup
	workers := min(e.opts.Workers, len(work))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if j.shadow {
					e.shadowCheck(j.k, j.stored)
					continue
				}
				e.run(j.k, calls[j.k])
			}
		}()
	}
	var skipped []K
dispatch:
	for i, j := range work {
		select {
		case jobs <- j:
		case <-e.stop:
			for _, rest := range work[i:] {
				if !rest.shadow {
					skipped = append(skipped, rest.k)
				}
			}
			break dispatch
		case <-stop:
			for _, rest := range work[i:] {
				if !rest.shadow {
					skipped = append(skipped, rest.k)
				}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	e.mu.Lock()
	skippedSet := make(map[K]bool, len(skipped))
	for _, k := range skipped {
		// A skipped key is released, not memoized: its call resolves with
		// ErrInterrupted for any joiner, and the key stays uncomputed so a
		// later run can compute it for real.
		skippedSet[k] = true
		c := calls[k]
		c.err = ErrInterrupted
		close(c.done)
		delete(e.inflight, k)
	}
	for _, j := range work {
		if j.shadow || skippedSet[j.k] {
			continue
		}
		e.commit(j.k, calls[j.k])
	}
	e.mu.Unlock()

	// Joined calls are owned by other batches; wait for them under the
	// same stop signals as dispatch. Abandoning a join on stop is safe —
	// the owning batch still commits or releases it — but we must not
	// read its err without the close(done) happened-before, so return
	// immediately instead of falling through to the error tail.
	for _, c := range joins {
		select {
		case <-c.done:
		case <-e.stop:
			return ErrInterrupted
		case <-stop:
			return ErrInterrupted
		}
	}

	// First error in canonical key order, from whichever path produced
	// the key's result (memo hit, joined call, or our own pool).
	for _, k := range uniq {
		err := errs[k]
		if c, ok := calls[k]; ok {
			err = c.err
		}
		if err == nil {
			continue
		}
		if errors.Is(err, ErrInterrupted) {
			return ErrInterrupted
		}
		return fmt.Errorf("runsched: %w", err)
	}
	return nil
}

// Cached returns the memoized value for k without computing anything.
// The bool reports whether k has been committed.
func (e *Engine[K, V]) Cached(k K) (V, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.results[k]
	return r.val, r.err
}

// Has reports whether k has been committed.
func (e *Engine[K, V]) Has(k K) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.results[k]
	return ok
}

// Stats returns a snapshot of the counters.
func (e *Engine[K, V]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Records returns the per-run entries in canonical key order. The set
// of records — and, with a deterministic clock, their contents — is
// identical for any worker count.
func (e *Engine[K, V]) Records() []Record[K] {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Record[K], len(e.records))
	copy(out, e.records)
	slices.SortFunc(out, func(a, b Record[K]) int { return e.opts.Compare(a.Key, b.Key) })
	return out
}
