package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over map values in model code
// (internal/ packages). Go randomizes map iteration order per run, so
// any map iteration that feeds results, statistics or output ordering
// makes reruns non-reproducible. The deterministic pattern is to
// collect the keys into a slice, sort it, and range over the slice;
// iterations whose body is provably order-independent (pure commutative
// accumulation, draining into another map) may instead carry a reasoned
// //lint:ignore maporder directive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map in model code: iteration order is randomized per run",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !p.InModelCode() {
		return
	}
	p.inspectAll(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if isKeyCollectionLoop(rs) {
			return true
		}
		p.Reportf(rs.Pos(), "iteration over map %s is order-randomized; sort the keys first (see internal/detmap) or justify with //lint:ignore maporder", types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)))
		return true
	})
}

// isKeyCollectionLoop recognizes the first half of the sanctioned
// deterministic-iteration pattern,
//
//	for k := range m { keys = append(keys, k) }
//
// whose body only gathers the keys into a slice (to be sorted before
// any order-dependent use). Such a loop is order-independent by
// construction and is not flagged.
func isKeyCollectionLoop(rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		if id, ok := rs.Value.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
