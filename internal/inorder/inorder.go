// Package inorder models the paper's trailing checker core (§2): a
// simple in-order pipeline that re-executes the committed instruction
// stream of the leading core. Three properties make it both cheap and
// fast (§2.1):
//
//   - it never accesses the data cache: load values arrive through the
//     LVQ;
//   - it has perfect branch prediction: outcomes arrive through the BOQ;
//   - register value prediction (RVP): input operands arrive through the
//     RVQ, so instructions never stall on data dependences — ILP is
//     bounded only by fetch/issue width and functional units.
//
// Because of RVP the checker sustains close to its issue width and can
// therefore run at a fraction of the leading core's frequency (the §3.5
// histogram peaks at 0.6·f; the average is ≈0.45–0.6·f depending on
// workload), which is what gives every pipeline stage its conservative
// timing margin.
//
// The checker performs the actual verification: operand values from the
// RVQ are compared against the trailer's architectural register file and
// the leading core's result is compared against the value implied by the
// verified operands. Any injected corruption — in the leading core's
// results, in the queues, or in the trailer's register file — surfaces
// as a check mismatch here.
package inorder

import (
	"fmt"
	"math/bits"

	"r3d/internal/isa"
)

// Config describes the checker microarchitecture. The paper's checker is
// a full-fledged in-order core with the leading core's functional-unit
// mix (it can run a leading thread itself if needed).
type Config struct {
	Width   int // fetch/issue/commit width
	IntALU  int
	IntMult int
	FPALU   int
	FPMult  int

	// ECCProtectedRF marks the trailer register file as ECC protected —
	// required for recovery (§2): single-bit upsets are corrected,
	// double-bit upsets are detected but not correctable.
	ECCProtectedRF bool
}

// Default returns the checker configuration used throughout the paper's
// evaluation: same widths and FU mix as the leading core.
func Default() Config {
	return Config{Width: 4, IntALU: 4, IntMult: 2, FPALU: 1, FPMult: 1, ECCProtectedRF: true}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if c.Width <= 0 || c.IntALU <= 0 || c.IntMult <= 0 || c.FPALU <= 0 || c.FPMult <= 0 {
		return fmt.Errorf("inorder: non-positive resource count")
	}
	return nil
}

// CheckOutcome classifies the verification result of one instruction.
type CheckOutcome uint8

const (
	// CheckOK means operands and result matched.
	CheckOK CheckOutcome = iota
	// CheckMismatch means the leading core's result disagreed with the
	// checker's computation (leading-core error detected).
	CheckMismatch
	// CheckOperandMismatch means an RVQ operand disagreed with the
	// trailer register file (error in the queues, an earlier undetected
	// result corruption, or a trailer RF upset).
	CheckOperandMismatch
	// CheckUnrecoverable means the mismatch involved a trailer register
	// corrupted beyond single-bit ECC capability — the recovery point
	// itself is damaged (§2's residual failure mode).
	CheckUnrecoverable
)

// Stats accumulates checker activity (consumed by the power model) and
// verification counters.
type Stats struct {
	Cycles      uint64
	Issued      uint64
	IssuedInt   uint64
	IssuedFP    uint64
	IssuedMem   uint64
	FUStalls    uint64 // issue slots lost to functional-unit conflicts
	EmptyCycles uint64

	Checked           uint64
	ResultMismatches  uint64
	OperandMismatches uint64
	ECCCorrected      uint64
}

// IPC returns issued instructions per checker cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// Checker is one trailing-core instance.
type Checker struct {
	cfg   Config
	stats Stats

	// rf is the trailer's architectural register file — the recovery
	// point of the whole reliable processor. eccBad tracks, per
	// register, how many flipped bits ECC would see.
	rf     [isa.NumRegs]uint64
	eccBad [isa.NumRegs]uint8
}

// New builds a checker; it panics on invalid configuration.
func New(cfg Config) *Checker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Checker{cfg: cfg}
}

// Stats returns a copy of the counters.
func (c *Checker) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, keeping architectural state.
func (c *Checker) ResetStats() { c.stats = Stats{} }

// Config returns the checker configuration.
func (c *Checker) Config() Config { return c.cfg }

// RegisterFile returns the current value of register r (after ECC
// correction if applicable) — used by recovery.
func (c *Checker) RegisterFile(r isa.Reg) uint64 { return c.rf[r] }

// CorruptRF flips `bitCount` bits of register r, modeling a particle
// strike or timing error in the trailer register file. ECC corrects a
// single flipped bit on the next read; more than one is unrecoverable.
func (c *Checker) CorruptRF(r isa.Reg, bitCount int) {
	for i := 0; i < bitCount && i < 64; i++ {
		c.rf[r] ^= 1 << uint(i*7%64)
	}
	c.eccBad[r] += uint8(bitCount)
}

// Entry is one RVQ entry as seen by the checker: the ground-truth
// instruction (what the trailer's own execution produces) alongside the
// values actually transmitted by the leading core, which fault injection
// may have corrupted anywhere between the leading core's datapath and
// the queues.
type Entry struct {
	Inst isa.Inst
	// LeadValue is the result as produced by the leading core and
	// carried in the RVQ.
	LeadValue uint64
	// LeadSrc1, LeadSrc2 are the RVP operand copies carried in the RVQ.
	LeadSrc1, LeadSrc2 uint64
}

// MakeEntry wraps a committed instruction into an uncorrupted Entry.
func MakeEntry(in isa.Inst) Entry {
	return Entry{Inst: in, LeadValue: in.Value, LeadSrc1: in.Src1Val, LeadSrc2: in.Src2Val}
}

// Step executes one checker cycle over the pending committed-instruction
// window `next` (oldest first). It returns how many instructions were
// issued+checked this cycle; per-instruction outcomes are written into
// the caller's outcomes buffer, which must be at least Width long.
//
// In-order issue with RVP: instructions issue strictly in order, stall
// only on structural hazards, and never on data dependences.
func (c *Checker) Step(next []Entry, outcomes []CheckOutcome) int {
	c.stats.Cycles++
	if len(next) == 0 {
		c.stats.EmptyCycles++
		return 0
	}
	alu, mul, fpa, fpm := c.cfg.IntALU, c.cfg.IntMult, c.cfg.FPALU, c.cfg.FPMult
	n := 0
	for n < c.cfg.Width && n < len(next) {
		in := &next[n].Inst
		switch in.Op {
		case isa.IntALU, isa.BranchCond, isa.BranchUncond, isa.Load, isa.Store:
			if alu == 0 {
				c.stats.FUStalls++
				goto done
			}
			alu--
		case isa.IntMult:
			if mul == 0 {
				c.stats.FUStalls++
				goto done
			}
			mul--
		case isa.FPALU:
			if fpa == 0 {
				c.stats.FUStalls++
				goto done
			}
			fpa--
		case isa.FPMult:
			if fpm == 0 {
				c.stats.FUStalls++
				goto done
			}
			fpm--
		}
		outcomes[n] = c.check(&next[n])
		n++
	}
done:
	c.stats.Issued += uint64(n)
	return n
}

// check verifies one instruction against the trailer register file and
// updates architectural state. The comparison order mirrors §2.1: the
// RVP operand copies are verified against the trailer RF first; if they
// check out, the trailer's own computation (ground truth — loads take
// their value from the ECC-protected LVQ) is compared with the result
// the leading core transmitted.
func (c *Checker) check(e *Entry) CheckOutcome {
	in := &e.Inst
	c.stats.Checked++
	switch {
	case in.Op.IsMem():
		c.stats.IssuedMem++
	case in.Op.IsFP():
		c.stats.IssuedFP++
	default:
		c.stats.IssuedInt++
	}

	ok1 := c.verifyOperand(in.Src1, e.LeadSrc1)
	ok2 := in.Op.IsBranch() || c.verifyOperand(in.Src2, e.LeadSrc2)
	if !ok1 || !ok2 {
		c.stats.OperandMismatches++
		outcome := CheckOperandMismatch
		// Classify before resynchronizing: a mismatch on a register
		// whose ECC state shows damage beyond one bit means the
		// recovery point itself is corrupt.
		if (!ok1 && c.beyondECC(in.Src1)) || (!ok2 && c.beyondECC(in.Src2)) {
			outcome = CheckUnrecoverable
		}
		// Post-detection resynchronization: recovery reconciles the two
		// cores' views of this register, so the disagreement is flagged
		// exactly once rather than on every subsequent read.
		if !ok1 && !in.Src1.IsZero() {
			c.rf[in.Src1] = e.LeadSrc1
			c.eccBad[in.Src1] = 0
		}
		if !ok2 && !in.Src2.IsZero() {
			c.rf[in.Src2] = e.LeadSrc2
			c.eccBad[in.Src2] = 0
		}
		return outcome
	}

	outcome := CheckOK
	if in.HasDest() {
		truth := in.Value
		if e.LeadValue != truth {
			c.stats.ResultMismatches++
			outcome = CheckMismatch
		}
		// The trailer writes its own (correct) result regardless — this
		// is exactly why its register file is the recovery point.
		if !in.Dest.IsZero() {
			c.rf[in.Dest] = truth
			c.eccBad[in.Dest] = 0
		}
	}
	return outcome
}

// verifyOperand compares a passed operand value with the trailer RF,
// applying ECC semantics on the RF side: a single-bit upset is corrected
// transparently; multi-bit upsets leave the mismatch standing.
func (c *Checker) verifyOperand(r isa.Reg, passed uint64) bool {
	if r.IsZero() {
		return true
	}
	have := c.rf[r]
	if have == passed {
		return true
	}
	if c.cfg.ECCProtectedRF && c.eccBad[r] > 0 && bits.OnesCount64(have^passed) == 1 {
		// ECC corrects the single flipped bit in the RF.
		c.rf[r] = passed
		c.eccBad[r] = 0
		c.stats.ECCCorrected++
		return true
	}
	return false
}

// beyondECC reports whether register r currently holds damage ECC
// cannot repair: two or more flipped bits with ECC, or any flip without.
func (c *Checker) beyondECC(r isa.Reg) bool {
	if r.IsZero() {
		return false
	}
	if c.cfg.ECCProtectedRF {
		return c.eccBad[r] >= 2
	}
	return c.eccBad[r] >= 1
}

// UnrecoverableRF reports whether any trailer register currently holds a
// corruption beyond single-bit ECC capability. If an error is detected
// while this is true, recovery from the trailer RF cannot be trusted —
// the multi-bit-upset scenario of §3.5 that motivates conservative
// margins and the older-process checker die.
func (c *Checker) UnrecoverableRF() bool {
	for r := range c.eccBad {
		if c.beyondECC(isa.Reg(r)) {
			return true
		}
	}
	return false
}
