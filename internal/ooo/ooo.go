// Package ooo is a trace-driven, cycle-level model of the paper's
// out-of-order leading core (Table 1): 4-wide fetch/dispatch/commit, an
// 80-entry reorder buffer, 20/15-entry integer/FP issue queues, a
// 40-entry load/store queue, 4 integer ALUs, 2 integer multipliers, one
// FP ALU and one FP multiplier, a combined branch predictor with a
// 16K-set 2-way BTB and a 12-cycle misprediction redirect, 32 KB 2-way
// L1 caches (2-cycle D-cache) and a NUCA L2 with a 300-cycle memory
// behind it.
//
// The model executes the correct-path instruction stream produced by
// package trace. Branch mispredictions stall fetch until the branch
// resolves plus the redirect latency — the standard trace-driven
// approximation, which captures the timing cost of speculation without
// simulating wrong-path instructions.
package ooo

import (
	"fmt"

	"r3d/internal/bpred"
	"r3d/internal/cache"
	"r3d/internal/isa"
	"r3d/internal/nuca"
)

// Config holds the microarchitectural parameters (defaults in Default).
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int
	IFQSize       int
	ROBSize       int
	IQInt         int
	IQFP          int
	LSQSize       int

	IntALU  int
	IntMult int
	FPALU   int
	FPMult  int
	// LoadPorts/StorePorts bound memory issue per cycle; Table 4's via
	// budget implies two of each.
	LoadPorts  int
	StorePorts int

	// MispredictRedirect is the front-end redirect latency after a
	// mispredicted branch resolves (Table 1: 12 cycles).
	MispredictRedirect int

	// MemLatencyCycles is the first-chunk memory latency in core cycles
	// (Table 1: 300 cycles at 2 GHz; a frequency-scaled core sees
	// proportionally fewer cycles because the wall-clock latency is
	// unchanged, which is why the §3.3 thermal-constrained performance
	// loss is smaller than the frequency reduction).
	MemLatencyCycles int

	// TLBMissPenalty is the fill latency for I/D TLB misses.
	TLBMissPenalty int
}

// Default returns the Table 1 configuration.
func Default() Config {
	return Config{
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		IFQSize:       32,
		ROBSize:       80,
		IQInt:         20,
		IQFP:          15,
		LSQSize:       40,
		IntALU:        4,
		IntMult:       2,
		FPALU:         1,
		FPMult:        1,
		LoadPorts:     2,
		StorePorts:    2,

		MispredictRedirect: bpred.MispredictLatency,
		MemLatencyCycles:   nuca.MemoryLatency,
		TLBMissPenalty:     30,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("ooo: non-positive width")
	}
	if c.ROBSize <= 0 || c.IFQSize <= 0 || c.LSQSize <= 0 || c.IQInt <= 0 || c.IQFP <= 0 {
		return fmt.Errorf("ooo: non-positive queue size")
	}
	if c.IntALU <= 0 || c.LoadPorts <= 0 || c.StorePorts <= 0 {
		return fmt.Errorf("ooo: non-positive functional unit count")
	}
	if c.MemLatencyCycles < 0 || c.MispredictRedirect < 0 {
		return fmt.Errorf("ooo: negative latency")
	}
	return nil
}

// Activity counts microarchitectural events, consumed by the power model
// (accesses drive Wattch-style dynamic power with cc3 clock gating).
type Activity struct {
	Cycles         uint64
	Fetched        uint64
	Dispatched     uint64
	IssuedInt      uint64
	IssuedFP       uint64
	IssuedMem      uint64
	Committed      uint64
	BpredLookups   uint64
	ICacheAccesses uint64
	DCacheAccesses uint64
	L2Accesses     uint64
	RegReads       uint64
	RegWrites      uint64
}

// Stats is the result of a simulation window.
type Stats struct {
	Activity Activity

	Instructions uint64
	Mispredicts  uint64
	L1IMisses    uint64
	L1DMisses    uint64
	L2Misses     uint64
	L2HitLatSum  uint64
	L2Hits       uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Activity.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Activity.Cycles)
}

// L2MissesPer10k returns L2 misses per 10k committed instructions (the
// §3.3 metric: suite average 1.43 at 6 MB, 1.25 at 15 MB).
func (s Stats) L2MissesPer10k() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.Instructions) * 1e4
}

// MeanL2HitLatency returns the average observed L2 hit latency.
func (s Stats) MeanL2HitLatency() float64 {
	if s.L2Hits == 0 {
		return 0
	}
	return float64(s.L2HitLatSum) / float64(s.L2Hits)
}

const (
	stateWaiting = iota // in ROB, operands not ready
	stateIssued         // executing
	stateDone           // complete, awaiting commit
)

type robEntry struct {
	inst     isa.Inst
	state    uint8
	mispred  bool
	fp       bool
	complete uint64 // cycle at which result is available
	// deps identify producers by ROB index *and* sequence number; a
	// mismatch means the producer already committed (its slot may have
	// been reused by a younger instruction) and the operand is ready.
	dep1, dep2       int // ROB index, -1 if ready at dispatch
	dep1Seq, dep2Seq uint64
}

// InstSource supplies the committed-order instruction stream.
type InstSource interface {
	Next() isa.Inst
}

// Core is one out-of-order core instance.
type Core struct {
	cfg  Config
	src  InstSource
	pred *bpred.Predictor
	btb  *bpred.BTB
	l1i  *cache.Cache
	l1d  *cache.Cache
	itlb *cache.TLB
	dtlb *cache.TLB
	l2   *nuca.Cache

	cycle uint64
	stats Stats

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	ifq        []isa.Inst
	ifqMispred []bool
	ifqHead    int
	ifqTail    int
	ifqCount   int

	// lastWriter maps a register to the ROB index of its in-flight
	// producer, or -1 when the architectural value is ready.
	lastWriter [isa.NumRegs]int

	// fetchStallUntil blocks fetch until the given cycle (mispredict
	// redirect or I-cache miss).
	fetchStallUntil uint64
	// iqInt/iqFP/lsq track occupancy of the scheduling structures.
	iqInt, iqFP, lsq int

	// done marks that the instruction budget was consumed by fetch.
	fetchBudget uint64
	fetchedTot  uint64

	committedBuf []isa.Inst
}

// New builds a core over the given instruction source and L2. The L2 is
// passed in (rather than constructed) because the paper's models differ
// only in L2 organization and because the RMT system shares it.
func New(cfg Config, src InstSource, l2 *nuca.Cache) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:          cfg,
		src:          src,
		pred:         bpred.New(),
		btb:          bpred.NewBTB(),
		l1i:          cache.New(cache.L1I),
		l1d:          cache.New(cache.L1D),
		itlb:         cache.NewTLB("ITLB"),
		dtlb:         cache.NewTLB("DTLB"),
		l2:           l2,
		rob:          make([]robEntry, cfg.ROBSize),
		ifq:          make([]isa.Inst, cfg.IFQSize),
		ifqMispred:   make([]bool, cfg.IFQSize),
		fetchBudget:  ^uint64(0),
		committedBuf: make([]isa.Inst, 0, cfg.CommitWidth),
	}
	for i := range c.lastWriter {
		c.lastWriter[i] = -1
	}
	return c, nil
}

// Stats returns a copy of the statistics so far.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics while preserving microarchitectural
// state (caches, predictor, in-flight instructions). Experiments use it
// to discard warmup windows, mirroring the paper's use of Simpoint
// windows rather than whole-program runs.
func (c *Core) ResetStats() { c.stats = Stats{} }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// L2 returns the core's L2 cache.
func (c *Core) L2() *nuca.Cache { return c.l2 }

// PredictorStats returns branch predictor statistics.
func (c *Core) PredictorStats() bpred.PredStats { return c.pred.Stats() }

// L1DStats returns the data-cache statistics.
func (c *Core) L1DStats() cache.Stats { return c.l1d.Stats() }

// SetFetchBudget bounds the total number of instructions fetched; after
// the budget is exhausted the pipeline drains.
func (c *Core) SetFetchBudget(n uint64) { c.fetchBudget = n }

// Drained reports whether the fetch budget is exhausted and the pipeline
// is empty.
func (c *Core) Drained() bool {
	return c.fetchedTot >= c.fetchBudget && c.robCount == 0 && c.ifqCount == 0
}

// Step advances the core one cycle, committing at most commitBudget
// instructions (the RMT coupler uses this to model leading-thread stalls
// when the RVQ or StB is full). The returned slice is valid until the
// next call.
func (c *Core) Step(commitBudget int) []isa.Inst {
	c.cycle++
	c.stats.Activity.Cycles++

	committed := c.commit(commitBudget)
	c.issue()
	c.dispatch()
	c.fetch()
	return committed
}

// Run executes until n instructions commit (or the pipeline drains) and
// returns the statistics.
func (c *Core) Run(n uint64) Stats {
	c.SetFetchBudget(n)
	for c.stats.Instructions < n && !c.Drained() {
		c.Step(c.cfg.CommitWidth)
	}
	return c.stats
}

// --- pipeline stages -------------------------------------------------------

func (c *Core) fetch() {
	if c.cycle < c.fetchStallUntil {
		return
	}
	var lastBlock uint64 = ^uint64(0)
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.ifqCount >= c.cfg.IFQSize || c.fetchedTot >= c.fetchBudget {
			return
		}
		in := c.src.Next()
		c.fetchedTot++
		c.stats.Activity.Fetched++

		// I-cache/ITLB per 64-byte fetch block.
		block := in.PC &^ 63
		if block != lastBlock {
			lastBlock = block
			c.stats.Activity.ICacheAccesses++
			if !c.itlb.Access(in.PC) {
				c.fetchStallUntil = c.cycle + uint64(c.cfg.TLBMissPenalty)
			}
			if hit, _ := c.l1i.Access(in.PC, false); !hit {
				c.stats.L1IMisses++
				lat, miss := c.l2.Access(block, false)
				c.noteL2(lat, miss)
				stall := uint64(lat)
				if miss {
					stall += uint64(c.cfg.MemLatencyCycles)
				}
				c.fetchStallUntil = c.cycle + stall
			}
		}

		// Branch prediction.
		if in.Op == isa.BranchCond {
			c.stats.Activity.BpredLookups++
			predTaken := c.pred.Lookup(in.PC)
			tgt, btbHit := c.btb.Lookup(in.PC)
			effTaken := predTaken && btbHit
			mispred := effTaken != in.Taken || (effTaken && tgt != in.Target)
			c.pred.Update(in.PC, predTaken, in.Taken)
			if in.Taken {
				c.btb.Update(in.PC, in.Target)
			}
			c.pushIFQ(in, mispred)
			if mispred {
				c.stats.Mispredicts++
				// Fetch stalls until the branch resolves; the resolve
				// path adds the redirect latency when the branch issues.
				c.fetchStallUntil = ^uint64(0) >> 1 // released at issue
				return
			}
			if in.Taken {
				// One taken branch per fetch cycle.
				return
			}
			continue
		}
		if in.Op == isa.BranchUncond {
			c.pushIFQ(in, false)
			return
		}
		c.pushIFQ(in, false)
	}
}

func (c *Core) pushIFQ(in isa.Inst, mispred bool) {
	c.ifq[c.ifqTail] = in
	c.ifqMispred[c.ifqTail] = mispred
	c.ifqTail = (c.ifqTail + 1) % c.cfg.IFQSize
	c.ifqCount++
}

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.DispatchWidth && c.ifqCount > 0 && c.robCount < c.cfg.ROBSize; n++ {
		in := c.ifq[c.ifqHead]
		mispred := c.ifqMispred[c.ifqHead]
		fp := in.Op.IsFP()
		// Scheduling-structure occupancy.
		if in.Op.IsMem() {
			if c.lsq >= c.cfg.LSQSize {
				return
			}
		}
		if fp {
			if c.iqFP >= c.cfg.IQFP {
				return
			}
		} else if c.iqInt >= c.cfg.IQInt {
			return
		}

		c.ifqHead = (c.ifqHead + 1) % c.cfg.IFQSize
		c.ifqCount--

		e := &c.rob[c.robTail]
		*e = robEntry{inst: in, state: stateWaiting, mispred: mispred, fp: fp, dep1: -1, dep2: -1}
		if !in.Src1.IsZero() {
			if w := c.lastWriter[in.Src1]; w >= 0 {
				e.dep1, e.dep1Seq = w, c.rob[w].inst.Seq
			}
		}
		if !in.Src2.IsZero() {
			if w := c.lastWriter[in.Src2]; w >= 0 {
				e.dep2, e.dep2Seq = w, c.rob[w].inst.Seq
			}
		}
		if in.HasDest() {
			c.lastWriter[in.Dest] = c.robTail
		}
		c.robTail = (c.robTail + 1) % c.cfg.ROBSize
		c.robCount++

		if in.Op.IsMem() {
			c.lsq++
		}
		if fp {
			c.iqFP++
		} else {
			c.iqInt++
		}
		c.stats.Activity.Dispatched++
		c.stats.Activity.RegReads += 2
	}
}

func (c *Core) ready(e *robEntry) bool {
	return c.depReady(e.dep1, e.dep1Seq) && c.depReady(e.dep2, e.dep2Seq)
}

func (c *Core) depReady(idx int, seq uint64) bool {
	if idx < 0 {
		return true
	}
	p := &c.rob[idx]
	if p.inst.Seq != seq {
		// Producer committed; its slot belongs to a younger instruction.
		return true
	}
	return p.state == stateDone || (p.state == stateIssued && p.complete <= c.cycle)
}

func (c *Core) issue() {
	slots := c.cfg.IssueWidth
	alu, mul, fpa, fpm := c.cfg.IntALU, c.cfg.IntMult, c.cfg.FPALU, c.cfg.FPMult
	loads, stores := c.cfg.LoadPorts, c.cfg.StorePorts

	for n, idx := 0, c.robHead; n < c.robCount; n, idx = n+1, (idx+1)%c.cfg.ROBSize {
		e := &c.rob[idx]
		if e.state == stateIssued && e.complete <= c.cycle {
			// Writeback: release the scheduling-structure entry even
			// when no issue slots remain this cycle.
			e.state = stateDone
			if e.inst.Op.IsMem() {
				c.lsq--
			}
			if e.fp {
				c.iqFP--
			} else {
				c.iqInt--
			}
			continue
		}
		if slots == 0 || e.state != stateWaiting || !c.ready(e) {
			continue
		}
		// Functional unit availability.
		switch e.inst.Op {
		case isa.IntALU, isa.BranchCond, isa.BranchUncond:
			if alu == 0 {
				continue
			}
			alu--
		case isa.IntMult:
			if mul == 0 {
				continue
			}
			mul--
		case isa.FPALU:
			if fpa == 0 {
				continue
			}
			fpa--
		case isa.FPMult:
			if fpm == 0 {
				continue
			}
			fpm--
		case isa.Load:
			if loads == 0 {
				continue
			}
			loads--
		case isa.Store:
			if stores == 0 {
				continue
			}
			stores--
		}
		slots--
		lat := uint64(e.inst.Op.Latency())
		if e.inst.Op == isa.Load {
			lat += c.loadLatency(e.inst.Addr)
			c.stats.Activity.IssuedMem++
		} else if e.inst.Op == isa.Store {
			// Stores complete at issue; the write drains at commit.
			c.stats.Activity.IssuedMem++
		} else if e.fp {
			c.stats.Activity.IssuedFP++
		} else {
			c.stats.Activity.IssuedInt++
		}
		e.state = stateIssued
		e.complete = c.cycle + lat
		if e.inst.HasDest() {
			c.stats.Activity.RegWrites++
		}
		if e.mispred {
			// Redirect the front end after resolution.
			c.fetchStallUntil = e.complete + uint64(c.cfg.MispredictRedirect)
		}
	}
}

// loadLatency returns the additional cycles beyond address generation
// for a load: 2-cycle L1D hit, plus L2 and memory on misses.
func (c *Core) loadLatency(addr uint64) uint64 {
	c.stats.Activity.DCacheAccesses++
	var extra uint64
	if !c.dtlb.Access(addr) {
		extra = uint64(c.cfg.TLBMissPenalty)
	}
	hit, _ := c.l1d.Access(addr, false)
	if hit {
		return extra + uint64(cache.L1D.LatencyCycles)
	}
	c.stats.L1DMisses++
	lat, miss := c.l2.Access(addr, false)
	c.noteL2(lat, miss)
	total := extra + uint64(cache.L1D.LatencyCycles+lat)
	if miss {
		total += uint64(c.cfg.MemLatencyCycles)
	}
	return total
}

func (c *Core) noteL2(lat int, miss bool) {
	c.stats.Activity.L2Accesses++
	if miss {
		c.stats.L2Misses++
	} else {
		c.stats.L2Hits++
		c.stats.L2HitLatSum += uint64(lat)
	}
}

func (c *Core) commit(budget int) []isa.Inst {
	c.committedBuf = c.committedBuf[:0]
	if budget > c.cfg.CommitWidth {
		budget = c.cfg.CommitWidth
	}
	for n := 0; n < budget && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.state == stateIssued && e.complete <= c.cycle {
			e.state = stateDone
			if e.inst.Op.IsMem() {
				c.lsq--
			}
			if e.fp {
				c.iqFP--
			} else {
				c.iqInt--
			}
		}
		if e.state != stateDone {
			break
		}
		// Stores write the cache at commit (the leading core commits
		// stores to the store buffer; the architectural write happens
		// after checking, but the cache-timing effect is modeled here).
		if e.inst.Op == isa.Store {
			c.stats.Activity.DCacheAccesses++
			c.dtlb.Access(e.inst.Addr) // fill charged, commit not stalled
			if hit, _ := c.l1d.Access(e.inst.Addr, true); !hit {
				c.stats.L1DMisses++
				lat, miss := c.l2.Access(e.inst.Addr, true)
				c.noteL2(lat, miss)
			}
		}
		// Clear register mapping if this entry is still the last writer.
		if e.inst.HasDest() && c.lastWriter[e.inst.Dest] == c.robHead {
			c.lastWriter[e.inst.Dest] = -1
		}
		c.committedBuf = append(c.committedBuf, e.inst)
		c.robHead = (c.robHead + 1) % c.cfg.ROBSize
		c.robCount--
		c.stats.Instructions++
		c.stats.Activity.Committed++
	}
	return c.committedBuf
}
