package lint

import (
	"go/token"
	"strings"
	"testing"
)

func testFinding(file string, line int, check, msg string) Finding {
	return Finding{
		Check:   check,
		Pos:     token.Position{Filename: file, Line: line, Column: 2},
		Message: msg,
	}
}

func TestBaselineMatchIgnoresLineDrift(t *testing.T) {
	root := "/mod"
	accepted := ToJSON(root, []Finding{testFinding("/mod/a/f.go", 10, "maporder", "m")})
	b := NewBaseline(accepted)
	// The same finding moved 30 lines down still matches.
	regressions, stale := b.Apply(root, []Finding{testFinding("/mod/a/f.go", 40, "maporder", "m")})
	if len(regressions) != 0 || len(stale) != 0 {
		t.Errorf("regressions=%v stale=%v, want the drifted finding matched", regressions, stale)
	}
}

func TestBaselineCountsDuplicates(t *testing.T) {
	root := "/mod"
	f := testFinding("/mod/a/f.go", 10, "maporder", "m")
	b := NewBaseline(ToJSON(root, []Finding{f}))
	// Two identical findings against one baseline entry: one regression.
	regressions, _ := b.Apply(root, []Finding{f, testFinding("/mod/a/f.go", 20, "maporder", "m")})
	if len(regressions) != 1 {
		t.Fatalf("%d regressions, want 1 (count semantics)", len(regressions))
	}
}

func TestBaselineReportsStale(t *testing.T) {
	root := "/mod"
	b := NewBaseline(ToJSON(root, []Finding{
		testFinding("/mod/a/f.go", 10, "maporder", "still here"),
		testFinding("/mod/b/g.go", 5, "errdrop", "gone"),
	}))
	regressions, stale := b.Apply(root, []Finding{testFinding("/mod/a/f.go", 10, "maporder", "still here")})
	if len(regressions) != 0 {
		t.Errorf("unexpected regressions: %v", regressions)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "b/g.go") || !strings.Contains(stale[0], "(×1)") {
		t.Errorf("stale = %v, want the unmatched entry with its count", stale)
	}
}

func TestMarshalJSONIsByteStable(t *testing.T) {
	root := "/mod"
	fs := []Finding{
		testFinding("/mod/a/f.go", 10, "maporder", "m"),
		testFinding("/mod/b/g.go", 5, "errdrop", "e"),
	}
	first, err := MarshalJSON(root, fs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := MarshalJSON(root, fs)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("MarshalJSON output differs across identical inputs")
	}
	if !strings.HasSuffix(string(first), "\n") {
		t.Error("MarshalJSON output should end with a newline")
	}
	if strings.Contains(string(first), "/mod/") {
		t.Error("JSON filenames should be root-relative")
	}
}

func TestRelativizeLeavesOutsidePathsAlone(t *testing.T) {
	f := testFinding("/elsewhere/f.go", 1, "maporder", "m")
	if got := Relativize("/mod", f); got.Pos.Filename != "/elsewhere/f.go" {
		t.Errorf("filename %q, want the absolute path kept", got.Pos.Filename)
	}
}
