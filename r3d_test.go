package r3d

import "testing"

func TestBenchmarks(t *testing.T) {
	names := Benchmarks()
	if len(names) != 19 {
		t.Fatalf("got %d benchmarks, want 19", len(names))
	}
}

func TestRunBenchmark(t *testing.T) {
	r, err := RunBenchmark("gzip", L2Org2DA, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 50000 || r.IPC <= 0 {
		t.Errorf("implausible result: %+v", r)
	}
	if _, err := RunBenchmark("nope", L2Org2DA, 1000, 1); err == nil {
		t.Error("unknown benchmark must error")
	}
	if _, err := RunBenchmark("gzip", "weird", 1000, 1); err == nil {
		t.Error("unknown L2 organization must error")
	}
}

func TestDefaultL2OrgIs2DA(t *testing.T) {
	a, err := RunBenchmark("gzip", "", 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark("gzip", L2Org2DA, 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("empty org must default to 2d-a")
	}
}

func TestRunReliable(t *testing.T) {
	r, err := RunReliable("twolf", L2Org2DA, 50000, 2.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checked == 0 || r.CheckerIPC <= 0 {
		t.Errorf("checker inactive: %+v", r)
	}
	if r.ErrorsDetected != 0 {
		t.Errorf("clean run flagged errors: %d", r.ErrorsDetected)
	}
	if r.MeanCheckerFreqGHz <= 0 || r.MeanCheckerFreqGHz > 2.0 {
		t.Errorf("checker frequency %.2f GHz out of range", r.MeanCheckerFreqGHz)
	}
}

func TestRunInjection(t *testing.T) {
	r, err := RunInjection("gzip", 80000, 65, 100, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.LeadInjected == 0 {
		t.Fatal("no injections at an aggressive rate")
	}
	if r.Coverage < 1 {
		t.Errorf("leading-core error coverage %.2f, want 1.0", r.Coverage)
	}
	if _, err := RunInjection("gzip", 1000, 33, 1, 1, 1); err == nil {
		t.Error("unknown node must error")
	}
}

func TestTechScaling(t *testing.T) {
	dyn, lkg, err := TechScaling(90, 65)
	if err != nil {
		t.Fatal(err)
	}
	if dyn < 2.1 || dyn > 2.3 || lkg < 0.35 || lkg > 0.45 {
		t.Errorf("scaling factors off: dyn %.2f lkg %.2f (paper: 2.21 / 0.40)", dyn, lkg)
	}
	if _, _, err := TechScaling(10, 65); err == nil {
		t.Error("unknown node must error")
	}
}
