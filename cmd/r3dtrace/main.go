// Command r3dtrace captures a workload's instruction window to a binary
// trace file, or inspects an existing capture. Archived traces freeze
// the exact inputs behind a published figure so later simulator versions
// can be diffed against them.
//
//	r3dtrace -bench swim -n 1000000 -o swim.r3dt
//	r3dtrace -inspect swim.r3dt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"r3d/internal/isa"
	"r3d/internal/trace"
)

func main() {
	bench := flag.String("bench", "gzip", "workload to capture")
	n := flag.Uint64("n", 500_000, "instructions to capture")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "", "output file (capture mode)")
	inspect := flag.String("inspect", "", "trace file to summarize")
	flag.Parse()

	switch {
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		//lint:ignore errdrop read-only file; a close failure cannot lose data
		defer f.Close()
		rd, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		summarize(rd)
	case *out != "":
		b, err := trace.ByName(*bench)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		// The capture is only durable once Close succeeds, so its
		// error is checked rather than deferred away.
		werr := trace.WriteTrace(f, trace.MustGenerator(b.Profile, *seed), *n)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("captured %d instructions of %s to %s\n", *n, *bench, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarize(rd *trace.Reader) {
	var counts [isa.NumOpClasses]uint64
	var taken uint64
	for i := uint64(0); i < rd.Count(); i++ {
		in := rd.Next()
		counts[in.Op]++
		if in.Taken {
			taken++
		}
	}
	fmt.Printf("workload %s, %d instructions\n", rd.Name(), rd.Count())
	for c := isa.OpClass(0); c < isa.NumOpClasses; c++ {
		fmt.Printf("  %-12s %6.2f%%\n", c, float64(counts[c])/float64(rd.Count())*100)
	}
	branches := counts[isa.BranchCond] + counts[isa.BranchUncond]
	if branches > 0 {
		fmt.Printf("  taken-branch fraction %.1f%%\n", float64(taken)/float64(branches)*100)
	}
}
