package lint

import "testing"

func TestFloatCmpFlagsExactEquality(t *testing.T) {
	fs := findings(t, FloatCmp, modelPath, `
package fixture

func Same(a, b float64) bool { return a == b }

func Diff(a, b float32) bool { return a != b }
`)
	wantChecks(t, fs, "floatcmp", "floatcmp")
}

func TestFloatCmpAcceptsEpsilonAndIntCompares(t *testing.T) {
	fs := findings(t, FloatCmp, modelPath, `
package fixture

import "math"

func Same(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func Ordered(a, b float64) bool { return a < b }

func Eq(a, b int) bool { return a == b }
`)
	wantChecks(t, fs)
}

func TestFloatCmpExemptsDriverCode(t *testing.T) {
	fs := findings(t, FloatCmp, driverPath, `
package fixture

func Same(a, b float64) bool { return a == b }
`)
	wantChecks(t, fs)
}

func TestFloatCmpSuppressed(t *testing.T) {
	fs := findings(t, FloatCmp, modelPath, `
package fixture

func Unset(scale float64) bool {
	//lint:ignore floatcmp zero-value sentinel, never a computed value
	return scale == 0
}
`)
	wantChecks(t, fs)
}
