package lint

import (
	"go/ast"
)

// GlobalRand flags calls to the top-level math/rand (and math/rand/v2)
// convenience functions anywhere in the module. Those draw from a
// process-global generator whose state is shared across every call
// site, so adding or reordering any draw perturbs every subsequent
// one — and under math/rand/v2 the global source cannot be reseeded at
// all. Simulator components must own a seeded *rand.Rand, the way
// internal/fault and internal/trace already do; constructors such as
// rand.New and rand.NewSource are therefore allowed.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "top-level math/rand call: use a seeded per-component *rand.Rand",
	Run:  runGlobalRand,
}

// globalRandAllowed lists math/rand package-level functions that build
// private generators rather than drawing from the global one.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(p *Pass) {
	p.inspectAll(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name, ok := calleePkgFunc(p.Pkg.Info, call)
		if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
			return true
		}
		if globalRandAllowed[name] {
			return true
		}
		p.Reportf(call.Pos(), "%s.%s draws from the process-global generator; use a seeded per-component *rand.Rand", pkgPath, name)
		return true
	})
}
