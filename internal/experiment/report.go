package experiment

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"r3d/internal/runsched"
)

// RunTiming is the per-window line of an engine report: wall-clock cost
// next to simulated work, so slow windows are attributable.
type RunTiming struct {
	Key       string  `json:"key"`
	WallMS    float64 `json:"wall_ms"`
	SimCycles uint64  `json:"sim_cycles"`
	Err       bool    `json:"err,omitempty"`
}

// EngineReport is the session's observability snapshot: scheduler
// counters plus one timing row per computed window, in completion
// order (which is deterministic for prefetched batches — canonical key
// order — and request order for on-demand windows).
type EngineReport struct {
	Workers int            `json:"workers"`
	Stats   runsched.Stats `json:"stats"`
	Thermal ThermalStats   `json:"thermal"`
	Runs    []RunTiming    `json:"runs"`
}

// EngineReport builds the current report from the run engine's records.
func (s *Session) EngineReport() EngineReport {
	rep := EngineReport{Workers: s.eng.Workers(), Stats: s.eng.Stats(), Thermal: s.ThermalStats()}
	for _, rec := range s.eng.Records() {
		rt := RunTiming{
			Key:    rec.Key.String(),
			WallMS: float64(rec.Nanos) / 1e6,
			Err:    rec.Err,
		}
		if !rec.Err {
			if v, err := s.eng.Cached(rec.Key); err == nil {
				if rec.Key.Kind == KindLeading {
					rt.SimCycles = v.lead.Stats.Activity.Cycles
				} else {
					rt.SimCycles = v.rmt.Lead.Activity.Cycles
				}
			}
		}
		rep.Runs = append(rep.Runs, rt)
	}
	return rep
}

// JSON renders the report as indented JSON.
func (r EngineReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable report: counters, then the slowest
// windows (all of them when ten or fewer).
func (r EngineReport) String() string {
	var b strings.Builder
	st := r.Stats
	fmt.Fprintf(&b, "engine: %d workers, %d computed (%d err), %d cache hits, %d singleflight joins\n",
		r.Workers, st.Computed, st.Errors, st.Hits, st.Joins)
	fmt.Fprintf(&b, "engine: batches requested %d keys, %d deduplicated; compute wall %.1f ms total\n",
		st.BatchRequested, st.BatchDeduped, float64(st.ComputeNanos)/1e6)
	if th := r.Thermal; th.Solves > 0 {
		fmt.Fprintf(&b, "thermal: %d solves, %d snapshot hits, %d joins; %d fine + %d coarse SOR iters\n",
			th.Solves, th.Hits, th.Joins, th.FineIters, th.CoarseIters)
	}
	runs := make([]RunTiming, len(r.Runs))
	copy(runs, r.Runs)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].WallMS > runs[j].WallMS })
	show := len(runs)
	if show > 10 {
		show = 10
		fmt.Fprintf(&b, "engine: slowest %d of %d runs:\n", show, len(runs))
	} else if show > 0 {
		fmt.Fprintf(&b, "engine: %d runs:\n", show)
	}
	var cycles uint64
	for _, rt := range runs {
		cycles += rt.SimCycles
	}
	for _, rt := range runs[:show] {
		status := ""
		if rt.Err {
			status = "  ERR"
		}
		fmt.Fprintf(&b, "  %8.1f ms  %12d cycles  %s%s\n", rt.WallMS, rt.SimCycles, rt.Key, status)
	}
	if len(runs) > 0 {
		fmt.Fprintf(&b, "engine: %d simulated cycles across %d windows\n", cycles, len(runs))
	}
	return b.String()
}
