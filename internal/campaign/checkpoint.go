package campaign

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"r3d/internal/ckpt"
	"r3d/internal/iofault"
)

// Checkpoints snapshot the campaign's aggregate state — every completed
// outcome plus the journal offset they cover — into an atomically
// committed, CRC-guarded ckpt file. The journal remains the record of
// truth; the snapshot is the fast path: restore loads the snapshot and
// replays only the journal suffix written after it, instead of
// re-parsing (or worse, re-running) the whole campaign. A corrupt or
// torn snapshot rolls back to the previous one and replays a longer
// suffix; a snapshot for a different grid or build fails loudly.

const checkpointKind = "campaign-aggregate"

// snapshotMeta is record 0 of every campaign checkpoint.
type snapshotMeta struct {
	// JournalBytes is the journal's committed length when the snapshot
	// was taken: every outcome journaled before this offset is inside
	// the snapshot, so restore replays only what follows it.
	JournalBytes int64 `json:"journal_bytes"`
	Trials       int   `json:"trials"`
}

// snapshotState is a decoded campaign checkpoint.
type snapshotState struct {
	outcomes     []TrialOutcome // ID-sorted
	journalBytes int64
}

// writeCheckpoint commits one snapshot of the aggregate state. outcomes
// may arrive in any order; they are ID-sorted so the snapshot bytes are
// a pure function of the state.
func writeCheckpoint(fsys iofault.FS, path, fingerprint string, outcomes []TrialOutcome, journalBytes int64) error {
	sorted := make([]TrialOutcome, len(outcomes))
	copy(sorted, outcomes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	w := ckpt.NewWriter(ckpt.Meta{Kind: checkpointKind, Fingerprint: fingerprint})
	if err := w.Append(snapshotMeta{JournalBytes: journalBytes, Trials: len(sorted)}); err != nil {
		return err
	}
	for _, out := range sorted {
		if err := w.Append(out); err != nil {
			return err
		}
	}
	return w.CommitTo(fsys, path)
}

// readCheckpoint loads the latest good snapshot at path. Recoverable
// failures — no snapshot yet, or corruption with no good predecessor —
// degrade to a journal-only restore and are reported in notes; an
// intact snapshot for the wrong grid or build is a hard error.
func readCheckpoint(fsys iofault.FS, path, fingerprint string) (*snapshotState, []string, error) {
	snap, note, err := ckpt.LoadLatestFrom(fsys, path, ckpt.Meta{Kind: checkpointKind, Fingerprint: fingerprint})
	var notes []string
	if note != "" {
		notes = append(notes, note)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			notes = append(notes, fmt.Sprintf("campaign: no checkpoint at %s; restoring from the journal alone", path))
			return nil, notes, nil
		}
		var corrupt *ckpt.CorruptError
		if errors.As(err, &corrupt) {
			notes = append(notes, fmt.Sprintf("campaign: %v — no recoverable snapshot; restoring from the journal alone", err))
			return nil, notes, nil
		}
		return nil, notes, err
	}
	if snap.Len() < 1 {
		notes = append(notes, fmt.Sprintf("campaign: checkpoint %s holds no records; restoring from the journal alone", path))
		return nil, notes, nil
	}
	var meta snapshotMeta
	if err := snap.Decode(0, &meta); err != nil {
		return nil, notes, err
	}
	st := &snapshotState{journalBytes: meta.JournalBytes}
	for i := 1; i < snap.Len(); i++ {
		var out TrialOutcome
		if err := snap.Decode(i, &out); err != nil {
			return nil, notes, err
		}
		if out.ID == "" {
			return nil, notes, fmt.Errorf("campaign: checkpoint %s record %d has no trial ID", path, i)
		}
		st.outcomes = append(st.outcomes, out)
	}
	if len(st.outcomes) != meta.Trials {
		return nil, notes, fmt.Errorf("campaign: checkpoint %s declares %d trials but holds %d", path, meta.Trials, len(st.outcomes))
	}
	return st, notes, nil
}
