package lint

import (
	"go/types"
	"strings"
)

// StopFlow enforces cancellation propagation: a function that receives
// a stop/done channel (directly, or as a stop-like channel field of a
// config/options parameter) or a context.Context must propagate it into
// every loop containing an indefinitely blocking operation it
// transitively reaches — the loop must have a select clause receiving
// that signal (any terminating stop-like clause counts: exiting on a
// local timeout or a receiver's drain channel is a deliberate signal
// choice), or forward the signal into the blocking callee as an
// argument. Blocking reached through calls is found by a
// select-coverage fixpoint over the call graph, reusing the blockhold
// blocking-op lattice minus the finite waits (sleeps, local file I/O)
// that a stop signal cannot shorten. Findings land in the function
// holding the obligation: at the uncovered loop, or at the call whose
// callee chain blocks without ever observing the signal. A reasoned
// `//lint:ignore stopflow <reason>` on the loop or call stops
// propagation, dettaint-style.
var StopFlow = &Analyzer{
	Name:      "stopflow",
	Doc:       "stop/done channel or context not propagated into a blocking loop",
	RunModule: runStopFlow,
}

// stopSource is one stop signal a function receives.
type stopSource struct {
	obj   types.Object // the parameter carrying the signal
	field string       // field name when the channel sits in a struct param
	disp  string
	isCtx bool
}

func runStopFlow(mp *ModulePass) {
	prog := buildGoProgram(mp.Pkgs)

	sources := map[*goFacts][]stopSource{}
	for _, n := range prog.nodes {
		sources[n] = stopSourcesOf(n)
	}

	// mayBlock[f] explains why calling f may block indefinitely.
	mayBlock := map[*goFacts]string{}
	for _, n := range prog.nodes {
		if len(n.blocks) > 0 {
			mayBlock[n] = n.name + " → " + n.blocks[0].desc
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if _, ok := mayBlock[n]; ok {
				continue
			}
			for _, c := range n.calls {
				if c.kind != callNormal {
					continue
				}
				for _, callee := range prog.calleeFacts(c) {
					if chain, ok := mayBlock[callee]; ok {
						mayBlock[n] = n.name + " → " + chain
						changed = true
						break
					}
				}
				if _, ok := mayBlock[n]; ok {
					break
				}
			}
		}
	}

	// needsStop[f] explains why f (which receives no stop signal of its
	// own) reaches a blocking loop that observes no stop signal at all.
	// Propagation stops at obligation holders: they get their own
	// findings, and their callers discharge the obligation by passing
	// the signal to them.
	needsStop := map[*goFacts]string{}
	for _, n := range prog.nodes {
		if len(sources[n]) > 0 {
			continue
		}
		for _, l := range n.loops {
			if len(l.stops) > 0 || mp.SuppressedAt(l.pos, "stopflow") {
				continue
			}
			desc, blocks := loopBlockDesc(prog, mayBlock, l, nil)
			if !blocks {
				continue
			}
			needsStop[n] = n.name + " → " + l.desc + " blocking on " + desc
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if _, ok := needsStop[n]; ok {
				continue
			}
			if len(sources[n]) > 0 {
				continue
			}
			for _, c := range n.calls {
				if c.kind != callNormal || mp.SuppressedAt(c.pos, "stopflow") {
					continue
				}
				for _, callee := range prog.calleeFacts(c) {
					if chain, ok := needsStop[callee]; ok {
						needsStop[n] = n.name + " → " + chain
						changed = true
						break
					}
				}
				if _, ok := needsStop[n]; ok {
					break
				}
			}
		}
	}

	// Findings in obligation holders.
	for _, n := range prog.nodes {
		srcs := sources[n]
		if len(srcs) == 0 {
			continue
		}
		for _, l := range n.loops {
			if loopObserves(l, srcs) || mp.SuppressedAt(l.pos, "stopflow") {
				continue
			}
			desc, blocks := loopBlockDesc(prog, mayBlock, l, srcs)
			if !blocks {
				continue
			}
			mp.Reportf(l.pos, "%s blocks (%s) but never selects on %s; propagate the stop signal into the loop",
				l.desc, desc, sourceNames(srcs))
		}
		for _, c := range n.calls {
			if c.kind != callNormal || mp.SuppressedAt(c.pos, "stopflow") {
				continue
			}
			for _, callee := range prog.calleeFacts(c) {
				if chain, ok := needsStop[callee]; ok {
					mp.Reportf(c.pos, "call may reach a blocking loop that never observes %s (%s)",
						sourceNames(srcs), chain)
					break
				}
			}
		}
	}
}

// loopBlockDesc reports whether the loop contains an indefinitely
// blocking operation, directly or through the calls it makes, with a
// description (direct op) or chain (through calls) for the message.
// A call that forwards one of the holder's stop sources as an argument
// discharges the obligation for that call: the callee receives the
// signal, and if it ignores it the callee gets its own finding.
func loopBlockDesc(prog *goProgram, mayBlock map[*goFacts]string, l *goLoop, srcs []stopSource) (string, bool) {
	if len(l.blocks) > 0 {
		return l.blocks[0].desc, true
	}
	for _, c := range l.calls {
		if c.kind != callNormal || forwardsSource(c, srcs) {
			continue
		}
		for _, callee := range prog.calleeFacts(c) {
			if chain, ok := mayBlock[callee]; ok {
				return chain, true
			}
		}
	}
	return "", false
}

// loopObserves reports whether the loop provably exits on a stop
// signal: a select clause receiving one of the function's own stop
// sources, or any terminating stop-like clause — a loop that leaves on
// *some* stop channel has made a deliberate signal choice, even when
// the channel is a local timeout or a receiver field rather than the
// parameter this function was handed.
func loopObserves(l *goLoop, srcs []stopSource) bool {
	for _, sr := range l.stops {
		if sr.terminates {
			return true
		}
		if matchesSource(sr, srcs) {
			return true
		}
	}
	return false
}

// forwardsSource reports whether the call passes one of the stop
// sources (or its stop-like field) to the callee as an argument.
func forwardsSource(c *goCall, srcs []stopSource) bool {
	for _, sr := range c.stopArgs {
		if matchesSource(sr, srcs) {
			return true
		}
	}
	return false
}

// matchesSource reports whether a received/forwarded stop channel is
// rooted in one of the function's stop sources.
func matchesSource(sr stopRecv, srcs []stopSource) bool {
	if sr.root == nil {
		return false
	}
	for _, s := range srcs {
		if sr.root != s.obj {
			continue
		}
		if s.field == "" || s.isCtx || sr.field == s.field {
			return true
		}
	}
	return false
}

// stopSourcesOf derives the stop signals a function receives from its
// parameter list: stop-like channel parameters, context.Context
// parameters, and stop-like channel fields of struct parameters.
func stopSourcesOf(n *goFacts) []stopSource {
	if n.sig == nil {
		return nil
	}
	var out []stopSource
	params := n.sig.Params()
	for i := 0; i < params.Len(); i++ {
		v := params.At(i)
		if v.Name() == "" || v.Name() == "_" {
			continue
		}
		t := v.Type()
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			if stopLikeName(v.Name()) {
				out = append(out, stopSource{obj: v, disp: v.Name()})
			}
			continue
		}
		if isContextType(t) {
			out = append(out, stopSource{obj: v, disp: v.Name() + ".Done()", isCtx: true})
			continue
		}
		st := t
		if ptr, isPtr := st.Underlying().(*types.Pointer); isPtr {
			st = ptr.Elem()
		}
		if s, isStruct := st.Underlying().(*types.Struct); isStruct {
			for j := 0; j < s.NumFields(); j++ {
				f := s.Field(j)
				if _, isChan := f.Type().Underlying().(*types.Chan); isChan && stopLikeName(f.Name()) {
					out = append(out, stopSource{obj: v, field: f.Name(), disp: v.Name() + "." + f.Name()})
				}
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sourceNames renders the function's stop sources for messages.
func sourceNames(srcs []stopSource) string {
	var names []string
	for _, s := range srcs {
		names = append(names, s.disp)
	}
	return strings.Join(names, " or ")
}
