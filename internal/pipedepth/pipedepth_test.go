package pipedepth

import (
	"math"
	"testing"
)

func TestPaperTable5Rows(t *testing.T) {
	rows := PaperTable5()
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Total-(r.Dynamic+r.Leakage)) > 0.04 {
			t.Errorf("row %v: total %.2f ≠ dynamic+leakage %.2f", r.FO4, r.Total, r.Dynamic+r.Leakage)
		}
	}
	if rows[0].Total != 1.30 || rows[3].Total != 3.98 {
		t.Error("anchor totals must match the paper")
	}
}

func TestLeakageMatchesPaper(t *testing.T) {
	m := Default()
	for _, r := range PaperTable5() {
		got, err := m.Leakage(r.FO4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-r.Leakage) > 0.02 {
			t.Errorf("leakage at %v FO4 = %.3f, want %.2f (±0.02)", r.FO4, got, r.Leakage)
		}
	}
}

func TestDynamicMonotoneAndAnchored(t *testing.T) {
	m := Default()
	base, _ := m.Dynamic(18)
	if math.Abs(base-1) > 1e-9 {
		t.Errorf("baseline dynamic %.3f, want 1", base)
	}
	prev := base
	for _, fo4 := range []float64{16, 14, 12, 10, 8, 6, 4} {
		d, err := m.Dynamic(fo4)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Errorf("dynamic power must grow as stages shrink (%.0f FO4)", fo4)
		}
		prev = d
	}
	// The 6 FO4 point must be in the paper's ballpark (3.45 dynamic).
	d6, _ := m.Dynamic(6)
	if d6 < 2.8 || d6 > 4.2 {
		t.Errorf("6 FO4 dynamic %.2f outside Table 5 ballpark", d6)
	}
}

func TestDeepPipelinePowerIsProhibitive(t *testing.T) {
	// §3.5's conclusion: even 14 FO4 costs ≈50% more total power.
	m := Default()
	t14, err := m.Total(14)
	if err != nil {
		t.Fatal(err)
	}
	t18, _ := m.Total(18)
	if t14/t18 < 1.15 {
		t.Errorf("14 FO4 should cost well over the baseline: ratio %.2f", t14/t18)
	}
}

func TestLatchCountErrors(t *testing.T) {
	m := Default()
	if _, err := m.LatchCount(2); err == nil {
		t.Error("FO4 at the latch overhead must error")
	}
	if _, err := m.Dynamic(1); err == nil {
		t.Error("Dynamic must propagate the error")
	}
	if _, err := m.Leakage(1); err == nil {
		t.Error("Leakage must propagate the error")
	}
	if _, err := m.Total(1); err == nil {
		t.Error("Total must propagate the error")
	}
}

func TestSlackFraction(t *testing.T) {
	// A checker at 0.6·f has 18/0.6 = 30 FO4 of period for 18 FO4 of
	// logic: 40% slack.
	got := SlackFraction(18, 30)
	if math.Abs(got-0.4) > 1e-9 {
		t.Errorf("slack = %v, want 0.4", got)
	}
	if SlackFraction(18, 18) != 0 {
		t.Error("no slack at design point")
	}
	if SlackFraction(18, 0) != 0 {
		t.Error("degenerate period must clamp")
	}
}
