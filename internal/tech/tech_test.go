package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.4f)", name, got, want, tol)
	}
}

func TestTable8DynamicScaling(t *testing.T) {
	cases := []struct {
		old, new Node
		dyn      float64
	}{
		{Node90, Node65, 2.21},
		{Node90, Node45, 3.14},
		{Node65, Node45, 1.41},
	}
	for _, c := range cases {
		s, err := ScalePower(c.old, c.new)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, c.old.String()+"/"+c.new.String()+" dynamic", s.Dynamic, c.dyn, 0.02)
	}
}

func TestTable8LeakageScaling(t *testing.T) {
	// The 65/45 paper value (0.99) omits the voltage factor the other two
	// rows include; our model keeps the voltage factor consistently, so
	// the tolerance on that row is wider (paper 0.99, model ~1.09).
	cases := []struct {
		old, new Node
		lkg, tol float64
	}{
		{Node90, Node65, 0.40, 0.01},
		{Node90, Node45, 0.44, 0.01},
		{Node65, Node45, 0.99, 0.11},
	}
	for _, c := range cases {
		s, err := ScalePower(c.old, c.new)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, c.old.String()+"/"+c.new.String()+" leakage", s.Leakage, c.lkg, c.tol)
	}
}

func TestScalePowerUnknownNode(t *testing.T) {
	if _, err := ScalePower(Node(55), Node65); err == nil {
		t.Fatal("expected error for unmodeled node")
	}
	if _, err := ScalePower(Node90, Node(55)); err == nil {
		t.Fatal("expected error for unmodeled node")
	}
}

func TestDelayScale90vs65(t *testing.T) {
	// §4: a 500 ps stage at 65 nm takes 714 ps at 90 nm.
	r, err := DelayScale(Node90, Node65)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "delay ratio 90/65", 500*r, 714, 5)
}

func TestDelayScaleIdentity(t *testing.T) {
	r, err := DelayScale(Node65, Node65)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "identity delay", r, 1.0, 1e-12)
}

func TestAreaScale(t *testing.T) {
	// 90 nm die holds roughly half the transistors of a 65 nm die of the
	// same size: 9 MB of top-die L2 becomes ~5 MB (§4).
	got := 9.0 / AreaScale(Node90, Node65)
	if got < 4.3 || got > 5.5 {
		t.Errorf("9MB at 65nm → %.2f MB at 90nm, want ≈5", got)
	}
}

func TestVariabilityTableMatchesPaper(t *testing.T) {
	want := []Variability{
		{Node80, 26, 41, 55},
		{Node65, 33, 45, 56},
		{Node45, 42, 50, 58},
		{Node32, 58, 57, 59},
	}
	got := VariabilityTable()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestVariabilityMonotone(t *testing.T) {
	rows := VariabilityTable()
	for i := 1; i < len(rows); i++ {
		if rows[i].VthPct <= rows[i-1].VthPct {
			t.Errorf("Vth variability should grow with scaling: %v vs %v", rows[i], rows[i-1])
		}
		if rows[i].CircuitPerfPct <= rows[i-1].CircuitPerfPct {
			t.Errorf("perf variability should grow with scaling")
		}
	}
}

func TestPerBitSERDecreasesWithScaling(t *testing.T) {
	// Figure 8 shape: per-bit SER normalized to 1.0 at 180 nm and
	// decreasing monotonically towards 65 nm.
	nodes := []Node{Node180, Node130, Node90, Node65}
	prev := math.Inf(1)
	for _, n := range nodes {
		s, err := PerBitSER(n)
		if err != nil {
			t.Fatal(err)
		}
		tot := s.Total()
		if tot <= 0 {
			t.Fatalf("%s: non-positive SER %v", n, tot)
		}
		if tot >= prev+1e-12 {
			t.Errorf("%s: per-bit SER %.3f not decreasing (prev %.3f)", n, tot, prev)
		}
		prev = tot
	}
	s180, _ := PerBitSER(Node180)
	approx(t, "180nm normalized total", s180.Total(), 1.0, 1e-9)
}

func TestPerBitSERComponentsPositive(t *testing.T) {
	for _, n := range []Node{Node180, Node130, Node90, Node65, Node45} {
		s, err := PerBitSER(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Neutron <= 0 || s.Alpha <= 0 {
			t.Errorf("%s: components must be positive: %+v", n, s)
		}
	}
}

func TestChipSERIncreasesWithScaling(t *testing.T) {
	// The paper: overall (per-chip) error rate increases with scaling
	// because density outpaces the per-bit improvement.
	nodes := []Node{Node180, Node130, Node90, Node65}
	prev := 0.0
	for _, n := range nodes {
		c, err := ChipSER(n)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("%s: chip SER %.3f not increasing (prev %.3f)", n, c, prev)
		}
		prev = c
	}
}

func TestMBUIncreasesAsQcritShrinks(t *testing.T) {
	m := DefaultMBUModel
	prev := -1.0
	for q := 20.0; q >= 0; q -= 0.5 {
		p := m.Probability(q)
		if p < 0 || p > 1 {
			t.Fatalf("MBU probability out of range: %v at q=%v", p, q)
		}
		if p <= prev {
			t.Fatalf("MBU probability must increase as Qcrit shrinks (q=%v)", q)
		}
		prev = p
	}
}

func TestMBUNegativeChargeClamped(t *testing.T) {
	m := DefaultMBUModel
	if got, want := m.Probability(-5), m.Probability(0); got != want {
		t.Errorf("negative charge should clamp to 0: %v vs %v", got, want)
	}
}

func TestNodeMBUOrdering(t *testing.T) {
	p90, err := NodeMBU(Node90)
	if err != nil {
		t.Fatal(err)
	}
	p65, err := NodeMBU(Node65)
	if err != nil {
		t.Fatal(err)
	}
	p45, err := NodeMBU(Node45)
	if err != nil {
		t.Fatal(err)
	}
	if !(p90 < p65 && p65 < p45) {
		t.Errorf("MBU must grow with scaling: 90=%v 65=%v 45=%v", p90, p65, p45)
	}
}

func TestTimingModelSlackReducesErrors(t *testing.T) {
	tm := TimingModelFor(Node65)
	crit := 500.0
	pTight := tm.ErrorProbability(500, crit) // zero slack
	pLoose := tm.ErrorProbability(833, crit) // 0.6f operation: period = 1/0.6 ×
	pHuge := tm.ErrorProbability(5000, crit) // 0.1f
	if !(pTight > pLoose && pLoose > pHuge) {
		t.Errorf("error probability must fall with slack: %v %v %v", pTight, pLoose, pHuge)
	}
	approx(t, "zero-slack probability", pTight, 0.5, 1e-9)
	if pHuge > 1e-9 {
		t.Errorf("10x slack should make errors negligible, got %v", pHuge)
	}
}

func TestTimingModelOlderProcessLessVariable(t *testing.T) {
	older := TimingModelFor(Node90)
	newer := TimingModelFor(Node45)
	if older.SigmaFrac >= newer.SigmaFrac {
		t.Errorf("older node should have lower variability: %v vs %v", older.SigmaFrac, newer.SigmaFrac)
	}
}

func TestTimingErrorProbabilityProperties(t *testing.T) {
	tm := TimingModelFor(Node65)
	f := func(period, crit uint16) bool {
		p := tm.ErrorProbability(float64(period), float64(crit)+1)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimingErrorMonotoneInPeriod(t *testing.T) {
	tm := TimingModelFor(Node65)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return tm.ErrorProbability(hi, 400) <= tm.ErrorProbability(lo, 400)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustDevicePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	MustDevice(Node(7))
}

func TestDeviceTable7Values(t *testing.T) {
	d90 := MustDevice(Node90)
	if d90.VoltageV != 1.2 || d90.GateLengthNm != 37 || d90.CapPerUm != 8.79e-16 || d90.LeakPerUm != 0.05 {
		t.Errorf("90nm Table 7 mismatch: %+v", d90)
	}
	d65 := MustDevice(Node65)
	if d65.VoltageV != 1.1 || d65.GateLengthNm != 25 || d65.CapPerUm != 6.99e-16 || d65.LeakPerUm != 0.2 {
		t.Errorf("65nm Table 7 mismatch: %+v", d65)
	}
	d45 := MustDevice(Node45)
	if d45.VoltageV != 1.0 || d45.GateLengthNm != 18 || d45.CapPerUm != 8.28e-16 || d45.LeakPerUm != 0.28 {
		t.Errorf("45nm Table 7 mismatch: %+v", d45)
	}
}
