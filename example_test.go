package r3d_test

import (
	"fmt"

	"r3d"
)

// Running a workload on the plain out-of-order leading core.
func ExampleRunBenchmark() {
	res, err := r3d.RunBenchmark("gzip", r3d.L2Org2DA, 100_000, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gzip committed %d instructions\n", res.Instructions)
	// Output: gzip committed 100000 instructions
}

// Running the full reliable processor: the leading core coupled to the
// DFS-throttled in-order checker through the value queues.
func ExampleRunReliable() {
	res, err := r3d.RunReliable("twolf", r3d.L2Org2DA, 100_000, 2.0, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("errors on a clean run: %d\n", res.ErrorsDetected)
	// Output: errors on a clean run: 0
}

// The Table 8 technology-scaling factors used for the 90 nm checker die.
func ExampleTechScaling() {
	dyn, lkg, err := r3d.TechScaling(90, 65)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dynamic x%.2f, leakage x%.2f\n", dyn, lkg)
	// Output: dynamic x2.21, leakage x0.40
}
