package power

import (
	"math"
	"testing"

	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/tech"
	"r3d/internal/trace"
)

func runBench(t *testing.T, name string) (ooo.Stats, *nuca.Cache) {
	t.Helper()
	b, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.MustGenerator(b.Profile, 17)
	l2 := nuca.New(nuca.Config2DA(nuca.DistributedSets))
	c, err := ooo.New(ooo.Default(), g, l2)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(120000)
	c.ResetStats()
	c.SetFetchBudget(^uint64(0))
	for c.Stats().Instructions < 120000 {
		c.Step(4)
	}
	return c.Stats(), l2
}

func TestLeadingCorePowerCalibration(t *testing.T) {
	// Table 2: the leading core averages ≈35 W across SPEC2k. Check a
	// representative mix lands in a sane band around it.
	var total float64
	names := []string{"gzip", "swim", "mesa", "mcf", "vortex"}
	for _, n := range names {
		s, _ := runBench(t, n)
		act := ActivityFromStats(s, ooo.Default())
		p := LeadingCorePower(act, 1, 1).Total()
		if p < 15 || p > 55 {
			t.Errorf("%s: leading core power %.1f W outside sanity band", n, p)
		}
		total += p
	}
	avg := total / float64(len(names))
	if math.Abs(avg-LeadingCoreAvgW) > 9 {
		t.Errorf("mean leading-core power %.1f W, want ≈%v W (Table 2; full-suite windows run hotter)", avg, LeadingCoreAvgW)
	}
}

func TestActivityBounds(t *testing.T) {
	s, _ := runBench(t, "gzip")
	act := ActivityFromStats(s, ooo.Default())
	if len(act) == 0 {
		t.Fatal("no activity derived")
	}
	for u, a := range act {
		if a < 0 || a > 1 {
			t.Errorf("unit %s activity %v outside [0,1]", u, a)
		}
	}
	if ActivityFromStats(ooo.Stats{}, ooo.Default()) == nil {
		t.Error("zero stats must produce an empty map, not nil panic path")
	}
}

func TestIdlePowerIsTurnoffFraction(t *testing.T) {
	p := LeadingCorePower(Activity{}, 1, 1)
	var peak float64
	for _, u := range LeadingUnits() {
		peak += u.PeakW
	}
	if got, want := p.Total(), peak*TurnoffFactor; math.Abs(got-want) > 1e-9 {
		t.Errorf("idle power %.2f, want %.2f (turn-off factor)", got, want)
	}
}

func TestFullActivityIsPeak(t *testing.T) {
	act := Activity{}
	var peak float64
	for _, u := range LeadingUnits() {
		act[u.Name] = 1
		peak += u.PeakW
	}
	if got := LeadingCorePower(act, 1, 1).Total(); math.Abs(got-peak) > 1e-9 {
		t.Errorf("full-activity power %.2f, want peak %.2f", got, peak)
	}
}

func TestFrequencyVoltageScaling(t *testing.T) {
	act := Activity{UnitFetch: 0.5}
	base := LeadingCorePower(act, 1, 1).Total()
	half := LeadingCorePower(act, 0.5, 1).Total()
	if math.Abs(half-base/2) > 1e-9 {
		t.Errorf("frequency scaling not linear: %v vs %v", half, base/2)
	}
	lowV := LeadingCorePower(act, 1, 0.9).Total()
	if math.Abs(lowV-base*0.81) > 1e-9 {
		t.Errorf("voltage scaling not quadratic: %v vs %v", lowV, base*0.81)
	}
}

func TestCheckerModelDFS(t *testing.T) {
	m := NewCheckerModel(CheckerPessimisticW)
	full := m.Power(1, 1)
	if math.Abs(full-15) > 1e-9 {
		t.Errorf("full power %.2f, want 15", full)
	}
	slow := m.Power(0.5, 1)
	if slow >= full {
		t.Error("DFS must reduce power")
	}
	// Leakage floor: even at zero frequency the leakage share remains.
	floor := m.Power(0, 0)
	if math.Abs(floor-15*0.3) > 1e-9 {
		t.Errorf("leakage floor %.2f, want %.2f", floor, 15*0.3)
	}
	if m.Power(-1, -1) != floor {
		t.Error("negative inputs must clamp")
	}
}

func TestCheckerOnOlderNode(t *testing.T) {
	// §4: moving the 15 W checker from 65 nm to 90 nm increases dynamic
	// power (×2.21) and decreases leakage (×0.4): 10.5×2.21 + 4.5×0.4 ≈
	// 25 W nominal (the paper reports 14.5 → 23.7 W for its checker).
	m := NewCheckerModel(CheckerPessimisticW)
	old, err := m.OnNode(tech.Node90)
	if err != nil {
		t.Fatal(err)
	}
	if old.NominalW < 23 || old.NominalW > 27 {
		t.Errorf("90nm checker nominal %.1f W, want ≈25 W", old.NominalW)
	}
	if old.DynFrac <= m.DynFrac {
		t.Error("dynamic share must grow on the older node")
	}
	same, err := m.OnNode(tech.Node65)
	if err != nil || same != m {
		t.Error("same-node retarget must be identity")
	}
	if _, err := m.OnNode(tech.Node(33)); err == nil {
		t.Error("unknown node must error")
	}
}

func TestL2BankPower(t *testing.T) {
	idle := L2BankPower(0, 1)
	if math.Abs(idle-L2BankStaticW) > 1e-9 {
		t.Errorf("idle bank power %.3f, want static only", idle)
	}
	busy := L2BankPower(1, 1)
	if math.Abs(busy-(L2BankDynamicW+L2BankStaticW)) > 1e-9 {
		t.Errorf("busy bank power %.3f", busy)
	}
	if L2BankPower(5, 1) != busy {
		t.Error("access rate must clamp at 1")
	}
	if L2BankPower(-1, 1) != idle {
		t.Error("negative rate must clamp at 0")
	}
	// Older process: leakage share scales down (Table 8).
	if L2BankPower(0, 0.4) >= idle {
		t.Error("older-process bank leakage must shrink")
	}
}

func TestL2Powers(t *testing.T) {
	s, l2 := runBench(t, "swim")
	p := L2Powers(l2, s.Activity.Cycles)
	if len(p) != 7 { // 6 banks + routers
		t.Fatalf("got %d entries, want 7", len(p))
	}
	for name, w := range p {
		if w <= 0 {
			t.Errorf("%s power %.3f must be positive", name, w)
		}
	}
	if p.Total() < 6*L2BankStaticW {
		t.Error("total below static floor")
	}
}

func TestDVFSScaleCubic(t *testing.T) {
	if got := DVFSScale(0.95); math.Abs(got-0.857375) > 1e-9 {
		t.Errorf("DVFSScale(0.95) = %v", got)
	}
	if DVFSScale(1) != 1 {
		t.Error("identity broken")
	}
}
