package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "testdata/src"

// runCLI invokes the command body and returns its exit code and output
// streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func golden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestFixtureTextOutput(t *testing.T) {
	code, out, stderr := runCLI(t, fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if want := golden(t, "golden.txt"); out != want {
		t.Errorf("text output mismatch\n--- got ---\n%s--- want ---\n%s", out, want)
	}
	if !strings.Contains(stderr, "8 finding(s)") {
		t.Errorf("stderr %q does not report the finding count", stderr)
	}
}

func TestFixtureJSONOutputIsByteStable(t *testing.T) {
	code, first, _ := runCLI(t, "-json", fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if want := golden(t, "golden.json"); first != want {
		t.Errorf("json output mismatch\n--- got ---\n%s--- want ---\n%s", first, want)
	}
	_, second, _ := runCLI(t, "-json", fixture)
	if first != second {
		t.Error("-json output differs between identical runs")
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(first), &parsed); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(parsed) != 8 {
		t.Errorf("parsed %d findings, want 8", len(parsed))
	}
}

func TestBaselineSuppressesKnownFindings(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI(t, "-baseline", base, fixture)
	if code != 0 {
		t.Fatalf("exit %d with full baseline, want 0; stdout:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("unexpected output with full baseline:\n%s", out)
	}
	if strings.Contains(stderr, "stale") {
		t.Errorf("unexpected stale entries: %s", stderr)
	}
}

func TestBaselineFailsOnRegression(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	var entries []map[string]any
	if err := json.Unmarshal([]byte(js), &entries); err != nil {
		t.Fatal(err)
	}
	trimmed, err := json.Marshal(entries[1:]) // drop the first entry
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, trimmed, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-baseline", base, fixture)
	if code != 1 {
		t.Fatalf("exit %d with truncated baseline, want 1", code)
	}
	if got := strings.Count(strings.TrimSpace(out), "\n") + 1; got != 1 {
		t.Errorf("%d regression lines, want exactly the dropped finding:\n%s", got, out)
	}
}

func TestBaselineReportsStaleEntries(t *testing.T) {
	_, js, _ := runCLI(t, "-json", fixture)
	var entries []map[string]any
	if err := json.Unmarshal([]byte(js), &entries); err != nil {
		t.Fatal(err)
	}
	entries = append(entries, map[string]any{
		"file": "internal/model/gone.go", "line": 1, "col": 1,
		"check": "maporder", "message": "a finding that no longer exists",
	})
	padded, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, padded, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-baseline", base, fixture)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stale entries are non-fatal)", code)
	}
	if !strings.Contains(stderr, "stale baseline entry") || !strings.Contains(stderr, "gone.go") {
		t.Errorf("stderr does not note the stale entry: %s", stderr)
	}
}

func TestUsageAndLoadErrorsExit2(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-baseline", "testdata/does-not-exist.json", fixture); code != 2 {
		t.Errorf("missing baseline file: exit %d, want 2", code)
	}
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"maporder", "globalrand", "wallclock", "floatcmp", "errdrop", "gocapture", "dettaint", "units"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}
