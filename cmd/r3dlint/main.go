// Command r3dlint runs the r3d determinism/hygiene static-analysis
// suite (internal/lint) over every non-test package of the module and
// reports findings with file:line:column positions. It exits 0 when the
// module is clean, 1 if any unsuppressed finding remains, and 2 on
// usage or load/typecheck errors.
//
// Usage:
//
//	r3dlint [-list] [-json] [-only names] [-skip names] [-stats] [-baseline file [-fix-baseline]] [dir]
//
// dir defaults to the current directory; a trailing /... is accepted
// (and ignored — the whole module is always analyzed). -json emits the
// findings as a byte-stable JSON array (the same format -baseline
// consumes); -only and -skip filter the suite by comma-separated
// analyzer name (an unknown name is a usage error listing the valid
// ones); -stats reports per-analyzer wall time and finding counts on
// stderr; -baseline suppresses the findings recorded in the given
// file and fails only on regressions, reporting baseline entries that
// no longer match anything as stale (non-fatal); -fix-baseline
// rewrites the -baseline file in place, dropping those stale entries.
// Findings are
// suppressed in source with a reasoned directive:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"r3d/internal/lint"
)

// statsEpoch anchors the -stats clock so readings stay on the
// monotonic clock.
var statsEpoch = time.Now()

// statsClock is the nanosecond clock behind -stats. It is a package
// variable so tests can inject a deterministic clock and pin the stats
// block byte-for-byte.
var statsClock = func() int64 { return int64(time.Since(statsEpoch)) }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// printf writes CLI output. The writers are the process's standard
// streams (injected for tests); a failed write there leaves nothing to
// recover, so the error is vacuous and explicitly discarded.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// plural selects the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// run is the testable body of main: it parses args, runs the suite and
// returns the process exit code (0 clean, 1 findings, 2 usage/load
// error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("r3dlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (byte-stable)")
	only := fs.String("only", "", "run only these `analyzers` (comma-separated)")
	skip := fs.String("skip", "", "skip these `analyzers` (comma-separated)")
	stats := fs.Bool("stats", false, "report per-analyzer wall time and finding counts on stderr")
	baseline := fs.String("baseline", "", "suppress findings recorded in this JSON `file`; fail only on regressions")
	fixBaseline := fs.Bool("fix-baseline", false, "rewrite the -baseline file in place, dropping stale entries")
	fs.Usage = func() {
		printf(stderr, "usage: r3dlint [-list] [-json] [-only names] [-skip names] [-stats] [-baseline file [-fix-baseline]] [dir]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			printf(stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fixBaseline && *baseline == "" {
		printf(stderr, "r3dlint: -fix-baseline requires -baseline\n")
		fs.Usage()
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			printf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, ok := selectAnalyzers(*only, *skip, stderr)
	if !ok {
		return 2
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	// Accept go-style package patterns: ./... means "the module".
	dir = strings.TrimSuffix(dir, "...")
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" {
		dir = "."
	}

	m, err := lint.LoadModule(dir)
	if err != nil {
		printf(stderr, "r3dlint: %v\n", err)
		return 2
	}
	var clock func() int64
	if *stats {
		clock = statsClock
	}
	findings, perAnalyzer := lint.RunDirStats(m.Dir, m.Pkgs, analyzers, clock)
	if *stats {
		printf(stderr, "r3dlint: analyzer stats (findings, wall ms):\n")
		for _, st := range perAnalyzer {
			printf(stderr, "  %-13s %4d %10.3f\n", st.Name, st.Findings, float64(st.WallNS)/1e6)
		}
	}

	if *fixBaseline {
		kept, dropped, err := lint.PruneBaseline(*baseline, m.Dir, findings)
		if err != nil {
			printf(stderr, "r3dlint: %v\n", err)
			return 2
		}
		printf(stderr, "r3dlint: baseline %s: kept %d entr%s, dropped %d stale\n",
			*baseline, kept, plural(kept, "y", "ies"), dropped)
	}

	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			printf(stderr, "r3dlint: %v\n", err)
			return 2
		}
		regressions, stale := b.Apply(m.Dir, findings)
		for _, s := range stale {
			printf(stderr, "r3dlint: stale baseline entry: %s\n", s)
		}
		findings = regressions
	}

	if *asJSON {
		data, err := lint.MarshalJSON(m.Dir, findings)
		if err != nil {
			printf(stderr, "r3dlint: %v\n", err)
			return 2
		}
		_, _ = stdout.Write(data)
	} else {
		for _, f := range findings {
			printf(stdout, "%s\n", lint.Relativize(m.Dir, f))
		}
	}
	if len(findings) > 0 {
		printf(stderr, "r3dlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers applies the -only and -skip filters to the registry,
// preserving registry order: -only restricts the suite, then -skip
// removes from what remains. An unknown name is a usage error — it
// prints the valid analyzer names and reports failure.
func selectAnalyzers(only, skip string, stderr io.Writer) ([]*lint.Analyzer, bool) {
	all := lint.Analyzers()
	valid := map[string]bool{}
	names := make([]string, 0, len(all))
	for _, a := range all {
		valid[a.Name] = true
		names = append(names, a.Name)
	}
	parse := func(flagName, s string) (map[string]bool, bool) {
		set := map[string]bool{}
		for _, n := range strings.Split(s, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !valid[n] {
				printf(stderr, "r3dlint: unknown analyzer %q in %s (valid: %s)\n", n, flagName, strings.Join(names, ", "))
				return nil, false
			}
			set[n] = true
		}
		return set, true
	}
	onlySet, ok := parse("-only", only)
	if !ok {
		return nil, false
	}
	skipSet, ok := parse("-skip", skip)
	if !ok {
		return nil, false
	}
	selected := make([]*lint.Analyzer, 0, len(all))
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		selected = append(selected, a)
	}
	return selected, true
}
