package lint

import (
	"strings"
	"testing"
)

func TestStopFlowUncoveredLoops(t *testing.T) {
	src := `package fixture

// wait ignores its stop channel entirely: the range blocks per
// iteration and a range loop cannot select.
func wait(events chan int, stop chan struct{}) int {
	total := 0
	for v := range events {
		total += v
	}
	return total
}

// pump is the sanctioned shape: the loop selects on its stop parameter.
func pump(in, out chan int, stop <-chan struct{}) {
	for {
		select {
		case v := <-in:
			out <- v
		case <-stop:
			return
		}
	}
}

// relay selects, but never on its stop parameter.
func relay(in chan int, stop chan struct{}, aux chan int) {
	for {
		select {
		case v := <-in:
			_ = v
		case <-aux:
		}
	}
}

// ticker blocks on a bare receive in the loop with no select at all.
func ticker(ch chan int, done chan struct{}) {
	for {
		<-ch
	}
}
`
	got := findings(t, StopFlow, modelPath, src)
	wantChecks(t, got, "stopflow", "stopflow", "stopflow")
	if !strings.Contains(got[0].Message, "never selects on stop") {
		t.Errorf("range loop message: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "never selects on stop") {
		t.Errorf("relay message: %q", got[1].Message)
	}
	if !strings.Contains(got[2].Message, "never selects on done") {
		t.Errorf("ticker message: %q", got[2].Message)
	}
}

func TestStopFlowInterproceduralReach(t *testing.T) {
	src := `package fixture

// drain blocks in a loop and receives no stop signal of its own.
func drain(ch chan int) {
	for {
		<-ch
	}
}

// forward holds the stop obligation but drops it before the blocking
// loop in drain.
func forward(ch chan int, stop <-chan struct{}) {
	drain(ch)
}

// hop is a stopless intermediate: the obligation travels through it.
func hop(ch chan int) {
	drain(ch)
}

func forwardFar(ch chan int, stop <-chan struct{}) {
	hop(ch)
}
`
	got := findings(t, StopFlow, modelPath, src)
	wantChecks(t, got, "stopflow", "stopflow")
	if !strings.Contains(got[0].Message, "drain → endless for loop") {
		t.Errorf("direct chain missing: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "hop → drain → endless for loop") {
		t.Errorf("transitive chain missing: %q", got[1].Message)
	}
}

func TestStopFlowStructFieldAndContext(t *testing.T) {
	src := `package fixture

import "context"

type config struct {
	Stop    <-chan struct{}
	Workers int
}

// dispatch observes cfg.Stop in its select: clean.
func dispatch(jobs chan int, cfg config) {
	for {
		select {
		case jobs <- 1:
		case <-cfg.Stop:
			return
		}
	}
}

// spin ignores cfg.Stop.
func spin(jobs chan int, cfg config) {
	for {
		jobs <- 1
	}
}

// follow observes ctx.Done(): clean.
func follow(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// defy ignores its context.
func defy(ctx context.Context, ch chan int) {
	for {
		<-ch
	}
}
`
	got := findings(t, StopFlow, modelPath, src)
	wantChecks(t, got, "stopflow", "stopflow")
	if !strings.Contains(got[0].Message, "cfg.Stop") {
		t.Errorf("struct-field message: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "ctx.Done()") {
		t.Errorf("context message: %q", got[1].Message)
	}
}

func TestStopFlowSuppression(t *testing.T) {
	src := `package fixture

// sip reads exactly one event per call; the bounded wait is the point.
func sip(ch chan int, stop chan struct{}) {
	//lint:ignore stopflow fixture: single bounded receive is this helper's contract
	for i := 0; i < 1; i++ {
		<-ch
	}
}

// onceThrough suppresses the call edge instead of the loop.
func slowJoin(ch chan int) {
	for {
		<-ch
	}
}

func hold(ch chan int, stop chan struct{}) {
	//lint:ignore stopflow fixture: join completes by protocol before stop can fire
	slowJoin(ch)
}
`
	got := findings(t, StopFlow, modelPath, src)
	wantChecks(t, got)
}
