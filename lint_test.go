package r3d

import (
	"testing"

	"r3d/internal/lint"
)

// TestLintClean runs the full r3dlint determinism/hygiene suite over
// every non-test package of the module and fails on any unsuppressed
// finding. This is the tier-1 enforcement hook: introducing a map
// iteration, global-RNG call, wall-clock read, exact float comparison
// or dropped error without a reasoned //lint:ignore breaks
// `go test ./...`, not just a separately-run linter.
func TestLintClean(t *testing.T) {
	m, findings, err := lint.RunModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(m.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the module", len(m.Pkgs))
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("fix the findings above or suppress them with `//lint:ignore <check> <reason>` (see README \"Determinism & lint suite\")")
	}
}
