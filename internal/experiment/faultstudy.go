package experiment

import (
	"fmt"
	"strings"

	"r3d/internal/campaign"
	"r3d/internal/tech"
)

// --- Monte Carlo injection campaigns (§3.5, Figure 9) ------------------------

// InjectionBenchRow aggregates one benchmark's trials: the per-seed,
// per-rate coverage spread behind the paper's "all injected errors
// detected" claim.
type InjectionBenchRow struct {
	Bench        string
	Trials       int
	OK           int
	MeanCoverage float64 // over ok trials with ≥1 leading-side injection
	Detected     uint64
	Unrecovered  uint64
}

// InjectionStudyResult is the campaign-harness reliability study.
type InjectionStudyResult struct {
	Rows []InjectionBenchRow
	// Report is the full hardened-campaign aggregate, including the
	// deliberately-wedged self-test trial that proves the watchdog works
	// inside a production run.
	Report *campaign.Report
}

// InjectionStudy fans accelerated soft-error campaigns over the suite
// through the hardened Monte Carlo harness: benches × two seeds × two
// leading-core rates in parallel workers, plus a deliberately-wedged
// livelock trial whose expected outcome is "hung" — a standing self-test
// that the forward-progress watchdog would catch a real wedge. Trials
// run cold (no warmup window): injection statistics are rate ratios, not
// microarchitectural timings, so the transient does not bias them.
func InjectionStudy(s *Session, workers int) (InjectionStudyResult, error) {
	var res InjectionStudyResult
	suite := s.Q.Suite()
	benches := make([]string, 0, len(suite))
	for _, b := range suite {
		benches = append(benches, b.Profile.Name)
	}
	grid := campaign.Grid{
		Benches:      benches,
		Seeds:        []int64{s.Q.Seed, s.Q.Seed + 1},
		LeadRates:    []float64{20, 80},
		RFRates:      []float64{50},
		Instructions: s.Q.MeasureInsts,
		Node:         tech.Node65,
	}
	specs, err := grid.Trials()
	if err != nil {
		return res, err
	}
	selftest, err := grid.SelfTestTrial(3000)
	if err != nil {
		return res, err
	}
	specs = append(specs, selftest)

	res.Report, err = campaign.Run(campaign.Config{Workers: workers, MaxRetries: 1}, specs)
	if err != nil {
		return res, err
	}

	// Per-bench aggregation in suite order; trials within the report are
	// ID-sorted, so accumulation order is deterministic.
	for _, bench := range benches {
		row := InjectionBenchRow{Bench: bench}
		covered := 0
		for _, tr := range res.Report.Trials {
			if !strings.HasPrefix(tr.ID, bench+"/") {
				continue
			}
			row.Trials++
			if tr.Status == campaign.StatusOK {
				row.OK++
			}
			if tr.Result == nil {
				continue
			}
			row.Detected += tr.Result.Detected
			row.Unrecovered += tr.Result.Unrecovered
			if tr.Status == campaign.StatusOK && tr.Result.LeadInjected > 0 {
				row.MeanCoverage += tr.Result.Coverage()
				covered++
			}
		}
		if covered > 0 {
			row.MeanCoverage /= float64(covered)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the injection study.
func (r InjectionStudyResult) String() string {
	var b strings.Builder
	s := r.Report.Summary
	fmt.Fprintf(&b, "Monte Carlo injection campaigns (hardened harness, §3.5/Fig.9 regime)\n")
	fmt.Fprintf(&b, "  %-9s %7s %5s %9s %9s %12s\n", "bench", "trials", "ok", "coverage", "detected", "unrecovered")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %7d %5d %9.3f %9d %12d\n",
			row.Bench, row.Trials, row.OK, row.MeanCoverage, row.Detected, row.Unrecovered)
	}
	fmt.Fprintf(&b, "  %d trials: %d ok, %d hung, %d crashed (%d retried); mean coverage %.3f\n",
		s.Trials, s.OK, s.Hung, s.Crashed, s.Retried, s.MeanCoverage)
	fmt.Fprintf(&b, "  watchdog self-test (deliberate livelock): ")
	verdict := "MISSING"
	for _, tr := range r.Report.Trials {
		if tr.ID == "selftest/livelock" {
			verdict = fmt.Sprintf("%s (%s @cycle %d)", tr.Status, tr.Reason, tr.HungAtCycle)
		}
	}
	fmt.Fprintf(&b, "%s — expected hung/no-progress\n", verdict)
	return b.String()
}
