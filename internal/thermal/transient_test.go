package thermal

import (
	"math"
	"strings"
	"testing"
)

func TestTransientConvergesToSteadyState(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 20, 20 // coarse grid keeps the test quick
	grid := uniformGrid(cfg.Nx, cfg.Ny, 40)

	steady := NewSolver(cfg)
	if err := steady.SetPower(0, grid); err != nil {
		t.Fatal(err)
	}
	steady.Solve(1e-7, 200000)

	tr := NewTransient(cfg)
	if err := tr.Solver().SetPower(0, grid); err != nil {
		t.Fatal(err)
	}
	// Integrate 0.2 s: the sink's thermal mass has a time constant of
	// ~0.2 s, so the field should have covered most — but not all — of
	// the distance to steady state, without overshooting.
	if err := tr.Step(2e11); err != nil {
		t.Fatal(err)
	}
	got := tr.Solver().MeanC(0) - cfg.AmbientC
	want := steady.MeanC(0) - cfg.AmbientC
	if frac := got / want; frac < 0.6 || frac > 1.02 {
		t.Errorf("after 0.2 s the transient covered %.0f%% of the rise (%.2f of %.2f °C)", frac*100, got, want)
	}
}

func TestSteadyStateIsTransientFixedPoint(t *testing.T) {
	// The steady-state field must be a fixed point of the transient
	// dynamics — the consistency check between the two integrators.
	cfg := Stack3D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 16, 16
	grid := uniformGrid(cfg.Nx, cfg.Ny, 30)
	steady := NewSolver(cfg)
	steady.SetPower(0, grid)
	steady.Solve(1e-8, 400000)

	tr := NewTransient(cfg)
	tr.Solver().SetPower(0, grid)
	if err := tr.Solver().CopyStateFrom(steady); err != nil {
		t.Fatal(err)
	}
	before := tr.Solver().PeakAllC()
	if err := tr.Step(1e9); err != nil { // 1 ms
		t.Fatal(err)
	}
	after := tr.Solver().PeakAllC()
	if math.Abs(float64(after-before)) > 0.05 {
		t.Errorf("steady state drifted under transient dynamics: %.3f → %.3f", before, after)
	}
}

func TestCopyStateFromMismatch(t *testing.T) {
	a := NewSolver(Stack2D(7.2, 7.2))
	small := Stack2D(7.2, 7.2)
	small.Nx, small.Ny = 10, 10
	b := NewSolver(small)
	if err := a.CopyStateFrom(b); err == nil {
		t.Error("geometry mismatch must error")
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 16, 16
	tr := NewTransient(cfg)
	if err := tr.Solver().SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 30)); err != nil {
		t.Fatal(err)
	}
	prev := tr.Solver().MeanC(0)
	for i := 0; i < 6; i++ {
		if err := tr.Step(5e9); err != nil { // 5 ms
			t.Fatal(err)
		}
		cur := tr.Solver().MeanC(0)
		if cur < prev-1e-9 {
			t.Fatalf("warming chip cooled down: %.3f → %.3f", prev, cur)
		}
		prev = cur
	}
	if prev <= AmbientC+1 {
		t.Error("chip failed to warm at all")
	}
	if math.Abs(tr.TimePs()-6*5e9) > 1e3 {
		t.Errorf("integrated time %.0f ps, want ≈%v", tr.TimePs(), 6*5e9)
	}
}

func TestTransientCoolsAfterPowerOff(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 16, 16
	tr := NewTransient(cfg)
	tr.Solver().SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 40))
	tr.Step(5e10)
	hot := tr.Solver().MeanC(0)
	tr.Solver().SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 0))
	tr.Step(5e10)
	cool := tr.Solver().MeanC(0)
	if cool >= hot {
		t.Errorf("chip must cool after power-off: %.2f → %.2f", hot, cool)
	}
}

func TestTransientStepValidation(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 8, 8
	tr := NewTransient(cfg)
	if err := tr.Step(0); err == nil {
		t.Error("zero step must error")
	}
	if err := tr.Step(-1); err == nil {
		t.Error("negative step must error")
	}
	if tr.MaxStepPs() <= 0 {
		t.Error("stability bound must be positive")
	}
}

func TestHeatmapASCII(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 20, 20
	s := NewSolver(cfg)
	g := uniformGrid(cfg.Nx, cfg.Ny, 0)
	g[2][2] = 20 // hot corner
	s.SetPower(0, g)
	s.Solve(1e-4, 50000)
	hm := s.HeatmapASCII(s.HeatLayers()[0], 20)
	if !strings.Contains(hm, "@") {
		t.Errorf("hot spot missing from heatmap:\n%s", hm)
	}
	lines := strings.Split(strings.TrimSpace(hm), "\n")
	if len(lines) < 10 {
		t.Errorf("heatmap too small: %d lines", len(lines))
	}
	// The hot cell is at low y → it must appear near the bottom rows.
	bottom := lines[len(lines)-4:]
	found := false
	for _, l := range bottom {
		if strings.Contains(l, "@") {
			found = true
		}
	}
	if !found {
		t.Error("hot spot not rendered near the bottom edge")
	}
}
