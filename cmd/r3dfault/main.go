// Command r3dfault runs hardened Monte Carlo fault-injection campaigns:
// a grid of benchmark × seed × rate trials fanned across a worker pool,
// with per-trial panic isolation, a forward-progress watchdog that
// reports wedged trials as "hung", and a resumable JSONL journal.
//
// Examples:
//
//	r3dfault -bench gzip,mcf -seeds 4 -leadrates 20,50 -n 200000
//	r3dfault -bench swim -seeds 8 -timing -taccel 0.02 -workers 8
//	r3dfault -bench gzip -seeds 2 -journal run.jsonl            # first run
//	r3dfault -bench gzip -seeds 2 -journal run.jsonl -resume    # after ^C
//
// Crash safety: -journal makes every completed trial durable; adding
// -checkpoint layers periodic snapshots of the aggregate on top, so a
// later -restore replays only the journal suffix written after the last
// snapshot. SIGINT/SIGTERM drain gracefully — in-flight trials finish,
// the journal is flushed, a final snapshot commits — and the process
// exits 130 with a resumable state (a second signal exits immediately).
// -shadow re-verifies a deterministic fraction of restored trials by
// re-running them and byte-comparing the outcomes (the paper's RMT idea
// applied to the harness's own state).
//
// Trial failures are data: a campaign whose trials hang or crash still
// reports them in the aggregate and exits 0. Only harness errors (bad
// flags, journal mismatch, a foreign checkpoint, I/O) exit non-zero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"r3d/internal/campaign"
	"r3d/internal/tech"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("r3dfault: ")

	bench := flag.String("bench", "gzip", "comma-separated workload names")
	seeds := flag.Int("seeds", 3, "number of seeds per configuration")
	seed0 := flag.Int64("seed0", 1, "first seed (trials use seed0..seed0+seeds-1)")
	leadRates := flag.String("leadrates", "50", "comma-separated leading-core upset rates per M cycles")
	rfRates := flag.String("rfrates", "50", "comma-separated trailer-RF upset rates per M cycles")
	n := flag.Uint64("n", 100_000, "instructions per trial")
	budget := flag.Uint64("budget", 0, "hard cycle budget per trial (0 = auto from -n)")
	node := flag.Int("node", 65, "technology node for MBU/timing models")
	timing := flag.Bool("timing", false, "enable dynamic timing-error injection")
	critPath := flag.Float64("critpath", 495, "stage critical path in ps (with -timing)")
	tAccel := flag.Float64("taccel", 0.02, "timing-error acceleration (with -timing)")
	l2 := flag.String("l2", "2d-a", "L2 organization: 2d-a, 2d-2a, 3d-2a")
	maxGHz := flag.Float64("maxghz", 2.0, "checker frequency cap (1.4 for the 90nm die)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool width")
	retries := flag.Int("retries", 1, "max retries for trials the watchdog reports hung")
	journal := flag.String("journal", "", "JSONL journal path (enables interruption-safe runs)")
	resume := flag.Bool("resume", false, "reuse completed trials from the journal")
	checkpoint := flag.String("checkpoint", "", "periodic aggregate-snapshot path (with -journal: restore replays only the post-snapshot suffix)")
	ckptEvery := flag.Int("checkpoint-every", campaign.DefaultCheckpointEvery, "trials between snapshots")
	restore := flag.Bool("restore", false, "restore from -checkpoint (and/or -journal), re-running only missing trials")
	shadow := flag.Float64("shadow", 0, "fraction of restored trials to re-verify by re-execution (0..1)")
	jsonOut := flag.Bool("json", false, "emit the aggregated report as JSON instead of a table")
	noRetire := flag.Uint64("noretire", 0, "watchdog no-retire deadline in cycles (0 = default)")
	wallTimeout := flag.Duration("walltimeout", 0, "host-clock stall guard per trial (0 = off; trades determinism of pathological runs for liveness)")
	livelock := flag.Bool("livelock-trial", false, "append a deliberately-wedged self-test trial (expected outcome: hung)")
	livelockAfter := flag.Uint64("livelock-after", 3000, "cycle at which the self-test trial wedges")
	flag.Parse()

	grid := campaign.Grid{
		Benches:       splitList(*bench),
		Seeds:         seedRange(*seed0, *seeds),
		Instructions:  *n,
		CycleBudget:   *budget,
		Node:          tech.Node(*node),
		EnableTiming:  *timing,
		L2:            *l2,
		CheckerMaxGHz: *maxGHz,
	}
	if *timing {
		grid.CritPathPs = *critPath
		grid.TimingAccel = *tAccel
	}
	var err error
	if grid.LeadRates, err = parseRates(*leadRates); err != nil {
		log.Fatalf("-leadrates: %v", err)
	}
	if grid.RFRates, err = parseRates(*rfRates); err != nil {
		log.Fatalf("-rfrates: %v", err)
	}

	specs, err := grid.Trials()
	if err != nil {
		log.Fatal(err)
	}
	if *livelock {
		sp, err := grid.SelfTestTrial(*livelockAfter)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, sp)
	}

	// Graceful drain: the first SIGINT/SIGTERM closes stop — in-flight
	// trials finish, the journal flushes, a final snapshot commits — and
	// the run exits 130 resumable. A second signal aborts immediately
	// (the journal still recovers everything already committed).
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Print("signal: draining (in-flight trials finish; interrupt again to abort)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	rep, err := campaign.Run(campaign.Config{
		Workers:         *workers,
		MaxRetries:      *retries,
		JournalPath:     *journal,
		Resume:          *resume,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *ckptEvery,
		Restore:         *restore,
		ShadowFraction:  *shadow,
		Stop:            stop,
		Watchdog:        campaign.Watchdog{NoProgressCycles: *noRetire},
		StallTimeout:    *wallTimeout,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}
	for _, note := range rep.Notes {
		fmt.Fprintln(os.Stderr, note)
	}
	for _, d := range rep.ShadowDivergences {
		fmt.Fprintf(os.Stderr, "SHADOW DIVERGENCE %s:\n  stored:     %s\n  recomputed: %s\n", d.ID, d.Stored, d.Recomputed)
	}
	if rep.ShadowChecked > 0 {
		fmt.Fprintf(os.Stderr, "shadow-verified %d restored trial(s), %d divergence(s)\n",
			rep.ShadowChecked, len(rep.ShadowDivergences))
	}

	if *jsonOut {
		enc, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := os.Stdout.Write(enc); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(rep.Table())
	}
	if rep.Interrupted {
		os.Exit(130)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func seedRange(first int64, count int) []int64 {
	seeds := make([]int64, 0, count)
	for i := 0; i < count; i++ {
		seeds = append(seeds, first+int64(i))
	}
	return seeds
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
