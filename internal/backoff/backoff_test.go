package backoff

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"r3d/internal/iofault"
)

func TestDelayDeterministicAndCapped(t *testing.T) {
	p := Policy{Attempts: 8, BaseNS: 1000, CapNS: 8000, Seed: 7}
	q := Policy{Attempts: 8, BaseNS: 1000, CapNS: 8000, Seed: 7}
	prevCap := int64(0)
	for i := 0; i < 8; i++ {
		a, b := p.Delay(i), q.Delay(i)
		if a != b {
			t.Fatalf("attempt %d: same-seed delays diverge: %d vs %d", i, a, b)
		}
		if a < 500 { // half of base
			t.Fatalf("attempt %d: delay %d below base/2", i, a)
		}
		if a > 8000 {
			t.Fatalf("attempt %d: delay %d above cap", i, a)
		}
		_ = prevCap
	}
	r := Policy{Attempts: 8, BaseNS: 1000, CapNS: 8000, Seed: 8}
	diverged := false
	for i := 0; i < 8; i++ {
		if r.Delay(i) != p.Delay(i) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter everywhere")
	}
}

func TestDelayZeroBaseMeansNoWait(t *testing.T) {
	p := Policy{Attempts: 3}
	for i := 0; i < 3; i++ {
		if d := p.Delay(i); d != 0 {
			t.Fatalf("zero-base delay = %d, want 0", d)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&iofault.Error{Kind: iofault.KindWriteErr, Class: iofault.ClassTransient}, true},
		{&iofault.Error{Kind: iofault.KindCrash, Class: iofault.ClassPermanent}, false},
		{fmt.Errorf("wrap: %w", &iofault.Error{Class: iofault.ClassTransient}), true},
		{syscall.ENOSPC, true},
		{fmt.Errorf("write: %w", syscall.ENOSPC), true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.EIO, false},
		{errors.New("mystery"), false},
	}
	for i, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("case %d (%v): Transient = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(Policy{Attempts: 5}, nil, func() error {
		calls++
		if calls < 3 {
			return &iofault.Error{Class: iofault.ClassTransient}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	perm := &iofault.Error{Class: iofault.ClassPermanent}
	err := Retry(Policy{Attempts: 5}, nil, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent after 1 call", err, calls)
	}
}

func TestRetryExhaustsTransient(t *testing.T) {
	calls := 0
	err := Retry(Policy{Attempts: 4}, nil, func() error {
		calls++
		return &iofault.Error{Class: iofault.ClassTransient}
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want exhausted after 4", err, calls)
	}
}

func TestRetrySleepsBetweenAttempts(t *testing.T) {
	var slept []int64
	p := Policy{Attempts: 3, BaseNS: 100, CapNS: 1000, Seed: 1}
	_ = Retry(p, func(ns int64) { slept = append(slept, ns) }, func() error {
		return &iofault.Error{Class: iofault.ClassTransient}
	})
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	if slept[0] != p.Delay(0) || slept[1] != p.Delay(1) {
		t.Fatalf("slept %v, want [%d %d]", slept, p.Delay(0), p.Delay(1))
	}
}

func TestRetryZeroPolicyIsFailFast(t *testing.T) {
	calls := 0
	_ = Retry(Policy{}, nil, func() error {
		calls++
		return &iofault.Error{Class: iofault.ClassTransient}
	})
	if calls != 1 {
		t.Fatalf("zero policy made %d calls, want 1", calls)
	}
}
