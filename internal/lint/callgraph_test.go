package lint

import (
	"testing"
)

// nodeByName finds a graph node by function name (test fixtures keep
// names unique across the fixture module).
func nodeByName(t *testing.T, cg *CallGraph, name string) *CallNode {
	t.Helper()
	var found *CallNode
	for _, n := range cg.SortedNodes() {
		if n.Fn.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

// refTo reports whether the node references a function of the given
// name, and whether that reference is a call.
func refTo(n *CallNode, name string) (found, call bool) {
	for _, r := range n.Refs {
		if r.Obj.Name() == name {
			return true, r.Call
		}
	}
	return false, false
}

func TestCallGraphRecordsMutualRecursion(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

func Ping(n int) int {
	if n <= 0 {
		return 0
	}
	return Pong(n - 1)
}

func Pong(n int) int { return Ping(n - 1) }
`}})
	cg := BuildCallGraph(pkgs)
	if found, call := refTo(nodeByName(t, cg, "Ping"), "Pong"); !found || !call {
		t.Errorf("Ping → Pong edge: found=%v call=%v, want call edge", found, call)
	}
	if found, call := refTo(nodeByName(t, cg, "Pong"), "Ping"); !found || !call {
		t.Errorf("Pong → Ping edge: found=%v call=%v, want call edge", found, call)
	}
}

func TestCallGraphMethodValueIsAnEdge(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

type Box struct{ v int }

func (b Box) Get() int { return b.v }

// Take passes the method as a value: no call expression, but dispatch
// may still happen later, so the graph must record the reference.
func Take(b Box) func() int {
	f := b.Get
	return f
}
`}})
	found, call := refTo(nodeByName(t, BuildCallGraph(pkgs), "Take"), "Get")
	if !found {
		t.Fatal("method-value reference Take → Get not recorded")
	}
	if call {
		t.Error("method value recorded as a call; want a value reference")
	}
}

func TestCallGraphFuncLitRefsBelongToEnclosingDecl(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

func helper() int { return 1 }

func Outer() func() int {
	return func() int { return helper() }
}
`}})
	if found, _ := refTo(nodeByName(t, BuildCallGraph(pkgs), "Outer"), "helper"); !found {
		t.Error("reference inside nested function literal not attributed to Outer")
	}
}

func TestCallGraphGenericInstantiationResolvesToOrigin(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

func Map[T any](xs []T, f func(T) T) []T {
	out := make([]T, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

func double(n int) int { return n * 2 }

// Use calls the int instantiation; Pin references an explicit
// instantiation as a value. Both must resolve to the one generic
// declaration node.
func Use(xs []int) []int { return Map(xs, double) }

func Pin() func([]int, func(int) int) []int { return Map[int] }
`}})
	cg := BuildCallGraph(pkgs)
	origin := nodeByName(t, cg, "Map").Fn
	use := nodeByName(t, cg, "Use")
	found := false
	for _, r := range use.Refs {
		if r.Obj.Name() != "Map" {
			continue
		}
		found = true
		if !r.Call {
			t.Error("instantiated call Use → Map not marked as a call")
		}
		if r.Obj != origin {
			t.Errorf("instantiated call resolves to %v, want the origin declaration object", r.Obj)
		}
	}
	if !found {
		t.Fatal("no Use → Map reference recorded")
	}
	if found, call := refTo(nodeByName(t, cg, "Pin"), "Map"); !found || call {
		t.Errorf("explicit instantiation value: found=%v call=%v, want a non-call reference", found, call)
	}
}

func TestCallGraphGoStmtFuncLitRefsBelongToSpawner(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

func work() int { return 1 }

// Spawn's goroutine body is a function literal: the call it makes must
// be attributed to Spawn, the enclosing declaration.
func Spawn(ch chan int) {
	go func() {
		ch <- work()
	}()
}
`}})
	if found, call := refTo(nodeByName(t, BuildCallGraph(pkgs), "Spawn"), "work"); !found || !call {
		t.Errorf("go-stmt literal call Spawn → work: found=%v call=%v, want a call edge", found, call)
	}
}

func TestCallGraphInterfaceDispatchCandidates(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

type Source interface{ Value() int }

type A struct{}

func (A) Value() int { return 1 }

type B struct{}

func (B) Value() int { return 2 }

func Sample(s Source) int { return s.Value() }
`}})
	n := nodeByName(t, BuildCallGraph(pkgs), "Sample")
	var iface *FuncRef
	for i, r := range n.Refs {
		if r.Iface {
			iface = &n.Refs[i]
		}
	}
	if iface == nil {
		t.Fatal("interface-method reference in Sample not marked Iface")
	}
	if len(iface.Candidates) != 2 {
		t.Fatalf("%d dispatch candidates, want the 2 module implementations", len(iface.Candidates))
	}
	// Candidates are position-sorted: A.Value precedes B.Value.
	if got := iface.Candidates[0].FullName() + " " + iface.Candidates[1].FullName(); got != "(r3d/internal/fixture.A).Value (r3d/internal/fixture.B).Value" {
		t.Errorf("candidates = %s", got)
	}
}

func TestCallGraphInitRefs(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

func seed() int { return 7 }

var start = seed()
`}})
	cg := BuildCallGraph(pkgs)
	refs := cg.InitRefs[pkgs[0]]
	if len(refs) != 1 || refs[0].Obj.Name() != "seed" || !refs[0].Call {
		t.Errorf("InitRefs = %+v, want one call reference to seed", refs)
	}
}
