package lint

import (
	"strings"
	"testing"
)

func TestLockOrderInversion(t *testing.T) {
	src := `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}
`
	got := findings(t, LockOrder, modelPath, src)
	wantChecks(t, got, "lockorder")
	msg := got[0].Message
	if !strings.Contains(msg, "fixture.pair.a → fixture.pair.b") || !strings.Contains(msg, "fixture.pair.b → fixture.pair.a") {
		t.Errorf("cycle message should show both directions: %s", msg)
	}
}

func TestLockOrderConsistentIsClean(t *testing.T) {
	src := `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) one() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *pair) two() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}
`
	wantChecks(t, findings(t, LockOrder, modelPath, src))
}

// TestLockOrderThroughCalls: the inversion hides behind a call — one
// side acquires B directly under A, the other reaches A through a
// helper while holding B.
func TestLockOrderThroughCalls(t *testing.T) {
	src := `package fixture

import "sync"

type sys struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func (s *sys) lockA() {
	s.a.Lock()
	s.n++
	s.a.Unlock()
}

func (s *sys) forward() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *sys) backward() {
	s.b.Lock()
	defer s.b.Unlock()
	s.lockA() // acquires a while b is held
}
`
	got := findings(t, LockOrder, modelPath, src)
	wantChecks(t, got, "lockorder")
	msg := got[0].Message
	// The b→a hop may be witnessed either at backward's call into lockA
	// (with the chain) or at the Lock inside lockA itself (whose
	// entry-held set includes b); both are the same inversion.
	if !strings.Contains(msg, "fixture.sys.a → fixture.sys.b") || !strings.Contains(msg, "fixture.sys.b → fixture.sys.a") {
		t.Errorf("cycle should include the call-mediated hop: %s", msg)
	}
}

// TestLockOrderGoroutineNoEdge: spawning a goroutine that takes B while
// the spawner holds A is not a nesting — the goroutine does not hold A.
func TestLockOrderGoroutineNoEdge(t *testing.T) {
	src := `package fixture

import "sync"

type sys struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *sys) fanout() {
	s.a.Lock()
	defer s.a.Unlock()
	go func() {
		s.b.Lock()
		s.a.Lock() // fresh goroutine: holds neither at this point's entry
		s.a.Unlock()
		s.b.Unlock()
	}()
	s.b.Lock()
	s.b.Unlock()
}
`
	// The literal alone creates b→a; fanout creates a→b. Both paths are
	// real code on distinct goroutines, which is exactly the deadlock
	// scenario — the cycle must still be reported, but only via the
	// held-sets actually accumulated per goroutine.
	got := findings(t, LockOrder, modelPath, src)
	wantChecks(t, got, "lockorder")
}

func TestLockOrderSelfDeadlock(t *testing.T) {
	src := `package fixture

import "sync"

var mu sync.Mutex

func oops() {
	mu.Lock()
	mu.Lock() // second acquire on the same goroutine: guaranteed hang
	mu.Unlock()
	mu.Unlock()
}
`
	got := findings(t, LockOrder, modelPath, src)
	wantChecks(t, got, "lockorder")
	if !strings.Contains(got[0].Message, "self-deadlock") {
		t.Errorf("want self-deadlock message: %s", got[0].Message)
	}
}

func TestLockOrderSuppression(t *testing.T) {
	src := `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	//lint:ignore lockorder shutdown path, provably never concurrent with ab
	p.a.Lock()
	defer p.a.Unlock()
}
`
	wantChecks(t, findings(t, LockOrder, modelPath, src))
}
