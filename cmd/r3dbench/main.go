// Command r3dbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers).
//
// Experiments come from the experiment registry: r3dbench prefetches
// the union of the selected experiments' run manifests across -workers
// goroutines, then renders serially in registry order. Output on stdout
// is byte-identical for every worker count; the -stats/-json engine
// report goes to stderr.
//
// Usage:
//
//	r3dbench                 # full windows, all 19 benchmarks (minutes)
//	r3dbench -fast           # small windows, 6-benchmark subset (seconds)
//	r3dbench -only fig4      # one experiment (see -only with a bad name
//	                         # for the full list)
//	r3dbench -workers 8      # prefetch pool width (default GOMAXPROCS)
//	r3dbench -stats          # human engine report on stderr
//	r3dbench -json           # JSON engine report on stderr
//
// Warm starts: -checkpoint persists every computed simulation window to
// an atomically committed, CRC-guarded cache file at exit, and
// -restore preloads it on the next invocation, so repeated runs (or a
// run resumed after SIGINT) recompute only the windows they are
// missing. The cache is fingerprinted by quality and build: a stale or
// foreign cache fails loudly instead of polluting results. -shadow
// re-verifies a deterministic fraction of cache hits by recomputing
// them from scratch and byte-comparing the results; divergences are
// reported on stderr and exit non-zero.
//
//	r3dbench -fast -checkpoint bench.ckpt            # first run, saves cache
//	r3dbench -fast -checkpoint bench.ckpt -restore   # warm start
//	r3dbench -fast -checkpoint bench.ckpt -restore -shadow 0.2
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"r3d/internal/experiment"
	"r3d/internal/runsched"
)

func main() {
	fast := flag.Bool("fast", false, "small simulation windows and a benchmark subset")
	only := flag.String("only", "", "run a single experiment")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "prefetch worker pool width")
	stats := flag.Bool("stats", false, "print the engine report to stderr")
	jsonOut := flag.Bool("json", false, "print the engine report as JSON to stderr")
	checkpoint := flag.String("checkpoint", "", "run-cache path: computed windows are persisted here at exit")
	restore := flag.Bool("restore", false, "preload the -checkpoint cache before running (warm start)")
	shadow := flag.Float64("shadow", 0, "fraction of cache hits to re-verify by recomputation (0..1)")
	flag.Parse()

	q := experiment.Full()
	if *fast {
		q = experiment.Fast()
	}

	selected := experiment.Registry()
	if *only != "" {
		e, ok := experiment.Find(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid experiments:\n  %s\n",
				*only, strings.Join(experiment.Names(), " "))
			os.Exit(2)
		}
		selected = []experiment.Experiment{e}
	}

	// The host clock is injected here: model code never reads it (the
	// wallclock analyzer forbids time.* under internal/), and timings
	// only feed the stderr report, never stdout bytes.
	s := experiment.NewSessionWith(q, experiment.SessionOptions{
		Workers:        *workers,
		Clock:          func() int64 { return time.Now().UnixNano() },
		ShadowFraction: *shadow,
	})

	if *restore {
		if *checkpoint == "" {
			log.Fatal("-restore requires -checkpoint")
		}
		n, notes, err := s.LoadCache(*checkpoint)
		for _, note := range notes {
			fmt.Fprintln(os.Stderr, note)
		}
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "restored %d window(s) from %s\n", n, *checkpoint)
		}
	}

	// saveCache persists every window computed so far; called on both
	// the clean exit and the drained one, so an interrupted run's work
	// survives for the next -restore.
	saveCache := func() {
		if *checkpoint == "" {
			return
		}
		n, err := s.SaveCache(*checkpoint)
		if err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "saved %d window(s) to %s\n", n, *checkpoint)
	}

	// finishShadow reports divergences and thermal warnings; it returns
	// the exit code contribution (2 on divergence, else 0).
	finishShadow := func() int {
		code := 0
		for _, d := range s.ShadowDivergences() {
			fmt.Fprintf(os.Stderr, "SHADOW DIVERGENCE %s:\n  stored:     %s\n  recomputed: %s\n", d.Key, d.Stored, d.Recomputed)
			code = 2
		}
		if st := s.EngineStats(); st.ShadowChecked > 0 {
			fmt.Fprintf(os.Stderr, "shadow-verified %d cached window(s), %d divergence(s)\n", st.ShadowChecked, st.ShadowDiverged)
		}
		if n := s.ThermalWarnings(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d thermal solve(s) hit the iteration cap before converging\n", n)
		}
		return code
	}

	// Graceful drain: the first SIGINT/SIGTERM interrupts the engine —
	// in-flight windows finish and are saved — and r3dbench exits 130
	// with a warm-startable cache. A second signal aborts immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Print("signal: draining (in-flight windows finish; interrupt again to abort)")
		s.Interrupt()
		<-sigc
		os.Exit(130)
	}()

	if err := s.Prefetch(experiment.ManifestUnion(q, selected)); err != nil {
		if errors.Is(err, runsched.ErrInterrupted) {
			saveCache()
			finishShadow()
			os.Exit(130)
		}
		log.Fatalf("prefetch: %v", err)
	}

	for _, e := range selected {
		r, err := e.Run(s, *workers)
		if err != nil {
			if errors.Is(err, runsched.ErrInterrupted) {
				saveCache()
				finishShadow()
				os.Exit(130)
			}
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Println(r)
	}

	saveCache()
	code := finishShadow()

	if *jsonOut {
		b, err := s.EngineReport().JSON()
		if err != nil {
			log.Fatalf("engine report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "%s\n", b)
	} else if *stats {
		fmt.Fprint(os.Stderr, s.EngineReport())
	}
	if code != 0 {
		os.Exit(code)
	}
}
