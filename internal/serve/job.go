package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"r3d/internal/campaign"
)

// Job kinds: what a submission asks the daemon to compute.
const (
	// KindCampaign runs a fault-injection grid through the hardened
	// campaign harness and returns the byte-stable aggregate report.
	KindCampaign = "campaign"
	// KindExperiment prefetches and renders one registry experiment at a
	// quality tier through the shared session engine.
	KindExperiment = "experiment"
)

// Job states. Queued and running are transient; the rest are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"   // deterministic job error (bad grid, harness failure)
	StateExpired  = "expired"  // per-request deadline fired; partial work kept in caches
	StateCanceled = "canceled" // drained before (or while) running
)

// Submission is the client-facing request body of POST /api/v1/jobs.
// Exactly one of Grid (kind "campaign") or Experiment (kind
// "experiment") must be set. DeadlineMS is per-request quality of
// service and deliberately excluded from the job fingerprint: the
// deadline of whoever creates the job applies to it.
type Submission struct {
	Kind       string `json:"kind"`
	Experiment string `json:"experiment,omitempty"`
	// Quality names the tier an experiment runs at ("" selects the
	// cheapest configured tier). Under load the server may degrade the
	// request to a cheaper tier; the response marks the downgrade.
	Quality    string         `json:"quality,omitempty"`
	Grid       *campaign.Grid `json:"grid,omitempty"`
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
}

// fingerprintSpec is the canonical content a job ID hashes: everything
// that changes what the job computes, and nothing that does not
// (deadlines, client identity). Degradation is applied before
// fingerprinting, so a downgraded "full" request and an explicit "fast"
// request are the same job and join each other.
type fingerprintSpec struct {
	Kind       string         `json:"kind"`
	Experiment string         `json:"experiment,omitempty"`
	Quality    string         `json:"quality,omitempty"`
	Grid       *campaign.Grid `json:"grid,omitempty"`
}

// jobID fingerprints the effective submission content.
func jobID(kind, exp, quality string, grid *campaign.Grid) (string, error) {
	enc, err := json.Marshal(fingerprintSpec{Kind: kind, Experiment: exp, Quality: quality, Grid: grid})
	if err != nil {
		return "", fmt.Errorf("serve: fingerprint submission: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write(enc) // fnv.Write cannot fail
	return fmt.Sprintf("j%016x", h.Sum64()), nil
}

// Job is one admitted unit of work. Identity fields are immutable after
// construction; everything mutable is guarded by mu. The stop channel
// is closed (once, via stopped) to drain the job early — deadline
// expiry or server drain — and doneCh is closed when the job reaches a
// terminal state.
type Job struct {
	ID         string
	Kind       string
	Experiment string
	Quality    string
	Grid       *campaign.Grid
	DeadlineNS int64
	Restored   bool // served from the persisted job store, not computed this process

	stop   chan struct{}
	doneCh chan struct{}

	mu sync.Mutex
	// r3dlint:guardedby mu
	state string
	// r3dlint:guardedby mu
	version int64
	// r3dlint:guardedby mu
	changed chan struct{} // closed and replaced on every version bump
	// r3dlint:guardedby mu
	done int
	// r3dlint:guardedby mu
	total int
	// r3dlint:guardedby mu
	result []byte
	// r3dlint:guardedby mu
	contentType string
	// r3dlint:guardedby mu
	errMsg string
	// r3dlint:guardedby mu
	stopped bool
	// r3dlint:guardedby mu
	stopReason string
}

// newJob constructs an admitted job in the queued state.
func newJob(id string, sub Submission, quality string, deadlineNS int64) *Job {
	return &Job{
		ID:         id,
		Kind:       sub.Kind,
		Experiment: sub.Experiment,
		Quality:    quality,
		Grid:       sub.Grid,
		DeadlineNS: deadlineNS,
		stop:       make(chan struct{}),
		doneCh:     make(chan struct{}),
		state:      StateQueued,
		version:    1,
		changed:    make(chan struct{}),
	}
}

// restoredJob reconstructs a terminal job from the persisted store.
//
// r3dlint:closer restored jobs are born terminal — the constructor hands the fresh doneCh straight to its one close
func restoredJob(rec storedJob) *Job {
	j := newJob(rec.ID, Submission{Kind: rec.Kind, Experiment: rec.Experiment, Grid: rec.Grid}, rec.Quality, 0)
	j.Restored = true
	j.mu.Lock()
	j.state = StateDone
	j.result = []byte(rec.Result)
	j.contentType = rec.ContentType
	j.mu.Unlock()
	close(j.doneCh)
	return j
}

// JobStatus is the JSON view of a job, returned by submissions and
// GET /api/v1/jobs/{id}. Version increases on every observable change;
// long-polls pass it back to wait for the next one.
type JobStatus struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Experiment string `json:"experiment,omitempty"`
	Quality    string `json:"quality,omitempty"`
	State      string `json:"state"`
	Version    int64  `json:"version"`
	// Done/Total report trial-level progress for campaign jobs and
	// window-chunk progress for experiment jobs.
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Error    string `json:"error,omitempty"`
	Restored bool   `json:"restored,omitempty"`
	// ResultBytes is the size of the completed result; the body itself
	// is served by GET /api/v1/jobs/{id}/result.
	ResultBytes int `json:"result_bytes,omitempty"`
}

// bumpLocked advances the version and wakes every long-poller.
func (j *Job) bumpLocked() {
	j.version++
	close(j.changed)
	j.changed = make(chan struct{})
}

// Status returns the current status view (the external form of
// snapshot, for drivers like the chaos harness that poll jobs without
// going through HTTP).
func (j *Job) Status() JobStatus { return j.snapshot() }

// Done returns the channel closed when the job reaches a terminal
// state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Result returns the completed result body and content type; ok is
// false until the job is done.
func (j *Job) Result() ([]byte, string, bool) { return j.resultBody() }

// snapshot returns the current status view.
func (j *Job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:         j.ID,
		Kind:       j.Kind,
		Experiment: j.Experiment,
		Quality:    j.Quality,
		State:      j.state,
		Version:    j.version,
		Done:       j.done,
		Total:      j.total,
		Error:      j.errMsg,
		Restored:   j.Restored,

		ResultBytes: len(j.result),
	}
}

// versionAndChanged returns the long-poll pair: the current version and
// the channel closed on the next change.
func (j *Job) versionAndChanged() (int64, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.version, j.changed
}

// resultBody returns the completed result (nil until done).
func (j *Job) resultBody() ([]byte, string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, "", false
	}
	return j.result, j.contentType, true
}

// begin moves a queued job to running; it reports false for jobs
// already cancelled out of the queue.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.bumpLocked()
	return true
}

// setTotal publishes the job's unit count (trials or window chunks).
func (j *Job) setTotal(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = n
	j.bumpLocked()
}

// noteProgress counts one completed unit and wakes long-pollers. add is
// the number of units that finished (campaign trials report 1; window
// chunks report the chunk size).
func (j *Job) noteProgress(add int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done += add
	j.bumpLocked()
}

// interrupt closes the job's stop channel once, recording why. The job
// drains at its natural grain — in-flight trials or windows finish and
// commit — and the worker marks the terminal state when the run
// returns.
func (j *Job) interrupt(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return
	}
	j.stopped = true
	j.stopReason = reason
	close(j.stop)
}

// interruptReason reports why the job was asked to stop ("" if it was
// not).
func (j *Job) interruptReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.stopped {
		return ""
	}
	return j.stopReason
}

// setTerminal commits the job's final state and returns the state it
// left, so the server can release admission bookkeeping exactly once.
func (j *Job) setTerminal(state string, result []byte, contentType, errMsg string) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	prev := j.state
	if prev == StateDone || prev == StateFailed || prev == StateExpired || prev == StateCanceled {
		return prev // already terminal; keep the first verdict
	}
	j.state = state
	j.result = result
	j.contentType = contentType
	j.errMsg = errMsg
	j.bumpLocked()
	close(j.doneCh)
	return prev
}
