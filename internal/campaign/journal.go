package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"sync"

	"r3d/internal/backoff"
	"r3d/internal/iofault"
)

// The journal is an append-only JSONL file: a header line identifying
// the grid, then one CRC32-guarded TrialOutcome record per completed
// trial in completion order. Because every line is written atomically
// under a mutex, a campaign killed at any point leaves at worst one
// torn final line; resume truncates the file back to its last valid
// record, re-runs only the trials without an outcome, and the aggregate
// (ordered by trial ID, not journal order) is byte-identical to an
// uninterrupted run. The per-record checksum extends that guarantee
// from torn tails to corruption anywhere: a record whose payload no
// longer matches its CRC — and everything after it, whose framing can
// no longer be trusted — is discarded and its trials re-run.

const (
	journalMagic   = "r3d-campaign-journal"
	journalVersion = 2
	// journalSchema names the record schema this build reads and
	// writes. It is hashed into the grid fingerprint, so a resume
	// against a journal from an incompatible build fails the
	// fingerprint check loudly even before the explicit version check —
	// record schemas are never mixed within one file.
	journalSchema = "r3d-campaign-journal/v2"
)

type journalHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Schema  string `json:"schema"`
	// Fingerprint hashes the canonical encoding of the full trial grid
	// together with the journal schema: resuming under a different grid
	// or an incompatible build is an error, not a silent partial re-run.
	Fingerprint string `json:"fingerprint"`
}

// journalRecord wraps one outcome with a CRC32 over its exact payload
// bytes, so corruption inside the file body is detected, not replayed.
type journalRecord struct {
	CRC     string          `json:"crc"`
	Outcome json.RawMessage `json:"outcome"`
}

// gridFingerprint hashes the journal schema plus the canonical JSON
// encoding of the specs. Bumping journalSchema therefore changes every
// fingerprint, which is exactly the loud failure an incompatible resume
// needs.
func gridFingerprint(specs []TrialSpec) (string, error) {
	enc, err := json.Marshal(specs)
	if err != nil {
		return "", fmt.Errorf("campaign: fingerprint grid: %w", err)
	}
	h := fnv.New64a()
	if _, err := h.Write([]byte(journalSchema + "\n")); err != nil {
		return "", err
	}
	if _, err := h.Write(enc); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// journalRetry bounds the in-line retry of one journal append against
// transient storage faults. No sleeping: trials keep completing while
// the append retries, and a chaos schedule that outlasts three
// attempts is modelling a dead device, which must stick as an error.
var journalRetry = backoff.Policy{Attempts: 3}

type journal struct {
	mu sync.Mutex
	f  iofault.File // handle is immutable after openJournal; writes serialize on mu
	// r3dlint:guardedby mu
	n int64 // bytes committed (header + intact records)
	// r3dlint:guardedby mu
	dirty bool // last append may have left a torn suffix past n
	// r3dlint:guardedby mu
	err error // first append error, surfaced at close
}

// openJournal prepares the journal at path. Without resume the file is
// truncated and a fresh header written. With resume an existing file is
// validated against the grid fingerprint, truncated past any torn or
// corrupt suffix, and its outcomes returned in journal order; a missing
// or empty file degrades to a fresh start so resuming is safe on the
// first run too. fromOffset > 0 skips records before that byte offset
// (the checkpoint restore path: the snapshot already vouches for the
// prefix, so only the suffix replays); an offset the journal cannot
// honor falls back to a full replay with an explanatory note.
func openJournal(fsys iofault.FS, path string, fingerprint string, resume bool, fromOffset int64) (*journal, []TrialOutcome, []string, error) {
	if resume {
		done, validLen, exists, notes, err := readJournal(fsys, path, fingerprint, fromOffset)
		if err != nil {
			return nil, nil, nil, err
		}
		if exists {
			f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("campaign: reopen journal: %w", err)
			}
			// Drop the torn or corrupt suffix of an interrupted writer so
			// new outcomes never glue onto its fragments.
			if err := f.Truncate(validLen); err != nil {
				return nil, nil, nil, fmt.Errorf("campaign: trim journal: %w", err)
			}
			if _, err := f.Seek(validLen, io.SeekStart); err != nil {
				return nil, nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
			}
			return &journal{f: f, n: validLen}, done, notes, nil
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("campaign: create journal: %w", err)
	}
	hdr, err := json.Marshal(journalHeader{Magic: journalMagic, Version: journalVersion, Schema: journalSchema, Fingerprint: fingerprint})
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		return nil, nil, nil, fmt.Errorf("campaign: write journal header: %w", err)
	}
	return &journal{f: f, n: int64(len(hdr) + 1)}, nil, nil, nil
}

// readJournal parses an existing journal, returning the outcomes it
// holds (in journal order) and the byte length of its valid prefix
// (header plus intact records). exists is false when the file is
// missing or empty — a fresh start. A present file with a foreign
// header or fingerprint is an error. Torn or checksum-failing records —
// and everything after them — are reported in notes and excluded, so
// their trials re-run.
func readJournal(fsys iofault.FS, path string, fingerprint string, fromOffset int64) ([]TrialOutcome, int64, bool, []string, error) {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil, nil
	}
	if err != nil {
		return nil, 0, false, nil, fmt.Errorf("campaign: read journal: %w", err)
	}
	if len(data) == 0 {
		return nil, 0, false, nil, nil // empty file: fresh start
	}
	line, rest, ok := cutLine(data)
	var hdr journalHeader
	if !ok || json.Unmarshal(line, &hdr) != nil || hdr.Magic != journalMagic {
		return nil, 0, false, nil, fmt.Errorf("campaign: %s is not a campaign journal", path)
	}
	if hdr.Version != journalVersion {
		return nil, 0, false, nil, fmt.Errorf("campaign: journal version %d unsupported (want %d): %s was written by an incompatible build; pass a fresh -journal path", hdr.Version, journalVersion, path)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, 0, false, nil, fmt.Errorf("campaign: journal %s was written for a different trial grid or schema (fingerprint %s, want %s); pass a fresh -journal path or drop -resume", path, hdr.Fingerprint, fingerprint)
	}

	var notes []string
	headerLen := int64(len(line) + 1)
	validLen := headerLen
	if fromOffset > headerLen {
		// The checkpoint path: skip the prefix the snapshot already
		// holds, but only when the offset is plausible — inside the file
		// and on a record boundary. Otherwise the journal is shorter than
		// the snapshot believed (a lost flush), and the only safe move is
		// a full replay.
		if fromOffset <= int64(len(data)) && data[fromOffset-1] == '\n' {
			rest = data[fromOffset:]
			validLen = fromOffset
		} else {
			notes = append(notes, fmt.Sprintf("campaign: journal %s is shorter than the checkpoint recorded (%d bytes < offset %d); replaying the full journal", path, len(data), fromOffset))
		}
	}

	var done []TrialOutcome
	for len(rest) > 0 {
		line, next, ok := cutLine(rest)
		if !ok {
			// Unterminated fragment: never a committed record, since the
			// writer emits each record and its newline in a single write.
			notes = append(notes, fmt.Sprintf("campaign: journal %s ends in a torn record (%d bytes); its trial re-runs", path, len(rest)))
			break
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.Outcome == nil {
			notes = append(notes, fmt.Sprintf("campaign: journal %s has a malformed record at byte %d; discarding it and the %d bytes after it (their trials re-run)", path, validLen, int64(len(rest))-int64(len(line)+1)))
			break
		}
		if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(rec.Outcome)); got != rec.CRC {
			notes = append(notes, fmt.Sprintf("campaign: journal %s has a checksum-failing record at byte %d (stored %s, computed %s); discarding it and the %d bytes after it (their trials re-run)", path, validLen, rec.CRC, got, int64(len(rest))-int64(len(line)+1)))
			break
		}
		var out TrialOutcome
		if json.Unmarshal(rec.Outcome, &out) != nil || out.ID == "" {
			notes = append(notes, fmt.Sprintf("campaign: journal %s has an undecodable outcome at byte %d; discarding it and everything after it", path, validLen))
			break
		}
		done = append(done, out)
		validLen += int64(len(line) + 1)
		rest = next
	}
	return done, validLen, true, notes, nil
}

// cutLine splits b at its first newline. ok is false when no newline
// remains.
func cutLine(b []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return b[:i], b[i+1:], true
}

// append journals one outcome, retrying transient storage faults with
// a truncate-and-rewrite so a retried record never glues onto the torn
// prefix a failed attempt left behind. Errors are sticky and surfaced
// at close so workers never have to unwind mid-trial for an I/O
// failure.
func (j *journal) append(out TrialOutcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	payload, err := json.Marshal(out)
	if err != nil {
		j.err = err
		return
	}
	enc, err := json.Marshal(journalRecord{CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)), Outcome: payload})
	if err != nil {
		j.err = err
		return
	}
	line := append(enc, '\n')
	if err := backoff.Retry(journalRetry, nil, func() error { return j.attemptLocked(line) }); err != nil {
		j.err = fmt.Errorf("campaign: journal append: %w", err)
		return
	}
	j.n += int64(len(line))
}

// attemptLocked is one append attempt. It runs with mu held — its only
// caller is append's retry closure — but the call arrives through
// backoff.Retry, which hides the locked call site from the mutexguard
// propagation; the suppressions below record that proof obligation.
func (j *journal) attemptLocked(line []byte) error {
	//lint:ignore mutexguard called with mu held; the backoff.Retry indirection hides append's locked call site
	if j.dirty {
		// A prior attempt may have landed a partial record (a short
		// write, or ENOSPC after a prefix); claw the file back to the
		// last committed boundary before rewriting.
		//lint:ignore mutexguard called with mu held; see the function comment
		if terr := j.f.Truncate(j.n); terr != nil { //lint:ignore blockhold the truncate must run inside the critical section so j.n and the file prefix stay in lockstep for checkpoint offsets
			return fmt.Errorf("campaign: trim torn journal suffix: %w", terr)
		}
		//lint:ignore mutexguard called with mu held; see the function comment
		if _, serr := j.f.Seek(j.n, io.SeekStart); serr != nil { //lint:ignore blockhold same critical section as the truncate above
			return fmt.Errorf("campaign: reseek journal: %w", serr)
		}
		//lint:ignore mutexguard called with mu held; see the function comment
		j.dirty = false
	}
	//lint:ignore blockhold the append must commit inside the critical section so j.n and the file prefix stay in lockstep for checkpoint offsets
	if _, werr := j.f.Write(line); werr != nil {
		//lint:ignore mutexguard called with mu held; see the function comment
		j.dirty = true
		return werr
	}
	return nil
}

// bytes returns the committed byte length — the offset a checkpoint
// records so restore can replay only the suffix written after it.
func (j *journal) bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// sync flushes the journal to stable storage (the graceful-drain path).
func (j *journal) sync() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	//lint:ignore blockhold fsync under the lock keeps late appends from racing the drain-path flush; called once per campaign, not per trial
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("campaign: journal sync: %w", err)
	}
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	//lint:ignore blockhold close runs once at campaign teardown after the workers have drained; holding mu orders it after any straggling append
	if err := j.f.Close(); j.err == nil && err != nil {
		j.err = fmt.Errorf("campaign: close journal: %w", err)
	}
	return j.err
}
