// Package chanownmod seeds three chanown violations — a non-owner
// close of a parameter, a double close, and a send after close —
// alongside the sanctioned shapes: the owning type's Close method,
// an annotated hand-off closer, and a reasoned suppression, so the
// golden test pins the analyzer's exact output.
package chanownmod

// Feed owns its updates channel: the constructor allocates it and the
// Close method retires it.
type Feed struct {
	updates chan int
}

// NewFeed allocates the owned channel.
func NewFeed() *Feed {
	return &Feed{updates: make(chan int)}
}

// Close is the owner's method: clean.
func (f *Feed) Close() {
	close(f.updates)
}

// Hijack closes a channel parameter it does not own.
func Hijack(ch chan int) {
	close(ch)
}

// DoubleClose closes the same channel twice on the !ok path.
func DoubleClose(ok bool) {
	done := make(chan struct{})
	close(done)
	if !ok {
		close(done)
	}
}

// SendAfterClose sends on a channel it already closed.
func SendAfterClose() {
	out := make(chan int, 1)
	close(out)
	out <- 1
}

// Retire is the sanctioned hand-off: producers delegate the close here.
//
// r3dlint:closer fixture: producers hand drained batches here to retire
func Retire(ch chan int) {
	close(ch)
}

// Produce allocates, fills, and hands off: clean.
func Produce() {
	ch := make(chan int, 4)
	ch <- 1
	Retire(ch)
}

// Sneak documents an ownership transfer the analyzer cannot see.
func Sneak(ch chan int) {
	//lint:ignore chanown fixture: ownership transferred by a protocol documented at the call site
	close(ch)
}
