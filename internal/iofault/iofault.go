// Package iofault is the repo's storage-fault boundary: every durable
// write in the tree (checkpoints, campaign journals, the daemon job
// store and window caches) goes through its FS interface, so the exact
// same code path that runs against the real filesystem in production
// can run against a deterministic, seeded fault lattice under test.
//
// The package mirrors the paper's fault taxonomy at the storage/OS
// layer. The 2D/3D fault-tolerance literature distinguishes transient,
// intermittent and permanent faults; here that maps onto:
//
//   - transient: a write or rename that fails once and would succeed if
//     retried (injected write errors, ENOSPC, rename failures) — the
//     retry/backoff layer above must absorb these;
//   - intermittent: short writes and dropped syncs — the operation
//     "succeeds" but leaves less durable state than the caller believes,
//     which only a later crash exposes;
//   - permanent: a device that has failed for good (the crashed state of
//     FaultFS, or a scheduled fail-forever point) — retrying is
//     pointless and the caller must degrade instead.
//
// Three implementations:
//
//   - OS() — the passthrough production filesystem;
//   - NewMemFS() — an in-memory filesystem with honest crash semantics
//     (volatile vs durable views, fsync and directory-sync tracked
//     separately, Crash() discards everything not durable);
//   - NewFaultFS() — a wrapper over any FS that injects faults from a
//     seeded, byte-reproducible schedule and logs every injection.
package iofault

import (
	"fmt"
	"io/fs"
	"os"
)

// File is the writable-file surface the durable layers need: the method
// set is a subset of *os.File, which satisfies it directly.
type File interface {
	Write(p []byte) (int, error)
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface the durable layers need. All paths are
// host paths (the MemFS namespace is flat but path-shaped, so the same
// paths work against every implementation).
type FS interface {
	// OpenFile opens name with os-style flags (os.O_WRONLY,
	// os.O_CREATE, os.O_TRUNC, os.O_RDWR ...).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new file in dir from pattern (one '*' is
	// replaced with a unique suffix), like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat reports whether name exists (the only use the durable layers
	// make of it).
	Stat(name string) (fs.FileInfo, error)
	// SyncDir makes dir's directory entries (creates, renames, removes)
	// durable, the way fsyncing an opened directory does.
	SyncDir(dir string) error
}

// Class is the retryability of an injected (or classified) failure.
type Class int

const (
	// ClassTransient faults may succeed if retried: the fault model is
	// a one-shot upset, not a dead device.
	ClassTransient Class = iota
	// ClassPermanent faults repeat on every retry; callers must surface
	// or degrade.
	ClassPermanent
)

func (c Class) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "permanent"
}

// Kind names one storage-fault species in the injection lattice.
type Kind string

const (
	// KindWriteErr is a transient write failure with no bytes written.
	KindWriteErr Kind = "write-error"
	// KindShortWrite writes a prefix of the payload, then fails
	// transiently — the torn-record generator.
	KindShortWrite Kind = "short-write"
	// KindENOSPC is a transient out-of-space failure (space can free).
	KindENOSPC Kind = "enospc"
	// KindRenameErr is a transient rename failure.
	KindRenameErr Kind = "rename-error"
	// KindSyncDrop silently drops an fsync: the call returns nil but
	// nothing becomes durable, so a later crash loses the writes.
	KindSyncDrop Kind = "sync-drop"
	// KindBitFlip corrupts one bit of the written payload; the write
	// itself reports success.
	KindBitFlip Kind = "bit-flip"
	// KindSlowIO injects latency (accounted deterministically; actually
	// slept only when the FaultFS has a sleeper wired).
	KindSlowIO Kind = "slow-io"
	// KindCrash marks the scheduled crash point: the op and everything
	// after it fail permanently until the harness recovers the FS.
	KindCrash Kind = "crash"
)

// Error is an injected storage fault. It carries its own retryability
// class so the backoff layer's taxonomy needs no fault-kind table.
type Error struct {
	Op    string // "write", "sync", "rename", ...
	Path  string
	Kind  Kind
	Seq   int64 // global op sequence number at injection
	Class Class
	// Errno, when non-nil, is the OS-level error this fault simulates
	// (e.g. syscall.ENOSPC); errors.Is sees through it.
	Errno error
}

func (e *Error) Error() string {
	return fmt.Sprintf("iofault: injected %s %s on %s %s (op %d)", e.Class, e.Kind, e.Op, e.Path, e.Seq)
}

// Unwrap exposes the simulated OS error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Errno }

// Transient reports the fault's retryability; internal/backoff keys its
// classification off this interface.
func (e *Error) Transient() bool { return e.Class == ClassTransient }

// osFS is the production passthrough.
type osFS struct{}

// OS returns the real filesystem. It is what every durable layer uses
// when no FS is injected.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync failure is the error worth reporting
		return err
	}
	return d.Close()
}
