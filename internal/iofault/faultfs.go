package iofault

import (
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"syscall"
)

// Schedule is one seeded fault lattice: per-operation injection rates
// for each fault kind, plus two scheduled cliffs — a crash point and a
// permanent-failure point. The schedule is the unit of reproducibility:
// the same Schedule over the same operation sequence injects the same
// faults at the same ops, byte for byte.
type Schedule struct {
	// Seed drives every injection draw. Two FaultFS instances with the
	// same Seed and rates, fed the same op sequence, inject identically.
	Seed int64

	// Per-op injection probabilities in [0,1]. Writes are eligible for
	// WriteErr, ShortWrite, ENOSPC and BitFlip (at most one fires per
	// op); Sync for SyncDrop; Rename for RenameErr; every op for SlowIO.
	WriteErr   float64
	ShortWrite float64
	ENOSPC     float64
	BitFlip    float64
	SyncDrop   float64
	RenameErr  float64
	SlowIO     float64

	// SlowIONanos is the latency one SlowIO injection accounts (and
	// sleeps, when a sleeper is wired). 0 selects 1ms.
	SlowIONanos int64

	// CrashAtOp, when > 0, fails that operation and every later one
	// with a permanent crash error; the harness then calls MemFS.Crash
	// and restarts the system under test. The Crashed channel closes at
	// that moment so a campaign can stop computing promptly.
	CrashAtOp int64

	// FailWritesFrom, when > 0, makes every write, sync and rename from
	// that op onward fail permanently — the dead-device scenario that
	// must exhaust retries and degrade serving rather than crash it.
	FailWritesFrom int64
}

// Fault is one injected fault, as recorded in the log.
type Fault struct {
	Seq  int64
	Op   string
	Kind Kind
	Path string
}

// String renders the canonical log line; the chaos determinism check
// byte-compares these across same-seed runs.
func (f Fault) String() string {
	return fmt.Sprintf("op=%d %s kind=%s path=%s", f.Seq, f.Op, f.Kind, f.Path)
}

// FaultFS wraps an inner FS and injects faults from a seeded Schedule.
// Decisions are drawn under a mutex in operation order, so a
// single-threaded caller (the chaos harness runs campaigns with one
// worker) gets a fully deterministic fault sequence.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// r3dlint:guardedby mu
	rng *rand.Rand
	// r3dlint:guardedby mu
	seq int64
	// r3dlint:guardedby mu
	log []Fault
	// r3dlint:guardedby mu
	sched Schedule
	// r3dlint:guardedby mu
	healed bool // Heal() disables all injection
	// r3dlint:guardedby mu
	crashed bool

	crashCh   chan struct{}
	crashOnce sync.Once

	// sleep, when non-nil, is called for SlowIO injections with the
	// scheduled latency. Model code never sleeps on its own; the CLI
	// driver wires a real sleeper.
	sleep func(ns int64)
}

// NewFaultFS wraps inner with the given schedule. sleep may be nil, in
// which case slow-I/O faults are logged and accounted but not slept.
func NewFaultFS(inner FS, sched Schedule, sleep func(ns int64)) *FaultFS {
	if sched.SlowIONanos == 0 {
		sched.SlowIONanos = 1_000_000
	}
	return &FaultFS{
		inner:   inner,
		rng:     rand.New(rand.NewSource(sched.Seed)),
		sched:   sched,
		crashCh: make(chan struct{}),
		sleep:   sleep,
	}
}

// Crashed returns a channel closed when the scheduled crash point
// fires; a campaign passes it as Config.Stop so compute stops promptly
// once storage is gone.
func (f *FaultFS) Crashed() <-chan struct{} { return f.crashCh }

// Heal disables all further injection; subsequent operations pass
// straight through. The degraded-serving scenario uses it to model an
// operator freeing disk space, after which the daemon must re-arm.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healed = true
}

// Log returns the injected-fault log so far, in injection order.
func (f *FaultFS) Log() []Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Fault, len(f.log))
	copy(out, f.log)
	return out
}

// LogLines renders the log canonically, one line per fault.
func (f *FaultFS) LogLines() []string {
	faults := f.Log()
	lines := make([]string, len(faults))
	for i, fl := range faults {
		lines[i] = fl.String()
	}
	return lines
}

// decision is what decide returns: the fault to inject on this op, if
// any, plus bookkeeping captured under the lock so the actual I/O (and
// any sleeping) happens outside it.
type decision struct {
	seq   int64
	kind  Kind  // "" = no fault
	class Class // retryability of the injected fault
	slow  bool
	sleep func(ns int64)
	ns    int64
}

// decide draws the injection decision for one operation. writeLike
// marks ops eligible for the permanent-failure cliff; kinds lists the
// fault kinds this op is eligible for, in precedence order.
func (f *FaultFS) decide(op, path string, writeLike bool, kinds ...Kind) decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	d := decision{seq: f.seq}
	if f.healed {
		return d
	}
	if f.sched.CrashAtOp > 0 && f.seq >= f.sched.CrashAtOp {
		f.crashed = true
		f.record(Fault{Seq: f.seq, Op: op, Kind: KindCrash, Path: path})
		f.crashOnce.Do(func() { close(f.crashCh) })
		d.kind = KindCrash
		d.class = ClassPermanent
		return d
	}
	if writeLike && f.sched.FailWritesFrom > 0 && f.seq >= f.sched.FailWritesFrom {
		// The dead-device cliff: same write-error kind, permanent class.
		f.record(Fault{Seq: f.seq, Op: op, Kind: KindWriteErr, Path: path})
		d.kind = KindWriteErr
		d.class = ClassPermanent
		return d
	}
	// One uniform draw per op, walked against cumulative rates in a
	// fixed kind order, so adding a kind never perturbs earlier draws.
	u := f.rng.Float64()
	acc := 0.0
	for _, k := range kinds {
		acc += f.rate(k)
		if u < acc {
			f.record(Fault{Seq: f.seq, Op: op, Kind: k, Path: path})
			d.kind = k
			break
		}
	}
	// Slow I/O draws independently: latency can stack on any outcome.
	if f.sched.SlowIO > 0 && f.rng.Float64() < f.sched.SlowIO {
		f.record(Fault{Seq: f.seq, Op: op, Kind: KindSlowIO, Path: path})
		d.slow = true
		d.sleep = f.sleep
		d.ns = f.sched.SlowIONanos
	}
	return d
}

// record appends to the fault log (mu held).
func (f *FaultFS) record(fl Fault) { f.log = append(f.log, fl) }

func (f *FaultFS) rate(k Kind) float64 {
	switch k {
	case KindWriteErr:
		return f.sched.WriteErr
	case KindShortWrite:
		return f.sched.ShortWrite
	case KindENOSPC:
		return f.sched.ENOSPC
	case KindBitFlip:
		return f.sched.BitFlip
	case KindSyncDrop:
		return f.sched.SyncDrop
	case KindRenameErr:
		return f.sched.RenameErr
	default:
		return 0
	}
}

// apply runs the decision's side effects that live outside the lock.
func (d decision) applySlow() {
	if d.slow && d.sleep != nil {
		d.sleep(d.ns)
	}
}

// err builds the injected error for the decision.
func (d decision) err(op, path string) error {
	var errno error
	if d.kind == KindENOSPC {
		errno = syscall.ENOSPC
	}
	return &Error{Op: op, Path: path, Kind: d.kind, Seq: d.seq, Class: d.class, Errno: errno}
}

// --- FS implementation ---

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	d := f.decide("open", name, false)
	d.applySlow()
	if d.kind == KindCrash {
		return nil, d.err("open", name)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	d := f.decide("create-temp", dir+"/"+pattern, false)
	d.applySlow()
	if d.kind == KindCrash {
		return nil, d.err("create-temp", dir+"/"+pattern)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	d := f.decide("read", name, false)
	d.applySlow()
	if d.kind == KindCrash {
		return nil, d.err("read", name)
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	d := f.decide("rename", oldpath+" -> "+newpath, true, KindRenameErr)
	d.applySlow()
	switch d.kind {
	case KindCrash, KindWriteErr, KindRenameErr:
		return d.err("rename", oldpath+" -> "+newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	d := f.decide("remove", name, false)
	d.applySlow()
	if d.kind == KindCrash {
		return d.err("remove", name)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	// Stats are metadata reads; only the crash cliff affects them, and
	// they do not consume an injection draw (they are not durable ops).
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, &Error{Op: "stat", Path: name, Kind: KindCrash, Class: ClassPermanent}
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	d := f.decide("sync-dir", dir, true, KindSyncDrop)
	d.applySlow()
	switch d.kind {
	case KindCrash, KindWriteErr:
		return d.err("sync-dir", dir)
	case KindSyncDrop:
		return nil // silently dropped: entries stay volatile
	}
	return f.inner.SyncDir(dir)
}

// faultFile wraps one inner handle; write-path faults inject here.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (w *faultFile) Name() string { return w.inner.Name() }

func (w *faultFile) Write(p []byte) (int, error) {
	d := w.fs.decide("write", w.inner.Name(), true, KindWriteErr, KindShortWrite, KindENOSPC, KindBitFlip)
	d.applySlow()
	switch d.kind {
	case KindCrash, KindWriteErr:
		return 0, d.err("write", w.inner.Name())
	case KindENOSPC:
		// Out-of-space after a prefix landed: the mid-record torn-write
		// generator. Half the payload (at least one byte) goes down.
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		if n > 0 {
			if wrote, werr := w.inner.Write(p[:n]); werr != nil {
				return wrote, werr
			}
		}
		return n, d.err("write", w.inner.Name())
	case KindShortWrite:
		n := (len(p) + 2) / 3 // a third of the payload, at least one byte
		if n >= len(p) && len(p) > 0 {
			n = len(p) - 1
		}
		if n > 0 {
			if wrote, werr := w.inner.Write(p[:n]); werr != nil {
				return wrote, werr
			}
		}
		return n, d.err("write", w.inner.Name())
	case KindBitFlip:
		// The write "succeeds" but one bit is corrupt on the way down;
		// only a CRC check can catch it later.
		if len(p) == 0 {
			return w.inner.Write(p)
		}
		flipped := make([]byte, len(p))
		copy(flipped, p)
		// Position derives from the op sequence, keeping it
		// deterministic without another rng draw.
		i := int(d.seq) % len(flipped)
		flipped[i] ^= 1 << (uint(d.seq) % 8)
		return w.inner.Write(flipped)
	}
	return w.inner.Write(p)
}

func (w *faultFile) Truncate(size int64) error {
	d := w.fs.decide("truncate", w.inner.Name(), true, KindWriteErr)
	d.applySlow()
	switch d.kind {
	case KindCrash, KindWriteErr:
		return d.err("truncate", w.inner.Name())
	}
	return w.inner.Truncate(size)
}

func (w *faultFile) Seek(offset int64, whence int) (int64, error) {
	// Seeks move a cursor, not data; only the crash cliff affects them.
	w.fs.mu.Lock()
	crashed := w.fs.crashed
	w.fs.mu.Unlock()
	if crashed {
		return 0, &Error{Op: "seek", Path: w.inner.Name(), Kind: KindCrash, Class: ClassPermanent}
	}
	return w.inner.Seek(offset, whence)
}

func (w *faultFile) Sync() error {
	d := w.fs.decide("sync", w.inner.Name(), true, KindSyncDrop)
	d.applySlow()
	switch d.kind {
	case KindCrash, KindWriteErr:
		return d.err("sync", w.inner.Name())
	case KindSyncDrop:
		return nil // reported durable, actually volatile
	}
	return w.inner.Sync()
}

func (w *faultFile) Close() error {
	d := w.fs.decide("close", w.inner.Name(), false)
	d.applySlow()
	if d.kind == KindCrash {
		return d.err("close", w.inner.Name())
	}
	return w.inner.Close()
}
