package lint

import (
	"strings"
	"testing"
)

func TestChanOwnCloseOwnership(t *testing.T) {
	src := `package fixture

type feed struct {
	updates chan int
}

func newFeed() *feed {
	return &feed{updates: make(chan int)}
}

// Close is a method of the owning type: clean.
func (f *feed) Close() {
	close(f.updates)
}

// hijack closes a parameter it does not own.
func hijack(ch chan int) {
	close(ch)
}

// poach closes another type's field from a plain function.
func poach(f *feed) {
	close(f.updates)
}

// rebuild allocates the field itself, so its close is sanctioned.
func rebuild() {
	f := &feed{updates: make(chan int)}
	close(f.updates)
}

// retire is the sanctioned hand-off: the owner delegates the close.
//
// r3dlint:closer the producer hands the drained channel here to close
func retire(ch chan int) {
	close(ch)
}

func produce() {
	ch := make(chan int, 4)
	ch <- 1
	retire(ch)
}
`
	got := findings(t, ChanOwn, modelPath, src)
	wantChecks(t, got, "chanown", "chanown")
	if !strings.Contains(got[0].Message, "channel parameter ch") {
		t.Errorf("param close message: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "outside its owning type") {
		t.Errorf("field close message: %q", got[1].Message)
	}
}

func TestChanOwnDoubleCloseAndSendAfterClose(t *testing.T) {
	src := `package fixture

func double(ok bool) {
	done := make(chan struct{})
	close(done)
	if !ok {
		close(done)
	}
}

func resend() {
	out := make(chan int, 1)
	close(out)
	out <- 1
}

// reopen reassigns between the closes: clean.
func reopen() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch)
}

// branchClose closes on only one arm, then closes after the join: the
// may-closed path is flagged.
func branchClose(ok bool) {
	ch := make(chan int)
	if ok {
		close(ch)
	}
	close(ch)
}

func deferredDouble() {
	ch := make(chan int)
	defer close(ch)
	defer close(ch)
}
`
	got := findings(t, ChanOwn, modelPath, src)
	wantChecks(t, got, "chanown", "chanown", "chanown", "chanown")
	if !strings.Contains(got[0].Message, "second close") {
		t.Errorf("double close message: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "send on out after close") {
		t.Errorf("send-after-close message: %q", got[1].Message)
	}
	if !strings.Contains(got[3].Message, "second deferred close") {
		t.Errorf("deferred double close message: %q", got[3].Message)
	}
}

func TestChanOwnInterproceduralCloseChain(t *testing.T) {
	src := `package fixture

// finish forwards to sink, which closes: the summary chain crosses two
// calls.
func finish(ch chan int) {
	sink(ch)
}

// r3dlint:closer drained batches are retired here
func sink(ch chan int) {
	close(ch)
}

func run() {
	ch := make(chan int)
	close(ch)
	finish(ch)
}

func pump(ch chan int) {
	ch <- 9
}

func runSend() {
	ch := make(chan int, 1)
	close(ch)
	pump(ch)
}
`
	got := findings(t, ChanOwn, modelPath, src)
	// finish only forwards to the annotated closer, so it is clean; run
	// passes a closed channel to finish (finding), runSend passes a
	// closed channel to pump which sends (finding).
	wantChecks(t, got, "chanown", "chanown")
	if !strings.Contains(got[0].Message, "finish → sink → close(ch)") {
		t.Errorf("close chain missing: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "pump → send(ch)") {
		t.Errorf("send chain missing: %q", got[1].Message)
	}
}

func TestChanOwnNilChannels(t *testing.T) {
	src := `package fixture

func stuckSend() {
	var ch chan int
	ch <- 1
}

func stuckRecv() {
	var ch chan int
	<-ch
}

// disabled uses a nil channel to park a select case: idiomatic, clean.
func disabled(in chan int) int {
	var gate chan int
	for {
		select {
		case v := <-gate:
			return v
		case v := <-in:
			return v
		}
	}
}

// madeLater is nil only until the make: clean.
func madeLater() {
	var ch chan int
	ch = make(chan int, 1)
	ch <- 1
}
`
	got := findings(t, ChanOwn, modelPath, src)
	wantChecks(t, got, "chanown", "chanown")
	if !strings.Contains(got[0].Message, "send on nil channel") {
		t.Errorf("nil send message: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "receive from nil channel") {
		t.Errorf("nil recv message: %q", got[1].Message)
	}
}

func TestChanOwnSuppressionAndFieldReassign(t *testing.T) {
	src := `package fixture

type job struct {
	changed chan struct{}
}

// bump is the close-then-rearm broadcast: the reassignment clears the
// closed state, so the later close of the fresh channel is clean.
func (j *job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
	close(j.changed)
}

func sneak(ch chan int) {
	//lint:ignore chanown fixture: ownership transferred by protocol documented here
	close(ch)
}
`
	got := findings(t, ChanOwn, modelPath, src)
	wantChecks(t, got)
}
