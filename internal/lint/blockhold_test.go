package lint

import (
	"strings"
	"testing"
)

func TestBlockHoldDirectOps(t *testing.T) {
	src := `package fixture

import (
	"sync"
	"time"
)

type q struct {
	mu sync.Mutex
	ch chan int
}

func (x *q) badSend(v int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ch <- v // channel send under the lock
}

func (x *q) badSleep() {
	x.mu.Lock()
	time.Sleep(time.Millisecond)
	x.mu.Unlock()
}

func (x *q) goodSend(v int) {
	x.mu.Lock()
	x.mu.Unlock()
	x.ch <- v // lock released first
}
`
	got := findings(t, BlockHold, modelPath, src)
	wantChecks(t, got, "blockhold", "blockhold")
	if !strings.Contains(got[0].Message, "channel send") || !strings.Contains(got[0].Message, "fixture.q.mu") {
		t.Errorf("send finding should name op and mutex: %s", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "time.Sleep") {
		t.Errorf("sleep finding: %s", got[1].Message)
	}
}

// TestBlockHoldUnlockBeforeReceive is the runsched.Get idiom: register
// under the lock, release it, then wait — the wait must not be flagged.
func TestBlockHoldUnlockBeforeReceive(t *testing.T) {
	src := `package fixture

import "sync"

type memo struct {
	mu   sync.Mutex
	done map[string]chan struct{}
}

func (m *memo) Wait(k string) {
	m.mu.Lock()
	c, ok := m.done[k]
	if !ok {
		c = make(chan struct{})
		m.done[k] = c
	}
	m.mu.Unlock()
	<-c
}
`
	wantChecks(t, findings(t, BlockHold, modelPath, src))
}

func TestBlockHoldSelect(t *testing.T) {
	src := `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	ch chan int
}

func (x *s) blocking() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	select { // no default: parks the goroutine with the lock held
	case v := <-x.ch:
		return v
	}
}

func (x *s) polling() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	select {
	case v := <-x.ch:
		return v
	default:
		return 0
	}
}
`
	got := findings(t, BlockHold, modelPath, src)
	wantChecks(t, got, "blockhold")
	if !strings.Contains(got[0].Message, "select without default") {
		t.Errorf("select finding: %s", got[0].Message)
	}
}

// TestBlockHoldThroughCalls: the I/O sits two calls down; the finding
// lands at the frontier — the call made inside the critical section —
// with the chain to the real operation spelled out.
func TestBlockHoldThroughCalls(t *testing.T) {
	src := `package fixture

import (
	"os"
	"sync"
)

type journal struct {
	mu sync.Mutex
	f  *os.File
}

func (j *journal) flush() error {
	return j.f.Sync()
}

func (j *journal) persist() error {
	return j.flush()
}

func (j *journal) Commit() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.persist()
}
`
	got := findings(t, BlockHold, modelPath, src)
	wantChecks(t, got, "blockhold")
	msg := got[0].Message
	if !strings.Contains(msg, "persist → flush → (*os.File).Sync") {
		t.Errorf("finding should spell out the chain to the I/O: %s", msg)
	}
	if !strings.Contains(msg, "journal.mu") {
		t.Errorf("finding should name the held mutex: %s", msg)
	}
}

// TestBlockHoldAnnotatedFunction: `r3dlint:blocks` marks a module
// function as blocking by contract (the thermal solver's whole-grid
// solve), so calling it under a mutex is flagged without any I/O in
// sight.
func TestBlockHoldAnnotatedFunction(t *testing.T) {
	src := `package fixture

import "sync"

type solver struct{ cells []float64 }

// Solve relaxes the whole grid to convergence.
//
// r3dlint:blocks whole-grid iterative solve, milliseconds per call
func (s *solver) Solve() int {
	n := 0
	for i := range s.cells {
		s.cells[i] *= 0.5
		n++
	}
	return n
}

type rig struct {
	mu sync.Mutex
	s  solver
}

func (r *rig) step() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Solve()
}
`
	got := findings(t, BlockHold, modelPath, src)
	wantChecks(t, got, "blockhold")
	if !strings.Contains(got[0].Message, "Solve (whole-grid iterative solve, milliseconds per call)") {
		t.Errorf("annotated-blocking finding should carry the contract reason: %s", got[0].Message)
	}
}

// TestBlockHoldSuppressionStopsPropagation: a reasoned directive on the
// blocking operation keeps the whole call chain clean, dettaint-style —
// the justification covers every path through it.
func TestBlockHoldSuppressionStopsPropagation(t *testing.T) {
	src := `package fixture

import (
	"os"
	"sync"
)

type wal struct {
	mu sync.Mutex
	f  *os.File
}

func (w *wal) appendRec(b []byte) error {
	//lint:ignore blockhold the WAL write must commit inside the critical section for crash atomicity
	_, err := w.f.Write(b)
	return err
}

func (w *wal) Commit(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendRec(b)
}
`
	wantChecks(t, findings(t, BlockHold, modelPath, src))
}

func TestBlockHoldWaitGroup(t *testing.T) {
	src := `package fixture

import "sync"

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

func (p *pool) drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wg.Wait()
}
`
	got := findings(t, BlockHold, modelPath, src)
	wantChecks(t, got, "blockhold")
	if !strings.Contains(got[0].Message, "(*sync.WaitGroup).Wait") {
		t.Errorf("wait finding: %s", got[0].Message)
	}
}
