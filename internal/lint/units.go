package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Units is a declarative physical-dimension checker. The simulator
// mixes Kelvin-style absolute temperatures with °C fields, GHz with the
// centi-GHz RunKey encoding, and W with mW — exactly the class of
// silent unit bug that corrupted early 3D-thermal studies. The analyzer
// reads a manifest (internal/lint/units.conf at the module root)
// mapping defined types, struct fields, function parameters, results
// and package-level variables to dimension tags, then flags
// cross-dimension assignment, additive arithmetic, comparison, argument
// passing, returns and direct conversions between dimensioned types.
//
// Dimension inference is deliberately shallow: multiplication and
// division clear the dimension (ratios are dimensionless), and an
// expression with no declared dimension is never flagged. Conversions
// to plain numeric types (float64(x)) keep the operand's dimension, so
// laundering a Celsius through float64 into a Kelvin slot is still
// caught; the sanctioned affine conversions carry a reasoned
// //lint:ignore units directive.
var Units = &Analyzer{
	Name:      "units",
	Doc:       "cross-dimension assignment/arithmetic per the units.conf manifest",
	RunModule: runUnits,
}

// unitsConfRel is the manifest location relative to the module root.
const unitsConfRel = "internal/lint/units.conf"

// A unitsTable is the parsed manifest.
type unitsTable struct {
	types   map[string]string // "pkg.Type" → dim
	fields  map[string]string // "pkg.Type.Field" → dim
	params  map[string]string // funcKey + ".param" → dim
	results map[string]string // funcKey → dim (single-result functions)
	vars    map[string]string // "pkg.Name" (package-level var or const) → dim
}

func newUnitsTable() *unitsTable {
	return &unitsTable{
		types:   map[string]string{},
		fields:  map[string]string{},
		params:  map[string]string{},
		results: map[string]string{},
		vars:    map[string]string{},
	}
}

// parseUnitsConf parses the manifest. Lines are
//
//	<kind> <key> <dimension>
//
// with kind ∈ {type, field, param, return, var}, # comments and blank
// lines allowed. Malformed lines are findings, not fatal errors, so a
// broken manifest cannot silently disable the other analyzers.
func parseUnitsConf(data []byte, filename string) (*unitsTable, []Finding) {
	t := newUnitsTable()
	var bad []Finding
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		malformed := func(msg string) {
			bad = append(bad, Finding{
				Check:   "units",
				Pos:     token.Position{Filename: filename, Line: i + 1},
				Message: fmt.Sprintf("bad manifest line: %s", msg),
			})
		}
		if len(fields) != 3 {
			malformed("want `<kind> <key> <dimension>`")
			continue
		}
		kind, key, dim := fields[0], fields[1], fields[2]
		var m map[string]string
		switch kind {
		case "type":
			m = t.types
		case "field":
			m = t.fields
		case "param":
			m = t.params
		case "return":
			m = t.results
		case "var":
			m = t.vars
		default:
			malformed(fmt.Sprintf("unknown kind %q (want type/field/param/return/var)", kind))
			continue
		}
		if prev, dup := m[key]; dup && prev != dim {
			malformed(fmt.Sprintf("%s %s redeclared as %s (was %s)", kind, key, dim, prev))
			continue
		}
		m[key] = dim
	}
	return t, bad
}

func runUnits(mp *ModulePass) {
	if mp.Dir == "" {
		return // fixture runs exercise the checker via runUnitsTable
	}
	conf := filepath.Join(mp.Dir, filepath.FromSlash(unitsConfRel))
	data, err := os.ReadFile(conf)
	if err != nil {
		return // no manifest, nothing to enforce
	}
	table, bad := parseUnitsConf(data, unitsConfRel)
	for _, f := range bad {
		mp.report(f)
	}
	runUnitsTable(mp, table)
}

// runUnitsTable applies the dimension checks to every package.
func runUnitsTable(mp *ModulePass, table *unitsTable) {
	for _, pkg := range mp.Pkgs {
		u := &unitsCtx{mp: mp, t: table, pkg: pkg, paramDims: map[*types.Var]string{}}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					u.checkFunc(d)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								u.checkExpr(v)
							}
						}
					}
				}
			}
		}
	}
}

// unitsCtx is the per-package checking state.
type unitsCtx struct {
	mp  *ModulePass
	t   *unitsTable
	pkg *Package
	// paramDims carries the manifest dimensions of the enclosing
	// function's parameters while its body is walked.
	paramDims map[*types.Var]string
	// resultDim is the enclosing function's declared result dimension.
	resultDim string
}

// funcKey names a function or method the way the manifest does:
// pkg.Func or pkg.Type.Method.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// namedOf unwraps pointers to the underlying named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeDim returns the manifest dimension of a named type.
func (u *unitsCtx) typeDim(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return u.t.types[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// fieldDim returns the manifest dimension of a struct field selection.
func (u *unitsCtx) fieldDim(recv types.Type, field string) string {
	named := namedOf(recv)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return u.t.fields[named.Obj().Pkg().Path()+"."+named.Obj().Name()+"."+field]
}

// dim infers the dimension of an expression, "" when unknown. It never
// reports; the check walk does.
func (u *unitsCtx) dim(e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := u.pkg.Info.Uses[e]; obj != nil {
			if v, ok := obj.(*types.Var); ok {
				if d := u.paramDims[v]; d != "" {
					return d
				}
			}
			if d := u.objVarDim(obj); d != "" {
				return d
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := u.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if d := u.fieldDim(sel.Recv(), sel.Obj().Name()); d != "" {
				return d
			}
		} else if obj := u.pkg.Info.Uses[e.Sel]; obj != nil {
			if d := u.objVarDim(obj); d != "" {
				return d
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return u.dim(e.X)
		}
		return ""
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			if d := u.dim(e.X); d != "" {
				return d
			}
			return u.dim(e.Y)
		}
		return "" // ×, ÷, shifts, …: ratios and products are other dimensions
	case *ast.CallExpr:
		if tv, ok := u.pkg.Info.Types[e.Fun]; ok && tv.IsType() {
			if td := u.typeDim(tv.Type); td != "" {
				return td
			}
			if len(e.Args) == 1 {
				return u.dim(e.Args[0]) // float64(x) keeps x's dimension
			}
			return ""
		}
		if fn := calleeFunc(u.pkg.Info, e); fn != nil {
			if d := u.t.results[funcKey(fn)]; d != "" {
				return d
			}
		}
	}
	if tv, ok := u.pkg.Info.Types[e]; ok && tv.Type != nil {
		return u.typeDim(tv.Type)
	}
	return ""
}

// objVarDim looks up a package-level var or const in the manifest.
func (u *unitsCtx) objVarDim(obj types.Object) string {
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return ""
	}
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return u.t.vars[obj.Pkg().Path()+"."+obj.Name()]
}

// calleeFunc resolves a call's static callee, nil for calls through
// function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkFunc walks one function declaration with its parameter and
// result dimensions in scope.
func (u *unitsCtx) checkFunc(d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	fn, ok := u.pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	key := funcKey(fn)
	sig := fn.Type().(*types.Signature)
	saved := u.paramDims
	u.paramDims = map[*types.Var]string{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if d := u.t.params[key+"."+p.Name()]; d != "" {
			u.paramDims[p] = d
		}
	}
	savedRes := u.resultDim
	u.resultDim = u.t.results[key]
	u.checkExpr(d.Body)
	u.paramDims = saved
	u.resultDim = savedRes
}

// checkExpr walks a subtree reporting every cross-dimension use.
func (u *unitsCtx) checkExpr(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				a, b := u.dim(n.X), u.dim(n.Y)
				if a != "" && b != "" && a != b {
					u.mp.Reportf(n.Pos(), "%s mixes dimensions %s and %s", n.Op, a, b)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			switch n.Tok {
			case token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN:
			default:
				return true
			}
			for i := range n.Lhs {
				ld, rd := u.dim(n.Lhs[i]), u.dim(n.Rhs[i])
				if ld != "" && rd != "" && ld != rd {
					u.mp.Reportf(n.Pos(), "assignment of %s value to %s target", rd, ld)
				}
			}
		case *ast.CallExpr:
			u.checkCall(n)
		case *ast.ReturnStmt:
			if u.resultDim != "" && len(n.Results) == 1 {
				if rd := u.dim(n.Results[0]); rd != "" && rd != u.resultDim {
					u.mp.Reportf(n.Pos(), "returning %s value from function declared to return %s", rd, u.resultDim)
				}
			}
		case *ast.CompositeLit:
			u.checkCompositeLit(n)
		}
		return true
	})
}

// checkCall verifies conversions between dimensioned types and the
// dimensions of arguments against the callee's declared parameters.
func (u *unitsCtx) checkCall(call *ast.CallExpr) {
	if tv, ok := u.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		td, ad := u.typeDim(tv.Type), u.dim(call.Args[0])
		if td != "" && ad != "" && td != ad {
			u.mp.Reportf(call.Pos(), "conversion of %s value to %s type; go through the sanctioned conversion helper", ad, td)
		}
		return
	}
	fn := calleeFunc(u.pkg.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	key := funcKey(fn)
	n := sig.Params().Len()
	for i, arg := range call.Args {
		if i >= n || (sig.Variadic() && i >= n-1) {
			break
		}
		p := sig.Params().At(i)
		pd := u.t.params[key+"."+p.Name()]
		if pd == "" {
			pd = u.typeDim(p.Type())
		}
		if pd == "" {
			continue
		}
		if ad := u.dim(arg); ad != "" && ad != pd {
			u.mp.Reportf(arg.Pos(), "argument %s of %s wants %s, got %s", p.Name(), fn.Name(), pd, ad)
		}
	}
}

// checkCompositeLit verifies dimensioned struct fields in literals.
func (u *unitsCtx) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := u.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		var fieldName string
		value := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fieldName, value = id.Name, kv.Value
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		} else {
			continue
		}
		fd := u.fieldDim(tv.Type, fieldName)
		if fd == "" {
			continue
		}
		if vd := u.dim(value); vd != "" && vd != fd {
			u.mp.Reportf(value.Pos(), "field %s wants %s, got %s", fieldName, fd, vd)
		}
	}
}
