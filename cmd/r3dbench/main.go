// Command r3dbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers).
//
// Usage:
//
//	r3dbench            # full windows, all 19 benchmarks (minutes)
//	r3dbench -fast      # small windows, 6-benchmark subset (seconds)
//	r3dbench -only fig4 # one experiment (table2..table8, fig4..fig9,
//	                    # sec32, sec33, sec34, sec35, sec4; extensions
//	                    # dfs, degraded, rvqsize, dtm, inject)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"r3d/internal/experiment"
)

func main() {
	fast := flag.Bool("fast", false, "small simulation windows and a benchmark subset")
	only := flag.String("only", "", "run a single experiment")
	flag.Parse()

	q := experiment.Full()
	if *fast {
		q = experiment.Fast()
	}
	s := experiment.NewSession(q)

	type exp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	experiments := []exp{
		{"table2", func() (fmt.Stringer, error) { return experiment.Table2(s) }},
		{"table4", func() (fmt.Stringer, error) { return experiment.Table4(), nil }},
		{"table5", func() (fmt.Stringer, error) { return experiment.Table5() }},
		{"table6", func() (fmt.Stringer, error) { return experiment.Table6(), nil }},
		{"table7", func() (fmt.Stringer, error) { return experiment.Table7(), nil }},
		{"table8", func() (fmt.Stringer, error) { return experiment.Table8() }},
		{"fig4", func() (fmt.Stringer, error) { return experiment.Figure4(s) }},
		{"fig5", func() (fmt.Stringer, error) { return experiment.Figure5(s) }},
		{"fig6", func() (fmt.Stringer, error) { return experiment.Figure6(s) }},
		{"fig7", func() (fmt.Stringer, error) { return experiment.Figure7(s) }},
		{"fig8", func() (fmt.Stringer, error) { return experiment.Figure8() }},
		{"fig9", func() (fmt.Stringer, error) { return experiment.Figure9() }},
		{"sec32", func() (fmt.Stringer, error) { return experiment.Section32Variants(s) }},
		{"sec33", func() (fmt.Stringer, error) { return experiment.Section33(s) }},
		{"sec34", func() (fmt.Stringer, error) { return experiment.Section34() }},
		{"sec35", func() (fmt.Stringer, error) { return experiment.Section35(s) }},
		{"sec4", func() (fmt.Stringer, error) { return experiment.Section4(s) }},
		{"dfs", func() (fmt.Stringer, error) { return experiment.DFSAblation(s) }},
		{"degraded", func() (fmt.Stringer, error) { return experiment.DegradedMode(s) }},
		{"rvqsize", func() (fmt.Stringer, error) { return experiment.QueueSizing(s) }},
		{"dtm", func() (fmt.Stringer, error) { return experiment.DTMStudy(s, 300) }},
		{"inject", func() (fmt.Stringer, error) { return experiment.InjectionStudy(s, runtime.GOMAXPROCS(0)) }},
	}

	ran := false
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		ran = true
		r, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Println(r)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
