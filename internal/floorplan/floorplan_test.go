package floorplan

import (
	"math"
	"testing"

	"r3d/internal/power"
)

func allPlans(t *testing.T) []*Floorplan {
	t.Helper()
	return []*Floorplan{
		Build2DA(),
		Build2D2A(DefaultOptions()),
		Build3D2A(DefaultOptions()),
		Build3D2A(Options{CheckerAreaScale: 1, TopDieBanks: 9, CheckerAtCorner: true, CheckerPowerDensityScale: 1}),
		Build3D2A(Options90nm()),
		Build3DChecker(DefaultOptions()),
	}
}

func TestAllPlansValid(t *testing.T) {
	for _, f := range allPlans(t) {
		if err := f.Validate(); err != nil {
			t.Errorf("%v", err)
		}
		if f.DieW <= 0 || f.DieH <= 0 {
			t.Errorf("%s: degenerate die", f.Name)
		}
	}
}

func TestBlockInventory(t *testing.T) {
	count := func(f *Floorplan, prefix string) int {
		n := 0
		for _, b := range f.Blocks {
			if len(b.Name) >= len(prefix) && b.Name[:len(prefix)] == prefix {
				n++
			}
		}
		return n
	}
	f2a := Build2DA()
	if got := count(f2a, "L2Bank"); got != 6 {
		t.Errorf("2d-a has %d banks, want 6", got)
	}
	if _, ok := f2a.BlockNamed("Checker"); ok {
		t.Error("2d-a must not have a checker")
	}
	f22 := Build2D2A(DefaultOptions())
	if got := count(f22, "L2Bank"); got != 15 {
		t.Errorf("2d-2a has %d banks, want 15", got)
	}
	if _, ok := f22.BlockNamed("Checker"); !ok {
		t.Error("2d-2a needs a checker")
	}
	f3d := Build3D2A(DefaultOptions())
	if got := count(f3d, "L2Bank"); got != 6 {
		t.Errorf("3d-2a lower die has %d banks, want 6", got)
	}
	if got := count(f3d, "TopBank"); got != 9 {
		t.Errorf("3d-2a top die has %d banks, want 9", got)
	}
	if f3d.Layers != 2 {
		t.Error("3d-2a must have two layers")
	}
	f90 := Build3D2A(Options90nm())
	if got := count(f90, "TopBank"); got != 4 {
		t.Errorf("90nm top die has %d banks, want 4 (≈5 MB at constant area)", got)
	}
}

func TestCoreAreaMatchesTable2(t *testing.T) {
	f := Build2DA()
	var area float64
	for _, u := range power.LeadingUnits() {
		b, ok := f.BlockNamed(u.Name)
		if !ok {
			t.Fatalf("missing core unit %s", u.Name)
		}
		area += b.Area()
	}
	if math.Abs(area-LeadingCoreAreaMM2) > 0.01 {
		t.Errorf("core area %.2f mm², want %.1f (Table 2)", area, LeadingCoreAreaMM2)
	}
}

func Test2D2ALargerThan2DA(t *testing.T) {
	a := Build2DA()
	b := Build2D2A(DefaultOptions())
	if b.DieW*b.DieH < 1.8*a.DieW*a.DieH {
		t.Errorf("2d-2a area %.1f should be ≈2× 2d-a %.1f", b.DieW*b.DieH, a.DieW*a.DieH)
	}
}

func Test3DSharesOutline(t *testing.T) {
	a := Build2DA()
	f := Build3D2A(DefaultOptions())
	if f.DieW != a.DieW || f.DieH != a.DieH {
		t.Error("3d-2a dies must share the 2d-a outline")
	}
}

func TestCheckerPlacement(t *testing.T) {
	def := Build3D2A(DefaultOptions())
	c, _ := def.BlockNamed("Checker")
	if c.Layer != LayerDie2 {
		t.Error("checker belongs on the top die")
	}
	// The default checker straddles the leading core's cache end —
	// close to the via pillars (the paper places its inter-core buffers
	// next to the leading core's cache structures).
	coreH := LeadingCoreAreaMM2 / def.DieW
	if math.Abs((c.Y+c.H/2)-coreH) > 1e-9 {
		t.Errorf("default checker centered at y=%.2f, want the core strip edge (%.2f)", c.Y+c.H/2, coreH)
	}
	corner := Build3D2A(Options{CheckerAreaScale: 1, TopDieBanks: 9, CheckerAtCorner: true, CheckerPowerDensityScale: 1})
	cc, _ := corner.BlockNamed("Checker")
	if cc.X+cc.W < corner.DieW-1e-6 || cc.Y+cc.H < corner.DieH-1e-6 {
		t.Error("corner checker must touch the far corner")
	}
}

func TestPowerDensityScaleShrinksChecker(t *testing.T) {
	opt := DefaultOptions()
	opt.CheckerPowerDensityScale = 0.5
	f := Build3D2A(opt)
	c, _ := f.BlockNamed("Checker")
	if math.Abs(c.Area()-CheckerAreaMM2/2) > 0.01 {
		t.Errorf("halved checker area %.2f, want %.2f", c.Area(), CheckerAreaMM2/2)
	}
}

func TestPowerGridConservesPower(t *testing.T) {
	f := Build3D2A(DefaultOptions())
	powers := power.BlockPowers{"Checker": 15.0, "TopBank0": 0.5, "TopBank8": 0.7}
	grid := f.PowerGrid(LayerDie2, powers, 50, 50)
	var sum float64
	for _, row := range grid {
		for _, p := range row {
			sum += p
		}
	}
	if math.Abs(sum-16.2) > 1e-6 {
		t.Errorf("grid power %.4f W, want 16.2 (conservation)", sum)
	}
	// Layer 1 of the same plan with leading-core powers.
	lp := power.BlockPowers{}
	for _, u := range power.LeadingUnits() {
		lp[u.Name] = u.PeakW / 3
	}
	g1 := f.PowerGrid(LayerDie1, lp, 50, 50)
	sum = 0
	for _, row := range g1 {
		for _, p := range row {
			sum += p
		}
	}
	if math.Abs(sum-lp.Total()) > 1e-6 {
		t.Errorf("layer-1 grid power %.3f, want %.3f", sum, lp.Total())
	}
}

func TestPowerGridUnknownBlocksIgnored(t *testing.T) {
	f := Build2DA()
	grid := f.PowerGrid(LayerDie1, power.BlockPowers{"Nonexistent": 99}, 10, 10)
	for _, row := range grid {
		for _, p := range row {
			if p != 0 {
				t.Fatal("unknown block leaked power into the grid")
			}
		}
	}
}

func TestWireLengthMM(t *testing.T) {
	f := Build3D2A(DefaultOptions())
	d, err := f.WireLengthMM("IntRF", "Checker")
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > f.DieW+f.DieH {
		t.Errorf("implausible wire length %.2f", d)
	}
	if _, err := f.WireLengthMM("IntRF", "Missing"); err == nil {
		t.Error("missing block must error")
	}
	// The corner variant must lengthen the checker wiring overall (the
	// §3.2 trade-off), summed over the inter-core source blocks.
	total := func(fp *Floorplan) float64 {
		var sum float64
		for _, src := range []string{"IntRF", "LSQ", "DCache", "Bpred"} {
			l, err := fp.WireLengthMM(src, "Checker")
			if err != nil {
				t.Fatal(err)
			}
			sum += l
		}
		return sum
	}
	corner := Build3D2A(Options{CheckerAreaScale: 1, TopDieBanks: 9, CheckerAtCorner: true, CheckerPowerDensityScale: 1})
	if tc, td := total(corner), total(f); tc <= td {
		t.Errorf("corner placement should lengthen wires: %.2f vs %.2f", tc, td)
	}
}

func TestTopDieBankAreasReasonable(t *testing.T) {
	// Tiled top-die banks should be within 30% of the Table 2 bank area
	// (the region tiling redistributes area slightly).
	f := Build3D2A(DefaultOptions())
	for _, b := range f.Blocks {
		if b.Layer != LayerDie2 || b.Name == "Checker" {
			continue
		}
		if b.Area() < 0.7*L2BankAreaMM2 || b.Area() > 1.3*(L2BankAreaMM2+RouterAreaMM2) {
			t.Errorf("top bank %s area %.2f mm² outside band", b.Name, b.Area())
		}
	}
}
