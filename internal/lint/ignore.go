package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore <check> <reason>
//
// The directive silences findings of the named check on the directive's
// own line (end-of-line form) or on the line directly below it
// (preceding-comment form). The reason is mandatory; a directive
// without one is reported as a "lintdirective" finding so suppressions
// can never silently lose their justification. A directive that
// matches no finding of a check that actually ran is likewise reported
// as stale: when the offending construct is fixed or deleted, the
// suppression must go with it.
const ignorePrefix = "lint:ignore"

// A directive is one parsed //lint:ignore comment.
type directive struct {
	check string
	pos   token.Position
	// used records whether the directive suppressed at least one
	// finding (or blocked at least one taint seed) during the run.
	used bool
}

// ignoreSet indexes a run's directives by file and line.
type ignoreSet struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

// collectIgnores scans the packages' comments for directives.
// Malformed directives are returned as findings.
func collectIgnores(fset *token.FileSet, pkgs []*Package) (*ignoreSet, []Finding) {
	set := &ignoreSet{byLine: map[string]map[int][]*directive{}}
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Check:   "lintdirective",
							Pos:     pos,
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					d := &directive{check: fields[0], pos: pos}
					lines := set.byLine[pos.Filename]
					if lines == nil {
						lines = map[int][]*directive{}
						set.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], d)
					set.all = append(set.all, d)
				}
			}
		}
	}
	return set, bad
}

// suppressed reports whether a finding is covered by a directive on its
// own line or the line above, marking every covering directive used.
func (s *ignoreSet) suppressed(f Finding) bool {
	var hit bool
	for _, d := range s.at(f.Pos.Filename, f.Pos.Line, f.Check) {
		d.used = true
		hit = true
	}
	return hit
}

// coversLine reports whether a directive for check covers the given
// source line (same-line or preceding-comment form), marking matches
// used. Module analyzers use it to stop taint propagation at a
// reasoned boundary.
func (s *ignoreSet) coversLine(filename string, line int, check string) bool {
	var hit bool
	for _, d := range s.at(filename, line, check) {
		d.used = true
		hit = true
	}
	return hit
}

// at returns the directives for check covering the given line.
func (s *ignoreSet) at(filename string, line int, check string) []*directive {
	lines, ok := s.byLine[filename]
	if !ok {
		return nil
	}
	var ds []*directive
	for _, l := range []int{line, line - 1} {
		for _, d := range lines[l] {
			if d.check == check {
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// stale reports directives that never matched anything. A directive is
// stale when its check ran this invocation and produced no finding (and
// seeded no suppressed taint) on its lines; a directive naming a check
// that is not registered at all is reported as unknown. Directives for
// registered checks that did not run (single-analyzer fixture runs) are
// skipped.
func (s *ignoreSet) stale(ran, registered map[string]bool) []Finding {
	var fs []Finding
	for _, d := range s.all {
		if d.used {
			continue
		}
		switch {
		case ran[d.check]:
			fs = append(fs, Finding{
				Check:   "lintdirective",
				Pos:     d.pos,
				Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line; delete the directive", d.check),
			})
		case !registered[d.check]:
			fs = append(fs, Finding{
				Check:   "lintdirective",
				Pos:     d.pos,
				Message: fmt.Sprintf("unknown check %q in //lint:ignore directive", d.check),
			})
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Pos.Offset < fs[j].Pos.Offset })
	return fs
}
