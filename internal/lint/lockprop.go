package lint

import (
	"go/types"
	"sort"
	"strings"
)

// This file computes the interprocedural layer the concurrency
// analyzers share: for every function, the set of locks guaranteed to
// be held on entry (the meet over all observed call sites), plus the
// reverse call edges needed to print "unlocked path" chains.

// callerSite is one observed call of a function: who called it and what
// was held at the site (entry-held of the caller not yet folded in).
type callerSite struct {
	caller *fnFacts
	call   lockCall
}

// lockAnalysis augments a lockProgram with entry-held sets.
type lockAnalysis struct {
	prog    *lockProgram
	entry   map[*fnFacts]heldSet // never nil after newLockAnalysis
	callers map[*fnFacts][]callerSite
}

func newLockAnalysis(prog *lockProgram) *lockAnalysis {
	la := &lockAnalysis{
		prog:    prog,
		entry:   map[*fnFacts]heldSet{},
		callers: map[*fnFacts][]callerSite{},
	}

	// Reverse edges. Interface-dispatch candidates each receive the
	// site, conservatively.
	for _, n := range prog.nodes {
		for _, c := range n.calls {
			for _, target := range la.calleeFacts(c) {
				la.callers[target] = append(la.callers[target], callerSite{caller: n, call: c})
			}
		}
	}

	// Entry-held fixpoint. Roots — functions with no observed caller,
	// functions referenced as values (they may run from anywhere), and
	// function literals (fresh goroutine / deferred context) — start and
	// stay at ∅. Everything else starts at ⊤ (nil) and shrinks
	// monotonically to the intersection over its call sites of
	// entry(caller) ∪ heldAtSite; go and defer sites contribute ∅
	// because a new goroutine does not hold its spawner's locks and a
	// deferred call runs after the body's paired unlocks.
	for _, n := range prog.nodes {
		if n.isLit || len(la.callers[n]) == 0 || (n.fn != nil && prog.valueRef[n.fn]) {
			la.entry[n] = heldSet{}
		} else {
			la.entry[n] = nil // ⊤
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if la.entry[n] != nil && len(la.entry[n]) == 0 && (n.isLit || (n.fn != nil && prog.valueRef[n.fn])) {
				continue // pinned root
			}
			if len(la.callers[n]) == 0 {
				continue
			}
			var meet heldSet // ⊤
			for _, site := range la.callers[n] {
				var contrib heldSet
				if site.call.kind != callNormal {
					contrib = heldSet{}
				} else {
					contrib = unionHeld(la.entry[site.caller], site.call.held)
				}
				if contrib == nil {
					continue // caller still ⊤; absorbs
				}
				if meet == nil {
					meet = contrib.clone()
				} else {
					meet = intersectHeld(meet, contrib)
				}
			}
			if meet == nil {
				continue // every caller still ⊤
			}
			if la.entry[n] == nil || !heldEqual(la.entry[n], meet) {
				// nil (⊤) only ever shrinks to a concrete set, and
				// intersection keeps shrinking it, so this terminates.
				la.entry[n] = meet
				changed = true
			}
		}
	}
	// Anything still ⊤ sits on a caller cycle unreachable from any
	// root; assume nothing about its locks so its accesses still get
	// checked.
	for _, n := range prog.nodes {
		if la.entry[n] == nil {
			la.entry[n] = heldSet{}
		}
	}
	return la
}

// calleeFacts resolves a call site to the module facts nodes it may
// reach: the static callee if module-defined, else the conservative
// interface-dispatch candidates.
func (la *lockAnalysis) calleeFacts(c lockCall) []*fnFacts {
	if n, ok := la.prog.byFn[c.callee]; ok {
		return []*fnFacts{n}
	}
	var out []*fnFacts
	for _, cand := range c.candidates {
		if n, ok := la.prog.byFn[cand.Origin()]; ok {
			out = append(out, n)
		}
	}
	return out
}

// entryOf returns the locks guaranteed held when n is entered.
func (la *lockAnalysis) entryOf(n *fnFacts) heldSet {
	return la.entry[n]
}

// effectiveHeld is the full held-set at a program point: the function's
// guaranteed entry locks joined with the locally tracked ones.
func (la *lockAnalysis) effectiveHeld(n *fnFacts, local heldSet) heldSet {
	return unionHeld(la.entryOf(n), local)
}

// unlockedPath reconstructs one deterministic call chain ending at n
// along which id is never held, for "how did we get here without the
// lock" messages. Returns "" when n is itself a root (directly
// reachable with nothing held).
func (la *lockAnalysis) unlockedPath(n *fnFacts, id lockID) string {
	type step struct {
		node *fnFacts
		prev *step
	}
	seen := map[*fnFacts]bool{n: true}
	queue := []*step{{node: n}}
	var rootStep *step
	for len(queue) > 0 && rootStep == nil {
		s := queue[0]
		queue = queue[1:]
		sites := la.callers[s.node]
		if len(sites) == 0 || s.node.isLit || (s.node.fn != nil && la.prog.valueRef[s.node.fn]) {
			if s.prev != nil { // a chain of at least one edge
				rootStep = s
			}
			continue
		}
		// Deterministic order: caller position then call position.
		ordered := make([]callerSite, len(sites))
		copy(ordered, sites)
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].caller.pos != ordered[j].caller.pos {
				return ordered[i].caller.pos < ordered[j].caller.pos
			}
			return ordered[i].call.pos < ordered[j].call.pos
		})
		for _, site := range ordered {
			if seen[site.caller] {
				continue
			}
			// Only follow edges that do NOT establish the lock: those
			// are the paths the finding is about.
			var eff heldSet
			if site.call.kind != callNormal {
				eff = heldSet{}
			} else {
				eff = unionHeld(la.entryOf(site.caller), site.call.held)
			}
			if eff[id] != lockNone {
				continue
			}
			seen[site.caller] = true
			queue = append(queue, &step{node: site.caller, prev: s})
		}
	}
	if rootStep == nil {
		return ""
	}
	var names []string
	for s := rootStep; s != nil; s = s.prev {
		names = append(names, s.node.name)
	}
	return strings.Join(names, " → ")
}

// moduleFunc reports whether fn is defined in one of the analyzed
// packages (as opposed to the stdlib).
func (la *lockAnalysis) moduleFunc(fn *types.Func) (*fnFacts, bool) {
	n, ok := la.prog.byFn[fn]
	return n, ok
}
