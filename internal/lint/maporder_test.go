package lint

import "testing"

func TestMapOrderFlagsRawIteration(t *testing.T) {
	fs := findings(t, MapOrder, modelPath, `
package fixture

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	wantChecks(t, fs, "maporder")
}

func TestMapOrderAcceptsSortedKeysPattern(t *testing.T) {
	fs := findings(t, MapOrder, modelPath, `
package fixture

import (
	"fmt"
	"sort"
)

func Dump(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	wantChecks(t, fs)
}

func TestMapOrderExemptsDriverCode(t *testing.T) {
	fs := findings(t, MapOrder, driverPath, `
package fixture

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	wantChecks(t, fs)
}

func TestMapOrderSuppressed(t *testing.T) {
	fs := findings(t, MapOrder, modelPath, `
package fixture

func Sum(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	//lint:ignore maporder per-key copy; each key written exactly once
	for k, v := range m {
		out[k] = v
	}
	return out
}
`)
	wantChecks(t, fs)
}
