package experiment

import (
	"fmt"
	"strings"

	"r3d/internal/floorplan"
	"r3d/internal/noc"
	"r3d/internal/ooo"
	"r3d/internal/pipedepth"
	"r3d/internal/power"
	"r3d/internal/tech"
	"r3d/internal/wire"
)

// Table2Result reproduces the paper's block area and power inventory,
// with the measured (simulated) leading-core average next to the quoted
// 35 W.
type Table2Result struct {
	LeadingCoreAreaMM2    float64
	LeadingCoreAvgW       float64 // measured over the suite
	CheckerAreaMM2        float64
	CheckerRangeW         [2]float64
	L2BankAreaMM2         float64
	L2BankDynW, L2BankStW float64
	RouterAreaMM2         float64
	RouterPowerW          float64
}

// Table2Manifest declares the suite-activity windows behind the
// measured leading-core power.
func Table2Manifest(q Quality) []RunKey {
	return activityKeys(q, L2DA)
}

// Table2 regenerates Table 2.
func Table2(s *Session) (Table2Result, error) {
	act, _, err := s.SuiteActivity(L2DA)
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{
		LeadingCoreAreaMM2: floorplan.LeadingCoreAreaMM2,
		LeadingCoreAvgW:    power.LeadingCorePower(act, 1, 1).Total(),
		CheckerAreaMM2:     floorplan.CheckerAreaMM2,
		CheckerRangeW:      [2]float64{power.CheckerOptimisticW, power.CheckerPessimisticW},
		L2BankAreaMM2:      floorplan.L2BankAreaMM2,
		L2BankDynW:         power.L2BankDynamicW,
		L2BankStW:          power.L2BankStaticW,
		RouterAreaMM2:      noc.RouterAreaMM2,
		RouterPowerW:       noc.RouterPowerW,
	}, nil
}

// String renders Table 2.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Area and power values\n")
	fmt.Fprintf(&b, "  %-18s %8.1f mm²  avg %5.1f W (paper: 35 W)\n", "Leading core", r.LeadingCoreAreaMM2, r.LeadingCoreAvgW)
	fmt.Fprintf(&b, "  %-18s %8.1f mm²  %g / %g W\n", "In-order core", r.CheckerAreaMM2, r.CheckerRangeW[0], r.CheckerRangeW[1])
	fmt.Fprintf(&b, "  %-18s %8.1f mm²  %.3f W dyn/access + %.3f W static\n", "1MB L2 bank", r.L2BankAreaMM2, r.L2BankDynW, r.L2BankStW)
	fmt.Fprintf(&b, "  %-18s %8.2f mm²  %.3f W\n", "Network router", r.RouterAreaMM2, r.RouterPowerW)
	return b.String()
}

// Table4Result reproduces the d2d bandwidth budget.
type Table4Result struct {
	Rows      []wire.SignalGroup
	InterCore int
	Total     int
}

// Table4 regenerates Table 4 for the default core.
func Table4() Table4Result {
	cfg := ooo.Default()
	inter, total := wire.InterCoreVias(cfg)
	return Table4Result{Rows: wire.Table4(cfg), InterCore: inter, Total: total}
}

// String renders Table 4.
func (r Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: D2D interconnect bandwidth requirements\n")
	fmt.Fprintf(&b, "  %-18s %6s  %s\n", "data", "width", "via placement")
	for _, g := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %6d  %s\n", g.Name, g.Bits, g.Via)
	}
	fmt.Fprintf(&b, "  inter-core vias: %d (paper: 1025); total with L2 pillar: %d (paper: 1409)\n", r.InterCore, r.Total)
	return b.String()
}

// Table5Result pairs the paper's pipeline-depth anchors with the fitted
// analytic model.
type Table5Result struct {
	Paper []pipedepth.Row
	Model []pipedepth.Row
}

// Table5 regenerates Table 5.
func Table5() (Table5Result, error) {
	m := pipedepth.Default()
	res := Table5Result{Paper: pipedepth.PaperTable5()}
	for _, r := range res.Paper {
		d, err := m.Dynamic(r.FO4)
		if err != nil {
			return Table5Result{}, err
		}
		l, err := m.Leakage(r.FO4)
		if err != nil {
			return Table5Result{}, err
		}
		res.Model = append(res.Model, pipedepth.Row{FO4: r.FO4, Dynamic: d, Leakage: l, Total: d + l})
	}
	return res, nil
}

// String renders Table 5.
func (r Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Pipeline depth vs power (relative to 18 FO4 dynamic)\n")
	fmt.Fprintf(&b, "  %-8s %18s %18s\n", "", "paper (from [38])", "analytic model")
	fmt.Fprintf(&b, "  %-8s %5s %5s %6s %5s %5s %6s\n", "depth", "dyn", "lkg", "total", "dyn", "lkg", "total")
	for i, p := range r.Paper {
		m := r.Model[i]
		fmt.Fprintf(&b, "  %4.0f FO4 %5.2f %5.2f %6.2f %5.2f %5.2f %6.2f\n",
			p.FO4, p.Dynamic, p.Leakage, p.Total, m.Dynamic, m.Leakage, m.Total)
	}
	return b.String()
}

// Table6Result is the ITRS variability table.
type Table6Result struct{ Rows []tech.Variability }

// Table6 regenerates Table 6.
func Table6() Table6Result { return Table6Result{Rows: tech.VariabilityTable()} }

// String renders Table 6.
func (r Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Impact of technology scaling on variability (±%% of nominal)\n")
	fmt.Fprintf(&b, "  %-7s %6s %10s %10s\n", "node", "Vth", "circ perf", "circ power")
	for _, v := range r.Rows {
		fmt.Fprintf(&b, "  %-7s %5.0f%% %9.0f%% %9.0f%%\n", v.Node, v.VthPct, v.CircuitPerfPct, v.CircuitPowerPct)
	}
	return b.String()
}

// Table7Result is the ITRS device characteristics table.
type Table7Result struct{ Rows []tech.Device }

// Table7 regenerates Table 7.
func Table7() Table7Result {
	var rows []tech.Device
	for _, n := range []tech.Node{tech.Node90, tech.Node65, tech.Node45} {
		rows = append(rows, tech.MustDevice(n))
	}
	return Table7Result{Rows: rows}
}

// String renders Table 7.
func (r Table7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: Device characteristics vs technology node\n")
	fmt.Fprintf(&b, "  %-7s %7s %11s %12s %10s\n", "node", "V", "gate (nm)", "cap (F/µm)", "leak/µm")
	for _, d := range r.Rows {
		fmt.Fprintf(&b, "  %-7s %7.1f %11.0f %12.2e %10.2f\n", d.Node, d.VoltageV, d.GateLengthNm, d.CapPerUm, d.LeakPerUm)
	}
	return b.String()
}

// Table8Result is the cross-node power scaling table.
type Table8Result struct{ Rows []tech.PowerScaling }

// Table8 regenerates Table 8 from the Table 7 device parameters.
func Table8() (Table8Result, error) {
	var rows []tech.PowerScaling
	for _, pair := range [][2]tech.Node{
		{tech.Node90, tech.Node65},
		{tech.Node90, tech.Node45},
		{tech.Node65, tech.Node45},
	} {
		s, err := tech.ScalePower(pair[0], pair[1])
		if err != nil {
			return Table8Result{}, err
		}
		rows = append(rows, s)
	}
	return Table8Result{Rows: rows}, nil
}

// String renders Table 8.
func (r Table8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: Power of a fixed design on an older node (relative)\n")
	fmt.Fprintf(&b, "  %-10s %8s %8s   (paper: 2.21/3.14/1.41 dyn; 0.40/0.44/0.99 lkg)\n", "nodes", "dynamic", "leakage")
	for _, s := range r.Rows {
		fmt.Fprintf(&b, "  %3d/%-6d %8.2f %8.2f\n", int(s.Old), int(s.New), s.Dynamic, s.Leakage)
	}
	return b.String()
}
