package lint

import (
	"strings"
)

// BlockHold flags blocking operations — channel sends/receives, selects
// without a default, time.Sleep, file and network I/O, WaitGroup/Cond
// waits, and calls to functions annotated `// r3dlint:blocks <reason>`
// (e.g. a whole-grid thermal solve) — reached while a mutex is held.
// Blocking reached through calls is reported at the frontier: the call
// site inside the critical section, with the chain down to the actual
// operation spelled out dettaint-style. A reasoned
// `//lint:ignore blockhold <reason>` on the operation itself stops
// propagation, so a justified block (a journal fsync that must sit
// inside the commit critical section) does not taint every caller.
var BlockHold = &Analyzer{
	Name:      "blockhold",
	Doc:       "blocking operation reached while a mutex is held",
	RunModule: runBlockHold,
}

func runBlockHold(mp *ModulePass) {
	prog := buildLockProgram(mp.Pkgs)
	la := newLockAnalysis(prog)

	// blockChain[f] explains why calling f may block: the positional-
	// first chain from f to a blocking operation. Seeds whose operation
	// carries a reasoned blockhold directive are skipped and do not
	// propagate.
	blockChain := map[*fnFacts]string{}
	for _, n := range prog.nodes {
		for _, b := range n.blocks {
			if mp.SuppressedAt(b.pos, "blockhold") {
				continue
			}
			blockChain[n] = n.name + " → " + b.desc
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if _, ok := blockChain[n]; ok {
				continue
			}
			for _, c := range n.calls {
				if c.kind != callNormal {
					continue // goroutines block on their own time; defers run at exit
				}
				if chain, ok := callBlockChain(mp, prog, la, blockChain, c); ok {
					blockChain[n] = n.name + " → " + chain
					changed = true
					break
				}
			}
		}
	}

	// Findings at the frontier: a blocking operation or a call to a
	// blocking function, at a point where this function itself holds a
	// lock locally. Inherited (entry-held) locks are deliberately not
	// reported here — the caller that actually took the lock holds the
	// critical section and gets the finding at its own call site.
	for _, n := range prog.nodes {
		for _, b := range n.blocks {
			if len(b.held) == 0 || mp.SuppressedAt(b.pos, "blockhold") {
				continue
			}
			mp.Reportf(b.pos, "%s while %s held", b.desc, heldNames(b.held))
		}
		for _, c := range n.calls {
			if c.kind != callNormal || len(c.held) == 0 {
				continue
			}
			chain, ok := callBlockChain(mp, prog, la, blockChain, c)
			if !ok {
				continue
			}
			mp.Reportf(c.pos, "call may block (%s) while %s held", chain, heldNames(c.held))
		}
	}
}

// callBlockChain explains why the call c may block: the callee is
// annotated r3dlint:blocks, or it transitively reaches a blocking
// operation. A reasoned blockhold directive at the call site stops the
// classification (and, during the fixpoint, propagation past it).
func callBlockChain(mp *ModulePass, prog *lockProgram, la *lockAnalysis, blockChain map[*fnFacts]string, c lockCall) (string, bool) {
	if mp.SuppressedAt(c.pos, "blockhold") {
		return "", false
	}
	if reason, ok := prog.blocksAnn[c.callee]; ok {
		return c.callee.Name() + " (" + reason + ")", true
	}
	for _, callee := range la.calleeFacts(c) {
		if chain, ok := blockChain[callee]; ok {
			return chain, true
		}
	}
	return "", false
}

// heldNames renders a held-set for messages, e.g.
// "runsched.Engine.mu", or "a and b" when several are held.
func heldNames(h heldSet) string {
	var names []string
	for _, id := range sortedHeld(h) {
		names = append(names, id.display())
	}
	switch len(names) {
	case 1:
		return names[0] + " is"
	default:
		return strings.Join(names, " and ") + " are"
	}
}
