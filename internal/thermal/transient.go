package thermal

import (
	"fmt"
	"math"
	"strings"
)

// Volumetric heat capacities in J/(m³·K) for the transient model
// (HotSpot's constants: silicon ≈ 1.75e6, copper ≈ 3.55e6; the composite
// metal/ILD and d2d layers sit between).
const (
	SiHeatCapacity    = 1.75e6
	CuHeatCapacity    = 3.55e6
	MetalHeatCapacity = 2.5e6
	D2DHeatCapacity   = 2.0e6
)

// capacityFor maps a layer to its volumetric heat capacity by material
// (matched on resistivity, which identifies the material in this model).
func capacityFor(l Layer) float64 {
	switch l.Resistivity {
	case SiResistivity:
		return SiHeatCapacity
	case CuResistivity:
		return MetalHeatCapacity
	case D2DResistivity:
		return D2DHeatCapacity
	case CuPlateResistivity:
		return CuHeatCapacity
	default:
		return SiHeatCapacity
	}
}

// Transient wraps a Solver with per-cell thermal capacitance and an
// explicit time-stepping integrator, for DTM studies where temperature
// chases a time-varying power map (the paper invokes DTM as the
// alternative to over-provisioned cooling in §3.2).
type Transient struct {
	s *Solver
	// capJ is each cell's heat capacity in joules per kelvin.
	capJ []float64
	// maxStablePs is the largest stable explicit-Euler step.
	maxStablePs float64
	timePs      float64
	scratch     []float64
}

// NewTransient builds a transient integrator over a fresh solver for the
// given stack.
func NewTransient(cfg Config) *Transient {
	s := NewSolver(cfg)
	t := &Transient{s: s}
	cellWm := cfg.DieWmm / float64(cfg.Nx) * 1e-3
	cellHm := cfg.DieHmm / float64(cfg.Ny) * 1e-3
	t.capJ = make([]float64, len(s.temp))
	minTau := math.Inf(1)
	for l := 0; l < s.nl; l++ {
		vol := cellWm * cellHm * cfg.Layers[l].ThicknessUm * 1e-6
		c := capacityFor(cfg.Layers[l]) * vol
		// Total conductance bound for the stability estimate.
		g := 4 * s.gLat[l]
		if l > 0 {
			g += s.gUp[l-1]
		} else {
			g += s.gSink
		}
		if l < s.nl-1 {
			g += s.gUp[l]
		} else {
			g += s.gPack
		}
		if tau := c / g; tau < minTau {
			minTau = tau
		}
		for y := 0; y < s.ny; y++ {
			for x := 0; x < s.nx; x++ {
				t.capJ[s.idx(l, y, x)] = c
			}
		}
	}
	// Explicit Euler is stable below ~2·τ_min; keep a 4× margin.
	t.maxStablePs = minTau / 2 * 1e12
	t.scratch = make([]float64, len(s.temp))
	return t
}

// Solver exposes the underlying steady-state solver (power maps,
// temperature readout).
func (t *Transient) Solver() *Solver { return t.s }

// TimePs returns the integrated simulation time.
func (t *Transient) TimePs() float64 { return t.timePs }

// MaxStepPs returns the largest allowed integration step.
func (t *Transient) MaxStepPs() float64 { return t.maxStablePs }

// Step advances the temperature field by dtPs picoseconds using
// explicit Euler, internally sub-stepping to stay within the stability
// bound. It returns an error for non-positive steps.
func (t *Transient) Step(dtPs float64) error {
	if dtPs <= 0 {
		return fmt.Errorf("thermal: non-positive step %v", dtPs)
	}
	s := t.s
	remaining := dtPs
	for remaining > 0 {
		h := remaining
		if h > t.maxStablePs {
			h = t.maxStablePs
		}
		remaining -= h
		hSec := h * 1e-12
		// One explicit update: dT = (P − Σ G·(T−T_neighbor)) · h / C.
		next := t.scratch
		for l := 0; l < s.nl; l++ {
			for y := 0; y < s.ny; y++ {
				for x := 0; x < s.nx; x++ {
					i := s.idx(l, y, x)
					ti := s.temp[i]
					var flow float64
					if l > 0 {
						flow += s.gUp[l-1] * (s.temp[s.idx(l-1, y, x)] - ti)
					} else {
						flow += s.gSink * (s.ambient - ti)
					}
					if l < s.nl-1 {
						flow += s.gUp[l] * (s.temp[s.idx(l+1, y, x)] - ti)
					} else {
						flow += s.gPack * (s.ambient - ti)
					}
					gl := s.gLat[l]
					if x > 0 {
						flow += gl * (s.temp[i-1] - ti)
					}
					if x < s.nx-1 {
						flow += gl * (s.temp[i+1] - ti)
					}
					if y > 0 {
						flow += gl * (s.temp[i-s.nx] - ti)
					}
					if y < s.ny-1 {
						flow += gl * (s.temp[i+s.nx] - ti)
					}
					next[i] = ti + (flow+s.power[i])*hSec/t.capJ[i]
				}
			}
		}
		s.temp, t.scratch = next, s.temp
		t.timePs += h
	}
	return nil
}

// CopyStateFrom copies another solver's temperature field (the
// geometries must match); used to start a transient study from a solved
// steady state.
func (s *Solver) CopyStateFrom(src *Solver) error {
	if len(src.temp) != len(s.temp) {
		return fmt.Errorf("thermal: geometry mismatch (%d vs %d cells)", len(src.temp), len(s.temp))
	}
	copy(s.temp, src.temp)
	return nil
}

// HeatmapASCII renders one layer's temperature field as a character
// raster (coarse but invaluable for eyeballing power-map placement).
// Rows are emitted top edge first.
func (s *Solver) HeatmapASCII(layer, cols int) string {
	if cols <= 0 || cols > s.nx {
		cols = s.nx
	}
	ramp := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for y := 0; y < s.ny; y++ {
		for x := 0; x < s.nx; x++ {
			t := s.temp[s.idx(layer, y, x)]
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "layer %d: %.1f–%.1f °C\n", layer, lo, hi)
	step := s.nx / cols
	if step < 1 {
		step = 1
	}
	for y := s.ny - 1; y >= 0; y -= step {
		for x := 0; x < s.nx; x += step {
			t := s.temp[s.idx(layer, y, x)]
			idx := 0
			if hi > lo {
				idx = int((t - lo) / (hi - lo) * float64(len(ramp)-1))
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
