package trace

import "fmt"

// Targets records, for one benchmark, the approximate behaviour the
// synthetic profile is calibrated towards: the paper's Figure 6 IPC
// levels and an L2 miss density consistent with the §3.3 observation
// that moving from a 6 MB to a 15 MB L2 only slightly reduces the suite
// miss rate (1.43 → 1.25 misses per 10k instructions in the paper).
// These are calibration references, not scripted outputs — the simulated
// caches and predictor produce the actual rates. See EXPERIMENTS.md for
// the window-length caveat on absolute miss densities.
type Targets struct {
	IPC          float64 // approximate 2d-a IPC (Figure 6 shape)
	MemoryBound  bool    // L2-miss-dominated benchmark (mcf-like)
	CapSensitive bool    // working set straddles 6 MB vs 15 MB (art-like)
}

// Benchmark couples a profile with its calibration targets.
type Benchmark struct {
	Profile Profile
	Targets Targets
}

// wsSpec packs the four-region working-set arguments.
type wsSpec struct {
	hot, mid, warm, cold       int
	hotFrac, midFrac, warmFrac float64
	coldStride                 int
}

func ws(hot, mid, warm, cold int, hotFrac, midFrac, warmFrac float64, stride int) wsSpec {
	return wsSpec{hot: hot, mid: mid, warm: warm, cold: cold,
		hotFrac: hotFrac, midFrac: midFrac, warmFrac: warmFrac, coldStride: stride}
}

// Suite returns the 19 SPEC2k-named benchmarks of the paper's Figures 5
// and 6 in the paper's (alphabetical) order.
func Suite() []Benchmark {
	return []Benchmark{
		{fpProf("ammp", 0.27, 0.09, 0.11, 0.55, 12, ws(8<<10, 128<<10, 0, 16<<20, 0.934, 0.06, 0, 16), 4.0), Targets{IPC: 1.2}},
		{fpProf("applu", 0.30, 0.10, 0.03, 0.65, 30, ws(8<<10, 192<<10, 0, 64<<20, 0.912, 0.08, 0, 16), 9.0), Targets{IPC: 1.4}},
		{fpProf("apsi", 0.26, 0.12, 0.06, 0.55, 20, ws(8<<10, 128<<10, 0, 16<<20, 0.93, 0.06, 0, 8), 6.0), Targets{IPC: 1.5}},
		{fpProf("art", 0.30, 0.07, 0.10, 0.45, 10, ws(12<<10, 256<<10, 7<<20, 0, 0.66, 0.16, 0.18, 0), 3.0), Targets{IPC: 0.5, MemoryBound: true, CapSensitive: true}},
		{intProf("bzip2", 0.26, 0.11, 0.13, 10, ws(8<<10, 128<<10, 0, 24<<20, 0.925, 0.06, 0, 8), 8.0, 0.08, 0.93), Targets{IPC: 1.5}},
		{intProf("eon", 0.28, 0.15, 0.10, 24, ws(10<<10, 64<<10, 0, 0, 0.975, 0.025, 0, 0), 10.0, 0.05, 0.96), Targets{IPC: 2.0}},
		{fpProf("equake", 0.33, 0.09, 0.10, 0.50, 8, ws(8<<10, 256<<10, 0, 32<<20, 0.89, 0.10, 0, 8), 3.0), Targets{IPC: 0.9}},
		{fpProf("fma3d", 0.28, 0.13, 0.08, 0.55, 14, ws(8<<10, 160<<10, 0, 16<<20, 0.925, 0.07, 0, 8), 4.0), Targets{IPC: 1.3}},
		{fpProf("galgel", 0.28, 0.08, 0.05, 0.60, 40, ws(10<<10, 64<<10, 0, 0, 0.97, 0.03, 0, 0), 9.0), Targets{IPC: 2.2}},
		{intProf("gap", 0.25, 0.12, 0.10, 16, ws(10<<10, 96<<10, 0, 16<<20, 0.955, 0.04, 0, 8), 8.5, 0.07, 0.94), Targets{IPC: 1.7}},
		{intProf("gzip", 0.22, 0.10, 0.12, 14, ws(10<<10, 96<<10, 0, 4<<20, 0.955, 0.04, 0, 8), 8.0, 0.06, 0.95), Targets{IPC: 1.8}},
		{fpProf("lucas", 0.24, 0.10, 0.02, 0.70, 18, ws(8<<10, 192<<10, 0, 48<<20, 0.90, 0.09, 0, 8), 5.0), Targets{IPC: 1.1}},
		{intProf("mcf", 0.35, 0.09, 0.17, 4, ws(12<<10, 512<<10, 0, 160<<20, 0.706, 0.29, 0, 64), 2.2, 0.18, 0.88), Targets{IPC: 0.3, MemoryBound: true}},
		{fpProf("mesa", 0.24, 0.14, 0.08, 0.45, 22, ws(10<<10, 40<<10, 0, 0, 0.985, 0.015, 0, 0), 8.0), Targets{IPC: 2.2}},
		{fpProf("swim", 0.28, 0.14, 0.02, 0.70, 40, ws(8<<10, 320<<10, 0, 96<<20, 0.87, 0.12, 0, 16), 9.0), Targets{IPC: 1.2, MemoryBound: true}},
		{intProf("twolf", 0.26, 0.09, 0.15, 6, ws(8<<10, 160<<10, 0, 2<<20, 0.92, 0.075, 0, 8), 3.5, 0.14, 0.90), Targets{IPC: 1.0}},
		{intProf("vortex", 0.27, 0.16, 0.10, 18, ws(10<<10, 96<<10, 0, 8<<20, 0.96, 0.035, 0, 8), 11.0, 0.05, 0.95), Targets{IPC: 1.9}},
		{intProf("vpr", 0.28, 0.10, 0.12, 7, ws(8<<10, 160<<10, 0, 2<<20, 0.925, 0.07, 0, 8), 4.0, 0.12, 0.91), Targets{IPC: 1.2}},
		{fpProf("wupwise", 0.24, 0.11, 0.05, 0.60, 24, ws(10<<10, 64<<10, 0, 16<<20, 0.965, 0.03, 0, 8), 10.0), Targets{IPC: 2.0}},
	}
}

func baseProf(name string, ld, st, br float64, trip int, w wsSpec, dep float64) Profile {
	return Profile{
		Name:         name,
		LoadFrac:     ld,
		StoreFrac:    st,
		BranchFrac:   br,
		BranchSites:  96,
		LoopFrac:     0.35,
		PatternFrac:  0.15,
		RandomFrac:   0.10,
		Bias:         0.93,
		MeanLoopTrip: trip,
		HotBytes:     w.hot,
		MidBytes:     w.mid,
		WarmBytes:    w.warm,
		ColdBytes:    w.cold,
		HotFrac:      w.hotFrac,
		MidFrac:      w.midFrac,
		WarmFrac:     w.warmFrac,
		ColdStride:   w.coldStride,
		CodeBytes:    16 << 10,
		DepDist:      dep,
	}
}

// intProf builds an integer benchmark profile: denser, less predictable
// branches (rnd fraction of sites data-dependent, bias elsewhere) and no
// FP work.
func intProf(name string, ld, st, br float64, trip int, w wsSpec, dep, rnd, bias float64) Profile {
	p := baseProf(name, ld, st, br, trip, w, dep)
	p.MulFrac = 0.04
	p.RandomFrac = rnd
	p.Bias = bias
	p.CodeBytes = 24 << 10
	return p
}

// fpProf builds a floating-point benchmark profile: loop-dominated,
// highly biased branches and a given FP fraction of compute work.
func fpProf(name string, ld, st, br, fp float64, trip int, w wsSpec, dep float64) Profile {
	p := baseProf(name, ld, st, br, trip, w, dep)
	p.FP = true
	p.FPFrac = fp
	p.MulFrac = 0.25
	p.LoopFrac = 0.55
	p.RandomFrac = 0.03
	p.Bias = 0.97
	return p
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Profile.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names returns the benchmark names in suite order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, b := range s {
		out[i] = b.Profile.Name
	}
	return out
}
