package lint

import (
	"strings"
	"testing"
)

// wrapperFixture launders time.Now through two non-model wrapper
// functions before model code consumes it. The v1 wallclock check is
// per-package and model-only, so the laundering makes the read
// invisible to it; dettaint follows the call chain.
var wrapperFixture = []fixtureFile{
	{"r3d/wrap", `
package wrap

import "time"

func clock() time.Time { return time.Now() }

// Stamp launders the wall clock through a second call layer.
func Stamp() time.Time { return clock() }
`},
	{modelPath, `
package fixture

import "r3d/wrap"

// Now is model code reaching the host clock through the wrappers.
func Now() int64 { return wrap.Stamp().UnixNano() }
`},
}

// The acceptance test of the v2 tentpole: on the same fixture, the old
// local wallclock check provably misses the laundered clock read while
// the interprocedural dettaint analyzer catches it at the model call
// site, naming the full chain.
func TestDetTaintCatchesWhatWallClockMisses(t *testing.T) {
	pkgs := checkModuleFixture(t, wrapperFixture)

	if old := Run(pkgs, []*Analyzer{WallClock}); len(old) != 0 {
		t.Fatalf("wallclock unexpectedly found the laundered read: %v", old)
	}

	fs := Run(pkgs, []*Analyzer{DetTaint})
	wantChecks(t, fs, "dettaint")
	if want := "Stamp → clock → time.Now (wall clock)"; !strings.Contains(fs[0].Message, want) {
		t.Errorf("finding %q does not spell out the taint chain %q", fs[0].Message, want)
	}
	if !strings.Contains(fs[0].Pos.Filename, modelPath) {
		t.Errorf("finding placed at %s, want the model call site", fs[0].Pos.Filename)
	}
}

// A reasoned directive at the source stops propagation: a sanctioned
// boundary must not taint every caller above it.
func TestDetTaintSuppressionStopsPropagation(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

import "time"

func guard() time.Time {
	//lint:ignore wallclock sanctioned host-clock boundary for this fixture
	return time.Now()
}

// Caller must stay clean: the source below guard is justified.
func Caller() int64 { return guard().UnixNano() }
`}})
	wantChecks(t, Run(pkgs, []*Analyzer{DetTaint}))
}

// Map iteration feeding a function's behaviour seeds taint too.
func TestDetTaintMapIterationSeedsTaint(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func Render(m map[string]int) { dump(m) }
`}})
	fs := Run(pkgs, []*Analyzer{DetTaint})
	wantChecks(t, fs, "dettaint")
	if want := "dump → map iteration (order randomized per run)"; !strings.Contains(fs[0].Message, want) {
		t.Errorf("finding %q does not name the map-iteration seed %q", fs[0].Message, want)
	}
}

// A source captured as a bare function value in model code is reported
// even though no call is visible to the graph.
func TestDetTaintFlagsSourceFunctionValues(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

import "time"

// Clock smuggles the wall clock in as a function value.
var Clock = time.Now
`}})
	fs := Run(pkgs, []*Analyzer{DetTaint})
	wantChecks(t, fs, "dettaint")
	if !strings.Contains(fs[0].Message, "captured as a function value") {
		t.Errorf("finding %q should flag the function-value capture", fs[0].Message)
	}
}

// Dynamic dispatch through an interface with a tainted implementer is
// reported conservatively.
func TestDetTaintInterfaceDispatchFallback(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

import "time"

type Source interface{ Value() int64 }

type hostClock struct{}

func (hostClock) Value() int64 { return time.Now().UnixNano() }

type fixed struct{}

func (fixed) Value() int64 { return 42 }

func Sample(s Source) int64 { return s.Value() }
`}})
	fs := Run(pkgs, []*Analyzer{DetTaint})
	wantChecks(t, fs, "dettaint")
	if !strings.Contains(fs[0].Message, "dynamic call to Value") {
		t.Errorf("finding %q should report the dynamic call", fs[0].Message)
	}
}

// Direct source calls in model code belong to the local checks; taint
// reporting must not duplicate them.
func TestDetTaintDoesNotDuplicateLocalFindings(t *testing.T) {
	pkgs := checkModuleFixture(t, []fixtureFile{{modelPath, `
package fixture

import "time"

func Tick() int64 { return time.Now().UnixNano() }
`}})
	wantChecks(t, Run(pkgs, []*Analyzer{DetTaint}))
	wantChecks(t, Run(pkgs, []*Analyzer{WallClock, DetTaint}), "wallclock")
}
