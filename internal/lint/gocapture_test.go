package lint

import (
	"strings"
	"testing"
)

// gocapture applies module-wide (drivers race too), so the fixtures use
// driverPath on purpose.

func TestGoCaptureLoopVariableRead(t *testing.T) {
	fs := findings(t, GoCapture, driverPath, `
package fixture

import "fmt"

func Spawn(jobs []string) {
	for _, j := range jobs {
		go func() {
			fmt.Println(j)
		}()
	}
}
`)
	wantChecks(t, fs, "gocapture")
	if !strings.Contains(fs[0].Message, "captures loop variable j") {
		t.Errorf("finding %q should name the captured loop variable", fs[0].Message)
	}
}

func TestGoCapturePassingLoopVariableIsClean(t *testing.T) {
	wantChecks(t, findings(t, GoCapture, driverPath, `
package fixture

import "fmt"

func Spawn(jobs []string) {
	for _, j := range jobs {
		go func(j string) {
			fmt.Println(j)
		}(j)
	}
}
`))
}

func TestGoCaptureUnsynchronizedWrite(t *testing.T) {
	fs := findings(t, GoCapture, driverPath, `
package fixture

func Count(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		go func(i int) {
			total++
		}(i)
	}
	return total
}
`)
	wantChecks(t, fs, "gocapture")
	if !strings.Contains(fs[0].Message, "writes captured variable total") {
		t.Errorf("finding %q should name the racy write", fs[0].Message)
	}
}

func TestGoCaptureMapWrite(t *testing.T) {
	fs := findings(t, GoCapture, driverPath, `
package fixture

func Fill(keys []string) map[string]int {
	out := map[string]int{}
	for i, k := range keys {
		go func(i int, k string) {
			out[k] = i
		}(i, k)
	}
	return out
}
`)
	wantChecks(t, fs, "gocapture")
	if !strings.Contains(fs[0].Message, "map") {
		t.Errorf("finding %q should call out the map write", fs[0].Message)
	}
}

// Disjoint-slot slice writes are the sanctioned worker-pool result
// pattern (each goroutine owns index i); they must stay clean.
func TestGoCaptureSliceSlotWriteIsAllowed(t *testing.T) {
	wantChecks(t, findings(t, GoCapture, driverPath, `
package fixture

func Map(in []int, f func(int) int) []int {
	out := make([]int, len(in))
	for i, v := range in {
		go func(i, v int) {
			out[i] = f(v)
		}(i, v)
	}
	return out
}
`))
}
