package thermal

import (
	"fmt"
	"math"
)

// Volumetric heat capacities in J/(m³·K) for the transient model
// (HotSpot's constants: silicon ≈ 1.75e6, copper ≈ 3.55e6; the composite
// metal/ILD and d2d layers sit between).
const (
	SiHeatCapacity    = 1.75e6
	CuHeatCapacity    = 3.55e6
	MetalHeatCapacity = 2.5e6
	D2DHeatCapacity   = 2.0e6
)

// capacityFor maps a layer to its volumetric heat capacity by material
// (matched on resistivity, which identifies the material in this model).
func capacityFor(l Layer) float64 {
	switch l.Resistivity {
	case SiResistivity:
		return SiHeatCapacity
	case CuResistivity:
		return MetalHeatCapacity
	case D2DResistivity:
		return D2DHeatCapacity
	case CuPlateResistivity:
		return CuHeatCapacity
	default:
		return SiHeatCapacity
	}
}

// Transient wraps a Model and State with per-cell thermal capacitance
// and an explicit time-stepping integrator, for DTM studies where
// temperature chases a time-varying power map (the paper invokes DTM as
// the alternative to over-provisioned cooling in §3.2).
type Transient struct {
	m   *Model
	st  *State
	sol *Solver // single-owner view over st for power/readout access
	// capJ is each cell's heat capacity in joules per kelvin.
	capJ []float64
	// maxStablePs is the largest stable explicit-Euler step.
	maxStablePs float64
	timePs      float64
	scratch     []float64
}

// NewTransient builds a transient integrator over a fresh model for the
// given stack.
func NewTransient(cfg Config) *Transient { return NewTransientFromModel(NewModel(cfg)) }

// NewTransientFromModel builds a transient integrator sharing an
// existing immutable model, so repeated DTM runs over the same stack
// skip the conductance precompute. The integrator owns a fresh state.
func NewTransientFromModel(m *Model) *Transient {
	cfg := m.cfg
	st := m.NewState()
	t := &Transient{m: m, st: st, sol: st.Solver()}
	cellWm := cfg.DieWmm / float64(cfg.Nx) * 1e-3
	cellHm := cfg.DieHmm / float64(cfg.Ny) * 1e-3
	t.capJ = make([]float64, len(st.temp))
	minTau := math.Inf(1)
	for l := 0; l < m.nl; l++ {
		vol := cellWm * cellHm * cfg.Layers[l].ThicknessUm * 1e-6
		c := capacityFor(cfg.Layers[l]) * vol
		// Total conductance bound for the stability estimate.
		g := 4 * m.gLat[l]
		if l > 0 {
			g += m.gUp[l-1]
		} else {
			g += m.gSink
		}
		if l < m.nl-1 {
			g += m.gUp[l]
		} else {
			g += m.gPack
		}
		if tau := c / g; tau < minTau {
			minTau = tau
		}
		for y := 0; y < m.ny; y++ {
			for x := 0; x < m.nx; x++ {
				t.capJ[m.idx(l, y, x)] = c
			}
		}
	}
	// Explicit Euler is stable below ~2·τ_min; keep a 4× margin.
	t.maxStablePs = minTau / 2 * 1e12
	t.scratch = make([]float64, len(st.temp))
	return t
}

// Solver exposes the integrator's state through the single-owner solver
// API (power maps, temperature readout).
func (t *Transient) Solver() *Solver { return t.sol }

// TimePs returns the integrated simulation time.
func (t *Transient) TimePs() float64 { return t.timePs }

// MaxStepPs returns the largest allowed integration step.
func (t *Transient) MaxStepPs() float64 { return t.maxStablePs }

// Step advances the temperature field by dtPs picoseconds using
// explicit Euler, internally sub-stepping to stay within the stability
// bound. It returns an error for non-positive steps.
func (t *Transient) Step(dtPs float64) error {
	if dtPs <= 0 {
		return fmt.Errorf("thermal: non-positive step %v", dtPs)
	}
	m, st := t.m, t.st
	remaining := dtPs
	for remaining > 0 {
		h := remaining
		if h > t.maxStablePs {
			h = t.maxStablePs
		}
		remaining -= h
		hSec := h * 1e-12
		// One explicit update: dT = (P − Σ G·(T−T_neighbor)) · h / C.
		next := t.scratch
		for l := 0; l < m.nl; l++ {
			for y := 0; y < m.ny; y++ {
				for x := 0; x < m.nx; x++ {
					i := m.idx(l, y, x)
					ti := st.temp[i]
					var flow float64
					if l > 0 {
						flow += m.gUp[l-1] * (st.temp[m.idx(l-1, y, x)] - ti)
					} else {
						flow += m.gSink * (m.ambient - ti)
					}
					if l < m.nl-1 {
						flow += m.gUp[l] * (st.temp[m.idx(l+1, y, x)] - ti)
					} else {
						flow += m.gPack * (m.ambient - ti)
					}
					gl := m.gLat[l]
					if x > 0 {
						flow += gl * (st.temp[i-1] - ti)
					}
					if x < m.nx-1 {
						flow += gl * (st.temp[i+1] - ti)
					}
					if y > 0 {
						flow += gl * (st.temp[i-m.nx] - ti)
					}
					if y < m.ny-1 {
						flow += gl * (st.temp[i+m.nx] - ti)
					}
					next[i] = ti + (flow+st.power[i])*hSec/t.capJ[i]
				}
			}
		}
		st.temp, t.scratch = next, st.temp
		t.timePs += h
	}
	return nil
}
