// Package r3d is a library-level facade over the reliability-3D
// simulator: a reproduction of "Leveraging 3D Technology for Improved
// Reliability" (Madan & Balasubramonian, MICRO 2007).
//
// The simulator couples an out-of-order leading core with an in-order
// checker core through register/load/branch value queues (redundant
// multi-threading), runs synthetic SPEC2k-like workloads through real
// branch-predictor and NUCA-cache models, and layers Wattch-style power,
// HotSpot-style 3D thermal, interconnect, technology-scaling and
// fault-injection models on top — enough to regenerate every table and
// figure of the paper's evaluation (see cmd/r3dbench and EXPERIMENTS.md).
//
// This package exposes the common entry points with plain result types;
// the full models live under internal/ and are exercised by the
// examples, the r3dbench/r3dsim tools and the benchmark suite.
package r3d

import (
	"fmt"

	"r3d/internal/campaign"
	"r3d/internal/core"
	"r3d/internal/fault"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/tech"
	"r3d/internal/trace"
)

// Benchmarks returns the names of the 19 SPEC2k-like workloads.
func Benchmarks() []string { return trace.Names() }

// L2Org selects the paper's cache organizations.
type L2Org string

// The three L2 organizations of the paper's §3.
const (
	L2Org2DA  L2Org = "2d-a"  // 6 MB, 6 banks
	L2Org2D2A L2Org = "2d-2a" // 15 MB, single large die
	L2Org3D2A L2Org = "3d-2a" // 15 MB, 9 banks stacked
)

func (o L2Org) config() (nuca.Config, error) {
	switch o {
	case L2Org2DA, "":
		return nuca.Config2DA(nuca.DistributedSets), nil
	case L2Org2D2A:
		return nuca.Config2D2A(nuca.DistributedSets), nil
	case L2Org3D2A:
		return nuca.Config3D2A(nuca.DistributedSets), nil
	}
	return nuca.Config{}, fmt.Errorf("r3d: unknown L2 organization %q", o)
}

// Result summarizes a standalone leading-core run.
type Result struct {
	Benchmark      string
	Instructions   uint64
	Cycles         uint64
	IPC            float64
	L2MissesPer10k float64
	L2HitLatency   float64
	MispredictRate float64
}

// RunBenchmark simulates n instructions of the named workload on the
// out-of-order leading core with the given L2 organization.
func RunBenchmark(name string, org L2Org, n uint64, seed int64) (Result, error) {
	b, err := trace.ByName(name)
	if err != nil {
		return Result{}, err
	}
	l2cfg, err := org.config()
	if err != nil {
		return Result{}, err
	}
	g := trace.MustGenerator(b.Profile, seed)
	c, err := ooo.New(ooo.Default(), g, nuca.New(l2cfg))
	if err != nil {
		return Result{}, err
	}
	s := c.Run(n)
	return Result{
		Benchmark:      name,
		Instructions:   s.Instructions,
		Cycles:         s.Activity.Cycles,
		IPC:            s.IPC(),
		L2MissesPer10k: s.L2MissesPer10k(),
		L2HitLatency:   s.MeanL2HitLatency(),
		MispredictRate: c.PredictorStats().MispredictRate(),
	}, nil
}

// ReliableResult summarizes a redundant-multithreading run.
type ReliableResult struct {
	Result
	CheckerIPC         float64
	MeanCheckerFreqGHz float64
	Checked            uint64
	LeadStallCycles    uint64
	ErrorsDetected     uint64
	ErrorsRecovered    uint64
	ErrorsUnrecovered  uint64
}

// RunReliable simulates n instructions on the full reliable processor:
// leading core plus DFS-throttled in-order checker. maxCheckerGHz caps
// the checker's frequency range (2.0 for the homogeneous stack, 1.4 for
// the §4 90 nm checker die).
func RunReliable(name string, org L2Org, n uint64, maxCheckerGHz float64, seed int64) (ReliableResult, error) {
	sys, err := newSystem(name, org, maxCheckerGHz, seed)
	if err != nil {
		return ReliableResult{}, err
	}
	st := sys.Run(n)
	return reliableResult(name, sys, st), nil
}

// InjectionResult reports a fault-injection campaign.
type InjectionResult struct {
	ReliableResult
	LeadInjected   uint64
	RFInjected     uint64
	MultiBitUpsets uint64
	Coverage       float64
	// Status reports how the supervised trial ended: "ok", or "hung"
	// when the forward-progress watchdog stopped a wedged system (the
	// statistics are then the partial window up to the wedge).
	Status string
	// WatchdogReason qualifies a hung run (e.g. "no-progress").
	WatchdogReason string
}

// RunInjection runs a soft-error injection campaign on the reliable
// processor: leading-core datapath upsets and trailer register-file
// upsets arrive at the given (accelerated) rates per million cycles,
// with the multi-bit-upset fraction of the given technology node.
//
// The run executes under the internal/campaign supervisor: a wedged
// system is stopped by the forward-progress watchdog and reported with
// Status "hung" instead of spinning forever, and a panicking trial
// surfaces as an error instead of killing the process. Grid campaigns
// over many seeds and rates belong to cmd/r3dfault.
func RunInjection(name string, n uint64, nodeNm int, leadPerM, checkerPerM float64, seed int64) (InjectionResult, error) {
	sys, err := newSystem(name, L2Org2DA, 2.0, seed)
	if err != nil {
		return InjectionResult{}, err
	}
	out := campaign.RunSupervised(sys, fault.CampaignConfig{
		Instructions:         n,
		CycleBudget:          fault.DefaultCycleBudget(n),
		LeadSoftPerMCycle:    leadPerM,
		CheckerSoftPerMCycle: checkerPerM,
		TimingNode:           tech.Node(nodeNm),
		Seed:                 seed,
	}, campaign.Watchdog{})
	if out.Status == campaign.StatusCrashed {
		return InjectionResult{}, fmt.Errorf("r3d: injection campaign crashed: %s", out.Reason)
	}
	res := out.Result
	return InjectionResult{
		ReliableResult: reliableResult(name, sys, sys.Stats()),
		LeadInjected:   res.LeadInjected,
		RFInjected:     res.RFInjected,
		MultiBitUpsets: res.MBUs,
		Coverage:       res.Coverage(),
		Status:         string(out.Status),
		WatchdogReason: out.Reason,
	}, nil
}

// TechScaling returns the Table 8 dynamic and leakage power factors for
// implementing a fixed design on oldNm instead of newNm.
func TechScaling(oldNm, newNm int) (dynamic, leakage float64, err error) {
	s, err := tech.ScalePower(tech.Node(oldNm), tech.Node(newNm))
	if err != nil {
		return 0, 0, err
	}
	return s.Dynamic, s.Leakage, nil
}

func newSystem(name string, org L2Org, maxGHz float64, seed int64) (*core.System, error) {
	b, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	l2cfg, err := org.config()
	if err != nil {
		return nil, err
	}
	g := trace.MustGenerator(b.Profile, seed)
	lead, err := ooo.New(ooo.Default(), g, nuca.New(l2cfg))
	if err != nil {
		return nil, err
	}
	cfg := core.Default(ooo.Default())
	if maxGHz > 0 {
		cfg.CheckerMaxFreqGHz = maxGHz
	}
	return core.New(cfg, lead)
}

func reliableResult(name string, sys *core.System, st core.SystemStats) ReliableResult {
	lead := sys.Lead().Stats()
	cs := sys.Checker().Stats()
	return ReliableResult{
		Result: Result{
			Benchmark:      name,
			Instructions:   lead.Instructions,
			Cycles:         lead.Activity.Cycles,
			IPC:            lead.IPC(),
			L2MissesPer10k: lead.L2MissesPer10k(),
			L2HitLatency:   lead.MeanL2HitLatency(),
			MispredictRate: sys.Lead().PredictorStats().MispredictRate(),
		},
		CheckerIPC:         cs.IPC(),
		MeanCheckerFreqGHz: sys.MeanCheckerFreqGHz(),
		Checked:            cs.Checked,
		LeadStallCycles:    st.LeadStallCycles,
		ErrorsDetected:     st.ErrorsDetected,
		ErrorsRecovered:    st.ErrorsRecovered,
		ErrorsUnrecovered:  st.ErrorsUnrecovered,
	}
}
