package thermal

// This file defines the temperature scales. The solver, the DTM
// controller and the experiment layer all traffic in temperatures, and
// a bare float64 cannot say whether a value is an absolute Kelvin, a
// Celsius reading or a Kelvin-per-watt resistance — exactly the class
// of silent mix-up the r3dlint `units` analyzer polices. Celsius and
// Kelvin are defined types so the type checker rejects accidental
// cross-scale arithmetic outright, and the units manifest
// (internal/lint/units.conf) anchors the remaining float64 plumbing.
//
// Differences of two Celsius values are Celsius-typed too; a ΔT is
// scale-free (1 °C step == 1 K step), so dividing two differences for
// a dimensionless ratio is sound and the affine offset only matters in
// the sanctioned conversions below.

// Celsius is a temperature on the Celsius scale.
type Celsius float64

// Kelvin is an absolute temperature.
type Kelvin float64

// ZeroCelsiusK is the Kelvin value of 0 °C.
const ZeroCelsiusK Kelvin = 273.15

// Kelvin converts a Celsius reading to absolute temperature.
func (c Celsius) Kelvin() Kelvin {
	//lint:ignore units sanctioned affine conversion between temperature scales
	return Kelvin(c) + ZeroCelsiusK
}

// Celsius converts an absolute temperature to the Celsius scale.
func (k Kelvin) Celsius() Celsius {
	//lint:ignore units sanctioned affine conversion between temperature scales
	return Celsius(k - ZeroCelsiusK)
}
