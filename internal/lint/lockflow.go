package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"r3d/internal/detmap"
)

// This file is the shared infrastructure of the v3 concurrency suite
// (mutexguard, lockorder, blockhold): it parses the lock-contract
// annotations, resolves mutex identities, and walks every function body
// with a flow-sensitive locks-held abstract state, collecting the facts
// — guarded-field accesses, lock acquisitions, blocking operations and
// call sites, each with the held-set at that program point — that the
// three analyzers then combine with interprocedural propagation over
// the module call graph.
//
// Annotation grammar (ordinary comments, scanned here, distinct from
// //lint:ignore suppressions):
//
//	// r3dlint:guardedby <mutex>
//	    on a struct field (or a package-level var): every read of the
//	    annotated state must happen with <mutex> held (RLock suffices
//	    for an RWMutex), every write with it held exclusively. <mutex>
//	    names a sibling field of the same struct or a package-level
//	    mutex variable.
//
//	// r3dlint:blocks <reason>
//	    on a function declaration: calling this function is a blocking
//	    operation (e.g. a whole-grid thermal solve), so reaching it
//	    while a mutex is held is a blockhold finding in the caller.
//
// Mutex identity is type-scoped: s.mu and t.mu on two instances of the
// same struct resolve to the same identity. That conflates instances —
// the standard @GuardedBy approximation — and is documented in the
// README; per-instance aliasing (a *sync.Mutex stored into a local and
// locked through it) is not tracked.
const (
	guardedByMarker = "r3dlint:guardedby"
	blocksMarker    = "r3dlint:blocks"
)

// A lockID canonically names one mutex: "pkg/path.Type.field" for a
// struct field (including an embedded sync.Mutex), "pkg/path.name" for
// a package-level variable.
type lockID string

// display shortens a lockID for findings: the part after the last
// path separator, e.g. "experiment.Session.thermalMu".
func (id lockID) display() string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// lockMode is the strength a mutex is held with at a program point.
type lockMode int

const (
	lockNone  lockMode = iota
	lockRead           // RLock held
	lockWrite          // Lock held (exclusive; satisfies read accesses too)
)

// heldSet maps each held mutex to the strongest mode it is held with.
// The walker mutates one set in place along straight-line code and
// clones it at branch points.
type heldSet map[lockID]lockMode

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	//lint:ignore maporder map-to-map copy; each key written exactly once, order-independent
	for k, v := range h {
		c[k] = v
	}
	return c
}

// acquire records holding id at least at mode (an RLock never weakens
// an already-exclusive hold).
func (h heldSet) acquire(id lockID, mode lockMode) {
	if h[id] < mode {
		h[id] = mode
	}
}

// union returns entry ∪ h with the stronger mode winning; a nil entry
// is ⊤ (unknown-yet in the fixpoint) and absorbs everything.
func unionHeld(entry, h heldSet) heldSet {
	if entry == nil {
		return nil
	}
	out := entry.clone()
	//lint:ignore maporder max-merge touches each key independently; order cannot affect the result
	for k, v := range h {
		if out[k] < v {
			out[k] = v
		}
	}
	return out
}

// intersectHeld returns the meet of two concrete held-sets: a mutex is
// in the result only if both sides hold it, at the weaker mode.
func intersectHeld(a, b heldSet) heldSet {
	out := heldSet{}
	//lint:ignore maporder per-key meet; each result entry depends only on its own key in a and b
	for k, v := range a {
		if bv, ok := b[k]; ok {
			if bv < v {
				v = bv
			}
			out[k] = v
		}
	}
	return out
}

func heldEqual(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	//lint:ignore maporder pure equality probe; no observable order dependence
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// sortedHeld returns the held mutexes in canonical order for messages.
func sortedHeld(h heldSet) []lockID {
	return detmap.SortedKeys(h)
}

// guardDecl is one parsed r3dlint:guardedby annotation.
type guardDecl struct {
	guard   lockID
	guardRW bool   // the guard is an RWMutex (read accesses may use RLock)
	target  string // display name of the guarded state, e.g. "Engine.results"
	pos     token.Pos
}

// callKind distinguishes how a call site runs relative to the caller's
// locks: a plain call inherits them, a `go` call starts with none, and
// a deferred call runs at function exit where the held-set is no longer
// tracked.
type callKind int

const (
	callNormal callKind = iota
	callGo
	callDefer
)

// lockCall is one call site with the locks held at it.
type lockCall struct {
	callee     *types.Func
	candidates []*types.Func // interface-dispatch fallback targets
	pos        token.Pos
	held       heldSet
	kind       callKind
}

// guardAccess is one read or write of guarded state.
type guardAccess struct {
	target *types.Var // the annotated field or package var
	guard  lockID
	rw     bool
	pos    token.Pos
	write  bool
	held   heldSet
}

// lockAcquire is one Lock/RLock call, with the locks already held when
// it executes (the lock-order edges' sources).
type lockAcquire struct {
	id   lockID
	mode lockMode
	pos  token.Pos
	held heldSet
}

// blockOp is one directly blocking operation (channel op, sleep, I/O).
type blockOp struct {
	desc string
	pos  token.Pos
	held heldSet
}

// fnFacts is the walker's output for one function body. Function
// literals get their own facts node with an empty entry context: a
// literal typically runs on a fresh goroutine or at defer time, where
// the enclosing function's locks are not (or no longer) held.
type fnFacts struct {
	fn       *types.Func // nil for function literals
	pkg      *Package
	name     string // display name for chains
	pos      token.Pos
	isLit    bool
	accesses []guardAccess
	calls    []lockCall
	acquires []lockAcquire
	blocks   []blockOp
}

// annErr is a malformed lock annotation, reported by mutexguard.
type annErr struct {
	pos token.Pos
	msg string
}

// lockProgram is the whole-module fact base shared by the three
// concurrency analyzers.
type lockProgram struct {
	fset      *token.FileSet
	nodes     []*fnFacts // declared functions then literals, position order
	byFn      map[*types.Func]*fnFacts
	guards    map[*types.Var]guardDecl
	blocksAnn map[*types.Func]string // r3dlint:blocks reason per function
	annErrs   []annErr
	valueRef  map[*types.Func]bool // functions referenced as values (escape analysis)
}

// buildLockProgram collects annotations and walks every function of the
// module. It is rebuilt per analyzer run (like BuildCallGraph), keeping
// the analyzers independent.
func buildLockProgram(pkgs []*Package) *lockProgram {
	p := &lockProgram{
		fset:      fsetOf(pkgs),
		byFn:      map[*types.Func]*fnFacts{},
		guards:    map[*types.Var]guardDecl{},
		blocksAnn: map[*types.Func]string{},
		valueRef:  map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		p.collectAnnotations(pkg)
	}
	ir := newIfaceResolver(pkgs)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				facts := &fnFacts{fn: obj, pkg: pkg, name: obj.Name(), pos: fd.Pos()}
				p.nodes = append(p.nodes, facts)
				p.byFn[obj] = facts
				w := &lockWalker{prog: p, pkg: pkg, ir: ir, facts: facts}
				w.walkStmt(fd.Body, heldSet{})
			}
		}
	}
	sort.Slice(p.nodes, func(i, j int) bool { return p.nodes[i].pos < p.nodes[j].pos })
	return p
}

// collectAnnotations parses r3dlint:guardedby (struct fields and
// package vars) and r3dlint:blocks (function declarations) in pkg.
func (p *lockProgram) collectAnnotations(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if reason, ok := markerIn(blocksMarker, d.Doc); ok {
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						if reason == "" {
							reason = "annotated blocking operation"
						}
						p.blocksAnn[fn] = reason
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok {
							continue
						}
						p.collectFieldGuards(pkg, s, st)
					case *ast.ValueSpec:
						p.collectVarGuard(pkg, d, s)
					}
				}
			}
		}
	}
}

// markerIn scans the comment groups for a line starting with marker and
// returns the text after it.
func markerIn(marker string, groups ...*ast.CommentGroup) (string, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, marker); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// collectFieldGuards registers the guardedby annotations of one struct
// declaration. The named mutex must be a sibling field of mutex type or
// a package-level mutex variable.
func (p *lockProgram) collectFieldGuards(pkg *Package, ts *ast.TypeSpec, st *ast.StructType) {
	for _, field := range st.Fields.List {
		spec, ok := markerIn(guardedByMarker, field.Doc, field.Comment)
		if !ok {
			continue
		}
		name := firstField(spec)
		if name == "" {
			p.annErrs = append(p.annErrs, annErr{pos: field.Pos(), msg: "malformed annotation: want // r3dlint:guardedby <mutex>"})
			continue
		}
		id, rw, ok := p.resolveGuard(pkg, ts, st, name)
		if !ok {
			p.annErrs = append(p.annErrs, annErr{
				pos: field.Pos(),
				msg: fmt.Sprintf("r3dlint:guardedby names %q, which is neither a sibling mutex field of %s nor a package-level mutex", name, ts.Name.Name),
			})
			continue
		}
		for _, ident := range field.Names {
			if v, ok := pkg.Info.Defs[ident].(*types.Var); ok {
				p.guards[v] = guardDecl{
					guard: id, guardRW: rw,
					target: ts.Name.Name + "." + ident.Name,
					pos:    field.Pos(),
				}
			}
		}
	}
}

// collectVarGuard registers a guardedby annotation on a package-level
// var declaration (guarding global state with a global mutex).
func (p *lockProgram) collectVarGuard(pkg *Package, d *ast.GenDecl, vs *ast.ValueSpec) {
	spec, ok := markerIn(guardedByMarker, vs.Doc, vs.Comment, d.Doc)
	if !ok {
		return
	}
	name := firstField(spec)
	if name == "" {
		p.annErrs = append(p.annErrs, annErr{pos: vs.Pos(), msg: "malformed annotation: want // r3dlint:guardedby <mutex>"})
		return
	}
	id, rw, ok := p.packageMutex(pkg, name)
	if !ok {
		p.annErrs = append(p.annErrs, annErr{
			pos: vs.Pos(),
			msg: fmt.Sprintf("r3dlint:guardedby names %q, which is not a package-level mutex in %s", name, pkg.Types.Name()),
		})
		return
	}
	for _, ident := range vs.Names {
		if v, ok := pkg.Info.Defs[ident].(*types.Var); ok {
			p.guards[v] = guardDecl{
				guard: id, guardRW: rw,
				target: pkg.Types.Name() + "." + ident.Name,
				pos:    vs.Pos(),
			}
		}
	}
}

func firstField(s string) string {
	fs := strings.Fields(s)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// resolveGuard resolves a guardedby mutex name against the annotated
// struct's sibling fields, then the package scope.
func (p *lockProgram) resolveGuard(pkg *Package, ts *ast.TypeSpec, st *ast.StructType, name string) (lockID, bool, bool) {
	for _, f := range st.Fields.List {
		for _, ident := range f.Names {
			if ident.Name != name {
				continue
			}
			v, ok := pkg.Info.Defs[ident].(*types.Var)
			if !ok {
				return "", false, false
			}
			rw, isMu := mutexType(v.Type())
			if !isMu {
				return "", false, false
			}
			return lockID(pkg.Path + "." + ts.Name.Name + "." + name), rw, true
		}
		// An embedded sync.Mutex can be named by its type name.
		if len(f.Names) == 0 {
			if tn := embeddedName(f.Type); tn == name {
				if tv, ok := pkg.Info.Types[f.Type]; ok {
					if rw, isMu := mutexType(tv.Type); isMu {
						return lockID(pkg.Path + "." + ts.Name.Name + "." + name), rw, true
					}
				}
			}
		}
	}
	return p.packageMutex(pkg, name)
}

// packageMutex resolves name to a package-level mutex variable.
func (p *lockProgram) packageMutex(pkg *Package, name string) (lockID, bool, bool) {
	v, ok := pkg.Types.Scope().Lookup(name).(*types.Var)
	if !ok {
		return "", false, false
	}
	rw, isMu := mutexType(v.Type())
	if !isMu {
		return "", false, false
	}
	return lockID(pkg.Path + "." + name), rw, true
}

// embeddedName returns the bare type name of an embedded field.
func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	}
	return ""
}

// mutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex; rw is true for the latter.
func mutexType(t types.Type) (rw, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}
