package r3d

import (
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"

	"r3d/internal/lint"
)

// loadOnce loads and analyzes the module a single time for every test
// in this file (the source-importer type-check of the whole module is
// the expensive part).
var loadOnce = sync.OnceValues(func() (*lintRun, error) {
	m, findings, err := lint.RunModule(".")
	if err != nil {
		return nil, err
	}
	return &lintRun{m: m, findings: findings}, nil
})

type lintRun struct {
	m        *lint.Module
	findings []lint.Finding
}

// TestLintClean runs the full r3dlint determinism/hygiene suite over
// every non-test package of the module and fails on any unsuppressed
// finding. This is the tier-1 enforcement hook: introducing a map
// iteration, global-RNG call, wall-clock read (even laundered through
// wrapper functions — dettaint follows the call graph), exact float
// comparison, dropped error, cross-dimension unit mix or racy goroutine
// capture without a reasoned //lint:ignore breaks `go test ./...`, not
// just a separately-run linter.
func TestLintClean(t *testing.T) {
	r, err := loadOnce()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(r.m.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the module", len(r.m.Pkgs))
	}
	for _, f := range r.findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("fix the findings above or suppress them with `//lint:ignore <check> <reason>` (see README \"Determinism & lint suite\")")
	}
}

// TestLintModelCodeHasEmptyBaseline pins the strictest gate where it
// matters most: model code (internal/ packages) is held to an EMPTY
// baseline, so `-baseline` can never become a dumping ground that lets
// new nondeterminism into the simulator core.
func TestLintModelCodeHasEmptyBaseline(t *testing.T) {
	r, err := loadOnce()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	var model []lint.Finding
	for _, f := range r.findings {
		if strings.HasPrefix(lint.Relativize(r.m.Dir, f).Pos.Filename, "internal/") {
			model = append(model, f)
		}
	}
	empty := lint.NewBaseline(nil)
	regressions, stale := empty.Apply(r.m.Dir, model)
	if len(stale) != 0 {
		t.Errorf("empty baseline reported stale entries: %v", stale)
	}
	for _, f := range regressions {
		t.Errorf("model-code finding not covered by a reasoned directive: %s", f)
	}
}

// TestGoVetClean makes `go vet ./...` part of the tier-1 gate: a vet
// diagnostic fails `go test ./...`, not just the separately-run `make
// lint`. Skips when no go binary is on PATH (the test binary may run
// on a machine without the toolchain).
func TestGoVetClean(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	cmd := exec.Command(goBin, "vet", "./...")
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Errorf("go vet ./... failed (%v) on %s:\n%s", err, runtime.Version(), out)
	}
}

// TestLintJSONIsByteStable re-runs the suite over the already-loaded
// packages and asserts the -json rendering is byte-identical — the
// property that makes baseline files and CI diffs trustworthy.
func TestLintJSONIsByteStable(t *testing.T) {
	r, err := loadOnce()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	first, err := lint.MarshalJSON(r.m.Dir, lint.RunDir(r.m.Dir, r.m.Pkgs, lint.Analyzers()))
	if err != nil {
		t.Fatal(err)
	}
	second, err := lint.MarshalJSON(r.m.Dir, lint.RunDir(r.m.Dir, r.m.Pkgs, lint.Analyzers()))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("JSON findings differ between identical runs over the same loaded module")
	}
}
