// Package ckpt is the repo's crash-safe snapshot layer: checksummed,
// versioned checkpoint files with atomic temp-file + rename commits and
// automatic rollback to the last good snapshot.
//
// The paper's premise is a redundant checker that validates a leading
// core's results before they become architecturally visible; ckpt plays
// the same role for long-running campaigns and memoized experiment
// state. A checkpoint is never trusted on faith: every record carries a
// CRC32, the file carries a schema version plus a caller-supplied kind
// and fingerprint, and a trailer pins the record count and a running
// CRC — so a torn write, a flipped bit, or a file from a different grid
// or build is detected instead of silently merged.
//
// File format (line-oriented JSON, one record per line):
//
//	{"magic":"r3d-ckpt","version":1,"kind":K,"fingerprint":F}
//	{"crc":"<crc32 of data bytes>","data":<record JSON>}
//	...
//	{"magic":"r3d-ckpt-end","records":N,"crc":"<running crc32>"}
//
// Commit is atomic: the new snapshot is written to a temp file in the
// same directory, synced, then renamed over the target after rotating
// the previous snapshot to "<path>.prev". A crash at any instant leaves
// either the old snapshot, the new one, or (in the window between the
// two renames) only the .prev — and LoadLatest recovers the last good
// state in every case.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"

	"r3d/internal/backoff"
	"r3d/internal/iofault"
)

const (
	magic        = "r3d-ckpt"
	trailerMagic = "r3d-ckpt-end"
	version      = 1
)

// Meta identifies what a checkpoint holds. Kind names the schema (e.g.
// "campaign-aggregate"); Fingerprint ties the file to the exact inputs
// it was derived from (a grid hash, a quality hash). Load refuses a
// file whose meta does not match, so restoring against the wrong world
// fails loudly instead of mixing record schemas.
type Meta struct {
	Kind        string
	Fingerprint string
}

// CorruptError reports a checkpoint that is structurally damaged: a
// torn tail, a checksum mismatch, a truncated header or trailer. A
// corrupt file is recoverable (roll back to .prev, or rebuild from the
// journal); a MismatchError is not.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: %s is corrupt: %s", e.Path, e.Reason)
}

// MismatchError reports an intact checkpoint written for a different
// world: wrong kind, wrong fingerprint, or an unsupported format
// version. Rollback is deliberately not attempted — the .prev of a
// foreign file is just as foreign.
type MismatchError struct {
	Path  string
	Field string
	Got   string
	Want  string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("ckpt: %s has %s %q, want %q — it was written by an incompatible build or for different inputs", e.Path, e.Field, e.Got, e.Want)
}

type header struct {
	Magic       string `json:"magic"`
	Version     int    `json:"version"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
}

type record struct {
	CRC  string          `json:"crc"`
	Data json.RawMessage `json:"data"`
}

type trailer struct {
	Magic   string `json:"magic"`
	Records int    `json:"records"`
	CRC     string `json:"crc"`
}

func crcHex(sum uint32) string { return fmt.Sprintf("%08x", sum) }

// PrevPath returns the rotation target for path — where Commit parks
// the previous snapshot and where LoadLatest looks during rollback.
func PrevPath(path string) string { return path + ".prev" }

// Writer accumulates records for one snapshot. Records are buffered in
// memory (snapshots are aggregate state, not bulk data) and written in
// a single atomic Commit.
type Writer struct {
	meta    Meta
	records []json.RawMessage
	running uint32 // crc32 chained over every record's data bytes
}

// NewWriter starts an empty snapshot with the given identity.
func NewWriter(meta Meta) *Writer {
	return &Writer{meta: meta}
}

// Append JSON-encodes v as the next record.
func (w *Writer) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ckpt: encode record: %w", err)
	}
	w.records = append(w.records, data)
	w.running = crc32.Update(w.running, crc32.IEEETable, data)
	return nil
}

// Len returns the number of appended records.
func (w *Writer) Len() int { return len(w.records) }

// dirSyncRetry bounds the directory-fsync retry inside CommitTo. The
// sync is retried in-line (no sleeping — commit callers own pacing)
// because a transient storage fault there would otherwise void the
// durability promise the atomic rename just made.
var dirSyncRetry = backoff.Policy{Attempts: 3}

// Commit atomically installs the snapshot at path on the real
// filesystem. See CommitTo.
func (w *Writer) Commit(path string) error {
	return w.CommitTo(iofault.OS(), path)
}

// CommitTo atomically installs the snapshot at path on fsys: write to a
// temp file in the same directory, fsync, rotate any existing snapshot
// to PrevPath(path), then rename the temp file into place and fsync the
// directory. After CommitTo returns nil the new snapshot is durable and
// the previous one remains available for rollback.
func (w *Writer) CommitTo(fsys iofault.FS, path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			// Best-effort cleanup on the failure path; the commit error
			// already carries the cause.
			_ = tmp.Close()
			_ = fsys.Remove(tmp.Name())
		}
	}()

	write := func(v any) error {
		line, merr := json.Marshal(v)
		if merr != nil {
			return merr
		}
		_, werr := tmp.Write(append(line, '\n'))
		return werr
	}
	if err = write(header{Magic: magic, Version: version, Kind: w.meta.Kind, Fingerprint: w.meta.Fingerprint}); err != nil {
		return fmt.Errorf("ckpt: write header: %w", err)
	}
	for _, data := range w.records {
		if err = write(record{CRC: crcHex(crc32.ChecksumIEEE(data)), Data: data}); err != nil {
			return fmt.Errorf("ckpt: write record: %w", err)
		}
	}
	if err = write(trailer{Magic: trailerMagic, Records: len(w.records), CRC: crcHex(w.running)}); err != nil {
		return fmt.Errorf("ckpt: write trailer: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close snapshot: %w", err)
	}

	// Rotate current → .prev, then temp → current. A kill between the
	// two renames leaves only the .prev; LoadLatest rolls back to it.
	if _, serr := fsys.Stat(path); serr == nil {
		if err = fsys.Rename(path, PrevPath(path)); err != nil {
			return fmt.Errorf("ckpt: rotate previous snapshot: %w", err)
		}
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: install snapshot: %w", err)
	}
	// Make the renames durable. A failed directory sync means a crash
	// could resurrect the old snapshot (or lose this one entirely), so
	// it is classified, not dropped: transient faults are retried
	// in-line, and a persistent failure surfaces as a commit error —
	// the snapshot is visible but its durability is not yet promised.
	if err = backoff.Retry(dirSyncRetry, nil, func() error { return fsys.SyncDir(dir) }); err != nil {
		return fmt.Errorf("ckpt: sync snapshot directory: %w", err)
	}
	return nil
}

// Snapshot is a loaded, fully validated checkpoint.
type Snapshot struct {
	Meta    Meta
	records []json.RawMessage
}

// Len returns the number of records.
func (s *Snapshot) Len() int { return len(s.records) }

// Decode unmarshals record i into v.
func (s *Snapshot) Decode(i int, v any) error {
	if err := json.Unmarshal(s.records[i], v); err != nil {
		return fmt.Errorf("ckpt: decode record %d: %w", i, err)
	}
	return nil
}

// Load reads and validates the snapshot at path on the real
// filesystem. See LoadFrom.
func Load(path string, want Meta) (*Snapshot, error) {
	return LoadFrom(iofault.OS(), path, want)
}

// LoadFrom reads and validates the snapshot at path on fsys. It returns
// fs.ErrNotExist (wrapped) when no file exists, a *CorruptError for
// structural damage, and a *MismatchError for an intact file with the
// wrong kind, fingerprint or version.
func LoadFrom(fsys iofault.FS, path string, want Meta) (*Snapshot, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("ckpt: %s: %w", path, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("ckpt: read %s: %w", path, err)
	}

	lines := splitLines(data)
	if len(lines) == 0 {
		return nil, &CorruptError{Path: path, Reason: "empty file"}
	}
	var hdr header
	if json.Unmarshal(lines[0], &hdr) != nil || hdr.Magic != magic {
		if len(lines[0]) == 0 || !complete(data, 0, lines) {
			return nil, &CorruptError{Path: path, Reason: "truncated header"}
		}
		return nil, &CorruptError{Path: path, Reason: "not a checkpoint file"}
	}
	if hdr.Version != version {
		return nil, &MismatchError{Path: path, Field: "format version", Got: fmt.Sprintf("%d", hdr.Version), Want: fmt.Sprintf("%d", version)}
	}
	if hdr.Kind != want.Kind {
		return nil, &MismatchError{Path: path, Field: "kind", Got: hdr.Kind, Want: want.Kind}
	}
	if hdr.Fingerprint != want.Fingerprint {
		return nil, &MismatchError{Path: path, Field: "fingerprint", Got: hdr.Fingerprint, Want: want.Fingerprint}
	}

	if len(lines) < 2 {
		return nil, &CorruptError{Path: path, Reason: "missing trailer (torn write)"}
	}
	var tr trailer
	last := lines[len(lines)-1]
	if json.Unmarshal(last, &tr) != nil || tr.Magic != trailerMagic {
		return nil, &CorruptError{Path: path, Reason: "missing trailer (torn write)"}
	}

	body := lines[1 : len(lines)-1]
	if len(body) != tr.Records {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("trailer declares %d records, found %d", tr.Records, len(body))}
	}
	var running uint32
	snap := &Snapshot{Meta: Meta{Kind: hdr.Kind, Fingerprint: hdr.Fingerprint}}
	for i, line := range body {
		var rec record
		if json.Unmarshal(line, &rec) != nil || rec.Data == nil {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("record %d is not valid JSON", i)}
		}
		if got := crcHex(crc32.ChecksumIEEE(rec.Data)); got != rec.CRC {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("record %d checksum mismatch (have %s, computed %s)", i, rec.CRC, got)}
		}
		running = crc32.Update(running, crc32.IEEETable, rec.Data)
		snap.records = append(snap.records, rec.Data)
	}
	if got := crcHex(running); got != tr.CRC {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("running checksum mismatch (trailer %s, computed %s)", tr.CRC, got)}
	}
	return snap, nil
}

// LoadLatest loads path, rolling back to PrevPath(path) when the
// primary snapshot is missing or corrupt. The returned note is empty
// when the primary loaded cleanly; otherwise it explains the rollback
// for surfacing to the user. Mismatch errors never roll back: a foreign
// snapshot's .prev is equally foreign, and silently restoring it would
// hide the incompatibility.
func LoadLatest(path string, want Meta) (*Snapshot, string, error) {
	return LoadLatestFrom(iofault.OS(), path, want)
}

// LoadLatestFrom is LoadLatest against an explicit filesystem.
func LoadLatestFrom(fsys iofault.FS, path string, want Meta) (*Snapshot, string, error) {
	snap, err := LoadFrom(fsys, path, want)
	if err == nil {
		return snap, "", nil
	}
	var corrupt *CorruptError
	recoverable := errors.As(err, &corrupt) || errors.Is(err, fs.ErrNotExist)
	if !recoverable {
		return nil, "", err
	}
	prev, perr := LoadFrom(fsys, PrevPath(path), want)
	if perr != nil {
		// No good previous snapshot: surface the primary's failure.
		return nil, "", err
	}
	reason := "missing (crash between snapshot rotation and install)"
	if corrupt != nil {
		reason = corrupt.Reason
	}
	return prev, fmt.Sprintf("ckpt: %s was %s; rolled back to previous snapshot %s", path, reason, PrevPath(path)), nil
}

// splitLines splits on '\n', dropping a trailing unterminated fragment
// only when it is empty (a well-formed file ends in a newline; a torn
// final line simply fails its JSON parse or leaves the trailer missing).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:]) // unterminated fragment
	}
	return lines
}

// complete reports whether line i of lines ends with a newline in data
// (i.e. was fully written).
func complete(data []byte, i int, lines [][]byte) bool {
	if i < len(lines)-1 {
		return true
	}
	return len(data) > 0 && data[len(data)-1] == '\n'
}
