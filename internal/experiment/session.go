// Package experiment regenerates every table and figure of the paper's
// evaluation. Each experiment is a function from a shared Session (which
// caches simulation runs so, e.g., Figure 5 and Figure 6 reuse the same
// per-benchmark windows) to a typed result with a String() renderer that
// prints rows in the paper's format. See DESIGN.md §4 for the
// experiment ↔ module index and EXPERIMENTS.md for paper-vs-measured
// numbers.
package experiment

import (
	"fmt"

	"r3d/internal/core"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/power"
	"r3d/internal/thermal"
	"r3d/internal/trace"
)

// Quality selects simulation window sizes: Fast for tests, Full for the
// r3dbench tool.
type Quality struct {
	WarmupInsts  uint64
	MeasureInsts uint64
	// Benchmarks restricts the suite (nil = all 19).
	Benchmarks []string
	// ThermalTolC / ThermalMaxIters bound the SOR solver.
	ThermalTolC     float64
	ThermalMaxIters int
	Seed            int64
}

// Fast returns a test-sized quality (≈6× smaller windows, 6-benchmark
// subset).
func Fast() Quality {
	return Quality{
		WarmupInsts:  60_000,
		MeasureInsts: 120_000,
		Benchmarks:   []string{"gzip", "mcf", "mesa", "swim", "twolf", "art"},
		ThermalTolC:  1e-4, ThermalMaxIters: 40_000,
		Seed: 42,
	}
}

// Full returns the quality used for the published numbers in
// EXPERIMENTS.md: all 19 benchmarks, 400k-instruction warmup and
// measurement windows (the paper used 100M-instruction Simpoint
// windows; see EXPERIMENTS.md for the window-length caveats).
func Full() Quality {
	return Quality{
		WarmupInsts:  1_200_000,
		MeasureInsts: 400_000,
		ThermalTolC:  2e-5, ThermalMaxIters: 100_000,
		Seed: 42,
	}
}

// Suite returns the benchmark list for this quality.
func (q Quality) Suite() []trace.Benchmark {
	all := trace.Suite()
	if q.Benchmarks == nil {
		return all
	}
	var out []trace.Benchmark
	for _, name := range q.Benchmarks {
		for _, b := range all {
			if b.Profile.Name == name {
				out = append(out, b)
			}
		}
	}
	return out
}

// LeadRun is one cached leading-core window.
type LeadRun struct {
	Bench   string
	Stats   ooo.Stats
	L2Stats nuca.Stats
	Pred    float64 // mispredict rate
}

// IPC returns the measured IPC.
func (r LeadRun) IPC() float64 { return r.Stats.IPC() }

// RMTRun is one cached RMT window.
type RMTRun struct {
	Bench         string
	Lead          ooo.Stats
	Sys           core.SystemStats
	CheckerIPC    float64
	CheckerUtil   float64 // issued / (cycles × width)
	MeanFreqGHz   float64
	FreqFractions []float64 // 10 bins of 0.1·f
}

// Session caches runs across experiments.
type Session struct {
	Q       Quality
	leads   map[string]LeadRun
	rmts    map[string]RMTRun
	solvers map[string]*thermal.Solver
}

// NewSession creates a session.
func NewSession(q Quality) *Session {
	return &Session{Q: q, leads: map[string]LeadRun{}, rmts: map[string]RMTRun{}}
}

// L2Config names the paper's cache organizations for lookups.
type L2Config int

// The four chip models of §3.3.
const (
	L2DA  L2Config = iota // 6 MB, 6 banks (2d-a and 3d-checker)
	L2D2A                 // 15 MB, single die (2d-2a)
	L3D2A                 // 15 MB, stacked banks (3d-2a)
)

func (c L2Config) nucaConfig(p nuca.Policy) nuca.Config {
	switch c {
	case L2D2A:
		return nuca.Config2D2A(p)
	case L3D2A:
		return nuca.Config3D2A(p)
	default:
		return nuca.Config2DA(p)
	}
}

func (c L2Config) String() string {
	switch c {
	case L2D2A:
		return "2d-2a"
	case L3D2A:
		return "3d-2a"
	default:
		return "2d-a"
	}
}

// Leading runs (or returns the cached) standalone leading-core window.
// memLatency overrides the 300-cycle memory latency when positive (the
// §3.3 frequency-scaling study).
func (s *Session) Leading(bench string, l2c L2Config, policy nuca.Policy, memLatency int) (LeadRun, error) {
	key := fmt.Sprintf("%s/%v/%v/%d", bench, l2c, policy, memLatency)
	if r, ok := s.leads[key]; ok {
		return r, nil
	}
	b, err := trace.ByName(bench)
	if err != nil {
		return LeadRun{}, err
	}
	cfg := ooo.Default()
	if memLatency > 0 {
		cfg.MemLatencyCycles = memLatency
	}
	g := trace.MustGenerator(b.Profile, s.Q.Seed)
	l2 := nuca.New(l2c.nucaConfig(policy))
	c, err := ooo.New(cfg, g, l2)
	if err != nil {
		return LeadRun{}, err
	}
	c.Run(s.Q.WarmupInsts)
	c.ResetStats()
	c.SetFetchBudget(^uint64(0))
	for c.Stats().Instructions < s.Q.MeasureInsts {
		c.Step(cfg.CommitWidth)
	}
	r := LeadRun{
		Bench:   bench,
		Stats:   c.Stats(),
		L2Stats: l2.Stats(),
		Pred:    c.PredictorStats().MispredictRate(),
	}
	s.leads[key] = r
	return r, nil
}

// RMT runs (or returns the cached) coupled leading+checker window.
// maxCheckerGHz caps the checker's DFS range (2.0 homogeneous, 1.4 for
// the §4 90 nm die).
func (s *Session) RMT(bench string, l2c L2Config, maxCheckerGHz float64) (RMTRun, error) {
	key := fmt.Sprintf("%s/%v/%.2f", bench, l2c, maxCheckerGHz)
	if r, ok := s.rmts[key]; ok {
		return r, nil
	}
	b, err := trace.ByName(bench)
	if err != nil {
		return RMTRun{}, err
	}
	g := trace.MustGenerator(b.Profile, s.Q.Seed)
	l2 := nuca.New(l2c.nucaConfig(nuca.DistributedSets))
	lead, err := ooo.New(ooo.Default(), g, l2)
	if err != nil {
		return RMTRun{}, err
	}
	cfg := core.Default(ooo.Default())
	cfg.CheckerMaxFreqGHz = maxCheckerGHz
	sys, err := core.New(cfg, lead)
	if err != nil {
		return RMTRun{}, err
	}
	sys.Run(s.Q.WarmupInsts)
	sys.ResetStats()
	lead.SetFetchBudget(^uint64(0))
	for lead.Stats().Instructions < s.Q.MeasureInsts {
		sys.Step()
	}
	cs := sys.Checker().Stats()
	util := 0.0
	if cs.Cycles > 0 {
		util = float64(cs.Issued) / float64(cs.Cycles) / float64(cfg.Checker.Width)
	}
	r := RMTRun{
		Bench:         bench,
		Lead:          lead.Stats(),
		Sys:           sys.Stats(),
		CheckerIPC:    cs.IPC(),
		CheckerUtil:   util,
		MeanFreqGHz:   sys.MeanCheckerFreqGHz(),
		FreqFractions: sys.FreqResidency().Fractions(),
	}
	s.rmts[key] = r
	return r, nil
}

// SuiteActivity returns the per-unit activity factors and the mean L2
// per-bank access rate averaged over the quality's suite, for a given
// L2 organization — the inputs to the thermal experiments.
func (s *Session) SuiteActivity(l2c L2Config) (power.Activity, float64, error) {
	suite := s.Q.Suite()
	sum := power.Activity{}
	var l2Rate float64
	for _, b := range suite {
		r, err := s.Leading(b.Profile.Name, l2c, nuca.DistributedSets, 0)
		if err != nil {
			return nil, 0, err
		}
		act := power.ActivityFromStats(r.Stats, ooo.Default())
		//lint:ignore maporder each key of sum is updated independently, so order cannot affect any entry
		for k, v := range act {
			sum[k] += v
		}
		banks := len(r.L2Stats.BankAccesses)
		if cycles := r.Stats.Activity.Cycles; cycles > 0 && banks > 0 {
			l2Rate += float64(r.L2Stats.Accesses) / float64(cycles) / float64(banks)
		}
	}
	n := float64(len(suite))
	//lint:ignore maporder per-key scaling touches each entry exactly once; order-independent
	for k := range sum {
		sum[k] /= n
	}
	return sum, l2Rate / n, nil
}

// BenchActivity returns one benchmark's activity factors and per-bank L2
// access rate.
func (s *Session) BenchActivity(bench string, l2c L2Config) (power.Activity, float64, error) {
	r, err := s.Leading(bench, l2c, nuca.DistributedSets, 0)
	if err != nil {
		return nil, 0, err
	}
	act := power.ActivityFromStats(r.Stats, ooo.Default())
	banks := len(r.L2Stats.BankAccesses)
	rate := 0.0
	if cycles := r.Stats.Activity.Cycles; cycles > 0 && banks > 0 {
		rate = float64(r.L2Stats.Accesses) / float64(cycles) / float64(banks)
	}
	return act, rate, nil
}
