package campaign

import (
	"fmt"
	"strconv"

	"r3d/internal/fault"
	"r3d/internal/tech"
)

// Grid describes a Cartesian campaign: benches × seeds × leading rates
// × RF rates, all sharing the window, node and timing settings. Trials
// expand in a fixed nested order (bench, seed, lead rate, RF rate) with
// IDs derived from the coordinates, so the same Grid always yields the
// same specs — the property journal resume fingerprints.
type Grid struct {
	Benches   []string
	Seeds     []int64
	LeadRates []float64 // leading-core upsets per M cycles (accelerated)
	RFRates   []float64 // trailer-RF upsets per M cycles (accelerated)

	Instructions uint64
	// CycleBudget caps each trial's leading cycles (0 selects
	// fault.DefaultCycleBudget(Instructions)).
	CycleBudget uint64

	Node tech.Node
	// Timing-error injection, applied uniformly when enabled.
	EnableTiming bool
	CritPathPs   float64
	TimingAccel  float64

	L2            string
	CheckerMaxGHz float64
}

// Trials expands the grid. Every axis must be non-empty; rate axes
// default to a single zero entry so a soft-error-only or timing-only
// grid stays terse.
func (g Grid) Trials() ([]TrialSpec, error) {
	if len(g.Benches) == 0 {
		return nil, fmt.Errorf("campaign: grid without benchmarks")
	}
	if len(g.Seeds) == 0 {
		return nil, fmt.Errorf("campaign: grid without seeds")
	}
	if g.Instructions == 0 {
		return nil, fmt.Errorf("campaign: grid without an instruction window")
	}
	leadRates := g.LeadRates
	if len(leadRates) == 0 {
		leadRates = []float64{0}
	}
	rfRates := g.RFRates
	if len(rfRates) == 0 {
		rfRates = []float64{0}
	}
	budget := g.CycleBudget
	if budget == 0 {
		budget = fault.DefaultCycleBudget(g.Instructions)
	}
	var specs []TrialSpec
	for _, bench := range g.Benches {
		for _, seed := range g.Seeds {
			for _, lead := range leadRates {
				for _, rf := range rfRates {
					specs = append(specs, TrialSpec{
						ID:            fmt.Sprintf("%s/s%d/l%s/r%s", bench, seed, fmtRate(lead), fmtRate(rf)),
						Bench:         bench,
						L2:            g.L2,
						CheckerMaxGHz: g.CheckerMaxGHz,
						Config: fault.CampaignConfig{
							Instructions:         g.Instructions,
							CycleBudget:          budget,
							LeadSoftPerMCycle:    lead,
							CheckerSoftPerMCycle: rf,
							TimingNode:           g.Node,
							EnableTiming:         g.EnableTiming,
							CritPathPs:           g.CritPathPs,
							TimingAccel:          g.TimingAccel,
							Seed:                 seed,
						},
					})
				}
			}
		}
	}
	return specs, nil
}

// SelfTestTrial returns a deliberately-wedged trial (checker-die
// livelock injected after the given cycle) to append to a grid: its
// expected outcome is Status hung with ReasonNoProgress, which
// exercises the watchdog end-to-end inside a production campaign.
func (g Grid) SelfTestTrial(afterCycles uint64) (TrialSpec, error) {
	specs, err := g.Trials()
	if err != nil {
		return TrialSpec{}, err
	}
	sp := specs[0]
	sp.ID = "selftest/livelock"
	sp.Config.LivelockAfterCycles = afterCycles
	return sp, nil
}

// fmtRate renders a rate axis coordinate compactly and unambiguously
// for trial IDs.
func fmtRate(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
