// Command r3dchaos sweeps the deterministic storage-fault chaos
// harness (internal/chaos) over a range of seeds. Each seed drives
// every scenario — campaign run→kill→resume, serve submit→kill→restore,
// dead-device degraded serving, and a same-seed determinism
// cross-check — over a seeded fault lattice, and asserts the repo's
// crash-consistency contract:
//
//   - no torn state is ever loaded on resume or restore;
//   - restored aggregates are byte-identical to uninterrupted runs;
//   - caches and job stores are never poisoned by injected corruption;
//   - the same seed reproduces the same failure byte-for-byte.
//
// Examples:
//
//	r3dchaos                      # default sweep: 20 seeds, all scenarios
//	r3dchaos -seeds 100 -seed0 1000
//	r3dchaos -scenario campaign-crash-resume -seeds 5 -v
//
// Any violated invariant prints the seed and fault log needed to replay
// it and exits 1; a clean sweep exits 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"r3d/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("r3dchaos: ")

	seeds := flag.Int("seeds", 20, "number of seeded schedules to sweep")
	seed0 := flag.Int64("seed0", 1, "first seed (schedules use seed0..seed0+seeds-1)")
	scenario := flag.String("scenario", "all", "scenario to run (all, or one of the names below)")
	verbose := flag.Bool("v", false, "log per-cycle progress and injected-fault counts")
	showFaults := flag.Bool("faults", false, "print every injected fault for each schedule")
	flag.Parse()

	all := chaos.Scenarios()
	var selected []chaos.Scenario
	for _, sc := range all {
		if *scenario == "all" || *scenario == sc.Name {
			selected = append(selected, sc)
		}
	}
	if len(selected) == 0 {
		log.Printf("unknown scenario %q; available:", *scenario)
		for _, sc := range all {
			log.Printf("  %s", sc.Name)
		}
		os.Exit(2)
	}

	sleep := func(ns int64) { time.Sleep(time.Duration(ns)) }
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	start := time.Now()
	failures := 0
	runs := 0
	for s := 0; s < *seeds; s++ {
		seed := *seed0 + int64(s)
		for _, sc := range selected {
			runs++
			res, err := sc.Run(chaos.Options{Seed: seed, Sleep: sleep, Logf: logf})
			if err != nil {
				failures++
				log.Printf("FAIL %-22s seed=%d: %v", sc.Name, seed, err)
				for _, line := range res.FaultLog {
					log.Printf("  fault: %s", line)
				}
				for _, note := range res.Notes {
					log.Printf("  note:  %s", note)
				}
				continue
			}
			if *verbose || *showFaults {
				log.Printf("ok   %-22s seed=%d cycles=%d faults=%d", sc.Name, seed, res.Cycles, len(res.FaultLog))
			}
			if *showFaults {
				for _, line := range res.FaultLog {
					log.Printf("  fault: %s", line)
				}
			}
		}
	}
	elapsed := time.Since(start).Round(10 * time.Millisecond)
	if failures > 0 {
		log.Printf("%d/%d scenario runs FAILED across %d seeds in %v", failures, runs, *seeds, elapsed)
		os.Exit(1)
	}
	fmt.Printf("r3dchaos: %d scenario runs over %d seeded schedules passed in %v\n", runs, *seeds, elapsed)
}
