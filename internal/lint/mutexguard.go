package lint

// MutexGuard enforces `// r3dlint:guardedby <mutex>` annotations: every
// read of annotated state must happen with the named mutex held (RLock
// suffices for an RWMutex), every write with it held exclusively. The
// locks-held set is propagated interprocedurally — a helper that never
// locks itself is still in the clear when every observed call site
// enters it with the mutex held (the `fooLocked` idiom, checked rather
// than trusted) — and a violation's message shows one concrete call
// chain that reaches the access with the mutex not held.
var MutexGuard = &Analyzer{
	Name:      "mutexguard",
	Doc:       "annotated state accessed without its guarding mutex held",
	RunModule: runMutexGuard,
}

func runMutexGuard(mp *ModulePass) {
	prog := buildLockProgram(mp.Pkgs)
	for _, e := range prog.annErrs {
		mp.Reportf(e.pos, "%s", e.msg)
	}
	if len(prog.guards) == 0 {
		return
	}
	la := newLockAnalysis(prog)

	// `x.f = append(x.f, v)` touches the field twice on one line; keep
	// one violation per line and target — the write if there is one —
	// rather than reporting the read and the write separately.
	type violation struct {
		node   *fnFacts
		access guardAccess
		mode   lockMode // effective hold strength at the access
	}
	type vkey struct {
		file   string
		line   int
		target string
	}
	best := map[vkey]violation{}
	var order []vkey
	for _, n := range prog.nodes {
		for _, a := range n.accesses {
			g := prog.guards[a.target]
			mode := la.effectiveHeld(n, a.held)[a.guard]
			if (a.write && mode == lockWrite) || (!a.write && mode >= lockRead) {
				continue // satisfied
			}
			p := mp.Fset.Position(a.pos)
			k := vkey{file: p.Filename, line: p.Line, target: g.target}
			old, seen := best[k]
			if !seen {
				order = append(order, k)
				best[k] = violation{node: n, access: a, mode: mode}
				continue
			}
			if (a.write && !old.access.write) || (a.write == old.access.write && a.pos < old.access.pos) {
				best[k] = violation{node: n, access: a, mode: mode}
			}
		}
	}

	for _, k := range order {
		v := best[k]
		a, g := v.access, prog.guards[v.access.target]
		if a.write && v.mode == lockRead {
			mp.Reportf(a.pos, "write to %s with %s held only for reading; writes need the exclusive Lock",
				g.target, a.guard.display())
			continue
		}
		verb := "read of"
		if a.write {
			verb = "write to"
		}
		msg := "%s %s without %s held"
		args := []any{verb, g.target, a.guard.display()}
		if chain := la.unlockedPath(v.node, a.guard); chain != "" {
			msg += " (unlocked path: %s)"
			args = append(args, chain)
		}
		mp.Reportf(a.pos, msg, args...)
	}
}
