// Package trace generates the synthetic workloads that stand in for the
// paper's SPEC2k binaries (the original Alpha executables and Simpoint
// windows are not available; see DESIGN.md §2). Each of the 19 benchmark
// names used in the paper's Figures 5 and 6 maps to a statistical
// profile — instruction mix, branch-site population and behaviour,
// memory working-set structure, and dependence distance — and a
// deterministic generator expands a profile into an infinite stream of
// isa.Inst records. The streams are fed through the *real* branch
// predictor and cache structures of the simulator, so misprediction and
// miss rates are emergent, not scripted.
package trace

import (
	"fmt"
	"math/rand"

	"r3d/internal/isa"
)

// Region bases keep the four working-set regions disjoint.
const (
	hotBase  = 0x1000_0000
	midBase  = 0x2000_0000
	warmBase = 0x4000_0000
	coldBase = 0x8000_0000
	codeBase = 0x0040_0000
)

// BranchKind classifies the behaviour of one static branch site.
type BranchKind uint8

const (
	// BiasedBranch follows a fixed direction with high probability.
	BiasedBranch BranchKind = iota
	// LoopBranch is taken n−1 out of every n executions (backward edge).
	LoopBranch
	// PatternBranch repeats a short deterministic taken/not-taken
	// pattern, predictable with local history.
	PatternBranch
	// RandomBranch is data-dependent and unpredictable.
	RandomBranch
)

// Profile is the statistical description of one workload.
type Profile struct {
	Name string
	// FP marks SPEC2k floating-point benchmarks.
	FP bool

	// Instruction mix (fractions of the dynamic stream; the remainder
	// after loads/stores/branches/FP/mult is integer ALU work).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // of non-memory, non-branch work
	MulFrac    float64 // of non-memory, non-branch work

	// Branch-site population.
	BranchSites  int
	LoopFrac     float64 // fraction of sites that are loop branches
	PatternFrac  float64 // fraction of sites with a history-predictable pattern
	RandomFrac   float64 // fraction of sites that are data-dependent
	Bias         float64 // probability a biased site follows its direction
	MeanLoopTrip int     // mean loop trip count for loop sites

	// Memory behaviour: four-region working-set model.
	//
	//   hot  — random over an L1-resident region (HotBytes);
	//   mid  — random over an L2-resident region (MidBytes): L1 misses
	//          that hit in the L2, the traffic that makes the NUCA hit
	//          latency matter;
	//   warm — random over a capacity-straddling region (WarmBytes,
	//          typically between the 6 MB and 15 MB L2 sizes): the
	//          source of the paper's small 6→15 MB miss-rate gain;
	//   cold — a streaming pointer through ColdBytes with stride
	//          ColdStride: compulsory L2 misses at any capacity.
	//
	// HotFrac/MidFrac/WarmFrac give reference fractions; cold gets the
	// remainder.
	HotBytes  int
	MidBytes  int
	WarmBytes int
	ColdBytes int
	HotFrac   float64
	MidFrac   float64
	WarmFrac  float64
	// ColdStride is the streaming stride in bytes through the cold
	// region (cache-line-sized strides defeat spatial reuse; smaller
	// strides enjoy it).
	ColdStride int

	// CodeBytes is the instruction footprint (drives L1I/BTB behaviour).
	CodeBytes int

	// DepDist is the mean register dependence distance: how many
	// instructions back a source operand's producer is. Small values
	// create serial chains (low ILP); large values expose parallelism.
	DepDist float64
}

// Validate reports an error for out-of-range profile parameters.
func (p Profile) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("profile %s: %s=%v outside [0,1]", p.Name, name, v)
		}
		return nil
	}
	for _, c := range []struct {
		n string
		v float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac}, {"BranchFrac", p.BranchFrac},
		{"FPFrac", p.FPFrac}, {"MulFrac", p.MulFrac}, {"LoopFrac", p.LoopFrac},
		{"PatternFrac", p.PatternFrac}, {"RandomFrac", p.RandomFrac}, {"Bias", p.Bias},
		{"HotFrac", p.HotFrac}, {"MidFrac", p.MidFrac}, {"WarmFrac", p.WarmFrac},
	} {
		if err := frac(c.n, c.v); err != nil {
			return err
		}
	}
	if p.LoadFrac+p.StoreFrac+p.BranchFrac > 1 {
		return fmt.Errorf("profile %s: mix fractions exceed 1", p.Name)
	}
	if p.HotFrac+p.MidFrac+p.WarmFrac > 1 {
		return fmt.Errorf("profile %s: region fractions exceed 1", p.Name)
	}
	if p.LoopFrac+p.PatternFrac+p.RandomFrac > 1 {
		return fmt.Errorf("profile %s: branch-kind fractions exceed 1", p.Name)
	}
	if p.BranchSites <= 0 || p.HotBytes <= 0 || p.CodeBytes <= 0 || p.DepDist < 1 {
		return fmt.Errorf("profile %s: non-positive population parameter", p.Name)
	}
	return nil
}

type branchSite struct {
	pc     uint64
	target uint64 // taken target
	kind   BranchKind
	bias   bool   // direction for biased sites
	trip   int    // loop trip count for loop sites
	count  int    // executions since last loop exit
	pat    uint32 // pattern bits for pattern sites
	patLen int
	patPos int
}

// Generator expands a Profile into a deterministic instruction stream.
type Generator struct {
	prof  Profile
	rng   *rand.Rand
	seq   uint64
	pc    uint64
	sites []branchSite
	// ring of recent destination registers for dependence construction
	recent   []isa.Reg
	recentFP []isa.Reg
	nextInt  isa.Reg
	nextFP   isa.Reg
	coldPtr  uint64
	// regVal tracks architectural register values so that generated
	// streams are value-consistent: an instruction's Src1Val/Src2Val
	// always equal the Value last written to those registers. The RMT
	// checker relies on this to perform real register-value-prediction
	// verification.
	regVal [isa.NumRegs]uint64
	// run-length state: instructions until the next branch site
	untilBranch int
	siteIdx     int
	// mix thresholds normalized to non-branch slots so the whole-stream
	// fractions match the profile
	loadCut, memCut float64
}

// NewGenerator builds a generator for prof with the given seed. The same
// (profile, seed) pair always produces the identical stream.
func NewGenerator(prof Profile, seed int64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:     prof,
		rng:      rand.New(rand.NewSource(seed)),
		pc:       codeBase,
		recent:   make([]isa.Reg, 0, 64),
		recentFP: make([]isa.Reg, 0, 64),
	}
	g.buildSites()
	g.untilBranch = g.gapLength()
	nonBranch := 1 - prof.BranchFrac
	if nonBranch <= 0 {
		nonBranch = 1
	}
	g.loadCut = prof.LoadFrac / nonBranch
	g.memCut = (prof.LoadFrac + prof.StoreFrac) / nonBranch
	return g, nil
}

// MustGenerator is NewGenerator for statically known profiles.
func MustGenerator(prof Profile, seed int64) *Generator {
	g, err := NewGenerator(prof, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func (g *Generator) buildSites() {
	n := g.prof.BranchSites
	g.sites = make([]branchSite, n)
	for i := range g.sites {
		pc := codeBase + uint64(g.rng.Intn(g.prof.CodeBytes/4))*4
		s := branchSite{pc: pc}
		r := g.rng.Float64()
		switch {
		case r < g.prof.LoopFrac:
			s.kind = LoopBranch
			s.trip = 2 + g.rng.Intn(2*g.prof.MeanLoopTrip)
			// Backward target.
			back := uint64(4 * (4 + g.rng.Intn(40)))
			if pc > codeBase+back {
				s.target = pc - back
			} else {
				s.target = codeBase
			}
		case r < g.prof.LoopFrac+g.prof.PatternFrac:
			s.kind = PatternBranch
			s.patLen = 2 + g.rng.Intn(6)
			s.pat = g.rng.Uint32()
			s.target = codeBase + uint64(g.rng.Intn(g.prof.CodeBytes/4))*4
		case r < g.prof.LoopFrac+g.prof.PatternFrac+g.prof.RandomFrac:
			s.kind = RandomBranch
			s.target = codeBase + uint64(g.rng.Intn(g.prof.CodeBytes/4))*4
		default:
			s.kind = BiasedBranch
			s.bias = g.rng.Float64() < 0.6 // taken-biased more common
			s.target = codeBase + uint64(g.rng.Intn(g.prof.CodeBytes/4))*4
		}
		g.sites[i] = s
	}
}

// gapLength returns the number of non-branch instructions before the
// next branch, keeping the long-run branch fraction at BranchFrac.
func (g *Generator) gapLength() int {
	if g.prof.BranchFrac <= 0 {
		return 1 << 30
	}
	mean := 1/g.prof.BranchFrac - 1
	// Geometric around the mean, min 0.
	gap := int(g.rng.ExpFloat64() * mean)
	if gap < 0 {
		gap = 0
	}
	if gap > 4*int(mean)+8 {
		gap = 4*int(mean) + 8
	}
	return gap
}

// pickSrc returns a source register roughly DepDist instructions back in
// the producer history, falling back to the zero register when history
// is short.
func (g *Generator) pickSrc(fp bool) isa.Reg {
	ring := g.recent
	zero := isa.Reg(isa.ZeroReg)
	if fp {
		ring = g.recentFP
		zero = isa.Reg(isa.NumIntRegs + isa.ZeroReg)
	}
	if len(ring) == 0 {
		return zero
	}
	d := int(g.rng.ExpFloat64()*g.prof.DepDist) + 1
	if d > len(ring) {
		d = len(ring)
	}
	return ring[len(ring)-d]
}

func (g *Generator) pickDest(fp bool) isa.Reg {
	if fp {
		r := isa.Reg(isa.NumIntRegs) + g.nextFP
		g.nextFP = (g.nextFP + 1) % (isa.NumFPRegs - 1) // skip f31
		g.recentFP = appendRing(g.recentFP, r)
		return r
	}
	r := g.nextInt
	g.nextInt = (g.nextInt + 1) % (isa.NumIntRegs - 1) // skip r31
	g.recent = appendRing(g.recent, r)
	return r
}

func appendRing(ring []isa.Reg, r isa.Reg) []isa.Reg {
	if len(ring) == cap(ring) {
		copy(ring, ring[1:])
		ring = ring[:len(ring)-1]
	}
	return append(ring, r)
}

// dataAddr draws a data address from the four-region working-set model.
func (g *Generator) dataAddr() uint64 {
	r := g.rng.Float64()
	hot := g.prof.HotFrac
	mid := hot + g.prof.MidFrac
	warm := mid + g.prof.WarmFrac
	switch {
	case r < hot:
		return hotBase + uint64(g.rng.Intn(g.prof.HotBytes/8))*8
	case r < mid && g.prof.MidBytes > 0:
		return midBase + uint64(g.rng.Intn(g.prof.MidBytes/8))*8
	case r < warm && g.prof.WarmBytes > 0:
		return warmBase + uint64(g.rng.Intn(g.prof.WarmBytes/8))*8
	default:
		if g.prof.ColdBytes <= 0 {
			return hotBase + uint64(g.rng.Intn(g.prof.HotBytes/8))*8
		}
		g.coldPtr += uint64(g.prof.ColdStride)
		if g.coldPtr >= uint64(g.prof.ColdBytes) {
			g.coldPtr = 0
		}
		return coldBase + g.coldPtr
	}
}

// Next returns the next dynamic instruction. The stream is infinite.
func (g *Generator) Next() isa.Inst {
	in := isa.Inst{Seq: g.seq, PC: g.pc}
	g.seq++

	if g.untilBranch <= 0 {
		g.emitBranch(&in)
		g.untilBranch = g.gapLength()
		return in
	}
	g.untilBranch--

	r := g.rng.Float64()
	switch {
	case r < g.loadCut:
		in.Op = isa.Load
		in.Addr = g.dataAddr()
		in.Src1 = g.pickSrc(false)
		in.Dest = g.pickDest(g.prof.FP && g.rng.Float64() < g.prof.FPFrac)
	case r < g.memCut:
		in.Op = isa.Store
		in.Addr = g.dataAddr()
		in.Src1 = g.pickSrc(false)                                        // address
		in.Src2 = g.pickSrc(g.prof.FP && g.rng.Float64() < g.prof.FPFrac) // data
		in.Dest = isa.ZeroReg
	default:
		fp := g.rng.Float64() < g.prof.FPFrac
		mul := g.rng.Float64() < g.prof.MulFrac
		switch {
		case fp && mul:
			in.Op = isa.FPMult
		case fp:
			in.Op = isa.FPALU
		case mul:
			in.Op = isa.IntMult
		default:
			in.Op = isa.IntALU
		}
		in.Src1 = g.pickSrc(fp)
		in.Src2 = g.pickSrc(fp)
		in.Dest = g.pickDest(fp)
	}
	in.Src1Val = g.regVal[in.Src1]
	in.Src2Val = g.regVal[in.Src2]
	in.Value = g.rng.Uint64()
	if in.HasDest() {
		g.regVal[in.Dest] = in.Value
	}
	g.pc += 4
	return in
}

func (g *Generator) emitBranch(in *isa.Inst) {
	s := &g.sites[g.siteIdx]
	g.siteIdx = (g.siteIdx + 1) % len(g.sites)

	in.Op = isa.BranchCond
	in.PC = s.pc
	in.Dest = isa.ZeroReg
	in.Src1 = g.pickSrc(false)
	in.Src1Val = g.regVal[in.Src1]
	in.Src2Val = g.regVal[in.Src2]
	in.Target = s.target
	g.pc = s.pc // the stream "was at" the branch

	switch s.kind {
	case LoopBranch:
		s.count++
		if s.count >= s.trip {
			s.count = 0
			in.Taken = false
		} else {
			in.Taken = true
		}
	case PatternBranch:
		in.Taken = s.pat>>uint(s.patPos)&1 == 1
		s.patPos = (s.patPos + 1) % s.patLen
	case RandomBranch:
		in.Taken = g.rng.Intn(2) == 0
	default: // BiasedBranch
		follow := g.rng.Float64() < g.prof.Bias
		in.Taken = s.bias == follow
	}
	if in.Taken {
		g.pc = in.Target
	} else {
		g.pc = in.PC + 4
	}
	in.Value = 0
}
