package detmap

import (
	"slices"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"rvq": 1, "alu": 2, "lvq": 3, "bpred": 4}
	got := SortedKeys(m)
	want := []string{"alu", "bpred", "lvq", "rvq"}
	if !slices.Equal(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if keys := SortedKeys(map[int]string{}); len(keys) != 0 {
		t.Errorf("SortedKeys of empty map = %v, want empty", keys)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type reg struct{ idx int }
	m := map[reg]uint64{{3}: 1, {1}: 2, {2}: 3}
	got := SortedKeysFunc(m, func(a, b reg) int { return a.idx - b.idx })
	want := []reg{{1}, {2}, {3}}
	if !slices.Equal(got, want) {
		t.Errorf("SortedKeysFunc = %v, want %v", got, want)
	}
}
