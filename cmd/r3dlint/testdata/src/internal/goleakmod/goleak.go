// Package goleakmod seeds three goleak violations — a named spawn of
// an endless pump, an endless literal, and a literal ranging over a
// channel nobody provably closes — alongside the sanctioned shapes:
// a WaitGroup-joined spawn, a stop-covered loop, and an annotated
// daemon, so the golden test pins the analyzer's exact output.
package goleakmod

import "sync"

// Pump loops forever; each spawn of it must be justified.
func Pump(ch chan int) {
	for {
		ch <- 1
	}
}

// LeakNamed spawns Pump with no join, no stop, and no annotation.
func LeakNamed(ch chan int) {
	go Pump(ch)
}

// LeakLit spawns an endless literal.
func LeakLit(ch chan int) {
	go func() {
		for {
			<-ch
		}
	}()
}

// LeakRange spawns a literal ranging over a channel this package never
// closes.
func LeakRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Joined is the sanctioned WaitGroup shape: Done in the body, Wait in
// the spawner's scope.
func Joined(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range ch {
		}
	}()
	wg.Wait()
}

// Covered spawns a loop that selects on its stop channel and leaves.
func Covered(ch chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-stop:
				return
			}
		}
	}()
}

// Watch is a documented daemon: the annotation sanctions every spawn.
//
// r3dlint:daemon fixture: the heartbeat lives for the whole process by design
func Watch(ch chan int) {
	for {
		ch <- 0
	}
}

// StartWatch spawns the annotated daemon: clean.
func StartWatch(ch chan int) {
	go Watch(ch)
}
