package lint

import (
	"strings"
	"testing"
)

func TestGoLeakFlagsUnprovableSpawns(t *testing.T) {
	src := `package fixture

import "sync"

func pump(ch chan int) {
	for {
		ch <- 1
	}
}

func spawnNamed(ch chan int) {
	go pump(ch)
}

func spawnLit(ch chan int) {
	go func() {
		for {
			ch <- 2
		}
	}()
}

func spawnRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func spawnIndirect(ch chan int) {
	go relay(ch)
}

func relay(ch chan int) {
	pump(ch)
}

func joined(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range ch {
		}
	}()
	wg.Wait()
}

func stopped(ch chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-stop:
				return
			}
		}
	}()
}
`
	got := findings(t, GoLeak, modelPath, src)
	wantChecks(t, got, "goleak", "goleak", "goleak", "goleak")
	if !strings.Contains(got[0].Message, "pump → endless for loop") {
		t.Errorf("named spawn chain missing: %q", got[0].Message)
	}
	if !strings.Contains(got[3].Message, "relay → pump → endless for loop") {
		t.Errorf("indirect spawn chain missing: %q", got[3].Message)
	}
}

func TestGoLeakDaemonAnnotations(t *testing.T) {
	src := `package fixture

// loop is an intentional daemon.
//
// r3dlint:daemon declaration-form daemon for the whole process
func loop(ch chan int) {
	for {
		ch <- 1
	}
}

func spawnAll(ch chan int) {
	go loop(ch)
	// r3dlint:daemon statement-form daemon justified here
	go func() {
		for {
			ch <- 2
		}
	}()
}
`
	got := findings(t, GoLeak, modelPath, src)
	wantChecks(t, got)
}

func TestGoLeakMalformedDaemonAnnotation(t *testing.T) {
	src := `package fixture

// r3dlint:daemon
func loop(ch chan int) {
	for {
		ch <- 1
	}
}
`
	got := findings(t, GoLeak, modelPath, src)
	wantChecks(t, got, "goleak")
	if !strings.Contains(got[0].Message, "malformed annotation") {
		t.Errorf("missing malformed-annotation finding: %v", got)
	}
}

func TestGoLeakSuppressedLoopStopsPropagation(t *testing.T) {
	src := `package fixture

func spin(ch chan int) {
	//lint:ignore goleak fixture: busy loop bounded by external invariant
	for {
		ch <- 1
	}
}

func spawn(ch chan int) {
	go spin(ch)
}
`
	got := findings(t, GoLeak, modelPath, src)
	wantChecks(t, got)
}

func TestGoLeakSpawnSiteSuppression(t *testing.T) {
	src := `package fixture

func spin(ch chan int) {
	for {
		ch <- 1
	}
}

func spawn(ch chan int) {
	//lint:ignore goleak fixture: spawn justified at the site
	go spin(ch)
}
`
	got := findings(t, GoLeak, modelPath, src)
	wantChecks(t, got)
}

func TestGoLeakFieldWaitGroupNotSpawnerScoped(t *testing.T) {
	// A WaitGroup Done'd by the body but Wait-ed in a *different*
	// declaration is not a spawner-scope join: the proof would need the
	// other method to run, which this analysis cannot see.
	src := `package fixture

import "sync"

type server struct {
	wg       sync.WaitGroup
	dispatch chan int
}

func (s *server) start() {
	s.wg.Add(1)
	go s.worker()
}

func (s *server) worker() {
	defer s.wg.Done()
	for range s.dispatch {
	}
}

func (s *server) drain() {
	s.wg.Wait()
}
`
	got := findings(t, GoLeak, modelPath, src)
	wantChecks(t, got, "goleak")
}
