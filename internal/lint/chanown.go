package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"

	"r3d/internal/detmap"
)

// ChanOwn enforces channel ownership discipline: a channel is closed
// only by its allocating owner — the function that made it, a method of
// the struct type holding it, or a function the owner hands it to that
// is annotated `// r3dlint:closer <reason>`. Along any path it also
// flags a second close of the same channel, a send reachable after a
// close (including through a call whose callee closes or sends on the
// parameter, chain printed dettaint-style), and a send or receive on a
// provably nil channel outside select (inside select a nil channel is
// the idiomatic way to disable a case).
//
// Identity is type-scoped like the lock suite's: j.doneCh on two Jobs
// is one identity, and per-instance aliasing is not tracked — the
// documented over-approximation shared with mutexguard.
var ChanOwn = &Analyzer{
	Name:      "chanown",
	Doc:       "channel closed by a non-owner, double-closed, sent to after close, or nil",
	RunModule: runChanOwn,
}

// chanRef kinds.
const (
	crLocal = iota
	crParam
	crField
	crPkgVar
)

// chanRef is one resolved channel identity.
type chanRef struct {
	key     string
	disp    string
	kind    int
	named   *types.Named // declaring type, for fields
	foreign bool         // package-level channel of another package
}

// chanSummary is the interprocedural effect of one declared function on
// its channel-typed parameters.
type chanSummary struct {
	closes map[int]string // param index → chain, e.g. "retire → close(ch)"
	sends  map[int]string
}

func runChanOwn(mp *ModulePass) {
	prog := buildGoProgram(mp.Pkgs)
	for _, e := range prog.annErrs {
		if e.check == "chanown" {
			mp.Reportf(e.pos, "%s", e.msg)
		}
	}
	sums := buildChanSummaries(mp.Pkgs)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w := &chanWalker{
					mp: mp, prog: prog, sums: sums, pkg: pkg, fn: obj,
					params:      map[*types.Var]bool{},
					allocs:      map[string]bool{},
					deferClosed: map[string]bool{},
				}
				w.recv = recvNamed(obj)
				w.addParams(fd.Recv, fd.Type.Params)
				w.collectAllocs(fd.Body)
				w.walkStmt(fd.Body, newChanState())
			}
		}
	}
}

// chanState is the flow state of the walk: channels that may be closed
// on some path to this point (with the position of the close, for
// messages), and locals that must still be nil.
type chanState struct {
	closed map[string]token.Pos
	nilch  map[string]bool
}

func newChanState() *chanState {
	return &chanState{closed: map[string]token.Pos{}, nilch: map[string]bool{}}
}

func (st *chanState) clone() *chanState {
	c := newChanState()
	for _, k := range detmap.SortedKeys(st.closed) {
		c.closed[k] = st.closed[k]
	}
	for _, k := range detmap.SortedKeys(st.nilch) {
		c.nilch[k] = st.nilch[k]
	}
	return c
}

// replace overwrites st with src in place.
func (st *chanState) replace(src *chanState) {
	for _, k := range detmap.SortedKeys(st.closed) {
		if _, ok := src.closed[k]; !ok {
			delete(st.closed, k)
		}
	}
	for _, k := range detmap.SortedKeys(src.closed) {
		st.closed[k] = src.closed[k]
	}
	for _, k := range detmap.SortedKeys(st.nilch) {
		if !src.nilch[k] {
			delete(st.nilch, k)
		}
	}
}

// join merges two branch exits: closed is a may-union (earliest
// position wins for stable messages), nil a must-intersection.
func joinChanStates(a, b *chanState) *chanState {
	out := a.clone()
	for _, k := range detmap.SortedKeys(b.closed) {
		if p, ok := out.closed[k]; !ok || b.closed[k] < p {
			out.closed[k] = b.closed[k]
		}
	}
	for _, k := range detmap.SortedKeys(out.nilch) {
		if !b.nilch[k] {
			delete(out.nilch, k)
		}
	}
	return out
}

// chanWalker walks one declaration (and its literals, each with fresh
// flow state) reporting ownership and lifecycle findings.
type chanWalker struct {
	mp          *ModulePass
	prog        *goProgram
	sums        map[*types.Func]*chanSummary
	pkg         *Package
	fn          *types.Func  // enclosing declaration
	recv        *types.Named // receiver type when the declaration is a method
	params      map[*types.Var]bool
	allocs      map[string]bool // identities make()d anywhere in this declaration
	deferClosed map[string]bool
	inSelect    bool
}

func (w *chanWalker) addParams(groups ...*ast.FieldList) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, f := range g.List {
			for _, name := range f.Names {
				if v, ok := w.pkg.Info.Defs[name].(*types.Var); ok {
					w.params[v] = true
				}
			}
		}
	}
}

// collectAllocs records every channel identity allocated by a make (or
// a composite-literal field set to one) anywhere under n, defining
// "allocating owner" for field and variable closes in this declaration.
func (w *chanWalker) collectAllocs(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isMakeChan(w.pkg.Info, rhs) {
					continue
				}
				if ref, ok := w.resolveChan(n.Lhs[i]); ok {
					w.allocs[ref.key] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, v := range n.Values {
				if !isMakeChan(w.pkg.Info, v) {
					continue
				}
				if ref, ok := w.resolveChan(n.Names[i]); ok {
					w.allocs[ref.key] = true
				}
			}
		case *ast.CompositeLit:
			tv, ok := w.pkg.Info.Types[n]
			if !ok {
				return true
			}
			named := namedOf(tv.Type)
			if named == nil {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok || !isMakeChan(w.pkg.Info, kv.Value) {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					w.allocs["field:"+packagePathOf(named)+"."+named.Obj().Name()+"."+id.Name] = true
				}
			}
		}
		return true
	})
}

func isMakeChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// resolveChan resolves an expression denoting a channel to its
// type-scoped identity.
func (w *chanWalker) resolveChan(x ast.Expr) (chanRef, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := w.pkg.Info.Uses[x]
		if obj == nil {
			obj = w.pkg.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return chanRef{}, false
		}
		v = v.Origin()
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return chanRef{
				key:  "pkgvar:" + v.Pkg().Path() + "." + v.Name(),
				disp: v.Pkg().Name() + "." + v.Name(), kind: crPkgVar,
				foreign: v.Pkg().Path() != w.pkg.Path,
			}, true
		}
		kind := crLocal
		if w.params[v] {
			kind = crParam
		}
		return chanRef{key: "local:" + posKey(v.Pos()), disp: v.Name(), kind: kind}, true
	case *ast.SelectorExpr:
		if s, ok := w.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			t := s.Recv()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return chanRef{}, false
			}
			if named.Origin() != nil {
				named = named.Origin()
			}
			return chanRef{
				key:  "field:" + packagePathOf(named) + "." + named.Obj().Name() + "." + x.Sel.Name,
				disp: named.Obj().Name() + "." + x.Sel.Name, kind: crField, named: named,
			}, true
		}
		if id, isIdent := ast.Unparen(x.X).(*ast.Ident); isIdent {
			if _, isPkg := w.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := w.pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
					return chanRef{
						key:  "pkgvar:" + v.Pkg().Path() + "." + v.Name(),
						disp: v.Pkg().Name() + "." + v.Name(), kind: crPkgVar,
						foreign: v.Pkg().Path() != w.pkg.Path,
					}, true
				}
			}
		}
		return chanRef{}, false
	case *ast.StarExpr:
		return w.resolveChan(x.X)
	}
	return chanRef{}, false
}

func posKey(p token.Pos) string {
	return "#" + strconv.Itoa(int(p))
}

// shortPos renders a position for inclusion inside messages: base
// filename and line, enough to locate the earlier event in the same
// report.
func (w *chanWalker) shortPos(pos token.Pos) string {
	p := w.mp.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

func (w *chanWalker) walkStmt(s ast.Stmt, st *chanState) (terminated bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			if w.walkStmt(stmt, st) {
				return true
			}
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.walkExpr(r, st)
		}
		for i, l := range s.Lhs {
			if ref, ok := w.resolveChan(l); ok && isChanExpr(w.pkg.Info, l) {
				delete(st.closed, ref.key)
				delete(st.nilch, ref.key)
				if ref.kind == crLocal && len(s.Lhs) == len(s.Rhs) && isNilExpr(w.pkg.Info, s.Rhs[i]) {
					st.nilch[ref.key] = true
				}
			} else {
				w.walkExpr(l, st)
			}
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.walkExpr(v, st)
			}
			if len(vs.Values) == 0 {
				// `var ch chan T` without an initializer is nil.
				for _, name := range vs.Names {
					if v, ok := w.pkg.Info.Defs[name].(*types.Var); ok {
						if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
							st.nilch["local:"+posKey(v.Pos())] = true
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		w.walkStmt(s.Init, st)
		w.walkExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmt(s.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
		case thenTerm:
			st.replace(elseSt)
		case elseTerm:
			st.replace(thenSt)
		default:
			st.replace(joinChanStates(thenSt, elseSt))
		}
		return thenTerm && elseTerm
	case *ast.ForStmt:
		w.walkStmt(s.Init, st)
		w.walkExpr(s.Cond, st)
		bodySt := st.clone()
		if !w.walkStmt(s.Body, bodySt) {
			w.walkStmt(s.Post, bodySt)
		}
		// The body may have run: closes inside it are live afterwards.
		st.replace(joinChanStates(st, bodySt))
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		if ref, ok := w.resolveChan(s.X); ok && isChanExpr(w.pkg.Info, s.X) && st.nilch[ref.key] {
			w.mp.Reportf(s.Pos(), "range over nil channel %s blocks forever", ref.disp)
		}
		bodySt := st.clone()
		w.walkStmt(s.Body, bodySt)
		st.replace(joinChanStates(st, bodySt))
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, st)
		w.walkExpr(s.Tag, st)
		w.walkClauses(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, st)
		w.walkStmt(s.Assign, st)
		w.walkClauses(s.Body, st, false)
	case *ast.SelectStmt:
		w.walkClauses(s.Body, st, true)
	case *ast.SendStmt:
		w.walkExpr(s.Chan, st)
		w.walkExpr(s.Value, st)
		if ref, ok := w.resolveChan(s.Chan); ok {
			if pos, closed := st.closed[ref.key]; closed {
				w.mp.Reportf(s.Pos(), "send on %s after close at %s", ref.disp, w.shortPos(pos))
			}
			if st.nilch[ref.key] && !w.inSelect {
				w.mp.Reportf(s.Pos(), "send on nil channel %s blocks forever (not in a select)", ref.disp)
			}
		}
	case *ast.GoStmt:
		// The spawned body runs at an unknown time: literals are walked
		// with fresh state; caller state is not affected.
		w.walkSpawnOrDefer(s.Call, st)
	case *ast.DeferStmt:
		if arg, ok := closeArg(w.pkg.Info, s.Call); ok {
			w.handleClose(arg, s.Call.Pos(), st, true)
			return false
		}
		w.walkSpawnOrDefer(s.Call, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.EmptyStmt:
	default:
	}
	return false
}

// walkSpawnOrDefer scans a go/defer call's subexpressions (literals get
// fresh state) without applying callee summaries to the caller's flow —
// the call runs at an unknown time.
func (w *chanWalker) walkSpawnOrDefer(call *ast.CallExpr, st *chanState) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkLit(lit)
	} else if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(fun.X, st)
	}
	for _, a := range call.Args {
		w.walkExpr(a, st)
	}
}

// walkClauses walks switch/select clause bodies, each on a clone, and
// joins the surviving exits (closed: union; nil: intersection).
func (w *chanWalker) walkClauses(body *ast.BlockStmt, st *chanState, isSelect bool) {
	exhaustive := isSelect
	var exits []*chanState
	for _, c := range body.List {
		cSt := st.clone()
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.walkExpr(e, cSt)
			}
			if cc.List == nil {
				exhaustive = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				prev := w.inSelect
				w.inSelect = true
				w.walkStmt(cc.Comm, cSt)
				w.inSelect = prev
			}
			stmts = cc.Body
		}
		term := false
		for _, stmt := range stmts {
			if term = w.walkStmt(stmt, cSt); term {
				break
			}
		}
		if !term {
			exits = append(exits, cSt)
		}
	}
	if !exhaustive {
		exits = append(exits, st.clone())
	}
	if len(exits) == 0 {
		return
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = joinChanStates(out, e)
	}
	st.replace(out)
}

func (w *chanWalker) walkExpr(e ast.Expr, st *chanState) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
	case *ast.SelectorExpr:
		w.walkExpr(e.X, st)
	case *ast.CallExpr:
		w.walkCall(e, st)
	case *ast.UnaryExpr:
		w.walkExpr(e.X, st)
		if e.Op == token.ARROW {
			if ref, ok := w.resolveChan(e.X); ok && st.nilch[ref.key] && !w.inSelect {
				w.mp.Reportf(e.Pos(), "receive from nil channel %s blocks forever (not in a select)", ref.disp)
			}
		}
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Y, st)
	case *ast.ParenExpr:
		w.walkExpr(e.X, st)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Index, st)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, st)
		for _, i := range e.Indices {
			w.walkExpr(i, st)
		}
	case *ast.SliceExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Low, st)
		w.walkExpr(e.High, st)
		w.walkExpr(e.Max, st)
	case *ast.StarExpr:
		w.walkExpr(e.X, st)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key, st)
		w.walkExpr(e.Value, st)
	case *ast.FuncLit:
		w.walkLit(e)
	default:
	}
}

// walkLit walks a function literal with fresh flow state: it runs at an
// unknown time relative to the enclosing body. The enclosing
// declaration still provides the ownership context (params, allocs,
// receiver, closer annotation).
func (w *chanWalker) walkLit(lit *ast.FuncLit) {
	w.addParams(lit.Type.Params)
	savedDefer := w.deferClosed
	w.deferClosed = map[string]bool{}
	savedSelect := w.inSelect
	w.inSelect = false
	w.walkStmt(lit.Body, newChanState())
	w.inSelect = savedSelect
	w.deferClosed = savedDefer
}

// closeArg matches the builtin close(x) call.
func closeArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil, false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	return call.Args[0], true
}

func (w *chanWalker) walkCall(call *ast.CallExpr, st *chanState) {
	if arg, ok := closeArg(w.pkg.Info, call); ok {
		w.walkExpr(arg, st)
		w.handleClose(arg, call.Pos(), st, false)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			for _, a := range call.Args {
				w.walkExpr(a, st)
			}
			return
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		w.walkExpr(fun.X, st)
	case *ast.Ident:
	default:
		w.walkExpr(fun, st)
	}
	for _, a := range call.Args {
		w.walkExpr(a, st)
	}

	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil {
		return
	}
	fn = fn.Origin()
	sum, ok := w.sums[fn]
	if !ok {
		return
	}
	for i, a := range call.Args {
		if !isChanExpr(w.pkg.Info, a) {
			continue
		}
		ref, ok := w.resolveChan(a)
		if !ok {
			continue
		}
		if chain, closes := sum.closes[i]; closes {
			if pos, closed := st.closed[ref.key]; closed {
				w.mp.Reportf(call.Pos(), "passes %s, closed at %s, to %s which closes it again (%s)",
					ref.disp, w.shortPos(pos), fn.Name(), chain)
			}
			st.closed[ref.key] = call.Pos()
			continue
		}
		if chain, sends := sum.sends[i]; sends {
			if pos, closed := st.closed[ref.key]; closed {
				w.mp.Reportf(call.Pos(), "passes %s, closed at %s, to %s which sends on it (%s)",
					ref.disp, w.shortPos(pos), fn.Name(), chain)
			}
		}
	}
}

// handleClose checks ownership and lifecycle for one close(x).
func (w *chanWalker) handleClose(x ast.Expr, pos token.Pos, st *chanState, deferred bool) {
	ref, ok := w.resolveChan(x)
	if !ok {
		return
	}
	_, annotated := w.prog.closerFn[w.fn]
	switch ref.kind {
	case crParam:
		if !annotated {
			w.mp.Reportf(pos,
				"close of channel parameter %s: the allocating owner closes; if the owner hands it off here, annotate the declaration: // r3dlint:closer <reason>",
				ref.disp)
		}
	case crField:
		ownMethod := w.recv != nil && ref.named != nil && w.recv.Obj() == ref.named.Obj()
		if !ownMethod && !w.allocs[ref.key] && !annotated {
			w.mp.Reportf(pos,
				"close of %s outside its owning type: only the allocator, a method of %s, or an annotated // r3dlint:closer may close it",
				ref.disp, ref.named.Obj().Name())
		}
	case crPkgVar:
		if ref.foreign && !annotated {
			w.mp.Reportf(pos, "close of package-level channel %s from another package", ref.disp)
		}
	}
	if deferred {
		if w.deferClosed[ref.key] {
			w.mp.Reportf(pos, "second deferred close of %s", ref.disp)
		}
		w.deferClosed[ref.key] = true
		return
	}
	if first, closed := st.closed[ref.key]; closed {
		w.mp.Reportf(pos, "second close of %s on this path (first close at %s)", ref.disp, w.shortPos(first))
	}
	st.closed[ref.key] = pos
	delete(st.nilch, ref.key)
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// buildChanSummaries computes, by fixpoint over the declared functions
// in position order, which channel-typed parameters each function
// closes or sends on — directly or by forwarding the parameter to a
// callee that does.
func buildChanSummaries(pkgs []*Package) map[*types.Func]*chanSummary {
	type declInfo struct {
		fn     *types.Func
		pkg    *Package
		body   *ast.BlockStmt
		params map[*types.Var]int
		pos    token.Pos
	}
	var decls []*declInfo
	sums := map[*types.Func]*chanSummary{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				di := &declInfo{fn: obj, pkg: pkg, body: fd.Body, params: map[*types.Var]int{}, pos: fd.Pos()}
				idx := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							di.params[v] = idx
						}
						idx++
					}
					if len(field.Names) == 0 {
						idx++
					}
				}
				decls = append(decls, di)
				sums[obj] = &chanSummary{closes: map[int]string{}, sends: map[int]string{}}
			}
		}
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].pos < decls[j].pos })

	paramIdx := func(d *declInfo, e ast.Expr) (int, string, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, "", false
		}
		v, ok := d.pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return 0, "", false
		}
		i, ok := d.params[v]
		return i, v.Name(), ok
	}

	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			sum := sums[d.fn]
			ast.Inspect(d.body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if i, name, ok := paramIdx(d, n.Chan); ok {
						if _, has := sum.sends[i]; !has {
							sum.sends[i] = d.fn.Name() + " → send(" + name + ")"
							changed = true
						}
					}
				case *ast.CallExpr:
					if arg, ok := closeArg(d.pkg.Info, n); ok {
						if i, name, ok := paramIdx(d, arg); ok {
							if _, has := sum.closes[i]; !has {
								sum.closes[i] = d.fn.Name() + " → close(" + name + ")"
								changed = true
							}
						}
						return true
					}
					callee := calleeFunc(d.pkg.Info, n)
					if callee == nil {
						return true
					}
					csum, ok := sums[callee.Origin()]
					if !ok {
						return true
					}
					for j, a := range n.Args {
						i, _, ok := paramIdx(d, a)
						if !ok {
							continue
						}
						if chain, closes := csum.closes[j]; closes {
							if _, has := sum.closes[i]; !has {
								sum.closes[i] = d.fn.Name() + " → " + chain
								changed = true
							}
						}
						if chain, sends := csum.sends[j]; sends {
							if _, has := sum.sends[i]; !has {
								sum.sends[i] = d.fn.Name() + " → " + chain
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return sums
}
