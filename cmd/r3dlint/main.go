// Command r3dlint runs the r3d determinism/hygiene static-analysis
// suite (internal/lint) over every non-test package of the module and
// reports findings with file:line:column positions. It exits 1 if any
// unsuppressed finding remains, 2 on load/typecheck errors.
//
// Usage:
//
//	r3dlint [-list] [dir]
//
// dir defaults to the current directory; a trailing /... is accepted
// (and ignored — the whole module is always analyzed). Findings are
// suppressed in source with a reasoned directive:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"r3d/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: r3dlint [-list] [dir]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	// Accept go-style package patterns: ./... means "the module".
	dir = strings.TrimSuffix(dir, "...")
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" {
		dir = "."
	}

	m, findings, err := lint.RunModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(relativize(m.Dir, f).String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "r3dlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relativize rewrites a finding's filename relative to the module root
// for stable, readable output.
func relativize(root string, f lint.Finding) lint.Finding {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f
}
