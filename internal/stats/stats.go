// Package stats provides small statistics helpers used throughout the
// simulator: scalar summaries, weighted means, and fixed-bin histograms
// (used, e.g., for the checker-core frequency residency histogram of
// Figure 7).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped. Returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// WeightedMean returns sum(x*w)/sum(w), or 0 if the weights sum to 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sx, sw float64
	for i, x := range xs {
		sx += x * ws[i]
		sw += ws[i]
	}
	//lint:ignore floatcmp division guard: weights are nonnegative, so the sum is exactly 0 only when all are
	if sw == 0 {
		return 0
	}
	return sx / sw
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are clamped into the first/last bin so that total mass is
// preserved (the paper's Figure 7 bins frequency residency into 0.1·f
// steps including the endpoints).
type Histogram struct {
	Lo, Hi float64
	Counts []float64 // weight accumulated per bin
	total  float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// Add accumulates weight w at value x.
func (h *Histogram) Add(x, w float64) {
	i := h.binOf(x)
	h.Counts[i] += w
	h.total += w
}

func (h *Histogram) binOf(x float64) int {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Total returns the total accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Fractions returns the per-bin fraction of total weight (zeros if empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	//lint:ignore floatcmp division guard: bin weights are nonnegative, so total is exactly 0 only for an empty histogram
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / h.total
	}
	return out
}

// ModeBin returns the index of the heaviest bin (lowest index wins ties).
func (h *Histogram) ModeBin() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// WeightedMeanValue returns the histogram-weighted mean using bin centers.
func (h *Histogram) WeightedMeanValue() float64 {
	//lint:ignore floatcmp division guard: bin weights are nonnegative, so total is exactly 0 only for an empty histogram
	if h.total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.Counts {
		s += h.BinCenter(i) * c
	}
	return s / h.total
}

// String renders a simple ASCII bar chart, one row per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	fr := h.Fractions()
	for i, f := range fr {
		bar := strings.Repeat("#", int(f*60+0.5))
		fmt.Fprintf(&b, "%6.2f | %-60s %5.1f%%\n", h.BinCenter(i), bar, f*100)
	}
	return b.String()
}

// Counter is a monotonically increasing named event counter set.
type Counter struct {
	m map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{m: map[string]uint64{}} }

// Inc adds n to the named counter.
func (c *Counter) Inc(name string, n uint64) { c.m[name] += n }

// Get returns the value of the named counter (0 if never incremented).
func (c *Counter) Get(name string) uint64 { return c.m[name] }

// Names returns the sorted list of counter names.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
