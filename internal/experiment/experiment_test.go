package experiment

import (
	"math"
	"strings"
	"sync"
	"testing"

	"r3d/internal/thermal"
)

var (
	sessOnce sync.Once
	sess     *Session
)

// session returns a shared Fast-quality session so the integration tests
// reuse cached simulation windows.
func session() *Session {
	sessOnce.Do(func() { sess = NewSession(Fast()) })
	return sess
}

func TestQualitySuite(t *testing.T) {
	if got := len(Full().Suite()); got != 19 {
		t.Errorf("full suite has %d benchmarks, want 19", got)
	}
	if got := len(Fast().Suite()); got != 6 {
		t.Errorf("fast suite has %d benchmarks, want 6", got)
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2(session())
	if err != nil {
		t.Fatal(err)
	}
	if r.LeadingCoreAreaMM2 != 19.6 || r.CheckerAreaMM2 != 5.0 || r.L2BankAreaMM2 != 5.0 {
		t.Errorf("Table 2 areas wrong: %+v", r)
	}
	if r.LeadingCoreAvgW < 20 || r.LeadingCoreAvgW > 50 {
		t.Errorf("leading core avg %.1f W outside band (paper: 35)", r.LeadingCoreAvgW)
	}
	if !strings.Contains(r.String(), "35 W") {
		t.Error("rendering must mention the paper reference")
	}
}

func TestTable4(t *testing.T) {
	r := Table4()
	if r.InterCore != 1025 || r.Total != 1409 {
		t.Errorf("via counts %d/%d, want 1025/1409", r.InterCore, r.Total)
	}
	if len(r.Rows) != 5 {
		t.Errorf("Table 4 needs 5 rows")
	}
}

func TestTable5(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paper) != 4 || len(r.Model) != 4 {
		t.Fatal("Table 5 row count")
	}
	if r.Paper[3].Total != 3.98 {
		t.Error("paper anchors wrong")
	}
	if math.Abs(r.Model[3].Total-3.98) > 0.3 {
		t.Errorf("model 6 FO4 total %.2f too far from 3.98", r.Model[3].Total)
	}
}

func TestTables678(t *testing.T) {
	if got := len(Table6().Rows); got != 4 {
		t.Errorf("Table 6 rows = %d", got)
	}
	if got := len(Table7().Rows); got != 3 {
		t.Errorf("Table 7 rows = %d", got)
	}
	r8, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r8.Rows[0].Dynamic-2.21) > 0.02 {
		t.Errorf("Table 8 90/65 dynamic %.2f, want 2.21", r8.Rows[0].Dynamic)
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(session(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(CheckerPowerSweep) {
		t.Fatalf("row count %d", len(r.Rows))
	}
	if r.Baseline2DA < 60 || r.Baseline2DA > 95 {
		t.Errorf("2d-a baseline %.1f °C outside the paper's window", r.Baseline2DA)
	}
	var prev thermal.Celsius
	for i, row := range r.Rows {
		if row.T3D2A <= r.Baseline2DA {
			t.Errorf("3d-2a at %gW must be hotter than 2d-a", row.CheckerW)
		}
		if i > 0 && (row.T3D2A < prev || row.T2D2A < r.Rows[i-1].T2D2A-0.01) {
			t.Errorf("temperatures must be monotone in checker power")
		}
		prev = row.T3D2A
	}
	// §3.2: for low checker power the 2d-2a chip (bigger sink, spread
	// banks) is cooler than 2d-a; at high power it is hotter.
	if r.Rows[0].T2D2A >= r.Baseline2DA {
		t.Errorf("2d-2a at 2W (%.1f) should be cooler than 2d-a (%.1f)", r.Rows[0].T2D2A, r.Baseline2DA)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.T2D2A <= r.Baseline2DA {
		t.Errorf("2d-2a at 25W (%.1f) should be hotter than 2d-a (%.1f)", last.T2D2A, r.Baseline2DA)
	}
}

func TestFigure5Shape(t *testing.T) {
	r, err := Figure5(session(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(session().Q.Suite()) {
		t.Fatalf("row count %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.T3D2A15W < row.T3D2A7W {
			t.Errorf("%s: 15W 3D must be ≥ 7W 3D", row.Bench)
		}
		if row.T3D2A7W <= row.T2DA-1 {
			t.Errorf("%s: 3D with checker should not be cooler than 2d-a", row.Bench)
		}
		if row.T2DA < 50 || row.T2DA > 100 {
			t.Errorf("%s: 2d-a %.1f °C implausible", row.Bench, row.T2DA)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(session())
	if err != nil {
		t.Fatal(err)
	}
	m2da, m2d2a, m3d2a, m3dchk := r.Means()
	// L2 hit latency ordering drives the means: 2d-2a (22 cyc) is the
	// slowest; 3d-2a matches 2d-a within noise.
	if m2d2a >= m3d2a {
		t.Errorf("3d-2a mean IPC %.3f must beat 2d-2a %.3f (shorter L2 hits)", m3d2a, m2d2a)
	}
	// The checker must not slow the leading core measurably.
	if m3dchk < m2da*0.97 {
		t.Errorf("3d-checker mean %.3f vs 2d-a %.3f: checker overhead too high", m3dchk, m2da)
	}
}

func TestFigure7Shape(t *testing.T) {
	r, err := Figure7(session())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range r.Fractions {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %.3f", sum)
	}
	if r.MeanNorm <= 0.05 || r.MeanNorm >= 0.95 {
		t.Errorf("mean normalized frequency %.2f implausible", r.MeanNorm)
	}
}

func TestFigure8And9(t *testing.T) {
	f8, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 4 || f8.Rows[0].Total != 1.0 {
		t.Errorf("Figure 8 normalization wrong: %+v", f8.Rows)
	}
	for i := 1; i < len(f8.Rows); i++ {
		if f8.Rows[i].Total >= f8.Rows[i-1].Total {
			t.Error("per-bit SER must fall with scaling")
		}
		if f8.Rows[i].ChipSER <= f8.Rows[i-1].ChipSER {
			t.Error("chip SER must rise with scaling")
		}
	}
	f9, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(f9.Curve); i++ {
		if f9.Curve[i].Prob <= f9.Curve[i-1].Prob {
			t.Error("MBU probability must rise as Qcrit falls")
		}
	}
}

func TestSection33(t *testing.T) {
	r, err := Section33(session())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.HitLat2DA-18) > 1 || math.Abs(r.HitLat2D2A-22) > 1 {
		t.Errorf("L2 hit latencies %.1f/%.1f, want ≈18/22", r.HitLat2DA, r.HitLat2D2A)
	}
	if math.Abs(r.HitLat3D2A-18) > 1.5 {
		t.Errorf("3d-2a hit latency %.1f, want ≈18", r.HitLat3D2A)
	}
	if r.Gain3Dvs2D2APct <= 0 {
		t.Errorf("3d-2a must outperform 2d-2a, got %+.2f%%", r.Gain3Dvs2D2APct)
	}
	if r.Freq7WGHz > 2.0 || r.Freq15WGHz > r.Freq7WGHz {
		t.Errorf("thermal-constrained frequencies inconsistent: %.1f / %.1f", r.Freq7WGHz, r.Freq15WGHz)
	}
	if r.PerfLoss15WPct < r.PerfLoss7WPct {
		t.Errorf("15W loss %.1f%% must exceed 7W loss %.1f%%", r.PerfLoss15WPct, r.PerfLoss7WPct)
	}
	if math.Abs(r.CheckerOverheadPct) > 3 {
		t.Errorf("checker overhead %.2f%%, want ≈0", r.CheckerOverheadPct)
	}
}

func TestSection34(t *testing.T) {
	r, err := Section34()
	if err != nil {
		t.Fatal(err)
	}
	if r.ViasInterCore != 1025 || r.ViasTotal != 1409 {
		t.Error("via counts wrong")
	}
	if r.InterCore3DMM >= r.InterCore2DMM {
		t.Error("3D must shorten inter-core wires")
	}
	if !(r.L2Metal2DA < r.L2Metal3D2A && r.L2Metal3D2A < r.L2Metal2D2A) {
		t.Errorf("L2 metal ordering wrong: %.2f %.2f %.2f", r.L2Metal2DA, r.L2Metal3D2A, r.L2Metal2D2A)
	}
	if !(r.Power2DA < r.Power3D2A && r.Power3D2A < r.Power2D2A) {
		t.Errorf("wire power ordering wrong: %.1f %.1f %.1f", r.Power2DA, r.Power3D2A, r.Power2D2A)
	}
	if r.ViaPowerMW > 25 || r.ViaPowerMW < 10 {
		t.Errorf("via power %.1f mW outside the paper's ballpark (15.49)", r.ViaPowerMW)
	}
	if math.Abs(r.ViaAreaMM2-0.07) > 0.005 {
		t.Errorf("via area %.3f, want ≈0.07", r.ViaAreaMM2)
	}
}

func TestSection32(t *testing.T) {
	r, err := Section32Variants(session(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TInactive15 >= r.T3D2A15 {
		t.Errorf("inactive silicon (%.1f) must be cooler than active banks (%.1f)", r.TInactive15, r.T3D2A15)
	}
	if r.TCorner15 >= r.T3D2A15 {
		t.Errorf("corner checker (%.1f) must be cooler than default (%.1f)", r.TCorner15, r.T3D2A15)
	}
	if r.TDouble15 <= r.T3D2A15 {
		t.Errorf("doubled power density (%.1f) must be hotter (%.1f)", r.TDouble15, r.T3D2A15)
	}
}

func TestSection35(t *testing.T) {
	r, err := Section35(session())
	if err != nil {
		t.Fatal(err)
	}
	if r.StageErrMode >= r.StageErrPeak/100 {
		t.Errorf("DFS slack must crush timing-error probability: %.2e vs %.2e", r.StageErrMode, r.StageErrPeak)
	}
	if r.Table5.Paper[1].Total/r.Table5.Paper[0].Total < 1.4 {
		t.Error("deep pipelining must look expensive")
	}
}

func TestSection4(t *testing.T) {
	r, err := Section4(session())
	if err != nil {
		t.Fatal(err)
	}
	if r.Checker90W < 23 || r.Checker90W > 27 {
		t.Errorf("90nm checker %.1f W, want ≈25 (paper: 23.7)", r.Checker90W)
	}
	if r.PeakFreq90GHz != 1.4 {
		t.Errorf("90nm peak frequency %.1f, want 1.4", r.PeakFreq90GHz)
	}
	if r.Temp90 >= r.Temp65+0.5 {
		t.Errorf("older-process die should not be hotter: %.1f vs %.1f", r.Temp90, r.Temp65)
	}
	if r.MBU90 >= r.MBU65 {
		t.Error("90nm MBU probability must be below 65nm")
	}
	if r.ConstThermalFreq90GHz < r.ConstThermalFreq65GHz {
		t.Errorf("const-thermal 90nm frequency (%.1f) should be ≥ 65nm (%.1f)",
			r.ConstThermalFreq90GHz, r.ConstThermalFreq65GHz)
	}
	if r.SlowdownPct > 30 {
		t.Errorf("cap slowdown %.1f%% implausible", r.SlowdownPct)
	}
}

func TestDFSAblation(t *testing.T) {
	r, err := DFSAblation(session())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 variants, got %d", len(r.Rows))
	}
	byName := map[string]DFSAblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
		if row.MeanFreqGHz <= 0 || row.LeadIPC <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Variant, row)
		}
	}
	agg, cons := byName["aggressive"], byName["conservative"]
	if agg.CheckerPowerW >= cons.CheckerPowerW {
		t.Errorf("aggressive throttling should save checker power: %.1f vs %.1f",
			agg.CheckerPowerW, cons.CheckerPowerW)
	}
	if agg.MeanOccupancy <= cons.MeanOccupancy {
		t.Errorf("aggressive throttling should run with fuller queues: %.0f vs %.0f",
			agg.MeanOccupancy, cons.MeanOccupancy)
	}
	if agg.SlowdownPct < cons.SlowdownPct-0.5 {
		t.Errorf("aggressive throttling should not stall the leading core less: %.2f%% vs %.2f%%",
			agg.SlowdownPct, cons.SlowdownPct)
	}
}

func TestDegradedMode(t *testing.T) {
	r, err := DegradedMode(session())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(session().Q.Suite()) {
		t.Fatalf("row count %d", len(r.Rows))
	}
	if r.MeanSlowdownPct <= 0 {
		t.Errorf("degraded mode must cost performance on average, got %.1f%%", r.MeanSlowdownPct)
	}
	for _, row := range r.Rows {
		if row.InOrderIPC <= 0 || row.InOrderIPC > 4 {
			t.Errorf("%s: implausible in-order IPC %.2f", row.Bench, row.InOrderIPC)
		}
	}
}

func TestQueueSizing(t *testing.T) {
	r, err := QueueSizing(session())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("row count %d", len(r.Rows))
	}
	// The tiniest queue must hurt more than the design point.
	var tiny, design QueueSizingRow
	for _, row := range r.Rows {
		if row.RVQSize == 25 {
			tiny = row
		}
		if row.RVQSize == 200 {
			design = row
		}
	}
	if tiny.SlowdownPct < design.SlowdownPct-0.05 {
		t.Errorf("25-entry RVQ slowdown %.2f%% should be ≥ 200-entry %.2f%%",
			tiny.SlowdownPct, design.SlowdownPct)
	}
	if design.SlowdownPct > 1.5 {
		t.Errorf("design-point slowdown %.2f%% should be negligible", design.SlowdownPct)
	}
}

func TestDTMStudy(t *testing.T) {
	r, err := DTMStudy(session(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if r.Peak3DC <= r.Peak2DAC {
		t.Errorf("3D chip must run hotter under DTM: %.1f vs %.1f", r.Peak3DC, r.Peak2DAC)
	}
	if r.Loss3DPct < r.Loss2DAPct {
		t.Errorf("3D chip must lose at least as much to throttling: %.1f%% vs %.1f%%",
			r.Loss3DPct, r.Loss2DAPct)
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	s := session()
	f4, err := Figure4(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, str := range []string{f4.String(), Table4().String(), Table6().String(), Table7().String()} {
		if len(str) < 40 || !strings.Contains(str, "\n") {
			t.Errorf("renderer output too small: %q", str)
		}
	}
}

func TestInjectionStudy(t *testing.T) {
	q := Fast()
	q.Benchmarks = []string{"gzip", "mesa"}
	q.MeasureInsts = 30_000
	r, err := InjectionStudy(NewSession(q), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benches × 2 seeds × 2 lead rates + the livelock self-test.
	if r.Report.Summary.Trials != 9 || r.Report.Summary.OK != 8 || r.Report.Summary.Hung != 1 {
		t.Fatalf("unexpected campaign summary: %+v", r.Report.Summary)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("want one row per benchmark, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Trials < 4 || row.OK < 4 {
			t.Errorf("%s: %d trials / %d ok, want ≥4 each", row.Bench, row.Trials, row.OK)
		}
		// Coverage is detected-per-leading-injection, so checker-RF
		// detections can push it past 1.
		if row.MeanCoverage <= 0 {
			t.Errorf("%s: coverage %.3f, want > 0", row.Bench, row.MeanCoverage)
		}
	}
	out := r.String()
	if !strings.Contains(out, "hung (no-progress") {
		t.Errorf("self-test verdict missing from render:\n%s", out)
	}
}
