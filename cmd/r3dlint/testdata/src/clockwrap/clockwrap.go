// Package clockwrap launders the wall clock through two layers of
// helper functions. It is driver-side code (not under internal/), so
// the per-package wallclock check does not apply here; the point of the
// fixture is that the interprocedural dettaint analyzer still catches
// model code calling Stamp.
package clockwrap

import "time"

func clock() time.Time { return time.Now() }

// Stamp returns the current wall-clock time.
func Stamp() time.Time { return clock() }
