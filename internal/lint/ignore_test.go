package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A directive without a reason must not silence anything — it is
// reported itself, alongside the finding it failed to suppress.
func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	//lint:ignore globalrand
	return rand.Intn(6)
}
`)
	wantChecks(t, fs, "lintdirective", "globalrand")
	if !strings.Contains(fs[0].Message, "lint:ignore <check> <reason>") {
		t.Errorf("malformed-directive message should show the expected syntax, got %q", fs[0].Message)
	}
}

// A directive only suppresses the check it names.
func TestIgnoreDirectiveIsCheckSpecific(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	//lint:ignore wallclock wrong check name on purpose
	return rand.Intn(6)
}
`)
	wantChecks(t, fs, "globalrand")
}

// End-of-line directives cover their own line.
func TestIgnoreDirectiveSameLine(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

import "math/rand"

func Roll() int {
	return rand.Intn(6) //lint:ignore globalrand demonstration fixture only
}
`)
	wantChecks(t, fs)
}

// A directive whose check ran but produced nothing on its line is
// stale: the code it excused has been fixed (or moved), so the
// directive must go before it silently excuses a future regression.
func TestStaleSuppressionIsReported(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

//lint:ignore globalrand this excuses nothing anymore
func Clean() int { return 4 }
`)
	wantChecks(t, fs, "lintdirective")
	if !strings.Contains(fs[0].Message, "stale suppression") {
		t.Errorf("finding %q should be reported as a stale suppression", fs[0].Message)
	}
}

// A directive naming a check that does not exist is always a finding —
// it can never suppress anything.
func TestUnknownCheckNameIsReported(t *testing.T) {
	fs := findings(t, GlobalRand, modelPath, `
package fixture

//lint:ignore nosuchcheck the check name is misspelled
func Clean() int { return 4 }
`)
	wantChecks(t, fs, "lintdirective")
	if !strings.Contains(fs[0].Message, `unknown check "nosuchcheck"`) {
		t.Errorf("finding %q should name the unknown check", fs[0].Message)
	}
}

// A directive for a registered check that simply was not part of this
// run is neither used nor stale — single-analyzer runs (fixtures, a
// future -run flag) must not flag the other analyzers' suppressions.
func TestDirectiveForCheckNotRunIsSkipped(t *testing.T) {
	wantChecks(t, findings(t, GlobalRand, modelPath, `
package fixture

import "time"

func Tick() time.Time {
	//lint:ignore wallclock sanctioned fixture boundary
	return time.Now()
}
`))
}

func TestFindModule(t *testing.T) {
	root, modPath, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	if modPath != "r3d" {
		t.Errorf("module path = %q, want %q", modPath, "r3d")
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("module root %q has no go.mod: %v", root, err)
	}
}
