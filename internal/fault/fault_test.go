package fault

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"r3d/internal/core"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/tech"
	"r3d/internal/trace"
)

func newSystem(t *testing.T, bench string, seed int64, maxGHz float64) *core.System {
	t.Helper()
	b, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.MustGenerator(b.Profile, seed)
	lead, err := ooo.New(ooo.Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Default(ooo.Default())
	if maxGHz > 0 {
		cfg.CheckerMaxFreqGHz = maxGHz
	}
	s, err := core.New(cfg, lead)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCampaignValidate(t *testing.T) {
	// valid reference config each rejection case perturbs
	ok := CampaignConfig{Instructions: 1000, CycleBudget: DefaultCycleBudget(1000)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("reference config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CampaignConfig)
	}{
		{"zero instructions", func(c *CampaignConfig) { c.Instructions = 0 }},
		{"zero cycle budget", func(c *CampaignConfig) { c.CycleBudget = 0 }},
		{"negative lead rate", func(c *CampaignConfig) { c.LeadSoftPerMCycle = -1 }},
		{"negative checker rate", func(c *CampaignConfig) { c.CheckerSoftPerMCycle = -1 }},
		{"NaN lead rate", func(c *CampaignConfig) { c.LeadSoftPerMCycle = math.NaN() }},
		{"NaN checker rate", func(c *CampaignConfig) { c.CheckerSoftPerMCycle = math.NaN() }},
		{"timing without critical path", func(c *CampaignConfig) { c.EnableTiming = true }},
		{"timing with NaN critical path", func(c *CampaignConfig) { c.EnableTiming = true; c.CritPathPs = math.NaN() }},
		{"negative timing accel", func(c *CampaignConfig) { c.EnableTiming = true; c.CritPathPs = 495; c.TimingAccel = -0.5 }},
		{"NaN timing accel", func(c *CampaignConfig) { c.EnableTiming = true; c.CritPathPs = 495; c.TimingAccel = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
	if _, err := RunCampaign(newSystem(t, "gzip", 1, 0), CampaignConfig{}); err == nil {
		t.Error("RunCampaign must reject invalid config")
	}
}

func TestCycleBudgetTerminatesWedgedSystem(t *testing.T) {
	// A deliberately-wedged system (checker-die livelock at cycle 1000)
	// must not spin the legacy serial path forever: the hard cycle
	// budget stops it with a distinguishable error and partial stats.
	sys := newSystem(t, "gzip", 8, 0)
	res, err := RunCampaign(sys, CampaignConfig{
		Instructions:        1_000_000,
		CycleBudget:         20_000,
		LivelockAfterCycles: 1000,
		Seed:                3,
	})
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("want ErrCycleBudget, got %v", err)
	}
	if res.Cycles != 20_000 {
		t.Errorf("budget-exhausted run reports %d cycles, want 20000", res.Cycles)
	}
	if res.Instructions >= 1_000_000 {
		t.Errorf("wedged system claims to have finished (%d instructions)", res.Instructions)
	}
	if !sys.Wedged() {
		t.Error("livelock injection never armed")
	}
}

func TestDefaultCycleBudgetSaturates(t *testing.T) {
	if b := DefaultCycleBudget(^uint64(0)); b != ^uint64(0) {
		t.Errorf("overflowing budget must saturate, got %d", b)
	}
	if b := DefaultCycleBudget(1000); b <= 400_000 {
		t.Errorf("budget %d too tight for 1000 instructions", b)
	}
}

func TestZeroRateInjectorsNeverFire(t *testing.T) {
	sys := newSystem(t, "gzip", 9, 0)
	soft, err := NewSoftErrorInjector(tech.Node65, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	timing := NewTimingInjector(tech.Node65, 495, 0, 5) // zero acceleration
	sys.SetCheckerCycleHook(timing.Hook)
	sys.Lead().SetFetchBudget(50_000)
	for sys.Lead().Stats().Instructions < 50_000 && !sys.Lead().Drained() {
		soft.Tick(sys)
		sys.Step()
	}
	if soft.LeadInjected != 0 || soft.RFInjected != 0 || soft.MBUs != 0 {
		t.Errorf("zero-rate soft injector fired: lead %d rf %d mbus %d",
			soft.LeadInjected, soft.RFInjected, soft.MBUs)
	}
	if timing.Injected != 0 {
		t.Errorf("zero-accel timing injector fired %d times", timing.Injected)
	}
	st := sys.Stats()
	if st.ErrorsDetected != 0 {
		t.Errorf("clean run detected %d errors", st.ErrorsDetected)
	}
}

// TestSoftErrorMBUDrawsByteIdentical reruns the injector over the same
// system and seed and requires the full injection trace — arrival
// cycles and upset widths — to serialize to identical bytes.
func TestSoftErrorMBUDrawsByteIdentical(t *testing.T) {
	record := func(seed int64) []byte {
		sys := newSystem(t, "vortex", 10, 0)
		soft, err := NewSoftErrorInjector(tech.Node45, 30, 300, seed)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		var cycle uint64
		sys.Lead().SetFetchBudget(60_000)
		for sys.Lead().Stats().Instructions < 60_000 && !sys.Lead().Drained() {
			before := [3]uint64{soft.LeadInjected, soft.RFInjected, soft.MBUs}
			soft.Tick(sys)
			sys.Step()
			cycle++
			if after := [3]uint64{soft.LeadInjected, soft.RFInjected, soft.MBUs}; after != before {
				for _, v := range []uint64{cycle, after[0], after[1], after[2]} {
					if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if soft.MBUs == 0 {
			t.Fatal("45 nm run drew no MBUs; trace proves nothing")
		}
		return buf.Bytes()
	}
	if a, b := record(77), record(77); !bytes.Equal(a, b) {
		t.Error("same seed produced different injection traces")
	}
	if a, c := record(77), record(78); bytes.Equal(a, c) {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// TestTimingInjectorClampsOverUnityProbability drives the accelerated
// probability far beyond 1 and checks the injector clamps to one error
// per stage per cycle instead of over-injecting.
func TestTimingInjectorClampsOverUnityProbability(t *testing.T) {
	inj := NewTimingInjector(tech.Node65, 500, 1e12, 21)
	c := newSystem(t, "gzip", 11, 0).Checker()
	inj.Hook(500, c) // p·accel >> 1 at zero slack
	if got, want := inj.Injected, uint64(inj.Stages); got != want {
		t.Errorf("clamped hook injected %d errors, want exactly one per stage (%d)", got, want)
	}
	inj.Hook(500, c)
	if got, want := inj.Injected, uint64(2*inj.Stages); got != want {
		t.Errorf("second clamped hook: %d total injections, want %d", got, want)
	}
}

func TestLeadingSoftErrorsAllDetectedAndRecovered(t *testing.T) {
	sys := newSystem(t, "gzip", 2, 0)
	res, err := RunCampaign(sys, CampaignConfig{
		Instructions:      120000,
		CycleBudget:       DefaultCycleBudget(120000),
		LeadSoftPerMCycle: 150, // aggressive acceleration
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeadInjected < 3 {
		t.Fatalf("too few injections to judge: %d", res.LeadInjected)
	}
	if res.Detected < res.LeadInjected {
		t.Errorf("detected %d < injected %d: the checking process must catch every leading-core error",
			res.Detected, res.LeadInjected)
	}
	if res.Unrecovered != 0 {
		t.Errorf("leading-core errors must be recoverable (clean trailer RF), got %d unrecovered", res.Unrecovered)
	}
	if res.Coverage() < 1 {
		t.Errorf("coverage %.2f < 1", res.Coverage())
	}
	if res.MeanDetectSlack <= 0 || res.MeanDetectSlack > core.DefaultRVQSize {
		t.Errorf("implausible detection slack %.1f", res.MeanDetectSlack)
	}
}

func TestCheckerMBUsCanBeUnrecoverable(t *testing.T) {
	// At 45 nm critical charges the MBU fraction is substantial; some
	// checker-side upsets must land beyond ECC and, when subsequently
	// read during a detection, count as unrecoverable.
	sys := newSystem(t, "vortex", 3, 0)
	soft, err := NewSoftErrorInjector(tech.Node45, 40, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	sys.Lead().SetFetchBudget(150000)
	for sys.Lead().Stats().Instructions < 150000 && !sys.Lead().Drained() {
		soft.Tick(sys)
		sys.Step()
	}
	if soft.MBUs == 0 {
		t.Fatal("45 nm campaign produced no MBUs")
	}
	st := sys.Stats()
	if st.ErrorsDetected == 0 {
		t.Fatal("RF corruptions never surfaced")
	}
	if st.ErrorsUnrecovered == 0 {
		t.Error("expected some unrecoverable errors from multi-bit RF upsets")
	}
}

func TestOlderNodeHasFewerMBUs(t *testing.T) {
	run := func(node tech.Node) uint64 {
		sys := newSystem(t, "gzip", 4, 0)
		soft, err := NewSoftErrorInjector(node, 0, 600, 13)
		if err != nil {
			t.Fatal(err)
		}
		sys.Lead().SetFetchBudget(80000)
		for sys.Lead().Stats().Instructions < 80000 && !sys.Lead().Drained() {
			soft.Tick(sys)
			sys.Step()
		}
		return soft.MBUs
	}
	if m90, m45 := run(tech.Node90), run(tech.Node45); m90 >= m45 {
		t.Errorf("90 nm MBUs (%d) should be below 45 nm (%d)", m90, m45)
	}
}

func TestTimingInjectorSlackSuppression(t *testing.T) {
	// §3.5: at 0.6·f each stage has huge slack and the timing error
	// probability collapses versus full-frequency operation.
	inj := NewTimingInjector(tech.Node65, 500, 1, 1)
	atPeak := inj.ExpectedStageErrorProb(500)
	atSixty := inj.ExpectedStageErrorProb(833)
	if atSixty >= atPeak/1000 {
		t.Errorf("0.6f stage error prob %.3g should be orders below peak %.3g", atSixty, atPeak)
	}
}

func TestTimingInjectorOlderProcessMoreRobust(t *testing.T) {
	// §4: the 90 nm die suffers less variability, so at equal *relative*
	// slack its stage error probability is lower.
	new65 := NewTimingInjector(tech.Node45, 500, 1, 1)
	old90 := NewTimingInjector(tech.Node90, 500, 1, 1)
	p65 := new65.ExpectedStageErrorProb(550)
	p90 := old90.ExpectedStageErrorProb(550)
	if p90 >= p65 {
		t.Errorf("older process should be more robust: %g vs %g", p90, p65)
	}
}

func TestTimingCampaignInjectsAtTightSlack(t *testing.T) {
	// Cap the checker at full frequency demand (mesa) so it often runs
	// near its critical path, then check the injector fires and errors
	// are detected.
	sys := newSystem(t, "mesa", 5, 0)
	res, err := RunCampaign(sys, CampaignConfig{
		Instructions: 100000,
		CycleBudget:  DefaultCycleBudget(100000),
		EnableTiming: true,
		TimingNode:   tech.Node65,
		CritPathPs:   495, // nearly the full 500 ps period
		TimingAccel:  0.02,
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimingInjected == 0 {
		t.Fatal("timing injector never fired despite near-critical operation")
	}
	if res.Detected == 0 {
		t.Error("timing corruptions never detected")
	}
}

func TestDeterministicCampaign(t *testing.T) {
	run := func() CampaignResult {
		sys := newSystem(t, "twolf", 6, 0)
		res, err := RunCampaign(sys, CampaignConfig{
			Instructions:         60000,
			CycleBudget:          DefaultCycleBudget(60000),
			LeadSoftPerMCycle:    80,
			CheckerSoftPerMCycle: 80,
			Seed:                 23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Errorf("campaign not deterministic:\n%+v\n%+v", a, b)
	}
}
