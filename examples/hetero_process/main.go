// Heterogeneous process: the paper's §4 study. Implement the checker die
// in the older 90 nm process: dynamic power rises (×2.21) and the die
// clocks no faster than 1.4 GHz, but leakage drops (×0.40), variability
// shrinks, critical charge grows — and the checker barely notices the
// frequency cap because its DFS demand sits well below it.
package main

import (
	"fmt"
	"log"

	"r3d"
)

func main() {
	dyn, lkg, err := r3d.TechScaling(90, 65)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("90 nm vs 65 nm: dynamic ×%.2f, leakage ×%.2f (Table 8)\n\n", dyn, lkg)

	const n = 300_000
	for _, bench := range []string{"gzip", "mesa", "mcf"} {
		free, err := r3d.RunReliable(bench, r3d.L2Org2DA, n, 2.0, 42)
		if err != nil {
			log.Fatal(err)
		}
		capped, err := r3d.RunReliable(bench, r3d.L2Org2DA, n, 1.4, 42)
		if err != nil {
			log.Fatal(err)
		}
		slowdown := (1 - capped.IPC/free.IPC) * 100
		fmt.Printf("%-8s checker mean %.2f GHz (65nm die) vs %.2f GHz (90nm die, 1.4 cap); leading slowdown %.2f%%\n",
			bench, free.MeanCheckerFreqGHz, capped.MeanCheckerFreqGHz, slowdown)
	}
	fmt.Println("\nThe cap only binds on high-IPC phases; the paper reports a 3%")
	fmt.Println("worst-case slowdown while gaining soft-error and timing-error margin.")
}
