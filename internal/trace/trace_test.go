package trace

import (
	"math"
	"testing"

	"r3d/internal/isa"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 19 {
		t.Fatalf("suite has %d benchmarks, want 19 (paper: 7 int + 12 fp)", len(s))
	}
	seen := map[string]bool{}
	for _, b := range s {
		if seen[b.Profile.Name] {
			t.Errorf("duplicate benchmark %q", b.Profile.Name)
		}
		seen[b.Profile.Name] = true
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("profile invalid: %v", err)
		}
	}
	for _, name := range []string{"mcf", "art", "swim", "mesa", "gzip"} {
		if !seen[name] {
			t.Errorf("missing paper benchmark %q", name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("mcf")
	if err != nil || b.Profile.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", b.Profile.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if len(Names()) != 19 {
		t.Fatal("Names length mismatch")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Suite()[0].Profile
	cases := []func(*Profile){
		func(p *Profile) { p.LoadFrac = 1.5 },
		func(p *Profile) { p.LoadFrac, p.StoreFrac, p.BranchFrac = 0.5, 0.4, 0.3 },
		func(p *Profile) { p.HotFrac, p.MidFrac, p.WarmFrac = 0.8, 0.3, 0.1 },
		func(p *Profile) { p.BranchSites = 0 },
		func(p *Profile) { p.DepDist = 0 },
		func(p *Profile) { p.LoopFrac, p.PatternFrac, p.RandomFrac = 0.5, 0.4, 0.2 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	b, _ := ByName("gzip")
	g1 := MustGenerator(b.Profile, 42)
	g2 := MustGenerator(b.Profile, 42)
	for i := 0; i < 5000; i++ {
		a, c := g1.Next(), g2.Next()
		if a != c {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, c)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	b, _ := ByName("gzip")
	g1 := MustGenerator(b.Profile, 1)
	g2 := MustGenerator(b.Profile, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next().Op == g2.Next().Op {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical op streams")
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	g := MustGenerator(Suite()[0].Profile, 3)
	var prev uint64
	for i := 0; i < 1000; i++ {
		in := g.Next()
		if i > 0 && in.Seq != prev+1 {
			t.Fatalf("Seq not contiguous: %d after %d", in.Seq, prev)
		}
		prev = in.Seq
	}
}

func TestMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "mcf"} {
		b, _ := ByName(name)
		g := MustGenerator(b.Profile, 9)
		const n = 200000
		var loads, stores, branches, fp float64
		for i := 0; i < n; i++ {
			in := g.Next()
			switch {
			case in.Op == isa.Load:
				loads++
			case in.Op == isa.Store:
				stores++
			case in.Op.IsBranch():
				branches++
			case in.Op.IsFP():
				fp++
			}
		}
		check := func(what string, got, want float64) {
			t.Helper()
			if math.Abs(got/n-want) > 0.03 {
				t.Errorf("%s: %s fraction %.3f, want ≈%.3f", name, what, got/n, want)
			}
		}
		check("load", loads, b.Profile.LoadFrac)
		check("store", stores, b.Profile.StoreFrac)
		check("branch", branches, b.Profile.BranchFrac)
		if b.Profile.FP && fp == 0 {
			t.Errorf("%s: FP benchmark generated no FP ops", name)
		}
		if !b.Profile.FP && fp > 0 {
			t.Errorf("%s: integer benchmark generated FP ops", name)
		}
	}
}

func TestBranchesHaveTargetsAndMemOpsHaveAddrs(t *testing.T) {
	g := MustGenerator(Suite()[3].Profile, 5)
	sawTaken, sawNotTaken := false, false
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Op.IsBranch() {
			if in.Taken {
				sawTaken = true
				if in.Target == 0 {
					t.Fatal("taken branch without target")
				}
			} else {
				sawNotTaken = true
			}
		}
		if in.Op.IsMem() && in.Addr == 0 {
			t.Fatal("memory op without address")
		}
	}
	if !sawTaken || !sawNotTaken {
		t.Error("branch stream should contain both outcomes")
	}
}

func TestDependenceDistanceTracksProfile(t *testing.T) {
	// A small-DepDist profile must produce shorter producer distances on
	// average than a large-DepDist one.
	measure := func(name string) float64 {
		b, _ := ByName(name)
		g := MustGenerator(b.Profile, 7)
		lastWrite := map[isa.Reg]uint64{}
		var sum, cnt float64
		for i := 0; i < 100000; i++ {
			in := g.Next()
			for _, s := range []isa.Reg{in.Src1, in.Src2} {
				if s.IsZero() {
					continue
				}
				if w, ok := lastWrite[s]; ok {
					sum += float64(in.Seq - w)
					cnt++
				}
			}
			if in.HasDest() {
				lastWrite[in.Dest] = in.Seq
			}
		}
		if cnt == 0 {
			t.Fatalf("%s: no dependences measured", name)
		}
		return sum / cnt
	}
	mcf := measure("mcf")       // DepDist 2.2
	galgel := measure("galgel") // DepDist 10
	if mcf >= galgel {
		t.Errorf("mcf mean dep distance %.2f should be below galgel %.2f", mcf, galgel)
	}
}

func TestValueConsistency(t *testing.T) {
	// The stream must be value-consistent: source operand values always
	// equal the last value written to that register (the ground truth
	// the RMT checker verifies against).
	b, _ := ByName("vortex")
	g := MustGenerator(b.Profile, 99)
	var regs [isa.NumRegs]uint64
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Src1Val != regs[in.Src1] {
			t.Fatalf("inst %d: Src1Val %#x != reg %d value %#x", i, in.Src1Val, in.Src1, regs[in.Src1])
		}
		if !in.Op.IsBranch() && in.Src2Val != regs[in.Src2] {
			t.Fatalf("inst %d: Src2Val mismatch", i)
		}
		if in.HasDest() {
			regs[in.Dest] = in.Value
		}
	}
}

func TestColdRegionStreams(t *testing.T) {
	b, _ := ByName("swim")
	g := MustGenerator(b.Profile, 13)
	var prev uint64
	var coldSeen int
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Op.IsMem() && in.Addr >= coldBase {
			if prev != 0 && in.Addr > prev && in.Addr-prev != uint64(b.Profile.ColdStride) {
				t.Fatalf("cold region must stream by stride %d, got delta %d",
					b.Profile.ColdStride, in.Addr-prev)
			}
			prev = in.Addr
			coldSeen++
		}
	}
	if coldSeen == 0 {
		t.Error("swim should touch the cold region")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	for _, b := range Suite() {
		p := b.Profile
		if hotBase+uint64(p.HotBytes) > midBase {
			t.Errorf("%s: hot region overlaps mid base", p.Name)
		}
		if midBase+uint64(p.MidBytes) > warmBase {
			t.Errorf("%s: mid region overlaps warm base", p.Name)
		}
		if warmBase+uint64(p.WarmBytes) > coldBase {
			t.Errorf("%s: warm region overlaps cold base", p.Name)
		}
	}
}

func TestMidRegionUsed(t *testing.T) {
	b, _ := ByName("mcf")
	g := MustGenerator(b.Profile, 21)
	mid := 0
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Op.IsMem() && in.Addr >= midBase && in.Addr < warmBase {
			mid++
		}
	}
	if mid == 0 {
		t.Error("mcf should reference its mid (L2-resident) region")
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	p := Suite()[0].Profile
	p.DepDist = 0
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestMustGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := Suite()[0].Profile
	p.BranchSites = 0
	MustGenerator(p, 1)
}
