package experiment

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"r3d/internal/nuca"
)

// renderAll prefetches the full registry manifest and renders every
// experiment, mirroring what r3dbench does.
func renderAll(tb testing.TB, s *Session, workers int) string {
	tb.Helper()
	reg := Registry()
	if err := s.Prefetch(ManifestUnion(s.Q, reg)); err != nil {
		tb.Fatalf("prefetch: %v", err)
	}
	var b strings.Builder
	for _, e := range reg {
		r, err := e.Run(s, workers)
		if err != nil {
			tb.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Fprintln(&b, r)
	}
	return b.String()
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestWorkerCountByteIdentity is the engine's hard invariant: the full
// fast-quality suite renders byte-identically on a -workers 1 session
// and a second, fresh -workers 8 session. Thermal solves are pure
// functions of their case key (cold start + deterministic coarse-grid
// preconditioner, memoized as immutable snapshots), so they hold this
// invariant even while running concurrently inside the render.
func TestWorkerCountByteIdentity(t *testing.T) {
	if raceEnabled {
		t.Skip("full fast render is too slow under the race detector; TestConcurrentSessionRace covers concurrency")
	}
	if testing.Short() {
		t.Skip("full fast render in -short mode")
	}
	q := Fast()
	s1 := NewParallelSession(q, 1, nil)
	serial := renderAll(t, s1, 1)
	s8 := NewParallelSession(q, 8, nil)
	par := renderAll(t, s8, 8)
	if serial != par {
		t.Fatalf("workers=1 and workers=8 output differ; first %s", firstDiffLine(serial, par))
	}
	// The schedule must also be identical work — same windows computed,
	// memoized and deduplicated — regardless of pool width. (Timings are
	// zero here: no clock is injected.)
	st1, st8 := s1.EngineStats(), s8.EngineStats()
	if st1 != st8 {
		t.Errorf("engine stats differ across worker counts: %+v vs %+v", st1, st8)
	}
	if st8.Errors != 0 || st8.Computed == 0 || st8.Hits == 0 {
		t.Errorf("implausible engine stats: %+v", st8)
	}
	// Thermal work must also be schedule-independent: the same distinct
	// cases solved once each, everything else answered from snapshots.
	th1, th8 := s1.ThermalStats(), s8.ThermalStats()
	if th1.Solves != th8.Solves || th1.FineIters != th8.FineIters || th1.CoarseIters != th8.CoarseIters {
		t.Errorf("thermal stats differ across worker counts: %+v vs %+v", th1, th8)
	}
	if th8.Solves == 0 || th8.Hits == 0 {
		t.Errorf("implausible thermal stats: %+v", th8)
	}
}

// TestConcurrentThermalSolves hammers the thermal snapshot store: many
// goroutines solving an overlapping case list concurrently must (a)
// race-cleanly collapse duplicates onto one solve per distinct case and
// (b) return results bit-identical to a fresh serial session — the
// store's contents must not depend on arrival order or worker count.
func TestConcurrentThermalSolves(t *testing.T) {
	q := Fast()
	q.Benchmarks = []string{"gzip", "mesa"}
	q.WarmupInsts = 2_000
	q.MeasureInsts = 4_000
	q.ThermalTolC = 0.5
	q.ThermalMaxIters = 200
	s := NewParallelSession(q, 4, nil)
	act, rate, err := s.SuiteActivity(L2DA)
	if err != nil {
		t.Fatal(err)
	}
	cases := []ThermalCase{
		{Model: M2DA, Act: act, L2Rate: rate},
		{Model: M2D2A, Act: act, L2Rate: rate, CheckerW: 7},
		{Model: M3D2A, Act: act, L2Rate: rate, CheckerW: 7},
		{Model: M3D2A, Act: act, L2Rate: rate, CheckerW: 15},
		{Model: M3DChecker, Act: act, L2Rate: rate, CheckerW: 7},
	}

	const rounds = 4
	results := make([][]ThermalResult, rounds)
	var wg sync.WaitGroup
	errc := make(chan error, rounds*len(cases)+rounds)
	for r := 0; r < rounds; r++ {
		results[r] = make([]ThermalResult, len(cases))
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := s.PrefetchThermal(cases, 3); err != nil {
				errc <- err
				return
			}
			for i, c := range cases {
				res, err := s.SolveThermal(c)
				if err != nil {
					errc <- err
					return
				}
				results[r][i] = res
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for r := 1; r < rounds; r++ {
		for i := range cases {
			if results[r][i] != results[0][i] {
				t.Fatalf("round %d case %d: %+v != %+v", r, i, results[r][i], results[0][i])
			}
		}
	}

	th := s.ThermalStats()
	if th.Solves != int64(len(cases)) {
		t.Errorf("Solves = %d, want exactly %d (per-key singleflight must dedup)", th.Solves, len(cases))
	}
	if th.Hits == 0 {
		t.Errorf("concurrent repeats produced no snapshot hits: %+v", th)
	}

	// A fresh serial session must publish bit-identical snapshots: the
	// solve is a pure function of the case, not of the schedule.
	s2 := NewSession(q)
	for i, c := range cases {
		res, err := s2.SolveThermal(c)
		if err != nil {
			t.Fatal(err)
		}
		if res != results[0][i] {
			t.Errorf("case %d: serial session %+v != concurrent session %+v", i, res, results[0][i])
		}
	}
}

// TestConcurrentSessionRace hammers one session from many goroutines —
// overlapping prefetch batches, on-demand windows and thermal solves —
// with windows small enough to stay cheap under -race. It exists to run
// under the race detector (make race); without -race it is a fast
// smoke test of the same paths.
func TestConcurrentSessionRace(t *testing.T) {
	q := Fast()
	q.Benchmarks = []string{"gzip", "mesa"}
	q.WarmupInsts = 2_000
	q.MeasureInsts = 4_000
	q.ThermalTolC = 0.5
	q.ThermalMaxIters = 200
	s := NewParallelSession(q, 4, nil)

	keys := suiteLeadKeys(q, L2DA, nuca.DistributedSets, 0)
	keys = append(keys, suiteLeadKeys(q, L2D2A, nuca.DistributedSets, 0)...)
	keys = append(keys, suiteRMTKeys(q, L2DA, 2.0)...)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Prefetch(keys); err != nil {
				errc <- err
			}
		}()
	}
	for _, b := range q.Suite() {
		name := b.Profile.Name
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := s.Leading(name, L2DA, nuca.DistributedSets, 0); err != nil {
				errc <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.RMT(name, L2DA, 2.0); err != nil {
				errc <- err
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			act, rate, err := s.SuiteActivity(L2DA)
			if err != nil {
				errc <- err
				return
			}
			if _, err := s.SolveThermal(ThermalCase{Model: M3DChecker, Act: act, L2Rate: rate, CheckerW: 7}); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := s.EngineStats()
	if want := len(keys); st.Computed != want {
		t.Errorf("computed %d windows, want exactly %d (singleflight must dedup)", st.Computed, want)
	}
	if st.Hits+st.Joins == 0 {
		t.Error("concurrent requests produced no hits or joins")
	}
}
