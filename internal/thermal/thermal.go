// Package thermal is a steady-state 3D thermal grid solver in the style
// of HotSpot-3.1's grid model, configured with the paper's Table 3
// parameters: a layered stack (bulk silicon, active silicon, copper
// metalization, die-to-die via layer for F2F-bonded stacks) discretized
// into a 50×50 grid per layer, a heat sink attached below the bulk
// silicon of die 1, and a 47 °C ambient.
//
// Heat flows vertically between layer cells and laterally between
// neighbouring cells of the same layer; each bottom cell additionally
// couples to ambient through its share of the heat-sink (convection +
// spreading) resistance, and each top cell couples weakly to ambient
// through the package. Power is injected in the active-silicon layers.
// The resulting linear system is solved by red-black successive
// over-relaxation.
//
// The solver is split into an immutable Model (geometry and
// conductances, shareable between any number of concurrent solves) and
// a cheap per-solve State (temperature and power fields, cloneable).
// Red-black half-sweeps fan out across row bands with byte-identical
// results at any worker count, and a coarse-grid preconditioner
// (Precondition) provides a deterministic warm start that replaces
// order-sensitive warm-start chaining. Solver bundles a Model with one
// State for callers that don't need concurrency.
package thermal

import (
	"fmt"
	"math"
	"strings"
)

// Table 3 parameters.
const (
	BulkSiDie1Um   = 750.0
	BulkSiDie2Um   = 20.0
	ActiveSiUm     = 1.0
	MetalUm        = 12.0
	D2DViaUm       = 10.0
	SiResistivity  = 0.01   // (m·K)/W
	CuResistivity  = 0.0833 // (m·K)/W — composite metal+ILD layer
	D2DResistivity = 0.0166 // (m·K)/W — accounts for air cavities and via density
	GridResolution = 50

	// Heat-spreader and sink-base plates (HotSpot's package model): a
	// 1 mm copper spreader and a 7 mm sink base under the bulk silicon.
	// The plates extend well beyond the die (HotSpot: 30 mm spreader,
	// 60 mm sink for a ~10 mm die); modeling them at die size with bulk
	// copper resistivity would overstate their vertical resistance and
	// understate lateral spreading, so an effective resistivity ≈3×
	// lower than bulk copper stands in for the extra cross-section.
	SpreaderUm         = 1000.0
	SinkBaseUm         = 7000.0
	CuPlateResistivity = 0.0008
)

// AmbientC is the paper's 47 °C ambient.
const AmbientC Celsius = 47.0

// Layer is one slab of the stack.
type Layer struct {
	Name        string
	ThicknessUm float64
	Resistivity float64 // (m·K)/W
	// Heat marks an active-silicon layer that receives a power map.
	Heat bool
}

// Config describes a stack instance.
type Config struct {
	Layers []Layer
	// DieWmm, DieHmm are the die outline.
	DieWmm, DieHmm float64
	// Nx, Ny is the grid resolution.
	Nx, Ny int
	// SinkResistanceKperW is the total heat-sink resistance (convection
	// plus spreading) from the bottom of the stack to ambient. The
	// paper's 2d-2a model has a larger die and hence a larger heat sink:
	// scale this inversely with die area via SinkFor.
	SinkResistanceKperW float64
	// PackageResistanceKperW is the (much larger) resistance from the
	// top of the stack to ambient through the package/C4 side.
	PackageResistanceKperW float64
	// AmbientC is the ambient temperature.
	AmbientC Celsius
}

// ReferenceSinkKperW is the heat-sink resistance of the 2d-a-sized die
// (≈52 mm²), calibrated so the 2d-a baseline lands in the paper's
// per-benchmark 60–85 °C window (Figure 5).
const ReferenceSinkKperW = 0.125

// ReferenceDieAreaMM2 is the 2d-a die area the reference sink matches.
const ReferenceDieAreaMM2 = 52.0

// SinkFor returns a heat-sink resistance scaled inversely with die area
// (a bigger die carries a bigger sink, as the paper notes for 2d-2a).
func SinkFor(dieAreaMM2 float64) float64 {
	return ReferenceSinkKperW * ReferenceDieAreaMM2 / dieAreaMM2
}

// Stack2D returns the single-die stack (heat sink, bulk Si, active Si,
// metal, package).
func Stack2D(dieWmm, dieHmm float64) Config {
	return Config{
		Layers: []Layer{
			{Name: "sinkbase", ThicknessUm: SinkBaseUm, Resistivity: CuPlateResistivity},
			{Name: "spreader", ThicknessUm: SpreaderUm, Resistivity: CuPlateResistivity},
			{Name: "bulk1a", ThicknessUm: BulkSiDie1Um / 2, Resistivity: SiResistivity},
			{Name: "bulk1b", ThicknessUm: BulkSiDie1Um / 2, Resistivity: SiResistivity},
			{Name: "active1", ThicknessUm: ActiveSiUm, Resistivity: SiResistivity, Heat: true},
			{Name: "metal1", ThicknessUm: MetalUm, Resistivity: CuResistivity},
		},
		DieWmm: dieWmm, DieHmm: dieHmm,
		Nx: GridResolution, Ny: GridResolution,
		SinkResistanceKperW:    SinkFor(dieWmm * dieHmm),
		PackageResistanceKperW: 25.0,
		AmbientC:               AmbientC,
	}
}

// Stack3D returns the two-die F2F stack of Figure 2(b): die 1 next to
// the heat sink, metal layers face to face joined by the d2d via layer,
// die 2's thinned bulk on top.
func Stack3D(dieWmm, dieHmm float64) Config {
	return Config{
		Layers: []Layer{
			{Name: "sinkbase", ThicknessUm: SinkBaseUm, Resistivity: CuPlateResistivity},
			{Name: "spreader", ThicknessUm: SpreaderUm, Resistivity: CuPlateResistivity},
			{Name: "bulk1a", ThicknessUm: BulkSiDie1Um / 2, Resistivity: SiResistivity},
			{Name: "bulk1b", ThicknessUm: BulkSiDie1Um / 2, Resistivity: SiResistivity},
			{Name: "active1", ThicknessUm: ActiveSiUm, Resistivity: SiResistivity, Heat: true},
			{Name: "metal1", ThicknessUm: MetalUm, Resistivity: CuResistivity},
			{Name: "d2d", ThicknessUm: D2DViaUm, Resistivity: D2DResistivity},
			{Name: "metal2", ThicknessUm: MetalUm, Resistivity: CuResistivity},
			{Name: "active2", ThicknessUm: ActiveSiUm, Resistivity: SiResistivity, Heat: true},
			{Name: "bulk2", ThicknessUm: BulkSiDie2Um, Resistivity: SiResistivity},
		},
		DieWmm: dieWmm, DieHmm: dieHmm,
		Nx: GridResolution, Ny: GridResolution,
		SinkResistanceKperW:    SinkFor(dieWmm * dieHmm),
		PackageResistanceKperW: 25.0,
		AmbientC:               AmbientC,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("thermal: no layers")
	}
	if c.Nx <= 0 || c.Ny <= 0 || c.DieWmm <= 0 || c.DieHmm <= 0 {
		return fmt.Errorf("thermal: bad grid geometry")
	}
	if c.SinkResistanceKperW <= 0 || c.PackageResistanceKperW <= 0 {
		return fmt.Errorf("thermal: non-positive boundary resistance")
	}
	heat := 0
	for _, l := range c.Layers {
		if l.ThicknessUm <= 0 || l.Resistivity <= 0 {
			return fmt.Errorf("thermal: layer %s has non-positive parameters", l.Name)
		}
		if l.Heat {
			heat++
		}
	}
	if heat == 0 {
		return fmt.Errorf("thermal: no heat-source layer")
	}
	return nil
}

// Solver bundles an immutable Model with one State, preserving the
// original single-owner API for callers that don't share the model
// between concurrent solves. A Solver is not safe for concurrent use;
// share its Model and give each goroutine its own State instead.
type Solver struct {
	m  *Model
	st *State
}

// NewSolver builds a solver over a fresh model; it panics on invalid
// configuration.
func NewSolver(cfg Config) *Solver { return NewModel(cfg).NewSolver() }

// NewSolver returns a Solver owning a fresh ambient-temperature state
// over this model.
func (m *Model) NewSolver() *Solver { return &Solver{m: m, st: m.NewState()} }

// Solver wraps the state in the single-owner Solver API (no copy: the
// returned solver aliases the state).
func (st *State) Solver() *Solver { return &Solver{m: st.m, st: st} }

// Model returns the immutable model the solver solves over.
func (s *Solver) Model() *Model { return s.m }

// State returns the solver's mutable state.
func (s *Solver) State() *State { return s.st }

// HeatLayers returns the indices of the active (power-injecting) layers
// in stack order (die 1 first).
func (s *Solver) HeatLayers() []int { return s.m.HeatLayers() }

// SetPower installs the power map (W per cell) for the die with the
// given heat-layer ordinal (0 = die 1, 1 = die 2). The grid dimensions
// must match the solver's: every row is length-checked, so a ragged
// grid is an error, never a panic.
func (s *Solver) SetPower(die int, grid [][]float64) error { return s.st.SetPower(die, grid) }

// TotalPower returns the injected power in watts.
func (s *Solver) TotalPower() float64 { return s.st.TotalPower() }

// Solve iterates red-black SOR until the maximum update falls below
// tolC (°C) or maxIters is reached, returning the iteration count and
// whether the tolerance was actually met. converged=false means the
// field is the best available estimate, not a solution: callers must
// not silently treat an iteration-capped field as settled. The previous
// solution is kept as the starting point (warm start). See State.Solve
// for the parallel-sweep determinism contract.
func (s *Solver) Solve(tolC Celsius, maxIters int) (iters int, converged bool) {
	return s.st.Solve(tolC, maxIters)
}

// PeakC returns the maximum temperature over the given die's active
// layer (die ordinal as in SetPower).
func (s *Solver) PeakC(die int) Celsius { return s.st.PeakC(die) }

// PeakAllC returns the maximum temperature over all active layers.
func (s *Solver) PeakAllC() Celsius { return s.st.PeakAllC() }

// CellC returns the temperature of one cell.
func (s *Solver) CellC(layer, y, x int) Celsius { return s.st.CellC(layer, y, x) }

// MeanC returns the average temperature of the given die's active layer.
func (s *Solver) MeanC(die int) Celsius { return s.st.MeanC(die) }

// CopyStateFrom copies another solver's temperature field (the
// geometries must match); used to start a transient study from a solved
// steady state.
func (s *Solver) CopyStateFrom(src *Solver) error {
	if len(src.st.temp) != len(s.st.temp) {
		return fmt.Errorf("thermal: geometry mismatch (%d vs %d cells)", len(src.st.temp), len(s.st.temp))
	}
	copy(s.st.temp, src.st.temp)
	return nil
}

// HeatmapASCII renders one layer's temperature field as a character
// raster (coarse but invaluable for eyeballing power-map placement).
// Rows are emitted top edge first.
func (s *Solver) HeatmapASCII(layer, cols int) string { return s.st.HeatmapASCII(layer, cols) }

// HeatmapASCII renders one layer's temperature field as a character
// raster. Rows are emitted top edge first.
func (st *State) HeatmapASCII(layer, cols int) string {
	m := st.m
	if cols <= 0 || cols > m.nx {
		cols = m.nx
	}
	ramp := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for y := 0; y < m.ny; y++ {
		for x := 0; x < m.nx; x++ {
			t := st.temp[m.idx(layer, y, x)]
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "layer %d: %.1f–%.1f °C\n", layer, lo, hi)
	step := m.nx / cols
	if step < 1 {
		step = 1
	}
	for y := m.ny - 1; y >= 0; y -= step {
		for x := 0; x < m.nx; x += step {
			t := st.temp[m.idx(layer, y, x)]
			idx := 0
			if hi > lo {
				idx = int((t - lo) / (hi - lo) * float64(len(ramp)-1))
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
