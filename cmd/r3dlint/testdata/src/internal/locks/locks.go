// Package locks seeds one violation per v3 concurrency analyzer —
// mutexguard (unlocked write, write under read lock), lockorder (an
// A/B inversion), and blockhold (a channel send inside a critical
// section) — so the golden test pins each analyzer's exact output.
package locks

import "sync"

// Ledger is annotated shared state with two mutexes whose acquisition
// order the seeded methods invert.
type Ledger struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	total int

	rw sync.RWMutex
	// r3dlint:guardedby rw
	entries map[string]int

	other sync.Mutex
	ch    chan int
}

// Deposit is the correct pattern: exclusive lock around the write.
func (l *Ledger) Deposit(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total += n
}

// Skim writes guarded state without taking the lock.
func (l *Ledger) Skim() {
	l.total++
}

// Set mutates the map while holding only the read lock.
func (l *Ledger) Set(k string, v int) {
	l.rw.RLock()
	defer l.rw.RUnlock()
	l.entries[k] = v
}

// Nest takes other inside mu; Unnest takes mu inside other — the
// classic inversion.
func (l *Ledger) Nest() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.other.Lock()
	defer l.other.Unlock()
}

func (l *Ledger) Unnest() {
	l.other.Lock()
	defer l.other.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
}

// Publish sends on an unbuffered channel with mu held.
func (l *Ledger) Publish(v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ch <- v
}
