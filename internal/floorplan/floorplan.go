// Package floorplan builds the block layouts of the paper's Figure 3:
// the 2d-a baseline (leading core + 6 L2 banks on one die), the 2d-2a
// baseline (leading core + checker + 15 banks on one larger die), and
// the 3d-2a stack (2d-a lower die; checker + 9 banks on the upper die),
// plus the §3.2 variants (checker-only top die, corner checker
// placement, power-density what-ifs).
//
// Areas come from Table 2 — 19.6 mm² leading core, 5 mm² in-order core,
// 5 mm² per 1 MB L2 bank, 0.22 mm² per router — scaled per [10] when a
// die uses an older process. The leading core's twelve sub-units are
// packed into a full-width strip at the die edge nearest the heat sink
// mount, EV7-style; L2 banks tile the remaining area. Dies of a 3D stack
// share one outline.
package floorplan

import (
	"fmt"
	"math"

	"r3d/internal/noc"
	"r3d/internal/power"
)

// Table 2 areas in mm².
const (
	LeadingCoreAreaMM2 = 19.6
	CheckerAreaMM2     = 5.0
	L2BankAreaMM2      = 5.0
	RouterAreaMM2      = noc.RouterAreaMM2
)

// Layer indices.
const (
	LayerDie1 = 0 // next to the heat sink
	LayerDie2 = 1 // stacked die
)

// Block is one placed rectangle.
type Block struct {
	Name  string
	Layer int
	X, Y  float64 // mm, lower-left corner
	W, H  float64 // mm
}

// Area returns the block area in mm².
func (b Block) Area() float64 { return b.W * b.H }

// Floorplan is a placed chip model (one or two active layers).
type Floorplan struct {
	Name   string
	DieW   float64 // mm
	DieH   float64 // mm
	Layers int
	Blocks []Block
}

// BlockNamed returns the first block with the given name.
func (f *Floorplan) BlockNamed(name string) (Block, bool) {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b, true
		}
	}
	return Block{}, false
}

// Validate checks blocks stay on the die and do not overlap.
func (f *Floorplan) Validate() error {
	for i, b := range f.Blocks {
		if b.X < -1e-9 || b.Y < -1e-9 || b.X+b.W > f.DieW+1e-6 || b.Y+b.H > f.DieH+1e-6 {
			return fmt.Errorf("floorplan %s: block %s outside die (%.2f,%.2f %.2fx%.2f on %.2fx%.2f)",
				f.Name, b.Name, b.X, b.Y, b.W, b.H, f.DieW, f.DieH)
		}
		for j := i + 1; j < len(f.Blocks); j++ {
			c := f.Blocks[j]
			if b.Layer != c.Layer {
				continue
			}
			if b.X < c.X+c.W-1e-6 && c.X < b.X+b.W-1e-6 && b.Y < c.Y+c.H-1e-6 && c.Y < b.Y+b.H-1e-6 {
				return fmt.Errorf("floorplan %s: blocks %s and %s overlap", f.Name, b.Name, c.Name)
			}
		}
	}
	return nil
}

// coreStrip packs the leading core's sub-units into a full-width strip
// at the bottom of the die (areas proportional to peak power share of
// the Table 2 core area) and returns the strip height.
func coreStrip(dieW float64, layer int, out *[]Block) float64 {
	units := power.LeadingUnits()
	var peak float64
	for _, u := range units {
		peak += u.PeakW
	}
	stripH := LeadingCoreAreaMM2 / dieW
	// Two rows of six units; each unit's width is proportional to its
	// power share within its row.
	rows := [2][]power.UnitSpec{}
	var rowPeak [2]float64
	for i, u := range units {
		r := i / (len(units) / 2)
		if r > 1 {
			r = 1
		}
		rows[r] = append(rows[r], u)
		rowPeak[r] += u.PeakW
	}
	y := 0.0
	for r, row := range rows {
		// Equal row heights; unit widths proportional to power share so
		// hotter units get proportionally more area (constant strip
		// density before activity factors differentiate them).
		h := stripH / 2
		x := 0.0
		for _, u := range row {
			w := dieW * u.PeakW / rowPeak[r]
			*out = append(*out, Block{Name: u.Name, Layer: layer, X: x, Y: y, W: w, H: h})
			x += w
		}
		y += h
	}
	return stripH
}

type rect struct{ x, y, w, h float64 }

// tileRegion splits a rectangle into n near-square tiles (grid) and
// appends them as blocks named prefix0..prefix{n-1} (offset names by
// start).
func tileRegion(r rect, n, start int, prefix string, layer int, out *[]Block) {
	if n <= 0 {
		return
	}
	// Rows-first: pick a row count that keeps tiles near square, then
	// balance the tile counts across rows (each row is fully covered,
	// so tile areas stay within a small band of each other).
	rows := int(math.Round(math.Sqrt(float64(n) * r.h / r.w)))
	if rows < 1 {
		rows = 1
	}
	if rows > n {
		rows = n
	}
	th := r.h / float64(rows)
	i := 0
	for row := 0; row < rows; row++ {
		// Balanced distribution: spread n over rows within ±1.
		inRow := n/rows + boolToInt(row < n%rows)
		tw := r.w / float64(inRow)
		for c := 0; c < inRow; c++ {
			*out = append(*out, Block{
				Name:  fmt.Sprintf("%s%d", prefix, start+i),
				Layer: layer,
				X:     r.x + float64(c)*tw,
				Y:     r.y + float64(row)*th,
				W:     tw,
				H:     th,
			})
			i++
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Options configures floorplan construction.
type Options struct {
	// CheckerAreaScale inflates the checker-die block areas (the §4
	// 90 nm die: (90/65)² ≈ 1.92).
	CheckerAreaScale float64
	// TopDieBanks is the number of L2 banks on the stacked die: 9 at
	// 65 nm; 4 at 90 nm, where the same die area holds fewer banks (the
	// paper rounds this to "5 MB").
	TopDieBanks int
	// CheckerAtCorner moves the checker to the far corner of the top
	// die (§3.2 variant: ≈1.5 °C cooler, longer inter-core wires).
	CheckerAtCorner bool
	// CheckerPowerDensityScale shrinks the checker block area while its
	// power stays constant (the §3.2 "power density doubled" what-if
	// uses 0.5).
	CheckerPowerDensityScale float64
}

// DefaultOptions is the homogeneous 65 nm stack.
func DefaultOptions() Options {
	return Options{CheckerAreaScale: 1, TopDieBanks: 9, CheckerPowerDensityScale: 1}
}

// Options90nm is the §4 heterogeneous stack: the checker die in 90 nm.
func Options90nm() Options {
	return Options{CheckerAreaScale: 90.0 * 90.0 / (65.0 * 65.0), TopDieBanks: 4, CheckerPowerDensityScale: 1}
}

func (o Options) checkerArea() float64 {
	s := o.CheckerAreaScale
	if s <= 0 {
		s = 1
	}
	a := CheckerAreaMM2 * s
	if o.CheckerPowerDensityScale > 0 {
		a *= o.CheckerPowerDensityScale
	}
	return a
}

// Build2DA returns the single-die baseline: leading core strip at the
// bottom, 6 banks above. Die ≈ 7.2×7.2 mm (≈52 mm², Table 2 inventory).
func Build2DA() *Floorplan {
	f := &Floorplan{Name: "2d-a", Layers: 1, DieW: 7.2}
	ch := coreStrip(f.DieW, LayerDie1, &f.Blocks)
	bankArea := 6 * (L2BankAreaMM2 + RouterAreaMM2)
	bh := bankArea / f.DieW
	tileRegion(rect{0, ch, f.DieW, bh}, 6, 0, "L2Bank", LayerDie1, &f.Blocks)
	f.DieH = ch + bh
	return f
}

// Build2D2A returns the large single-die model: core strip at the
// bottom, 15 banks above, and the checker at the far (top) corner — in
// a 2D layout the checker cannot abut the core, so its value queues are
// fed by long horizontal wires routed over the cache banks (this is
// exactly the §3.4 wiring cost that the 3D stack removes). The die also
// gets the larger heat sink that comes with its doubled area.
func Build2D2A(opt Options) *Floorplan {
	f := &Floorplan{Name: "2d-2a", Layers: 1, DieW: 10.2}
	ch := coreStrip(f.DieW, LayerDie1, &f.Blocks)
	ca := opt.checkerArea()
	cw := math.Sqrt(ca * 1.2)
	chh := ca / cw
	bankArea := 15 * (L2BankAreaMM2 + RouterAreaMM2)
	f.DieH = ch + (bankArea+ca)/f.DieW
	f.Blocks = append(f.Blocks, Block{Name: "Checker", Layer: LayerDie1, X: f.DieW - cw, Y: f.DieH - chh, W: cw, H: chh})
	// Banks: the main region between the core and the checker row, plus
	// the top strip left of the checker.
	main := rect{0, ch, f.DieW, f.DieH - chh - ch}
	top := rect{0, f.DieH - chh, f.DieW - cw, chh}
	n := int(math.Round(15 * main.w * main.h / bankArea))
	if n > 15 {
		n = 15
	}
	tileRegion(main, n, 0, "L2Bank", LayerDie1, &f.Blocks)
	tileRegion(top, 15-n, n, "L2Bank", LayerDie1, &f.Blocks)
	return f
}

// Build3D2A returns the stacked model: the 2d-a die as die 1, and a top
// die (same outline) with the checker plus opt.TopDieBanks banks. By
// default the checker sits near the bottom of the top die — directly
// above the leading core, which keeps the inter-core via pillars and
// queue wiring short; with CheckerAtCorner it moves to the far corner,
// trading wire length for ≈1.5 °C (§3.2).
func Build3D2A(opt Options) *Floorplan {
	f := Build2DA()
	f.Name = "3d-2a"
	f.Layers = 2

	ca := opt.checkerArea()
	cw := math.Sqrt(ca * 1.2)
	chh := ca / cw
	// The core strip below spans y∈[0, coreH). The default checker
	// straddles the core's cache end — its inter-core buffers sit as
	// close as possible to the leading core's LSQ/DCache (paper §3.2) —
	// while L2 banks cover the hottest execution units. The corner
	// variant trades wire length for distance from the core's heat.
	coreH := LeadingCoreAreaMM2 / f.DieW
	var cx, cy float64
	if opt.CheckerAtCorner {
		cx, cy = f.DieW-cw, f.DieH-chh
	} else {
		cx, cy = (f.DieW-cw)/2, coreH-chh/2
	}
	f.Blocks = append(f.Blocks, Block{Name: "Checker", Layer: LayerDie2, X: cx, Y: cy, W: cw, H: chh})

	// Banks tile the remaining area around the checker.
	n := opt.TopDieBanks
	var regions []rect
	if opt.CheckerAtCorner {
		regions = []rect{
			{0, 0, f.DieW, f.DieH - chh},        // below the checker row
			{0, f.DieH - chh, f.DieW - cw, chh}, // beside the checker
		}
	} else {
		regions = []rect{
			{0, 0, f.DieW, cy},                       // over die1's execution cluster
			{0, cy, cx, chh},                         // left of checker
			{cx + cw, cy, f.DieW - cx - cw, chh},     // right of checker
			{0, cy + chh, f.DieW, f.DieH - cy - chh}, // top
		}
	}
	var total float64
	for _, r := range regions {
		total += r.w * r.h
	}
	start := 0
	for i, r := range regions {
		cnt := int(math.Round(float64(n) * r.w * r.h / total))
		if i == len(regions)-1 {
			cnt = n - start
		}
		if start+cnt > n {
			cnt = n - start
		}
		tileRegion(r, cnt, start, "TopBank", LayerDie2, &f.Blocks)
		start += cnt
	}
	return f
}

// Build3DChecker returns the 3d-checker model (§3.3): the top die holds
// only the checker; the rest is inactive silicon (also the §3.2
// inactive-silicon thermal variant).
func Build3DChecker(opt Options) *Floorplan {
	f := Build2DA()
	f.Name = "3d-checker"
	f.Layers = 2
	ca := opt.checkerArea()
	cw := math.Sqrt(ca * 1.2)
	chh := ca / cw
	coreH := LeadingCoreAreaMM2 / f.DieW
	x, y := (f.DieW-cw)/2, coreH-chh/2
	if opt.CheckerAtCorner {
		x, y = f.DieW-cw, f.DieH-chh
	}
	f.Blocks = append(f.Blocks, Block{Name: "Checker", Layer: LayerDie2, X: x, Y: y, W: cw, H: chh})
	return f
}

// PowerGrid rasterizes the blocks of one layer onto an nx×ny grid of
// power values (watts per cell), distributing each block's power over
// the cells it covers in proportion to overlap area. Cells not covered
// by any block are inactive silicon and get zero power.
func (f *Floorplan) PowerGrid(layer int, powers power.BlockPowers, nx, ny int) [][]float64 {
	grid := make([][]float64, ny)
	for y := range grid {
		grid[y] = make([]float64, nx)
	}
	cw := f.DieW / float64(nx)
	ch := f.DieH / float64(ny)
	for _, b := range f.Blocks {
		if b.Layer != layer {
			continue
		}
		w, ok := powers[b.Name]
		//lint:ignore floatcmp exact zero marks an unpowered block (assigned, not computed)
		if !ok || w == 0 {
			continue
		}
		density := w / b.Area() // W/mm²
		x0 := int(b.X / cw)
		x1 := int(math.Ceil((b.X + b.W) / cw))
		y0 := int(b.Y / ch)
		y1 := int(math.Ceil((b.Y + b.H) / ch))
		for yi := maxi(0, y0); yi < mini(ny, y1); yi++ {
			for xi := maxi(0, x0); xi < mini(nx, x1); xi++ {
				ox := overlap(b.X, b.X+b.W, float64(xi)*cw, float64(xi+1)*cw)
				oy := overlap(b.Y, b.Y+b.H, float64(yi)*ch, float64(yi+1)*ch)
				grid[yi][xi] += density * ox * oy
			}
		}
	}
	return grid
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := math.Max(a0, b0), math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// WireLengthMM returns the Manhattan distance between the centers of two
// named blocks in millimetres; for blocks on different layers only the
// horizontal distance counts (inter-die vias are microns long). It
// reports an error if either block is absent.
func (f *Floorplan) WireLengthMM(from, to string) (float64, error) {
	a, ok := f.BlockNamed(from)
	if !ok {
		return 0, fmt.Errorf("floorplan %s: no block %q", f.Name, from)
	}
	b, ok := f.BlockNamed(to)
	if !ok {
		return 0, fmt.Errorf("floorplan %s: no block %q", f.Name, to)
	}
	dx := math.Abs((a.X + a.W/2) - (b.X + b.W/2))
	dy := math.Abs((a.Y + a.H/2) - (b.Y + b.H/2))
	return dx + dy, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
