// Command r3dserve is the simulation daemon: an HTTP/JSON service that
// accepts experiment-prefetch and fault-campaign submissions from many
// concurrent clients and executes them against one shared,
// content-addressed result cache.
//
// Examples:
//
//	r3dserve -listen :8723 -state /var/lib/r3d
//	r3dserve -listen :8723 -state /var/lib/r3d -restore -shadow 0.1
//
//	curl -d '{"kind":"experiment","experiment":"table2","quality":"fast"}' \
//	     http://localhost:8723/api/v1/jobs
//	curl 'http://localhost:8723/api/v1/jobs/<id>?wait_ms=30000&version=1'
//	curl  http://localhost:8723/api/v1/jobs/<id>/result
//
// Robustness contract:
//
//   - admission control: at most -queue jobs in flight; beyond that,
//     submissions get 429 + Retry-After. -rate/-burst add a per-client
//     token bucket.
//   - idempotency: a job's ID fingerprints its content; duplicate
//     POSTs join the in-flight or completed job.
//   - degradation: when the queue is deeper than -degrade-depth,
//     experiment requests are downgraded one quality tier and the
//     response says so.
//   - deadlines: -deadline (or per-request deadline_ms) expires jobs
//     by draining them at trial/window granularity — finished work
//     stays cached, nothing is poisoned.
//   - crash safety: with -state, completed jobs and window caches
//     persist; after a SIGKILL, -restore serves previously computed
//     results byte-identically.
//   - clean drain: the first SIGINT/SIGTERM stops admissions, finishes
//     in-flight trials, commits a final checkpoint, closes the
//     listener and exits 0. A second signal aborts with 130.
//   - self-verification: -shadow re-verifies that fraction of cache
//     hits from scratch; a divergence flips /healthz to "degraded"
//     instead of crashing the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"r3d/internal/campaign"
	"r3d/internal/experiment"
	"r3d/internal/serve"
)

// tinyQuality is a smoke-test tier: one benchmark, very small windows,
// so end-to-end exercises of the daemon finish in seconds.
func tinyQuality() experiment.Quality {
	return experiment.Quality{
		WarmupInsts:  5_000,
		MeasureInsts: 10_000,
		Benchmarks:   []string{"gzip"},
		ThermalTolC:  1e-3, ThermalMaxIters: 10_000,
		Seed: 42,
	}
}

// tierByName maps the tier vocabulary of -tiers onto qualities.
func tierByName(name string) (serve.Tier, error) {
	switch name {
	case "tiny":
		return serve.Tier{Name: name, Quality: tinyQuality()}, nil
	case "fast":
		return serve.Tier{Name: name, Quality: experiment.Fast()}, nil
	case "full":
		return serve.Tier{Name: name, Quality: experiment.Full()}, nil
	}
	return serve.Tier{}, fmt.Errorf("unknown tier %q (want tiny, fast or full)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("r3dserve: ")

	listen := flag.String("listen", "127.0.0.1:8723", "listen address (host:port; port 0 picks a free port)")
	tiers := flag.String("tiers", "fast,full", "comma-separated quality tiers, cheapest first (tiny, fast, full)")
	queue := flag.Int("queue", serve.DefaultQueueBound, "max admitted-but-unfinished jobs; beyond this, 429 + Retry-After")
	degradeDepth := flag.Int("degrade-depth", 0, "queue depth at which experiment requests degrade one tier (0 = queue/2, negative disables)")
	jobWorkers := flag.Int("job-workers", 2, "concurrently executing jobs")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "per-job worker-pool width (trials / windows)")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 disables rate limiting)")
	burst := flag.Int("burst", 4, "per-client submission burst (with -rate)")
	maxTrials := flag.Int("max-trials", 10_000, "largest grid accepted per job (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	retryAfter := flag.Int64("retry-after", 2, "Retry-After seconds hinted on queue-full rejections")
	state := flag.String("state", "", "state directory for the job store and window caches (\"\" disables persistence)")
	restore := flag.Bool("restore", false, "restore the job store and window caches from -state before serving")
	shadow := flag.Float64("shadow", 0, "fraction of cache hits to re-verify from scratch (0..1); divergences degrade /healthz")
	retries := flag.Int("retries", 1, "max retries for campaign trials the watchdog reports hung")
	portFile := flag.String("portfile", "", "write the bound listen address to this file once serving (for scripts)")
	flag.Parse()

	var tierList []serve.Tier
	for _, name := range strings.Split(*tiers, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		t, err := tierByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tierList = append(tierList, t)
	}

	if *state != "" {
		if err := os.MkdirAll(*state, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// The daemon's model code never reads the host clock; real time
	// enters only here, as an injected monotonic clock.
	start := time.Now()
	mono := func() int64 { return int64(time.Since(start)) }
	clock := serve.Clock{
		Now: mono,
		After: func(ns int64) <-chan struct{} {
			ch := make(chan struct{})
			time.AfterFunc(time.Duration(ns), func() { close(ch) })
			return ch
		},
	}

	srv, err := serve.New(serve.Options{
		Tiers:             tierList,
		QueueBound:        *queue,
		DegradeDepth:      *degradeDepth,
		JobWorkers:        *jobWorkers,
		TrialWorkers:      *workers,
		RatePerSec:        *rate,
		Burst:             *burst,
		MaxTrialsPerJob:   *maxTrials,
		DefaultDeadlineNS: int64(*deadline),
		RetryAfterSec:     *retryAfter,
		ShadowFraction:    *shadow,
		Clock:             clock,
		SessionClock:      mono,
		StatePath:         *state,
		Restore:           *restore,
		MaxRetries:        *retries,
		Watchdog:          campaign.Watchdog{},
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	// SIGQUIT dumps every goroutine stack to stderr and keeps serving —
	// the live-diagnosis hook for a daemon that looks wedged. (Go's
	// default SIGQUIT behavior dumps and *exits*; installing a handler
	// replaces it.)
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	// r3dlint:daemon signal handler lives for the whole process; Notify's channel is never closed
	go func() {
		for range quitc {
			if err := pprof.Lookup("goroutine").WriteTo(os.Stderr, 2); err != nil {
				log.Printf("goroutine dump: %v", err)
			}
		}
	}()

	// First signal: drain — stop admissions, finish in-flight trials,
	// commit the final checkpoint, close the listener, exit 0. Second
	// signal: abort 130 (persisted state still restores).
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatalf("serve: %v", err)
	case sig := <-sigc:
		log.Printf("%s: draining (in-flight trials finish; signal again to abort)", sig)
		go func() {
			<-sigc
			os.Exit(130)
		}()
	}
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("drained cleanly")
}
