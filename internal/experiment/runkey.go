package experiment

import (
	"fmt"
	"strings"

	"r3d/internal/nuca"
)

// RunKind selects which simulation window a RunKey names.
type RunKind uint8

// The four cached window families of the evaluation.
const (
	// KindLeading is a standalone leading-core window (bench × L2
	// organization × NUCA policy × memory latency).
	KindLeading RunKind = iota
	// KindRMT is a coupled leading+checker window with a DFS frequency
	// cap (bench × L2 organization × checker-GHz cap).
	KindRMT
	// KindDFSVariant is an RMT window with non-default DFS thresholds,
	// named by the §4 ablation variant.
	KindDFSVariant
	// KindRVQSize is an RMT window with a non-default RVQ capacity (the
	// §2.1 queue-sizing sweep).
	KindRVQSize
)

// CentiGHz is a frequency stored in hundredths of a GHz. RunKeys keep
// the checker DFS cap in this integer unit so key equality and ordering
// stay exact (no float rounding in map keys); the units manifest anchors
// it as a distinct dimension from plain GHz so the two are never mixed
// without going through the documented ×100 quantization.
type CentiGHz int

// GHz converts the quantized cap back to GHz for simulator configs.
func (c CentiGHz) GHz() float64 { return float64(c) / 100 }

func (k RunKind) String() string {
	switch k {
	case KindRMT:
		return "rmt"
	case KindDFSVariant:
		return "dfs"
	case KindRVQSize:
		return "rvq"
	default:
		return "lead"
	}
}

// RunKey canonically identifies one memoized simulation window. It
// replaces the ad-hoc fmt.Sprintf cache keys that used to be scattered
// across session.go, ablation.go and extensions.go: every experiment
// names its windows with the same typed key, so the run engine can
// deduplicate, schedule and account for them uniformly. Unused fields
// are zero for a given Kind, which keeps equality and ordering exact
// (no floats: the checker cap is stored in centi-GHz).
type RunKey struct {
	Kind  RunKind
	Bench string
	// L2 and Policy select the NUCA organization (KindLeading and
	// KindRMT; variant/sizing windows always run 2d-a distributed-sets).
	L2     L2Config
	Policy nuca.Policy
	// MemLatency overrides the memory latency in cycles when positive
	// (KindLeading only; the §3.3 frequency-scaling study).
	MemLatency int
	// CheckerCGHz is the checker DFS cap in centi-GHz (KindRMT only;
	// 200 = the 2.0 GHz homogeneous stack).
	CheckerCGHz CentiGHz
	// DFSVariant names the DFSVariants() entry (KindDFSVariant only).
	DFSVariant string
	// RVQSize is the swept queue capacity (KindRVQSize only).
	RVQSize int
	// Seed is the workload generator seed (always the session quality's).
	Seed int64
}

// String renders the canonical form used in engine reports.
func (k RunKey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", k.Kind, k.Bench)
	switch k.Kind {
	case KindLeading:
		policy := "sets"
		if k.Policy == nuca.DistributedWays {
			policy = "ways"
		}
		fmt.Fprintf(&b, "/%s/%s", k.L2, policy)
		if k.MemLatency > 0 {
			fmt.Fprintf(&b, "/mem%d", k.MemLatency)
		}
	case KindRMT:
		fmt.Fprintf(&b, "/%s/%d.%02dGHz", k.L2, k.CheckerCGHz/100, k.CheckerCGHz%100)
	case KindDFSVariant:
		fmt.Fprintf(&b, "/%s", k.DFSVariant)
	case KindRVQSize:
		fmt.Fprintf(&b, "/%d", k.RVQSize)
	}
	fmt.Fprintf(&b, "/s%d", k.Seed)
	return b.String()
}

// CompareRunKeys is the canonical total order over RunKeys: the order
// batch results are committed in and engine reports are listed in.
func CompareRunKeys(a, b RunKey) int {
	if c := int(a.Kind) - int(b.Kind); c != 0 {
		return c
	}
	if c := strings.Compare(a.Bench, b.Bench); c != 0 {
		return c
	}
	if c := int(a.L2) - int(b.L2); c != 0 {
		return c
	}
	if c := int(a.Policy) - int(b.Policy); c != 0 {
		return c
	}
	if c := a.MemLatency - b.MemLatency; c != 0 {
		return c
	}
	if c := int(a.CheckerCGHz) - int(b.CheckerCGHz); c != 0 {
		return c
	}
	if c := strings.Compare(a.DFSVariant, b.DFSVariant); c != 0 {
		return c
	}
	if c := a.RVQSize - b.RVQSize; c != 0 {
		return c
	}
	switch {
	case a.Seed < b.Seed:
		return -1
	case a.Seed > b.Seed:
		return 1
	}
	return 0
}

// LeadingKey names a standalone leading-core window.
func LeadingKey(q Quality, bench string, l2c L2Config, policy nuca.Policy, memLatency int) RunKey {
	return RunKey{Kind: KindLeading, Bench: bench, L2: l2c, Policy: policy, MemLatency: memLatency, Seed: q.Seed}
}

// RMTKey names a coupled RMT window; the cap is quantized to centi-GHz
// (every caller passes deci-GHz values, so the quantization is exact).
func RMTKey(q Quality, bench string, l2c L2Config, maxCheckerGHz float64) RunKey {
	return RunKey{Kind: KindRMT, Bench: bench, L2: l2c, CheckerCGHz: CentiGHz(maxCheckerGHz*100 + 0.5), Seed: q.Seed}
}

// DFSVariantKey names a DFS-threshold ablation window.
func DFSVariantKey(q Quality, bench, variant string) RunKey {
	return RunKey{Kind: KindDFSVariant, Bench: bench, DFSVariant: variant, Seed: q.Seed}
}

// RVQSizeKey names a queue-sizing window.
func RVQSizeKey(q Quality, bench string, size int) RunKey {
	return RunKey{Kind: KindRVQSize, Bench: bench, RVQSize: size, Seed: q.Seed}
}

// --- manifest helpers --------------------------------------------------------

// suiteLeadKeys lists one leading window per suite benchmark.
func suiteLeadKeys(q Quality, l2c L2Config, policy nuca.Policy, memLatency int) []RunKey {
	var keys []RunKey
	for _, b := range q.Suite() {
		keys = append(keys, LeadingKey(q, b.Profile.Name, l2c, policy, memLatency))
	}
	return keys
}

// suiteRMTKeys lists one RMT window per suite benchmark.
func suiteRMTKeys(q Quality, l2c L2Config, maxCheckerGHz float64) []RunKey {
	var keys []RunKey
	for _, b := range q.Suite() {
		keys = append(keys, RMTKey(q, b.Profile.Name, l2c, maxCheckerGHz))
	}
	return keys
}

// activityKeys is the manifest of SuiteActivity / BenchActivity: the
// leading windows behind every power map and thermal case.
func activityKeys(q Quality, l2c L2Config) []RunKey {
	return suiteLeadKeys(q, l2c, nuca.DistributedSets, 0)
}
