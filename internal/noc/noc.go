// Package noc models the grid network that connects the L2 cache
// controller to the NUCA banks. Following the paper's methodology
// (§3.1), each hop costs four cycles — one link cycle plus three router
// cycles (a conventional 4-stage router with the switch and VC
// allocation stages overlapped) — and each router has the Orion-derived
// power and area of Table 2: 0.296 W and 0.22 mm².
package noc

// Cost and physical constants from the paper.
const (
	// LinkCyclesPerHop is the wire-traversal latency of one hop.
	LinkCyclesPerHop = 1
	// RouterCyclesPerHop is the router pipeline latency of one hop.
	RouterCyclesPerHop = 3
	// CyclesPerHop is the total per-hop latency.
	CyclesPerHop = LinkCyclesPerHop + RouterCyclesPerHop
	// RouterPowerW is the average power of one router (Table 2).
	RouterPowerW = 0.296
	// RouterAreaMM2 is the area of one router (Table 2).
	RouterAreaMM2 = 0.22
	// FlitBits is the link width: 64-bit address + 256-bit data +
	// 64-bit control (Table 4's L2 transfer pillar is the same width).
	FlitBits = 384
)

// Network tracks traffic on a bank grid whose topology is summarized by
// per-destination hop counts (the floorplan fixes actual placement; the
// network only needs distances).
type Network struct {
	hops    []int
	routers int

	traversals uint64 // total router traversals (hops × accesses)
	accesses   uint64
}

// New creates a network with the given per-bank hop distances from the
// L2 controller. The router population is one per bank plus one at the
// controller.
func New(hopsPerBank []int) *Network {
	h := make([]int, len(hopsPerBank))
	copy(h, hopsPerBank)
	return &Network{hops: h, routers: len(hopsPerBank) + 1}
}

// Banks returns the number of reachable banks.
func (n *Network) Banks() int { return len(n.hops) }

// Routers returns the router count.
func (n *Network) Routers() int { return n.routers }

// Hops returns the one-way hop distance to bank b.
func (n *Network) Hops(b int) int { return n.hops[b] }

// RoundTripCycles returns the request+response network latency to bank b.
func (n *Network) RoundTripCycles(b int) int {
	return 2 * n.hops[b] * CyclesPerHop
}

// Record accounts one access to bank b (request and response traverse
// the distance once each).
func (n *Network) Record(b int) {
	n.accesses++
	n.traversals += uint64(2 * n.hops[b])
}

// MeanHops returns the average one-way hop distance over all banks
// (uniform access assumption, as with the distributed-sets policy).
func (n *Network) MeanHops() float64 {
	if len(n.hops) == 0 {
		return 0
	}
	var s float64
	for _, h := range n.hops {
		s += float64(h)
	}
	return s / float64(len(n.hops))
}

// Traversals returns the total number of router traversals recorded.
func (n *Network) Traversals() uint64 { return n.traversals }

// Accesses returns the number of recorded accesses.
func (n *Network) Accesses() uint64 { return n.accesses }

// StaticPowerW returns the total router static power.
func (n *Network) StaticPowerW() float64 { return float64(n.routers) * RouterPowerW }

// TotalAreaMM2 returns the total router area.
func (n *Network) TotalAreaMM2() float64 { return float64(n.routers) * RouterAreaMM2 }
