package r3d

import (
	"fmt"
	"testing"
)

// TestReliableRunDeterministic reruns the same small leading-core +
// checker simulation with the same seed and requires byte-identical
// stats output. This is the property the r3dlint suite (maporder,
// globalrand, wallclock, floatcmp) exists to protect: every table in
// full_results.txt assumes a rerun regenerates exactly.
func TestReliableRunDeterministic(t *testing.T) {
	run := func() string {
		r, err := RunReliable("gzip", L2Org3D2A, 30_000, 2.0, 12345)
		if err != nil {
			t.Fatalf("RunReliable: %v", err)
		}
		// %#v renders every stats field, including the float bits that
		// would pick up order-of-summation differences.
		return fmt.Sprintf("%#v", r)
	}
	first := run()
	second := run()
	if first != second {
		t.Errorf("same seed produced different stats output:\n run 1: %s\n run 2: %s", first, second)
	}
}

// TestInjectionRunDeterministic does the same for a fault-injection
// campaign, which additionally exercises the seeded per-component RNGs
// in internal/fault.
func TestInjectionRunDeterministic(t *testing.T) {
	run := func() string {
		r, err := RunInjection("swim", 20_000, 65, 80, 80, 99)
		if err != nil {
			t.Fatalf("RunInjection: %v", err)
		}
		return fmt.Sprintf("%#v", r)
	}
	first := run()
	second := run()
	if first != second {
		t.Errorf("same seed produced different injection output:\n run 1: %s\n run 2: %s", first, second)
	}
}
