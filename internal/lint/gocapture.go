package lint

import (
	"go/ast"
	"go/types"
)

// GoCapture inspects `go func() { ... }()` literals — the worker pools
// of internal/runsched and internal/campaign are the motivating sites —
// for two classic concurrency mistakes:
//
//   - an enclosing loop's iteration variable referenced inside the
//     goroutine body instead of being passed as an argument. Per-
//     iteration loop variables (Go 1.22) make this safe in this module,
//     but the capture still reads as pre-1.22 shared state and breaks
//     the moment the code is vendored into an older-language module, so
//     the explicit parameter form is enforced;
//   - an unsynchronized write to a variable captured from the enclosing
//     function: a plain assignment, ++/--, or a map-element store on a
//     captured map. Disjoint-index writes into a captured slice (the
//     worker pools' per-trial result slots) are the sanctioned pattern
//     and are not flagged; everything else needs a channel, a mutex
//     moved into the data structure, or a reasoned //lint:ignore.
//
// Unlike the model-code-only checks, GoCapture applies everywhere: a
// racy goroutine in a cmd/ driver corrupts results just as surely.
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "goroutine literal captures a loop variable or writes shared state unsynchronized",
	Run:  runGoCapture,
}

func runGoCapture(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			inspectGoStmts(p, fd.Body, nil)
			return false
		})
	}
}

// inspectGoStmts walks stmts tracking the loop variables in scope; at
// each `go` statement with a function-literal callee it checks the
// literal's body.
func inspectGoStmts(p *Pass, n ast.Node, loopVars []*types.Var) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			vars := loopVars
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := p.Pkg.Info.Defs[id].(*types.Var); ok {
						vars = append(vars, v)
					}
				}
			}
			inspectGoStmts(p, n.Body, vars)
			return false
		case *ast.ForStmt:
			vars := loopVars
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if v, ok := p.Pkg.Info.Defs[id].(*types.Var); ok {
							vars = append(vars, v)
						}
					}
				}
			}
			inspectGoStmts(p, n.Body, vars)
			return false
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkGoLiteral(p, lit, loopVars)
			}
			// The call's arguments are evaluated at `go` time and are
			// safe; keep walking them (they may nest further literals).
			return true
		}
		return true
	})
}

// checkGoLiteral reports loop-variable captures and unsynchronized
// captured-state writes inside one goroutine literal.
func checkGoLiteral(p *Pass, lit *ast.FuncLit, loopVars []*types.Var) {
	captured := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.Pos() == 0 {
			return false
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	}
	isLoopVar := func(obj types.Object) bool {
		for _, lv := range loopVars {
			if obj == lv {
				return true
			}
		}
		return false
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[n]; obj != nil && isLoopVar(obj) {
				p.Reportf(n.Pos(), "goroutine captures loop variable %s; pass it as an argument to the function literal", n.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkCapturedWrite(p, lhs, captured)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(p, n.X, captured)
		}
		return true
	})
}

// checkCapturedWrite flags a write target that is a captured variable
// (plain identifier) or an element of a captured map. Writes through
// selectors and slice indices are left to the race detector: the former
// are usually guarded by the object's own mutex and the latter are the
// sanctioned disjoint-slot pattern.
func checkCapturedWrite(p *Pass, lhs ast.Expr, captured func(types.Object) bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[lhs]; obj != nil && captured(obj) {
			p.Reportf(lhs.Pos(), "goroutine writes captured variable %s without synchronization; use a channel or per-goroutine slot", lhs.Name)
		}
	case *ast.IndexExpr:
		id, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil || !captured(obj) {
			return
		}
		if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
			p.Reportf(lhs.Pos(), "goroutine writes captured map %s; map writes race — use a channel or lock inside the owning type", id.Name)
		}
	}
}
