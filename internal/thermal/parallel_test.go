package thermal

import (
	"math"
	"runtime"
	"testing"
)

// testGrid returns a deliberately non-uniform power map: a hot block in
// one quadrant over a warm floor, so the field has structure in every
// direction.
func testGrid(cfg Config, totalW float64) [][]float64 {
	grid := make([][]float64, cfg.Ny)
	floor := totalW * 0.4 / float64(cfg.Nx*cfg.Ny)
	hot := totalW * 0.6 / float64((cfg.Nx/3)*(cfg.Ny/3))
	for y := range grid {
		grid[y] = make([]float64, cfg.Nx)
		for x := range grid[y] {
			grid[y][x] = floor
			if x < cfg.Nx/3 && y < cfg.Ny/3 {
				grid[y][x] += hot
			}
		}
	}
	return grid
}

func solveOnce(t *testing.T, cfg Config, workers int, precondition bool) (*State, int, int) {
	t.Helper()
	m := NewModel(cfg)
	st := m.NewState()
	if err := st.SetPower(0, testGrid(cfg, 40)); err != nil {
		t.Fatal(err)
	}
	if len(m.HeatLayers()) > 1 {
		if err := st.SetPower(1, testGrid(cfg, 12)); err != nil {
			t.Fatal(err)
		}
	}
	coarse := 0
	if precondition {
		var ok bool
		coarse, ok = func() (int, bool) { return st.Precondition(1e-4, 40000) }()
		if !ok {
			t.Fatal("coarse solve did not converge")
		}
		if coarse == 0 {
			t.Fatal("expected a real coarse solve for the full-resolution stack")
		}
	}
	iters, converged := st.SolveWith(1e-4, 40000, workers)
	if !converged {
		t.Fatalf("solve(workers=%d) did not converge", workers)
	}
	return st, iters, coarse
}

func requireIdenticalFields(t *testing.T, a, b *State, label string) {
	t.Helper()
	for i := range a.temp {
		if math.Float64bits(a.temp[i]) != math.Float64bits(b.temp[i]) {
			t.Fatalf("%s: temp[%d] differs: %x vs %x", label, i,
				math.Float64bits(a.temp[i]), math.Float64bits(b.temp[i]))
		}
	}
}

// TestSolveWorkerByteIdentity is the tentpole determinism regression:
// the same 3D stack solved with 1, 3 and 8 row bands — and with
// GOMAXPROCS pinned to 1 and to 8 around the default Solve — must
// produce byte-identical temperature fields and identical iteration
// counts. The red-black coloring makes every in-color update
// independent, so banding must not be observable.
func TestSolveWorkerByteIdentity(t *testing.T) {
	cfg := Stack3D(6.2, 8.4)
	ref, refIters, _ := solveOnce(t, cfg, 1, false)
	for _, workers := range []int{2, 3, 8} {
		st, iters, _ := solveOnce(t, cfg, workers, false)
		if iters != refIters {
			t.Fatalf("workers=%d: %d iters, want %d", workers, iters, refIters)
		}
		requireIdenticalFields(t, ref, st, "workers")
	}

	// The default Solve picks its band count from GOMAXPROCS; pin it to
	// both extremes.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	m := NewModel(cfg)
	solve := func() (*State, int) {
		st := m.NewState()
		if err := st.SetPower(0, testGrid(cfg, 40)); err != nil {
			t.Fatal(err)
		}
		if err := st.SetPower(1, testGrid(cfg, 12)); err != nil {
			t.Fatal(err)
		}
		iters, converged := st.Solve(1e-4, 40000)
		if !converged {
			t.Fatal("default Solve did not converge")
		}
		return st, iters
	}
	st1, it1 := solve()
	runtime.GOMAXPROCS(8)
	stN, itN := solve()
	if it1 != itN {
		t.Fatalf("GOMAXPROCS 1 vs 8: %d vs %d iters", it1, itN)
	}
	requireIdenticalFields(t, st1, stN, "GOMAXPROCS")
	requireIdenticalFields(t, ref, st1, "SolveWith(1) vs Solve")
}

// TestPreconditionDeterministicAndEffective checks the coarse-grid
// preconditioner both ways: a preconditioned solve is itself
// byte-identical at any worker count (the coarse solve is serial and
// the prolongation is a pure function of it), and it cuts the fine-grid
// iteration count against a cold start.
func TestPreconditionDeterministicAndEffective(t *testing.T) {
	cfg := Stack3D(6.2, 8.4)
	_, coldIters, _ := solveOnce(t, cfg, 1, false)
	ref, preIters, coarse := solveOnce(t, cfg, 1, true)
	for _, workers := range []int{2, 8} {
		st, iters, c := solveOnce(t, cfg, workers, true)
		if iters != preIters || c != coarse {
			t.Fatalf("workers=%d: (%d fine, %d coarse) iters, want (%d, %d)",
				workers, iters, c, preIters, coarse)
		}
		requireIdenticalFields(t, ref, st, "preconditioned")
	}
	if preIters >= coldIters {
		t.Errorf("preconditioned fine solve took %d iters, cold %d — no benefit", preIters, coldIters)
	}
	t.Logf("fine iters: cold %d, preconditioned %d (+%d coarse)", coldIters, preIters, coarse)
}

// TestPreconditionTinyGridNoop: a stack too small to coarsen reports
// (0, true) and leaves the field untouched.
func TestPreconditionTinyGridNoop(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	cfg.Nx, cfg.Ny = 4, 4
	st := NewModel(cfg).NewState()
	before := st.Clone()
	iters, ok := st.Precondition(1e-4, 1000)
	if iters != 0 || !ok {
		t.Fatalf("Precondition on 4x4 = (%d, %v), want (0, true)", iters, ok)
	}
	requireIdenticalFields(t, before, st, "tiny-grid noop")
}

// TestSetPowerRaggedGrid: every row is validated, so a short inner row
// (or an empty grid) is an error, never an index-out-of-range panic.
func TestSetPowerRaggedGrid(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)

	grid := make([][]float64, cfg.Ny)
	for y := range grid {
		grid[y] = make([]float64, cfg.Nx)
	}
	grid[cfg.Ny/2] = grid[cfg.Ny/2][:cfg.Nx-1] // ragged inner row
	if err := s.SetPower(0, grid); err == nil {
		t.Error("ragged inner row accepted")
	}

	if err := s.SetPower(0, [][]float64{}); err == nil {
		t.Error("empty grid accepted")
	}
	if err := s.SetPower(0, make([][]float64, cfg.Ny)); err == nil {
		t.Error("grid of nil rows accepted")
	}
	if err := s.SetPower(-1, grid); err == nil {
		t.Error("negative die accepted")
	}
	if err := s.SetPower(5, grid); err == nil {
		t.Error("out-of-range die accepted")
	}
}

// TestCloneIsolation: mutating a clone never touches its source.
func TestCloneIsolation(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	m := NewModel(cfg)
	st := m.NewState()
	if err := st.SetPower(0, testGrid(cfg, 40)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Solve(1e-3, 40000); !ok {
		t.Fatal("solve did not converge")
	}
	orig := st.Clone()
	clone := st.Clone()
	clone.temp[0] = -1000
	clone.power[0] = 99
	requireIdenticalFields(t, orig, st, "clone isolation")
	if math.Float64bits(orig.power[0]) != math.Float64bits(st.power[0]) {
		t.Fatal("clone power write leaked into source")
	}
}

// --- microbenchmarks (wired as `make bench-thermal`) -------------------------

func benchState(b *testing.B, cfg Config) *State {
	b.Helper()
	m := NewModel(cfg)
	st := m.NewState()
	if err := st.SetPower(0, testGrid(cfg, 40)); err != nil {
		b.Fatal(err)
	}
	if len(m.HeatLayers()) > 1 {
		if err := st.SetPower(1, testGrid(cfg, 12)); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

const benchTol = 1e-4

// BenchmarkSolveCold measures a from-ambient fine-grid solve.
func BenchmarkSolveCold(b *testing.B) {
	cfg := Stack3D(6.2, 8.4)
	proto := benchState(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := proto.Clone()
		for j := range st.temp {
			st.temp[j] = st.m.ambient
		}
		if _, ok := st.Solve(benchTol, 100000); !ok {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkSolveWarm measures re-solving from an already-converged
// field (the old warm-start path's best case).
func BenchmarkSolveWarm(b *testing.B) {
	cfg := Stack3D(6.2, 8.4)
	proto := benchState(b, cfg)
	if _, ok := proto.Solve(benchTol, 100000); !ok {
		b.Fatal("no convergence")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := proto.Clone()
		if _, ok := st.Solve(benchTol, 100000); !ok {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkSolvePreconditioned measures the production path: cold state,
// coarse-grid preconditioner, fine solve.
func BenchmarkSolvePreconditioned(b *testing.B) {
	cfg := Stack3D(6.2, 8.4)
	proto := benchState(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := proto.Clone()
		for j := range st.temp {
			st.temp[j] = st.m.ambient
		}
		if _, ok := st.Precondition(benchTol, 100000); !ok {
			b.Fatal("coarse solve did not converge")
		}
		if _, ok := st.Solve(benchTol, 100000); !ok {
			b.Fatal("no convergence")
		}
	}
}
