// Package dtm implements dynamic thermal management over the transient
// thermal model: a sensor-driven DVFS controller that throttles the chip
// when the hottest cell crosses a trigger threshold and releases the
// throttle once it cools. The paper invokes exactly this mechanism in
// §3.2 — "higher temperatures will either require better cooling
// capacities or dynamic thermal management (DTM) that can lead to
// performance loss" — and the DTM experiment quantifies that loss for
// the 3D reliable processor against the 2d-a baseline.
//
// The controller works on power-map phases (per-die W/cell grids at the
// nominal frequency); throttling scales the maps by the cubic DVFS
// factor (voltage tracks frequency, §3.3). Performance loss is the
// time-weighted frequency deficit — an upper bound, since memory-bound
// phases lose less (§3.3); the experiment reports it alongside the
// residency statistics.
package dtm

import (
	"fmt"

	"r3d/internal/power"
	"r3d/internal/stats"
	"r3d/internal/thermal"
)

// Policy is the throttling policy.
type Policy struct {
	// TriggerC engages the throttle; ReleaseC (must be lower) disengages
	// it — the hysteresis band prevents oscillation.
	TriggerC, ReleaseC thermal.Celsius
	// StepGHz is the frequency adjustment per control interval.
	StepGHz float64
	// MinGHz/MaxGHz bound the DVFS range.
	MinGHz, MaxGHz float64
	// IntervalMs is the control (sensor sampling) period.
	IntervalMs float64
}

// DefaultPolicy returns an 85 °C trigger policy over the paper's 2 GHz
// operating point with 100 MHz steps and a 1 ms control loop.
func DefaultPolicy() Policy {
	return Policy{TriggerC: 85, ReleaseC: 82, StepGHz: 0.1, MinGHz: 1.0, MaxGHz: 2.0, IntervalMs: 1}
}

// Validate reports malformed policies.
func (p Policy) Validate() error {
	if p.TriggerC <= p.ReleaseC {
		return fmt.Errorf("dtm: trigger %.1f must exceed release %.1f", p.TriggerC, p.ReleaseC)
	}
	if p.StepGHz <= 0 || p.MinGHz <= 0 || p.MaxGHz <= p.MinGHz {
		return fmt.Errorf("dtm: bad frequency range")
	}
	if p.IntervalMs <= 0 {
		return fmt.Errorf("dtm: non-positive control interval")
	}
	return nil
}

// Phase is one workload phase: per-die power grids at the nominal
// frequency, held for Duration.
type Phase struct {
	DurationMs float64
	// Grids holds one power map per heat layer (die 1 first; nil second
	// entry for 2D stacks).
	Grids [][][]float64
}

// Stats accumulates a DTM run.
type Stats struct {
	TimeMs        float64
	ThrottledMs   float64
	MeanFreqGHz   float64         // time-weighted
	PeakC         thermal.Celsius // hottest sample ever seen
	FinalC        thermal.Celsius
	Residency     *stats.Histogram // frequency residency, GHz
	Interventions uint64           // throttle engagements
}

// PerfLossPct returns the time-weighted frequency deficit relative to
// the maximum frequency, in percent.
func (s Stats) PerfLossPct(maxGHz float64) float64 {
	if maxGHz <= 0 {
		return 0
	}
	return (1 - s.MeanFreqGHz/maxGHz) * 100
}

// Controller is one DTM instance.
type Controller struct {
	tr      *thermal.Transient
	pol     Policy
	freqGHz float64
	// throttled latches the hysteresis state.
	throttled bool
	st        Stats
	weighted  float64 // ∫f dt, ms·GHz
}

// New builds a controller over a fresh transient model of the given
// stack.
func New(cfg thermal.Config, pol Policy) (*Controller, error) {
	return NewFromModel(thermal.NewModel(cfg), pol)
}

// NewFromModel builds a controller over a shared immutable thermal
// model, so repeated DTM runs on the same stack skip the conductance
// precompute. The controller owns a private transient state.
func NewFromModel(m *thermal.Model, pol Policy) (*Controller, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		tr:      thermal.NewTransientFromModel(m),
		pol:     pol,
		freqGHz: pol.MaxGHz,
	}
	c.st.Residency = stats.NewHistogram(pol.MinGHz-pol.StepGHz/2, pol.MaxGHz+pol.StepGHz/2, int((pol.MaxGHz-pol.MinGHz)/pol.StepGHz)+1)
	return c, nil
}

// FreqGHz returns the current operating frequency.
func (c *Controller) FreqGHz() float64 { return c.freqGHz }

// Transient exposes the thermal state (for heatmaps).
func (c *Controller) Transient() *thermal.Transient { return c.tr }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats {
	s := c.st
	if s.TimeMs > 0 {
		s.MeanFreqGHz = c.weighted / s.TimeMs
	}
	s.FinalC = c.tr.Solver().PeakAllC()
	return s
}

// RunPhase holds the phase's power maps for its duration, sampling the
// sensor and adjusting frequency every control interval.
func (c *Controller) RunPhase(p Phase) error {
	if p.DurationMs <= 0 {
		return fmt.Errorf("dtm: non-positive phase duration")
	}
	if len(p.Grids) == 0 {
		return fmt.Errorf("dtm: phase without power grids")
	}
	remaining := p.DurationMs
	for remaining > 0 {
		step := c.pol.IntervalMs
		if step > remaining {
			step = remaining
		}
		remaining -= step

		// Apply the throttled power maps.
		scale := power.DVFSScale(c.freqGHz / c.pol.MaxGHz)
		for die, g := range p.Grids {
			if g == nil {
				continue
			}
			scaled := make([][]float64, len(g))
			for y := range g {
				scaled[y] = make([]float64, len(g[y]))
				for x := range g[y] {
					scaled[y][x] = g[y][x] * scale
				}
			}
			if err := c.tr.Solver().SetPower(die, scaled); err != nil {
				return err
			}
		}
		if err := c.tr.Step(step * 1e9); err != nil { // ms → ps
			return err
		}

		// Sense and act.
		peak := c.tr.Solver().PeakAllC()
		if peak > c.st.PeakC {
			c.st.PeakC = peak
		}
		switch {
		case peak > c.pol.TriggerC:
			if !c.throttled {
				c.st.Interventions++
			}
			c.throttled = true
			if c.freqGHz > c.pol.MinGHz {
				c.freqGHz -= c.pol.StepGHz
				if c.freqGHz < c.pol.MinGHz {
					c.freqGHz = c.pol.MinGHz
				}
			}
		case peak < c.pol.ReleaseC:
			c.throttled = false
			if c.freqGHz < c.pol.MaxGHz {
				c.freqGHz += c.pol.StepGHz
				if c.freqGHz > c.pol.MaxGHz {
					c.freqGHz = c.pol.MaxGHz
				}
			}
		}

		c.st.TimeMs += step
		c.weighted += step * c.freqGHz
		if c.throttled {
			c.st.ThrottledMs += step
		}
		c.st.Residency.Add(c.freqGHz, step)
	}
	return nil
}
