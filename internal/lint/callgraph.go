package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds a whole-program call graph over the module's typed
// ASTs. The graph is deliberately conservative: an edge is recorded for
// every *reference* to a function object — a call, a method value, a
// function assigned to a variable or passed as an argument — because a
// referenced function may run later even if the reference site is not a
// call expression. Dynamic dispatch through an interface cannot be
// resolved statically, so interface-method references carry the set of
// concrete module methods that implement the interface as fallback
// candidates. Calls through plain function-typed values (fields,
// variables, parameters) have no callee object at all and produce no
// edge; analyzers that need soundness there must rely on the edge
// recorded where the function value was originally referenced.

// A FuncRef is one reference to a function object inside a graph node.
type FuncRef struct {
	Obj  *types.Func // referenced function or method (module or stdlib)
	Pos  token.Pos
	Call bool // reference is the callee of a call expression
	// Iface marks a selection whose receiver is an interface; Obj is
	// then the interface method and Candidates the concrete module
	// methods dispatch may reach.
	Iface      bool
	Candidates []*types.Func
}

// A CallNode is one module-defined function or method with every
// function reference in its body (including references inside nested
// function literals, which are attributed to the enclosing
// declaration).
type CallNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	Refs []FuncRef
}

// A CallGraph holds the module's call nodes plus the function
// references made from package-level variable initializers (which run
// at init time and belong to no declared function).
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
	// InitRefs lists file-scope references per package, e.g. a
	// package-level `var t0 = time.Now()`.
	InitRefs map[*Package][]FuncRef
}

// BuildCallGraph constructs the module call graph over the loaded
// packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		Nodes:    map[*types.Func]*CallNode{},
		InitRefs: map[*Package][]FuncRef{},
	}
	ir := newIfaceResolver(pkgs)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok || d.Body == nil {
						continue
					}
					cg.Nodes[obj] = &CallNode{
						Fn:   obj,
						Pkg:  pkg,
						Decl: d,
						Refs: collectRefs(pkg, d.Body, ir),
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							cg.InitRefs[pkg] = append(cg.InitRefs[pkg], collectRefs(pkg, v, ir)...)
						}
					}
				}
			}
		}
	}
	return cg
}

// SortedNodes returns the graph's nodes in source-position order, so
// every traversal over the graph is deterministic.
func (cg *CallGraph) SortedNodes() []*CallNode {
	nodes := make([]*CallNode, 0, len(cg.Nodes))
	//lint:ignore maporder the node list is sorted by position below before any use
	for _, n := range cg.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Fn.Pos() < nodes[j].Fn.Pos() })
	return nodes
}

// collectRefs gathers every function reference under n. Callee idents
// of call expressions are marked Call; selections through an interface
// receiver are resolved to their concrete candidates.
func collectRefs(pkg *Package, n ast.Node, ir *ifaceResolver) []FuncRef {
	// First pass: remember which idents are the callee of a call, so
	// the ident walk below can tell calls from value references.
	callee := map[*ast.Ident]bool{}
	ifaceSel := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				callee[fun] = true
			case *ast.SelectorExpr:
				callee[fun.Sel] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[n]; ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					ifaceSel[n.Sel] = true
				}
			}
		}
		return true
	})

	var refs []FuncRef
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		ref := FuncRef{Obj: obj, Pos: id.Pos(), Call: callee[id]}
		if ifaceSel[id] {
			ref.Iface = true
			ref.Candidates = ir.candidates(obj)
		}
		refs = append(refs, ref)
		return true
	})
	return refs
}

// ifaceResolver maps interface methods to the concrete module methods
// that may satisfy dynamic dispatch, computed lazily and cached.
type ifaceResolver struct {
	pkgs  []*types.Package
	named []*types.Named // every named type declared in the module
	cache map[*types.Func][]*types.Func
}

func newIfaceResolver(pkgs []*Package) *ifaceResolver {
	ir := &ifaceResolver{cache: map[*types.Func][]*types.Func{}}
	for _, pkg := range pkgs {
		ir.pkgs = append(ir.pkgs, pkg.Types)
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				ir.named = append(ir.named, named)
			}
		}
	}
	return ir
}

// candidates returns the concrete module methods an interface-method
// call may dispatch to, in declaration order.
func (ir *ifaceResolver) candidates(m *types.Func) []*types.Func {
	if c, ok := ir.cache[m]; ok {
		return c
	}
	var cands []*types.Func
	sig, ok := m.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, named := range ir.named {
				if types.IsInterface(named) {
					continue
				}
				ptr := types.NewPointer(named)
				if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok {
					cands = append(cands, fn)
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Pos() < cands[j].Pos() })
	ir.cache[m] = cands
	return cands
}
