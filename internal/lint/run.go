package lint

// Analyzers returns the full determinism/hygiene suite in a fixed
// order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, GlobalRand, WallClock, FloatCmp, ErrDrop}
}

// Run applies the analyzers to every package, filters out findings
// covered by a reasoned //lint:ignore directive, and returns the
// remainder sorted by position. Malformed directives are included as
// findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg.Fset, []*Package{pkg})
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
			}
			pass.report = func(f Finding) {
				if !ignores.suppressed(f) {
					findings = append(findings, f)
				}
			}
			a.Run(pass)
		}
	}
	sortFindings(findings)
	return findings
}

// RunModule is the driver entry point: load the module containing dir
// and run the full suite over it.
func RunModule(dir string) (*Module, []Finding, error) {
	m, err := LoadModule(dir)
	if err != nil {
		return nil, nil, err
	}
	return m, Run(m.Pkgs, Analyzers()), nil
}
