package fault

import (
	"testing"

	"r3d/internal/core"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/tech"
	"r3d/internal/trace"
)

func newSystem(t *testing.T, bench string, seed int64, maxGHz float64) *core.System {
	t.Helper()
	b, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.MustGenerator(b.Profile, seed)
	lead, err := ooo.New(ooo.Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Default(ooo.Default())
	if maxGHz > 0 {
		cfg.CheckerMaxFreqGHz = maxGHz
	}
	s, err := core.New(cfg, lead)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCampaignValidate(t *testing.T) {
	bad := CampaignConfig{}
	if err := bad.Validate(); err == nil {
		t.Error("zero instructions accepted")
	}
	bad = CampaignConfig{Instructions: 1, LeadSoftPerMCycle: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	bad = CampaignConfig{Instructions: 1, EnableTiming: true}
	if err := bad.Validate(); err == nil {
		t.Error("timing without critical path accepted")
	}
	if _, err := RunCampaign(newSystem(t, "gzip", 1, 0), CampaignConfig{}); err == nil {
		t.Error("RunCampaign must reject invalid config")
	}
}

func TestLeadingSoftErrorsAllDetectedAndRecovered(t *testing.T) {
	sys := newSystem(t, "gzip", 2, 0)
	res, err := RunCampaign(sys, CampaignConfig{
		Instructions:      120000,
		LeadSoftPerMCycle: 150, // aggressive acceleration
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeadInjected < 3 {
		t.Fatalf("too few injections to judge: %d", res.LeadInjected)
	}
	if res.Detected < res.LeadInjected {
		t.Errorf("detected %d < injected %d: the checking process must catch every leading-core error",
			res.Detected, res.LeadInjected)
	}
	if res.Unrecovered != 0 {
		t.Errorf("leading-core errors must be recoverable (clean trailer RF), got %d unrecovered", res.Unrecovered)
	}
	if res.Coverage() < 1 {
		t.Errorf("coverage %.2f < 1", res.Coverage())
	}
	if res.MeanDetectSlack <= 0 || res.MeanDetectSlack > core.DefaultRVQSize {
		t.Errorf("implausible detection slack %.1f", res.MeanDetectSlack)
	}
}

func TestCheckerMBUsCanBeUnrecoverable(t *testing.T) {
	// At 45 nm critical charges the MBU fraction is substantial; some
	// checker-side upsets must land beyond ECC and, when subsequently
	// read during a detection, count as unrecoverable.
	sys := newSystem(t, "vortex", 3, 0)
	soft, err := NewSoftErrorInjector(tech.Node45, 40, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	sys.Lead().SetFetchBudget(150000)
	for sys.Lead().Stats().Instructions < 150000 && !sys.Lead().Drained() {
		soft.Tick(sys)
		sys.Step()
	}
	if soft.MBUs == 0 {
		t.Fatal("45 nm campaign produced no MBUs")
	}
	st := sys.Stats()
	if st.ErrorsDetected == 0 {
		t.Fatal("RF corruptions never surfaced")
	}
	if st.ErrorsUnrecovered == 0 {
		t.Error("expected some unrecoverable errors from multi-bit RF upsets")
	}
}

func TestOlderNodeHasFewerMBUs(t *testing.T) {
	run := func(node tech.Node) uint64 {
		sys := newSystem(t, "gzip", 4, 0)
		soft, err := NewSoftErrorInjector(node, 0, 600, 13)
		if err != nil {
			t.Fatal(err)
		}
		sys.Lead().SetFetchBudget(80000)
		for sys.Lead().Stats().Instructions < 80000 && !sys.Lead().Drained() {
			soft.Tick(sys)
			sys.Step()
		}
		return soft.MBUs
	}
	if m90, m45 := run(tech.Node90), run(tech.Node45); m90 >= m45 {
		t.Errorf("90 nm MBUs (%d) should be below 45 nm (%d)", m90, m45)
	}
}

func TestTimingInjectorSlackSuppression(t *testing.T) {
	// §3.5: at 0.6·f each stage has huge slack and the timing error
	// probability collapses versus full-frequency operation.
	inj := NewTimingInjector(tech.Node65, 500, 1, 1)
	atPeak := inj.ExpectedStageErrorProb(500)
	atSixty := inj.ExpectedStageErrorProb(833)
	if atSixty >= atPeak/1000 {
		t.Errorf("0.6f stage error prob %.3g should be orders below peak %.3g", atSixty, atPeak)
	}
}

func TestTimingInjectorOlderProcessMoreRobust(t *testing.T) {
	// §4: the 90 nm die suffers less variability, so at equal *relative*
	// slack its stage error probability is lower.
	new65 := NewTimingInjector(tech.Node45, 500, 1, 1)
	old90 := NewTimingInjector(tech.Node90, 500, 1, 1)
	p65 := new65.ExpectedStageErrorProb(550)
	p90 := old90.ExpectedStageErrorProb(550)
	if p90 >= p65 {
		t.Errorf("older process should be more robust: %g vs %g", p90, p65)
	}
}

func TestTimingCampaignInjectsAtTightSlack(t *testing.T) {
	// Cap the checker at full frequency demand (mesa) so it often runs
	// near its critical path, then check the injector fires and errors
	// are detected.
	sys := newSystem(t, "mesa", 5, 0)
	res, err := RunCampaign(sys, CampaignConfig{
		Instructions: 100000,
		EnableTiming: true,
		TimingNode:   tech.Node65,
		CritPathPs:   495, // nearly the full 500 ps period
		TimingAccel:  0.02,
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimingInjected == 0 {
		t.Fatal("timing injector never fired despite near-critical operation")
	}
	if res.Detected == 0 {
		t.Error("timing corruptions never detected")
	}
}

func TestDeterministicCampaign(t *testing.T) {
	run := func() CampaignResult {
		sys := newSystem(t, "twolf", 6, 0)
		res, err := RunCampaign(sys, CampaignConfig{
			Instructions:         60000,
			LeadSoftPerMCycle:    80,
			CheckerSoftPerMCycle: 80,
			Seed:                 23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Errorf("campaign not deterministic:\n%+v\n%+v", a, b)
	}
}
