package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// Fixtures share one FileSet and one stdlib source importer so each
// test pays the (cached) cost of type-checking fmt/time/math-rand once.
var (
	fixFset = token.NewFileSet()
	fixStd  = importer.ForCompiler(fixFset, "source", nil)
)

// modelPath places a fixture inside model code (internal/), where all
// five checks apply; driverPath places it in cmd/, exempt from the
// model-code-only checks.
const (
	modelPath  = "r3d/internal/fixture"
	driverPath = "r3d/cmd/fixture"
)

// checkFixture parses and type-checks one in-memory source file as a
// package with the given import path.
func checkFixture(t *testing.T, ipath, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fixFset, ipath+"/fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: fixStd}
	tpkg, err := cfg.Check(ipath, fixFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return &Package{Path: ipath, Fset: fixFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// fixtureFile is one in-memory package of a multi-package fixture.
type fixtureFile struct {
	path string // import path
	src  string
}

// fixtureImporter resolves already-checked fixture packages, then falls
// back to the stdlib source importer — the in-memory analogue of the
// loader's moduleImporter.
type fixtureImporter struct{ pkgs map[string]*Package }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p.Types, nil
	}
	return fixStd.Import(path)
}

// checkModuleFixture type-checks several in-memory packages in order
// (earlier entries are importable by later ones), returning them as a
// loaded-module slice for the whole-program analyzers.
func checkModuleFixture(t *testing.T, files []fixtureFile) []*Package {
	t.Helper()
	byPath := map[string]*Package{}
	var pkgs []*Package
	for _, ff := range files {
		f, err := parser.ParseFile(fixFset, ff.path+"/fixture.go", ff.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", ff.path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		cfg := types.Config{Importer: &fixtureImporter{pkgs: byPath}}
		tpkg, err := cfg.Check(ff.path, fixFset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck fixture %s: %v", ff.path, err)
		}
		p := &Package{Path: ff.path, Fset: fixFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
		byPath[ff.path] = p
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// findings runs a single analyzer over one fixture (suppressions
// applied, as in the real driver) and returns the result.
func findings(t *testing.T, a *Analyzer, ipath, src string) []Finding {
	t.Helper()
	return Run([]*Package{checkFixture(t, ipath, src)}, []*Analyzer{a})
}

// wantChecks asserts the findings' check names, in order.
func wantChecks(t *testing.T, got []Finding, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s), want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Check != want[i] {
			t.Errorf("finding %d: check %q, want %q (%v)", i, got[i].Check, want[i], got[i])
		}
	}
}
