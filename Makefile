# Developer entry points. `make lint` is the same gate that
# `go test ./...` enforces through the repo-wide lint_test.go; running
# it directly gives faster, file:line-only feedback.

GO ?= go

.PHONY: all build test lint lint-strict lint-json race race-engine fmt campaign-smoke bench-fast

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt -l prints offending files but always exits 0; fail if it
# printed anything.
lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/r3dlint ./...

# Zero-tolerance gate for CI: every unsuppressed finding across the
# module fails the build (exit 1; exit 2 is a usage/load error). The
# plain `lint` target above is the same run plus gofmt/vet.
lint-strict:
	$(GO) run ./cmd/r3dlint ./...

# Machine-readable findings on stdout — the byte-stable JSON array that
# `-baseline` consumes. Exit code matches lint-strict, so CI can both
# gate and archive the report in one step:
#   make -s lint-json > findings.json || true
#   go run ./cmd/r3dlint -baseline findings.json ./...
lint-json:
	$(GO) run ./cmd/r3dlint -json ./...

# Race instrumentation slows the thermal suite well past the default
# 10-minute per-package limit; give the run the time it needs. (The
# full-suite byte-identity test skips itself under -race; the targeted
# concurrency tests below cover the parallel paths instead.)
race:
	$(GO) test -race -timeout 45m ./...

# Quick race pass over just the concurrent machinery: the experiment
# session's concurrency tests (engine-backed memoization, thermal
# lock), the run engine and the campaign worker pool. The rest of the
# experiment suite is serial render code — `make race` covers it.
race-engine:
	$(GO) test -race -count=1 -run 'Concurrent|WorkerCount|Race' ./internal/experiment/
	$(GO) test -race -count=1 ./internal/runsched/ ./internal/campaign/

fmt:
	gofmt -w .

# End-to-end harness smoke: a small grid (8 trials plus a deliberate
# livelock) journaled to disk, then resumed from the same journal. The
# resumed report must be byte-identical to the fresh one and the wedged
# self-test trial must be reported hung.
campaign-smoke: GRID = -bench gzip,mesa -seeds 2 -leadrates 40,80 -n 40000 \
	-workers 2 -livelock-trial -livelock-after 3000 -json
campaign-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/r3dfault $(GRID) -journal "$$tmp/run.jsonl" > "$$tmp/fresh.json" && \
	$(GO) run ./cmd/r3dfault $(GRID) -journal "$$tmp/run.jsonl" -resume > "$$tmp/resumed.json" && \
	cmp "$$tmp/fresh.json" "$$tmp/resumed.json" || { echo "campaign-smoke: resume not byte-identical"; exit 1; }; \
	grep -q '"status": "hung"' "$$tmp/resumed.json" || { echo "campaign-smoke: livelock trial not hung"; exit 1; }; \
	echo "campaign-smoke: OK"

# Engine smoke: the fast suite rendered serially and across $(nproc)
# workers must be byte-identical on stdout; the parallel run prints its
# engine counters (stderr) so cache hits and dedup are visible.
bench-fast:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/r3dbench" ./cmd/r3dbench && \
	"$$tmp/r3dbench" -fast -workers 1 > "$$tmp/w1.txt" && \
	"$$tmp/r3dbench" -fast -workers "$$(nproc)" -stats > "$$tmp/wN.txt" && \
	cmp "$$tmp/w1.txt" "$$tmp/wN.txt" || { echo "bench-fast: output differs across worker counts"; exit 1; }; \
	echo "bench-fast: OK (byte-identical at 1 and $$(nproc) workers)"
