package experiment

import (
	"fmt"
	"strings"

	"r3d/internal/core"
	"r3d/internal/dtm"
	"r3d/internal/floorplan"
	"r3d/internal/inorder"
	"r3d/internal/noc"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/power"
	"r3d/internal/thermal"
	"r3d/internal/trace"
)

// --- Hard-error degraded mode (§2, footnote 1) -------------------------------

// DegradedRow compares one benchmark across the healthy out-of-order
// core and the checker running the workload alone after a hard error.
type DegradedRow struct {
	Bench       string
	OoOIPC      float64
	InOrderIPC  float64
	SlowdownPct float64
}

// DegradedModeResult is the hard-error study.
type DegradedModeResult struct {
	Rows            []DegradedRow
	MeanSlowdownPct float64
}

// DegradedModeManifest declares the healthy-baseline windows; the
// in-order standalone runs are one-shot and not engine-cached.
func DegradedModeManifest(q Quality) []RunKey {
	return suiteLeadKeys(q, L2DA, nuca.DistributedSets, 0)
}

// DegradedMode quantifies footnote 1: after a hard error in the leading
// core, the full-fledged checker core executes the leading thread by
// itself — in order, without RVP's perfect operands, with a real branch
// predictor and data cache.
func DegradedMode(s *Session) (DegradedModeResult, error) {
	var res DegradedModeResult
	suite := s.Q.Suite()
	for _, b := range suite {
		name := b.Profile.Name
		healthy, err := s.Leading(name, L2DA, nuca.DistributedSets, 0)
		if err != nil {
			return res, err
		}
		g := trace.MustGenerator(b.Profile, s.Q.Seed)
		sa, err := inorder.NewStandalone(inorder.Default(), g, nuca.New(nuca.Config2DA(nuca.DistributedSets)), ooo.Default().MemLatencyCycles)
		if err != nil {
			return res, err
		}
		sa.Run(s.Q.WarmupInsts)
		before := sa.Stats()
		after := sa.Run(s.Q.WarmupInsts + s.Q.MeasureInsts)
		ipc := float64(after.Instructions-before.Instructions) / float64(after.Cycles-before.Cycles)
		row := DegradedRow{
			Bench:       name,
			OoOIPC:      healthy.IPC(),
			InOrderIPC:  ipc,
			SlowdownPct: (1 - ipc/healthy.IPC()) * 100,
		}
		res.Rows = append(res.Rows, row)
		res.MeanSlowdownPct += row.SlowdownPct / float64(len(suite))
	}
	return res, nil
}

// String renders the degraded-mode table.
func (r DegradedModeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hard-error degraded mode (checker as leading core, §2 fn.1)\n")
	fmt.Fprintf(&b, "  %-9s %8s %10s %10s\n", "bench", "OoO IPC", "in-order", "slowdown")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %8.2f %10.2f %9.1f%%\n", row.Bench, row.OoOIPC, row.InOrderIPC, row.SlowdownPct)
	}
	fmt.Fprintf(&b, "  mean slowdown %.1f%% — the \"performance penalty\" of tolerating a hard error\n", r.MeanSlowdownPct)
	return b.String()
}

// --- DTM study (§3.2's alternative to better cooling) ------------------------

// DTMStudyResult compares the 2d-a baseline and the 3d-2a reliable chip
// under an 85 °C throttling policy.
type DTMStudyResult struct {
	Policy          dtm.Policy
	Loss2DAPct      float64
	Loss3DPct       float64
	Peak2DAC        thermal.Celsius
	Peak3DC         thermal.Celsius
	Interventions3D uint64
}

// dtmGridRes is the transient model's grid resolution (coarser than the
// steady-state 50×50: explicit time stepping over hundreds of
// milliseconds at full resolution is needlessly slow for a
// throttling-policy study).
const dtmGridRes = 16

// DTMStudyManifest declares the suite-activity windows behind the
// transient power maps.
func DTMStudyManifest(q Quality) []RunKey {
	return activityKeys(q, L2DA)
}

// DTMStudy runs both chips for the given simulated time under the
// default DTM policy using suite-average power maps.
func DTMStudy(s *Session, horizonMs float64) (DTMStudyResult, error) {
	res := DTMStudyResult{Policy: dtm.DefaultPolicy()}
	act, rate6, err := s.SuiteActivity(L2DA)
	if err != nil {
		return res, err
	}
	rate15 := rate6 * 6 / 15

	run := func(model ChipModel, checkerW float64) (dtm.Stats, error) {
		fp := buildPlan(model, floorplan.DefaultOptions())
		die1 := power.LeadingCorePower(act, 1, 1)
		bank := power.L2BankPower(rate6, 1) + noc.RouterPowerW
		die2 := power.BlockPowers{}
		switch model {
		case M2DA:
			for i := 0; i < 6; i++ {
				die1[fmt.Sprintf("L2Bank%d", i)] = bank
			}
		case M3D2A:
			for i := 0; i < 6; i++ {
				die1[fmt.Sprintf("L2Bank%d", i)] = power.L2BankPower(rate15, 1) + noc.RouterPowerW
			}
			for i := 0; i < 9; i++ {
				die2[fmt.Sprintf("TopBank%d", i)] = power.L2BankPower(rate15, 1) + noc.RouterPowerW
			}
			die2["Checker"] = checkerW
		}
		// The transient stack is shared through the session's model
		// cache, so both DTM runs (and any repeat) skip the conductance
		// precompute; each controller still owns a private state.
		ctl, err := dtm.NewFromModel(s.thermalModel(fp, dtmGridRes), res.Policy)
		if err != nil {
			return dtm.Stats{}, err
		}
		grids := [][][]float64{fp.PowerGrid(floorplan.LayerDie1, die1, dtmGridRes, dtmGridRes)}
		if model == M3D2A {
			grids = append(grids, fp.PowerGrid(floorplan.LayerDie2, die2, dtmGridRes, dtmGridRes))
		}
		if err := ctl.RunPhase(dtm.Phase{DurationMs: horizonMs, Grids: grids}); err != nil {
			return dtm.Stats{}, err
		}
		return ctl.Stats(), nil
	}

	st2, err := run(M2DA, 0)
	if err != nil {
		return res, err
	}
	st3, err := run(M3D2A, power.CheckerPessimisticW)
	if err != nil {
		return res, err
	}
	res.Loss2DAPct = st2.PerfLossPct(res.Policy.MaxGHz)
	res.Loss3DPct = st3.PerfLossPct(res.Policy.MaxGHz)
	res.Peak2DAC = st2.PeakC
	res.Peak3DC = st3.PeakC
	res.Interventions3D = st3.Interventions
	return res, nil
}

// String renders the DTM study.
func (r DTMStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DTM study (§3.2: throttling instead of better cooling, %.0f °C trigger)\n", r.Policy.TriggerC)
	fmt.Fprintf(&b, "  2d-a:  peak %.1f °C, throttling loss %.1f%%\n", r.Peak2DAC, r.Loss2DAPct)
	fmt.Fprintf(&b, "  3d-2a (15 W checker): peak %.1f °C, throttling loss %.1f%% (%d interventions)\n",
		r.Peak3DC, r.Loss3DPct, r.Interventions3D)
	fmt.Fprintf(&b, "  the dynamic mechanism lands near the §3.3 static DVFS answer\n")
	return b.String()
}

// --- RVQ sizing ablation ------------------------------------------------------

// QueueSizingRow is one slack/queue configuration.
type QueueSizingRow struct {
	RVQSize       int
	SlowdownPct   float64
	MeanFreqGHz   float64
	MeanOccupancy float64
}

// QueueSizingResult sweeps the RVQ capacity around the paper's 200-entry
// design point.
type QueueSizingResult struct {
	Rows []QueueSizingRow
}

// rvqSweepSizes are the swept capacities around the paper's 200-entry
// design point.
var rvqSweepSizes = []int{25, 50, 100, 200, 400}

// QueueSizingManifest declares the sweep's windows: baselines plus one
// window per (size, bench).
func QueueSizingManifest(q Quality) []RunKey {
	keys := suiteLeadKeys(q, L2DA, nuca.DistributedSets, 0)
	for _, size := range rvqSweepSizes {
		for _, b := range q.Suite() {
			keys = append(keys, RVQSizeKey(q, b.Profile.Name, size))
		}
	}
	return keys
}

// QueueSizing evaluates the paper's queue-sizing choice (§2.1: "to
// accommodate a slack of 200 instructions, we implement a 200-entry
// RVQ"): smaller queues force tighter coupling and stall the leading
// core; larger ones buy nothing.
func QueueSizing(s *Session) (QueueSizingResult, error) {
	var res QueueSizingResult
	suite := s.Q.Suite()
	n := float64(len(suite))
	for _, size := range rvqSweepSizes {
		row := QueueSizingRow{RVQSize: size}
		var ipcBase float64
		for _, b := range suite {
			base, err := s.Leading(b.Profile.Name, L2DA, nuca.DistributedSets, 0)
			if err != nil {
				return res, err
			}
			ipcBase += base.IPC() / n
			r, err := s.rmtQueueSize(b.Profile.Name, size)
			if err != nil {
				return res, err
			}
			row.MeanFreqGHz += r.MeanFreqGHz / n
			row.MeanOccupancy += r.Sys.MeanRVQOccupancy() / n
			row.SlowdownPct += r.Lead.IPC() / n // accumulate IPC, convert below
		}
		row.SlowdownPct = (1 - row.SlowdownPct/ipcBase) * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// rmtQueueSize returns the memoized RMT window for an RVQ capacity.
func (s *Session) rmtQueueSize(bench string, size int) (RMTRun, error) {
	r, err := s.eng.Get(RVQSizeKey(s.Q, bench, size))
	return r.rmt, err
}

// computeRVQSize is the KindRVQSize window body: an RMT window with the
// swept queue capacity (thresholds scaled to the same 30%/60% points).
func (s *Session) computeRVQSize(k RunKey) (RMTRun, error) {
	cfg := core.Default(ooo.Default())
	cfg.RVQSize = k.RVQSize
	cfg.RVQLo = k.RVQSize * 3 / 10
	cfg.RVQHi = k.RVQSize * 6 / 10
	return s.runRMTWindow(k, cfg)
}

// String renders the queue-sizing sweep.
func (r QueueSizingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RVQ sizing ablation (§2.1 design point: 200 entries)\n")
	fmt.Fprintf(&b, "  %-8s %10s %10s %10s\n", "entries", "slowdown", "mean GHz", "mean occ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8d %9.2f%% %10.2f %10.0f\n", row.RVQSize, row.SlowdownPct, row.MeanFreqGHz, row.MeanOccupancy)
	}
	return b.String()
}
