package experiment

import (
	"fmt"

	"r3d/internal/floorplan"
	"r3d/internal/noc"
	"r3d/internal/power"
	"r3d/internal/thermal"
)

// ChipModel names the four physical organizations of §3.2/§3.3.
type ChipModel int

// Chip models.
const (
	M2DA ChipModel = iota
	M2D2A
	M3D2A
	M3DChecker
)

func (m ChipModel) String() string {
	switch m {
	case M2D2A:
		return "2d-2a"
	case M3D2A:
		return "3d-2a"
	case M3DChecker:
		return "3d-checker"
	default:
		return "2d-a"
	}
}

// ThermalCase is one thermal evaluation point.
type ThermalCase struct {
	Model ChipModel
	Opt   floorplan.Options
	// Act is the leading-core activity; L2Rate the per-bank access rate.
	Act    power.Activity
	L2Rate float64
	// CheckerW is the checker-core block power (the swept parameter of
	// Figures 4/5); ignored for M2DA.
	CheckerW float64
	// Scale multiplies every block power (the §3.3 DVFS study).
	Scale float64
	// TopLeakScale scales the static share of top-die banks (Table 8
	// leakage factor for a 90 nm top die).
	TopLeakScale float64
}

// ThermalResult reports the solved temperatures.
type ThermalResult struct {
	PeakC     thermal.Celsius // hottest active-layer cell anywhere
	PeakDie1C thermal.Celsius
	PeakDie2C thermal.Celsius // NaN-free: equals PeakDie1C for 2D models
	Iters     int
	// Converged is false when the solver hit ThermalMaxIters before
	// reaching ThermalTolC: the temperatures are estimates, not a settled
	// field. Each such solve also increments the session's thermal
	// warning counter (Session.ThermalWarnings).
	Converged bool
}

func (c ThermalCase) norm() ThermalCase {
	//lint:ignore floatcmp zero-value sentinel for an unset field, never a computed value
	if c.Scale == 0 {
		c.Scale = 1
	}
	//lint:ignore floatcmp zero-value sentinel for an unset field, never a computed value
	if c.TopLeakScale == 0 {
		c.TopLeakScale = 1
	}
	//lint:ignore floatcmp zero-value sentinel for an unset field, never a computed value
	if c.Opt.CheckerAreaScale == 0 {
		c.Opt = floorplan.DefaultOptions()
	}
	return c
}

func buildPlan(m ChipModel, opt floorplan.Options) *floorplan.Floorplan {
	switch m {
	case M2D2A:
		return floorplan.Build2D2A(opt)
	case M3D2A:
		return floorplan.Build3D2A(opt)
	case M3DChecker:
		return floorplan.Build3DChecker(opt)
	default:
		return floorplan.Build2DA()
	}
}

// SolveThermal evaluates one thermal case. Solvers are cached per
// geometry in the session so repeated cases (the per-benchmark sweeps)
// warm-start.
func (s *Session) SolveThermal(c ThermalCase) (ThermalResult, error) {
	_, res, err := s.SolveThermalDetailed(c)
	return res, err
}

// SolveThermalDetailed is SolveThermal but also returns the solver with
// its converged field (for heatmaps and further probing).
//
// The whole solve holds the session's thermal lock: warm-started
// solvers are stateful, so concurrent solves on one geometry would race
// and solve order changes the byte-exact result. Experiments therefore
// solve thermal cases in render order (serial); only the simulation
// windows behind them are parallelized.
func (s *Session) SolveThermalDetailed(c ThermalCase) (*thermal.Solver, ThermalResult, error) {
	s.thermalMu.Lock()
	defer s.thermalMu.Unlock()
	c = c.norm()
	fp := buildPlan(c.Model, c.Opt)
	if err := fp.Validate(); err != nil {
		return nil, ThermalResult{}, err
	}

	die1 := power.LeadingCorePower(c.Act, 1, 1)
	//lint:ignore maporder per-key scaling touches each entry exactly once; order-independent
	for k := range die1 {
		die1[k] *= c.Scale
	}
	bank := (power.L2BankPower(c.L2Rate, 1) + noc.RouterPowerW) * c.Scale
	die2 := power.BlockPowers{}
	switch c.Model {
	case M2DA:
		for i := 0; i < 6; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
	case M2D2A:
		for i := 0; i < 15; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
		die1["Checker"] = c.CheckerW * c.Scale
	case M3D2A:
		for i := 0; i < 6; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
		topBank := (power.L2BankPower(c.L2Rate, c.TopLeakScale) + noc.RouterPowerW) * c.Scale
		for i := 0; i < c.Opt.TopDieBanks; i++ {
			die2[fmt.Sprintf("TopBank%d", i)] = topBank
		}
		die2["Checker"] = c.CheckerW * c.Scale
	case M3DChecker:
		for i := 0; i < 6; i++ {
			die1[fmt.Sprintf("L2Bank%d", i)] = bank
		}
		die2["Checker"] = c.CheckerW * c.Scale
	}

	solver := s.solverFor(fp)
	if err := solver.SetPower(0, fp.PowerGrid(floorplan.LayerDie1, die1, thermal.GridResolution, thermal.GridResolution)); err != nil {
		return nil, ThermalResult{}, err
	}
	if fp.Layers == 2 {
		if err := solver.SetPower(1, fp.PowerGrid(floorplan.LayerDie2, die2, thermal.GridResolution, thermal.GridResolution)); err != nil {
			return nil, ThermalResult{}, err
		}
	}
	//lint:ignore blockhold serializing whole solves under thermalMu is the current contract: warm-started solvers are stateful and solve order changes the byte-exact result (ROADMAP item 2 parallelizes against this line)
	iters, converged := solver.Solve(s.Q.ThermalTolC, s.Q.ThermalMaxIters)
	if !converged {
		s.thermalWarn.Add(1)
	}
	res := ThermalResult{
		PeakC:     solver.PeakAllC(),
		PeakDie1C: solver.PeakC(0),
		PeakDie2C: solver.PeakC(0),
		Iters:     iters,
		Converged: converged,
	}
	if fp.Layers == 2 {
		res.PeakDie2C = solver.PeakC(1)
	}
	return solver, res, nil
}

// solverFor returns a cached solver for the floorplan's geometry. The
// map is initialized in NewParallelSession (never lazily — a lazy init
// here raced once Session went concurrent) and the caller must hold
// s.thermalMu.
func (s *Session) solverFor(fp *floorplan.Floorplan) *thermal.Solver {
	key := fmt.Sprintf("%s/%d/%.2fx%.2f", fp.Name, fp.Layers, fp.DieW, fp.DieH)
	if sv, ok := s.solvers[key]; ok {
		return sv
	}
	var cfg thermal.Config
	if fp.Layers == 2 {
		cfg = thermal.Stack3D(fp.DieW, fp.DieH)
	} else {
		cfg = thermal.Stack2D(fp.DieW, fp.DieH)
	}
	sv := thermal.NewSolver(cfg)
	s.solvers[key] = sv
	return sv
}
