//go:build race

package experiment

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
