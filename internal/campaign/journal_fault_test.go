package campaign

import (
	"bytes"
	"fmt"
	"io/fs"
	"strings"
	"testing"

	"r3d/internal/iofault"
)

// scriptedFS wraps an iofault.FS and fails specific file writes (1-based
// global write count) with a scripted fault, writing a prefix first.
// Unlike FaultFS's seeded schedule, the failure points are exact, which
// is what the torn-record tests need.
type scriptedFS struct {
	inner  iofault.FS
	writes int
	fail   map[int]scriptedFault
}

type scriptedFault struct {
	prefix int // bytes to land before failing
	kind   iofault.Kind
	class  iofault.Class
}

func (s *scriptedFS) OpenFile(name string, flag int, perm fs.FileMode) (iofault.File, error) {
	f, err := s.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &scriptedFile{fs: s, inner: f}, nil
}

func (s *scriptedFS) CreateTemp(dir, pattern string) (iofault.File, error) {
	f, err := s.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &scriptedFile{fs: s, inner: f}, nil
}

func (s *scriptedFS) ReadFile(name string) ([]byte, error)  { return s.inner.ReadFile(name) }
func (s *scriptedFS) Rename(o, n string) error              { return s.inner.Rename(o, n) }
func (s *scriptedFS) Remove(name string) error              { return s.inner.Remove(name) }
func (s *scriptedFS) Stat(name string) (fs.FileInfo, error) { return s.inner.Stat(name) }
func (s *scriptedFS) SyncDir(dir string) error              { return s.inner.SyncDir(dir) }

type scriptedFile struct {
	fs    *scriptedFS
	inner iofault.File
}

func (f *scriptedFile) Write(p []byte) (int, error) {
	f.fs.writes++
	if sf, ok := f.fs.fail[f.fs.writes]; ok {
		n := sf.prefix
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if wrote, err := f.inner.Write(p[:n]); err != nil {
				return wrote, err
			}
		}
		return n, &iofault.Error{Op: "write", Path: f.inner.Name(), Kind: sf.kind, Class: sf.class}
	}
	return f.inner.Write(p)
}

func (f *scriptedFile) Truncate(size int64) error             { return f.inner.Truncate(size) }
func (f *scriptedFile) Seek(off int64, wh int) (int64, error) { return f.inner.Seek(off, wh) }
func (f *scriptedFile) Sync() error                           { return f.inner.Sync() }
func (f *scriptedFile) Close() error                          { return f.inner.Close() }
func (f *scriptedFile) Name() string                          { return f.inner.Name() }

func journalOutcome(i int) TrialOutcome {
	return TrialOutcome{ID: fmt.Sprintf("t%d", i), Status: StatusOK, Attempts: 1}
}

// writeJournal appends count outcomes to a fresh journal on fsys and
// returns the file bytes.
func writeJournal(t *testing.T, fsys iofault.FS, path string, count int) []byte {
	t.Helper()
	jr, _, _, err := openJournal(fsys, path, "fp", false, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	for i := 1; i <= count; i++ {
		jr.append(journalOutcome(i))
	}
	if err := jr.close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return data
}

// TestJournalAppendRetriesTransientShortWrite: a transient short write
// mid-record is absorbed in-line — the retry truncates the torn prefix
// and rewrites, so the final file is byte-identical to a fault-free one.
func TestJournalAppendRetriesTransientShortWrite(t *testing.T) {
	baseline := writeJournal(t, iofault.NewMemFS(), "/d/j", 3)

	m := iofault.NewMemFS()
	// Write 1 is the header; writes 2..4 are records. Fail record t2's
	// write (global write 3) once, half-written, transiently.
	sfs := &scriptedFS{inner: m, fail: map[int]scriptedFault{
		3: {prefix: 17, kind: iofault.KindShortWrite, class: iofault.ClassTransient},
	}}
	got := writeJournal(t, sfs, "/d/j", 3)
	if !bytes.Equal(got, baseline) {
		t.Fatalf("retried journal differs from fault-free baseline:\n%q\nvs\n%q", got, baseline)
	}
}

// TestJournalENOSPCMidRecordTruncatesAndResumesByteIdentical: every
// retry of the final record fails with ENOSPC after a prefix lands (a
// full device), the error sticks, and the process "dies" with a torn
// final record on disk. Resume must truncate the torn suffix, re-run
// only that trial, and converge to the fault-free bytes.
func TestJournalENOSPCMidRecordTruncatesAndResumesByteIdentical(t *testing.T) {
	for _, kind := range []iofault.Kind{iofault.KindENOSPC, iofault.KindShortWrite} {
		t.Run(string(kind), func(t *testing.T) {
			baseline := writeJournal(t, iofault.NewMemFS(), "/d/j", 3)

			m := iofault.NewMemFS()
			// Record t3 is global write 4; all three attempts (writes 4,
			// 5, 6 — the retries truncate between them) land a prefix and
			// fail, so the journal error sticks with a torn tail on disk.
			fail := map[int]scriptedFault{}
			for w := 4; w <= 6; w++ {
				fail[w] = scriptedFault{prefix: 11, kind: kind, class: iofault.ClassTransient}
			}
			sfs := &scriptedFS{inner: m, fail: fail}
			jr, _, _, err := openJournal(sfs, "/d/j", "fp", false, 0)
			if err != nil {
				t.Fatalf("open journal: %v", err)
			}
			jr.append(journalOutcome(1))
			jr.append(journalOutcome(2))
			jr.append(journalOutcome(3)) // exhausts retries, sticks
			if err := jr.close(); err == nil {
				t.Fatal("exhausted journal append should surface at close")
			}

			// The file must end in exactly one torn record fragment.
			data, err := m.ReadFile("/d/j")
			if err != nil {
				t.Fatalf("read torn journal: %v", err)
			}
			if !bytes.HasPrefix(baseline, data[:len(data)-11]) {
				t.Fatalf("torn journal prefix diverged from baseline")
			}

			// Resume: the torn suffix truncates, t3 re-runs, bytes converge.
			jr2, done, notes, err := openJournal(m, "/d/j", "fp", true, 0)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if len(done) != 2 {
				t.Fatalf("resume recovered %d outcomes, want 2", len(done))
			}
			if len(notes) == 0 || !strings.Contains(strings.Join(notes, "\n"), "torn record") {
				t.Fatalf("resume notes do not mention the torn record: %v", notes)
			}
			jr2.append(journalOutcome(3))
			if err := jr2.close(); err != nil {
				t.Fatalf("close resumed journal: %v", err)
			}
			got, _ := m.ReadFile("/d/j")
			if !bytes.Equal(got, baseline) {
				t.Fatalf("resumed journal differs from fault-free baseline:\n%q\nvs\n%q", got, baseline)
			}
		})
	}
}

// TestJournalPermanentWriteFaultSticksImmediately: a permanent fault
// must not burn the retry budget — the append stops on attempt one.
func TestJournalPermanentWriteFaultSticksImmediately(t *testing.T) {
	m := iofault.NewMemFS()
	sfs := &scriptedFS{inner: m, fail: map[int]scriptedFault{
		2: {prefix: 0, kind: iofault.KindWriteErr, class: iofault.ClassPermanent},
	}}
	jr, _, _, err := openJournal(sfs, "/d/j", "fp", false, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	jr.append(journalOutcome(1))
	if err := jr.close(); err == nil {
		t.Fatal("permanent fault should stick")
	}
	if sfs.writes != 2 {
		t.Fatalf("permanent fault consumed %d writes, want 2 (header + one attempt)", sfs.writes)
	}
}
