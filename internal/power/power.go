// Package power is the Wattch-style power model of the paper's §3.1:
// per-unit peak dynamic power scaled by activity with aggressive (cc3)
// conditional clocking — idle units dissipate a turn-off fraction of
// their peak (0.2 in the paper, accounting for the higher leakage of a
// 65 nm process) — plus the Table 2 block powers for the L2 banks
// (0.732 W dynamic per access rate, 0.376 W static per 1 MB bank) and
// the Orion-derived router power (0.296 W).
//
// Frequency/voltage scaling follows the paper's assumptions: DFS alone
// scales dynamic power linearly with frequency (§2.1); the §3.3
// constant-thermal study scales voltage linearly with frequency, making
// dynamic power cubic in the frequency ratio; process scaling uses the
// Table 8 factors from package tech.
package power

import (
	"fmt"

	"r3d/internal/detmap"
	"r3d/internal/nuca"
	"r3d/internal/ooo"
	"r3d/internal/tech"
)

// Paper constants (Table 2 and §3.1).
const (
	// TurnoffFactor is the cc3 clock-gating residual: the fraction of
	// peak power an idle unit still dissipates at 65 nm.
	TurnoffFactor = 0.2
	// LeadingCoreAvgW is the Table 2 average power of the leading core.
	LeadingCoreAvgW = 35.0
	// L2BankDynamicW is dissipated by a bank accessed every cycle.
	L2BankDynamicW = 0.732
	// L2BankStaticW is a bank's static power.
	L2BankStaticW = 0.376
	// CheckerOptimisticW and CheckerPessimisticW bracket the in-order
	// core implementations discussed in §3.2 (Niagara-like vs EV5-like).
	CheckerOptimisticW  = 7.0
	CheckerPessimisticW = 15.0
)

// Unit names of the leading core's floorplan blocks (EV7-derived).
const (
	UnitFetch  = "Fetch" // I-cache + fetch
	UnitBpred  = "Bpred"
	UnitRename = "Rename" // decode/map
	UnitIQ     = "IQ"
	UnitROB    = "ROB"
	UnitIntRF  = "IntRF"
	UnitIntExe = "IntExec"
	UnitFPRF   = "FPRF"
	UnitFPExe  = "FPExec"
	UnitLSQ    = "LSQ"
	UnitDCache = "DCache"
	UnitL2Ctl  = "L2Ctl"
)

// UnitSpec is one block's peak power.
type UnitSpec struct {
	Name  string
	PeakW float64
}

// leadingUnits is calibrated so that typical SPEC2k activity factors
// yield the Table 2 average of ≈35 W (see TestLeadingCorePowerCalibration).
// The order is the floorplan packing order (two rows of six): the
// execution cluster occupies the first row (die edge), the memory
// pipeline the second, with the L2 controller mid-row so the NUCA bank
// links radiate from the centre of the core's cache edge.
var leadingUnits = []UnitSpec{
	{UnitFetch, 8.4},
	{UnitBpred, 4.4},
	{UnitRename, 6.0},
	{UnitIQ, 9.6},
	{UnitIntExe, 10.4},
	{UnitIntRF, 7.2},
	{UnitLSQ, 6.0},
	{UnitDCache, 9.6},
	{UnitL2Ctl, 2.8},
	{UnitROB, 6.8},
	{UnitFPRF, 4.0},
	{UnitFPExe, 8.8},
}

// LeadingUnits returns the leading core's unit specs.
func LeadingUnits() []UnitSpec {
	out := make([]UnitSpec, len(leadingUnits))
	copy(out, leadingUnits)
	return out
}

// Activity holds per-unit activity factors in [0,1].
type Activity map[string]float64

// ActivityFromStats derives per-unit activity factors from a simulation
// window's event counts.
func ActivityFromStats(s ooo.Stats, cfg ooo.Config) Activity {
	if s.Activity.Cycles == 0 {
		return Activity{}
	}
	cyc := float64(s.Activity.Cycles)
	rate := func(n uint64, perCycle int) float64 {
		a := float64(n) / cyc / float64(perCycle)
		if a > 1 {
			a = 1
		}
		return a
	}
	issued := s.Activity.IssuedInt + s.Activity.IssuedFP + s.Activity.IssuedMem
	return Activity{
		UnitFetch:  rate(s.Activity.Fetched, cfg.FetchWidth),
		UnitBpred:  rate(s.Activity.BpredLookups, 1),
		UnitRename: rate(s.Activity.Dispatched, cfg.DispatchWidth),
		UnitIQ:     rate(issued, cfg.IssueWidth),
		UnitROB:    rate(s.Activity.Dispatched+s.Activity.Committed, 2*cfg.DispatchWidth),
		UnitIntRF:  rate(s.Activity.RegReads+s.Activity.RegWrites, 6),
		UnitIntExe: rate(s.Activity.IssuedInt, cfg.IntALU),
		UnitFPRF:   rate(3*s.Activity.IssuedFP, 6),
		UnitFPExe:  rate(s.Activity.IssuedFP, cfg.FPALU+cfg.FPMult),
		UnitLSQ:    rate(s.Activity.IssuedMem, cfg.LoadPorts),
		UnitDCache: rate(s.Activity.DCacheAccesses, 2),
		UnitL2Ctl:  rate(s.Activity.L2Accesses, 1),
	}
}

// BlockPowers maps block names to watts; it feeds the floorplan's power
// map and the thermal model.
type BlockPowers map[string]float64

// Total returns the summed power. Summation follows sorted key order:
// float addition is not associative, so summing in randomized map order
// would make the low bits of the total — and everything downstream in
// the thermal model — differ between reruns.
func (b BlockPowers) Total() float64 {
	var t float64
	for _, k := range detmap.SortedKeys(b) {
		t += b[k]
	}
	return t
}

// LeadingCorePower evaluates the cc3 model for the leading core:
// P_unit = peak × (α + turnoff × (1−α)), scaled by frequency/voltage
// relative to the 2 GHz / 1 V nominal operating point (dynamic ∝ f·V²).
func LeadingCorePower(act Activity, fRel, vRel float64) BlockPowers {
	out := make(BlockPowers, len(leadingUnits))
	scale := fRel * vRel * vRel
	for _, u := range leadingUnits {
		a := act[u.Name]
		out[u.Name] = u.PeakW * (a + TurnoffFactor*(1-a)) * scale
	}
	return out
}

// CheckerModel models the trailing core's power. Nominal power is the
// total at the peak frequency under full activity; the dynamic fraction
// scales with DFS frequency and utilization, the leakage fraction is
// constant (per process).
type CheckerModel struct {
	NominalW float64
	// DynFrac is the dynamic share of nominal power at 65 nm.
	DynFrac float64
	// Node is the implementation process of the checker die (§4 studies
	// 90 nm); power scales by the Table 8 factors relative to 65 nm.
	Node tech.Node
}

// NewCheckerModel returns a 65 nm checker of the given nominal power
// with the paper's implicit 70/30 dynamic/leakage split.
func NewCheckerModel(nominalW float64) CheckerModel {
	return CheckerModel{NominalW: nominalW, DynFrac: 0.7, Node: tech.Node65}
}

// OnNode re-targets the checker model to another process node, applying
// the Table 8 dynamic and leakage scaling factors.
func (m CheckerModel) OnNode(n tech.Node) (CheckerModel, error) {
	if n == m.Node {
		return m, nil
	}
	s, err := tech.ScalePower(n, m.Node)
	if err != nil {
		return CheckerModel{}, err
	}
	dyn := m.NominalW * m.DynFrac * s.Dynamic
	lkg := m.NominalW * (1 - m.DynFrac) * s.Leakage
	return CheckerModel{NominalW: dyn + lkg, DynFrac: dyn / (dyn + lkg), Node: n}, nil
}

// Power returns the checker's dissipation at frequency fRel (relative to
// the 2 GHz peak) with issue utilization util in [0,1]. DFS scales only
// the dynamic share (§2.1: DFS lowers dynamic power linearly with
// frequency; supply voltage is unchanged).
func (m CheckerModel) Power(fRel, util float64) float64 {
	if fRel < 0 {
		fRel = 0
	}
	if util < 0 {
		util = 0
	}
	dyn := m.NominalW * m.DynFrac * fRel * (util + TurnoffFactor*(1-util))
	lkg := m.NominalW * (1 - m.DynFrac)
	return dyn + lkg
}

// L2BankPower returns one bank's power at the given accesses-per-cycle
// rate (Table 2), with the static share scaled by the process factor
// lkgScale (1.0 at 65 nm; Table 8 for other nodes).
func L2BankPower(accessRate, lkgScale float64) float64 {
	if accessRate > 1 {
		accessRate = 1
	}
	if accessRate < 0 {
		accessRate = 0
	}
	return L2BankDynamicW*accessRate + L2BankStaticW*lkgScale
}

// L2Powers returns per-bank powers for a NUCA instance over a window of
// `cycles` leading-core cycles, plus the router static power as a
// separate "Routers" entry.
func L2Powers(l2 *nuca.Cache, cycles uint64) BlockPowers {
	st := l2.Stats()
	out := BlockPowers{}
	for b, n := range st.BankAccesses {
		rate := 0.0
		if cycles > 0 {
			rate = float64(n) / float64(cycles)
		}
		out[fmt.Sprintf("L2Bank%d", b)] = L2BankPower(rate, 1.0)
	}
	out["Routers"] = l2.Network().StaticPowerW()
	return out
}

// DVFSScale returns the power scaling factor for the §3.3
// constant-thermal study where voltage scales linearly with frequency:
// dynamic power ∝ f·V² = fRel³ (leakage is folded in — the paper's
// temperature matching is dominated by the dynamic component).
func DVFSScale(fRel float64) float64 {
	return fRel * fRel * fRel
}
