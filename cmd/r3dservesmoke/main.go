// Command r3dservesmoke is the end-to-end smoke test for the r3dserve
// daemon. It exercises the full robustness contract as a black box,
// driving a real daemon binary over HTTP:
//
//	phase 1 (clean drain):   start a daemon, submit a campaign grid,
//	                         long-poll it to completion, save the result
//	                         bytes, SIGTERM, and require exit status 0.
//	phase 2 (hard crash):    restart with -restore, check the phase-1
//	                         job joins as restored with identical bytes,
//	                         complete a second grid, wait for it to
//	                         reach the on-disk job store, then SIGKILL
//	                         mid-service.
//	phase 3 (restore):       restart with -restore again and require
//	                         both grids to join as restored, done, and
//	                         byte-identical to the originally computed
//	                         results.
//
// Any violation exits non-zero with the daemon's log replayed, so
// `make serve-smoke` fails loudly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"r3d/internal/backoff"
)

var (
	daemonBin = flag.String("daemon", "", "path to the r3dserve binary under test")
	keepState = flag.Bool("keep-state", false, "keep the temp state directory for inspection")
)

// Polling goes through internal/backoff instead of fixed-cadence sleep
// loops: capped exponential delays with deterministic jitter, a bounded
// attempt budget instead of a wall-clock deadline, and transient
// (retry) vs permanent (fail now) classification — a daemon that is
// still starting gets patience, one that already exited does not.
var (
	portPoll    = backoff.Policy{Attempts: 120, BaseNS: 5_000_000, CapNS: 250_000_000, Seed: 1}
	donePoll    = backoff.Policy{Attempts: 90, BaseNS: 5_000_000, CapNS: 250_000_000, Seed: 2}
	persistPoll = backoff.Policy{Attempts: 60, BaseNS: 10_000_000, CapNS: 500_000_000, Seed: 3}
)

// sleeper adapts time.Sleep to the backoff layer.
func sleeper(ns int64) { time.Sleep(time.Duration(ns)) }

// transientErr marks a poll miss as retryable for backoff.Retry.
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Transient() bool { return true }

func transientf(format string, args ...any) error {
	return transientErr{err: fmt.Errorf(format, args...)}
}

// submission mirrors serve.Submission for the two grids under test.
// Grid bodies are raw JSON so the smoke test stays an honest external
// client of the wire format.
func gridBody(seed int) string {
	return fmt.Sprintf(`{
		"kind": "campaign",
		"grid": {
			"Benches": ["gzip"],
			"Seeds": [%d],
			"LeadRates": [40],
			"Instructions": 20000,
			"Node": 65
		}
	}`, seed)
}

// submitResult mirrors the daemon's POST response shape.
type submitResult struct {
	Job struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		Version  int64  `json:"version"`
		Error    string `json:"error"`
		Restored bool   `json:"restored"`
	} `json:"job"`
	Joined bool `json:"joined"`
}

// daemon wraps one running r3dserve process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	logs *bytes.Buffer
}

// startDaemon launches the binary against stateDir and waits for its
// portfile to appear.
func startDaemon(stateDir string, restore bool) (*daemon, error) {
	portFile := filepath.Join(stateDir, fmt.Sprintf("port.%d", time.Now().UnixNano()))
	args := []string{
		"-listen", "127.0.0.1:0",
		"-portfile", portFile,
		"-state", filepath.Join(stateDir, "state"),
		"-tiers", "tiny",
		"-job-workers", "2",
		"-workers", "2",
	}
	if restore {
		args = append(args, "-restore")
	}
	d := &daemon{cmd: exec.Command(*daemonBin, args...), logs: &bytes.Buffer{}}
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start daemon: %w", err)
	}
	err := backoff.Retry(portPoll, sleeper, func() error {
		if addr, err := os.ReadFile(portFile); err == nil && len(addr) > 0 {
			d.base = "http://" + string(bytes.TrimSpace(addr))
			return nil
		}
		if d.cmd.ProcessState != nil {
			return fmt.Errorf("daemon exited before publishing its port")
		}
		return transientf("portfile %s not yet published", portFile)
	})
	if err == nil {
		return d, nil
	}
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	return nil, fmt.Errorf("daemon never published its port: %v\n--- daemon log ---\n%s", err, d.logs)
}

func (d *daemon) fail(format string, args ...any) error {
	return fmt.Errorf(format+"\n--- daemon log ---\n%s", append(args, d.logs)...)
}

// submit POSTs a body and decodes the submit result.
func (d *daemon) submit(body string) (submitResult, error) {
	var res submitResult
	resp, err := http.Post(d.base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return res, d.fail("submit: %v", err)
	}
	//lint:ignore errdrop response already fully read; close failure loses nothing
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return res, d.fail("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		return res, d.fail("submit: decode %q: %v", raw, err)
	}
	return res, nil
}

// waitDone long-polls a job until it reaches "done" (or fails). The
// poll budget is bounded attempts, not wall time; a dropped connection
// is transient (the daemon may be mid-GC or the listener backlogged),
// while a terminal job state or an undecodable reply fails immediately.
func (d *daemon) waitDone(id string) error {
	version := int64(0)
	err := backoff.Retry(donePoll, sleeper, func() error {
		url := fmt.Sprintf("%s/api/v1/jobs/%s?wait_ms=2000&version=%d", d.base, id, version)
		resp, err := http.Get(url)
		if err != nil {
			return transientf("poll %s: %v", id, err)
		}
		var res submitResult
		err = json.NewDecoder(resp.Body).Decode(&res.Job)
		//lint:ignore errdrop response already fully read; close failure loses nothing
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("poll %s: decode: %v", id, err)
		}
		switch res.Job.State {
		case "done":
			return nil
		case "failed", "expired", "canceled":
			return fmt.Errorf("job %s ended %s: %s", id, res.Job.State, res.Job.Error)
		}
		version = res.Job.Version
		return transientf("job %s still %s", id, res.Job.State)
	})
	if err != nil {
		return d.fail("job %s never completed: %v", id, err)
	}
	return nil
}

// result fetches the completed result bytes.
func (d *daemon) result(id string) ([]byte, error) {
	resp, err := http.Get(d.base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, d.fail("result %s: %v", id, err)
	}
	//lint:ignore errdrop response already fully read; close failure loses nothing
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, d.fail("result %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	return body, nil
}

// sigtermWaitClean drains the daemon and requires exit status 0 — the
// ISSUE contract for clean shutdown under SIGTERM.
func (d *daemon) sigtermWaitClean() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return d.fail("SIGTERM: %v", err)
	}
	waited := make(chan error, 1)
	go func() { waited <- d.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			return d.fail("daemon exited non-zero after SIGTERM: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		return d.fail("daemon did not exit within 60s of SIGTERM")
	}
}

// sigkill hard-kills the daemon — the simulated crash.
func (d *daemon) sigkill() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait() // expected non-zero; the point is what survives on disk
}

// waitJobPersisted polls the on-disk job store until it mentions the
// job ID, so the SIGKILL provably lands after the checkpoint commit.
func waitJobPersisted(stateDir, id string) error {
	store := filepath.Join(stateDir, "state", "jobs.ckpt")
	err := backoff.Retry(persistPoll, sleeper, func() error {
		if raw, err := os.ReadFile(store); err == nil && bytes.Contains(raw, []byte(id)) {
			return nil
		}
		return transientf("job not yet in the store")
	})
	if err != nil {
		return fmt.Errorf("job %s never reached the job store %s: %v", id, store, err)
	}
	return nil
}

func run() error {
	stateDir, err := os.MkdirTemp("", "r3dservesmoke-")
	if err != nil {
		return err
	}
	if !*keepState {
		//lint:ignore errdrop best-effort temp-dir cleanup on exit
		defer os.RemoveAll(stateDir)
	} else {
		log.Printf("state kept in %s", stateDir)
	}

	gridA, gridB := gridBody(1), gridBody(2)

	// Phase 1: compute grid A, drain cleanly under SIGTERM.
	log.Print("phase 1: clean drain")
	d1, err := startDaemon(stateDir, false)
	if err != nil {
		return err
	}
	subA, err := d1.submit(gridA)
	if err != nil {
		return err
	}
	if subA.Joined {
		return d1.fail("fresh daemon claims grid A already exists")
	}
	if err := d1.waitDone(subA.Job.ID); err != nil {
		return err
	}
	wantA, err := d1.result(subA.Job.ID)
	if err != nil {
		return err
	}
	if err := d1.sigtermWaitClean(); err != nil {
		return err
	}
	log.Printf("phase 1: job %s done (%d bytes), daemon exited 0", subA.Job.ID, len(wantA))

	// Phase 2: restore, verify A survived, compute grid B, then crash
	// with SIGKILL once B has hit the job store.
	log.Print("phase 2: hard crash")
	d2, err := startDaemon(stateDir, true)
	if err != nil {
		return err
	}
	reA, err := d2.submit(gridA)
	if err != nil {
		return err
	}
	if !reA.Joined || !reA.Job.Restored || reA.Job.State != "done" {
		return d2.fail("grid A did not restore: joined=%v restored=%v state=%s",
			reA.Joined, reA.Job.Restored, reA.Job.State)
	}
	gotA, err := d2.result(reA.Job.ID)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotA, wantA) {
		return d2.fail("grid A result changed across restart:\nwas: %s\nnow: %s", wantA, gotA)
	}
	subB, err := d2.submit(gridB)
	if err != nil {
		return err
	}
	if err := d2.waitDone(subB.Job.ID); err != nil {
		return err
	}
	wantB, err := d2.result(subB.Job.ID)
	if err != nil {
		return err
	}
	if err := waitJobPersisted(stateDir, subB.Job.ID); err != nil {
		return d2.fail("%v", err)
	}
	d2.sigkill()
	log.Printf("phase 2: job %s done (%d bytes), daemon SIGKILLed", subB.Job.ID, len(wantB))

	// Phase 3: restore after the crash; both grids must join as
	// restored with byte-identical results.
	log.Print("phase 3: restore after crash")
	d3, err := startDaemon(stateDir, true)
	if err != nil {
		return err
	}
	defer d3.sigkill()
	for _, tc := range []struct {
		name string
		body string
		id   string
		want []byte
	}{
		{"grid A", gridA, subA.Job.ID, wantA},
		{"grid B", gridB, subB.Job.ID, wantB},
	} {
		re, err := d3.submit(tc.body)
		if err != nil {
			return err
		}
		if re.Job.ID != tc.id {
			return d3.fail("%s fingerprint changed across restart: %s != %s", tc.name, re.Job.ID, tc.id)
		}
		if !re.Joined || !re.Job.Restored || re.Job.State != "done" {
			return d3.fail("%s did not restore after crash: joined=%v restored=%v state=%s",
				tc.name, re.Joined, re.Job.Restored, re.Job.State)
		}
		got, err := d3.result(re.Job.ID)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, tc.want) {
			return d3.fail("%s result changed across crash:\nwas: %s\nnow: %s", tc.name, tc.want, got)
		}
		log.Printf("phase 3: %s (%s) byte-identical after crash+restore", tc.name, tc.id)
	}
	return d3.sigtermWaitClean()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("r3dservesmoke: ")
	flag.Parse()
	if *daemonBin == "" {
		log.Fatal("-daemon is required")
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("OK: drain, crash, and restore contracts all hold")
}
