package thermal

import (
	"math"
	"testing"
)

func uniformGrid(nx, ny int, totalW float64) [][]float64 {
	g := make([][]float64, ny)
	per := totalW / float64(nx*ny)
	for y := range g {
		g[y] = make([]float64, nx)
		for x := range g[y] {
			g[y][x] = per
		}
	}
	return g
}

func TestValidate(t *testing.T) {
	good := Stack2D(7.2, 7.2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Layers = nil },
		func(c *Config) { c.Nx = 0 },
		func(c *Config) { c.SinkResistanceKperW = 0 },
		func(c *Config) { c.Layers[0].ThicknessUm = 0 },
		func(c *Config) {
			for i := range c.Layers {
				c.Layers[i].Heat = false
			}
		},
	}
	for i, mutate := range cases {
		c := Stack2D(7.2, 7.2)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	s := NewSolver(Stack2D(7.2, 7.2))
	s.Solve(1e-6, 5000)
	if got := s.PeakAllC(); math.Abs(float64(got-AmbientC)) > 1e-3 {
		t.Errorf("unpowered chip at %.3f °C, want ambient %v", got, AmbientC)
	}
}

func TestUniformPowerMatchesAnalyticSink(t *testing.T) {
	// With uniform power the lateral gradients vanish and the mean
	// active-layer temperature must equal ambient + P·(R_sink + R_bulk)
	// to good accuracy (package path carries ~1% of the heat).
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	const P = 40.0
	if err := s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, P)); err != nil {
		t.Fatal(err)
	}
	s.Solve(1e-5, 20000)
	area := cfg.DieWmm * cfg.DieHmm * 1e-6 // m²
	// Series resistance from ambient to the active layer: convection,
	// every full layer below the active one, and half the active layer.
	rBelow := cfg.SinkResistanceKperW
	for _, l := range cfg.Layers {
		if l.Heat {
			rBelow += l.Resistivity * (l.ThicknessUm / 2) * 1e-6 / area
			break
		}
		rBelow += l.Resistivity * l.ThicknessUm * 1e-6 / area
	}
	want := cfg.AmbientC + Celsius(P*rBelow)
	got := s.MeanC(0)
	if math.Abs(float64(got-want)) > 1.0 {
		t.Errorf("uniform-power mean %.2f °C, want ≈%.2f", got, want)
	}
}

func TestPowerConservation(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 33))
	if math.Abs(s.TotalPower()-33) > 1e-9 {
		t.Errorf("TotalPower = %v, want 33", s.TotalPower())
	}
}

func TestHotSpotIsLocalized(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	g := uniformGrid(cfg.Nx, cfg.Ny, 0)
	// 20 W concentrated in a 5×5 corner patch.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			g[y][x] = 20.0 / 25
		}
	}
	s.SetPower(0, g)
	s.Solve(1e-4, 20000)
	corner := s.CellC(s.HeatLayers()[0], 2, 2)
	far := s.CellC(s.HeatLayers()[0], cfg.Ny-3, cfg.Nx-3)
	if corner-far < 5 {
		t.Errorf("hot spot not localized: corner %.2f vs far %.2f", corner, far)
	}
	if far < AmbientC {
		t.Errorf("far corner below ambient: %.2f", far)
	}
}

func TestMorePowerIsHotter(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 20))
	s.Solve(1e-4, 20000)
	t20 := s.PeakAllC()
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 40))
	s.Solve(1e-4, 20000)
	t40 := s.PeakAllC()
	if t40 <= t20 {
		t.Errorf("doubling power must raise temperature: %.2f vs %.2f", t40, t20)
	}
}

func TestLinearity(t *testing.T) {
	// Steady-state conduction is linear: ΔT scales with power.
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 10))
	s.Solve(1e-6, 30000)
	d10 := s.PeakAllC() - cfg.AmbientC
	s2 := NewSolver(cfg)
	s2.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 30))
	s2.Solve(1e-6, 30000)
	d30 := s2.PeakAllC() - cfg.AmbientC
	if math.Abs(float64(d30-3*d10)) > 0.05*float64(d30) {
		t.Errorf("non-linear response: ΔT(30W)=%.2f vs 3×ΔT(10W)=%.2f", d30, 3*d10)
	}
}

func TestStackedHeatRaisesDie1(t *testing.T) {
	// Heat on die 2 must pass through die 1 to reach the sink, raising
	// die 1's temperature too (the fundamental 3D thermal cost).
	cfg := Stack3D(7.2, 7.2)
	s := NewSolver(cfg)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 40))
	s.Solve(1e-5, 30000)
	base := s.PeakC(0)
	s.SetPower(1, uniformGrid(cfg.Nx, cfg.Ny, 15))
	s.Solve(1e-5, 30000)
	with := s.PeakC(0)
	if with-base < 3 {
		t.Errorf("15 W on die 2 should raise die 1 noticeably: %.2f → %.2f", base, with)
	}
	// Die 2 must be at least as hot as die 1 (it is farther from the
	// sink).
	if s.PeakC(1) < with-0.5 {
		t.Errorf("die 2 (%.2f) colder than die 1 (%.2f)", s.PeakC(1), with)
	}
}

func TestBiggerSinkIsCooler(t *testing.T) {
	// The 2d-2a die is twice the area and carries a bigger heat sink.
	small := Stack2D(7.2, 7.2)
	big := Stack2D(10.2, 10.2)
	if big.SinkResistanceKperW >= small.SinkResistanceKperW {
		t.Fatal("larger die must have lower sink resistance")
	}
	s1 := NewSolver(small)
	s1.SetPower(0, uniformGrid(small.Nx, small.Ny, 40))
	s1.Solve(1e-4, 20000)
	s2 := NewSolver(big)
	s2.SetPower(0, uniformGrid(big.Nx, big.Ny, 40))
	s2.Solve(1e-4, 20000)
	if s2.PeakAllC() >= s1.PeakAllC() {
		t.Errorf("same power on bigger die/sink must be cooler: %.2f vs %.2f", s2.PeakAllC(), s1.PeakAllC())
	}
}

func TestWarmStartConvergesFaster(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 40))
	cold, convCold := s.Solve(1e-4, 50000)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 41))
	warm, convWarm := s.Solve(1e-4, 50000)
	if !convCold || !convWarm {
		t.Fatalf("solves must converge within budget (cold %v, warm %v)", convCold, convWarm)
	}
	if warm >= cold {
		t.Errorf("warm start (%d iters) should beat cold start (%d)", warm, cold)
	}
}

func TestSolveReportsNonConvergence(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	s.SetPower(0, uniformGrid(cfg.Nx, cfg.Ny, 40))
	iters, converged := s.Solve(1e-9, 3)
	if converged {
		t.Error("3 iterations at 1e-9 tolerance must not report convergence")
	}
	if iters != 3 {
		t.Errorf("non-converged solve reports %d iters, want the cap (3)", iters)
	}
	// The same system with a real budget does converge, so the flag is
	// about the budget, not the problem.
	if _, ok := s.Solve(1e-4, 50000); !ok {
		t.Error("generous budget must converge")
	}
}

func TestSetPowerErrors(t *testing.T) {
	s := NewSolver(Stack2D(7.2, 7.2))
	if err := s.SetPower(1, uniformGrid(50, 50, 1)); err == nil {
		t.Error("2D stack has no die 2")
	}
	if err := s.SetPower(0, uniformGrid(10, 10, 1)); err == nil {
		t.Error("grid size mismatch must error")
	}
}

func TestNewSolverPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSolver(Config{})
}
