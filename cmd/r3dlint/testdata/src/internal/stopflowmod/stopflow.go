// Package stopflowmod seeds three stopflow violations — a range loop
// that cannot observe its stop parameter, a select that watches the
// wrong channel, and a call chain that drops the signal before the
// blocking loop — alongside the sanctioned shapes: the covered select,
// the forwarded signal, and a reasoned suppression, so the golden test
// pins the analyzer's exact output.
package stopflowmod

// Wait ignores stop entirely: a range loop blocks per iteration and
// cannot select.
func Wait(events chan int, stop chan struct{}) int {
	total := 0
	for v := range events {
		total += v
	}
	return total
}

// Relay selects, but never on its stop parameter.
func Relay(in chan int, stop chan struct{}, aux chan int) {
	for {
		select {
		case v := <-in:
			_ = v
		case <-aux:
		}
	}
}

// drain blocks with no stop signal of its own: its callers hold the
// obligation.
func drain(ch chan int) {
	for {
		<-ch
	}
}

// Forward drops its stop signal before the blocking loop in drain.
func Forward(ch chan int, stop chan struct{}) {
	drain(ch)
}

// Pump is the sanctioned shape: the loop selects on its stop parameter.
func Pump(in, out chan int, stop <-chan struct{}) {
	for {
		select {
		case v := <-in:
			out <- v
		case <-stop:
			return
		}
	}
}

// Handoff forwards the signal into the stop-aware callee: the argument
// discharges the obligation for the loop around the call.
func Handoff(in, out chan int, stop <-chan struct{}) {
	for i := 0; i < 3; i++ {
		Pump(in, out, stop)
	}
}

// Sip documents a bounded wait the analyzer cannot prove.
func Sip(ch chan int, stop chan struct{}) {
	//lint:ignore stopflow fixture: a single bounded receive is this helper's contract
	for i := 0; i < 1; i++ {
		<-ch
	}
}
