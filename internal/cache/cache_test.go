package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "c", SizeBytes: 1024, Assoc: 2, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Assoc: 1, LineBytes: 64},
		{Name: "assoc", SizeBytes: 1024, Assoc: 3, LineBytes: 64},
		{Name: "sets", SizeBytes: 192 * 64, Assoc: 1, LineBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q should be rejected", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad"})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	hit, _ := c.Access(0x40, false)
	if hit {
		t.Error("cold access must miss")
	}
	hit, _ = c.Access(0x40, false)
	if !hit {
		t.Error("second access must hit")
	}
	// Same line, different offset.
	hit, _ = c.Access(0x7f, false)
	if !hit {
		t.Error("same-line access must hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: fill both ways of set 0, touch the first, insert a
	// third conflicting line; the untouched one must be evicted.
	c := New(Config{Name: "t", SizeBytes: 2 * 64 * 8, Assoc: 2, LineBytes: 64}) // 8 sets
	setStride := uint64(8 * 64)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line should have been evicted")
	}
	if !c.Probe(d) {
		t.Error("new line missing")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 64 * 2, Assoc: 1, LineBytes: 64, WriteBack: true}) // 2 sets, direct-mapped
	c.Access(0, true)                                                                        // dirty line in set 0
	_, wb := c.Access(128, false)
	if !wb {
		t.Error("evicting a dirty line must report a writeback")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
	// Clean eviction: no writeback.
	_, wb = c.Access(256, false)
	if wb {
		t.Error("clean eviction must not write back")
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 64, Assoc: 1, LineBytes: 64})
	c.Access(0, true)
	_, wb := c.Access(64, false)
	if wb {
		t.Error("write-through cache must not write back")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	c.Probe(0x40)
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("Probe must not count: %+v", s)
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64, WriteBack: true})
	c.Access(0, true)
	c.Access(64, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Errorf("Flush dirty = %d, want 1", dirty)
	}
	if c.Probe(0) || c.Probe(64) {
		t.Error("flush must invalidate everything")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// Property: a working set no larger than the cache never misses
	// after one warmup pass (true-LRU, power-of-two lines).
	c := New(L1D)
	lines := L1D.SizeBytes / L1D.LineBytes
	for i := 0; i < lines; i++ {
		c.Access(uint64(i*L1D.LineBytes), false)
	}
	before := c.Stats().Misses
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*L1D.LineBytes), false)
		}
	}
	if c.Stats().Misses != before {
		t.Errorf("resident working set missed: %d new misses", c.Stats().Misses-before)
	}
}

func TestAccessHitConsistentWithProbe(t *testing.T) {
	c := New(Config{Name: "q", SizeBytes: 4096, Assoc: 4, LineBytes: 64})
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a)
			want := c.Probe(addr)
			hit, _ := c.Access(addr, false)
			if hit != want {
				return false
			}
			if !c.Probe(addr) { // after access the line must be present
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB("DTLB")
	if tlb.Access(0x1234) {
		t.Error("cold TLB must miss")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same page must hit")
	}
	if tlb.Access(0x2000) {
		t.Error("next page must miss")
	}
	if tlb.Stats().Misses != 2 {
		t.Errorf("TLB misses = %d, want 2", tlb.Stats().Misses)
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	for _, cfg := range []Config{L1I, L1D} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("default %q invalid: %v", cfg.Name, err)
		}
	}
	if !L1D.ECC {
		t.Error("the data cache must be ECC-protected (paper §2)")
	}
	if L1D.LatencyCycles != 2 {
		t.Error("L1D is a 2-cycle cache (Table 1)")
	}
}
