package experiment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"r3d/internal/ckpt"
	"r3d/internal/nuca"
	"r3d/internal/power"
)

// tinyQuality keeps persistence tests fast: two benchmarks, small
// windows.
func tinyQuality() Quality {
	return Quality{
		WarmupInsts:  5_000,
		MeasureInsts: 10_000,
		Benchmarks:   []string{"gzip", "mcf"},
		ThermalTolC:  1e-3, ThermalMaxIters: 10_000,
		Seed: 42,
	}
}

func TestRunCacheSaveLoadRoundTrip(t *testing.T) {
	q := tinyQuality()
	path := filepath.Join(t.TempDir(), "bench.ckpt")

	s1 := NewSession(q)
	lead, err := s1.Leading("gzip", L2DA, nuca.DistributedSets, 0)
	if err != nil {
		t.Fatal(err)
	}
	rmt, err := s1.RMT("mcf", L2DA, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s1.SaveCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("saved %d entries, want 2", n)
	}

	s2 := NewSession(q)
	loaded, notes, err := s2.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 || len(notes) != 0 {
		t.Fatalf("loaded %d entries (notes %q), want 2 clean", loaded, notes)
	}
	if st := s2.EngineStats(); st.Preloaded != 2 {
		t.Errorf("Preloaded = %d, want 2", st.Preloaded)
	}
	lead2, err := s2.Leading("gzip", L2DA, nuca.DistributedSets, 0)
	if err != nil {
		t.Fatal(err)
	}
	rmt2, err := s2.RMT("mcf", L2DA, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.EngineStats(); st.Computed != 0 {
		t.Errorf("warm-started session computed %d windows, want 0", st.Computed)
	}
	a, err := encodeRunValue(runValue{lead: lead, rmt: rmt})
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeRunValue(runValue{lead: lead2, rmt: rmt2})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("restored windows differ from computed ones:\n%s\n--- vs ---\n%s", b, a)
	}

	// A missing cache is a cold start with a note, not an error.
	s3 := NewSession(q)
	loaded, notes, err = s3.LoadCache(filepath.Join(t.TempDir(), "absent.ckpt"))
	if err != nil || loaded != 0 || len(notes) == 0 {
		t.Errorf("missing cache: loaded=%d notes=%q err=%v, want cold start with note", loaded, notes, err)
	}
}

func TestRunCacheRejectsForeignQuality(t *testing.T) {
	q := tinyQuality()
	path := filepath.Join(t.TempDir(), "bench.ckpt")
	s1 := NewSession(q)
	if _, err := s1.Leading("gzip", L2DA, nuca.DistributedSets, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	other := q
	other.MeasureInsts *= 2 // different windows → different results
	s2 := NewSession(other)
	_, _, err := s2.LoadCache(path)
	if err == nil {
		t.Fatal("cache for different quality accepted")
	}
	var mm *ckpt.MismatchError
	if !errors.As(err, &mm) {
		t.Errorf("foreign cache surfaced as %v, want *ckpt.MismatchError", err)
	}
}

func TestRunCacheCorruptionDegradesToColdStart(t *testing.T) {
	q := tinyQuality()
	path := filepath.Join(t.TempDir(), "bench.ckpt")
	s1 := NewSession(q)
	if _, err := s1.Leading("gzip", L2DA, nuca.DistributedSets, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(q)
	loaded, notes, err := s2.LoadCache(path)
	if err != nil {
		t.Fatalf("corrupt cache with no previous generation must degrade, not fail: %v", err)
	}
	if loaded != 0 || len(notes) == 0 {
		t.Errorf("loaded=%d notes=%q, want cold start with explanatory note", loaded, notes)
	}
}

func TestShadowVerifiesPreloadedWindows(t *testing.T) {
	q := tinyQuality()
	path := filepath.Join(t.TempDir(), "bench.ckpt")
	key := LeadingKey(q, "gzip", L2DA, nuca.DistributedSets, 0)

	s1 := NewSession(q)
	if _, err := s1.Leading("gzip", L2DA, nuca.DistributedSets, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	// A clean cache shadow-verifies without divergence.
	s2 := NewSessionWith(q, SessionOptions{ShadowFraction: 1})
	if _, _, err := s2.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Leading("gzip", L2DA, nuca.DistributedSets, 0); err != nil {
		t.Fatal(err)
	}
	if st := s2.EngineStats(); st.ShadowChecked != 1 || st.ShadowDiverged != 0 {
		t.Errorf("clean cache: checked=%d diverged=%d, want 1/0", st.ShadowChecked, st.ShadowDiverged)
	}

	// Tamper with the persisted window (re-sealing the file's own
	// checksums): only a shadow recomputation can expose it.
	fp, err := cacheFingerprint(q)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ckpt.Load(path, ckpt.Meta{Kind: cacheKind, Fingerprint: fp})
	if err != nil {
		t.Fatal(err)
	}
	var ce cacheEntry
	if err := snap.Decode(0, &ce); err != nil {
		t.Fatal(err)
	}
	if ce.Lead == nil {
		t.Fatalf("entry 0 is not a leading window: %+v", ce)
	}
	ce.Lead.Stats.Instructions += 999
	w := ckpt.NewWriter(ckpt.Meta{Kind: cacheKind, Fingerprint: fp})
	if err := w.Append(ce); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(path); err != nil {
		t.Fatal(err)
	}

	s3 := NewSessionWith(q, SessionOptions{ShadowFraction: 1})
	if _, _, err := s3.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Leading("gzip", L2DA, nuca.DistributedSets, 0); err != nil {
		t.Fatal(err)
	}
	divs := s3.ShadowDivergences()
	if len(divs) != 1 {
		t.Fatalf("divergences = %+v, want exactly the tampered window", divs)
	}
	if CompareRunKeys(divs[0].Key, key) != 0 {
		t.Errorf("divergence on %s, want %s", divs[0].Key, key)
	}
	if !strings.Contains(divs[0].Stored, fmt.Sprint(ce.Lead.Stats.Instructions)) || divs[0].Stored == divs[0].Recomputed {
		t.Errorf("divergence encodings:\nstored:     %s\nrecomputed: %s", divs[0].Stored, divs[0].Recomputed)
	}
}

func TestThermalNonConvergenceCountsWarnings(t *testing.T) {
	q := tinyQuality()
	q.ThermalMaxIters = 3
	q.ThermalTolC = 1e-9
	s := NewSession(q)
	act := power.Activity{}
	res, err := s.SolveThermal(ThermalCase{Model: M2DA, Act: act, L2Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("3 SOR iterations at 1e-9 tolerance must not converge")
	}
	if res.Iters != 3 {
		t.Errorf("Iters = %d, want the cap (3)", res.Iters)
	}
	if n := s.ThermalWarnings(); n != 1 {
		t.Errorf("ThermalWarnings = %d, want 1", n)
	}

	// A generous budget converges and adds no warning.
	q2 := tinyQuality()
	s2 := NewSession(q2)
	res2, err := s2.SolveThermal(ThermalCase{Model: M2DA, Act: act, L2Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Error("10k-iteration budget at 1e-3 tolerance must converge")
	}
	if n := s2.ThermalWarnings(); n != 0 {
		t.Errorf("ThermalWarnings = %d after a converged solve, want 0", n)
	}
}
