package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"r3d/internal/campaign"
	"r3d/internal/ckpt"
	"r3d/internal/core"
	"r3d/internal/experiment"
	"r3d/internal/tech"
)

// tinyQuality keeps experiment jobs test-sized: one benchmark, small
// windows.
func tinyQuality() experiment.Quality {
	return experiment.Quality{
		WarmupInsts:  5_000,
		MeasureInsts: 10_000,
		Benchmarks:   []string{"gzip"},
		ThermalTolC:  1e-3, ThermalMaxIters: 10_000,
		Seed: 42,
	}
}

// fullerQuality is a strictly more expensive second tier for
// degradation tests.
func fullerQuality() experiment.Quality {
	q := tinyQuality()
	q.MeasureInsts = 20_000
	return q
}

// tinyGrid is a one-trial campaign, distinct per seed so tests mint
// distinct job fingerprints.
func tinyGrid(seed int64) *campaign.Grid {
	return &campaign.Grid{
		Benches:      []string{"gzip"},
		Seeds:        []int64{seed},
		LeadRates:    []float64{40},
		Instructions: 20_000,
		Node:         tech.Node65,
	}
}

// blockingBuilder parks every trial build on release, so tests control
// exactly when campaign jobs make progress. started (if non-nil)
// receives one token per build reaching the gate.
func blockingBuilder(release <-chan struct{}, started chan<- struct{}) campaign.SystemBuilder {
	return func(spec campaign.TrialSpec) (*core.System, error) {
		if started != nil {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		<-release
		return campaign.BuildSystem(spec)
	}
}

// fakeClock is a manual Clock: Now is advanced explicitly and After
// waiters fire when Advance passes their deadline.
type fakeClock struct {
	mu      sync.Mutex
	now     int64
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at int64
	ch chan struct{}
}

func (c *fakeClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(ns int64) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan struct{})
	c.waiters = append(c.waiters, fakeWaiter{at: c.now + ns, ch: ch})
	return ch
}

func (c *fakeClock) Advance(ns int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += ns
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.at <= c.now {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

func (c *fakeClock) Clock() Clock {
	return Clock{Now: c.Now, After: c.After}
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateExpired, StateCanceled:
		return true
	}
	return false
}

// waitTerminal long-polls one job over HTTP until it is terminal.
func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var since int64
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s?wait_ms=2000&version=%d", base, id, since))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if terminal(st.State) {
			return st
		}
		since = st.Version
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobStatus{}
}

// getResult fetches a completed job's result bytes.
func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch for %s: status %d", id, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postJob submits a job and returns the HTTP status plus decoded body.
func postJob(t *testing.T, base string, sub Submission) (int, SubmitResult, errorBody, http.Header) {
	t.Helper()
	enc, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res SubmitResult
	var eb errorBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return resp.StatusCode, res, eb, resp.Header
}

func (s *Server) countersSnapshot() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Options{Tiers: []Tier{{Name: "tiny", Quality: tinyQuality()}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	cases := []struct {
		name string
		sub  Submission
		code int
	}{
		{"unknown kind", Submission{Kind: "frobnicate"}, 400},
		{"campaign without grid", Submission{Kind: KindCampaign}, 400},
		{"campaign with experiment", Submission{Kind: KindCampaign, Grid: tinyGrid(1), Experiment: "table2"}, 400},
		{"experiment without name", Submission{Kind: KindExperiment}, 400},
		{"experiment with grid", Submission{Kind: KindExperiment, Experiment: "table2", Grid: tinyGrid(1)}, 400},
		{"unknown experiment", Submission{Kind: KindExperiment, Experiment: "nope"}, 400},
		{"unknown tier", Submission{Kind: KindExperiment, Experiment: "table2", Quality: "galactic"}, 400},
		{"empty grid", Submission{Kind: KindCampaign, Grid: &campaign.Grid{}}, 400},
	}
	for _, tc := range cases {
		_, serr := s.Submit(tc.sub, "c1")
		if serr == nil || serr.Code != tc.code {
			t.Errorf("%s: got %+v, want code %d", tc.name, serr, tc.code)
		}
	}
	if c := s.countersSnapshot(); c.RejectedInvalid != int64(len(cases)) || c.Accepted != 0 {
		t.Errorf("counters after invalid submissions: %+v", c)
	}

	oversize, err := New(Options{Tiers: []Tier{{Name: "tiny", Quality: tinyQuality()}}, MaxTrialsPerJob: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer oversize.Drain()
	big := tinyGrid(1)
	big.Seeds = []int64{1, 2, 3, 4}
	if _, serr := oversize.Submit(Submission{Kind: KindCampaign, Grid: big}, "c1"); serr == nil || serr.Code != 413 {
		t.Errorf("oversize grid: got %+v, want 413", serr)
	}

	if _, err := New(Options{}); err == nil {
		t.Error("New without tiers must fail")
	}
	if _, err := New(Options{Tiers: []Tier{{Name: "a", Quality: tinyQuality()}, {Name: "a", Quality: tinyQuality()}}}); err == nil {
		t.Error("New with duplicate tier names must fail")
	}
}

// TestConcurrentIdenticalSubmissionsComputeOnce is the idempotency
// acceptance check: N concurrent identical submissions cause exactly
// one accepted job and one computation; every response serves the same
// bytes, and the engine's dedup counters prove no window ran twice.
func TestConcurrentIdenticalSubmissionsComputeOnce(t *testing.T) {
	q := tinyQuality()
	s, err := New(Options{
		Tiers:      []Tier{{Name: "tiny", Quality: q}},
		JobWorkers: 2, TrialWorkers: 2, QueueBound: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 6
	sub := Submission{Kind: KindExperiment, Experiment: "table2"}
	codes := make([]int, n)
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, res, _, _ := postJob(t, ts.URL, sub)
			codes[i] = code
			ids[i] = res.Job.ID
		}(i)
	}
	wg.Wait()

	accepted, joined := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
			joined++
		default:
			t.Fatalf("submission %d: unexpected status %d", i, code)
		}
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, submission 0 got %s", i, ids[i], ids[0])
		}
	}
	if accepted != 1 || joined != n-1 {
		t.Fatalf("accepted=%d joined=%d, want 1/%d", accepted, joined, n-1)
	}
	c := s.countersSnapshot()
	if c.Accepted != 1 || c.JoinedInflight+c.JoinedDone != n-1 {
		t.Fatalf("server counters disagree: %+v", c)
	}

	if st := waitTerminal(t, ts.URL, ids[0]); st.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	first := getResult(t, ts.URL, ids[0])
	if len(first) == 0 {
		t.Fatal("empty result")
	}
	for i := 0; i < n; i++ {
		if got := getResult(t, ts.URL, ids[0]); !bytes.Equal(got, first) {
			t.Fatalf("result fetch %d differs from first", i)
		}
	}

	// Engine-level proof: every unique manifest window computed exactly
	// once across all N submissions.
	exp, _ := experiment.Find("table2")
	uniq := map[experiment.RunKey]bool{}
	for _, k := range exp.Manifest(q) {
		uniq[k] = true
	}
	sess, _ := s.Session("tiny")
	if st := sess.EngineStats(); st.Computed != len(uniq) || st.Errors != 0 {
		t.Errorf("engine computed %d windows (errors %d), want %d unique manifest windows once each",
			st.Computed, st.Errors, len(uniq))
	}
}

// TestOverloadExactRejections is the ISSUE acceptance scenario: with
// queue bound Q and Q+k concurrent distinct submissions, exactly k are
// rejected with 429 + Retry-After, and none of the Q accepted jobs is
// dropped — after release they all complete.
func TestOverloadExactRejections(t *testing.T) {
	const q, k = 3, 4
	var s *Server
	defer func() { // registered first: runs after releaseAll
		if s != nil {
			s.Drain()
		}
	}()
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()

	var err error
	s, err = New(Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		QueueBound: q, JobWorkers: 1, TrialWorkers: 1,
		Builder: blockingBuilder(release, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		code  int
		id    string
		retry string
	}
	outcomes := make([]outcome, q+k)
	var wg sync.WaitGroup
	for i := 0; i < q+k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, res, _, hdr := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(int64(i + 1))})
			outcomes[i] = outcome{code: code, id: res.Job.ID, retry: hdr.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var acceptedIDs []string
	rejected := 0
	for i, o := range outcomes {
		switch o.code {
		case http.StatusAccepted:
			acceptedIDs = append(acceptedIDs, o.id)
		case http.StatusTooManyRequests:
			rejected++
			if o.retry == "" {
				t.Errorf("submission %d: 429 without Retry-After", i)
			}
		default:
			t.Fatalf("submission %d: unexpected status %d", i, o.code)
		}
	}
	if len(acceptedIDs) != q || rejected != k {
		t.Fatalf("accepted=%d rejected=%d, want %d/%d", len(acceptedIDs), rejected, q, k)
	}
	if c := s.countersSnapshot(); c.RejectedQueue != k {
		t.Fatalf("RejectedQueue=%d, want %d", c.RejectedQueue, k)
	}

	// Zero dropped accepted jobs: every admitted job completes once the
	// gate opens.
	releaseAll()
	for _, id := range acceptedIDs {
		if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
			t.Errorf("accepted job %s ended %s (%s), want done", id, st.State, st.Error)
		}
		if body := getResult(t, ts.URL, id); !bytes.Contains(body, []byte(`"summary"`)) && !bytes.Contains(body, []byte(`"trials"`)) {
			t.Errorf("job %s: result does not look like a campaign report: %.80s", id, body)
		}
	}

	// The freed queue admits again.
	code, res, _, _ := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(99)})
	if code != http.StatusAccepted {
		t.Fatalf("post-release submission got %d, want 202", code)
	}
	if st := waitTerminal(t, ts.URL, res.Job.ID); st.State != StateDone {
		t.Fatalf("post-release job ended %s", st.State)
	}
}

func TestRateLimitRetryAfter(t *testing.T) {
	clk := &fakeClock{}
	var s *Server
	defer func() { // registered first: runs after close(release)
		if s != nil {
			s.Drain()
		}
	}()
	release := make(chan struct{})
	defer close(release)
	var err error
	s, err = New(Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		QueueBound: 32, RatePerSec: 1, Burst: 2,
		Clock:   clk.Clock(),
		Builder: blockingBuilder(release, nil),
	})
	if err != nil {
		t.Fatal(err)
	}

	seed := int64(0)
	submit := func(client string) *StatusError {
		seed++
		_, serr := s.Submit(Submission{Kind: KindCampaign, Grid: tinyGrid(seed)}, client)
		return serr
	}

	if serr := submit("alice"); serr != nil {
		t.Fatalf("burst submission 1 rejected: %+v", serr)
	}
	if serr := submit("alice"); serr != nil {
		t.Fatalf("burst submission 2 rejected: %+v", serr)
	}
	serr := submit("alice")
	if serr == nil || serr.Code != 429 || serr.RetryAfterSec < 1 {
		t.Fatalf("exhausted bucket: got %+v, want 429 with Retry-After ≥ 1s", serr)
	}
	// Other clients have their own bucket.
	if serr := submit("bob"); serr != nil {
		t.Fatalf("bob's first submission rejected: %+v", serr)
	}
	// One second refills one token.
	clk.Advance(1e9)
	if serr := submit("alice"); serr != nil {
		t.Fatalf("post-refill submission rejected: %+v", serr)
	}
	if serr := submit("alice"); serr == nil || serr.Code != 429 {
		t.Fatalf("bucket must be empty again: got %+v", serr)
	}
	if c := s.countersSnapshot(); c.RejectedRate != 2 {
		t.Errorf("RejectedRate=%d, want 2", c.RejectedRate)
	}
}

// TestDeadlineExpiryThenResubmit exercises the per-request deadline: an
// expired job drains without poisoning any cache, and a later identical
// submission re-admits (it must not join the expired carcass) and
// completes.
func TestDeadlineExpiryThenResubmit(t *testing.T) {
	clk := &fakeClock{}
	var s *Server
	defer func() { // registered first: runs after releaseAll
		if s != nil {
			s.Drain()
		}
	}()
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	started := make(chan struct{}, 1)

	var err error
	s, err = New(Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		QueueBound: 8, JobWorkers: 1, TrialWorkers: 1,
		Clock:   clk.Clock(),
		Builder: blockingBuilder(release, started),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker so the deadline job stays queued.
	code, blocker, _, _ := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(1)})
	if code != http.StatusAccepted {
		t.Fatalf("blocker got %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("blocker never reached the builder")
	}

	code, res, _, _ := postJob(t, ts.URL, Submission{Kind: KindExperiment, Experiment: "table2", DeadlineMS: 5})
	if code != http.StatusAccepted {
		t.Fatalf("deadline job got %d", code)
	}
	j, ok := s.JobByID(res.Job.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	clk.Advance(5e6)
	select {
	case <-j.stop:
	case <-time.After(10 * time.Second):
		t.Fatal("deadline never interrupted the job")
	}

	releaseAll()
	if st := waitTerminal(t, ts.URL, blocker.Job.ID); st.State != StateDone {
		t.Fatalf("blocker ended %s", st.State)
	}
	st := waitTerminal(t, ts.URL, res.Job.ID)
	if st.State != StateExpired || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline job ended %s (%s), want expired", st.State, st.Error)
	}

	// The identical resubmission must be re-admitted, not joined to the
	// expired job, and must complete normally off the unpoisoned cache.
	code, res2, _, _ := postJob(t, ts.URL, Submission{Kind: KindExperiment, Experiment: "table2"})
	if code != http.StatusAccepted || res2.Joined {
		t.Fatalf("resubmission: code=%d joined=%v, want fresh 202", code, res2.Joined)
	}
	if res2.Job.ID != res.Job.ID {
		t.Fatalf("resubmission minted new ID %s, want the content fingerprint %s", res2.Job.ID, res.Job.ID)
	}
	if st := waitTerminal(t, ts.URL, res2.Job.ID); st.State != StateDone {
		t.Fatalf("resubmission ended %s (%s), want done", st.State, st.Error)
	}
	if len(getResult(t, ts.URL, res2.Job.ID)) == 0 {
		t.Fatal("resubmission served an empty result")
	}
	sess, _ := s.Session("tiny")
	if es := sess.EngineStats(); es.Errors != 0 {
		t.Errorf("engine memoized %d errors; an expired request must not poison the cache", es.Errors)
	}
	if c := s.countersSnapshot(); c.Expired != 1 {
		t.Errorf("Expired=%d, want 1", c.Expired)
	}
}

// TestDegradeUnderLoad checks load shedding: once the queue is deep,
// an experiment asking for the expensive tier is downgraded one tier,
// the response marks the downgrade, and the degraded job is shared
// with explicit cheap-tier submissions.
func TestDegradeUnderLoad(t *testing.T) {
	var s *Server
	defer func() { // registered first: runs after releaseAll
		if s != nil {
			s.Drain()
		}
	}()
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()

	var err error
	s, err = New(Options{
		Tiers:        []Tier{{Name: "tiny", Quality: tinyQuality()}, {Name: "fuller", Quality: fullerQuality()}},
		QueueBound:   8,
		DegradeDepth: 1,
		JobWorkers:   1, TrialWorkers: 1,
		Builder: blockingBuilder(release, nil),
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, serr := s.Submit(Submission{Kind: KindCampaign, Grid: tinyGrid(1)}, "c"); serr != nil {
		t.Fatalf("blocker rejected: %+v", serr)
	}

	res, serr := s.Submit(Submission{Kind: KindExperiment, Experiment: "table2", Quality: "fuller"}, "c")
	if serr != nil {
		t.Fatalf("degradable submission rejected: %+v", serr)
	}
	if !res.Degraded || res.RequestedQuality != "fuller" || res.Job.Quality != "tiny" {
		t.Fatalf("want degradation fuller→tiny marked on the response, got %+v", res)
	}

	// An explicit cheap-tier request shares the degraded job.
	joined, serr := s.Submit(Submission{Kind: KindExperiment, Experiment: "table2", Quality: "tiny"}, "c")
	if serr != nil {
		t.Fatalf("explicit tiny submission rejected: %+v", serr)
	}
	if !joined.Joined || joined.Job.ID != res.Job.ID {
		t.Fatalf("explicit tiny submission should join the degraded job: %+v", joined)
	}

	// The cheapest tier cannot degrade further and is not marked.
	cheap, serr := s.Submit(Submission{Kind: KindExperiment, Experiment: "fig4", Quality: "tiny"}, "c")
	if serr != nil {
		t.Fatalf("cheap submission rejected: %+v", serr)
	}
	if cheap.Degraded {
		t.Fatalf("cheapest tier must not be marked degraded: %+v", cheap)
	}

	if c := s.countersSnapshot(); c.Degraded != 1 {
		t.Errorf("Degraded=%d, want 1", c.Degraded)
	}
	releaseAll()
}

// TestCrashRestoreByteIdentity is the crash-safety acceptance check at
// package level (the smoke tool re-runs it with a real SIGKILL): a new
// server restored from the persisted state serves previously computed
// jobs byte-identically, without recomputing them, and preloads the
// window caches.
func TestCrashRestoreByteIdentity(t *testing.T) {
	state := t.TempDir()
	opts := Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		JobWorkers: 1, TrialWorkers: 2,
		StatePath: state,
	}
	s1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	_, camp, _, _ := postJob(t, ts1.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(5)})
	_, expr, _, _ := postJob(t, ts1.URL, Submission{Kind: KindExperiment, Experiment: "table2"})
	if st := waitTerminal(t, ts1.URL, camp.Job.ID); st.State != StateDone {
		t.Fatalf("campaign job ended %s", st.State)
	}
	if st := waitTerminal(t, ts1.URL, expr.Job.ID); st.State != StateDone {
		t.Fatalf("experiment job ended %s", st.State)
	}
	campBody := getResult(t, ts1.URL, camp.Job.ID)
	exprBody := getResult(t, ts1.URL, expr.Job.ID)
	s1.Drain() // flushes the final checkpoint, like SIGTERM
	ts1.Close()

	restoredOpts := opts
	restoredOpts.Restore = true
	s2, err := New(restoredOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// Both jobs are served from the store, byte-identically, and a
	// duplicate POST joins the restored job instead of recomputing.
	for _, want := range []struct {
		id   string
		body []byte
		sub  Submission
	}{
		{camp.Job.ID, campBody, Submission{Kind: KindCampaign, Grid: tinyGrid(5)}},
		{expr.Job.ID, exprBody, Submission{Kind: KindExperiment, Experiment: "table2"}},
	} {
		code, res, _, _ := postJob(t, ts2.URL, want.sub)
		if code != http.StatusOK || !res.Joined || res.Job.ID != want.id {
			t.Fatalf("restored resubmission: code=%d res=%+v", code, res)
		}
		if !res.Job.Restored {
			t.Errorf("job %s not marked restored", want.id)
		}
		if got := getResult(t, ts2.URL, want.id); !bytes.Equal(got, want.body) {
			t.Errorf("job %s: restored result differs from original", want.id)
		}
	}
	c := s2.countersSnapshot()
	if c.JoinedDone != 2 || c.Accepted != 0 {
		t.Errorf("restored server counters: %+v, want 2 done-joins and 0 accepts", c)
	}
	sess, _ := s2.Session("tiny")
	es := sess.EngineStats()
	if es.Preloaded == 0 {
		t.Error("window cache was not preloaded on restore")
	}
	if es.Computed != 0 {
		t.Errorf("restored server recomputed %d windows for stored jobs", es.Computed)
	}

	// A store written under a different tier configuration fails loudly.
	foreign := opts
	foreign.Restore = true
	foreign.Tiers = []Tier{{Name: "tiny", Quality: fullerQuality()}}
	if _, err := New(foreign); err == nil {
		t.Fatal("restore under a different tier configuration must fail loudly")
	}
}

// TestDrainUnderLoad checks the SIGTERM path: draining cancels queued
// jobs, finishes running jobs at trial granularity, persists, rejects
// new submissions with 503, and unblocks long-polls.
func TestDrainUnderLoad(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	started := make(chan struct{}, 1)

	s, err := New(Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		QueueBound: 8, JobWorkers: 1, TrialWorkers: 1,
		Builder: blockingBuilder(release, started),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// runningGrid has two trials so the drain provably skips work: the
	// in-flight trial commits, the second is never dispatched.
	runningGrid := tinyGrid(1)
	runningGrid.Seeds = []int64{1, 2}
	_, running, _, _ := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: runningGrid})
	_, queued, _, _ := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(3)})
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("running job never reached the builder")
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()

	// Wait until the drain has interrupted the running job, then open
	// the gate so its in-flight trial can finish.
	rj, _ := s.JobByID(running.Job.ID)
	select {
	case <-rj.stop:
	case <-time.After(30 * time.Second):
		t.Fatal("drain never interrupted the running job")
	}
	releaseAll()
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not complete")
	}

	if st := waitTerminal(t, ts.URL, running.Job.ID); st.State != StateCanceled {
		t.Errorf("running job ended %s, want canceled", st.State)
	}
	if st := waitTerminal(t, ts.URL, queued.Job.ID); st.State != StateCanceled {
		t.Errorf("queued job ended %s, want canceled", st.State)
	}

	code, _, eb, _ := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(9)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission got %d (%s), want 503", code, eb.Error)
	}
	var health Health
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "draining" {
		t.Errorf("healthz status %q, want draining", health.Status)
	}
	select {
	case <-s.DrainDone():
	default:
		t.Error("DrainDone channel not closed after drain")
	}
}

// tamperTierCache flips one persisted leading window's instruction
// count inside a tier cache, re-sealing the file's own checksums — the
// corruption only a shadow recomputation can expose.
func tamperTierCache(t *testing.T, path string) {
	t.Helper()
	// Discover the cache's fingerprint through the mismatch error, then
	// reload it for real.
	_, err := ckpt.Load(path, ckpt.Meta{Kind: "experiment-runcache", Fingerprint: "?"})
	var mm *ckpt.MismatchError
	if !errors.As(err, &mm) || mm.Field != "fingerprint" {
		t.Fatalf("fingerprint discovery: %v", err)
	}
	meta := ckpt.Meta{Kind: "experiment-runcache", Fingerprint: mm.Got}
	snap, err := ckpt.Load(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Key  experiment.RunKey   `json:"key"`
		Lead *experiment.LeadRun `json:"lead,omitempty"`
		RMT  *experiment.RMTRun  `json:"rmt,omitempty"`
	}
	w := ckpt.NewWriter(meta)
	tampered := false
	for i := 0; i < snap.Len(); i++ {
		var e entry
		if err := snap.Decode(i, &e); err != nil {
			t.Fatal(err)
		}
		if !tampered && e.Lead != nil {
			e.Lead.Stats.Instructions += 999
			tampered = true
		}
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if !tampered {
		t.Fatal("cache holds no leading window to tamper with")
	}
	if err := w.Commit(path); err != nil {
		t.Fatal(err)
	}
}

// TestShadowDivergenceDegradesHealth is the -shadow satellite: a
// tampered window cache is detected by shadow re-verification, and the
// daemon reports degraded health instead of crashing — the job itself
// still completes.
func TestShadowDivergenceDegradesHealth(t *testing.T) {
	state := t.TempDir()
	opts := Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		JobWorkers: 1, TrialWorkers: 2,
		StatePath: state,
	}
	s1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	_, res, _, _ := postJob(t, ts1.URL, Submission{Kind: KindExperiment, Experiment: "table2"})
	if st := waitTerminal(t, ts1.URL, res.Job.ID); st.State != StateDone {
		t.Fatalf("seed job ended %s", st.State)
	}
	s1.Drain()
	ts1.Close()

	// Lose the job store (so the job recomputes) but keep — and tamper —
	// the window cache.
	for _, p := range []string{filepath.Join(state, "jobs.ckpt"), ckpt.PrevPath(filepath.Join(state, "jobs.ckpt"))} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	tamperTierCache(t, filepath.Join(state, "cache-tiny.ckpt"))

	restored := opts
	restored.Restore = true
	restored.ShadowFraction = 1
	s2, err := New(restored)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	if h := s2.HealthSnapshot(); h.Status != "ok" {
		t.Fatalf("pre-traffic health %q, want ok", h.Status)
	}
	code, res2, _, _ := postJob(t, ts2.URL, Submission{Kind: KindExperiment, Experiment: "table2"})
	if code != http.StatusAccepted {
		t.Fatalf("recompute submission got %d", code)
	}
	if st := waitTerminal(t, ts2.URL, res2.Job.ID); st.State != StateDone {
		t.Fatalf("job under divergence ended %s (%s) — divergence must degrade, not crash", st.State, st.Error)
	}

	h := s2.HealthSnapshot()
	if h.Status != "degraded" || h.ShadowDiverged == 0 || len(h.Divergences) == 0 {
		t.Fatalf("health after tampered cache: %+v, want degraded with divergences", h)
	}
	stats := s2.Stats()
	if len(stats.Tiers) != 1 || stats.Tiers[0].Engine.ShadowChecked == 0 {
		t.Fatalf("statsz lost the shadow counters: %+v", stats.Tiers)
	}
}

// TestLongPollSeesCompletion checks the streaming-progress contract: a
// long-poll parked on the running job returns as soon as it completes,
// without any client-side polling interval.
func TestLongPollSeesCompletion(t *testing.T) {
	var s *Server
	defer func() { // registered first: runs after releaseAll
		if s != nil {
			s.Drain()
		}
	}()
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	started := make(chan struct{}, 1)

	var err error
	s, err = New(Options{
		Tiers:      []Tier{{Name: "tiny", Quality: tinyQuality()}},
		JobWorkers: 1, TrialWorkers: 1,
		Builder: blockingBuilder(release, started),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, res, _, _ := postJob(t, ts.URL, Submission{Kind: KindCampaign, Grid: tinyGrid(1)})
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached the builder")
	}

	// Park a long-poll past the running version, then complete the job.
	st := make(chan JobStatus, 1)
	go func() {
		got := waitTerminal(t, ts.URL, res.Job.ID)
		st <- got
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	releaseAll()
	select {
	case got := <-st:
		if got.State != StateDone {
			t.Fatalf("long-poll saw %s, want done", got.State)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("long-poll never returned")
	}

	// 404 and 409 paths.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
}
