package iofault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"r3d/internal/detmap"
)

// MemFS is an in-memory filesystem with honest crash semantics. It
// tracks two views of the world:
//
//   - the volatile view (names + file contents as the running process
//     sees them), updated by every operation;
//   - the durable view (what would survive a power cut), updated only
//     by File.Sync — which persists one file's content — and SyncDir —
//     which persists one directory's entries (creates, renames,
//     removes), exactly the two promises fsync and directory-fsync make
//     on a real filesystem.
//
// Crash() discards the volatile view and rebuilds the namespace from
// the durable one: files whose directory entry was never synced
// disappear, renames that were never followed by SyncDir revert, and
// file contents roll back to their last successful Sync. Handles opened
// before the crash go stale and fail permanently, the way file
// descriptors do not survive a reboot. This is what lets the chaos
// harness simulate a SIGKILL-at-op-N without spawning a process: make
// every operation after N fail, crash the FS, and the surviving bytes
// are exactly what a real kill would have left.
type MemFS struct {
	mu sync.Mutex
	// r3dlint:guardedby mu
	names map[string]*inode // volatile directory
	// r3dlint:guardedby mu
	durable map[string]*inode // durable directory
	// r3dlint:guardedby mu
	tempSeq int64 // deterministic CreateTemp suffix counter
	// r3dlint:guardedby mu
	epoch int64 // bumped by Crash; stale handles fail
}

// inode fields are guarded by the owning MemFS's mu (a cross-struct
// contract the guardedby grammar cannot name; every access goes through
// MemFS methods that hold it).
type inode struct {
	data   []byte // volatile content
	synced []byte // content as of the last successful Sync (nil = never)
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		names:   make(map[string]*inode),
		durable: make(map[string]*inode),
	}
}

// ErrStaleHandle is returned by file handles opened before a Crash.
var ErrStaleHandle = &Error{Op: "stale-handle", Kind: KindCrash, Class: ClassPermanent}

func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

// OpenFile implements FS. Supported flags: os.O_RDONLY (stat-like
// open), os.O_WRONLY/os.O_RDWR with optional os.O_CREATE, os.O_TRUNC,
// os.O_APPEND.
func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.names[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		ino = &inode{}
		m.names[name] = ino
	}
	if flag&os.O_TRUNC != 0 {
		ino.data = nil
	}
	pos := int64(0)
	if flag&os.O_APPEND != 0 {
		pos = int64(len(ino.data))
	}
	return &memFile{fs: m, name: name, ino: ino, pos: pos, epoch: m.epoch, open: true}, nil
}

// CreateTemp implements FS with deterministic temp names: the first '*'
// in pattern (or the end of it) is replaced with a monotonically
// increasing counter, so two same-seeded chaos runs produce identical
// paths and identical fault logs.
func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tempSeq++
	suffix := fmt.Sprintf("%06d", m.tempSeq)
	var base string
	if i := strings.LastIndex(pattern, "*"); i >= 0 {
		base = pattern[:i] + suffix + pattern[i+1:]
	} else {
		base = pattern + suffix
	}
	name := filepath.Join(dir, base)
	if _, exists := m.names[name]; exists {
		return nil, fmt.Errorf("iofault: temp name %s already exists", name)
	}
	ino := &inode{}
	m.names[name] = ino
	return &memFile{fs: m, name: name, ino: ino, epoch: m.epoch, open: true}, nil
}

// ReadFile implements FS (volatile view).
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.names[name]
	if !ok {
		return nil, notExist("read", name)
	}
	out := make([]byte, len(ino.data))
	copy(out, ino.data)
	return out, nil
}

// Rename implements FS. Like the real thing it is atomic in the
// volatile view but durable only after SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.names[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fs.ErrNotExist}
	}
	delete(m.names, oldpath)
	m.names[newpath] = ino
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.names[name]; !ok {
		return notExist("remove", name)
	}
	delete(m.names, name)
	return nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.names[name]
	if !ok {
		return nil, notExist("stat", name)
	}
	return memInfo{name: filepath.Base(name), size: int64(len(ino.data))}, nil
}

// SyncDir implements FS: every volatile entry directly under dir
// becomes durable, and durable entries removed from the volatile view
// are forgotten. File contents are NOT persisted — only File.Sync does
// that, matching the real fsync split.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range detmap.SortedKeys(m.names) {
		if filepath.Dir(name) == dir {
			m.durable[name] = m.names[name]
		}
	}
	for _, name := range detmap.SortedKeys(m.durable) {
		if filepath.Dir(name) == dir {
			if _, ok := m.names[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
	return nil
}

// Crash simulates a power cut: the volatile view is discarded and the
// namespace rebuilt from the durable one, with every file's content
// rolled back to its last successful Sync. Open handles go stale. The
// filesystem is usable again immediately — the harness restarts the
// system under test against the survivors.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	fresh := make(map[string]*inode, len(m.durable))
	for _, name := range detmap.SortedKeys(m.durable) {
		old := m.durable[name]
		data := make([]byte, len(old.synced))
		copy(data, old.synced)
		synced := make([]byte, len(old.synced))
		copy(synced, old.synced)
		fresh[name] = &inode{data: data, synced: synced}
	}
	m.names = fresh
	m.durable = make(map[string]*inode, len(fresh))
	for _, name := range detmap.SortedKeys(fresh) {
		m.durable[name] = fresh[name]
	}
}

// Durable returns the content name would have after a crash right now,
// and whether the name would exist at all. Chaos drivers poll it to
// place a crash provably after a commit.
func (m *MemFS) Durable(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.durable[name]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(ino.synced))
	copy(out, ino.synced)
	return out, true
}

// memFile is one open handle. Its fields are guarded by fs.mu (every
// method takes it; the cross-struct contract is not expressible as a
// guardedby annotation).
type memFile struct {
	fs    *MemFS
	name  string
	ino   *inode
	pos   int64
	epoch int64
	open  bool // set false by Close
}

func (f *memFile) Name() string { return f.name }

// check validates the handle under fs.mu.
func (f *memFile) check(op string) error {
	if f.epoch != f.fs.epoch {
		return &Error{Op: op, Path: f.name, Kind: KindCrash, Class: ClassPermanent}
	}
	if !f.open {
		return fmt.Errorf("iofault: %s on closed file %s", op, f.name)
	}
	return nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("write"); err != nil {
		return 0, err
	}
	end := f.pos + int64(len(p))
	if int64(len(f.ino.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.ino.data)
		f.ino.data = grown
	}
	copy(f.ino.data[f.pos:end], p)
	f.pos = end
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("truncate"); err != nil {
		return err
	}
	if size < 0 || size > int64(len(f.ino.data)) {
		if size < 0 {
			return fmt.Errorf("iofault: truncate %s to negative size", f.name)
		}
		grown := make([]byte, size)
		copy(grown, f.ino.data)
		f.ino.data = grown
		return nil
	}
	f.ino.data = f.ino.data[:size]
	return nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("seek"); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.ino.data))
	default:
		return 0, fmt.Errorf("iofault: seek %s: bad whence %d", f.name, whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("iofault: seek %s to negative offset", f.name)
	}
	f.pos = base + offset
	return f.pos, nil
}

// Sync persists this file's content into the durable view.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("sync"); err != nil {
		return err
	}
	synced := make([]byte, len(f.ino.data))
	copy(synced, f.ino.data)
	f.ino.synced = synced
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("close"); err != nil {
		return err
	}
	f.open = false
	return nil
}

// memInfo is the minimal fs.FileInfo the durable layers consult.
type memInfo struct {
	name string
	size int64
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) Mode() fs.FileMode  { return 0o644 }
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return false }
func (i memInfo) Sys() any           { return nil }
