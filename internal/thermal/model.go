package thermal

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// omega is the SOR over-relaxation factor shared by every sweep.
const omega = 1.85

// coarseFactor is the grid-reduction factor of the multigrid-style
// preconditioner: a 50×50 fine grid is preconditioned by a 10×10 coarse
// solve of the same layer stack.
const coarseFactor = 5

// Model is the immutable half of the solver: everything NewSolver used
// to precompute — geometry, conductances, heat-layer indices, the
// ambient boundary — plus a coarse-grid companion model for the
// preconditioner. A Model is safe to share between any number of
// concurrent solves: all mutable per-solve data (temperature and power
// fields) lives in State values created by NewState.
type Model struct {
	cfg Config
	nl  int // layers
	nx  int
	ny  int

	// conductances (W/K)
	gUp   []float64 // per layer: vertical conductance to the layer above
	gLat  []float64 // per layer: lateral conductance to each neighbour
	gSink float64   // per bottom cell
	gPack float64   // per top cell

	// ambient mirrors cfg.AmbientC as a raw float64 so the inner solver
	// loops stay conversion-free.
	ambient float64

	heatLayers []int

	// coarse is the reduced-resolution companion stack used by
	// Precondition (nil when the grid is too small to reduce).
	coarse *Model
}

// NewModel precomputes the immutable solver structure for a stack; it
// panics on invalid configuration (as NewSolver always has).
func NewModel(cfg Config) *Model {
	return newModel(cfg, true)
}

func newModel(cfg Config, withCoarse bool) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{cfg: cfg, nl: len(cfg.Layers), nx: cfg.Nx, ny: cfg.Ny, ambient: float64(cfg.AmbientC)}

	cellWm := cfg.DieWmm / float64(cfg.Nx) * 1e-3 // m
	cellHm := cfg.DieHmm / float64(cfg.Ny) * 1e-3
	cellArea := cellWm * cellHm

	// Vertical conductance between layer l and l+1: series of half
	// thicknesses.
	m.gUp = make([]float64, m.nl)
	for l := 0; l < m.nl-1; l++ {
		r1 := cfg.Layers[l].Resistivity * (cfg.Layers[l].ThicknessUm * 1e-6 / 2) / cellArea
		r2 := cfg.Layers[l+1].Resistivity * (cfg.Layers[l+1].ThicknessUm * 1e-6 / 2) / cellArea
		m.gUp[l] = 1 / (r1 + r2)
	}

	// Lateral conductance within layer l between adjacent cells:
	// G = A_cross / (ρ · pitch); width-direction neighbours see cross
	// section t×cellH over distance cellW (and vice versa). Cells are
	// near-square; use the geometric mean pitch for both directions.
	m.gLat = make([]float64, m.nl)
	for l := 0; l < m.nl; l++ {
		t := cfg.Layers[l].ThicknessUm * 1e-6
		pitch := math.Sqrt(cellWm * cellHm)
		m.gLat[l] = t * pitch / (cfg.Layers[l].Resistivity * pitch)
	}

	// Boundary couplings include the half-thickness of the boundary
	// layer (cell temperatures live at layer centers).
	ncells := float64(m.nx * m.ny)
	rHalfBot := cfg.Layers[0].Resistivity * (cfg.Layers[0].ThicknessUm * 1e-6 / 2) / cellArea
	rHalfTop := cfg.Layers[m.nl-1].Resistivity * (cfg.Layers[m.nl-1].ThicknessUm * 1e-6 / 2) / cellArea
	m.gSink = 1 / (cfg.SinkResistanceKperW*ncells + rHalfBot)
	m.gPack = 1 / (cfg.PackageResistanceKperW*ncells + rHalfTop)

	for l, ly := range cfg.Layers {
		if ly.Heat {
			m.heatLayers = append(m.heatLayers, l)
		}
	}

	// The coarse companion keeps the full layer stack (the vertical
	// dimension is where the physics lives) and divides the lateral
	// resolution. It needs at least a 2×2 coarse grid for the bilinear
	// prolongation; below that the preconditioner is a no-op.
	if withCoarse {
		nxc, nyc := (cfg.Nx+coarseFactor-1)/coarseFactor, (cfg.Ny+coarseFactor-1)/coarseFactor
		if nxc >= 2 && nyc >= 2 {
			ccfg := cfg
			ccfg.Nx, ccfg.Ny = nxc, nyc
			m.coarse = newModel(ccfg, false)
		}
	}
	return m
}

// Config returns the stack configuration the model was built from.
func (m *Model) Config() Config { return m.cfg }

// HeatLayers returns the indices of the active (power-injecting) layers
// in stack order (die 1 first).
func (m *Model) HeatLayers() []int {
	out := make([]int, len(m.heatLayers))
	copy(out, m.heatLayers)
	return out
}

func (m *Model) idx(l, y, x int) int { return (l*m.ny+y)*m.nx + x }

// State is the mutable half of a solve: the temperature and power
// fields over one Model's grid. States are cheap to create and clone,
// so concurrent solves over a shared Model each own a private State and
// warm-start snapshots are plain values instead of locked solvers.
type State struct {
	m     *Model
	temp  []float64 // [layer][y][x] flattened, °C
	power []float64 // injected power per cell, W
}

// NewState returns a fresh state at ambient temperature with no power.
func (m *Model) NewState() *State {
	n := m.nl * m.nx * m.ny
	st := &State{m: m, temp: make([]float64, n), power: make([]float64, n)}
	for i := range st.temp {
		st.temp[i] = m.ambient
	}
	return st
}

// Model returns the immutable model this state solves over.
func (st *State) Model() *Model { return st.m }

// Clone returns an independent copy of the state (same model).
func (st *State) Clone() *State {
	c := &State{m: st.m, temp: make([]float64, len(st.temp)), power: make([]float64, len(st.power))}
	copy(c.temp, st.temp)
	copy(c.power, st.power)
	return c
}

// CopyFrom copies another state's fields; the models' geometries must
// match.
func (st *State) CopyFrom(src *State) error {
	if len(src.temp) != len(st.temp) {
		return fmt.Errorf("thermal: geometry mismatch (%d vs %d cells)", len(src.temp), len(st.temp))
	}
	copy(st.temp, src.temp)
	copy(st.power, src.power)
	return nil
}

// SetPower installs the power map (W per cell) for the die with the
// given heat-layer ordinal (0 = die 1, 1 = die 2). The grid dimensions
// must match the model's: every row is length-checked, so a ragged grid
// is an error, never a panic.
func (st *State) SetPower(die int, grid [][]float64) error {
	m := st.m
	if die < 0 || die >= len(m.heatLayers) {
		return fmt.Errorf("thermal: no heat layer %d", die)
	}
	if len(grid) != m.ny {
		return fmt.Errorf("thermal: power grid has %d rows, want %d", len(grid), m.ny)
	}
	for y, row := range grid {
		if len(row) != m.nx {
			return fmt.Errorf("thermal: power grid row %d has %d cells, want %d", y, len(row), m.nx)
		}
	}
	l := m.heatLayers[die]
	for y := 0; y < m.ny; y++ {
		for x := 0; x < m.nx; x++ {
			st.power[m.idx(l, y, x)] = grid[y][x]
		}
	}
	return nil
}

// TotalPower returns the injected power in watts.
func (st *State) TotalPower() float64 {
	var p float64
	for _, w := range st.power {
		p += w
	}
	return p
}

// Solve iterates red-black SOR until the maximum update falls below
// tolC (°C) or maxIters is reached, returning the iteration count and
// whether the tolerance was actually met. converged=false means the
// field is the best available estimate, not a solution: callers must
// not silently treat an iteration-capped field as settled. The state's
// current field is the starting point (warm start).
//
// Sweeps fan out across up to GOMAXPROCS row bands; the red-black
// coloring makes every in-color update independent, so the resulting
// field and iteration count are byte-identical at any worker count
// (see SolveWith).
func (st *State) Solve(tolC Celsius, maxIters int) (iters int, converged bool) {
	return st.SolveWith(tolC, maxIters, runtime.GOMAXPROCS(0))
}

// SolveWith is Solve with an explicit band count. In a half-sweep every
// updated cell has color (l+y+x)%2 == parity and reads only opposite-
// color neighbours, so in-color updates are order-independent: any
// partitioning of the rows produces bit-identical results, and workers
// only sets how wide the fan-out is.
func (st *State) SolveWith(tolC Celsius, maxIters, workers int) (iters int, converged bool) {
	m := st.m
	tol := float64(tolC)
	rows := m.nl * m.ny
	p := workers
	if p < 1 {
		p = 1
	}
	if p > rows {
		p = rows
	}
	var deltas []float64
	if p > 1 {
		deltas = make([]float64, p)
	}
	for it := 1; it <= maxIters; it++ {
		var maxDelta float64
		for parity := 0; parity < 2; parity++ {
			if p == 1 {
				if d := m.sweepRows(st, parity, 0, rows); d > maxDelta {
					maxDelta = d
				}
				continue
			}
			var wg sync.WaitGroup
			for w := 0; w < p; w++ {
				wg.Add(1)
				go func(w, parity int) {
					defer wg.Done()
					deltas[w] = m.sweepRows(st, parity, w*rows/p, (w+1)*rows/p)
				}(w, parity)
			}
			wg.Wait()
			for _, d := range deltas {
				if d > maxDelta {
					maxDelta = d
				}
			}
		}
		if maxDelta < tol {
			return it, true
		}
	}
	return maxIters, false
}

// sweepRows relaxes the cells of one color (parity) in rows [r0, r1) —
// a row is one (layer, y) line — and returns the largest update. Cells
// of the swept color only read opposite-color neighbours, so concurrent
// sweepRows calls over disjoint row ranges of the same parity never
// overlap reads with writes.
func (m *Model) sweepRows(st *State, parity, r0, r1 int) float64 {
	var maxDelta float64
	nx, ny, planeCells := m.nx, m.ny, m.nx*m.ny
	for r := r0; r < r1; r++ {
		l, y := r/ny, r%ny
		x0 := (y + l + parity) % 2
		base := (l*ny + y) * nx
		gl := m.gLat[l]
		for x := x0; x < nx; x += 2 {
			i := base + x
			var gSum, flow float64
			if l > 0 {
				g := m.gUp[l-1]
				gSum += g
				flow += g * st.temp[i-planeCells]
			} else {
				gSum += m.gSink
				flow += m.gSink * m.ambient
			}
			if l < m.nl-1 {
				g := m.gUp[l]
				gSum += g
				flow += g * st.temp[i+planeCells]
			} else {
				gSum += m.gPack
				flow += m.gPack * m.ambient
			}
			if x > 0 {
				gSum += gl
				flow += gl * st.temp[i-1]
			}
			if x < nx-1 {
				gSum += gl
				flow += gl * st.temp[i+1]
			}
			if y > 0 {
				gSum += gl
				flow += gl * st.temp[i-nx]
			}
			if y < ny-1 {
				gSum += gl
				flow += gl * st.temp[i+nx]
			}
			tNew := (flow + st.power[i]) / gSum
			delta := tNew - st.temp[i]
			st.temp[i] += omega * delta
			if d := math.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
	}
	return maxDelta
}

// Precondition replaces the state's temperature field with the bilinear
// prolongation of a coarse-grid solve of the same stack under the
// current power map — a multigrid-style initial guess that captures the
// smooth bulk of the field, leaving the fine solve only the
// high-frequency remainder SOR is good at. It is a pure function of the
// power map, so a preconditioned solve is order-independent and needs
// no previous solution to start fast. It returns the coarse iteration
// count and whether the coarse solve converged; on a model too small to
// reduce it leaves the state untouched and reports (0, true). Call it
// on cold states only: it discards any field already present.
func (st *State) Precondition(tolC Celsius, maxIters int) (iters int, converged bool) {
	m := st.m
	c := m.coarse
	if c == nil {
		return 0, true
	}
	cst := c.NewState()
	// Restrict the power map: power is extensive, so each coarse cell
	// takes the sum of the fine cells it covers (row-major, so the
	// float accumulation order is fixed).
	for l := 0; l < m.nl; l++ {
		for y := 0; y < m.ny; y++ {
			cy := y * c.ny / m.ny
			for x := 0; x < m.nx; x++ {
				cx := x * c.nx / m.nx
				cst.power[c.idx(l, cy, cx)] += st.power[m.idx(l, y, x)]
			}
		}
	}
	// The coarse stack has ~1/coarseFactor² the cells; solve it
	// serially (fan-out overhead would dominate at this size).
	iters, converged = cst.SolveWith(tolC, maxIters, 1)
	// Prolong by bilinear interpolation between coarse cell centers
	// within each layer (clamped at the die edges).
	for l := 0; l < m.nl; l++ {
		for y := 0; y < m.ny; y++ {
			y0, fy := coarseCoord(y, m.ny, c.ny)
			for x := 0; x < m.nx; x++ {
				x0, fx := coarseCoord(x, m.nx, c.nx)
				t00 := cst.temp[c.idx(l, y0, x0)]
				t01 := cst.temp[c.idx(l, y0, x0+1)]
				t10 := cst.temp[c.idx(l, y0+1, x0)]
				t11 := cst.temp[c.idx(l, y0+1, x0+1)]
				st.temp[m.idx(l, y, x)] = (1-fy)*((1-fx)*t00+fx*t01) + fy*((1-fx)*t10+fx*t11)
			}
		}
	}
	return iters, converged
}

// coarseCoord maps fine index i (of n cells) into the coarse cell-center
// coordinate system (nc cells): the lower coarse index and the
// interpolation fraction toward the next one, clamped at the edges.
func coarseCoord(i, n, nc int) (lo int, frac float64) {
	u := (float64(i)+0.5)*float64(nc)/float64(n) - 0.5
	lo = int(math.Floor(u))
	frac = u - float64(lo)
	if lo < 0 {
		return 0, 0
	}
	if lo >= nc-1 {
		return nc - 2, 1
	}
	return lo, frac
}

// --- field readouts ----------------------------------------------------------

// PeakC returns the maximum temperature over the given die's active
// layer (die ordinal as in SetPower).
func (st *State) PeakC(die int) Celsius {
	m := st.m
	l := m.heatLayers[die]
	peak := math.Inf(-1)
	for y := 0; y < m.ny; y++ {
		for x := 0; x < m.nx; x++ {
			if t := st.temp[m.idx(l, y, x)]; t > peak {
				peak = t
			}
		}
	}
	return Celsius(peak)
}

// PeakAllC returns the maximum temperature over all active layers.
func (st *State) PeakAllC() Celsius {
	peak := Celsius(math.Inf(-1))
	for d := range st.m.heatLayers {
		if t := st.PeakC(d); t > peak {
			peak = t
		}
	}
	return peak
}

// CellC returns the temperature of one cell.
func (st *State) CellC(layer, y, x int) Celsius { return Celsius(st.temp[st.m.idx(layer, y, x)]) }

// MeanC returns the average temperature of the given die's active layer.
func (st *State) MeanC(die int) Celsius {
	m := st.m
	l := m.heatLayers[die]
	var sum float64
	for y := 0; y < m.ny; y++ {
		for x := 0; x < m.nx; x++ {
			sum += st.temp[m.idx(l, y, x)]
		}
	}
	return Celsius(sum / float64(m.nx*m.ny))
}
