package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "r3d/internal/thermal"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Module holds every non-test package of the module rooted at Dir,
// type-checked against the standard library.
type Module struct {
	Dir  string // module root (directory containing go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// LoadModule locates the enclosing go.mod starting at dir, parses every
// non-test .go file of every package under the module root, and
// type-checks the packages in dependency order. Standard-library
// imports are resolved with the go/importer "source" importer, so the
// loader needs nothing beyond GOROOT sources — no compiled export data
// and no third-party packages.
//
// Test files are deliberately excluded: the analyzers police model and
// driver code, and tests legitimately use constructs (fixed map probes,
// wall-clock timeouts) the checks forbid.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{Dir: root, Path: modPath, Fset: token.NewFileSet()}

	type rawPkg struct {
		path  string
		dir   string
		files []*ast.File
	}
	raw := map[string]*rawPkg{}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(m.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", p, err)
		}
		pkgDir := filepath.Dir(p)
		ipath := modPath
		if rel, err := filepath.Rel(root, pkgDir); err == nil && rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := raw[ipath]
		if rp == nil {
			rp = &rawPkg{path: ipath, dir: pkgDir}
			raw[ipath] = rp
		}
		rp.files = append(rp.files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	checked := map[string]*Package{}
	std := importer.ForCompiler(m.Fset, "source", nil)
	var check func(path string, stack []string) (*Package, error)
	check = func(path string, stack []string) (*Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		for _, s := range stack {
			if s == path {
				return nil, fmt.Errorf("lint: import cycle through %s", path)
			}
		}
		rp := raw[path]
		if rp == nil {
			return nil, fmt.Errorf("lint: no such module package %s", path)
		}
		// Check module-internal dependencies first so the importer
		// below can hand back their *types.Package.
		for _, f := range rp.files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					if _, err := check(ip, append(stack, path)); err != nil {
						return nil, err
					}
				}
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		cfg := types.Config{
			Importer: &moduleImporter{module: checked, std: std},
		}
		// Keep per-package file order deterministic (WalkDir already
		// yields lexical order, but be explicit).
		sort.Slice(rp.files, func(i, j int) bool {
			return m.Fset.Position(rp.files[i].Pos()).Filename < m.Fset.Position(rp.files[j].Pos()).Filename
		})
		tpkg, err := cfg.Check(path, m.Fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
		}
		p := &Package{Path: path, Dir: rp.dir, Fset: m.Fset, Files: rp.files, Types: tpkg, Info: info}
		checked[path] = p
		return p, nil
	}

	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pkg, err := check(p, nil)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// findModule walks upward from dir to the nearest go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// moduleImporter resolves module-internal import paths from the set of
// already-checked packages and defers everything else to the
// standard-library source importer.
type moduleImporter struct {
	module map[string]*Package
	std    types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.module[path]; ok {
		return p.Types, nil
	}
	return mi.std.Import(path)
}
