package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands in model
// code (internal/ packages). Exact float equality is brittle under
// re-association and architecture-dependent fused multiply-adds, and a
// comparison that happens to hold on one host can silently flip on
// another, changing simulated control flow. Model code should compare
// against an epsilon (or restructure to avoid the comparison); genuine
// exact sentinel checks carry a reasoned //lint:ignore floatcmp.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "==/!= between floats in model code: exact float equality is unstable",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	if !p.InModelCode() {
		return
	}
	p.inspectAll(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isFloat(p.Pkg.Info, be.X) || isFloat(p.Pkg.Info, be.Y) {
			p.Reportf(be.Pos(), "%s between floating-point operands; compare with an epsilon or justify with //lint:ignore floatcmp", be.Op)
		}
		return true
	})
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
