package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"r3d/internal/campaign"
	"r3d/internal/ckpt"
)

// The daemon persists two things through internal/ckpt, both written
// only by the single persister goroutine (never under a lock):
//
//   - the job store (jobs.ckpt): every completed job's result bytes,
//     keyed by content fingerprint, so a restarted daemon serves
//     previously computed jobs byte-identically without recomputing;
//   - one window cache per tier (cache-<tier>.ckpt): the session memo
//     entries, so experiment jobs warm-start across restarts.
//
// Both inherit ckpt's crash discipline: atomic temp-file+rename
// commits, a .prev generation for rollback, CRC-guarded records, and a
// hard mismatch error for files written by a different configuration.

const (
	storeKind = "serve-jobstore"
	// storeSchema names the persisted record layout; bump on any change
	// to storedJob so stale stores are rejected loudly.
	storeSchema = "r3d-jobstore/1"
)

// storedJob is the persisted image of one completed job.
type storedJob struct {
	ID          string         `json:"id"`
	Kind        string         `json:"kind"`
	Experiment  string         `json:"experiment,omitempty"`
	Quality     string         `json:"quality,omitempty"`
	Grid        *campaign.Grid `json:"grid,omitempty"`
	Result      string         `json:"result"`
	ContentType string         `json:"content_type"`
}

// persistAll commits the job store and every tier's window cache. It
// is a no-op without a StatePath. Jobs are snapshotted under the lock,
// but all I/O happens after it is released.
func (s *Server) persistAll() error {
	if s.opts.StatePath == "" {
		return nil
	}
	fp, err := s.storeFingerprint()
	if err != nil {
		return err
	}

	s.mu.Lock()
	recs := make([]storedJob, 0, len(s.jobs))
	//lint:ignore maporder collection loop; the records are sorted by ID below before any order-dependent use
	for _, j := range s.jobs {
		body, ct, done := j.resultBody()
		if !done {
			continue
		}
		recs = append(recs, storedJob{
			ID:          j.ID,
			Kind:        j.Kind,
			Experiment:  j.Experiment,
			Quality:     j.Quality,
			Grid:        j.Grid,
			Result:      string(body),
			ContentType: ct,
		})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })

	w := ckpt.NewWriter(ckpt.Meta{Kind: storeKind, Fingerprint: fp})
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	if err := w.CommitTo(s.fsys, s.jobStorePath()); err != nil {
		return fmt.Errorf("serve: commit job store: %w", err)
	}

	for _, t := range s.tiers {
		if _, err := s.sessions[t.Name].SaveCacheTo(s.fsys, s.cachePath(t.Name)); err != nil {
			return fmt.Errorf("serve: save %s window cache: %w", t.Name, err)
		}
	}
	return nil
}

// restore preloads the job store and tier caches from StatePath. A
// missing or corrupt-beyond-recovery store degrades to a cold start
// (the ckpt layer already rolled back to .prev if it could); a store
// for a different tier configuration is a hard error, matching the
// repo-wide convention that foreign state fails loudly.
func (s *Server) restore() error {
	fp, err := s.storeFingerprint()
	if err != nil {
		return err
	}
	snap, note, err := ckpt.LoadLatestFrom(s.fsys, s.jobStorePath(), ckpt.Meta{Kind: storeKind, Fingerprint: fp})
	if note != "" {
		s.opts.Logf("serve: restore: %s", note)
	}
	switch {
	case err == nil:
		s.mu.Lock()
		for i := 0; i < snap.Len(); i++ {
			var rec storedJob
			if err := snap.Decode(i, &rec); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("serve: job store entry %d: %w", i, err)
			}
			s.jobs[rec.ID] = restoredJob(rec)
		}
		s.mu.Unlock()
		s.opts.Logf("serve: restored %d completed jobs", snap.Len())
	case errors.Is(err, fs.ErrNotExist):
		s.opts.Logf("serve: no job store at %s; starting cold", s.jobStorePath())
	default:
		var corrupt *ckpt.CorruptError
		if errors.As(err, &corrupt) {
			s.opts.Logf("serve: %v — no recoverable job store; starting cold", err)
			break
		}
		return err
	}

	for _, t := range s.tiers {
		n, notes, err := s.sessions[t.Name].LoadCacheFrom(s.fsys, s.cachePath(t.Name))
		for _, msg := range notes {
			s.opts.Logf("serve: restore %s: %s", t.Name, msg)
		}
		if err != nil {
			return fmt.Errorf("serve: load %s window cache: %w", t.Name, err)
		}
		if n > 0 {
			s.opts.Logf("serve: restored %d %s windows", n, t.Name)
		}
	}
	return nil
}
