// Package chaos is the deterministic storage-fault chaos harness: it
// drives the campaign harness and the serving daemon over a seeded
// fault lattice (internal/iofault) and asserts the repo's
// crash-consistency contract end to end.
//
// Each scenario is a pure function of its seed. The same seed replays
// the same fault schedule over the same operation sequence, so a
// failure reproduces byte-for-byte — the property that turns a chaos
// finding into a regression test instead of a flake. The invariants
// every scenario enforces mirror the paper's reliability claims at the
// harness layer:
//
//   - no torn state is ever loaded: restores land on a record boundary
//     or roll back, never on a fragment;
//   - a restored aggregate is byte-identical to an uninterrupted run —
//     crash-recovery is invisible in the output;
//   - caches and job stores are never poisoned: corruption (bit flips,
//     dropped syncs) is detected loudly or rolled back, never served;
//   - persistent storage failure degrades serving (health flips,
//     compute continues) instead of crashing it, and recovery re-arms.
//
// The package is wallclock-clean like all model code: the only way
// time enters is the injected Sleep hook, which cmd/r3dchaos wires to
// a real sleeper and tests leave nil (spin with yields).
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"r3d/internal/backoff"
	"r3d/internal/campaign"
	"r3d/internal/experiment"
	"r3d/internal/iofault"
	"r3d/internal/serve"
	"r3d/internal/tech"
)

// Options drives one scenario run.
type Options struct {
	// Seed selects the fault schedule, the grid coordinates and the
	// kill points. Everything a scenario does is a deterministic
	// function of it.
	Seed int64
	// Sleep, when non-nil, is called wherever the harness yields while
	// polling asynchronous daemon state, and is handed to the fault
	// lattice for slow-I/O injections. nil polls with scheduler yields
	// and accounts (but does not serve) the latency.
	Sleep func(ns int64)
	// Logf observes scenario progress (nil discards).
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Result is what one scenario hands back for reporting and for the
// determinism cross-check.
type Result struct {
	Scenario string
	Seed     int64
	// Cycles counts run→kill→resume iterations actually executed.
	Cycles int
	// FaultLog is every injected fault in order, one canonical line per
	// fault, prefixed by its cycle. Same seed ⇒ same log, byte for byte.
	FaultLog []string
	// Aggregate is the scenario's canonical output (the campaign report
	// JSON, or the concatenated job results), compared byte-for-byte by
	// the determinism scenario.
	Aggregate []byte
	// Notes records recoveries the scenario observed (torn records
	// truncated, checkpoints rolled back, journals refused and dropped).
	Notes []string
}

// Scenario pairs a name with its runner, for sweep drivers.
type Scenario struct {
	Name string
	Run  func(Options) (*Result, error)
}

// Scenarios lists every scenario in sweep order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "campaign-crash-resume", Run: CampaignCrashResume},
		{Name: "serve-kill-restore", Run: ServeKillRestore},
		{Name: "serve-degraded", Run: DegradedServing},
		{Name: "campaign-determinism", Run: CampaignDeterminism},
	}
}

// chaosGrid is the small campaign every crash/resume cycle replays: two
// trials whose seeds vary with the chaos seed, heavy enough to cross
// several journal appends and checkpoint commits, light enough to rerun
// dozens of times per sweep.
func chaosGrid(seed int64) campaign.Grid {
	v := seed % 5
	if v < 0 {
		v += 5
	}
	return campaign.Grid{
		Benches:      []string{"gzip"},
		Seeds:        []int64{1 + v, 101 + v, 201 + v},
		LeadRates:    []float64{40},
		Instructions: 20_000,
		Node:         tech.Node65,
	}
}

// chaosSchedule derives one cycle's fault lattice from the scenario
// rng. Rates stay low enough that the bounded retry layers usually
// absorb them; the crash cliff recedes with each cycle so the campaign
// eventually outruns it.
func chaosSchedule(rng *rand.Rand, seed int64, cycle int) iofault.Schedule {
	return iofault.Schedule{
		Seed:        seed*1_000 + int64(cycle),
		WriteErr:    rng.Float64() * 0.06,
		ShortWrite:  rng.Float64() * 0.04,
		ENOSPC:      rng.Float64() * 0.03,
		BitFlip:     rng.Float64() * 0.02,
		SyncDrop:    rng.Float64() * 0.05,
		RenameErr:   rng.Float64() * 0.03,
		SlowIO:      rng.Float64() * 0.05,
		SlowIONanos: 1_000,
		// The crash window starts inside the first trials' journal and
		// checkpoint traffic and recedes ~30 ops per cycle, so early
		// cycles genuinely kill the run and a later one outruns the cliff.
		CrashAtOp: 3 + rng.Int63n(20) + int64(cycle)*30,
	}
}

const (
	campaignJournal = "/campaign/journal.jsonl"
	campaignCkpt    = "/campaign/aggregate.ckpt"
	maxCycles       = 6
)

// CampaignCrashResume runs the campaign grid under escalating fault
// schedules, killing and resuming it until it completes, then asserts
// the final aggregate is byte-identical to an uninterrupted fault-free
// run. Each kill is either a process death (volatile state survives —
// torn journal suffixes included) or a machine crash (everything
// unsynced is lost), chosen deterministically per cycle.
func CampaignCrashResume(opts Options) (*Result, error) {
	res := &Result{Scenario: "campaign-crash-resume", Seed: opts.Seed}
	grid := chaosGrid(opts.Seed)
	specs, err := grid.Trials()
	if err != nil {
		return res, err
	}

	// Baseline: the same grid, uninterrupted, on a clean filesystem.
	baseRep, err := campaign.Run(campaign.Config{
		Workers:     1,
		JournalPath: campaignJournal, CheckpointPath: campaignCkpt,
		FS: iofault.NewMemFS(),
	}, specs)
	if err != nil {
		return res, fmt.Errorf("chaos: baseline campaign: %w", err)
	}
	base, err := baseRep.JSON()
	if err != nil {
		return res, err
	}

	mem := iofault.NewMemFS()
	rng := rand.New(rand.NewSource(opts.Seed))
	for cycle := 0; cycle < maxCycles; cycle++ {
		sched := chaosSchedule(rng, opts.Seed, cycle)
		machineCrash := rng.Float64() < 0.5
		ffs := iofault.NewFaultFS(mem, sched, opts.Sleep)
		rep, runErr := campaign.Run(campaign.Config{
			Workers:     1,
			JournalPath: campaignJournal, CheckpointPath: campaignCkpt,
			CheckpointEvery: 2, // frequent snapshots = more commit traffic under fire
			Resume:          cycle > 0, Restore: cycle > 0,
			FS:   ffs,
			Stop: ffs.Crashed(),
		}, specs)
		res.Cycles++
		for _, line := range ffs.LogLines() {
			res.FaultLog = append(res.FaultLog, fmt.Sprintf("cycle=%d %s", cycle, line))
		}
		crashFired := false
		select {
		case <-ffs.Crashed():
			crashFired = true
		default:
		}
		if runErr == nil && !crashFired && !rep.Interrupted {
			// The campaign outran this cycle's crash point: it is complete.
			res.Notes = append(res.Notes, rep.Notes...)
			return res, finishCampaign(res, rep, base, opts)
		}
		if runErr != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("cycle %d died: %v", cycle, runErr))
		} else {
			res.Notes = append(res.Notes, fmt.Sprintf("cycle %d drained after crash (%d/%d trials)", cycle, rep.Summary.Trials, len(specs)))
		}
		if machineCrash {
			mem.Crash()
			res.Notes = append(res.Notes, fmt.Sprintf("cycle %d: machine crash — unsynced state dropped", cycle))
		} else {
			res.Notes = append(res.Notes, fmt.Sprintf("cycle %d: process kill — volatile state survives", cycle))
		}
		opts.logf("chaos: seed %d cycle %d: %d faults injected", opts.Seed, cycle, len(ffs.Log()))
	}

	// Final fault-free resume: whatever the cycles left behind, recovery
	// must complete the grid without loading torn state.
	cleanCfg := campaign.Config{
		Workers:     1,
		JournalPath: campaignJournal, CheckpointPath: campaignCkpt,
		CheckpointEvery: 2,
		Resume:          true, Restore: true,
		FS: mem,
	}
	rep, runErr := campaign.Run(cleanCfg, specs)
	if runErr != nil {
		// The journal's loud-refusal path: durably corrupted framing (a
		// bit-flipped header a kill made permanent) is detected, never
		// silently replayed. The operator action it demands — a fresh
		// journal path — is modelled by dropping the file; the checkpoint
		// and recomputation still converge on the identical aggregate.
		res.Notes = append(res.Notes, fmt.Sprintf("clean resume refused: %v; dropping journal per its recovery contract", runErr))
		if rerr := mem.Remove(campaignJournal); rerr != nil && !os.IsNotExist(rerr) {
			return res, fmt.Errorf("chaos: drop refused journal: %w", rerr)
		}
		if rep, runErr = campaign.Run(cleanCfg, specs); runErr != nil {
			return res, fmt.Errorf("chaos: seed %d: resume still failing on a clean filesystem: %w", opts.Seed, runErr)
		}
	}
	if rep.Interrupted {
		return res, fmt.Errorf("chaos: seed %d: fault-free resume reported interrupted", opts.Seed)
	}
	res.Notes = append(res.Notes, rep.Notes...)
	return res, finishCampaign(res, rep, base, opts)
}

// finishCampaign records the final aggregate and enforces the central
// invariant: recovery is invisible in the output.
func finishCampaign(res *Result, rep *campaign.Report, base []byte, opts Options) error {
	got, err := rep.JSON()
	if err != nil {
		return err
	}
	res.Aggregate = got
	if !bytes.Equal(got, base) {
		return fmt.Errorf("chaos: seed %d: resumed aggregate diverges from the uninterrupted baseline (%d vs %d bytes)", opts.Seed, len(got), len(base))
	}
	opts.logf("chaos: seed %d: aggregate byte-identical to baseline after %d cycle(s)", opts.Seed, res.Cycles)
	return nil
}

// serveTier is the single cheap tier every serve scenario configures.
func serveTier() []serve.Tier {
	return []serve.Tier{{Name: "fast", Quality: experiment.Quality{
		WarmupInsts:  5_000,
		MeasureInsts: 10_000,
		Benchmarks:   []string{"gzip"},
		ThermalTolC:  1e-3, ThermalMaxIters: 10_000,
		Seed: 42,
	}}}
}

// jobRecord is one live job's identity and result bytes, kept for the
// post-restore byte-identity check.
type jobRecord struct {
	id   string
	body []byte
	ct   string
}

// runServeJob submits one single-trial campaign job and waits for it to
// finish, returning its result bytes.
func runServeJob(s *serve.Server, seed int64, client string) (jobRecord, error) {
	grid := chaosGrid(seed)
	grid.Seeds = grid.Seeds[:1] // one trial per job keeps the sweep quick
	sub, serr := s.Submit(serve.Submission{Kind: serve.KindCampaign, Grid: &grid}, client)
	if serr != nil {
		return jobRecord{}, fmt.Errorf("chaos: submit: %v", serr)
	}
	j, ok := s.JobByID(sub.Job.ID)
	if !ok {
		return jobRecord{}, fmt.Errorf("chaos: job %s vanished after admission", sub.Job.ID)
	}
	<-j.Done()
	st := j.Status()
	if st.State != serve.StateDone {
		return jobRecord{}, fmt.Errorf("chaos: job %s finished %s (%s), want done — storage faults must never fail compute", j.ID, st.State, st.Error)
	}
	body, ct, ok := j.Result()
	if !ok {
		return jobRecord{}, fmt.Errorf("chaos: job %s done without a result body", j.ID)
	}
	return jobRecord{id: j.ID, body: body, ct: ct}, nil
}

// checkRestored asserts every live job is present on the restored
// server with byte-identical result bytes.
func checkRestored(s *serve.Server, live []jobRecord) error {
	for _, want := range live {
		j, ok := s.JobByID(want.id)
		if !ok {
			return fmt.Errorf("chaos: restored server lost job %s", want.id)
		}
		st := j.Status()
		if st.State != serve.StateDone || !st.Restored {
			return fmt.Errorf("chaos: restored job %s: state %s restored=%v", want.id, st.State, st.Restored)
		}
		body, ct, ok := j.Result()
		if !ok {
			return fmt.Errorf("chaos: restored job %s has no result body", want.id)
		}
		if !bytes.Equal(body, want.body) || ct != want.ct {
			return fmt.Errorf("chaos: restored job %s result diverges from the live run (%d vs %d bytes)", want.id, len(body), len(want.body))
		}
	}
	return nil
}

// ServeKillRestore runs the daemon over a flaky (transient-fault)
// device, completes a handful of jobs, heals the device for the final
// drain, machine-crashes the store, and asserts a restored daemon
// serves every job byte-identically.
func ServeKillRestore(opts Options) (*Result, error) {
	res := &Result{Scenario: "serve-kill-restore", Seed: opts.Seed}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x7365727665)) // "serve"
	mem := iofault.NewMemFS()
	sched := iofault.Schedule{
		Seed:        opts.Seed,
		WriteErr:    rng.Float64() * 0.03,
		ShortWrite:  rng.Float64() * 0.02,
		ENOSPC:      rng.Float64() * 0.02,
		BitFlip:     rng.Float64() * 0.01,
		SyncDrop:    rng.Float64() * 0.03,
		RenameErr:   rng.Float64() * 0.02,
		SlowIO:      rng.Float64() * 0.03,
		SlowIONanos: 1_000,
	}
	ffs := iofault.NewFaultFS(mem, sched, opts.Sleep)
	s, err := serve.New(serve.Options{
		Tiers:        serveTier(),
		StatePath:    "/state",
		FS:           ffs,
		PersistRetry: backoff.Policy{Attempts: 6, Seed: opts.Seed},
	})
	if err != nil {
		return res, err
	}

	var live []jobRecord
	for i := 0; i < 3; i++ {
		rec, err := runServeJob(s, opts.Seed*10+int64(i), fmt.Sprintf("chaos-%d", i))
		if err != nil {
			return res, err
		}
		live = append(live, rec)
	}

	// The device recovers before shutdown; the drain's full-budget final
	// persist must land everything durably.
	ffs.Heal()
	s.Drain()
	res.FaultLog = ffs.LogLines()
	mem.Crash()
	if _, ok := mem.Durable("/state/jobs.ckpt"); !ok {
		return res, fmt.Errorf("chaos: seed %d: job store not durable after healed drain", opts.Seed)
	}

	s2, err := serve.New(serve.Options{
		Tiers:     serveTier(),
		StatePath: "/state",
		FS:        mem,
		Restore:   true,
	})
	if err != nil {
		return res, fmt.Errorf("chaos: seed %d: restore after crash: %w", opts.Seed, err)
	}
	defer s2.Drain()
	if err := checkRestored(s2, live); err != nil {
		return res, fmt.Errorf("seed %d: %w", opts.Seed, err)
	}
	for _, rec := range live {
		res.Aggregate = append(res.Aggregate, rec.body...)
	}
	opts.logf("chaos: seed %d: %d jobs restored byte-identically through %d faults", opts.Seed, len(live), len(res.FaultLog))
	return res, nil
}

// waitPersistState polls the daemon's persister until it reports the
// wanted degraded state, yielding through the injected sleeper (or the
// scheduler, when none is wired).
func waitPersistState(s *serve.Server, opts Options, degraded bool) error {
	limit := 5_000_000
	if opts.Sleep != nil {
		limit = 20_000
	}
	for i := 0; i < limit; i++ {
		if s.PersistenceDegraded() == degraded {
			return nil
		}
		if opts.Sleep != nil {
			opts.Sleep(1_000_000) // 1ms between probes
		} else {
			runtime.Gosched()
		}
	}
	return fmt.Errorf("chaos: seed %d: persistence never became degraded=%v", opts.Seed, degraded)
}

// DegradedServing kills the storage device outright mid-flight and
// asserts the failure-degraded serving contract: health flips to
// degraded, compute continues, healing re-arms persistence, and the
// post-heal state restores completely.
func DegradedServing(opts Options) (*Result, error) {
	res := &Result{Scenario: "serve-degraded", Seed: opts.Seed}
	failAt := opts.Seed % 8
	if failAt < 0 {
		failAt += 8
	}
	mem := iofault.NewMemFS()
	ffs := iofault.NewFaultFS(mem, iofault.Schedule{Seed: opts.Seed, FailWritesFrom: 1 + failAt}, opts.Sleep)
	s, err := serve.New(serve.Options{
		Tiers:        serveTier(),
		StatePath:    "/state",
		FS:           ffs,
		PersistRetry: backoff.Policy{Attempts: 2, Seed: opts.Seed},
	})
	if err != nil {
		return res, err
	}

	// Job 1 completes; persisting it exhausts the retry budget against
	// the dead device and degrades the daemon.
	rec1, err := runServeJob(s, opts.Seed*10, "chaos-a")
	if err != nil {
		return res, err
	}
	if err := waitPersistState(s, opts, true); err != nil {
		return res, err
	}
	if h := s.HealthSnapshot(); h.Status != "degraded" || h.Persistence != "degraded" {
		return res, fmt.Errorf("chaos: seed %d: health %s/%s under a dead device, want degraded/degraded", opts.Seed, h.Status, h.Persistence)
	}

	// Compute must continue while degraded.
	rec2, err := runServeJob(s, opts.Seed*10+1, "chaos-b")
	if err != nil {
		return res, fmt.Errorf("degraded daemon stopped computing: %w", err)
	}

	// Heal; the next successful checkpoint re-arms persistence.
	ffs.Heal()
	rec3, err := runServeJob(s, opts.Seed*10+2, "chaos-c")
	if err != nil {
		return res, err
	}
	if err := waitPersistState(s, opts, false); err != nil {
		return res, fmt.Errorf("persistence never re-armed after heal: %w", err)
	}
	if h := s.HealthSnapshot(); h.Status != "ok" || h.Persistence != "ok" {
		return res, fmt.Errorf("chaos: seed %d: health %s/%s after heal, want ok/ok", opts.Seed, h.Status, h.Persistence)
	}

	s.Drain()
	res.FaultLog = ffs.LogLines()
	mem.Crash()
	s2, err := serve.New(serve.Options{
		Tiers:     serveTier(),
		StatePath: "/state",
		FS:        mem,
		Restore:   true,
	})
	if err != nil {
		return res, fmt.Errorf("chaos: seed %d: restore after degraded episode: %w", opts.Seed, err)
	}
	defer s2.Drain()
	live := []jobRecord{rec1, rec2, rec3}
	if err := checkRestored(s2, live); err != nil {
		return res, fmt.Errorf("seed %d: %w", opts.Seed, err)
	}
	for _, rec := range live {
		res.Aggregate = append(res.Aggregate, rec.body...)
	}
	opts.logf("chaos: seed %d: degraded at op %d, re-armed after heal, all jobs restored", opts.Seed, 1+failAt)
	return res, nil
}

// CampaignDeterminism runs the crash/resume scenario twice with the
// same seed and asserts the two runs match byte-for-byte: the same
// faults at the same operations, and the same final aggregate. This is
// the regression guard on the harness's own reproducibility — a chaos
// failure that cannot be replayed is a flake, not a finding.
func CampaignDeterminism(opts Options) (*Result, error) {
	a, err := CampaignCrashResume(opts)
	if err != nil {
		return a, err
	}
	b, err := CampaignCrashResume(opts)
	if err != nil {
		return b, err
	}
	if len(a.FaultLog) != len(b.FaultLog) {
		return a, fmt.Errorf("chaos: seed %d: fault logs diverge across same-seed runs (%d vs %d faults)", opts.Seed, len(a.FaultLog), len(b.FaultLog))
	}
	for i := range a.FaultLog {
		if a.FaultLog[i] != b.FaultLog[i] {
			return a, fmt.Errorf("chaos: seed %d: fault %d diverges across same-seed runs:\n  first:  %s\n  second: %s", opts.Seed, i, a.FaultLog[i], b.FaultLog[i])
		}
	}
	if !bytes.Equal(a.Aggregate, b.Aggregate) {
		return a, fmt.Errorf("chaos: seed %d: aggregates diverge across same-seed runs", opts.Seed)
	}
	res := &Result{
		Scenario:  "campaign-determinism",
		Seed:      opts.Seed,
		Cycles:    a.Cycles + b.Cycles,
		FaultLog:  a.FaultLog,
		Aggregate: a.Aggregate,
		Notes:     []string{fmt.Sprintf("two same-seed runs: %d identical faults, identical %d-byte aggregate", len(a.FaultLog), len(a.Aggregate))},
	}
	return res, nil
}
