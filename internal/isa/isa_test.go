package isa

import "testing"

func TestOpClassPredicates(t *testing.T) {
	if !BranchCond.IsBranch() || !BranchUncond.IsBranch() {
		t.Error("branches must report IsBranch")
	}
	if IntALU.IsBranch() || Load.IsBranch() {
		t.Error("non-branches must not report IsBranch")
	}
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("memory ops must report IsMem")
	}
	if IntALU.IsMem() {
		t.Error("ALU is not memory")
	}
	if !FPALU.IsFP() || !FPMult.IsFP() || IntMult.IsFP() {
		t.Error("FP predicate wrong")
	}
}

func TestOpClassString(t *testing.T) {
	if IntALU.String() != "IntALU" {
		t.Errorf("String = %q", IntALU.String())
	}
	if OpClass(200).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%s latency %d < 1", c, c.Latency())
		}
	}
	if IntMult.Latency() <= IntALU.Latency() {
		t.Error("multiply should be slower than ALU")
	}
}

func TestZeroRegisters(t *testing.T) {
	if !Reg(31).IsZero() {
		t.Error("r31 is the zero register")
	}
	if !Reg(63).IsZero() {
		t.Error("f31 is the zero register")
	}
	if Reg(0).IsZero() || Reg(32).IsZero() {
		t.Error("r0/f0 are not zero registers")
	}
}

func TestHasDest(t *testing.T) {
	alu := Inst{Op: IntALU, Dest: 3}
	if !alu.HasDest() {
		t.Error("ALU with dest r3 writes a register")
	}
	st := Inst{Op: Store, Dest: 3}
	if st.HasDest() {
		t.Error("stores do not write registers")
	}
	br := Inst{Op: BranchCond, Dest: 3}
	if br.HasDest() {
		t.Error("conditional branches do not write registers")
	}
	zero := Inst{Op: IntALU, Dest: ZeroReg}
	if zero.HasDest() {
		t.Error("writes to r31 are discarded")
	}
}
