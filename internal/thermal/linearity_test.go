package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// TestSuperposition verifies the solver is linear: the temperature rise
// of a summed power map equals the sum of the rises of its parts,
// pointwise — the property the §3.3 constant-thermal frequency search
// relies on.
func TestSuperposition(t *testing.T) {
	cfg := Stack3D(7.2, 7.2)
	r := rand.New(rand.NewSource(3))
	randGrid := func(total float64) [][]float64 {
		g := make([][]float64, cfg.Ny)
		var sum float64
		for y := range g {
			g[y] = make([]float64, cfg.Nx)
			for x := range g[y] {
				g[y][x] = r.Float64()
				sum += g[y][x]
			}
		}
		for y := range g {
			for x := range g[y] {
				g[y][x] *= total / sum
			}
		}
		return g
	}
	p1 := randGrid(30)
	p2 := randGrid(12)
	solve := func(d1, d2 [][]float64) *Solver {
		s := NewSolver(cfg)
		if d1 != nil {
			if err := s.SetPower(0, d1); err != nil {
				t.Fatal(err)
			}
		}
		if d2 != nil {
			if err := s.SetPower(1, d2); err != nil {
				t.Fatal(err)
			}
		}
		s.Solve(1e-6, 80000)
		return s
	}
	sA := solve(p1, nil)
	sB := solve(nil, p2)
	sAB := solve(p1, p2)
	for _, probe := range [][3]int{{2, 10, 10}, {4, 25, 25}, {8, 40, 5}} {
		l, y, x := probe[0], probe[1], probe[2]
		a := sA.CellC(l, y, x) - cfg.AmbientC
		b := sB.CellC(l, y, x) - cfg.AmbientC
		ab := sAB.CellC(l, y, x) - cfg.AmbientC
		if math.Abs(float64(ab-(a+b))) > 0.05*math.Max(1, float64(ab)) {
			t.Errorf("superposition violated at (%d,%d,%d): %.3f vs %.3f+%.3f", l, y, x, ab, a, b)
		}
	}
}

// TestPowerBalance checks global conservation: in steady state, the heat
// leaving through the sink and package boundaries equals the injected
// power.
func TestPowerBalance(t *testing.T) {
	cfg := Stack2D(7.2, 7.2)
	s := NewSolver(cfg)
	const P = 37.0
	grid := make([][]float64, cfg.Ny)
	for y := range grid {
		grid[y] = make([]float64, cfg.Nx)
		for x := range grid[y] {
			grid[y][x] = P / float64(cfg.Nx*cfg.Ny)
		}
	}
	if err := s.SetPower(0, grid); err != nil {
		t.Fatal(err)
	}
	s.Solve(1e-7, 200000)
	m := s.Model()
	var out float64
	for y := 0; y < cfg.Ny; y++ {
		for x := 0; x < cfg.Nx; x++ {
			out += m.gSink * float64(s.CellC(0, y, x)-cfg.AmbientC)
			out += m.gPack * float64(s.CellC(m.nl-1, y, x)-cfg.AmbientC)
		}
	}
	if math.Abs(out-P) > 0.02*P {
		t.Errorf("boundary outflow %.3f W, injected %.1f W", out, P)
	}
}
