// Package serve is the simulation daemon behind cmd/r3dserve: an
// HTTP/JSON front end that lets many concurrent clients submit
// experiment-prefetch and fault-campaign jobs against one shared,
// content-addressed result cache (the experiment session engine plus a
// persisted job store).
//
// The package is built around the repo's robustness discipline:
//
//   - admission control — a hard bound on in-flight jobs plus a
//     per-client token bucket; rejected submissions get HTTP 429 with a
//     Retry-After hint, and accepted jobs are never dropped;
//   - idempotent submission — a job's ID is a fingerprint of its
//     effective content, so duplicate POSTs (including concurrent ones)
//     join the in-flight or completed job instead of recomputing it;
//   - graceful degradation — when the queue is deep, experiment
//     requests are downgraded one quality tier; the response marks the
//     downgrade, and the degraded job is shared with explicit requests
//     for the cheaper tier;
//   - per-request deadlines — an expired job drains at its natural
//     grain (trials, window chunks): in-flight work finishes and
//     commits into the shared caches, so the memo state is never
//     poisoned by a cancelled request;
//   - crash safety — completed jobs and the per-tier window caches
//     persist through internal/ckpt; a SIGKILLed daemon restarted with
//     -restore serves previously computed results byte-identically;
//   - clean drain — Drain cancels queued jobs, drains running ones at
//     trial granularity, flushes the final checkpoint and returns, so
//     SIGTERM exits 0 with nothing torn.
//
// Like all model code, the package never reads the host clock: time
// enters through an injected Clock, which tests replace with a manual
// one to make admission and deadline behaviour reproducible.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"

	"r3d/internal/backoff"
	"r3d/internal/campaign"
	"r3d/internal/experiment"
	"r3d/internal/iofault"
	"r3d/internal/runsched"
)

// Clock supplies the daemon's only notion of time. Now returns
// monotonic nanoseconds; After returns a channel that fires once after
// ns nanoseconds. A zero Clock freezes time: deadlines and long-poll
// timeouts never fire, and the rate limiter never refills.
type Clock struct {
	Now   func() int64
	After func(ns int64) <-chan struct{}
}

func (c Clock) withDefaults() Clock {
	if c.Now == nil {
		c.Now = func() int64 { return 0 }
	}
	if c.After == nil {
		c.After = func(int64) <-chan struct{} { return nil } // nil channel: never fires
	}
	return c
}

// Tier is one configured quality level. Options.Tiers lists them
// cheapest first; degradation steps a request one tier toward the
// front.
type Tier struct {
	Name    string
	Quality experiment.Quality
}

// Options configures a Server.
type Options struct {
	// Tiers lists the quality tiers the daemon serves, cheapest first.
	// At least one is required. Experiment submissions name a tier (""
	// selects the cheapest); each tier is backed by its own session and
	// persisted window cache.
	Tiers []Tier
	// QueueBound caps admitted-but-unfinished jobs (≤0 selects
	// DefaultQueueBound). The QueueBound+1-th concurrent submission is
	// rejected with 429 and a Retry-After hint.
	QueueBound int
	// DegradeDepth is the in-flight depth at which experiment requests
	// degrade one tier cheaper (0 selects QueueBound/2, minimum 1; <0
	// disables degradation).
	DegradeDepth int
	// JobWorkers bounds concurrently executing jobs (≤0 selects 1).
	JobWorkers int
	// TrialWorkers is the per-job pool width handed to the campaign
	// harness and the session engines (≤0 selects 1).
	TrialWorkers int
	// RatePerSec/Burst shape the per-client token bucket (RatePerSec ≤ 0
	// disables rate limiting).
	RatePerSec float64
	Burst      int
	// MaxTrialsPerJob rejects grids that expand past this many trials
	// with 413 (0 = unlimited).
	MaxTrialsPerJob int
	// DefaultDeadlineNS applies when a submission carries no deadline
	// (0 = no deadline).
	DefaultDeadlineNS int64
	// RetryAfterSec is the Retry-After hint for queue-full rejections
	// (≤0 selects 1). Rate-limit rejections compute their own from
	// bucket refill math.
	RetryAfterSec int64
	// ShadowFraction re-verifies that fraction of session cache hits
	// from scratch; divergences flip /healthz to degraded.
	ShadowFraction float64
	// Clock drives deadlines, long-poll timeouts and the rate limiter.
	Clock Clock
	// SessionClock feeds the session engines' ComputeNanos counters
	// (nil zeroes them).
	SessionClock func() int64
	// StatePath is the directory holding the job store and per-tier
	// window caches ("" disables persistence).
	StatePath string
	// Restore preloads the job store and window caches from StatePath
	// before serving. A store written under different tiers or an
	// incompatible build fails loudly.
	Restore bool
	// FS is the filesystem the job store and window caches go through
	// (nil selects the real filesystem; the chaos harness injects a
	// seeded fault lattice here).
	FS iofault.FS
	// PersistRetry is the persister's retry policy against transient
	// storage faults (zero value selects DefaultPersistRetry). When the
	// budget is exhausted the daemon flips /healthz persistence to
	// degraded and keeps computing; the next successful checkpoint
	// re-arms it.
	PersistRetry backoff.Policy
	// MaxRetries / Watchdog pass through to the campaign harness.
	MaxRetries int
	Watchdog   campaign.Watchdog
	// Builder overrides campaign system construction (tests).
	Builder campaign.SystemBuilder
	// Logf receives operational notes (nil discards them).
	Logf func(format string, args ...any)
}

// DefaultQueueBound bounds admitted-but-unfinished jobs when Options
// leaves QueueBound zero.
const DefaultQueueBound = 64

// DefaultPersistRetry is the persister's retry policy when Options
// leaves PersistRetry zero: a handful of attempts with capped
// exponential delays (slept through the injected Clock, so a zero
// Clock retries immediately). Transient storage faults are absorbed
// here; anything that outlasts the budget degrades persistence.
var DefaultPersistRetry = backoff.Policy{Attempts: 4, BaseNS: 50_000_000, CapNS: 1_000_000_000}

// Counters are the monotonically increasing admission and completion
// totals reported by /statsz.
type Counters struct {
	Submitted       int64 `json:"submitted"`
	Accepted        int64 `json:"accepted"`
	JoinedInflight  int64 `json:"joined_inflight"`
	JoinedDone      int64 `json:"joined_done"`
	RejectedQueue   int64 `json:"rejected_queue"`
	RejectedRate    int64 `json:"rejected_rate"`
	RejectedDrain   int64 `json:"rejected_draining"`
	RejectedInvalid int64 `json:"rejected_invalid"`
	Degraded        int64 `json:"degraded"`
	Completed       int64 `json:"completed"`
	Failed          int64 `json:"failed"`
	Expired         int64 `json:"expired"`
	Canceled        int64 `json:"canceled"`
}

// StatusError is a submission rejection with its HTTP mapping.
type StatusError struct {
	Code          int
	Msg           string
	RetryAfterSec int64
}

func (e *StatusError) Error() string { return e.Msg }

// SubmitResult is the response body of POST /api/v1/jobs. Degraded and
// RequestedQuality are per-request: the job itself is shared and
// carries only its effective quality.
type SubmitResult struct {
	Job              JobStatus `json:"job"`
	RequestedQuality string    `json:"requested_quality,omitempty"`
	Degraded         bool      `json:"degraded,omitempty"`
	Joined           bool      `json:"joined,omitempty"`
}

// Server is the daemon state: per-tier sessions, the job table, and the
// admission bookkeeping. Create with New, stop with Drain.
type Server struct {
	opts     Options
	clock    Clock
	fsys     iofault.FS // immutable after New
	tiers    []Tier
	sessions map[string]*experiment.Session // immutable after New
	limiter  *limiter

	dispatch  chan string   // job IDs awaiting a worker
	persistCh chan struct{} // coalesced persistence pokes
	drainCh   chan struct{} // closed when Drain finishes; unblocks long-polls

	wg        sync.WaitGroup
	persistWG sync.WaitGroup

	mu sync.Mutex
	// r3dlint:guardedby mu
	jobs map[string]*Job
	// r3dlint:guardedby mu
	inflight int // admitted jobs not yet terminal
	// r3dlint:guardedby mu
	draining bool
	// r3dlint:guardedby mu
	persistDegraded bool // persistence exhausted its retries; compute continues
	// r3dlint:guardedby mu
	counters Counters
}

// New builds and starts a server: sessions per tier, optional restore
// from StatePath, JobWorkers workers and one persister goroutine.
func New(opts Options) (*Server, error) {
	if len(opts.Tiers) == 0 {
		return nil, fmt.Errorf("serve: at least one quality tier is required")
	}
	if opts.QueueBound <= 0 {
		opts.QueueBound = DefaultQueueBound
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.TrialWorkers <= 0 {
		opts.TrialWorkers = 1
	}
	if opts.DegradeDepth == 0 {
		opts.DegradeDepth = opts.QueueBound / 2
		if opts.DegradeDepth < 1 {
			opts.DegradeDepth = 1
		}
	}
	if opts.RetryAfterSec <= 0 {
		opts.RetryAfterSec = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.FS == nil {
		opts.FS = iofault.OS()
	}
	if opts.PersistRetry == (backoff.Policy{}) {
		opts.PersistRetry = DefaultPersistRetry
	}
	seen := map[string]bool{}
	for _, t := range opts.Tiers {
		if t.Name == "" {
			return nil, fmt.Errorf("serve: tier with empty name")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("serve: duplicate tier %q", t.Name)
		}
		seen[t.Name] = true
	}

	s := &Server{
		opts:      opts,
		clock:     opts.Clock.withDefaults(),
		fsys:      opts.FS,
		tiers:     opts.Tiers,
		sessions:  make(map[string]*experiment.Session, len(opts.Tiers)),
		limiter:   newLimiter(opts.RatePerSec, opts.Burst),
		dispatch:  make(chan string, opts.QueueBound),
		persistCh: make(chan struct{}, 1),
		drainCh:   make(chan struct{}),
		jobs:      make(map[string]*Job),
	}
	for _, t := range opts.Tiers {
		s.sessions[t.Name] = experiment.NewSessionWith(t.Quality, experiment.SessionOptions{
			Workers:        opts.TrialWorkers,
			Clock:          opts.SessionClock,
			ShadowFraction: opts.ShadowFraction,
		})
	}
	if opts.Restore && opts.StatePath != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < opts.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.persistWG.Add(1)
	go s.persister()
	return s, nil
}

// tierIndex resolves a tier name ("" = cheapest) to its position.
func (s *Server) tierIndex(name string) (int, bool) {
	if name == "" {
		return 0, true
	}
	for i, t := range s.tiers {
		if t.Name == name {
			return i, true
		}
	}
	return 0, false
}

// countInvalid records a validation rejection.
func (s *Server) countInvalid() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.Submitted++
	s.counters.RejectedInvalid++
}

// Submit runs the full admission pipeline for one client request:
// validation, rate limiting, drain refusal, load-shed degradation,
// idempotent join, queue bound, and finally job creation + dispatch.
func (s *Server) Submit(sub Submission, client string) (SubmitResult, *StatusError) {
	// Validation, outside any lock.
	var trialCount int
	switch sub.Kind {
	case KindCampaign:
		if sub.Grid == nil {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: "campaign submission requires a grid"}
		}
		if sub.Experiment != "" || sub.Quality != "" {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: "campaign submission must not set experiment or quality"}
		}
		specs, err := sub.Grid.Trials()
		if err != nil {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: err.Error()}
		}
		trialCount = len(specs)
		if s.opts.MaxTrialsPerJob > 0 && trialCount > s.opts.MaxTrialsPerJob {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 413, Msg: fmt.Sprintf("grid expands to %d trials; limit is %d", trialCount, s.opts.MaxTrialsPerJob)}
		}
	case KindExperiment:
		if sub.Experiment == "" {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: "experiment submission requires an experiment name"}
		}
		if sub.Grid != nil {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: "experiment submission must not carry a grid"}
		}
		if _, ok := experiment.Find(sub.Experiment); !ok {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: fmt.Sprintf("unknown experiment %q", sub.Experiment)}
		}
		if _, ok := s.tierIndex(sub.Quality); !ok {
			s.countInvalid()
			return SubmitResult{}, &StatusError{Code: 400, Msg: fmt.Sprintf("unknown quality tier %q", sub.Quality)}
		}
	default:
		s.countInvalid()
		return SubmitResult{}, &StatusError{Code: 400, Msg: fmt.Sprintf("unknown job kind %q (want %q or %q)", sub.Kind, KindCampaign, KindExperiment)}
	}

	// Rate limit before touching server state: a throttled client never
	// contends on s.mu.
	if ok, retry := s.limiter.allow(client, s.clock.Now()); !ok {
		s.mu.Lock()
		s.counters.Submitted++
		s.counters.RejectedRate++
		s.mu.Unlock()
		return SubmitResult{}, &StatusError{Code: 429, Msg: "rate limit exceeded", RetryAfterSec: retry}
	}

	deadline := sub.DeadlineMS * 1e6
	if deadline == 0 {
		deadline = s.opts.DefaultDeadlineNS
	}

	requested := sub.Quality
	if sub.Kind == KindExperiment && requested == "" {
		requested = s.tiers[0].Name
	}

	s.mu.Lock()
	s.counters.Submitted++
	if s.draining {
		s.counters.RejectedDrain++
		s.mu.Unlock()
		return SubmitResult{}, &StatusError{Code: 503, Msg: "server is draining", RetryAfterSec: s.opts.RetryAfterSec}
	}

	// Load shedding: a deep queue degrades experiment requests one tier
	// cheaper. The fingerprint is taken after degradation, so a degraded
	// request shares the cheaper tier's job.
	effective := requested
	degraded := false
	if sub.Kind == KindExperiment && s.opts.DegradeDepth > 0 && s.inflight >= s.opts.DegradeDepth {
		if idx, _ := s.tierIndex(requested); idx > 0 {
			effective = s.tiers[idx-1].Name
			degraded = true
		}
	}

	id, err := jobID(sub.Kind, sub.Experiment, effective, sub.Grid)
	if err != nil {
		s.counters.RejectedInvalid++
		s.mu.Unlock()
		return SubmitResult{}, &StatusError{Code: 400, Msg: err.Error()}
	}

	if j, ok := s.jobs[id]; ok {
		switch j.snapshot().State {
		case StateFailed, StateExpired, StateCanceled:
			// A terminal job with nothing to serve does not capture its
			// fingerprint forever: the resubmission re-admits below,
			// replacing the table entry.
		default:
			// Idempotent join: the duplicate rides the existing job. Its
			// own deadline does not apply — the creator's does.
			select {
			case <-j.doneCh:
				s.counters.JoinedDone++
			default:
				s.counters.JoinedInflight++
			}
			if degraded {
				s.counters.Degraded++
			}
			s.mu.Unlock()
			return SubmitResult{Job: j.snapshot(), RequestedQuality: requested, Degraded: degraded, Joined: true}, nil
		}
	}

	if s.inflight >= s.opts.QueueBound {
		s.counters.RejectedQueue++
		s.mu.Unlock()
		return SubmitResult{}, &StatusError{Code: 429, Msg: "admission queue is full", RetryAfterSec: s.opts.RetryAfterSec}
	}

	j := newJob(id, sub, effective, deadline)
	s.jobs[id] = j
	s.inflight++
	s.counters.Accepted++
	if degraded {
		s.counters.Degraded++
	}
	select {
	case s.dispatch <- id:
	default:
		// Unreachable: dispatch capacity equals QueueBound and inflight
		// was below it. Fail the job rather than block under the lock.
		delete(s.jobs, id)
		s.inflight--
		s.counters.Accepted--
		s.counters.RejectedQueue++
		s.mu.Unlock()
		return SubmitResult{}, &StatusError{Code: 429, Msg: "admission queue is full", RetryAfterSec: s.opts.RetryAfterSec}
	}
	s.mu.Unlock()

	if deadline > 0 {
		after := s.clock.After(deadline)
		go func() {
			select {
			case <-after:
				j.interrupt("deadline")
			case <-j.doneCh:
			}
		}()
	}
	return SubmitResult{Job: j.snapshot(), RequestedQuality: requested, Degraded: degraded}, nil
}

// JobByID returns the job table entry for id.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker executes dispatched jobs until the dispatch channel closes.
//
// r3dlint:daemon lives until Shutdown closes dispatch; joined through the s.wg field, which spawner-scoped join proofs cannot see
func (s *Server) worker() {
	defer s.wg.Done()
	for id := range s.dispatch {
		j, ok := s.JobByID(id)
		if !ok {
			continue
		}
		if !j.begin() {
			continue // cancelled while queued; Drain finalized it
		}
		s.execute(j)
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(j *Job) {
	switch j.Kind {
	case KindCampaign:
		s.executeCampaign(j)
	case KindExperiment:
		s.executeExperiment(j)
	default:
		s.finalize(j, StateFailed, nil, "", fmt.Sprintf("unknown job kind %q", j.Kind))
	}
}

// executeCampaign drives one fault-campaign grid through the hardened
// harness. The job's stop channel maps onto the harness drain: closing
// it finishes in-flight trials and commits them, never tearing state.
func (s *Server) executeCampaign(j *Job) {
	specs, err := j.Grid.Trials()
	if err != nil {
		s.finalize(j, StateFailed, nil, "", err.Error())
		return
	}
	j.setTotal(len(specs))
	rep, err := campaign.Run(campaign.Config{
		Workers:    s.opts.TrialWorkers,
		MaxRetries: s.opts.MaxRetries,
		Watchdog:   s.opts.Watchdog,
		Stop:       j.stop,
		Builder:    s.opts.Builder,
		OnOutcome:  func(campaign.TrialOutcome) { j.noteProgress(1) },
	}, specs)
	if err != nil {
		s.finalize(j, StateFailed, nil, "", err.Error())
		return
	}
	if rep.Interrupted {
		s.finalizeInterrupted(j)
		return
	}
	body, err := rep.JSON()
	if err != nil {
		s.finalize(j, StateFailed, nil, "", err.Error())
		return
	}
	s.finalize(j, StateDone, body, "application/json", "")
}

// executeExperiment prefetches the experiment's manifest in chunks
// (each chunk a cancellable batch over the shared session) and then
// renders it. Deadlines drain at chunk granularity: finished windows
// stay committed in the shared memo cache for the next request.
func (s *Server) executeExperiment(j *Job) {
	sess := s.sessions[j.Quality]
	exp, ok := experiment.Find(j.Experiment)
	if !ok {
		s.finalize(j, StateFailed, nil, "", fmt.Sprintf("unknown experiment %q", j.Experiment))
		return
	}
	var manifest []experiment.RunKey
	if exp.Manifest != nil {
		manifest = exp.Manifest(sess.Q)
	}
	j.setTotal(len(manifest))
	chunk := 2 * s.opts.TrialWorkers
	if chunk < 8 {
		chunk = 8
	}
	for start := 0; start < len(manifest); start += chunk {
		end := start + chunk
		if end > len(manifest) {
			end = len(manifest)
		}
		if err := sess.PrefetchUntil(manifest[start:end], j.stop); err != nil {
			if errors.Is(err, runsched.ErrInterrupted) {
				s.finalizeInterrupted(j)
				return
			}
			s.finalize(j, StateFailed, nil, "", err.Error())
			return
		}
		j.noteProgress(end - start)
	}
	if reason := j.interruptReason(); reason != "" {
		// Stopped between chunks (or manifest-free): don't start a
		// render that can no longer be cancelled.
		s.finalizeInterrupted(j)
		return
	}
	res, err := exp.Run(sess, s.opts.TrialWorkers)
	if err != nil {
		s.finalize(j, StateFailed, nil, "", err.Error())
		return
	}
	s.finalize(j, StateDone, []byte(res.String()), "text/plain; charset=utf-8", "")
}

// finalizeInterrupted maps a drained job onto its terminal state by
// interrupt reason: deadline → expired, drain → canceled.
func (s *Server) finalizeInterrupted(j *Job) {
	reason := j.interruptReason()
	if reason == "deadline" {
		s.finalize(j, StateExpired, nil, "", "deadline exceeded; completed work remains cached")
		return
	}
	s.finalize(j, StateCanceled, nil, "", "canceled: "+reason)
}

// finalize commits a job's terminal state exactly once, releases its
// admission slot, and pokes the persister.
func (s *Server) finalize(j *Job, state string, result []byte, contentType, errMsg string) {
	prev := j.setTerminal(state, result, contentType, errMsg)
	if prev != StateQueued && prev != StateRunning {
		return // lost the race to another finalizer; bookkeeping already done
	}
	s.mu.Lock()
	s.inflight--
	switch state {
	case StateDone:
		s.counters.Completed++
	case StateFailed:
		s.counters.Failed++
	case StateExpired:
		s.counters.Expired++
	case StateCanceled:
		s.counters.Canceled++
	}
	s.mu.Unlock()
	s.pokePersist()
}

// pokePersist schedules a persistence pass; pokes coalesce while one is
// running.
func (s *Server) pokePersist() {
	select {
	case s.persistCh <- struct{}{}:
	default:
	}
}

// persister is the single goroutine that owns all checkpoint I/O, so no
// lock is ever held across a file write.
//
// r3dlint:daemon lives until Shutdown closes persistCh; joined through the s.persistWG field, which spawner-scoped join proofs cannot see
func (s *Server) persister() {
	defer s.persistWG.Done()
	for range s.persistCh {
		s.persistOnce()
	}
}

// retrySleep waits ns nanoseconds through the injected clock; a zero
// Clock (After returns nil) retries immediately, keeping tests and
// in-process chaos runs wallclock-free.
func (s *Server) retrySleep(ns int64) {
	if ch := s.clock.After(ns); ch != nil {
		<-ch
	}
}

// persistOnce is one persistence pass under the failure-degraded
// contract: transient faults retry within PersistRetry's budget;
// exhaustion flips persistence to degraded — the daemon keeps computing
// and serving, it just stops promising durability — and each later poke
// makes one cheap probe, so the first checkpoint that lands re-arms
// full persistence.
func (s *Server) persistOnce() {
	policy := s.opts.PersistRetry
	s.mu.Lock()
	wasDegraded := s.persistDegraded
	s.mu.Unlock()
	if wasDegraded {
		policy = backoff.Policy{Attempts: 1}
	}
	err := backoff.Retry(policy, s.retrySleep, s.persistAll)
	s.mu.Lock()
	s.persistDegraded = err != nil
	s.mu.Unlock()
	switch {
	case err != nil && !wasDegraded:
		s.opts.Logf("serve: persist: %v — persistence degraded, compute continues", err)
	case err != nil:
		s.opts.Logf("serve: persist still failing: %v", err)
	case wasDegraded:
		s.opts.Logf("serve: persist succeeded — persistence re-armed")
	}
}

// PersistenceDegraded reports whether the persister has exhausted its
// retries without a successful checkpoint since.
func (s *Server) PersistenceDegraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistDegraded
}

// Drain stops the server gracefully: refuse new submissions, cancel
// queued jobs, drain running jobs at trial/window granularity, wait for
// workers, and commit a final checkpoint. It is idempotent and blocks
// until the drain completes.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.drainCh
		return
	}
	s.draining = true
	live := make([]*Job, 0, len(s.jobs))
	//lint:ignore maporder collection loop; the jobs are interrupted independently, order cannot affect any of them
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()

	for _, j := range live {
		j.interrupt("drain")
		// Jobs still queued finalize here; running ones are finalized by
		// their worker when the harness returns.
		s.finalizeQueued(j)
	}
	close(s.dispatch)
	s.wg.Wait()
	close(s.persistCh)
	s.persistWG.Wait()
	// The final checkpoint gets the full retry budget even when earlier
	// passes degraded: this is the last chance to make the state durable.
	if err := backoff.Retry(s.opts.PersistRetry, s.retrySleep, s.persistAll); err != nil {
		s.opts.Logf("serve: final persist: %v", err)
	}
	close(s.drainCh)
}

// finalizeQueued cancels a job only if it is still queued; begin()'s
// state check makes this race-free against a worker picking it up.
func (s *Server) finalizeQueued(j *Job) {
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		s.finalize(j, StateCanceled, nil, "", "canceled: drain")
	}
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DrainDone returns the channel closed when Drain completes (long-polls
// select on it to unblock at shutdown).
func (s *Server) DrainDone() <-chan struct{} { return s.drainCh }

// --- observability ---

// TierStats is one tier's engine and thermal observability.
type TierStats struct {
	Name            string         `json:"name"`
	Engine          runsched.Stats `json:"engine"`
	ThermalWarnings int64          `json:"thermal_warnings"`
	// ShadowDivergences renders the diverged window keys (canonical
	// order), empty when self-verification is clean.
	ShadowDivergences []string `json:"shadow_divergences,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	// Status is "ok", "degraded" (shadow divergence detected or
	// persistence exhausted) or "draining".
	Status          string   `json:"status"`
	ThermalWarnings int64    `json:"thermal_warnings"`
	ShadowChecked   int      `json:"shadow_checked"`
	ShadowDiverged  int      `json:"shadow_diverged"`
	Divergences     []string `json:"divergences,omitempty"`
	// Persistence is "ok" while checkpoints are landing, "degraded"
	// once the persister has exhausted its retries (compute continues;
	// the next successful checkpoint re-arms it), and "disabled" when
	// the daemon runs without a StatePath.
	Persistence string `json:"persistence"`
}

// StatsSnapshot is the /statsz body.
type StatsSnapshot struct {
	QueueDepth  int            `json:"queue_depth"` // admitted jobs not yet terminal
	QueueBound  int            `json:"queue_bound"`
	Draining    bool           `json:"draining"`
	Counters    Counters       `json:"counters"`
	JobsByState map[string]int `json:"jobs_by_state"`
	Tiers       []TierStats    `json:"tiers"`
}

// tierStats collects one tier's observability.
func (s *Server) tierStats(t Tier) TierStats {
	sess := s.sessions[t.Name]
	ts := TierStats{
		Name:            t.Name,
		Engine:          sess.EngineStats(),
		ThermalWarnings: sess.ThermalWarnings(),
	}
	for _, d := range sess.ShadowDivergences() {
		ts.ShadowDivergences = append(ts.ShadowDivergences, d.Key.String())
	}
	return ts
}

// HealthSnapshot summarizes daemon health. Shadow divergence degrades
// the status instead of crashing the daemon: cached state is suspect,
// but already-verified results remain servable.
func (s *Server) HealthSnapshot() Health {
	h := Health{Status: "ok", Persistence: "ok"}
	if s.opts.StatePath == "" {
		h.Persistence = "disabled"
	}
	for _, t := range s.tiers {
		ts := s.tierStats(t)
		h.ThermalWarnings += ts.ThermalWarnings
		h.ShadowChecked += ts.Engine.ShadowChecked
		h.ShadowDiverged += ts.Engine.ShadowDiverged
		h.Divergences = append(h.Divergences, ts.ShadowDivergences...)
	}
	if h.ShadowDiverged > 0 {
		h.Status = "degraded"
	}
	if s.PersistenceDegraded() {
		h.Status = "degraded"
		h.Persistence = "degraded"
	}
	if s.Draining() {
		h.Status = "draining"
	}
	return h
}

// Stats snapshots the full /statsz view.
func (s *Server) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		QueueBound:  s.opts.QueueBound,
		JobsByState: make(map[string]int),
	}
	s.mu.Lock()
	snap.QueueDepth = s.inflight
	snap.Draining = s.draining
	snap.Counters = s.counters
	//lint:ignore maporder commutative counting; each job increments its own state bucket, order cannot affect the totals
	for _, j := range s.jobs {
		snap.JobsByState[j.snapshot().State]++
	}
	s.mu.Unlock()
	for _, t := range s.tiers {
		snap.Tiers = append(snap.Tiers, s.tierStats(t))
	}
	return snap
}

// Session exposes a tier's session (tests and stats).
func (s *Server) Session(tier string) (*experiment.Session, bool) {
	sess, ok := s.sessions[tier]
	return sess, ok
}

// --- persistence fingerprint ---

// storeFingerprint ties the job store to the tier configuration and
// store schema, so a store written under different window sizes fails
// loudly instead of silently serving wrong bytes.
func (s *Server) storeFingerprint() (string, error) {
	type tierSpec struct {
		Name    string             `json:"name"`
		Quality experiment.Quality `json:"quality"`
	}
	specs := make([]tierSpec, 0, len(s.tiers))
	for _, t := range s.tiers {
		specs = append(specs, tierSpec{Name: t.Name, Quality: t.Quality})
	}
	enc, err := json.Marshal(specs)
	if err != nil {
		return "", fmt.Errorf("serve: fingerprint tiers: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(storeSchema + "\n")) // fnv.Write cannot fail
	_, _ = h.Write(enc)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// jobStorePath returns the job-store checkpoint path.
func (s *Server) jobStorePath() string {
	return filepath.Join(s.opts.StatePath, "jobs.ckpt")
}

// cachePath returns one tier's window-cache checkpoint path.
func (s *Server) cachePath(tier string) string {
	return filepath.Join(s.opts.StatePath, "cache-"+tier+".ckpt")
}
