module r3d

go 1.22
