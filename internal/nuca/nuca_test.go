package nuca

import (
	"math"
	"math/rand"
	"testing"
)

func TestPaperConfigCapacities(t *testing.T) {
	c2a := Config2DA(DistributedSets)
	if c2a.SizeBytes() != 6<<20 || c2a.Banks() != 6 {
		t.Errorf("2d-a must be a 6-bank 6MB L2: %d banks, %d bytes", c2a.Banks(), c2a.SizeBytes())
	}
	for _, cfg := range []Config{Config2D2A(DistributedSets), Config3D2A(DistributedSets)} {
		if cfg.SizeBytes() != 15<<20 || cfg.Banks() != 15 {
			t.Errorf("%s must be a 15-bank 15MB L2", cfg.Name)
		}
	}
}

func TestMeanHitLatenciesMatchPaper(t *testing.T) {
	// §3.3: average L2 hit latency is 18 cycles for 2d-a, 22 for 2d-2a,
	// and 3d-2a stays at the 2d-a level.
	cases := []struct {
		cfg  Config
		want float64
		tol  float64
	}{
		{Config2DA(DistributedSets), 18, 0.01},
		{Config2D2A(DistributedSets), 22, 0.01},
		{Config3D2A(DistributedSets), 18, 0.5},
	}
	for _, c := range cases {
		n := New(c.cfg)
		got := BankAccessCycles + 2*CyclesPerHopTimes(n)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s mean hit latency = %.2f, want %.0f", c.cfg.Name, got, c.want)
		}
	}
}

// CyclesPerHopTimes returns mean one-way network cycles for uniform bank
// access (helper using the embedded network).
func CyclesPerHopTimes(c *Cache) float64 {
	return c.Network().MeanHops() * 4
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config2DA(DistributedSets))
	lat, miss := c.Access(0x1000, false)
	if !miss {
		t.Error("cold access must miss")
	}
	if lat <= 0 {
		t.Error("latency must be positive")
	}
	_, miss = c.Access(0x1000, false)
	if miss {
		t.Error("second access must hit")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDistributedSetsUniformBankUse(t *testing.T) {
	c := New(Config2DA(DistributedSets))
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60000; i++ {
		c.Access(uint64(r.Intn(1<<26))&^63, false)
	}
	s := c.Stats()
	mean := float64(s.Accesses) / float64(len(s.BankAccesses))
	for b, n := range s.BankAccesses {
		if math.Abs(float64(n)-mean)/mean > 0.1 {
			t.Errorf("bank %d accesses %d deviate >10%% from mean %.0f", b, n, mean)
		}
	}
}

func TestDistributedWaysMigration(t *testing.T) {
	// Repeated hits to the same block must migrate it to the closest
	// bank, reducing its hit latency to the minimum.
	cfg := Config2D2A(DistributedWays)
	c := New(cfg)
	addr := uint64(0x40000)
	c.Access(addr, false) // miss, fills somewhere
	var lat int
	for i := 0; i < 20; i++ {
		lat, _ = c.Access(addr, false)
	}
	minHops := 99
	for _, h := range cfg.HopsPerBank {
		if h < minHops {
			minHops = h
		}
	}
	want := BankAccessCycles + CentralTagCycles + 2*4*minHops
	if lat != want {
		t.Errorf("hot block latency = %d, want %d after migration", lat, want)
	}
}

func TestDistributedWaysBeatsSetsOnHotWorkingSet(t *testing.T) {
	// §3.3: the distributed-way policy performs slightly better because
	// data migrates toward the controller when the working set is small.
	run := func(p Policy) float64 {
		c := New(Config2D2A(p))
		r := rand.New(rand.NewSource(9))
		// Working set much smaller than capacity → mostly hits.
		for i := 0; i < 80000; i++ {
			c.Access(uint64(r.Intn(1<<20))&^63, false)
		}
		return c.Stats().MeanHitLatency()
	}
	sets := run(DistributedSets)
	ways := run(DistributedWays)
	if ways >= sets {
		t.Errorf("distributed-ways mean hit latency %.2f should beat distributed-sets %.2f", ways, sets)
	}
}

func TestLargerCacheLowersMissRate(t *testing.T) {
	// A 9 MB working set thrashes the 6 MB L2 but fits in the 15 MB L2
	// (the art-like behaviour in §3.3).
	run := func(cfg Config) float64 {
		c := New(cfg)
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 300000; i++ {
			c.Access(uint64(r.Intn(9<<20))&^63, false)
		}
		return c.Stats().MissRate()
	}
	small := run(Config2DA(DistributedSets))
	big := run(Config2D2A(DistributedSets))
	if big >= small {
		t.Errorf("15MB miss rate %.3f should be below 6MB %.3f", big, small)
	}
	if small < 0.2 {
		t.Errorf("9MB working set should thrash a 6MB cache, miss rate %.3f", small)
	}
}

func TestWritebackCounting(t *testing.T) {
	c := New(Config2DA(DistributedSets))
	// Dirty a line, then evict it by filling its set with conflicting
	// tags (same set index every 6MB stride × ways...).
	c.Access(0, true)
	stride := uint64(c.nsets * LineBytes)
	for i := 1; i <= c.ways; i++ {
		c.Access(uint64(i)*stride, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestProbe(t *testing.T) {
	c := New(Config2DA(DistributedSets))
	if c.Probe(0x80) {
		t.Error("cold probe must be false")
	}
	c.Access(0x80, false)
	if !c.Probe(0x80) {
		t.Error("probe after access must be true")
	}
	if got := c.Stats().Accesses; got != 1 {
		t.Errorf("Probe must not count accesses: %d", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Name: "x"}).Validate(); err == nil {
		t.Error("empty config must be invalid")
	}
	if err := (Config{Name: "x", HopsPerBank: []int{-1}}).Validate(); err == nil {
		t.Error("negative hops must be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid config")
		}
	}()
	New(Config{Name: "bad"})
}

func TestBanksByDistance(t *testing.T) {
	got := banksByDistance([]int{3, 1, 2, 1})
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("banksByDistance = %v, want %v", got, want)
		}
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	c := New(Config2DA(DistributedSets))
	c.Access(0, false)
	s := c.Stats()
	s.BankAccesses[0] = 999
	if c.Stats().BankAccesses[0] == 999 {
		t.Error("Stats must return a copy of BankAccesses")
	}
}

func TestPolicyString(t *testing.T) {
	if DistributedSets.String() != "distributed-sets" || DistributedWays.String() != "distributed-ways" {
		t.Error("policy names wrong")
	}
}
