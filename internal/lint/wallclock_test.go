package lint

import "testing"

func TestWallClockFlagsModelCode(t *testing.T) {
	fs := findings(t, WallClock, modelPath, `
package fixture

import "time"

func Elapsed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
`)
	wantChecks(t, fs, "wallclock", "wallclock")
}

// cmd/ timing is exempt: drivers legitimately measure elapsed host
// time, the way cmd/r3dcalib reports simulation throughput.
func TestWallClockExemptsDriverCode(t *testing.T) {
	fs := findings(t, WallClock, driverPath, `
package fixture

import "time"

func Elapsed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
`)
	wantChecks(t, fs)
}

func TestWallClockAcceptsCycleCounters(t *testing.T) {
	fs := findings(t, WallClock, modelPath, `
package fixture

type clock struct{ cycles uint64 }

func (c *clock) Tick() { c.cycles++ }

func (c *clock) Cycles() uint64 { return c.cycles }
`)
	wantChecks(t, fs)
}

func TestWallClockSuppressed(t *testing.T) {
	fs := findings(t, WallClock, modelPath, `
package fixture

import "time"

func Stamp() time.Time {
	//lint:ignore wallclock demonstration fixture only
	return time.Now()
}
`)
	wantChecks(t, fs)
}
