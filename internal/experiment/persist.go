package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"

	"r3d/internal/ckpt"
	"r3d/internal/iofault"
	"r3d/internal/runsched"
)

// The run cache persists the session's memoized simulation windows so
// r3dbench can warm-start across invocations: SaveCache dumps every
// successful window into an atomically committed, CRC-guarded ckpt
// file, and LoadCache preloads a later session from it. The cache is
// keyed by a fingerprint over the session quality and the cache schema,
// so a cache written under different window sizes, a different suite or
// an incompatible build fails loudly instead of silently polluting
// results. Preloaded windows are ordinary cache hits afterwards — in
// particular, a ShadowFraction re-verifies them against a from-scratch
// recomputation exactly like any other hit.

const (
	cacheKind = "experiment-runcache"
	// cacheSchema names the persisted entry layout. Bump it whenever
	// cacheEntry, LeadRun or RMTRun change shape: the fingerprint then
	// changes and stale caches are rejected loudly.
	cacheSchema = "r3d-runcache/1"
)

// cacheEntry is the persisted image of one memo entry. runValue's
// fields are unexported by design (the engine's slot is an internal
// union), so persistence goes through this explicit, versioned shape.
type cacheEntry struct {
	Key  RunKey   `json:"key"`
	Lead *LeadRun `json:"lead,omitempty"`
	RMT  *RMTRun  `json:"rmt,omitempty"`
}

// cacheFingerprint hashes the cache schema plus the canonical JSON of
// the quality: every field that changes what a window computes changes
// the fingerprint.
func cacheFingerprint(q Quality) (string, error) {
	enc, err := json.Marshal(q)
	if err != nil {
		return "", fmt.Errorf("experiment: fingerprint quality: %w", err)
	}
	h := fnv.New64a()
	if _, err := h.Write([]byte(cacheSchema + "\n")); err != nil {
		return "", err
	}
	if _, err := h.Write(enc); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// hashRunKey drives shadow selection: a pure function of the key's
// canonical string form.
func hashRunKey(k RunKey) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k.String())) // fnv.Write cannot fail
	return h.Sum32()
}

// encodeRunValue is the canonical byte form compared during shadow
// checks. Both union arms are encoded; the inactive arm is zero on both
// sides of the comparison.
func encodeRunValue(v runValue) ([]byte, error) {
	return json.Marshal(struct {
		Lead LeadRun `json:"lead"`
		RMT  RMTRun  `json:"rmt"`
	}{Lead: v.lead, RMT: v.rmt})
}

// SaveCache persists every successful memoized window to path on the
// real filesystem. See SaveCacheTo.
func (s *Session) SaveCache(path string) (int, error) {
	return s.SaveCacheTo(iofault.OS(), path)
}

// SaveCacheTo persists every successful memoized window to path on fsys
// as an atomically committed checkpoint (the previous cache generation
// is kept alongside as path+".prev"). It returns the number of entries
// written.
func (s *Session) SaveCacheTo(fsys iofault.FS, path string) (int, error) {
	fp, err := cacheFingerprint(s.Q)
	if err != nil {
		return 0, err
	}
	entries := s.eng.Entries()
	w := ckpt.NewWriter(ckpt.Meta{Kind: cacheKind, Fingerprint: fp})
	for _, ent := range entries {
		ce := cacheEntry{Key: ent.Key}
		if ent.Key.Kind == KindLeading {
			lead := ent.Val.lead
			ce.Lead = &lead
		} else {
			rmt := ent.Val.rmt
			ce.RMT = &rmt
		}
		if err := w.Append(ce); err != nil {
			return 0, err
		}
	}
	if err := w.CommitTo(fsys, path); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// LoadCache preloads the session from a cache written by SaveCache
// under the same quality and build. Recoverable failures — no cache
// yet, or corruption with no good previous generation — degrade to a
// cold start and are reported in notes; an intact cache for a different
// quality or build is a hard error (point r3dbench at a fresh -cache
// path instead). It returns the number of entries preloaded.
func (s *Session) LoadCache(path string) (int, []string, error) {
	return s.LoadCacheFrom(iofault.OS(), path)
}

// LoadCacheFrom is LoadCache against an explicit filesystem.
func (s *Session) LoadCacheFrom(fsys iofault.FS, path string) (int, []string, error) {
	fp, err := cacheFingerprint(s.Q)
	if err != nil {
		return 0, nil, err
	}
	snap, note, err := ckpt.LoadLatestFrom(fsys, path, ckpt.Meta{Kind: cacheKind, Fingerprint: fp})
	var notes []string
	if note != "" {
		notes = append(notes, note)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			notes = append(notes, fmt.Sprintf("experiment: no run cache at %s; starting cold", path))
			return 0, notes, nil
		}
		var corrupt *ckpt.CorruptError
		if errors.As(err, &corrupt) {
			notes = append(notes, fmt.Sprintf("experiment: %v — no recoverable cache; starting cold", err))
			return 0, notes, nil
		}
		return 0, notes, err
	}
	entries := make([]runsched.Entry[RunKey, runValue], 0, snap.Len())
	for i := 0; i < snap.Len(); i++ {
		var ce cacheEntry
		if err := snap.Decode(i, &ce); err != nil {
			return 0, notes, err
		}
		var v runValue
		switch {
		case ce.Key.Kind == KindLeading && ce.Lead != nil:
			v.lead = *ce.Lead
		case ce.Key.Kind != KindLeading && ce.RMT != nil:
			v.rmt = *ce.RMT
		default:
			return 0, notes, fmt.Errorf("experiment: run cache %s entry %d (%s) has no value for its kind", path, i, ce.Key)
		}
		entries = append(entries, runsched.Entry[RunKey, runValue]{Key: ce.Key, Val: v})
	}
	s.eng.Preload(entries)
	return len(entries), notes, nil
}
