package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// JSONFinding is the machine-readable form of a Finding: the filename
// is module-root-relative with forward slashes, so the bytes are stable
// across checkouts and operating systems.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// Relativize rewrites a finding's filename relative to root (when it is
// under root) for stable, readable output.
func Relativize(root string, f Finding) Finding {
	if root == "" {
		return f
	}
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = filepath.ToSlash(rel)
	}
	return f
}

// ToJSON converts findings (already sorted by Run) to their
// machine-readable form, relativized against root.
func ToJSON(root string, findings []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		f = Relativize(root, f)
		out = append(out, JSONFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	return out
}

// MarshalJSON renders findings as an indented JSON array terminated by
// a newline. The input order is preserved (Run sorts canonically), and
// encoding/json emits struct fields in declaration order, so the bytes
// are identical across runs over identical findings.
func MarshalJSON(root string, findings []Finding) ([]byte, error) {
	data, err := json.MarshalIndent(ToJSON(root, findings), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// A Baseline is a set of accepted findings. Matching ignores line and
// column — code above a known finding may move it — and counts
// duplicates, so two identical findings in one file need two baseline
// entries.
type Baseline struct {
	counts map[string]int
}

// baselineKey identifies a finding for baseline matching.
func baselineKey(f JSONFinding) string {
	return f.File + "\x00" + f.Check + "\x00" + f.Message
}

// NewBaseline builds a baseline from accepted findings (typically a
// previous run's ToJSON output).
func NewBaseline(accepted []JSONFinding) *Baseline {
	b := &Baseline{counts: map[string]int{}}
	for _, f := range accepted {
		b.counts[baselineKey(f)]++
	}
	return b
}

// LoadBaseline reads a baseline file: a JSON array in the -json output
// format.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var accepted []JSONFinding
	if err := json.Unmarshal(data, &accepted); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return NewBaseline(accepted), nil
}

// PruneBaseline rewrites the baseline file at path, dropping entries
// that no longer match any current finding (the entries Apply would
// report as stale). Entries keep their file order; with duplicate keys
// the earliest occurrences are kept first, mirroring Apply's matching.
// Returns how many entries were kept and how many were dropped. The
// file is rewritten only when at least one entry was dropped.
func PruneBaseline(path, root string, findings []Finding) (kept, dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var accepted []JSONFinding
	if err := json.Unmarshal(data, &accepted); err != nil {
		return 0, 0, fmt.Errorf("lint: baseline %s: %w", path, err)
	}

	// How many findings currently exist per key: an entry survives only
	// while its key still has live findings to absorb.
	live := map[string]int{}
	for _, f := range ToJSON(root, findings) {
		live[baselineKey(f)]++
	}
	pruned := make([]JSONFinding, 0, len(accepted))
	for _, e := range accepted {
		k := baselineKey(e)
		if live[k] > 0 {
			live[k]--
			pruned = append(pruned, e)
			continue
		}
		dropped++
	}
	kept = len(pruned)
	if dropped == 0 {
		return kept, 0, nil
	}
	out, err := json.MarshalIndent(pruned, "", "  ")
	if err != nil {
		return 0, 0, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return 0, 0, err
	}
	return kept, dropped, nil
}

// Apply splits findings into regressions (not covered by the baseline —
// these fail the run) and returns the stale baseline entries that
// matched nothing (candidates for deletion, reported but not fatal).
// Findings are matched in order, so with duplicate keys the earliest
// occurrences are suppressed first.
func (b *Baseline) Apply(root string, findings []Finding) (regressions []Finding, stale []string) {
	remaining := make(map[string]int, len(b.counts))
	//lint:ignore maporder map-to-map copy; each key is written exactly once, order-independent
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, f := range findings {
		k := baselineKey(ToJSON(root, []Finding{f})[0])
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		regressions = append(regressions, f)
	}
	//lint:ignore maporder the stale list is sorted below before any use
	for k, n := range remaining {
		if n > 0 {
			parts := strings.SplitN(k, "\x00", 3)
			stale = append(stale, fmt.Sprintf("%s: %s: %s (×%d)", parts[0], parts[1], parts[2], n))
		}
	}
	sort.Strings(stale)
	return regressions, stale
}
